// Failure-injection robustness: every protocol must deliver reliably over
// paths with random (non-congestive) packet corruption, in both
// directions, including on the incast workload. Parameterized across
// protocol x loss rate.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

struct LossCase {
  Protocol protocol;
  double loss;
};

std::string CaseName(const ::testing::TestParamInfo<LossCase>& info) {
  std::string name = ToString(info.param.protocol);
  for (char& c : name) {
    if (c == '+') c = 'P';
  }
  return name + "_loss" +
         std::to_string(static_cast<int>(info.param.loss * 1000));
}

class LossyPathTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossyPathTest, TransferSurvivesRandomLoss) {
  const LossCase param = GetParam();
  Simulator sim(7);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig lossy;
  lossy.random_loss = param.loss;
  // Loss on both directions (data and ACK path).
  net.ConnectHost(a, sw, lossy, Network::NicConfig(lossy));
  net.ConnectHost(b, sw, lossy, Network::NicConfig(lossy));
  net.InstallRoutes();

  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;

  Bytes received = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      b, 5000,
      [&param] { return MakeCongestionOps(param.protocol); }, socket_config,
      [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) { received += n; });
      });
  TcpSocket client(a, MakeCongestionOps(param.protocol), socket_config);
  bool connected = false;
  client.set_on_connected([&] {
    connected = true;
    client.Send(512 * 1024);
  });
  client.Connect(b.id(), 5000);
  sim.RunUntil(120 * kSecond);
  EXPECT_TRUE(connected);
  EXPECT_EQ(received, 512 * 1024) << "protocol=" << ToString(param.protocol)
                                  << " loss=" << param.loss;
  EXPECT_EQ(client.StreamAcked(), 512 * 1024);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, LossyPathTest,
    ::testing::Values(LossCase{Protocol::kTcp, 0.01},
                      LossCase{Protocol::kTcp, 0.05},
                      LossCase{Protocol::kDctcp, 0.01},
                      LossCase{Protocol::kDctcp, 0.05},
                      LossCase{Protocol::kDctcpPlus, 0.01},
                      LossCase{Protocol::kDctcpPlus, 0.05},
                      LossCase{Protocol::kTcpPlus, 0.01},
                      LossCase{Protocol::kDctcpPlusPartial, 0.01}),
    CaseName);

class LossyIncastTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(LossyIncastTest, IncastCompletesOverLossyFabric) {
  IncastConfig config;
  config.protocol = GetParam();
  config.num_flows = 8;
  config.rounds = 3;
  config.total_bytes = 128 * 1024;
  config.link.random_loss = 0.005;
  config.min_rto = 10 * kMillisecond;
  config.time_limit = 120 * kSecond;
  const IncastResult r = RunIncast(config);
  EXPECT_EQ(r.rounds_completed, 3u);
  EXPECT_FALSE(r.hit_time_limit);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, LossyIncastTest,
    ::testing::Values(Protocol::kTcp, Protocol::kDctcp,
                      Protocol::kDctcpPlus, Protocol::kTcpPlus),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

// --- timeout taxonomy under forced, surgical drops -------------------------
//
// The impairment layer's ordinal drop hooks make the two timeout classes of
// the paper's Table I reproducible on demand: dropping the entire initial
// window produces an FLoss-TO (zero feedback), while dropping one data
// segment plus the third duplicate ACK leaves the sender two dupacks short
// of fast retransmit — an LAck-TO.

struct TaxonomyRig {
  Simulator sim{11};
  Network net{sim};
  Switch* sw = nullptr;
  Host* a = nullptr;
  Host* b = nullptr;

  /// Wires a -- sw -- b with the given impairments on the host NICs.
  TaxonomyRig(const ImpairmentConfig& a_nic_impairment,
              const ImpairmentConfig& b_nic_impairment) {
    sw = &net.AddSwitch("sw");
    a = &net.AddHost("a");
    b = &net.AddHost("b");
    LinkConfig clean;
    LinkConfig a_nic = Network::NicConfig(clean);
    a_nic.impairment = a_nic_impairment;
    LinkConfig b_nic = Network::NicConfig(clean);
    b_nic.impairment = b_nic_impairment;
    net.ConnectHost(*a, *sw, clean, a_nic);
    net.ConnectHost(*b, *sw, clean, b_nic);
    net.InstallRoutes();
  }
};

TEST(TimeoutTaxonomyTest, FullWindowDropClassifiesAsFLoss) {
  // Drop data segments 1 and 2 leaving the sender's NIC: with
  // initial_cwnd = 2 that is the whole outstanding window, so the sender
  // hears nothing until RTO.
  ImpairmentConfig a_imp;
  a_imp.drop_data_nth = {1, 2};
  TaxonomyRig rig(a_imp, ImpairmentConfig{});

  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;
  socket_config.initial_cwnd = 2;

  Bytes received = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      *rig.b, 5000, [] { return MakeCongestionOps(Protocol::kTcp); },
      socket_config, [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) { received += n; });
      });
  RecordingProbe probe;
  TcpSocket client(*rig.a, MakeCongestionOps(Protocol::kTcp), socket_config);
  client.set_probe(&probe);
  client.set_on_connected([&] { client.Send(2 * kMss); });
  client.Connect(rig.b->id(), 5000);
  rig.sim.RunUntil(30 * kSecond);

  EXPECT_EQ(received, 2 * kMss);  // recovered after the timeout
  EXPECT_EQ(probe.floss_timeouts(), 1u);
  EXPECT_EQ(probe.lack_timeouts(), 0u);
  EXPECT_EQ(rig.a->uplink().impairment()->stats().forced_losses, 2u);
  EXPECT_EQ(rig.sim.invariants().violations(), 0u);
}

TEST(TimeoutTaxonomyTest, AckPathDropClassifiesAsLAck) {
  // Drop the first data segment; the receiver dup-ACKs segments 2..4, but
  // the third duplicate is dropped on the receiver's ACK path — two
  // dupacks is feedback, yet not enough for fast retransmit.
  ImpairmentConfig a_imp;
  a_imp.drop_data_nth = {1};
  ImpairmentConfig b_imp;
  b_imp.drop_ack_nth = {3};
  TaxonomyRig rig(a_imp, b_imp);

  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;
  socket_config.initial_cwnd = 4;

  Bytes received = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      *rig.b, 5000, [] { return MakeCongestionOps(Protocol::kTcp); },
      socket_config, [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) { received += n; });
      });
  RecordingProbe probe;
  TcpSocket client(*rig.a, MakeCongestionOps(Protocol::kTcp), socket_config);
  client.set_probe(&probe);
  client.set_on_connected([&] { client.Send(4 * kMss); });
  client.Connect(rig.b->id(), 5000);
  rig.sim.RunUntil(30 * kSecond);

  EXPECT_EQ(received, 4 * kMss);
  EXPECT_EQ(probe.lack_timeouts(), 1u);
  EXPECT_EQ(probe.floss_timeouts(), 0u);
  EXPECT_EQ(probe.fast_retransmits(), 0u);
  EXPECT_EQ(rig.sim.invariants().violations(), 0u);
}

TEST(LossInjectionTest, CounterTracksDrops) {
  Simulator sim(3);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig always_lose;
  always_lose.random_loss = 1.0;
  net.ConnectHost(a, sw, always_lose, always_lose);
  net.ConnectHost(b, sw, LinkConfig{});
  net.InstallRoutes();
  Packet pkt;
  pkt.src = a.id();
  pkt.dst = b.id();
  pkt.payload = 100;
  a.Send(pkt);
  sim.Run();
  EXPECT_EQ(a.uplink().random_losses(), 1u);
  EXPECT_EQ(b.unmatched_packets(), 0u);  // never arrived
}

}  // namespace
}  // namespace dctcpp
