// Failure-injection robustness: every protocol must deliver reliably over
// paths with random (non-congestive) packet corruption, in both
// directions, including on the incast workload. Parameterized across
// protocol x loss rate.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

struct LossCase {
  Protocol protocol;
  double loss;
};

std::string CaseName(const ::testing::TestParamInfo<LossCase>& info) {
  std::string name = ToString(info.param.protocol);
  for (char& c : name) {
    if (c == '+') c = 'P';
  }
  return name + "_loss" +
         std::to_string(static_cast<int>(info.param.loss * 1000));
}

class LossyPathTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossyPathTest, TransferSurvivesRandomLoss) {
  const LossCase param = GetParam();
  Simulator sim(7);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig lossy;
  lossy.random_loss = param.loss;
  // Loss on both directions (data and ACK path).
  net.ConnectHost(a, sw, lossy, Network::NicConfig(lossy));
  net.ConnectHost(b, sw, lossy, Network::NicConfig(lossy));
  net.InstallRoutes();

  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;

  Bytes received = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      b, 5000,
      [&param] { return MakeCongestionOps(param.protocol); }, socket_config,
      [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) { received += n; });
      });
  TcpSocket client(a, MakeCongestionOps(param.protocol), socket_config);
  bool connected = false;
  client.set_on_connected([&] {
    connected = true;
    client.Send(512 * 1024);
  });
  client.Connect(b.id(), 5000);
  sim.RunUntil(120 * kSecond);
  EXPECT_TRUE(connected);
  EXPECT_EQ(received, 512 * 1024) << "protocol=" << ToString(param.protocol)
                                  << " loss=" << param.loss;
  EXPECT_EQ(client.StreamAcked(), 512 * 1024);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, LossyPathTest,
    ::testing::Values(LossCase{Protocol::kTcp, 0.01},
                      LossCase{Protocol::kTcp, 0.05},
                      LossCase{Protocol::kDctcp, 0.01},
                      LossCase{Protocol::kDctcp, 0.05},
                      LossCase{Protocol::kDctcpPlus, 0.01},
                      LossCase{Protocol::kDctcpPlus, 0.05},
                      LossCase{Protocol::kTcpPlus, 0.01},
                      LossCase{Protocol::kDctcpPlusPartial, 0.01}),
    CaseName);

class LossyIncastTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(LossyIncastTest, IncastCompletesOverLossyFabric) {
  IncastConfig config;
  config.protocol = GetParam();
  config.num_flows = 8;
  config.rounds = 3;
  config.total_bytes = 128 * 1024;
  config.link.random_loss = 0.005;
  config.min_rto = 10 * kMillisecond;
  config.time_limit = 120 * kSecond;
  const IncastResult r = RunIncast(config);
  EXPECT_EQ(r.rounds_completed, 3u);
  EXPECT_FALSE(r.hit_time_limit);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, LossyIncastTest,
    ::testing::Values(Protocol::kTcp, Protocol::kDctcp,
                      Protocol::kDctcpPlus, Protocol::kTcpPlus),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (c == '+') c = 'P';
      }
      return name;
    });

TEST(LossInjectionTest, CounterTracksDrops) {
  Simulator sim(3);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig always_lose;
  always_lose.random_loss = 1.0;
  net.ConnectHost(a, sw, always_lose, always_lose);
  net.ConnectHost(b, sw, LinkConfig{});
  net.InstallRoutes();
  Packet pkt;
  pkt.src = a.id();
  pkt.dst = b.id();
  pkt.payload = 100;
  a.Send(pkt);
  sim.Run();
  EXPECT_EQ(a.uplink().random_losses(), 1u);
  EXPECT_EQ(b.unmatched_packets(), 0u);  // never arrived
}

}  // namespace
}  // namespace dctcpp
