// IntervalSet tests: coalescing semantics, trim/query edge cases, and the
// randomized differential against MapIntervalSet (the std::map scoreboard
// representation the flat vector replaced).
#include <gtest/gtest.h>

#include <vector>

#include "dctcpp/util/interval_set.h"
#include "dctcpp/util/rng.h"

namespace dctcpp {
namespace {

std::vector<Interval> Contents(const IntervalSet& s) {
  return s.intervals();
}

std::vector<Interval> Contents(const MapIntervalSet& s) {
  std::vector<Interval> out;
  s.ForEach([&out](const Interval& iv) {
    out.push_back(iv);
    return true;
  });
  return out;
}

TEST(IntervalSetTest, AddCoalescesOverlapAndAbutment) {
  IntervalSet s;
  s.Add(100, 200);
  s.Add(300, 400);
  EXPECT_EQ(s.size(), 2u);
  s.Add(200, 250);  // abuts the first range
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.front(), (Interval{100, 250}));
  s.Add(240, 310);  // bridges both
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.front(), (Interval{100, 400}));
  s.Add(150, 160);  // fully contained: no change
  EXPECT_EQ(s.front(), (Interval{100, 400}));
  EXPECT_EQ(s.TotalBytes(), 300);
}

TEST(IntervalSetTest, EmptyRangeIsIgnored) {
  IntervalSet s;
  s.Add(10, 10);
  s.Add(10, 5);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, TrimBelowDropsAndTruncates) {
  IntervalSet s;
  s.Add(0, 100);
  s.Add(200, 300);
  s.Add(400, 500);
  s.TrimBelow(250);  // drops [0,100), truncates [200,300) to [250,300)
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.front(), (Interval{250, 300}));
  s.TrimBelow(300);  // boundary: [250,300) ends exactly at the trim point
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.front(), (Interval{400, 500}));
  s.TrimBelow(1000);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSetTest, CoveringEndAndNextStartAfter) {
  IntervalSet s;
  s.Add(100, 200);
  s.Add(300, 400);
  EXPECT_EQ(s.CoveringEnd(100), 200);
  EXPECT_EQ(s.CoveringEnd(199), 200);
  EXPECT_EQ(s.CoveringEnd(200), -1);  // end is exclusive
  EXPECT_EQ(s.CoveringEnd(99), -1);
  EXPECT_TRUE(s.Contains(350));
  EXPECT_FALSE(s.Contains(250));
  EXPECT_EQ(s.NextStartAfter(99), 100);
  EXPECT_EQ(s.NextStartAfter(100), 300);
  EXPECT_EQ(s.NextStartAfter(400), -1);
}

TEST(IntervalSetTest, PopFrontAndForEachEarlyStop) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(30, 40);
  s.Add(50, 60);
  s.PopFront();
  EXPECT_EQ(s.front(), (Interval{30, 40}));
  int seen = 0;
  s.ForEach([&seen](const Interval&) {
    ++seen;
    return seen < 1;  // stop after the first
  });
  EXPECT_EQ(seen, 1);
}

// Differential: replay a random mixed workload through both
// implementations and assert identical observable state after every
// operation. This is the proof that swapping the socket/receive-buffer
// scoreboards from std::map to the flat vector changed no behavior.
TEST(IntervalSetDifferentialTest, RandomOpsMatchMapReference) {
  Rng rng(2024);
  IntervalSet flat;
  MapIntervalSet map;
  std::int64_t trim_floor = 0;
  for (int op = 0; op < 20000; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    if (kind <= 5) {
      // Segment-sized adds clustered near the trim floor, as in a real
      // scoreboard; occasional large spans force multi-range coalescing.
      const std::int64_t start =
          trim_floor + rng.UniformInt(0, 5000);
      const std::int64_t len =
          rng.Chance(0.1) ? rng.UniformInt(1000, 4000) : rng.UniformInt(1, 200);
      flat.Add(start, start + len);
      map.Add(start, start + len);
    } else if (kind <= 6) {
      trim_floor += rng.UniformInt(0, 800);
      flat.TrimBelow(trim_floor);
      map.TrimBelow(trim_floor);
    } else if (kind <= 7 && !flat.empty() && !map.empty()) {
      flat.PopFront();
      map.PopFront();
    } else {
      const std::int64_t probe = trim_floor + rng.UniformInt(-100, 5200);
      ASSERT_EQ(flat.CoveringEnd(probe), map.CoveringEnd(probe));
      ASSERT_EQ(flat.NextStartAfter(probe), map.NextStartAfter(probe));
      ASSERT_EQ(flat.Contains(probe), map.Contains(probe));
    }
    ASSERT_EQ(flat.size(), map.size());
    ASSERT_EQ(flat.TotalBytes(), map.TotalBytes());
    ASSERT_EQ(Contents(flat), Contents(map));
  }
}

}  // namespace
}  // namespace dctcpp
