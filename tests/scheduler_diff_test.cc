// Differential determinism test: replays identical randomized event traces
// through the reference HeapScheduler and the production
// TimerWheelScheduler and asserts bit-identical execution order.
//
// The trace generator exercises every structural path of the wheel:
//  - deltas from 0 to hundreds of milliseconds (levels 0 through ~4),
//  - far-future events beyond the 2^48-tick span (overflow heap),
//  - deliberate same-tick collisions (times quantized to a coarse grid),
//  - cancellation of pending, fired, and already-cancelled events,
//  - events scheduled from inside callbacks (including same-tick ones),
// all driven by one seeded Rng so both backends see the same operations.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "dctcpp/sim/scheduler.h"
#include "dctcpp/util/rng.h"

namespace dctcpp {
namespace {

struct Fired {
  Tick at;
  int label;
  bool operator==(const Fired& o) const {
    return at == o.at && label == o.label;
  }
};

/// Runs one scripted trace on scheduler backend S; returns the execution
/// log. All decisions come from `seed`, so two backends given the same
/// seed perform the same ScheduleAt/Cancel/RunNext sequence.
template <typename S>
std::vector<Fired> RunTrace(std::uint64_t seed) {
  S sched;
  Rng rng(seed);
  std::vector<Fired> log;
  std::vector<EventId> handles;
  Tick now = 0;
  int next_label = 0;

  // Quantized offsets collide often; the occasional huge offset exercises
  // the wheel's overflow heap.
  auto random_offset = [&rng]() -> Tick {
    switch (rng.UniformInt(0, 9)) {
      case 0:
        return 0;  // same-tick as the current event
      case 1:
      case 2:
        return 50 * rng.UniformInt(0, 20);  // sub-microsecond grid
      case 3:
      case 4:
      case 5:
        return 25 * kMicrosecond * rng.UniformInt(0, 12);  // RTT scale
      case 6:
      case 7:
        return 10 * kMillisecond * rng.UniformInt(1, 30);  // RTO scale
      case 8:
        return kSecond * rng.UniformInt(1, 5);
      default:
        return (Tick(1) << 49) + kSecond * rng.UniformInt(0, 3);  // overflow
    }
  };

  auto schedule_one = [&](auto&& self, int depth) -> void {
    const int label = next_label++;
    const Tick at = now + random_offset();
    handles.push_back(sched.ScheduleAt(at, [&, self, depth, label, at] {
      log.push_back(Fired{at, label});
      now = at;
      // A third of callbacks schedule follow-up work, up to depth 3.
      if (depth < 3 && rng.UniformInt(0, 2) == 0) {
        self(self, depth + 1);
      }
    }));
  };

  for (int round = 0; round < 40; ++round) {
    const int bursts = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < bursts; ++i) schedule_one(schedule_one, 0);
    // Cancel a few random handles: some pending, some stale (fired or
    // already cancelled) — stale ones must be no-ops on both backends.
    const int cancels = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < cancels && !handles.empty(); ++i) {
      const auto pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(handles.size()) - 1));
      sched.Cancel(handles[pick]);
    }
    // Drain a random chunk of the queue before the next burst.
    const int pops = static_cast<int>(rng.UniformInt(0, 15));
    for (int i = 0; i < pops && !sched.Empty(); ++i) {
      const Tick next = sched.NextTime();
      const Tick ran = sched.RunNext();
      EXPECT_EQ(ran, next);
      EXPECT_GE(ran, now);
    }
  }
  while (!sched.Empty()) sched.RunNext();
  return log;
}

TEST(SchedulerDifferentialTest, WheelMatchesHeapOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<Fired> heap_log = RunTrace<HeapScheduler>(seed);
    const std::vector<Fired> wheel_log = RunTrace<TimerWheelScheduler>(seed);
    ASSERT_EQ(heap_log.size(), wheel_log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap_log.size(); ++i) {
      ASSERT_TRUE(heap_log[i] == wheel_log[i])
          << "seed " << seed << " diverges at event " << i << ": heap ran ("
          << heap_log[i].at << ", #" << heap_log[i].label << "), wheel ran ("
          << wheel_log[i].at << ", #" << wheel_log[i].label << ")";
    }
    EXPECT_FALSE(heap_log.empty());
  }
}

TEST(SchedulerDifferentialTest, MonotonicTimestampsAndFullDrain) {
  // Sanity on the wheel alone with a bigger trace: pops are monotonic and
  // everything scheduled either fired or was cancelled.
  const std::vector<Fired> log = RunTrace<TimerWheelScheduler>(12345);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].at, log[i].at) << "at event " << i;
  }
}

}  // namespace
}  // namespace dctcpp
