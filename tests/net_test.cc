// Network substrate tests: queue (buffer + ECN marking), link timing,
// switch routing, host demux, and topology construction.
#include <gtest/gtest.h>

#include "dctcpp/net/host.h"
#include "dctcpp/net/link.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/net/queue.h"
#include "dctcpp/net/switch.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {
namespace {

using namespace time_literals;

Packet DataPacket(Bytes payload, Ecn ecn = Ecn::kEct) {
  Packet pkt;
  pkt.payload = payload;
  pkt.ecn = ecn;
  return pkt;
}

// ---------------------------------------------------------------------------
// DropTailEcnQueue

TEST(QueueTest, FifoOrder) {
  DropTailEcnQueue q(100000, 0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    Packet pkt = DataPacket(100);
    pkt.tcp.seq = i;
    ASSERT_TRUE(q.Enqueue(pkt));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto pkt = q.Dequeue();
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->tcp.seq, i);
  }
  EXPECT_FALSE(q.Dequeue().has_value());
}

TEST(QueueTest, DropsWhenFull) {
  // Capacity for exactly two 154-byte packets (100 payload + 54 header).
  DropTailEcnQueue q(2 * 154, 0);
  EXPECT_TRUE(q.Enqueue(DataPacket(100)));
  EXPECT_TRUE(q.Enqueue(DataPacket(100)));
  EXPECT_FALSE(q.Enqueue(DataPacket(100)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

TEST(QueueTest, OccupancyAccounting) {
  DropTailEcnQueue q(100000, 0);
  q.Enqueue(DataPacket(1460));
  q.Enqueue(DataPacket(500));
  EXPECT_EQ(q.OccupancyBytes(), 1460 + 500 + 2 * kHeaderBytes);
  q.Dequeue();
  EXPECT_EQ(q.OccupancyBytes(), 500 + kHeaderBytes);
  q.Dequeue();
  EXPECT_EQ(q.OccupancyBytes(), 0);
  EXPECT_TRUE(q.Empty());
}

TEST(QueueTest, MarksEctAboveThreshold) {
  DropTailEcnQueue q(128 * 1024, 1000);
  ASSERT_TRUE(q.Enqueue(DataPacket(800)));  // 854 < 1000: unmarked
  ASSERT_TRUE(q.Enqueue(DataPacket(800)));  // 1708 > 1000: marked
  EXPECT_EQ(q.Dequeue()->ecn, Ecn::kEct);
  EXPECT_EQ(q.Dequeue()->ecn, Ecn::kCe);
  EXPECT_EQ(q.stats().marked, 1u);
}

TEST(QueueTest, NeverMarksNonEct) {
  DropTailEcnQueue q(128 * 1024, 100);
  q.Enqueue(DataPacket(1460, Ecn::kNotEct));
  q.Enqueue(DataPacket(1460, Ecn::kNotEct));
  EXPECT_EQ(q.Dequeue()->ecn, Ecn::kNotEct);
  EXPECT_EQ(q.Dequeue()->ecn, Ecn::kNotEct);
  EXPECT_EQ(q.stats().marked, 0u);
}

TEST(QueueTest, ThresholdZeroDisablesMarking) {
  DropTailEcnQueue q(128 * 1024, 0);
  for (int i = 0; i < 50; ++i) q.Enqueue(DataPacket(1460));
  EXPECT_EQ(q.stats().marked, 0u);
}

TEST(QueueTest, MaxOccupancyHighWaterMark) {
  DropTailEcnQueue q(100000, 0);
  q.Enqueue(DataPacket(1000));
  q.Enqueue(DataPacket(1000));
  q.Dequeue();
  q.Dequeue();
  EXPECT_EQ(q.stats().max_occupancy, 2 * (1000 + kHeaderBytes));
  EXPECT_EQ(q.OccupancyBytes(), 0);
}

TEST(QueueTest, CePreservedThroughQueue) {
  DropTailEcnQueue q(128 * 1024, 0);
  q.Enqueue(DataPacket(100, Ecn::kCe));
  EXPECT_EQ(q.Dequeue()->ecn, Ecn::kCe);
}

// ---------------------------------------------------------------------------
// EgressPort / link timing

class CollectingSink : public PacketSink {
 public:
  explicit CollectingSink(Simulator& sim) : sim_(sim) {}
  void Deliver(const Packet& pkt) override {
    arrivals.emplace_back(sim_.Now(), pkt);
  }
  std::vector<std::pair<Tick, Packet>> arrivals;

 private:
  Simulator& sim_;
};

TEST(LinkTest, SerializationPlusPropagation) {
  Simulator sim;
  CollectingSink sink(sim);
  LinkConfig config;
  config.rate = DataRate::GigabitsPerSec(1);
  config.propagation_delay = 10_us;
  EgressPort port(sim, config, sink);
  // 1196-byte payload -> 1250 bytes wire = 10 us serialization at 1 Gbps.
  port.Send(DataPacket(1250 - kHeaderBytes));
  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, 20_us);
}

TEST(LinkTest, BackToBackPacketsSerializeSequentially) {
  Simulator sim;
  CollectingSink sink(sim);
  LinkConfig config;
  config.rate = DataRate::GigabitsPerSec(1);
  config.propagation_delay = 0;
  EgressPort port(sim, config, sink);
  const Bytes payload = 1250 - kHeaderBytes;
  port.Send(DataPacket(payload));
  port.Send(DataPacket(payload));
  sim.Run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, 10_us);
  EXPECT_EQ(sink.arrivals[1].first, 20_us);
}

TEST(LinkTest, DropsBeyondBuffer) {
  Simulator sim;
  CollectingSink sink(sim);
  LinkConfig config;
  config.buffer_bytes = 3 * 1514;
  EgressPort port(sim, config, sink);
  for (int i = 0; i < 10; ++i) port.Send(DataPacket(1460));
  sim.Run();
  // One serializing immediately plus three buffered.
  EXPECT_EQ(sink.arrivals.size(), 4u);
  EXPECT_EQ(port.queue().stats().dropped, 6u);
}

TEST(LinkTest, BacklogIncludesWire) {
  Simulator sim;
  CollectingSink sink(sim);
  EgressPort port(sim, LinkConfig{}, sink);
  port.Send(DataPacket(1460));
  port.Send(DataPacket(1460));
  // First packet on the wire, second queued.
  EXPECT_TRUE(port.Transmitting());
  EXPECT_EQ(port.BacklogBytes(), 2 * 1514);
  EXPECT_EQ(port.queue().OccupancyBytes(), 1514);
  sim.Run();
  EXPECT_EQ(port.BacklogBytes(), 0);
}

// ---------------------------------------------------------------------------
// Switch

TEST(SwitchTest, RoutesByDestination) {
  Simulator sim;
  Switch sw(sim, 0, "sw");
  CollectingSink a(sim), b(sim);
  const int pa = sw.AddPort(LinkConfig{}, a);
  const int pb = sw.AddPort(LinkConfig{}, b);
  sw.SetRoute(10, pa);
  sw.SetRoute(20, pb);
  Packet to_a = DataPacket(100);
  to_a.dst = 10;
  Packet to_b = DataPacket(100);
  to_b.dst = 20;
  sw.Deliver(to_a);
  sw.Deliver(to_b);
  sim.Run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(sw.RouteTo(10), pa);
  EXPECT_EQ(sw.RouteTo(99), -1);
}

// ---------------------------------------------------------------------------
// Host demux

TEST(HostTest, ConnectionBeatsListener) {
  Simulator sim;
  Host host(sim, 1, "h");
  int conn_hits = 0, listen_hits = 0;
  host.Listen(80, [&](const Packet&) { ++listen_hits; });
  host.RegisterConnection(80, /*remote=*/2, /*rport=*/1234,
                          [&](const Packet&) { ++conn_hits; });
  Packet from_conn;
  from_conn.src = 2;
  from_conn.dst = 1;
  from_conn.tcp.src_port = 1234;
  from_conn.tcp.dst_port = 80;
  host.Deliver(from_conn);
  Packet from_other = from_conn;
  from_other.tcp.src_port = 9999;  // no matching connection
  host.Deliver(from_other);
  EXPECT_EQ(conn_hits, 1);
  EXPECT_EQ(listen_hits, 1);
}

TEST(HostTest, UnmatchedPacketsCounted) {
  Simulator sim;
  Host host(sim, 1, "h");
  Packet pkt;
  pkt.src = 2;
  pkt.dst = 1;
  pkt.tcp.dst_port = 5555;
  host.Deliver(pkt);
  EXPECT_EQ(host.unmatched_packets(), 1u);
}

TEST(HostTest, UnregisterStopsDelivery) {
  Simulator sim;
  Host host(sim, 1, "h");
  int hits = 0;
  host.RegisterConnection(80, 2, 1234, [&](const Packet&) { ++hits; });
  host.UnregisterConnection(80, 2, 1234);
  Packet pkt;
  pkt.src = 2;
  pkt.dst = 1;
  pkt.tcp.src_port = 1234;
  pkt.tcp.dst_port = 80;
  host.Deliver(pkt);
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(host.unmatched_packets(), 1u);
}

TEST(HostTest, EphemeralPortsAreUnique) {
  Simulator sim;
  Host host(sim, 1, "h");
  const PortNum a = host.AllocatePort();
  const PortNum b = host.AllocatePort();
  EXPECT_NE(a, b);
}

TEST(HostTest, AllocatePortSkipsLivePorts) {
  Simulator sim;
  Host host(sim, 1, "h");
  // Pin down the next two candidates; allocation must skip both.
  const PortNum first = host.AllocatePort();
  host.Listen(static_cast<PortNum>(first + 1), [](const Packet&) {});
  host.Listen(static_cast<PortNum>(first + 2), [](const Packet&) {});
  EXPECT_EQ(host.AllocatePort(), static_cast<PortNum>(first + 3));
}

TEST(HostDeathTest, AllocatePortFailsLoudlyWhenRangeExhausted) {
  Simulator sim;
  Host host(sim, 1, "h");
  // Register a listener on every ephemeral port: [10000, 65535) fully
  // live. The next allocation has nowhere to go and must abort with a
  // diagnosable message, not loop or hand out a duplicate.
  for (int port = 10000; port < 65535; ++port) {
    host.Listen(static_cast<PortNum>(port), [](const Packet&) {});
  }
  EXPECT_DEATH_IF_SUPPORTED(host.AllocatePort(),
                            "ephemeral port range .*exhausted");
}

// ---------------------------------------------------------------------------
// Topology

TEST(TopologyTest, TwoTierShape) {
  Simulator sim;
  Network net(sim);
  const TwoTierTopology topo = TwoTierTopology::Build(net, 9, LinkConfig{});
  EXPECT_EQ(topo.workers.size(), 9u);
  ASSERT_NE(topo.aggregator, nullptr);
  ASSERT_NE(topo.root, nullptr);
  ASSERT_NE(topo.switch1, nullptr);
  // 10 hosts at <=3 per leaf need 4 leaves.
  EXPECT_EQ(topo.leaves.size(), 4u);
  EXPECT_EQ(net.HostCount(), 10u);
  EXPECT_EQ(net.SwitchCount(), 5u);
  ASSERT_NE(topo.bottleneck, nullptr);
}

TEST(TopologyTest, LeafPortBudgetRespected) {
  Simulator sim;
  Network net(sim);
  const TwoTierTopology topo =
      TwoTierTopology::Build(net, 9, LinkConfig{}, /*hosts_per_leaf=*/3);
  for (Switch* leaf : topo.leaves) {
    // Up to 3 host ports + 1 uplink = the testbed's four-port switches.
    EXPECT_LE(leaf->PortCount(), 4);
  }
}

TEST(TopologyTest, AllPairsReachable) {
  Simulator sim;
  Network net(sim);
  TwoTierTopology topo = TwoTierTopology::Build(net, 9, LinkConfig{});
  // Deliver a packet between every ordered host pair through the fabric
  // and count arrivals via the hosts' unmatched counters.
  std::vector<Host*> hosts = topo.workers;
  hosts.push_back(topo.aggregator);
  for (Host* src : hosts) {
    for (Host* dst : hosts) {
      if (src == dst) continue;
      Packet pkt = DataPacket(100);
      pkt.src = src->id();
      pkt.dst = dst->id();
      src->Send(pkt);
    }
  }
  sim.Run();
  std::uint64_t delivered = 0;
  for (Host* h : hosts) delivered += h->unmatched_packets();
  EXPECT_EQ(delivered, hosts.size() * (hosts.size() - 1));
}

TEST(TopologyTest, NicConfigDeepAndUnmarked) {
  const LinkConfig nic = Network::NicConfig(LinkConfig{});
  EXPECT_EQ(nic.ecn_threshold, 0);
  EXPECT_GT(nic.buffer_bytes, 1 * kMiB);
}

TEST(TopologyTest, BottleneckFeedsAggregator) {
  Simulator sim;
  Network net(sim);
  TwoTierTopology topo = TwoTierTopology::Build(net, 4, LinkConfig{});
  // A packet from any worker to the aggregator raises the bottleneck
  // port's enqueue counter.
  Packet pkt = DataPacket(100);
  pkt.src = topo.workers[0]->id();
  pkt.dst = topo.aggregator->id();
  topo.workers[0]->Send(pkt);
  sim.Run();
  EXPECT_EQ(topo.bottleneck->queue().stats().enqueued, 1u);
}

}  // namespace
}  // namespace dctcpp
