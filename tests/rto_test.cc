// RFC 6298 estimator tests, including the RTO_min knob the paper varies.
#include <gtest/gtest.h>

#include "dctcpp/tcp/rto.h"

namespace dctcpp {
namespace {

using namespace time_literals;

RtoEstimator::Config FloorUs(Tick min_rto) {
  RtoEstimator::Config config;
  config.min_rto = min_rto;
  return config;
}

TEST(RtoTest, InitialRtoBeforeAnySample) {
  RtoEstimator rto;
  EXPECT_FALSE(rto.HasSample());
  EXPECT_EQ(rto.Rto(), 200_ms);
}

TEST(RtoTest, FirstSampleInitializesSrttAndRttvar) {
  RtoEstimator rto(FloorUs(1_ms));
  rto.AddSample(100_us);
  EXPECT_TRUE(rto.HasSample());
  EXPECT_EQ(rto.srtt(), 100_us);
  EXPECT_EQ(rto.rttvar(), 50_us);
  // srtt + 4*rttvar = 300us, below the 1ms floor.
  EXPECT_EQ(rto.Rto(), 1_ms);
}

TEST(RtoTest, FloorDominatesSmallRtts) {
  RtoEstimator rto(FloorUs(200_ms));
  for (int i = 0; i < 100; ++i) rto.AddSample(100_us);
  EXPECT_EQ(rto.Rto(), 200_ms);
}

TEST(RtoTest, TenMillisecondFloor) {
  RtoEstimator rto(FloorUs(10_ms));
  for (int i = 0; i < 100; ++i) rto.AddSample(100_us);
  EXPECT_EQ(rto.Rto(), 10_ms);
}

TEST(RtoTest, LargeRttExceedsFloor) {
  RtoEstimator rto(FloorUs(10_ms));
  for (int i = 0; i < 100; ++i) rto.AddSample(50_ms);
  // Converged: srtt -> 50ms, rttvar -> small; RTO ~ srtt.
  EXPECT_GT(rto.Rto(), 50_ms);
  EXPECT_LT(rto.Rto(), 80_ms);
}

TEST(RtoTest, SmoothingConvergesToSteadyRtt) {
  RtoEstimator rto(FloorUs(1_ms));
  rto.AddSample(1_ms);
  for (int i = 0; i < 200; ++i) rto.AddSample(500_us);
  EXPECT_NEAR(static_cast<double>(rto.srtt()), 500e3, 5e3);
}

TEST(RtoTest, VarianceGrowsWithJitter) {
  RtoEstimator steady(FloorUs(1)), jittery(FloorUs(1));
  for (int i = 0; i < 100; ++i) {
    steady.AddSample(1_ms);
    jittery.AddSample(i % 2 ? 500_us : 1500_us);
  }
  EXPECT_GT(jittery.rttvar(), steady.rttvar());
  EXPECT_GT(jittery.Rto(), steady.Rto());
}

TEST(RtoTest, BackoffDoubles) {
  RtoEstimator rto(FloorUs(100_ms));
  rto.AddSample(1_ms);
  const Tick base = rto.Rto();
  rto.Backoff();
  EXPECT_EQ(rto.Rto(), 2 * base);
  rto.Backoff();
  EXPECT_EQ(rto.Rto(), 4 * base);
  EXPECT_EQ(rto.backoff_shift(), 2);
}

TEST(RtoTest, BackoffCapsAtMax) {
  RtoEstimator::Config config;
  config.min_rto = 200_ms;
  config.max_rto = 2 * kSecond;
  RtoEstimator rto(config);
  for (int i = 0; i < 20; ++i) rto.Backoff();
  EXPECT_EQ(rto.Rto(), 2 * kSecond);
}

TEST(RtoTest, ResetBackoffRestoresBase) {
  RtoEstimator rto(FloorUs(100_ms));
  rto.AddSample(1_ms);
  const Tick base = rto.Rto();
  rto.Backoff();
  rto.Backoff();
  rto.ResetBackoff();
  EXPECT_EQ(rto.Rto(), base);
}

TEST(RtoTest, ClockGranularityLowerBoundsVarTerm) {
  RtoEstimator::Config config;
  config.min_rto = 1;  // effectively no floor
  config.clock_granularity = 10_ms;
  RtoEstimator rto(config);
  for (int i = 0; i < 100; ++i) rto.AddSample(5_ms);
  // rttvar converges toward 0; G=10ms keeps RTO >= srtt + 10ms.
  EXPECT_GE(rto.Rto(), rto.srtt() + 10_ms);
}

}  // namespace
}  // namespace dctcpp
