// Per-simulation slab arena: bump allocation, alignment, oversize slabs,
// and ArenaPtr's destructor-only ownership.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dctcpp/util/arena.h"

namespace dctcpp {
namespace {

TEST(ArenaTest, StartsEmpty) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.slab_count(), 0u);
}

TEST(ArenaTest, AllocationsRespectAlignment) {
  Arena arena;
  // Deliberately misalign the bump pointer between each aligned request.
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, alignof(std::max_align_t)}) {
    arena.Allocate(1, 1);
    void* p = arena.Allocate(16, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(ArenaTest, AdjacentSmallAllocationsAreContiguous) {
  Arena arena;
  // The point of the arena: same-flow state lands adjacent in memory.
  auto* a = static_cast<unsigned char*>(arena.Allocate(8, 8));
  auto* b = static_cast<unsigned char*>(arena.Allocate(8, 8));
  EXPECT_EQ(b, a + 8);
}

TEST(ArenaTest, GrowsByWholeSlabs) {
  Arena arena(/*slab_bytes=*/1024);
  for (int i = 0; i < 100; ++i) arena.Allocate(64, 8);
  EXPECT_EQ(arena.bytes_used(), 6400u);
  // 16 allocations fit per 1 KiB slab exactly.
  EXPECT_EQ(arena.slab_count(), 7u);
  EXPECT_EQ(arena.bytes_reserved(), 7 * 1024u);
  EXPECT_LE(arena.bytes_used(), arena.bytes_reserved());
}

TEST(ArenaTest, OversizeRequestGetsDedicatedSlab) {
  Arena arena(/*slab_bytes=*/1024);
  auto* small = static_cast<unsigned char*>(arena.Allocate(8, 8));
  void* big = arena.Allocate(10000, 8);
  ASSERT_NE(big, nullptr);
  // The oversize slab must not hijack the bump slab: the next small
  // allocation continues right after the first one.
  auto* next = static_cast<unsigned char*>(arena.Allocate(8, 8));
  EXPECT_EQ(next, small + 8);
  EXPECT_EQ(arena.slab_count(), 2u);
  EXPECT_EQ(arena.bytes_reserved(), 1024u + 10000u);
}

TEST(ArenaTest, OversizeFirstAllocationWorks) {
  Arena arena(/*slab_bytes=*/1024);
  void* big = arena.Allocate(5000, 8);
  ASSERT_NE(big, nullptr);
  // A later small allocation still finds (opens) a bump slab.
  void* small = arena.Allocate(16, 8);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(arena.slab_count(), 2u);
}

TEST(ArenaTest, NewConstructsInPlace) {
  Arena arena;
  struct Pair {
    int a;
    int b;
  };
  Pair* p = arena.New<Pair>(Pair{3, 4});
  EXPECT_EQ(p->a, 3);
  EXPECT_EQ(p->b, 4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(Pair), 0u);
}

struct DtorCounter {
  explicit DtorCounter(int* counter) : counter_(counter) {}
  ~DtorCounter() { ++*counter_; }
  int* counter_;
};

TEST(ArenaTest, ArenaPtrRunsDestructorButKeepsBytes) {
  Arena arena;
  int destroyed = 0;
  const std::size_t used_before = arena.bytes_used();
  {
    ArenaPtr<DtorCounter> p = MakeArena<DtorCounter>(arena, &destroyed);
    EXPECT_EQ(destroyed, 0);
    EXPECT_GT(arena.bytes_used(), used_before);
  }
  EXPECT_EQ(destroyed, 1);
  // Destruction reclaims no arena bytes — they return with the arena.
  EXPECT_GT(arena.bytes_used(), used_before);
}

TEST(ArenaTest, ArenaPtrResetAndRelease) {
  Arena arena;
  int destroyed = 0;
  ArenaPtr<DtorCounter> p = MakeArena<DtorCounter>(arena, &destroyed);
  DtorCounter* raw = p.release();
  EXPECT_EQ(destroyed, 0);
  ArenaPtr<DtorCounter>(raw).reset();
  EXPECT_EQ(destroyed, 1);
}

TEST(ArenaTest, ManyObjectsAcrossSlabsStayValid) {
  Arena arena(/*slab_bytes=*/4096);
  std::vector<std::uint64_t*> ptrs;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ptrs.push_back(arena.New<std::uint64_t>(i));
  }
  EXPECT_GT(arena.slab_count(), 1u);
  for (std::uint64_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(*ptrs[i], i);
  }
}

}  // namespace
}  // namespace dctcpp
