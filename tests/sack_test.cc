// Selective-acknowledgment tests: negotiation, receiver SACK blocks,
// scoreboard-driven recovery, and the classic incast finding that SACK
// alone does not fix fan-in collapse.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/newreno.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/tcp/receive_buffer.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

TEST(SackRangesTest, ReportsHeldRangesLowestFirst) {
  ReceiveBuffer rx(SeqNum(1000));
  rx.OnSegment(SeqNum(1100), 50);
  rx.OnSegment(SeqNum(1300), 100);
  const auto ranges = rx.SackRanges(3);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].start, SeqNum(1100));
  EXPECT_EQ(ranges[0].end, SeqNum(1150));
  EXPECT_EQ(ranges[1].start, SeqNum(1300));
  EXPECT_EQ(ranges[1].end, SeqNum(1400));
}

TEST(SackRangesTest, CapsBlockCount) {
  ReceiveBuffer rx(SeqNum(0));
  for (int i = 1; i <= 5; ++i) rx.OnSegment(SeqNum(i * 1000), 100);
  EXPECT_EQ(rx.SackRanges(3).size(), 3u);
  EXPECT_EQ(rx.SackRanges(10).size(), 5u);
}

TEST(SackRangesTest, WorksAcrossWrap) {
  ReceiveBuffer rx(SeqNum(0xFFFFFFF0u));
  rx.OnSegment(SeqNum(0x10), 16);  // past the wrap, hole in front
  const auto ranges = rx.SackRanges(3);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].start, SeqNum(0x10));
  EXPECT_EQ(ranges[0].end, SeqNum(0x20));
}

/// Two hosts with a 10 Gbps ingress and a shallow 1 Gbps bottleneck, as
/// in tcp_test, but with SACK configurable per side.
class SackFixture : public ::testing::Test {
 protected:
  void Build(Bytes buffer, Tick delay = 10_us) {
    net.reset();  // ports hold pinned scheduler events: drop before the sim
    sim = std::make_unique<Simulator>(1);
    net = std::make_unique<Network>(*sim);
    Switch& sw = net->AddSwitch("sw");
    a = &net->AddHost("a");
    b = &net->AddHost("b");
    LinkConfig fast;
    fast.rate = DataRate::GigabitsPerSec(10);
    fast.propagation_delay = delay;
    net->ConnectHost(*a, sw, fast);
    LinkConfig to_b;
    to_b.buffer_bytes = buffer;
    to_b.ecn_threshold = 0;
    to_b.propagation_delay = delay;
    net->ConnectHost(*b, sw, to_b, Network::NicConfig(to_b));
    net->InstallRoutes();
  }

  void Establish(bool client_sack, bool server_sack) {
    TcpSocket::Config client_config;
    client_config.sack = client_sack;
    client_config.rto.min_rto = 200_ms;
    TcpSocket::Config server_config = client_config;
    server_config.sack = server_sack;
    listener = std::make_unique<TcpListener>(
        *b, PortNum{5000},
        [] { return std::make_unique<NewRenoCc>(NewRenoCc::Config{}); },
        server_config, [this](TcpSocket::Ptr s) {
          server = std::move(s);
          server->set_on_data([this](Bytes n) { received += n; });
        });
    client = TcpSocket::Create(
        *a, std::make_unique<NewRenoCc>(NewRenoCc::Config{}),
        client_config);
    client->Connect(b->id(), 5000);
    sim->RunUntil(sim->Now() + 100_ms);
    ASSERT_TRUE(client->Established());
  }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  Host* a = nullptr;
  Host* b = nullptr;
  std::unique_ptr<TcpListener> listener;
  TcpSocket::Ptr client;
  TcpSocket::Ptr server;
  Bytes received = 0;
};

TEST_F(SackFixture, NegotiatedWhenBothSidesEnable) {
  Build(128 * kKiB);
  Establish(true, true);
  EXPECT_TRUE(client->SackNegotiated());
  EXPECT_TRUE(server->SackNegotiated());
}

TEST_F(SackFixture, OffWhenEitherSideDisables) {
  Build(128 * kKiB);
  Establish(true, false);
  EXPECT_FALSE(client->SackNegotiated());
  EXPECT_FALSE(server->SackNegotiated());
  client.reset();
  server.reset();
  listener.reset();
  Build(128 * kKiB);
  Establish(false, true);
  EXPECT_FALSE(client->SackNegotiated());
}

TEST_F(SackFixture, LossyTransferCompletesWithSack) {
  Build(/*buffer=*/6 * 1514);
  Establish(true, true);
  client->Send(1 * kMiB);
  sim->RunUntil(sim->Now() + 30 * kSecond);
  EXPECT_EQ(received, 1 * kMiB);
  EXPECT_GT(client->stats().segments_retransmitted, 0u);
}

TEST_F(SackFixture, SackRecoversBurstLossFasterThanNewReno) {
  // Same loss-heavy path with and without SACK: SACK repairs a multi-hole
  // window within one recovery episode, NewReno reveals one hole per RTT
  // via partial ACKs and falls back to timeouts more often. With the
  // 200 ms RTO floor, every avoided timeout is visible in the total time.
  // A long-RTT path (5 ms propagation) makes NewReno's one-hole-per-RTT
  // partial-ACK crawl measurable against SACK's one-episode repair.
  auto run = [this](bool sack) {
    // Drop the sockets of the previous run before Build() destroys the
    // simulator they were scheduled on: their Timer destructors cancel
    // pending events, which must not touch a freed scheduler.
    client.reset();
    server.reset();
    listener.reset();
    Build(/*buffer=*/16 * 1514, /*delay=*/5_ms);
    received = 0;
    Establish(sack, sack);
    RecordingProbe probe;
    client->set_probe(&probe);
    const Tick start = sim->Now();
    client->Send(2 * kMiB);
    Tick done_at = start;
    while (received < 2 * kMiB && sim->Now() < start + 60 * kSecond) {
      sim->RunUntil(sim->Now() + 1_ms);
      done_at = sim->Now();
    }
    EXPECT_EQ(received, 2 * kMiB);
    return std::make_pair(done_at - start, probe.timeouts());
  };
  const auto [sack_time, sack_timeouts] = run(true);
  const auto [reno_time, reno_timeouts] = run(false);
  EXPECT_LT(sack_time, reno_time);
  EXPECT_LE(sack_timeouts, reno_timeouts);
}

TEST(SackIncastTest, SackDoesNotFixIncastCollapse) {
  // The classic result (Phanishayee et al., FAST'08) that motivates
  // timeout-centric incast work: SACK improves recovery but cannot avoid
  // the full-window losses of deep fan-in, so DCTCP still collapses.
  IncastConfig config;
  config.protocol = Protocol::kDctcp;
  config.num_flows = 80;
  config.rounds = 15;
  config.time_limit = 120 * kSecond;
  const IncastResult without_sack = RunIncast(config);
  config.socket.sack = true;
  const IncastResult with_sack = RunIncast(config);
  // Both sit in RTO-bound collapse (median round near RTO_min = 200 ms).
  EXPECT_GT(without_sack.fct_ms.Median(), 100.0);
  EXPECT_GT(with_sack.fct_ms.Median(), 100.0);
}

}  // namespace
}  // namespace dctcpp
