// SlowTimeRegulator: every transition arc of Fig. 4 / Algorithm 1, the
// AIMD bounds, randomization, and property sweeps over signal sequences.
#include <gtest/gtest.h>

#include "dctcpp/core/slow_time.h"

namespace dctcpp {
namespace {

using namespace time_literals;

SlowTimeRegulator::Config Literal() {
  // The literal Algorithm 1: decay per clean evaluation, engage on the
  // first congested-at-min evaluation.
  SlowTimeRegulator::Config config;
  config.clean_evals_per_decay = 1;
  config.congested_evals_per_entry = 1;
  config.rtt_scaled_unit = false;
  return config;
}

TEST(SlowTimeTest, StartsNormalWithZeroDelay) {
  SlowTimeRegulator reg(Literal());
  Rng rng(1);
  EXPECT_EQ(reg.state(), PlusState::kNormal);
  EXPECT_EQ(reg.slow_time(), 0);
  EXPECT_EQ(reg.PacingDelay(rng), 0);
}

TEST(SlowTimeTest, NormalIgnoresCongestionAboveFloor) {
  SlowTimeRegulator reg(Literal());
  Rng rng(1);
  reg.Evolve(/*congested=*/true, /*cwnd_at_min=*/false, rng);
  EXPECT_EQ(reg.state(), PlusState::kNormal);
  EXPECT_EQ(reg.slow_time(), 0);
}

TEST(SlowTimeTest, EntersTimeIncAtFloorWithCongestion) {
  SlowTimeRegulator reg(Literal());
  Rng rng(1);
  reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.state(), PlusState::kTimeInc);
  EXPECT_LE(reg.slow_time(), reg.config().backoff_time_unit);
  EXPECT_EQ(reg.counters().entered_inc, 1u);
}

TEST(SlowTimeTest, DeterministicVariantAddsFullUnit) {
  auto config = Literal();
  config.randomize = false;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.slow_time(), config.backoff_time_unit);
  reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.slow_time(), 2 * config.backoff_time_unit);
  EXPECT_EQ(reg.counters().inc_steps, 1u);
}

TEST(SlowTimeTest, IncToDesHalves) {
  auto config = Literal();
  config.randomize = false;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);   // -> Inc, slow = unit
  reg.Evolve(true, true, rng);   // slow = 2 units
  reg.Evolve(false, true, rng);  // -> Des, slow = 1 unit
  EXPECT_EQ(reg.state(), PlusState::kTimeDes);
  EXPECT_EQ(reg.slow_time(), config.backoff_time_unit);
  EXPECT_EQ(reg.counters().entered_des, 1u);
}

TEST(SlowTimeTest, DesReturnsToIncOnCongestion) {
  auto config = Literal();
  config.randomize = false;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);
  reg.Evolve(false, true, rng);  // Des
  reg.Evolve(true, true, rng);   // back to Inc with an increment
  EXPECT_EQ(reg.state(), PlusState::kTimeInc);
  EXPECT_GT(reg.slow_time(), 0);
}

TEST(SlowTimeTest, DesDecaysToNormalBelowThreshold) {
  auto config = Literal();
  config.randomize = false;
  config.backoff_time_unit = 100_us;
  config.threshold = 30_us;
  config.divisor_factor = 2;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);   // Inc, 100us
  reg.Evolve(false, true, rng);  // Des, 50us
  EXPECT_EQ(reg.state(), PlusState::kTimeDes);
  reg.Evolve(false, true, rng);  // 50 > 30: halve to 25us
  EXPECT_EQ(reg.state(), PlusState::kTimeDes);
  EXPECT_EQ(reg.slow_time(), 25_us);
  reg.Evolve(false, true, rng);  // 25 <= 30: NORMAL, slow = 0
  EXPECT_EQ(reg.state(), PlusState::kNormal);
  EXPECT_EQ(reg.slow_time(), 0);
  EXPECT_EQ(reg.counters().returned_normal, 1u);
}

TEST(SlowTimeTest, SlowTimeCappedAtMax) {
  auto config = Literal();
  config.randomize = false;
  config.max_slow_time = 5 * config.backoff_time_unit;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.slow_time(), config.max_slow_time);
}

TEST(SlowTimeTest, RandomizedIncrementsVary) {
  SlowTimeRegulator reg(Literal());
  Rng rng(7);
  std::set<Tick> values;
  for (int i = 0; i < 20; ++i) {
    reg.Evolve(true, true, rng);
    values.insert(reg.slow_time());
  }
  EXPECT_GT(values.size(), 10u);  // increments differ
}

TEST(SlowTimeTest, RttHintEscalatesOnlyAfterSustainedCongestion) {
  auto config = Literal();
  config.randomize = false;
  config.rtt_scaled_unit = true;
  config.backoff_time_unit = 100_us;
  config.rtt_scale_after_units = 3;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  // Below 3 base units: increments stay at the cheap base unit even with
  // a large RTT hint (light engagement must stay cheap).
  reg.Evolve(true, true, rng, /*rtt_hint=*/2_ms);
  EXPECT_EQ(reg.slow_time(), 100_us);
  reg.Evolve(true, true, rng, 2_ms);
  reg.Evolve(true, true, rng, 2_ms);
  EXPECT_EQ(reg.slow_time(), 300_us);
  // At 3 units the episode is sustained: the unit follows srtt.
  reg.Evolve(true, true, rng, 2_ms);
  EXPECT_EQ(reg.slow_time(), 300_us + 2_ms);
}

TEST(SlowTimeTest, RttHintIgnoredWhenScalingDisabled) {
  auto config = Literal();
  config.randomize = false;
  config.rtt_scaled_unit = false;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng, /*rtt_hint=*/2_ms);
  EXPECT_EQ(reg.slow_time(), config.backoff_time_unit);
}

TEST(SlowTimeTest, DecayCadenceRequiresConsecutiveCleanEvals) {
  auto config = Literal();
  config.randomize = false;
  config.clean_evals_per_decay = 2;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);  // Inc, 1 unit
  reg.Evolve(true, true, rng);  // 2 units
  reg.Evolve(false, true, rng);  // clean #1: no change yet
  EXPECT_EQ(reg.state(), PlusState::kTimeInc);
  EXPECT_EQ(reg.slow_time(), 2 * config.backoff_time_unit);
  reg.Evolve(false, true, rng);  // clean #2: Des + halve
  EXPECT_EQ(reg.state(), PlusState::kTimeDes);
  EXPECT_EQ(reg.slow_time(), config.backoff_time_unit);
}

TEST(SlowTimeTest, CongestionResetsCleanStreak) {
  auto config = Literal();
  config.randomize = false;
  config.clean_evals_per_decay = 2;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);
  reg.Evolve(false, true, rng);  // clean #1
  reg.Evolve(true, true, rng);   // congestion resets the streak
  reg.Evolve(false, true, rng);  // clean #1 again
  EXPECT_EQ(reg.state(), PlusState::kTimeInc);
}

TEST(SlowTimeTest, EntryHysteresisDelaysEngagement) {
  auto config = Literal();
  config.congested_evals_per_entry = 3;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);
  reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.state(), PlusState::kNormal);
  reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.state(), PlusState::kTimeInc);
}

TEST(SlowTimeTest, EntryStreakResetByNonCongestedEval) {
  auto config = Literal();
  config.congested_evals_per_entry = 2;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  reg.Evolve(true, true, rng);
  reg.Evolve(false, true, rng);  // breaks the streak
  reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.state(), PlusState::kNormal);
  reg.Evolve(true, true, rng);
  EXPECT_EQ(reg.state(), PlusState::kTimeInc);
}

TEST(SlowTimeTest, PacingDelayZeroOnlyInNormal) {
  auto config = Literal();
  config.randomize = false;
  SlowTimeRegulator reg(config);
  Rng rng(1);
  EXPECT_EQ(reg.PacingDelay(rng), 0);
  reg.Evolve(true, true, rng);
  EXPECT_GT(reg.PacingDelay(rng), 0);
  reg.Evolve(false, true, rng);  // Des
  EXPECT_GT(reg.PacingDelay(rng), 0);
}

TEST(SlowTimeTest, RandomizedPacingDelayJittersAroundSlowTime) {
  SlowTimeRegulator reg(Literal());
  Rng rng(3);
  for (int i = 0; i < 10; ++i) reg.Evolve(true, true, rng);
  const Tick st = reg.slow_time();
  ASSERT_GT(st, 0);
  for (int i = 0; i < 1000; ++i) {
    const Tick d = reg.PacingDelay(rng);
    ASSERT_GE(d, st / 2);
    ASSERT_LE(d, st / 2 + st);
  }
}

TEST(SlowTimeTest, ToStringNamesStates) {
  EXPECT_STREQ(ToString(PlusState::kNormal), "DCTCP_NORMAL");
  EXPECT_STREQ(ToString(PlusState::kTimeInc), "DCTCP_Time_Inc");
  EXPECT_STREQ(ToString(PlusState::kTimeDes), "DCTCP_Time_Des");
}

/// Property sweep: under arbitrary signal sequences the invariants hold:
/// slow_time in [0, max]; slow_time == 0 iff NORMAL... (NORMAL implies 0);
/// state transitions only along Fig. 4 arcs.
class RegulatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegulatorProperty, InvariantsUnderRandomSignals) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  SlowTimeRegulator::Config config;
  config.clean_evals_per_decay = 1 + GetParam() % 3;
  config.congested_evals_per_entry = 1 + GetParam() % 2;
  config.randomize = GetParam() % 2 == 0;
  SlowTimeRegulator reg(config);
  PlusState prev = reg.state();
  for (int i = 0; i < 5000; ++i) {
    const bool congested = rng.Chance(0.4);
    const bool at_min = rng.Chance(0.7);
    reg.Evolve(congested, at_min, rng, rng.UniformTick(3_ms));
    const PlusState cur = reg.state();
    ASSERT_GE(reg.slow_time(), 0);
    ASSERT_LE(reg.slow_time(), config.max_slow_time);
    if (cur == PlusState::kNormal) ASSERT_EQ(reg.slow_time(), 0);
    // Legal arcs only (Fig. 4): Normal<->Inc, Inc<->Des, Des->Normal.
    if (prev == PlusState::kNormal) {
      ASSERT_NE(cur, PlusState::kTimeDes);
    }
    if (prev == PlusState::kTimeDes && cur != PlusState::kTimeDes) {
      ASSERT_TRUE(cur == PlusState::kNormal || cur == PlusState::kTimeInc);
    }
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegulatorProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace dctcpp
