// RED marking tests: the EWMA/probability mechanics and DCTCP-over-RED
// end to end.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/queue.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {
namespace {

using namespace time_literals;

Packet EctPacket(Bytes payload = 1460) {
  Packet pkt;
  pkt.payload = payload;
  pkt.ecn = Ecn::kEct;
  return pkt;
}

TEST(RedQueueTest, NoMarkingBelowMinThreshold) {
  Rng rng(1);
  DropTailEcnQueue q(1 * kMiB, 0);
  RedConfig red;
  red.min_th = 64 * 1024;
  red.max_th = 128 * 1024;
  red.weight = 1.0;  // average == instantaneous, for determinism
  q.EnableRed(red, &rng);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Enqueue(EctPacket()));
  EXPECT_EQ(q.stats().marked, 0u);
}

TEST(RedQueueTest, AlwaysMarksAboveMaxThreshold) {
  Rng rng(1);
  DropTailEcnQueue q(4 * kMiB, 0);
  RedConfig red;
  red.min_th = 2 * 1514;
  red.max_th = 4 * 1514;
  red.weight = 1.0;
  q.EnableRed(red, &rng);
  for (int i = 0; i < 10; ++i) q.Enqueue(EctPacket());
  // Occupancy passed max_th after 4 packets; everything beyond is marked.
  std::uint64_t marked = q.stats().marked;
  EXPECT_GE(marked, 5u);
  // The first packets (below min_th) are never marked.
  EXPECT_EQ(q.Dequeue()->ecn, Ecn::kEct);
}

TEST(RedQueueTest, ProbabilisticBandMarksExpectedFraction) {
  Rng rng(7);
  DropTailEcnQueue q(16 * kMiB, 0);
  RedConfig red;
  red.min_th = 1;
  red.max_th = 10 * 1514;
  red.max_p = 0.5;
  red.weight = 1.0;  // average == occupancy at arrival
  q.EnableRed(red, &rng);
  // Standing queue of 5 packets: every arrival sees the average mid-band,
  // so the marking probability is ~0.5 * (7570/15140) = 0.25.
  for (int i = 0; i < 5; ++i) q.Enqueue(EctPacket());
  const std::uint64_t baseline = q.stats().marked;
  constexpr int kArrivals = 4000;
  for (int i = 0; i < kArrivals; ++i) {
    q.Enqueue(EctPacket());
    q.Dequeue();
  }
  const auto marked = static_cast<double>(q.stats().marked - baseline);
  EXPECT_NEAR(marked / kArrivals, 0.25, 0.05);
}

TEST(RedQueueTest, AverageTracksOccupancySlowlyWithSmallWeight) {
  Rng rng(1);
  DropTailEcnQueue q(4 * kMiB, 0);
  RedConfig red;
  red.weight = 0.002;
  q.EnableRed(red, &rng);
  for (int i = 0; i < 10; ++i) q.Enqueue(EctPacket());
  // Instantaneous queue ~15 KB, but the EWMA has barely moved — the lag
  // that makes RED miss microbursts (the DCTCP argument).
  EXPECT_LT(q.AverageQueue(), 1000.0);
  EXPECT_GT(q.AverageQueue(), 0.0);
}

TEST(RedQueueTest, NonEctNeverMarked) {
  Rng rng(1);
  DropTailEcnQueue q(4 * kMiB, 0);
  RedConfig red;
  red.min_th = 1;
  red.max_th = 2;
  red.weight = 1.0;
  q.EnableRed(red, &rng);
  for (int i = 0; i < 10; ++i) {
    Packet pkt;
    pkt.payload = 1460;
    pkt.ecn = Ecn::kNotEct;
    q.Enqueue(pkt);
  }
  EXPECT_EQ(q.stats().marked, 0u);
}

TEST(RedQueueTest, MarkedCounterMatchesCeCodepointsInQueue) {
  Rng rng(5);
  DropTailEcnQueue q(16 * kMiB, 0);
  RedConfig red;
  red.min_th = 1;
  red.max_th = 4 * 1514;
  red.max_p = 1.0;
  red.weight = 1.0;
  q.EnableRed(red, &rng);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(q.Enqueue(EctPacket()));
  EXPECT_EQ(q.stats().enqueued, 200u);
  // stats().marked is exactly the number of CE-stamped packets stored —
  // the marking mutates the queue's slot, not the caller's copy.
  std::uint64_t ce = 0;
  while (!q.Empty()) {
    if (q.Front().ecn == Ecn::kCe) ++ce;
    q.PopFront();
  }
  EXPECT_GT(ce, 0u);
  EXPECT_EQ(q.stats().marked, ce);
}

// Determinism invariant of the datapath rework: the RED EWMA and RNG
// advance identically on every arrival whether or not the packet is
// ECN-capable, so a mixed ECT/non-ECT workload cannot shift the marking
// decisions seen by later arrivals.
TEST(RedQueueTest, EwmaAndRngAdvancePerArrivalRegardlessOfEct) {
  Rng rng_ect(99);
  Rng rng_mixed(99);
  DropTailEcnQueue ect(16 * kMiB, 0);
  DropTailEcnQueue mixed(16 * kMiB, 0);
  RedConfig red;
  red.min_th = 1;
  red.max_th = 20 * 1514;
  red.max_p = 0.5;
  red.weight = 0.1;
  ect.EnableRed(red, &rng_ect);
  mixed.EnableRed(red, &rng_mixed);
  for (int i = 0; i < 500; ++i) {
    Packet pkt = EctPacket();
    ect.Enqueue(pkt);
    if (i % 3 == 0) pkt.ecn = Ecn::kNotEct;
    mixed.Enqueue(pkt);
    if (i % 2 == 1) {
      ect.PopFront();
      mixed.PopFront();
    }
  }
  EXPECT_DOUBLE_EQ(ect.AverageQueue(), mixed.AverageQueue());
  // Both queues consumed the same number of random draws.
  EXPECT_EQ(rng_ect.Next(), rng_mixed.Next());
  // But the CE codepoint only ever lands on ECT packets.
  EXPECT_GT(ect.stats().marked, mixed.stats().marked);
  EXPECT_GT(mixed.stats().marked, 0u);
}

TEST(RedIntegrationTest, DctcpOverRedTransfers) {
  Simulator sim(1);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig fast;
  fast.rate = DataRate::GigabitsPerSec(10);
  net.ConnectHost(a, sw, fast);
  LinkConfig to_b;
  to_b.red = true;  // replace instantaneous-K with RED
  net.ConnectHost(b, sw, to_b, Network::NicConfig(LinkConfig{}));
  net.InstallRoutes();

  Bytes received = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      b, 5000, [] { return MakeCongestionOps(Protocol::kDctcp); },
      TcpSocket::Config{}, [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) { received += n; });
      });
  TcpSocket client(a, MakeCongestionOps(Protocol::kDctcp),
                   TcpSocket::Config{});
  client.set_on_connected([&] { client.Send(2 * kMiB); });
  client.Connect(b.id(), 5000);
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(received, 2 * kMiB);
  EXPECT_GT(net.PortTowardsHost(sw, b).queue().stats().marked, 0u);
}

}  // namespace
}  // namespace dctcpp
