// DCTCP+ end-to-end behaviour: engagement at the window floor, pacing,
// growth freeze, protocol factory, and the full-vs-partial distinction.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/core/dctcp_plus.h"
#include "dctcpp/core/protocol.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {
namespace {

using namespace time_literals;

TEST(DctcpPlusUnitTest, DefaultsMatchPaper) {
  DctcpPlusCc cc;
  EXPECT_STREQ(cc.Name(), "dctcp+");
  EXPECT_TRUE(cc.EcnCapable());
  EXPECT_TRUE(cc.DctcpStyleReceiver());
  // Sec. VI footnote 3: the floor drops to 1 MSS for smoother handoff
  // between window and interval regulation.
  EXPECT_EQ(cc.MinCwnd(), 1);
  EXPECT_EQ(cc.plus_state(), PlusState::kNormal);
  EXPECT_EQ(cc.slow_time(), 0);
}

TEST(ProtocolFactoryTest, NamesRoundTrip) {
  for (Protocol p : {Protocol::kTcp, Protocol::kDctcp, Protocol::kDctcpPlus,
                     Protocol::kDctcpPlusPartial}) {
    EXPECT_EQ(ParseProtocol(ToString(p)), p);
  }
}

TEST(ProtocolFactoryTest, BuildsDistinctOps) {
  auto tcp = MakeCongestionOps(Protocol::kTcp);
  auto dctcp = MakeCongestionOps(Protocol::kDctcp);
  auto plus = MakeCongestionOps(Protocol::kDctcpPlus);
  EXPECT_FALSE(tcp->EcnCapable());
  EXPECT_TRUE(dctcp->EcnCapable());
  EXPECT_TRUE(plus->EcnCapable());
  EXPECT_EQ(dctcp->MinCwnd(), 2);
  EXPECT_EQ(plus->MinCwnd(), 1);
}

TEST(ProtocolFactoryTest, MinCwndOverride) {
  ProtocolOptions options;
  options.min_cwnd = 1;
  auto dctcp = MakeCongestionOps(Protocol::kDctcp, options);
  EXPECT_EQ(dctcp->MinCwnd(), 1);
}

TEST(ProtocolFactoryTest, PartialVariantDisablesRandomization) {
  auto partial = MakeCongestionOps(Protocol::kDctcpPlusPartial);
  auto& cc = static_cast<DctcpPlusCc&>(*partial);
  EXPECT_FALSE(cc.regulator().config().randomize);
  EXPECT_FALSE(cc.regulator().config().rtt_scaled_unit);
  auto full = MakeCongestionOps(Protocol::kDctcpPlus);
  EXPECT_TRUE(
      static_cast<DctcpPlusCc&>(*full).regulator().config().randomize);
}

/// Two hosts through a heavily marking bottleneck: the client's cwnd is
/// forced to the floor with ECE still arriving, which must engage the
/// interval regulation.
class DctcpPlusFixture : public ::testing::Test {
 protected:
  void Build(Bytes threshold) {
    net.reset();  // ports hold pinned scheduler events: drop before the sim
    sim = std::make_unique<Simulator>(1);
    net = std::make_unique<Network>(*sim);
    Switch& sw = net->AddSwitch("sw");
    a = &net->AddHost("a");
    b = &net->AddHost("b");
    LinkConfig fast;  // 10 Gbps ingress makes sw->b a real bottleneck
    fast.rate = DataRate::GigabitsPerSec(10);
    net->ConnectHost(*a, sw, fast);
    LinkConfig to_b;
    to_b.ecn_threshold = threshold;
    net->ConnectHost(*b, sw, to_b, Network::NicConfig(LinkConfig{}));
    net->InstallRoutes();
  }

  void Establish(DctcpPlusCc::Config cc_config = {}) {
    listener = std::make_unique<TcpListener>(
        *b, PortNum{5000},
        [cc_config] { return std::make_unique<DctcpPlusCc>(cc_config); },
        TcpSocket::Config{}, [this](TcpSocket::Ptr s) {
          server = std::move(s);
          server->set_on_data([this](Bytes n) { received += n; });
        });
    client = TcpSocket::Create(
        *a, std::make_unique<DctcpPlusCc>(cc_config), TcpSocket::Config{});
    client->Connect(b->id(), 5000);
    sim->RunUntil(sim->Now() + 100_ms);
    ASSERT_TRUE(client->Established());
  }

  DctcpPlusCc& plus() { return static_cast<DctcpPlusCc&>(client->cc()); }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  Host* a = nullptr;
  Host* b = nullptr;
  std::unique_ptr<TcpListener> listener;
  TcpSocket::Ptr client;
  TcpSocket::Ptr server;
  Bytes received = 0;
};

TEST_F(DctcpPlusFixture, EngagesUnderPersistentMarking) {
  Build(/*threshold=*/1);  // mark every packet: alpha -> 1, cwnd -> floor
  Establish();
  // Modest size: with every packet marked the regulator ramps slow_time
  // hard, so the paced transfer is deliberately slow.
  const Bytes size = 128 * 1024;
  client->Send(size);
  bool engaged = false;
  const Tick deadline = sim->Now() + 30 * kSecond;
  while (sim->Now() < deadline && received < size) {
    sim->RunUntil(sim->Now() + 1_ms);
    if (plus().plus_state() != PlusState::kNormal) engaged = true;
  }
  EXPECT_EQ(received, size);
  EXPECT_TRUE(engaged);
  EXPECT_GT(plus().regulator().counters().entered_inc, 0u);
}

TEST_F(DctcpPlusFixture, WindowPinnedAtFloorWhileEngaged) {
  Build(/*threshold=*/1);
  Establish();
  const Bytes size = 128 * 1024;
  client->Send(size);
  const Tick deadline = sim->Now() + 30 * kSecond;
  while (sim->Now() < deadline && received < size) {
    sim->RunUntil(sim->Now() + 500_us);
    if (plus().plus_state() == PlusState::kTimeInc &&
        !client->InRecovery()) {
      ASSERT_LE(client->cwnd(), plus().MinCwnd());
    }
  }
  EXPECT_EQ(received, size);
}

TEST_F(DctcpPlusFixture, StaysNormalOnCleanPath) {
  Build(/*threshold=*/0);  // no marking at all
  Establish();
  client->Send(1 * kMiB);
  sim->RunUntil(sim->Now() + 2 * kSecond);
  EXPECT_EQ(received, 1 * kMiB);
  // With ECN negotiated but no CE ever set, the machine never engages.
  EXPECT_EQ(plus().regulator().counters().entered_inc, 0u);
}

TEST_F(DctcpPlusFixture, SlowerThanUnpacedUnderMarkingButCompletes) {
  Build(/*threshold=*/1);
  Establish();
  const Tick start = sim->Now();
  client->Send(128 * 1024);
  sim->RunUntil(start + 30 * kSecond);
  ASSERT_EQ(received, 128 * 1024);
  // The transfer is paced (slower than line rate) yet loss-free.
  EXPECT_EQ(client->stats().segments_retransmitted, 0u);
}

TEST_F(DctcpPlusFixture, TimeoutEngagesRegulator) {
  // No marking, tiny buffer: losses and RTOs are the congestion signal.
  net.reset();  // ports hold pinned scheduler events: drop before the sim
  sim = std::make_unique<Simulator>(1);
  net = std::make_unique<Network>(*sim);
  Switch& sw = net->AddSwitch("sw");
  a = &net->AddHost("a");
  b = &net->AddHost("b");
  LinkConfig fast;
  fast.rate = DataRate::GigabitsPerSec(10);
  net->ConnectHost(*a, sw, fast);
  LinkConfig tiny;
  tiny.buffer_bytes = 2 * 1514;
  tiny.ecn_threshold = 0;
  net->ConnectHost(*b, sw, tiny, Network::NicConfig(LinkConfig{}));
  net->InstallRoutes();
  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;
  listener = std::make_unique<TcpListener>(
      *b, PortNum{5000},
      [] { return std::make_unique<DctcpPlusCc>(); }, socket_config,
      [this](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([this](Bytes n) { received += n; });
      });
  client = TcpSocket::Create(*a, std::make_unique<DctcpPlusCc>(),
                                       socket_config);
  client->Connect(b->id(), 5000);
  sim->RunUntil(sim->Now() + 100_ms);
  client->Send(1 * kMiB);
  sim->RunUntil(sim->Now() + 30 * kSecond);
  EXPECT_EQ(received, 1 * kMiB);
  EXPECT_GT(plus().regulator().counters().entered_inc, 0u);
}

}  // namespace
}  // namespace dctcpp
