// Wrap-safe sequence arithmetic, including parameterized sweeps across the
// 32-bit wrap point.
#include <gtest/gtest.h>

#include <cstdint>

#include "dctcpp/tcp/seq.h"

namespace dctcpp {
namespace {

TEST(SeqNumTest, BasicOrdering) {
  EXPECT_LT(SeqNum(1), SeqNum(2));
  EXPECT_GT(SeqNum(2), SeqNum(1));
  EXPECT_LE(SeqNum(2), SeqNum(2));
  EXPECT_GE(SeqNum(2), SeqNum(2));
  EXPECT_EQ(SeqNum(5), SeqNum(5));
  EXPECT_NE(SeqNum(5), SeqNum(6));
}

TEST(SeqNumTest, AdditionWraps) {
  const SeqNum near_max(0xFFFFFFFFu);
  EXPECT_EQ((near_max + 1).raw(), 0u);
  EXPECT_EQ((near_max + 10).raw(), 9u);
}

TEST(SeqNumTest, SubtractionWraps) {
  const SeqNum zero(0);
  EXPECT_EQ((zero - 1).raw(), 0xFFFFFFFFu);
}

TEST(SeqNumTest, OrderingAcrossWrap) {
  const SeqNum before(0xFFFFFF00u);
  const SeqNum after = before + 0x200;  // wrapped past zero
  EXPECT_LT(before, after);
  EXPECT_GT(after, before);
}

TEST(SeqNumTest, DistanceAcrossWrap) {
  const SeqNum a(0xFFFFFFF0u);
  const SeqNum b = a + 0x20;
  EXPECT_EQ(b.DistanceFrom(a), 0x20);
  EXPECT_EQ(a.DistanceFrom(b), -0x20);
}

TEST(SeqNumTest, CompoundAdd) {
  SeqNum s(10);
  s += 5;
  EXPECT_EQ(s.raw(), 15u);
  s += -3;
  EXPECT_EQ(s.raw(), 12u);
}

TEST(SeqNumTest, MinMax) {
  const SeqNum a(100), b(200);
  EXPECT_EQ(SeqMax(a, b), b);
  EXPECT_EQ(SeqMin(a, b), a);
  // Across wrap: b logically after a.
  const SeqNum c(0xFFFFFFFEu);
  const SeqNum d = c + 5;
  EXPECT_EQ(SeqMax(c, d), d);
  EXPECT_EQ(SeqMin(c, d), c);
}

/// Property sweep: for bases spread over the whole 32-bit space (including
/// the wrap point), adding k always yields a strictly greater sequence
/// number with the right distance, for k within the valid half-window.
class SeqWrapProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SeqWrapProperty, AdditionOrderingAndDistanceHold) {
  const SeqNum base(GetParam());
  for (std::int64_t k : {1LL, 100LL, 65535LL, 1LL << 20, (1LL << 31) - 1}) {
    const SeqNum moved = base + k;
    EXPECT_GT(moved, base) << "base=" << GetParam() << " k=" << k;
    EXPECT_EQ(moved.DistanceFrom(base), static_cast<std::int32_t>(k));
    EXPECT_EQ((moved - k), base);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WrapSweep, SeqWrapProperty,
    ::testing::Values(0u, 1u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu,
                      0xFFFF0000u, 0x12345678u, 0xDEADBEEFu));

}  // namespace
}  // namespace dctcpp
