// Tests for the conservative-parallel engine (net/parallel.h): arrival
// calendar ordering, the window gang's epoch protocol, and the load-bearing
// property of the whole design — an incast run is bit-identical at every
// shard count, whatever thread pool runs the windows.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dctcpp/net/parallel.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

TEST(ArrivalCalendarTest, OrdersByTickThenKey) {
  ArrivalCalendar cal;
  EXPECT_TRUE(cal.Empty());
  EXPECT_EQ(cal.NextTime(), kTickMax);

  // Insert in scrambled order; expect (at, key) order out.
  Rng rng(7);
  std::vector<CalendarEntry> entries;
  for (int i = 0; i < 200; ++i) {
    CalendarEntry e;
    e.at = static_cast<Tick>(rng.Next() % 16);  // force many tick ties
    e.key = rng.Next();
    entries.push_back(e);
  }
  for (const auto& e : entries) cal.Push(e);
  ASSERT_EQ(cal.Size(), entries.size());

  Tick prev_at = -1;
  std::uint64_t prev_key = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(cal.NextTime(), cal.NextTime());
    const CalendarEntry e = cal.PopEarliest();
    if (e.at == prev_at) {
      EXPECT_GT(e.key, prev_key);
    } else {
      EXPECT_GT(e.at, prev_at);
    }
    prev_at = e.at;
    prev_key = e.key;
  }
  EXPECT_TRUE(cal.Empty());
}

TEST(ArrivalCalendarTest, InsertionOrderOfTiedTicksIsIrrelevant) {
  // Two calendars fed the same entries in opposite order must drain
  // identically — the property mailbox merges rely on.
  std::vector<CalendarEntry> entries;
  for (int i = 0; i < 32; ++i) {
    CalendarEntry e;
    e.at = 5;
    e.key = static_cast<std::uint64_t>(31 - i);
    entries.push_back(e);
  }
  ArrivalCalendar fwd;
  ArrivalCalendar rev;
  for (const auto& e : entries) fwd.Push(e);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) rev.Push(*it);
  while (!fwd.Empty()) {
    ASSERT_FALSE(rev.Empty());
    EXPECT_EQ(fwd.PopEarliest().key, rev.PopEarliest().key);
  }
  EXPECT_TRUE(rev.Empty());
}

TEST(WindowGangTest, EveryTaskRunsExactlyOncePerWindow) {
  constexpr int kTasks = 5;
  constexpr int kWindows = 20000;  // enough to expose epoch races
  ThreadPool pool(3);
  std::atomic<std::uint64_t> counts[kTasks] = {};
  {
    WindowGang gang(pool, /*helpers=*/3, [&counts](int t) {
      counts[t].fetch_add(1, std::memory_order_relaxed);
    });
    for (int w = 0; w < kWindows; ++w) {
      // Window sizes vary, exercising the count re-publish.
      gang.Run(1 + w % kTasks);
    }
  }
  std::uint64_t expected[kTasks] = {};
  for (int w = 0; w < kWindows; ++w) {
    for (int t = 0; t < 1 + w % kTasks; ++t) ++expected[t];
  }
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(counts[t].load(), expected[t]) << "task " << t;
  }
}

TEST(WindowGangTest, OversubscribedGangCompletesEveryWindow) {
  // Far more helpers than this machine plausibly has cores: the backoff
  // (pause -> yield -> short sleep) must degrade to parked helpers, not
  // livelock, and the epoch protocol must stay correct when helpers wake
  // several windows late.
  constexpr int kHelpers = 8;
  constexpr int kTasks = 6;
  constexpr int kWindows = 3000;
  ThreadPool pool(kHelpers);
  std::atomic<std::uint64_t> counts[kTasks] = {};
  {
    WindowGang gang(pool, kHelpers, [&counts](int t) {
      counts[t].fetch_add(1, std::memory_order_relaxed);
    });
    for (int w = 0; w < kWindows; ++w) gang.Run(1 + w % kTasks);
  }
  std::uint64_t expected[kTasks] = {};
  for (int w = 0; w < kWindows; ++w) {
    for (int t = 0; t < 1 + w % kTasks; ++t) ++expected[t];
  }
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(counts[t].load(), expected[t]) << "task " << t;
  }
}

TEST(WindowGangTest, CallerAloneCompletesWhenPoolIsBusy) {
  // Saturate the one-thread pool so the helper can never start: the
  // caller must still finish every window on its own.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.Post([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> ran{0};
  {
    WindowGang gang(pool, /*helpers=*/1,
                    [&ran](int) { ran.fetch_add(1); });
    for (int w = 0; w < 100; ++w) gang.Run(3);
    release.store(true);
  }
  EXPECT_EQ(ran.load(), 300);
}

// --- shard-count determinism ---------------------------------------------

/// Every field of an IncastResult rendered byte-exactly: integers in
/// decimal, doubles in C99 hex-float ("%a" — no rounding). Two runs are
/// "bit-identical" iff these strings match.
std::string Canonical(const IncastResult& r) {
  std::string out;
  char buf[64];
  auto add_u = [&](const char* k, std::uint64_t v) {
    std::snprintf(buf, sizeof buf, "%s=%llu\n", k,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  auto add_d = [&](const char* k, double v) {
    std::snprintf(buf, sizeof buf, "%s=%a\n", k, v);
    out += buf;
  };
  add_u("rounds", r.rounds_completed);
  add_d("goodput", r.goodput_mbps);
  add_u("fct_n", r.fct_ms.count());
  for (double s : r.fct_ms.samples()) add_d("fct", s);
  for (std::int64_t b = r.cwnd_hist.lo(); b <= r.cwnd_hist.hi(); ++b) {
    add_u("cwnd", r.cwnd_hist.CountAt(b));
  }
  add_u("cwnd_under", r.cwnd_hist.underflow());
  add_u("cwnd_over", r.cwnd_hist.overflow());
  add_u("timeouts", r.timeouts);
  add_u("floss", r.floss_timeouts);
  add_u("lack", r.lack_timeouts);
  add_u("fastrtx", r.fast_retransmits);
  add_u("tr_atmin", r.tracked_rounds_at_min_ece);
  add_u("tr_to", r.tracked_rounds_with_timeout);
  add_u("tr_floss", r.tracked_floss);
  add_u("tr_lack", r.tracked_lack);
  add_u("bn_drops", r.bottleneck_drops);
  add_u("bn_marks", r.bottleneck_marks);
  add_u("bn_maxq", static_cast<std::uint64_t>(r.bottleneck_max_queue));
  add_d("fairness", r.flow_fairness);
  add_u("events", r.events);
  add_u("pkts_fwd", r.packets_forwarded);
  add_d("sim_s", r.sim_seconds);
  add_u("limit", r.hit_time_limit ? 1 : 0);
  add_u("violations", r.invariant_violations);
  add_u("originated", r.packets_originated);
  add_u("dropped", r.packets_dropped);
  add_u("duplicated", r.packets_duplicated);
  add_u("checksum", r.checksum_discards);
  return out;
}

/// Runs `base` at shards {1, 2, 4, 8} with deliberately mismatched pools
/// (including none at all) — in adaptive channel-clock mode AND with the
/// fixed-W oracle at shards {1, 4, 8} — and requires byte-identical
/// summaries across the whole matrix. The ledger is part of Canonical(),
/// so the NetworkInvariants merge is covered by the same comparison, and
/// window counters are NOT part of it (they differ by design: that is
/// the point of adaptive lookahead).
void ExpectShardCountInvariant(IncastConfig base, const char* tag) {
  ThreadPool small_pool(2);
  ThreadPool big_pool(7);
  struct Variant {
    int shards;
    ThreadPool* pool;
    bool fixed_window;
  };
  const Variant variants[] = {
      {1, nullptr, false},     // degenerate sharding, pure inline
      {2, &big_pool, false},   // more helpers than shards
      {4, &small_pool, false},  // fewer helpers than shards
      {8, &big_pool, false},
      {1, nullptr, true},      // PR-5 fixed-W oracle must agree byte-wise
      {4, &small_pool, true},
      {8, &big_pool, true},
  };
  std::string reference;
  int reference_shards = 0;
  for (const Variant& v : variants) {
    base.shards = v.shards;
    base.shard_pool = v.pool;
    base.fixed_window_lookahead = v.fixed_window;
    const IncastResult r = RunIncast(base);
    EXPECT_EQ(r.invariant_violations, 0u)
        << tag << " shards=" << v.shards << " fixed=" << v.fixed_window;
    EXPECT_GT(r.rounds_completed, 0u)
        << tag << " shards=" << v.shards << " fixed=" << v.fixed_window;
    const std::string canon = Canonical(r);
    if (reference.empty()) {
      reference = canon;
      reference_shards = v.shards;
    } else {
      EXPECT_EQ(canon, reference)
          << tag << ": shards=" << v.shards << " fixed=" << v.fixed_window
          << " diverged from shards=" << reference_shards;
    }
  }
}

IncastConfig BaseConfig(Protocol protocol, std::uint64_t seed) {
  IncastConfig config;
  config.protocol = protocol;
  config.num_flows = 48;
  config.num_workers = 9;
  config.per_flow_bytes = 8 * 1024;
  config.rounds = 4;
  config.min_rto = 10 * kMillisecond;
  config.seed = seed;
  return config;
}

TEST(ShardDeterminismTest, CleanDctcpPlus) {
  ExpectShardCountInvariant(BaseConfig(Protocol::kDctcpPlus, 1), "clean+");
}

TEST(ShardDeterminismTest, CleanDctcpOtherSeed) {
  ExpectShardCountInvariant(BaseConfig(Protocol::kDctcp, 42), "clean");
}

TEST(ShardDeterminismTest, ImpairedLinks) {
  // Full fault model in play: loss bursts, reordering, duplication,
  // corruption. Exercises impairment streams, the ledger's duplicated /
  // checksum columns, and retransmission paths across shard boundaries.
  IncastConfig config = BaseConfig(Protocol::kDctcpPlus, 7);
  config.link.impairment.random_loss = 0.005;
  config.link.impairment.ge_p_good_to_bad = 0.002;
  config.link.impairment.ge_p_bad_to_good = 0.3;
  config.link.impairment.ge_loss_bad = 0.8;
  config.link.impairment.reorder_prob = 0.01;
  config.link.impairment.reorder_delay_min = 20 * kMicrosecond;
  config.link.impairment.reorder_delay_max = 60 * kMicrosecond;
  config.link.impairment.duplicate_prob = 0.002;
  config.link.impairment.corrupt_prob = 0.001;
  ExpectShardCountInvariant(config, "impaired");
}

TEST(ShardDeterminismTest, BurstLossReorderAndFlaps) {
  // The full PR-4 impairment battery plus deterministic link flaps: flaps
  // down a link mid-round, stranding packets and forcing RTO recovery —
  // the slowest, most window-sparse phase the adaptive lookahead has to
  // chunk identically to the oracle.
  IncastConfig config = BaseConfig(Protocol::kDctcpPlus, 13);
  config.link.impairment.ge_p_good_to_bad = 0.002;
  config.link.impairment.ge_p_bad_to_good = 0.3;
  config.link.impairment.ge_loss_bad = 0.8;
  config.link.impairment.reorder_prob = 0.01;
  config.link.impairment.reorder_delay_min = 20 * kMicrosecond;
  config.link.impairment.reorder_delay_max = 60 * kMicrosecond;
  config.link.impairment.flaps.push_back(
      {5 * kMillisecond, 6 * kMillisecond});
  config.link.impairment.flaps.push_back(
      {20 * kMillisecond, 22 * kMillisecond});
  ExpectShardCountInvariant(config, "flaps");
}

TEST(ChannelClockTest, AdaptiveWindowsAreFarFewerThanFixed) {
  // The reason the tentpole exists: on the same run the channel-clock
  // engine must reach the same bytes with far fewer barriers than the
  // fixed-W oracle. (The >= 5x acceptance gate lives in parallel_scale on
  // the big N=1400 point; this guards the mechanism at test size.)
  ThreadPool pool(4);
  IncastConfig config = BaseConfig(Protocol::kDctcpPlus, 21);
  config.shards = 4;
  config.shard_pool = &pool;
  config.fixed_window_lookahead = true;
  const IncastResult fixed = RunIncast(config);
  config.fixed_window_lookahead = false;
  const IncastResult adaptive = RunIncast(config);
  EXPECT_EQ(Canonical(adaptive), Canonical(fixed));
  ASSERT_GT(fixed.windows_run, 0u);
  ASSERT_GT(adaptive.windows_run, 0u);
  EXPECT_LT(adaptive.windows_run * 2, fixed.windows_run)
      << "adaptive=" << adaptive.windows_run
      << " fixed=" << fixed.windows_run;
  // sync_rounds keeps the honest causality-barrier count: batching shrinks
  // the number of published windows, not the number of barriers, so
  // sync_rounds must stay in the same regime as the fixed oracle's windows
  // (it can only be lower via genuinely wider horizons, never by counting).
  EXPECT_GE(adaptive.sync_rounds, adaptive.windows_run);
  EXPECT_GT(adaptive.sync_rounds * 2, fixed.windows_run)
      << "adaptive sync_rounds=" << adaptive.sync_rounds
      << " fixed windows=" << fixed.windows_run;
  // windows_run is data-deterministic: publish/segment boundaries are
  // chosen by the coordinator from simulation state only, so a pool-free
  // run of the same config must report the identical count.
  config.shard_pool = nullptr;
  const IncastResult serial = RunIncast(config);
  EXPECT_EQ(Canonical(serial), Canonical(adaptive));
  EXPECT_EQ(serial.windows_run, adaptive.windows_run);
  EXPECT_EQ(serial.sync_rounds, adaptive.sync_rounds);
}

TEST(ChannelClockTest, ClocksNeverRegress) {
  // Property: per-shard channel clocks are monotone across windows. The
  // engine checks every barrier (lookahead_regressions folds into
  // invariant_violations), so driving the nastiest impaired configs at
  // several shard counts and asserting zero violations exercises the
  // property over hundreds of thousands of windows.
  for (const int shards : {2, 4, 8}) {
    ThreadPool pool(3);
    IncastConfig config = BaseConfig(Protocol::kDctcpPlus, 29);
    config.link.impairment.random_loss = 0.005;
    config.link.impairment.reorder_prob = 0.01;
    config.link.impairment.reorder_delay_min = 20 * kMicrosecond;
    config.link.impairment.reorder_delay_max = 60 * kMicrosecond;
    config.link.impairment.flaps.push_back(
        {5 * kMillisecond, 7 * kMillisecond});
    config.shards = shards;
    config.shard_pool = &pool;
    const IncastResult r = RunIncast(config);
    EXPECT_EQ(r.invariant_violations, 0u) << "shards=" << shards;
    EXPECT_GT(r.rounds_completed, 0u) << "shards=" << shards;
  }
}

TEST(ShardDeterminismTest, RedMarkingAndStagger) {
  // RED draws randomness per mark decision — in sharded mode from the
  // port's private stream — and the stagger spreads the round's requests.
  IncastConfig config = BaseConfig(Protocol::kTcp, 3);
  config.link.red = true;
  config.request_stagger = 20 * kMicrosecond;
  ExpectShardCountInvariant(config, "red");
}

TEST(ShardDeterminismTest, RepeatedRunIsBitIdentical) {
  // Same config, same shard count, same pool: the engine must also be
  // deterministic against itself (thread scheduling must not leak in).
  ThreadPool pool(4);
  IncastConfig config = BaseConfig(Protocol::kDctcpPlus, 11);
  config.shards = 4;
  config.shard_pool = &pool;
  const std::string a = Canonical(RunIncast(config));
  const std::string b = Canonical(RunIncast(config));
  EXPECT_EQ(a, b);
}

TEST(ShardedIncastTest, ProducesSaneResults) {
  ThreadPool pool(4);
  IncastConfig config = BaseConfig(Protocol::kDctcpPlus, 5);
  config.rounds = 6;
  config.shards = 4;
  config.shard_pool = &pool;
  const IncastResult r = RunIncast(config);
  EXPECT_EQ(r.rounds_completed, 6u);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_GT(r.goodput_mbps, 0.0);
  EXPECT_GT(r.flow_fairness, 0.5);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.packets_forwarded, 0u);
  EXPECT_GT(r.events, 0u);
}

}  // namespace
}  // namespace dctcpp
