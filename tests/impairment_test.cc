// Deterministic impairment layer: reorder-buffer property tests, packet
// conservation under the full hostile fault pipeline, checksum discard
// end-to-end, per-link RNG stream isolation, Gilbert–Elliott burst
// statistics, and link flap windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "dctcpp/net/impairment.h"
#include "dctcpp/net/link.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/rng.h"

namespace dctcpp {
namespace {

using namespace time_literals;

// ---------------------------------------------------------------------------
// ReorderBuffer property test

// Randomized schedule against an oracle: every packet held must come out
// exactly once, never before its release tick, and in (release tick,
// submission order) within each drain.
TEST(ReorderBufferTest, PropertyExactlyOnceNeverEarlyFifoWithinTick) {
  Rng rng(0xfeedULL);
  ReorderBuffer buf;

  struct Expected {
    Tick release_at;
    std::uint64_t order;
  };
  std::map<std::uint64_t, Expected> outstanding;  // uid -> oracle entry
  std::uint64_t next_uid = 1;
  std::uint64_t next_order = 0;
  std::uint64_t delivered = 0;

  Tick now = 0;
  constexpr int kIterations = 10000;
  for (int it = 0; it < kIterations; ++it) {
    // Hold a small burst with random future release ticks.
    const int burst = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < burst; ++i) {
      Packet pkt;
      pkt.uid = next_uid++;
      const Tick release = now + rng.UniformTick(50);
      buf.Hold(pkt, release);
      outstanding.emplace(pkt.uid, Expected{release, next_order++});
    }
    now += rng.UniformTick(20);

    Tick last_release = -1;
    std::uint64_t last_order = 0;
    buf.ReleaseDue(now, [&](const Packet& pkt) {
      auto it2 = outstanding.find(pkt.uid);
      ASSERT_NE(it2, outstanding.end()) << "released twice or never held";
      EXPECT_LE(it2->second.release_at, now) << "released early";
      // Nondecreasing (release, order) within one drain.
      if (last_release >= 0) {
        EXPECT_TRUE(it2->second.release_at > last_release ||
                    (it2->second.release_at == last_release &&
                     it2->second.order > last_order))
            << "drain order violated";
      }
      last_release = it2->second.release_at;
      last_order = it2->second.order;
      outstanding.erase(it2);
      ++delivered;
    });
    if (!buf.Empty()) {
      EXPECT_GT(buf.NextRelease(), now);  // nothing due is ever left behind
    }
  }

  // Final drain: everything still held comes out exactly once.
  buf.ReleaseDue(kTickMax, [&](const Packet& pkt) {
    auto it2 = outstanding.find(pkt.uid);
    ASSERT_NE(it2, outstanding.end());
    outstanding.erase(it2);
    ++delivered;
  });
  EXPECT_TRUE(buf.Empty());
  EXPECT_TRUE(outstanding.empty()) << outstanding.size() << " packets lost";
  EXPECT_EQ(delivered, next_uid - 1);
}

// ---------------------------------------------------------------------------
// Direct-port fixtures

class CountingSink : public PacketSink {
 public:
  void Deliver(const Packet& pkt) override {
    ++count_;
    uids_.push_back(pkt.uid);
    if (pkt.corrupted) ++corrupted_;
  }
  std::uint64_t count() const { return count_; }
  std::uint64_t corrupted() const { return corrupted_; }
  const std::vector<std::uint64_t>& uids() const { return uids_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t corrupted_ = 0;
  std::vector<std::uint64_t> uids_;
};

Packet TestPacket(std::uint64_t uid) {
  Packet pkt;
  pkt.src = 0;
  pkt.dst = 1;
  pkt.payload = kMss;
  pkt.uid = uid;
  return pkt;
}

TEST(ImpairmentTest, GilbertElliottLossMatchesStationaryRate) {
  // p_gb = 0.01, p_bg = 0.5 -> stationary Bad fraction ~1.96%, mean burst
  // length 2. Over 50k packets the observed loss rate must land near the
  // stationary rate.
  Simulator sim(123);
  CountingSink sink;
  LinkConfig config;
  config.impairment.ge_p_good_to_bad = 0.01;
  config.impairment.ge_p_bad_to_good = 0.5;
  EgressPort port(sim, config, sink);

  constexpr std::uint64_t kPackets = 50000;
  std::uint64_t sent = 0;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    sim.Schedule(static_cast<Tick>(i) * 15 * kMicrosecond,
                 [&] { port.Send(TestPacket(++sent)); });
  }
  sim.Run();

  const auto& stats = port.impairment()->stats();
  EXPECT_EQ(stats.submitted, kPackets);
  const double rate =
      static_cast<double>(stats.burst_losses) / static_cast<double>(kPackets);
  EXPECT_GT(rate, 0.010);
  EXPECT_LT(rate, 0.032);
  EXPECT_EQ(sink.count() + stats.burst_losses, kPackets);
  EXPECT_EQ(sim.invariants().violations(), 0u);
}

TEST(ImpairmentTest, FlapDropsExactlyTheWindow) {
  Simulator sim(5);
  CountingSink sink;
  LinkConfig config;
  config.impairment.flaps = {{1 * kMillisecond, 2 * kMillisecond}};
  EgressPort port(sim, config, sink);

  // One packet before, two inside [down, up), one at the up edge, one
  // after: only the two inside the window die.
  for (Tick at : {500 * kMicrosecond, 1100 * kMicrosecond,
                  1900 * kMicrosecond, 2 * kMillisecond, 2500 * kMicrosecond}) {
    sim.ScheduleAt(at, [&] { port.Send(TestPacket(1)); });
  }
  sim.Run();

  EXPECT_EQ(port.impairment()->stats().link_down_losses, 2u);
  EXPECT_EQ(sink.count(), 3u);
}

TEST(ImpairmentTest, ReorderDeliversEveryPacketExactlyOnce) {
  Simulator sim(77);
  CountingSink sink;
  LinkConfig config;
  config.impairment.reorder_prob = 0.5;
  config.impairment.reorder_delay_min = 50 * kMicrosecond;
  config.impairment.reorder_delay_max = 500 * kMicrosecond;
  EgressPort port(sim, config, sink);

  constexpr std::uint64_t kPackets = 2000;
  for (std::uint64_t i = 1; i <= kPackets; ++i) {
    sim.Schedule(static_cast<Tick>(i) * 20 * kMicrosecond,
                 [&, i] { port.Send(TestPacket(i)); });
  }
  sim.Run();

  // Exactly once each: no loss, no duplication — just permuted.
  ASSERT_EQ(sink.count(), kPackets);
  std::vector<std::uint64_t> sorted = sink.uids();
  EXPECT_FALSE(std::is_sorted(sorted.begin(), sorted.end()))
      << "reordering never displaced a packet";
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t i = 1; i <= kPackets; ++i) {
    ASSERT_EQ(sorted[i - 1], i);
  }
  EXPECT_GT(port.impairment()->stats().reordered, 0u);
  EXPECT_EQ(port.impairment()->stats().reordered,
            port.impairment()->stats().released);
  EXPECT_EQ(sim.invariants().violations(), 0u);
}

// ---------------------------------------------------------------------------
// Host-level (ledger) tests

struct HostRig {
  Simulator sim;
  Network net{sim};
  Switch* sw = nullptr;
  Host* a = nullptr;
  Host* b = nullptr;

  HostRig(std::uint64_t seed, const ImpairmentConfig& a_nic,
          const ImpairmentConfig& b_nic = {})
      : sim(seed) {
    sw = &net.AddSwitch("sw");
    a = &net.AddHost("a");
    b = &net.AddHost("b");
    LinkConfig clean;
    LinkConfig a_cfg = Network::NicConfig(clean);
    a_cfg.impairment = a_nic;
    LinkConfig b_cfg = Network::NicConfig(clean);
    b_cfg.impairment = b_nic;
    net.ConnectHost(*a, *sw, clean, a_cfg);
    net.ConnectHost(*b, *sw, clean, b_cfg);
    net.InstallRoutes();
  }
};

TEST(ImpairmentTest, LedgerConservedUnderHostileProfile) {
  // Everything at once: burst loss, i.i.d. loss, reordering, duplication,
  // corruption, and a flap in the middle of the run. After the network
  // drains, the ledger must balance to the packet: originated + duplicated
  // == delivered + dropped.
  ImpairmentConfig hostile;
  hostile.ge_p_good_to_bad = 0.01;
  hostile.ge_p_bad_to_good = 0.3;
  hostile.random_loss = 0.02;
  hostile.reorder_prob = 0.05;
  hostile.duplicate_prob = 0.03;
  hostile.corrupt_prob = 0.02;
  hostile.flaps = {{20 * kMillisecond, 25 * kMillisecond}};
  HostRig rig(31, hostile);

  constexpr std::uint64_t kPackets = 20000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    rig.sim.Schedule(static_cast<Tick>(i) * 5 * kMicrosecond, [&] {
      Packet pkt;
      pkt.src = rig.a->id();
      pkt.dst = rig.b->id();
      pkt.payload = kMss;
      rig.a->Send(pkt);
    });
  }
  rig.sim.Run();

  NetworkInvariants& inv = rig.sim.invariants();
  inv.CheckDrained();  // fully drained: the population must be zero
  EXPECT_EQ(inv.violations(), 0u) << inv.first_violation();
  const auto& ledger = inv.ledger();
  EXPECT_EQ(ledger.originated, kPackets);
  EXPECT_EQ(ledger.originated + ledger.duplicated,
            ledger.delivered + ledger.dropped);
  // Every fault class actually fired.
  const auto& stats = rig.a->uplink().impairment()->stats();
  EXPECT_GT(stats.burst_losses, 0u);
  EXPECT_GT(stats.random_losses, 0u);
  EXPECT_GT(stats.reordered, 0u);
  EXPECT_GT(stats.duplicates, 0u);
  EXPECT_GT(stats.corruptions, 0u);
  EXPECT_GT(stats.link_down_losses, 0u);
  EXPECT_EQ(rig.b->checksum_drops(), ledger.checksum_discards);
}

TEST(ImpairmentTest, CorruptedPacketsDiscardedByReceiverChecksum) {
  ImpairmentConfig corrupting;
  corrupting.corrupt_prob = 1.0;
  HostRig rig(9, corrupting);

  constexpr std::uint64_t kPackets = 50;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    rig.sim.Schedule(static_cast<Tick>(i) * 100 * kMicrosecond, [&] {
      Packet pkt;
      pkt.src = rig.a->id();
      pkt.dst = rig.b->id();
      pkt.payload = 256;
      rig.a->Send(pkt);
    });
  }
  rig.sim.Run();

  // Switches forward corrupted packets; the destination host discards
  // every one at checksum verification, before demux.
  EXPECT_EQ(rig.sw->corrupted_forwarded(), kPackets);
  EXPECT_EQ(rig.b->checksum_drops(), kPackets);
  EXPECT_EQ(rig.b->unmatched_packets(), 0u);
  EXPECT_EQ(rig.sim.invariants().ledger().checksum_discards, kPackets);
  rig.sim.invariants().CheckDrained();
  EXPECT_EQ(rig.sim.invariants().violations(), 0u);
}

TEST(ImpairmentTest, DuplicationDeliversExtraCopies) {
  ImpairmentConfig duplicating;
  duplicating.duplicate_prob = 1.0;
  HostRig rig(13, duplicating);

  constexpr std::uint64_t kPackets = 40;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    rig.sim.Schedule(static_cast<Tick>(i) * 100 * kMicrosecond, [&] {
      Packet pkt;
      pkt.src = rig.a->id();
      pkt.dst = rig.b->id();
      pkt.payload = 256;
      rig.a->Send(pkt);
    });
  }
  rig.sim.Run();

  EXPECT_EQ(rig.b->unmatched_packets(), 2 * kPackets);
  EXPECT_EQ(rig.sim.invariants().ledger().duplicated, kPackets);
  rig.sim.invariants().CheckDrained();
  EXPECT_EQ(rig.sim.invariants().violations(), 0u);
}

// Impairing one link must not change another link's fault pattern: each
// stage draws from a private stream keyed by (seed, link id), not from the
// shared run RNG whose draw order depends on unrelated traffic.
TEST(ImpairmentTest, PerLinkStreamsAreIndependent) {
  ImpairmentConfig lossy;
  lossy.random_loss = 0.3;

  // Run 1: only a->b traffic, loss on a's NIC.
  // Run 2: identical a->b traffic, plus b->a traffic over b's now-lossy
  // NIC. The set of a->b packets surviving a's NIC must be identical.
  auto run = [&](bool impair_b) {
    HostRig rig(42, lossy, impair_b ? lossy : ImpairmentConfig{});
    constexpr std::uint64_t kPackets = 500;
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      rig.sim.Schedule(static_cast<Tick>(i) * 50 * kMicrosecond, [&] {
        Packet pkt;
        pkt.src = rig.a->id();
        pkt.dst = rig.b->id();
        pkt.tcp.dst_port = 80;
        pkt.payload = 512;
        rig.a->Send(pkt);
      });
      if (impair_b) {
        rig.sim.Schedule(static_cast<Tick>(i) * 50 * kMicrosecond + 7, [&] {
          Packet pkt;
          pkt.src = rig.b->id();
          pkt.dst = rig.a->id();
          pkt.payload = 512;
          rig.b->Send(pkt);
        });
      }
    }
    std::vector<std::uint64_t> uids;
    rig.b->Listen(80, [&uids](const Packet& pkt) { uids.push_back(pkt.uid); });
    rig.sim.Run();
    EXPECT_EQ(rig.sim.invariants().violations(), 0u);
    return uids;
  };

  const auto baseline = run(/*impair_b=*/false);
  const auto with_b = run(/*impair_b=*/true);
  EXPECT_GT(baseline.size(), 0u);
  EXPECT_LT(baseline.size(), 500u);  // loss actually bit
  EXPECT_EQ(baseline, with_b);
}

// Satellite check: the legacy LinkConfig::random_loss knob now draws from
// the link's private stream, so draining the run RNG elsewhere does not
// change which packets die.
TEST(ImpairmentTest, LegacyRandomLossUsesPrivateStream) {
  auto run = [](bool burn_main_rng) {
    Simulator sim(7);
    Network net(sim);
    Switch& sw = net.AddSwitch("sw");
    Host& a = net.AddHost("a");
    Host& b = net.AddHost("b");
    LinkConfig lossy;
    lossy.random_loss = 0.4;
    net.ConnectHost(a, sw, lossy, Network::NicConfig(lossy));
    net.ConnectHost(b, sw, LinkConfig{});
    net.InstallRoutes();
    if (burn_main_rng) {
      for (int i = 0; i < 1000; ++i) sim.rng().Next();
    }
    for (int i = 0; i < 200; ++i) {
      sim.Schedule(static_cast<Tick>(i) * 30 * kMicrosecond, [&] {
        Packet pkt;
        pkt.src = a.id();
        pkt.dst = b.id();
        pkt.tcp.dst_port = 80;
        pkt.payload = 100;
        a.Send(pkt);
      });
    }
    std::vector<std::uint64_t> uids;
    b.Listen(80, [&uids](const Packet& pkt) { uids.push_back(pkt.uid); });
    sim.Run();
    return uids;
  };

  const auto clean = run(false);
  const auto burned = run(true);
  EXPECT_GT(clean.size(), 0u);
  EXPECT_LT(clean.size(), 200u);
  EXPECT_EQ(clean, burned);
}

}  // namespace
}  // namespace dctcpp
