// Checkpoint/restore fidelity: a churn soak checkpointed at tick T and
// resumed must be bit-identical (equal state fingerprint) to the same run
// left uninterrupted — across shard counts, thread pools, ACK-processing
// modes, and impairment profiles.
//
// Protocol (see workload/churn.h): the reference run and the restored run
// must stop at the same RunTo boundaries, because the coordinator's window
// sequence is part of the serialized state. Every comparison below drives
// both worlds through an identical ascending stop schedule.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dctcpp/tcp/socket.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/churn.h"

namespace dctcpp {
namespace {

// Impairment profiles the matrix cycles through.
enum class Profile { kClean, kLossy, kChaos };

ChurnConfig SmallConfig(int shards, Profile profile,
                        std::int64_t target_live = 200) {
  ChurnConfig cfg;
  cfg.fat_tree.k = 4;  // 16 hosts
  cfg.link.propagation_delay = 2 * kMicrosecond;
  cfg.shards = shards;
  cfg.seed = 7;
  cfg.target_live_flows = target_live;
  cfg.mean_lifetime = 2 * kMillisecond;
  cfg.bytes_per_flow = 4 * kKiB;
  cfg.prewarm = 1 * kMillisecond;
  cfg.min_rto = 1 * kMillisecond;
  switch (profile) {
    case Profile::kClean:
      break;
    case Profile::kLossy:
      cfg.link.impairment.random_loss = 0.005;
      break;
    case Profile::kChaos:
      cfg.link.impairment.random_loss = 0.002;
      cfg.link.impairment.reorder_prob = 0.01;
      cfg.link.impairment.duplicate_prob = 0.002;
      cfg.link.impairment.corrupt_prob = 0.001;
      break;
  }
  return cfg;
}

// Runs `w` through every stop in `stops` (ascending absolute ticks).
void RunSchedule(ChurnWorkload& w, const std::vector<Tick>& stops,
                 ThreadPool* pool = nullptr) {
  for (Tick t : stops) w.RunTo(t, pool);
}

// Core gate: checkpoint at stops[cut], restore onto a fresh world, resume
// through the remaining stops, and compare against the uninterrupted
// reference driven through the identical schedule.
void ExpectBitIdenticalResume(const ChurnConfig& cfg,
                              const std::vector<Tick>& stops,
                              std::size_t cut, ThreadPool* pool = nullptr) {
  ChurnWorkload ref(cfg);
  ref.Start();
  RunSchedule(ref, stops, pool);
  const std::uint64_t want = ref.Fingerprint();

  ChurnWorkload first(cfg);
  first.Start();
  std::vector<std::uint8_t> blob;
  for (std::size_t i = 0; i <= cut; ++i) first.RunTo(stops[i], pool);
  blob = first.SaveCheckpoint();

  ChurnWorkload resumed(cfg);
  resumed.RestoreCheckpoint(blob);
  // The restored world serializes back to the exact blob it came from.
  EXPECT_EQ(resumed.SaveCheckpoint(), blob);
  for (std::size_t i = cut + 1; i < stops.size(); ++i) {
    resumed.RunTo(stops[i], pool);
  }
  EXPECT_EQ(resumed.Fingerprint(), want)
      << "restore at t=" << stops[cut] << " diverged";
}

std::vector<Tick> EvenStops(Tick end, int n) {
  std::vector<Tick> stops;
  for (int i = 1; i <= n; ++i) stops.push_back(end * i / n);
  return stops;
}

TEST(CheckpointTest, RestoredBlobRoundTripsSingleShard) {
  ChurnWorkload w(SmallConfig(1, Profile::kClean));
  w.Start();
  w.RunTo(4 * kMillisecond);
  const std::vector<std::uint8_t> blob = w.SaveCheckpoint();

  ChurnWorkload restored(SmallConfig(1, Profile::kClean));
  restored.RestoreCheckpoint(blob);
  EXPECT_EQ(restored.SaveCheckpoint(), blob);
  EXPECT_EQ(restored.live_flows(), w.live_flows());
  EXPECT_EQ(restored.Stats().flows_completed, w.Stats().flows_completed);
}

TEST(CheckpointTest, ResumeMatchesUninterruptedSingleShard) {
  ExpectBitIdenticalResume(SmallConfig(1, Profile::kClean),
                           EvenStops(8 * kMillisecond, 4), /*cut=*/1);
}

TEST(CheckpointTest, ResumeMatchesUnderImpairments) {
  ExpectBitIdenticalResume(SmallConfig(1, Profile::kLossy),
                           EvenStops(8 * kMillisecond, 4), /*cut=*/2);
  ExpectBitIdenticalResume(SmallConfig(1, Profile::kChaos),
                           EvenStops(8 * kMillisecond, 4), /*cut=*/1);
}

TEST(CheckpointTest, ResumeMatchesAcrossShardCounts) {
  for (int shards : {2, 4, 8}) {
    for (Profile p : {Profile::kLossy, Profile::kChaos}) {
      ExpectBitIdenticalResume(SmallConfig(shards, p),
                               EvenStops(6 * kMillisecond, 3), /*cut=*/1);
    }
  }
}

TEST(CheckpointTest, ResumeMatchesWithThreadPools) {
  // The same checkpoint gate with real parallelism: shard execution order
  // inside a window must not leak into the serialized state.
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    ExpectBitIdenticalResume(SmallConfig(4, Profile::kLossy),
                             EvenStops(6 * kMillisecond, 3), /*cut=*/1,
                             &pool);
  }
}

TEST(CheckpointTest, ResumeMatchesPerAckMode) {
  TcpSocket::SetBatchedAckMode(false);
  ExpectBitIdenticalResume(SmallConfig(2, Profile::kLossy),
                           EvenStops(6 * kMillisecond, 3), /*cut=*/1);
  TcpSocket::SetBatchedAckMode(true);
  ExpectBitIdenticalResume(SmallConfig(2, Profile::kLossy),
                           EvenStops(6 * kMillisecond, 3), /*cut=*/1);
}

// The headline satellite: an impaired N=1400 churn run saved at 50
// pseudo-random barrier ticks; every save restores and resumes to a final
// state bit-identical to the uninterrupted reference.
TEST(CheckpointTest, FiftyRandomSavePointsN1400) {
  const ChurnConfig cfg = SmallConfig(2, Profile::kLossy, /*target=*/1400);
  constexpr Tick kEnd = 10 * kMillisecond;
  constexpr int kSaves = 50;

  // 50 distinct random ticks in (0, kEnd), sorted: they double as the
  // shared stop schedule, so every save lands on a barrier both runs hit.
  Rng rng(0x51ee9);
  std::vector<Tick> stops;
  while (stops.size() < kSaves) {
    const Tick t = 1 + rng.UniformTick(kEnd - 1);
    bool dup = false;
    for (Tick s : stops) dup |= (s == t);
    if (!dup) stops.push_back(t);
  }
  std::sort(stops.begin(), stops.end());
  stops.push_back(kEnd);

  ChurnWorkload ref(cfg);
  ref.Start();
  RunSchedule(ref, stops);
  const std::uint64_t want = ref.Fingerprint();
  ASSERT_GT(ref.Stats().flows_completed, 100u);

  // One saving run captures all 50 blobs in a single pass.
  ChurnWorkload saver(cfg);
  saver.Start();
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
    saver.RunTo(stops[i]);
    blobs.push_back(saver.SaveCheckpoint());
  }

  for (std::size_t cut = 0; cut < blobs.size(); ++cut) {
    ChurnWorkload resumed(cfg);
    resumed.RestoreCheckpoint(blobs[cut]);
    for (std::size_t i = cut + 1; i < stops.size(); ++i) {
      resumed.RunTo(stops[i]);
    }
    ASSERT_EQ(resumed.Fingerprint(), want)
        << "save #" << cut << " at t=" << stops[cut] << " diverged";
  }
}

}  // namespace
}  // namespace dctcpp
