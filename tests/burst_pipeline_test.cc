// Differential tests for the prefetched burst datapath and one-copy egress.
//
// The scalar reference mode (SetScalarReferenceForTest) replays the
// pre-burst-pipeline datapath: per-packet wheel pops with no same-tick
// batch drain, no lookahead prefetch, and the original three-copy egress
// chain (queue -> on_wire_ -> propagating_). Every construct the burst
// pipeline touches — region-staged queues, upper-bound wheel memo,
// calendar-drain prefetch — must be invisible in simulation results:
// staged and scalar runs of the same workload are required to agree on
// every aggregate, under the full impairment matrix and across shard
// counts. The queue-level tests pin down the staged-region semantics the
// end-to-end runs rely on.
//
// The flag is captured at construction (like the FIFO/flow-table reference
// modes), so each run constructs its own topology after toggling.
#include <gtest/gtest.h>

#include <cstdint>

#include "dctcpp/net/packet.h"
#include "dctcpp/net/queue.h"
#include "dctcpp/util/reference_mode.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

struct ImpairmentProfile {
  const char* name;
  ImpairmentConfig impairment;
};

std::vector<ImpairmentProfile> Profiles() {
  std::vector<ImpairmentProfile> profiles;
  profiles.push_back({"clean", {}});
  {
    ImpairmentConfig lossy;
    lossy.ge_p_good_to_bad = 0.01;
    lossy.ge_p_bad_to_good = 0.3;
    lossy.ge_loss_bad = 0.5;
    lossy.reorder_prob = 0.02;
    profiles.push_back({"lossy", lossy});
  }
  {
    ImpairmentConfig chaos;
    chaos.random_loss = 0.005;
    chaos.duplicate_prob = 0.01;
    chaos.corrupt_prob = 0.005;
    chaos.reorder_prob = 0.01;
    profiles.push_back({"chaos", chaos});
  }
  return profiles;
}

IncastResult RunMode(bool scalar_reference, const ImpairmentConfig& impair,
                     int shards, ThreadPool* pool) {
  SetScalarReferenceForTest(scalar_reference);
  IncastConfig config;
  config.protocol = Protocol::kDctcp;
  config.num_flows = 40;
  config.rounds = 4;
  config.total_bytes = 256 * kKiB;
  config.min_rto = 10 * kMillisecond;
  config.seed = 3;
  config.link.impairment = impair;
  config.shards = shards;
  config.shard_pool = shards > 0 ? pool : nullptr;
  const IncastResult r = RunIncast(config);
  SetScalarReferenceForTest(false);
  return r;
}

void ExpectIdentical(const IncastResult& staged, const IncastResult& scalar) {
  EXPECT_EQ(staged.goodput_mbps, scalar.goodput_mbps);
  EXPECT_EQ(staged.rounds_completed, scalar.rounds_completed);
  EXPECT_EQ(staged.timeouts, scalar.timeouts);
  EXPECT_EQ(staged.floss_timeouts, scalar.floss_timeouts);
  EXPECT_EQ(staged.lack_timeouts, scalar.lack_timeouts);
  EXPECT_EQ(staged.fast_retransmits, scalar.fast_retransmits);
  EXPECT_EQ(staged.events, scalar.events);
  EXPECT_EQ(staged.packets_forwarded, scalar.packets_forwarded);
  EXPECT_EQ(staged.bottleneck_drops, scalar.bottleneck_drops);
  EXPECT_EQ(staged.bottleneck_marks, scalar.bottleneck_marks);
  EXPECT_EQ(staged.flow_fairness, scalar.flow_fairness);
  EXPECT_EQ(staged.invariant_violations, 0u);
  EXPECT_EQ(scalar.invariant_violations, 0u);
}

/// The canonical incast under each impairment profile, single-simulator:
/// the burst pipeline (wheel batch drain + prefetch + one-copy egress)
/// must be bit-identical to the scalar per-packet oracle.
TEST(BurstPipelineDifferential, UnshardedMatchesScalarUnderImpairments) {
  for (const ImpairmentProfile& p : Profiles()) {
    SCOPED_TRACE(p.name);
    const IncastResult staged = RunMode(false, p.impairment, 0, nullptr);
    const IncastResult scalar = RunMode(true, p.impairment, 0, nullptr);
    ExpectIdentical(staged, scalar);
  }
}

/// Sharded engine: the calendar-drain prefetch and the sharded DropServing
/// handoff replace the staged wire, and the lookahead windows interleave
/// the two paths differently — results must still match the scalar oracle
/// at every shard count.
TEST(BurstPipelineDifferential, ShardedMatchesScalarUnderImpairments) {
  ThreadPool pool(3);
  for (const ImpairmentProfile& p : Profiles()) {
    for (const int shards : {2, 4}) {
      SCOPED_TRACE(std::string(p.name) + " shards=" + std::to_string(shards));
      const IncastResult staged = RunMode(false, p.impairment, shards, &pool);
      const IncastResult scalar = RunMode(true, p.impairment, shards, &pool);
      ExpectIdentical(staged, scalar);
    }
  }
}

/// Mixed-mode cross-check within the parallel engine's shard-count
/// invariance contract: a staged shards=1 run anchors both staged and
/// scalar runs at higher shard counts, so the scalar oracle cannot drift
/// into a consistent-but-wrong parallel variant.
TEST(BurstPipelineDifferential, StagedAndScalarAgreeAcrossShardCounts) {
  ThreadPool pool(3);
  ImpairmentConfig lossy;
  lossy.ge_p_good_to_bad = 0.01;
  lossy.ge_p_bad_to_good = 0.3;
  lossy.ge_loss_bad = 0.5;
  const IncastResult anchor = RunMode(false, lossy, 1, nullptr);
  const IncastResult sharded_staged = RunMode(false, lossy, 4, &pool);
  const IncastResult sharded_scalar = RunMode(true, lossy, 4, &pool);
  ExpectIdentical(anchor, sharded_staged);
  ExpectIdentical(anchor, sharded_scalar);
}

// ---------------------------------------------------------------------------
// Staged-queue region semantics: the one-copy egress invariants the
// end-to-end runs rely on.

Packet MakePacket(std::uint64_t uid, Bytes payload) {
  Packet pkt;
  pkt.uid = uid;
  pkt.payload = static_cast<std::int32_t>(payload);
  pkt.ecn = Ecn::kEct;
  return pkt;
}

TEST(StagedQueue, ServiceAndWireRegionsLeaveBufferAccounting) {
  DropTailEcnQueue q(/*capacity=*/1 << 20, /*ecn_threshold=*/0);
  ASSERT_TRUE(q.Enqueue(MakePacket(1, kMss)));
  ASSERT_TRUE(q.Enqueue(MakePacket(2, kMss)));
  ASSERT_TRUE(q.Enqueue(MakePacket(3, kMss)));
  const Bytes wire = MakePacket(0, kMss).WireSize();
  EXPECT_EQ(q.PacketCount(), 3u);
  EXPECT_EQ(q.OccupancyBytes(), 3 * wire);

  // Begin serializing uid 1: it leaves the buffer accounting but stays in
  // the FIFO slot (one-copy contract: same address until delivery).
  const Packet& serving = q.BeginService();
  EXPECT_EQ(serving.uid, 1u);
  EXPECT_EQ(&serving, &q.Serving());
  EXPECT_EQ(q.PacketCount(), 2u);
  EXPECT_EQ(q.OccupancyBytes(), 2 * wire);
  EXPECT_EQ(q.ComputeOccupancyBytes(), q.OccupancyBytes());
  // Front() (the reference-transmitter view) now reads the queued region.
  EXPECT_EQ(q.Front().uid, 2u);

  // Serving -> propagating, in place; next service can begin.
  q.FinishServiceToWire();
  EXPECT_EQ(q.PropagatingCount(), 1u);
  EXPECT_EQ(q.PropagatingFront().uid, 1u);
  EXPECT_EQ(q.BeginService().uid, 2u);
  q.FinishServiceToWire();
  EXPECT_EQ(q.PropagatingCount(), 2u);
  EXPECT_EQ(q.PropagatingAt(0).uid, 1u);
  EXPECT_EQ(q.PropagatingAt(1).uid, 2u);
  EXPECT_EQ(q.PacketCount(), 1u);
  EXPECT_EQ(q.OccupancyBytes(), wire);

  // Deliveries retire in FIFO order from the propagating region.
  q.PopPropagating();
  EXPECT_EQ(q.PropagatingFront().uid, 2u);
  q.PopPropagating();
  EXPECT_EQ(q.PropagatingCount(), 0u);
  EXPECT_EQ(q.PacketCount(), 1u);
  EXPECT_EQ(q.Front().uid, 3u);
}

TEST(StagedQueue, DropServingRemovesWithoutWireRegion) {
  // Sharded mode: the serving packet's bytes were copied into the peer
  // calendar, so it is dropped rather than staged onto a wire.
  DropTailEcnQueue q(1 << 20, 0);
  ASSERT_TRUE(q.Enqueue(MakePacket(7, kMss)));
  ASSERT_TRUE(q.Enqueue(MakePacket(8, kMss)));
  EXPECT_EQ(q.BeginService().uid, 7u);
  q.DropServing();
  EXPECT_EQ(q.PacketCount(), 1u);
  EXPECT_EQ(q.BeginService().uid, 8u);
  q.DropServing();
  EXPECT_TRUE(q.Empty());
}

TEST(StagedQueue, EcnAndDropTailReadQueuedRegionOnly) {
  // Capacity of two queued packets; a third fits once the head moves to
  // the serving region (its bytes are in the port's in-flight register,
  // not the buffer — identical to the copy-chain behavior).
  const Bytes wire = MakePacket(0, kMss).WireSize();
  DropTailEcnQueue q(2 * wire, /*ecn_threshold=*/wire);
  ASSERT_TRUE(q.Enqueue(MakePacket(1, kMss)));
  ASSERT_TRUE(q.Enqueue(MakePacket(2, kMss)));
  EXPECT_FALSE(q.Enqueue(MakePacket(3, kMss)));  // full
  EXPECT_EQ(q.stats().dropped, 1u);
  q.BeginService();
  ASSERT_TRUE(q.Enqueue(MakePacket(4, kMss)));  // head left the buffer
  // Occupancy at admission was wire (uid 2 only) -> above K: marked.
  EXPECT_EQ(q.stats().marked, 2u);  // uid 2 (occ=2*wire) and uid 4
  q.FinishServiceToWire();
  q.PopPropagating();
  EXPECT_EQ(q.PacketCount(), 2u);
  EXPECT_EQ(q.ComputeOccupancyBytes(), q.OccupancyBytes());
}

TEST(StagedQueue, CheckpointRoundTripsStagedRegions) {
  DropTailEcnQueue q(1 << 20, 0);
  ASSERT_TRUE(q.Enqueue(MakePacket(1, kMss)));
  ASSERT_TRUE(q.Enqueue(MakePacket(2, kMss)));
  ASSERT_TRUE(q.Enqueue(MakePacket(3, kMss)));
  q.BeginService();
  q.FinishServiceToWire();
  q.BeginService();  // regions: [1 propagating | 2 serving | 3 queued]

  CheckpointWriter w;
  q.SaveState(w);
  const std::vector<std::uint8_t> blob = w.TakeBlob();

  DropTailEcnQueue restored(1 << 20, 0);
  CheckpointReader r(blob.data(), blob.size());
  restored.LoadState(r);
  EXPECT_EQ(restored.PropagatingCount(), 1u);
  EXPECT_EQ(restored.PropagatingFront().uid, 1u);
  EXPECT_EQ(restored.Serving().uid, 2u);
  EXPECT_EQ(restored.PacketCount(), 1u);
  EXPECT_EQ(restored.Front().uid, 3u);
  EXPECT_EQ(restored.OccupancyBytes(), q.OccupancyBytes());
}

// ---------------------------------------------------------------------------
// Packet layout: the burst entry must stay one cacheline, and the packed
// flag bits must behave exactly like the bools they replaced.

static_assert(sizeof(Packet) <= 64,
              "Packet must fit one cache line for the burst pipeline");
static_assert(sizeof(TcpHeader) == 40, "TcpHeader packing regressed");

TEST(PacketLayout, FlagBitsRoundTripIndependently) {
  Packet pkt;
  EXPECT_FALSE(pkt.tcp.syn || pkt.tcp.fin || pkt.tcp.ack_flag ||
               pkt.tcp.ece || pkt.tcp.cwr);
  pkt.tcp.syn = true;
  pkt.tcp.ece = true;
  EXPECT_TRUE(pkt.tcp.syn);
  EXPECT_FALSE(pkt.tcp.fin);
  EXPECT_TRUE(pkt.tcp.ece);
  EXPECT_FALSE(pkt.tcp.cwr);
  Packet copy = pkt;
  copy.tcp.syn = false;
  EXPECT_TRUE(pkt.tcp.syn);  // copies are independent
  EXPECT_TRUE(copy.tcp.ece);
  pkt.tcp.cwr = true;
  pkt.tcp.ack_flag = true;
  pkt.tcp.fin = true;
  EXPECT_TRUE(pkt.tcp.syn && pkt.tcp.fin && pkt.tcp.ack_flag &&
              pkt.tcp.ece && pkt.tcp.cwr);
}

TEST(PacketLayout, WireSizeCoversPayloadPlusHeader) {
  Packet pkt;
  pkt.payload = static_cast<std::int32_t>(kMss);
  EXPECT_EQ(pkt.WireSize(), static_cast<Bytes>(kMss) + kHeaderBytes);
  pkt.payload = 0;
  EXPECT_EQ(pkt.WireSize(), kHeaderBytes);
}

}  // namespace
}  // namespace dctcpp
