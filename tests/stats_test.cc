// Unit tests for dctcpp/stats: accumulators, histogram, CDF, sampler, table.
#include <gtest/gtest.h>

#include <cmath>

#include "dctcpp/sim/simulator.h"
#include "dctcpp/stats/cdf.h"
#include "dctcpp/stats/csv.h"
#include "dctcpp/stats/histogram.h"
#include "dctcpp/stats/quantile_sketch.h"
#include "dctcpp/stats/summary.h"
#include "dctcpp/stats/table.h"
#include "dctcpp/stats/time_series.h"

namespace dctcpp {
namespace {

// ---------------------------------------------------------------------------
// SummaryStats

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, KnownMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, SingleSampleVarianceZero) {
  SummaryStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SummaryStatsTest, MergeMatchesSequential) {
  SummaryStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  SummaryStats b;
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// ---------------------------------------------------------------------------
// JainFairnessIndex

TEST(FairnessTest, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1.0}), 1.0);
}

TEST(FairnessTest, SingleWinnerIsOneOverN) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({10.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(FairnessTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 0.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0.0, 0.0}), 0.0);
}

TEST(FairnessTest, KnownMixedAllocation) {
  // x = {1, 3}: (4)^2 / (2 * 10) = 0.8
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1.0, 3.0}), 0.8);
}

TEST(FairnessTest, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b;
  for (double x : a) b.push_back(1000.0 * x);
  EXPECT_DOUBLE_EQ(JainFairnessIndex(a), JainFairnessIndex(b));
}

// ---------------------------------------------------------------------------
// Percentile

TEST(PercentileTest, ExactQuantilesOfKnownSet) {
  Percentile p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_DOUBLE_EQ(p.Min(), 1.0);
  EXPECT_DOUBLE_EQ(p.Max(), 100.0);
  EXPECT_DOUBLE_EQ(p.Median(), 50.5);
  EXPECT_NEAR(p.Quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(p.Mean(), 50.5);
}

TEST(PercentileTest, SingleSample) {
  Percentile p;
  p.Add(7.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 7.0);
}

TEST(PercentileTest, InterleavedAddAndQuery) {
  Percentile p;
  p.Add(3.0);
  p.Add(1.0);
  EXPECT_DOUBLE_EQ(p.Median(), 2.0);
  p.Add(5.0);  // adding after a query must still work
  EXPECT_DOUBLE_EQ(p.Median(), 3.0);
}

TEST(PercentileTest, MergeCombinesSamples) {
  Percentile a, b;
  for (int i = 1; i <= 5; ++i) a.Add(i);
  for (int i = 6; i <= 10; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_DOUBLE_EQ(a.Median(), 5.5);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BinsAndBounds) {
  Histogram h(1, 10);
  h.Add(1);
  h.Add(10);
  h.Add(5);
  h.Add(5);
  EXPECT_EQ(h.CountAt(1), 1u);
  EXPECT_EQ(h.CountAt(5), 2u);
  EXPECT_EQ(h.CountAt(10), 1u);
  EXPECT_EQ(h.CountAt(2), 0u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(1, 4);
  h.Add(0);
  h.Add(-3);
  h.Add(5);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.CountAt(0), 0u);
}

TEST(HistogramTest, Weights) {
  Histogram h(0, 3);
  h.Add(2, 10);
  EXPECT_EQ(h.CountAt(2), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(HistogramTest, Fractions) {
  Histogram h(1, 4);
  h.Add(1);
  h.Add(2);
  h.Add(2);
  h.Add(4);
  EXPECT_DOUBLE_EQ(h.FractionAt(2), 0.5);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(2), 0.75);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(4), 1.0);
}

TEST(HistogramTest, EmptyFractionsZero) {
  Histogram h(1, 4);
  EXPECT_DOUBLE_EQ(h.FractionAt(2), 0.0);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(4), 0.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(1, 4), b(1, 4);
  a.Add(1);
  b.Add(1);
  b.Add(4);
  b.Add(9);  // overflow
  a.Merge(b);
  EXPECT_EQ(a.CountAt(1), 2u);
  EXPECT_EQ(a.CountAt(4), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 4u);
}

TEST(HistogramTest, ToStringContainsCounts) {
  Histogram h(1, 2);
  h.Add(1);
  const std::string s = h.ToString("label");
  EXPECT_NE(s.find("label"), std::string::npos);
  EXPECT_NE(s.find("100.00%"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cdf

TEST(CdfTest, AtComputesEmpiricalFraction) {
  Cdf c;
  for (double x : {1.0, 2.0, 3.0, 4.0}) c.Add(x);
  EXPECT_DOUBLE_EQ(c.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(c.At(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.At(4.0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(100.0), 1.0);
}

TEST(CdfTest, QuantileInverse) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.Add(i);
  EXPECT_DOUBLE_EQ(c.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(c.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(c.Quantile(0.0), 1.0);
}

TEST(CdfTest, SeriesIsMonotone) {
  Cdf c;
  for (double x : {5.0, 1.0, 3.0, 9.0, 7.0}) c.Add(x);
  const auto series = c.Series(0.0, 10.0, 11);
  ASSERT_EQ(series.size(), 11u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.front().second, 0.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(CdfTest, MergeAndMutateAfterQuery) {
  Cdf a, b;
  a.Add(1.0);
  EXPECT_DOUBLE_EQ(a.At(1.0), 1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.At(1.0), 0.5);
}

// ---------------------------------------------------------------------------
// TimeSeriesSampler

TEST(TimeSeriesSamplerTest, SamplesAtFixedPeriod) {
  Simulator sim;
  double value = 0.0;
  TimeSeriesSampler sampler(sim, 100, [&] { return value; });
  sampler.Start();
  sim.Schedule(250, [&] { value = 42.0; });
  sim.Schedule(550, [&] { sampler.Stop(); });
  sim.RunUntil(1000);
  const auto& samples = sampler.samples();
  ASSERT_EQ(samples.size(), 5u);  // t=100..500
  EXPECT_EQ(samples[0].at, 100);
  EXPECT_DOUBLE_EQ(samples[0].value, 0.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 42.0);  // t=300 after the change
  EXPECT_EQ(samples[4].at, 500);
}

TEST(TimeSeriesSamplerTest, StartIsIdempotent) {
  Simulator sim;
  TimeSeriesSampler sampler(sim, 100, [] { return 1.0; });
  sampler.Start();
  sampler.Start();
  sim.Schedule(350, [&] { sampler.Stop(); });
  sim.RunUntil(1000);
  EXPECT_EQ(sampler.samples().size(), 3u);
}

TEST(TimeSeriesSamplerTest, ValuesExtraction) {
  Simulator sim;
  int n = 0;
  TimeSeriesSampler sampler(sim, 10, [&] { return static_cast<double>(++n); });
  sampler.Start();
  sim.Schedule(35, [&] { sampler.Stop(); });
  sim.RunUntil(100);
  EXPECT_EQ(sampler.Values(), (std::vector<double>{1.0, 2.0, 3.0}));
}

// ---------------------------------------------------------------------------
// CsvWriter

TEST(CsvTest, WritesRowsAndQuotes) {
  const std::string path = ::testing::TempDir() + "/dctcpp_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.Row({"a", "b,with comma", "c\"quoted\""});
    csv.NumericRow({1.5, 2.0});
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof buf, f)) content += buf;
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, "a,\"b,with comma\",\"c\"\"quoted\"\"\"\n1.5,2\n");
}

TEST(CsvTest, UnwritablePathReportsNotOk) {
  CsvWriter csv("/nonexistent-dir/nope.csv");
  EXPECT_FALSE(csv.ok());
}

TEST(CsvTest, TimeSeriesDump) {
  const std::string path = ::testing::TempDir() + "/dctcpp_ts_test.csv";
  std::vector<TimeSeriesSampler::Sample> samples{{1000, 42.0},
                                                 {2000, 43.5}};
  ASSERT_TRUE(WriteTimeSeriesCsv(path, samples, "queue"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  std::string content;
  while (std::fgets(buf, sizeof buf, f)) content += buf;
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, "time_us,queue\n1,42\n2,43.5\n");
}

// ---------------------------------------------------------------------------
// Table

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, NumAndIntFormatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Int(-42), "-42");
}

// ---------------------------------------------------------------------------
// Percentile edge cases and Histogram overflow safety

TEST(PercentileTest, EmptyQuantileIsZeroNotUb) {
  Percentile p;
  EXPECT_DOUBLE_EQ(p.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(p.Median(), 0.0);
}

TEST(HistogramTest, AddSaturatesInsteadOfWrapping) {
  Histogram h(1, 4);
  const std::uint64_t huge = ~std::uint64_t{0} - 5;
  h.Add(2, huge);
  h.Add(2, 100);  // would wrap a plain uint64 add
  EXPECT_EQ(h.CountAt(2), ~std::uint64_t{0});
}

TEST(HistogramTest, MergeSaturatesInsteadOfWrapping) {
  Histogram a(1, 4);
  Histogram b(1, 4);
  a.Add(3, ~std::uint64_t{0} - 10);
  b.Add(3, 1000);
  a.Merge(b);
  EXPECT_EQ(a.CountAt(3), ~std::uint64_t{0});
  // Saturated counts still produce sane (clamped) fractions.
  EXPECT_LE(a.CumulativeFraction(3), 1.0);
}

// ---------------------------------------------------------------------------
// QuantileSketch

TEST(QuantileSketchTest, EmptyIsZero) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
}

TEST(QuantileSketchTest, QuantilesWithinRelativeErrorBound) {
  QuantileSketch s(0.01);
  Percentile exact;
  // Skewed FCT-like distribution spanning three orders of magnitude.
  for (int i = 1; i <= 10000; ++i) {
    const double v = 0.25 * i + (i % 97 == 0 ? 900.0 : 0.0);
    s.Add(v);
    exact.Add(v);
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double want = exact.Quantile(q);
    const double got = s.Quantile(q);
    EXPECT_NEAR(got, want, want * 0.021)  // 2a: bucket + rank slack
        << "q=" << q;
  }
  // Endpoints are tracked exactly.
  EXPECT_DOUBLE_EQ(s.Min(), 0.25);
  EXPECT_DOUBLE_EQ(s.Max(), exact.Quantile(1.0));
}

TEST(QuantileSketchTest, MergeMatchesSingleStream) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.01);
  QuantileSketch all(0.01);
  for (int i = 1; i <= 1000; ++i) {
    const double v = i * 0.5;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
  for (const double q : {0.25, 0.5, 0.75, 0.95}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q));
  }
}

TEST(QuantileSketchTest, MemoryIsBoundedRegardlessOfSampleCount) {
  QuantileSketch s;
  const std::size_t buckets_before = s.BucketCount();
  for (int i = 0; i < 200000; ++i) s.Add(1e-6 + (i % 1000) * 3.7);
  EXPECT_EQ(s.BucketCount(), buckets_before);
  EXPECT_EQ(s.count(), 200000u);
}

TEST(QuantileSketchTest, OutOfRangeValuesClampToEdges) {
  QuantileSketch s;
  s.Add(-5.0);   // below trackable: clamps to the lowest bucket
  s.Add(0.0);
  s.Add(1e15);   // above trackable: clamps to the highest bucket
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.Min(), -5.0);  // exact extremes still reported
  EXPECT_DOUBLE_EQ(s.Max(), 1e15);
  const double mid = s.Quantile(0.5);
  EXPECT_GE(mid, 0.0);
  EXPECT_LE(mid, 1e15);
}

}  // namespace
}  // namespace dctcpp
