// PacketRing / PacketFifo tests: wrap-around, growth under load, in-place
// slot mutation, reference-mode switching, and the end-to-end determinism
// contract (ring vs reference-deque datapath must produce bit-identical
// simulation results).
#include <gtest/gtest.h>

#include <deque>

#include "dctcpp/net/packet_ring.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

Packet Pkt(std::uint64_t uid) {
  Packet p;
  p.payload = kMss;
  p.uid = uid;
  return p;
}

TEST(PacketRingTest, FifoOrderAcrossWrapAround) {
  PacketRing ring(4);  // capacity 4: wraps every few operations
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Keep the ring 3/4 full while pushing far more packets than capacity,
  // so head_ laps the array many times.
  for (int i = 0; i < 100; ++i) {
    ring.PushBack(Pkt(next_push++));
    if (ring.Size() == 3) {
      EXPECT_EQ(ring.Front().uid, next_pop);
      ring.PopFront();
      ++next_pop;
    }
  }
  while (!ring.Empty()) {
    EXPECT_EQ(ring.Front().uid, next_pop++);
    ring.PopFront();
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_EQ(ring.Capacity(), 4u);  // never needed to grow
}

TEST(PacketRingTest, GrowthPreservesOrderWhenWrapped) {
  PacketRing ring(4);
  // Advance head so the live region wraps the array edge, then force
  // growth: the relocation must preserve FIFO order.
  for (std::uint64_t i = 0; i < 3; ++i) ring.PushBack(Pkt(i));
  ring.PopFront();
  ring.PopFront();
  for (std::uint64_t i = 3; i < 20; ++i) ring.PushBack(Pkt(i));
  EXPECT_GT(ring.Capacity(), 4u);
  for (std::uint64_t expect = 2; expect < 20; ++expect) {
    ASSERT_FALSE(ring.Empty());
    EXPECT_EQ(ring.Front().uid, expect);
    ring.PopFront();
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(PacketRingTest, PushBackReturnsStoredSlotForInPlaceMarking) {
  PacketRing ring;
  Packet& slot = ring.PushBack(Pkt(7));
  slot.ecn = Ecn::kCe;  // the switch marks the stored copy, not the input
  EXPECT_EQ(ring.Front().ecn, Ecn::kCe);
  EXPECT_EQ(ring.Front().uid, 7u);
}

TEST(PacketRingTest, RandomizedDifferentialAgainstDeque) {
  Rng rng(42);
  PacketRing ring(2);
  std::deque<Packet> oracle;
  std::uint64_t uid = 0;
  for (int op = 0; op < 5000; ++op) {
    if (oracle.empty() || rng.Chance(0.55)) {
      ring.PushBack(Pkt(uid));
      oracle.push_back(Pkt(uid));
      ++uid;
    } else {
      ASSERT_EQ(ring.Front().uid, oracle.front().uid);
      ring.PopFront();
      oracle.pop_front();
    }
    ASSERT_EQ(ring.Size(), oracle.size());
  }
}

TEST(PacketRingTest, AtIndexesFromFrontAcrossWrapAndGrowth) {
  PacketRing ring(4);
  for (std::uint64_t i = 0; i < 3; ++i) ring.PushBack(Pkt(i));
  ring.PopFront();  // head moves: At(0) must track the logical front
  EXPECT_EQ(ring.At(0).uid, 1u);
  EXPECT_EQ(ring.At(1).uid, 2u);
  for (std::uint64_t i = 3; i < 12; ++i) ring.PushBack(Pkt(i));  // wrap + grow
  for (std::size_t i = 0; i < ring.Size(); ++i) {
    EXPECT_EQ(ring.At(i).uid, i + 1);
  }
  // Mutation through At reaches the stored slot (the staged-egress queue
  // marks and reads packets in place mid-FIFO).
  ring.At(2).ecn = Ecn::kCe;
  ring.PopFront();
  ring.PopFront();
  EXPECT_EQ(ring.Front().ecn, Ecn::kCe);
}

TEST(PacketFifoTest, AtMatchesBothBackends) {
  PacketFifo production;
  SetReferenceFifoForTest(true);
  PacketFifo reference;
  SetReferenceFifoForTest(false);
  for (PacketFifo* fifo : {&production, &reference}) {
    for (std::uint64_t i = 0; i < 5; ++i) fifo->PushBack(Pkt(i));
    fifo->PopFront();
    for (std::size_t i = 0; i < fifo->Size(); ++i) {
      EXPECT_EQ(fifo->At(i).uid, i + 1);
    }
  }
}

TEST(PacketFifoTest, ReferenceModeIsConstructionTime) {
  EXPECT_FALSE(ReferenceFifoEnabled());
  PacketFifo production;
  SetReferenceFifoForTest(true);
  EXPECT_TRUE(ReferenceFifoEnabled());
  PacketFifo reference;
  SetReferenceFifoForTest(false);

  // Both behave identically regardless of backing store.
  for (PacketFifo* fifo : {&production, &reference}) {
    fifo->PushBack(Pkt(1));
    fifo->PushBack(Pkt(2));
    EXPECT_EQ(fifo->Size(), 2u);
    EXPECT_EQ(fifo->Front().uid, 1u);
    fifo->PopFront();
    EXPECT_EQ(fifo->Front().uid, 2u);
    fifo->PopFront();
    EXPECT_TRUE(fifo->Empty());
  }
}

// The determinism gate: the container swap must be a pure mechanism
// change. The same seeded incast, run on the production ring datapath and
// on the reference deque datapath, must agree on every simulation output.
TEST(DatapathDeterminismTest, RingAndReferenceFifoProduceIdenticalRuns) {
  IncastConfig config;
  config.protocol = Protocol::kDctcp;
  config.num_flows = 24;
  config.rounds = 8;
  config.total_bytes = 512 * 1024;
  config.seed = 3;

  SetReferenceFifoForTest(false);
  const IncastResult ring = RunIncast(config);
  SetReferenceFifoForTest(true);
  const IncastResult reference = RunIncast(config);
  SetReferenceFifoForTest(false);

  EXPECT_EQ(ring.goodput_mbps, reference.goodput_mbps);
  EXPECT_EQ(ring.timeouts, reference.timeouts);
  EXPECT_EQ(ring.floss_timeouts, reference.floss_timeouts);
  EXPECT_EQ(ring.lack_timeouts, reference.lack_timeouts);
  EXPECT_EQ(ring.events, reference.events);
  EXPECT_EQ(ring.packets_forwarded, reference.packets_forwarded);
  EXPECT_EQ(ring.rounds_completed, reference.rounds_completed);
  EXPECT_EQ(ring.bottleneck_marks, reference.bottleneck_marks);
  EXPECT_EQ(ring.bottleneck_drops, reference.bottleneck_drops);
  EXPECT_EQ(ring.fct_ms.samples(), reference.fct_ms.samples());
}

}  // namespace
}  // namespace dctcpp
