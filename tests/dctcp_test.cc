// DCTCP tests: alpha estimation (Eq. 1), window law (Eq. 2), receiver CE
// echo behaviour, and end-to-end queue control near the marking threshold.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/dctcp/dctcp.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/stats/summary.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {
namespace {

using namespace time_literals;

class DctcpFixture : public ::testing::Test {
 protected:
  /// a -> sw at 10 Gbps, sw -> b at 1 Gbps: the b-side port is a real
  /// bottleneck with the configured buffer and marking threshold.
  void Build(Bytes buffer = 128 * kKiB, Bytes threshold = 32 * kKiB) {
    net.reset();  // ports hold pinned scheduler events: drop before the sim
    sim = std::make_unique<Simulator>(1);
    net = std::make_unique<Network>(*sim);
    Switch& sw = net->AddSwitch("sw");
    a = &net->AddHost("a");
    b = &net->AddHost("b");
    LinkConfig fast;
    fast.rate = DataRate::GigabitsPerSec(10);
    net->ConnectHost(*a, sw, fast);
    LinkConfig to_b;
    to_b.buffer_bytes = buffer;
    to_b.ecn_threshold = threshold;
    net->ConnectHost(*b, sw, to_b, Network::NicConfig(LinkConfig{}));
    net->InstallRoutes();
    bottleneck = &net->PortTowardsHost(sw, *b);
  }

  void Establish(DctcpCc::Config cc_config = {}) {
    listener = std::make_unique<TcpListener>(
        *b, PortNum{5000},
        [cc_config] { return std::make_unique<DctcpCc>(cc_config); },
        TcpSocket::Config{}, [this](TcpSocket::Ptr s) {
          server = std::move(s);
          server->set_on_data([this](Bytes n) { received += n; });
        });
    client = TcpSocket::Create(
        *a, std::make_unique<DctcpCc>(cc_config), TcpSocket::Config{});
    client->Connect(b->id(), 5000);
    sim->RunUntil(sim->Now() + 100_ms);
    ASSERT_TRUE(client->Established());
  }

  DctcpCc& client_cc() { return static_cast<DctcpCc&>(client->cc()); }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  Host* a = nullptr;
  Host* b = nullptr;
  EgressPort* bottleneck = nullptr;
  std::unique_ptr<TcpListener> listener;
  TcpSocket::Ptr client;
  TcpSocket::Ptr server;
  Bytes received = 0;
};

TEST_F(DctcpFixture, NegotiatesEcnAndTransfers) {
  Build();
  Establish();
  EXPECT_TRUE(client->EcnNegotiated());
  client->Send(1 * kMiB);
  sim->RunUntil(sim->Now() + 1 * kSecond);
  EXPECT_EQ(received, 1 * kMiB);
}

TEST_F(DctcpFixture, AlphaDecaysWithoutMarks) {
  // Huge threshold: nothing marked; alpha (init 1.0) must decay by (1-g)
  // per window.
  Build(/*buffer=*/4 * kMiB, /*threshold=*/3 * kMiB);
  Establish();
  client->Send(4 * kMiB);
  sim->RunUntil(sim->Now() + 2 * kSecond);
  EXPECT_EQ(received, 4 * kMiB);
  // Each unmarked window multiplies alpha by (1 - g); from 1.0 it must
  // have fallen well below its initial value by the end of the transfer.
  EXPECT_LT(client_cc().alpha(), 0.7);
}

TEST_F(DctcpFixture, AlphaStaysHighUnderPersistentMarking) {
  // Tiny threshold: everything beyond a couple packets is marked.
  Build(/*buffer=*/4 * kMiB, /*threshold=*/2 * 1514);
  Establish();
  client->Send(2 * kMiB);
  sim->RunUntil(sim->Now() + 2 * kSecond);
  EXPECT_EQ(received, 2 * kMiB);
  EXPECT_GT(client_cc().alpha(), 0.2);
}

TEST_F(DctcpFixture, AlphaStaysWithinUnitInterval) {
  Build(/*buffer=*/128 * kKiB, /*threshold=*/8 * 1514);
  Establish();
  client->Send(4 * kMiB);
  sim->RunUntil(sim->Now() + 2 * kSecond);
  EXPECT_GE(client_cc().alpha(), 0.0);
  EXPECT_LE(client_cc().alpha(), 1.0);
}

TEST_F(DctcpFixture, QueueHoversNearThreshold) {
  Build();
  Establish();
  client->Send(8 * kMiB);
  // Let the transfer reach steady state, then sample the queue.
  sim->RunUntil(sim->Now() + 30_ms);
  SummaryStats queue;
  for (int i = 0; i < 200; ++i) {
    sim->RunUntil(sim->Now() + 100_us);
    queue.Add(static_cast<double>(bottleneck->queue().OccupancyBytes()));
  }
  // DCTCP's signature: the standing queue oscillates around K (32 KB),
  // far below the 128 KB buffer a loss-based sender would fill.
  EXPECT_GT(queue.mean(), 2 * 1024.0);
  EXPECT_LT(queue.mean(), 80 * 1024.0);
  EXPECT_EQ(bottleneck->queue().stats().dropped, 0u);
}

TEST_F(DctcpFixture, LossStillHandledWithoutEcn) {
  // Threshold 0 disables marking entirely: DCTCP must survive on its Reno
  // loss-recovery fallback.
  Build(/*buffer=*/8 * 1514, /*threshold=*/0);
  Establish();
  client->Send(1 * kMiB);
  sim->RunUntil(sim->Now() + 5 * kSecond);
  EXPECT_EQ(received, 1 * kMiB);
  EXPECT_GT(client->stats().segments_retransmitted, 0u);
}

TEST_F(DctcpFixture, WindowNeverBelowFloor) {
  Build(/*buffer=*/128 * kKiB, /*threshold=*/2 * 1514);
  DctcpCc::Config config;
  config.min_cwnd = 2;
  Establish(config);
  client->Send(2 * kMiB);
  Tick deadline = sim->Now() + 2 * kSecond;
  while (sim->Now() < deadline && received < 2 * kMiB) {
    sim->RunUntil(sim->Now() + 1_ms);
    ASSERT_GE(client->cwnd(), 1);  // 1 only transiently after RTO
  }
}

// ---------------------------------------------------------------------------
// Unit-level checks of the congestion ops themselves.

TEST(DctcpUnitTest, ConfigValidation) {
  DctcpCc::Config ok;
  ok.g = 0.0625;
  EXPECT_NO_THROW(DctcpCc{ok});
}

TEST(DctcpUnitTest, DefaultsMatchPaper) {
  DctcpCc cc;
  EXPECT_TRUE(cc.EcnCapable());
  EXPECT_TRUE(cc.DctcpStyleReceiver());
  EXPECT_EQ(cc.MinCwnd(), 2);  // the floor the paper analyses
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  EXPECT_STREQ(cc.Name(), "dctcp");
}

TEST(DctcpUnitTest, NewRenoDefaultsNonEcn) {
  NewRenoCc cc;
  EXPECT_FALSE(cc.EcnCapable());
  EXPECT_FALSE(cc.DctcpStyleReceiver());
  EXPECT_EQ(cc.MinCwnd(), 2);
}

}  // namespace
}  // namespace dctcpp
