// Workload-layer tests: the request/response apps, flow generation, the
// incast experiment end to end (including the paper's headline ordering),
// the benchmark-traffic experiment, and the sweep harness.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/apps.h"
#include "dctcpp/workload/background.h"
#include "dctcpp/workload/benchmark_traffic.h"
#include "dctcpp/workload/churn.h"
#include "dctcpp/workload/experiment.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

TcpListener::CcFactory TcpFactory() {
  return [] { return MakeCongestionOps(Protocol::kDctcp); };
}

class AppsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net.reset();  // ports hold pinned scheduler events: drop before the sim
    sim = std::make_unique<Simulator>(1);
    net = std::make_unique<Network>(*sim);
    topo = TwoTierTopology::Build(*net, 4, LinkConfig{});
  }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  TwoTierTopology topo;
};

TEST_F(AppsFixture, WorkerRespondsToRequests) {
  WorkerServer::Config wc;
  wc.port = 5000;
  wc.request_size = 64;
  wc.response_size = [] { return Bytes{10000}; };
  WorkerServer server(*topo.workers[0], TcpFactory(), TcpSocket::Config{},
                      std::move(wc));
  AggregatorClient client(*topo.aggregator, MakeCongestionOps(Protocol::kDctcp),
                          TcpSocket::Config{}, topo.workers[0]->id(), 5000,
                          64);
  int responses = 0;
  client.Connect([&] {
    client.Request(10000, [&] { ++responses; });
    client.Request(10000, [&] { ++responses; });
  });
  sim->RunUntil(1 * kSecond);
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(client.total_received(), 20000);
  EXPECT_EQ(server.total_responded(), 20000);
  EXPECT_EQ(server.ConnectionCount(), 1u);
}

TEST_F(AppsFixture, RequestsServedFifo) {
  WorkerServer::Config wc;
  wc.port = 5000;
  wc.request_size = 64;
  wc.response_size = [] { return Bytes{5000}; };
  WorkerServer server(*topo.workers[0], TcpFactory(), TcpSocket::Config{},
                      std::move(wc));
  AggregatorClient client(*topo.aggregator, MakeCongestionOps(Protocol::kDctcp),
                          TcpSocket::Config{}, topo.workers[0]->id(), 5000,
                          64);
  std::vector<int> completions;
  client.Connect([&] {
    for (int i = 0; i < 5; ++i) {
      client.Request(5000, [&completions, i] { completions.push_back(i); });
    }
  });
  sim->RunUntil(1 * kSecond);
  EXPECT_EQ(completions, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(AppsFixture, BulkSenderCompletesAndCloses) {
  SinkServer sink(*topo.aggregator, 6000, TcpFactory(),
                  TcpSocket::Config{});
  BulkSender sender(*topo.workers[1], MakeCongestionOps(Protocol::kDctcp),
                    TcpSocket::Config{}, topo.aggregator->id(), 6000);
  bool done = false;
  sender.Start(100000, /*close_when_done=*/true, [&] { done = true; });
  sim->RunUntil(2 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(sink.total_received(), 100000);
  EXPECT_EQ(sink.flows_completed(), 1u);
  EXPECT_EQ(sender.acked_bytes(), 100000);
}

TEST_F(AppsFixture, SinkTracksMultipleFlows) {
  SinkServer sink(*topo.aggregator, 6000, TcpFactory(),
                  TcpSocket::Config{});
  std::vector<std::unique_ptr<BulkSender>> senders;
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    senders.push_back(std::make_unique<BulkSender>(
        *topo.workers[i], MakeCongestionOps(Protocol::kDctcp),
        TcpSocket::Config{}, topo.aggregator->id(), PortNum{6000}));
    senders.back()->Start(50000, true, [&done] { ++done; });
  }
  sim->RunUntil(2 * kSecond);
  EXPECT_EQ(done, 3);
  EXPECT_EQ(sink.total_received(), 150000);
  EXPECT_EQ(sink.flows_completed(), 3u);
}

TEST_F(AppsFixture, FlowGeneratorRunsAllFlows) {
  std::vector<Host*> hosts = topo.workers;
  hosts.push_back(topo.aggregator);
  std::vector<std::unique_ptr<SinkServer>> sinks;
  for (Host* h : hosts) {
    sinks.push_back(std::make_unique<SinkServer>(
        *h, PortNum{6000}, TcpFactory(), TcpSocket::Config{}));
  }
  FlowGenerator::Config fg;
  fg.flow_count = 20;
  fg.mean_interarrival = 1_ms;
  FlowGenerator gen(*sim, hosts, TcpFactory(), TcpSocket::Config{}, fg,
                    EmpiricalCdf({{1000.0, 0.0}, {20000.0, 1.0}}));
  bool all_done = false;
  gen.Start([&] { all_done = true; });
  sim->RunUntil(30 * kSecond);
  EXPECT_TRUE(all_done);
  EXPECT_EQ(gen.flows_started(), 20);
  EXPECT_EQ(gen.flows_completed(), 20);
  EXPECT_EQ(gen.fct_ms().count(), 20u);
  EXPECT_GT(gen.fct_ms().Mean(), 0.0);
  Bytes sunk = 0;
  for (const auto& s : sinks) sunk += s->total_received();
  EXPECT_EQ(sunk, gen.bytes_sent());
}

TEST(ProductionCdfTest, HeavyTailedShape) {
  const EmpiricalCdf cdf = ProductionFlowSizeCdf();
  Rng rng(5);
  Percentile sizes;
  for (int i = 0; i < 20000; ++i) sizes.Add(cdf.Sample(rng));
  // Most flows are small, the tail is megabytes.
  EXPECT_LT(sizes.Median(), 100e3);
  EXPECT_GT(sizes.Quantile(0.99), 1e6);
  EXPECT_LE(sizes.Max(), 10 * 1024 * 1024 + 1);
}

// ---------------------------------------------------------------------------
// Incast experiment (integration)

IncastConfig SmallIncast(Protocol protocol, int flows) {
  IncastConfig config;
  config.protocol = protocol;
  config.num_flows = flows;
  config.rounds = 5;
  config.total_bytes = 256 * 1024;
  config.time_limit = 60 * kSecond;
  return config;
}

TEST(IncastTest, CompletesForAllProtocols) {
  for (Protocol p : {Protocol::kTcp, Protocol::kDctcp, Protocol::kDctcpPlus,
                     Protocol::kDctcpPlusPartial}) {
    const IncastResult r = RunIncast(SmallIncast(p, 8));
    EXPECT_EQ(r.rounds_completed, 5u) << ToString(p);
    EXPECT_FALSE(r.hit_time_limit) << ToString(p);
    EXPECT_GT(r.goodput_mbps, 0.0) << ToString(p);
    EXPECT_EQ(r.fct_ms.count(), 5u) << ToString(p);
  }
}

TEST(IncastTest, DeterministicForSeed) {
  const IncastResult r1 = RunIncast(SmallIncast(Protocol::kDctcp, 10));
  const IncastResult r2 = RunIncast(SmallIncast(Protocol::kDctcp, 10));
  EXPECT_EQ(r1.goodput_mbps, r2.goodput_mbps);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.timeouts, r2.timeouts);
}

TEST(IncastTest, SeedChangesOutcome) {
  // DCTCP+ at a fan-in that engages the randomized regulator: different
  // seeds must produce different event schedules.
  IncastConfig a = SmallIncast(Protocol::kDctcpPlus, 40);
  a.rounds = 8;
  IncastConfig b = a;
  b.seed = 999;
  EXPECT_NE(RunIncast(a).events, RunIncast(b).events);
}

TEST(IncastTest, QueueSamplingProducesSeries) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 8);
  config.sample_queue = true;
  const IncastResult r = RunIncast(config);
  ASSERT_GT(r.queue_samples.size(), 10u);
  // Samples are 100 us apart and non-negative.
  EXPECT_EQ(r.queue_samples[1].at - r.queue_samples[0].at, 100_us);
  for (const auto& s : r.queue_samples) ASSERT_GE(s.value, 0.0);
}

TEST(IncastTest, CwndHistogramPopulated) {
  const IncastResult r = RunIncast(SmallIncast(Protocol::kDctcp, 10));
  EXPECT_GT(r.cwnd_hist.total(), 100u);
}

TEST(IncastTest, BackgroundFlowsCarryTraffic) {
  IncastConfig config = SmallIncast(Protocol::kDctcpPlus, 8);
  config.background_flows = 2;
  config.rounds = 10;
  const IncastResult r = RunIncast(config);
  ASSERT_EQ(r.bg_throughput_mbps.size(), 2u);
  EXPECT_GT(r.bg_throughput_mbps[0], 1.0);
  EXPECT_GT(r.bg_throughput_mbps[1], 1.0);
  EXPECT_EQ(r.rounds_completed, 10u);
}

TEST(IncastTest, FairnessNearOneWhenHealthy) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 10);
  config.rounds = 10;
  const IncastResult r = RunIncast(config);
  // Every flow serves the same per-round quota, so completed runs are
  // perfectly fair by construction.
  EXPECT_GT(r.flow_fairness, 0.99);
  EXPECT_LE(r.flow_fairness, 1.0 + 1e-12);
}

TEST(IncastTest, PerFlowBytesOverride) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 4);
  config.per_flow_bytes = 12345;
  const IncastResult r = RunIncast(config);
  EXPECT_EQ(r.per_flow_bytes, 12345);
}

// The paper's headline: at 60+ concurrent flows DCTCP collapses into
// RTO-bound rounds while DCTCP+ keeps short FCTs. This is the key
// qualitative result (Figs 1 and 7) asserted as a test.
TEST(IncastTest, DctcpPlusBeatsDctcpAtHighFanIn) {
  IncastConfig config;
  config.num_flows = 60;
  config.rounds = 25;
  config.time_limit = 120 * kSecond;

  config.protocol = Protocol::kDctcp;
  const IncastResult dctcp = RunIncast(config);
  config.protocol = Protocol::kDctcpPlus;
  const IncastResult plus = RunIncast(config);

  // DCTCP suffers timeouts nearly every round; its median round is pinned
  // near RTO_min (200 ms). DCTCP+ stays an order of magnitude faster.
  EXPECT_GT(dctcp.fct_ms.Median(), 100.0);
  EXPECT_LT(plus.fct_ms.Median(), 60.0);
  EXPECT_GT(plus.goodput_mbps, 4 * dctcp.goodput_mbps);
}

TEST(IncastTest, DctcpHealthyAtLowFanIn) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 10);
  config.rounds = 20;
  config.total_bytes = 1 * kMiB;
  const IncastResult r = RunIncast(config);
  EXPECT_GT(r.goodput_mbps, 700.0);
  EXPECT_EQ(r.timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Sweep harness

TEST(SweepTest, FlowCountsRange) {
  EXPECT_EQ(FlowCounts(10, 30, 10), (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(FlowCounts(5, 5, 1), (std::vector<int>{5}));
}

TEST(SweepTest, PointMergesRepetitions) {
  ThreadPool pool(2);
  IncastConfig config = SmallIncast(Protocol::kDctcp, 6);
  const IncastSweepPoint point = RunIncastPoint(config, 3, pool);
  EXPECT_EQ(point.goodput_mbps.count(), 3u);
  EXPECT_EQ(point.rounds, 15u);  // 3 reps x 5 rounds
  EXPECT_EQ(point.fct_ms.count(), 15u);
  EXPECT_EQ(point.num_flows, 6);
}

TEST(SweepTest, SweepCoversGrid) {
  ThreadPool pool(2);
  IncastConfig base = SmallIncast(Protocol::kDctcp, 0);
  base.rounds = 2;
  const auto points = RunIncastSweep(
      base, {Protocol::kDctcp, Protocol::kTcp}, {4, 8}, 2, pool);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].protocol, Protocol::kDctcp);
  EXPECT_EQ(points[0].num_flows, 4);
  EXPECT_EQ(points[3].protocol, Protocol::kTcp);
  EXPECT_EQ(points[3].num_flows, 8);
  for (const auto& p : points) {
    EXPECT_EQ(p.goodput_mbps.count(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Benchmark traffic (Sec. VI-D)

TEST(BenchmarkTrafficTest, SmallRunCompletes) {
  BenchmarkTrafficConfig config;
  config.protocol = Protocol::kDctcpPlus;
  config.num_queries = 30;
  config.num_background_flows = 30;
  config.query_mean_interarrival = 2_ms;
  config.background_mean_interarrival = 2_ms;
  config.time_limit = 120 * kSecond;
  const BenchmarkTrafficResult r = RunBenchmarkTraffic(config);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.queries_completed, 30u);
  EXPECT_EQ(r.background_flows_completed, 30u);
  EXPECT_EQ(r.query_fct_ms.count(), 30u);
  EXPECT_EQ(r.background_fct_ms.count(), 30u);
  EXPECT_GT(r.query_fct_ms.Mean(), 0.0);
}

TEST(BenchmarkTrafficTest, DeterministicForSeed) {
  BenchmarkTrafficConfig config;
  config.num_queries = 10;
  config.num_background_flows = 10;
  config.time_limit = 120 * kSecond;
  const auto r1 = RunBenchmarkTraffic(config);
  const auto r2 = RunBenchmarkTraffic(config);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.query_fct_ms.Mean(), r2.query_fct_ms.Mean());
}

TEST(BenchmarkTrafficTest, QueryOnlyAndBackgroundOnly) {
  BenchmarkTrafficConfig config;
  config.num_queries = 10;
  config.num_background_flows = 0;
  config.time_limit = 60 * kSecond;
  const auto queries_only = RunBenchmarkTraffic(config);
  EXPECT_EQ(queries_only.queries_completed, 10u);
  EXPECT_EQ(queries_only.background_flows_completed, 0u);

  config.num_queries = 0;
  config.num_background_flows = 10;
  const auto bg_only = RunBenchmarkTraffic(config);
  EXPECT_EQ(bg_only.queries_completed, 0u);
  EXPECT_EQ(bg_only.background_flows_completed, 10u);
}

// --- churning open-loop workload (workload/churn.h) ------------------------

ChurnConfig SmallChurn(int shards) {
  ChurnConfig cfg;
  cfg.fat_tree.k = 4;  // 16 hosts
  cfg.shards = shards;
  cfg.seed = 3;
  cfg.target_live_flows = 250;
  cfg.mean_lifetime = 1 * kMillisecond;
  cfg.bytes_per_flow = 2 * kKiB;
  cfg.prewarm = 1 * kMillisecond;
  cfg.min_rto = 1 * kMillisecond;
  return cfg;
}

// 10k churn cycles with zero resource growth: once the pools and engine
// allocators reach steady state, completing thousands more flows must not
// allocate another byte — sockets recycle through slots, ports and flow-
// table entries release on close, and the arena high-water mark is flat.
TEST(ChurnTest, TenThousandCyclesNoResourceGrowth) {
  ChurnWorkload w(SmallChurn(1));
  w.Start();
  w.RunTo(8 * kMillisecond);  // warm-up: pools touched, slabs reserved
  const ChurnFootprint warm = w.MeasureFootprint();
  const std::uint64_t warm_completed = w.Stats().flows_completed;

  Tick now = 8 * kMillisecond;
  while (w.Stats().flows_completed < warm_completed + 10000) {
    now += 8 * kMillisecond;
    ASSERT_LT(now, 500 * kMillisecond) << "churn stalled";
    w.RunTo(now);
  }

  const ChurnFootprint done = w.MeasureFootprint();
  EXPECT_EQ(done.pool_bytes, warm.pool_bytes);
  EXPECT_EQ(done.scheduler_bytes, warm.scheduler_bytes);
  EXPECT_EQ(done.arena_bytes, warm.arena_bytes);

  const ChurnStats s = w.Stats();
  EXPECT_GE(s.flows_completed, 10000u);
  EXPECT_EQ(s.violations, 0u);
  // Every completed flow delivered its full payload before the FIN.
  EXPECT_GE(s.bytes_received,
            static_cast<Bytes>(s.flows_completed) * w.config().bytes_per_flow);
  // The live population stays near target: slots, ports, and table
  // entries are being released, not leaked.
  EXPECT_LT(s.live_flows, 3 * w.config().target_live_flows);
}

// The same sharded world must be bit-identical under thread pools of
// size 1, 2, and 8: churn state is only touched from the owning shard,
// and recycling happens at simulated-time points.
TEST(ChurnTest, ThreadPoolSizeDoesNotChangeState) {
  std::uint64_t want = 0;
  bool first = true;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ChurnWorkload w(SmallChurn(4));
    w.Start();
    for (Tick t = 2 * kMillisecond; t <= 10 * kMillisecond;
         t += 2 * kMillisecond) {
      w.RunTo(t, &pool);
    }
    const std::uint64_t got = w.Fingerprint();
    if (first) {
      want = got;
      first = false;
      ASSERT_GT(w.Stats().flows_completed, 500u);
    } else {
      EXPECT_EQ(got, want) << "pool=" << threads;
    }
  }
}

// Regression: a 4-tuple freed and re-allocated in the same tick must not
// deliver old-incarnation packets into the new connection's handler (the
// host demux cache and flow table both turn over at FinalizeClose).
// Duplicate impairments keep stale copies of the old flow's last segments
// in flight across the reuse point.
TEST(ChurnTest, SameTickTupleReuseDeliversToNewSocket) {
  Simulator sim(1);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig link;
  link.impairment.duplicate_prob = 0.3;
  net.ConnectHost(a, sw, link);
  net.ConnectHost(b, sw, link);
  net.InstallRoutes();

  TcpSocket::Config scfg;
  std::vector<TcpSocket::Ptr> servers;
  Bytes server_received = 0;
  TcpListener listener(
      b, 5000, TcpFactory(), scfg,
      [&](TcpSocket::Ptr s) {
        servers.push_back(std::move(s));
        TcpSocket* srv = servers.back().get();
        srv->set_on_data([&server_received](Bytes n) { server_received += n; });
        srv->set_on_remote_close([srv] { srv->Close(); });
      });

  constexpr Bytes kSize = 16 * kKiB;
  TcpSocket::Ptr client2;
  bool second_started = false;
  bool second_closed = false;
  PortNum reused_port = 0;

  TcpSocket::Ptr client1 =
      TcpSocket::Create(a, MakeCongestionOps(Protocol::kDctcp), scfg);
  client1->set_on_closed([&] {
    // Same tick as the teardown: recycle the exact 4-tuple.
    reused_port = client1->local_port();
    a.SetNextEphemeralForTest(reused_port);
    client2 = TcpSocket::Create(a, MakeCongestionOps(Protocol::kDctcp), scfg);
    client2->set_on_closed([&second_closed] { second_closed = true; });
    client2->Connect(b.id(), 5000);
    client2->Send(kSize);
    client2->Close();
    second_started = true;
  });
  client1->Connect(b.id(), 5000);
  client1->Send(kSize);
  client1->Close();

  sim.RunUntil(2000 * kMillisecond);
  ASSERT_TRUE(second_started);
  EXPECT_EQ(client2->local_port(), reused_port);
  EXPECT_TRUE(second_closed) << "reused-tuple connection never completed";
  EXPECT_EQ(server_received, 2 * kSize);
  EXPECT_EQ(sim.invariants().violations(), 0u);
  EXPECT_EQ(servers.size(), 2u);
}

}  // namespace
}  // namespace dctcpp
