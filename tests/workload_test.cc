// Workload-layer tests: the request/response apps, flow generation, the
// incast experiment end to end (including the paper's headline ordering),
// the benchmark-traffic experiment, and the sweep harness.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/workload/apps.h"
#include "dctcpp/workload/background.h"
#include "dctcpp/workload/benchmark_traffic.h"
#include "dctcpp/workload/experiment.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

TcpListener::CcFactory TcpFactory() {
  return [] { return MakeCongestionOps(Protocol::kDctcp); };
}

class AppsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net.reset();  // ports hold pinned scheduler events: drop before the sim
    sim = std::make_unique<Simulator>(1);
    net = std::make_unique<Network>(*sim);
    topo = TwoTierTopology::Build(*net, 4, LinkConfig{});
  }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  TwoTierTopology topo;
};

TEST_F(AppsFixture, WorkerRespondsToRequests) {
  WorkerServer::Config wc;
  wc.port = 5000;
  wc.request_size = 64;
  wc.response_size = [] { return Bytes{10000}; };
  WorkerServer server(*topo.workers[0], TcpFactory(), TcpSocket::Config{},
                      std::move(wc));
  AggregatorClient client(*topo.aggregator, MakeCongestionOps(Protocol::kDctcp),
                          TcpSocket::Config{}, topo.workers[0]->id(), 5000,
                          64);
  int responses = 0;
  client.Connect([&] {
    client.Request(10000, [&] { ++responses; });
    client.Request(10000, [&] { ++responses; });
  });
  sim->RunUntil(1 * kSecond);
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(client.total_received(), 20000);
  EXPECT_EQ(server.total_responded(), 20000);
  EXPECT_EQ(server.ConnectionCount(), 1u);
}

TEST_F(AppsFixture, RequestsServedFifo) {
  WorkerServer::Config wc;
  wc.port = 5000;
  wc.request_size = 64;
  wc.response_size = [] { return Bytes{5000}; };
  WorkerServer server(*topo.workers[0], TcpFactory(), TcpSocket::Config{},
                      std::move(wc));
  AggregatorClient client(*topo.aggregator, MakeCongestionOps(Protocol::kDctcp),
                          TcpSocket::Config{}, topo.workers[0]->id(), 5000,
                          64);
  std::vector<int> completions;
  client.Connect([&] {
    for (int i = 0; i < 5; ++i) {
      client.Request(5000, [&completions, i] { completions.push_back(i); });
    }
  });
  sim->RunUntil(1 * kSecond);
  EXPECT_EQ(completions, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(AppsFixture, BulkSenderCompletesAndCloses) {
  SinkServer sink(*topo.aggregator, 6000, TcpFactory(),
                  TcpSocket::Config{});
  BulkSender sender(*topo.workers[1], MakeCongestionOps(Protocol::kDctcp),
                    TcpSocket::Config{}, topo.aggregator->id(), 6000);
  bool done = false;
  sender.Start(100000, /*close_when_done=*/true, [&] { done = true; });
  sim->RunUntil(2 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(sink.total_received(), 100000);
  EXPECT_EQ(sink.flows_completed(), 1u);
  EXPECT_EQ(sender.acked_bytes(), 100000);
}

TEST_F(AppsFixture, SinkTracksMultipleFlows) {
  SinkServer sink(*topo.aggregator, 6000, TcpFactory(),
                  TcpSocket::Config{});
  std::vector<std::unique_ptr<BulkSender>> senders;
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    senders.push_back(std::make_unique<BulkSender>(
        *topo.workers[i], MakeCongestionOps(Protocol::kDctcp),
        TcpSocket::Config{}, topo.aggregator->id(), PortNum{6000}));
    senders.back()->Start(50000, true, [&done] { ++done; });
  }
  sim->RunUntil(2 * kSecond);
  EXPECT_EQ(done, 3);
  EXPECT_EQ(sink.total_received(), 150000);
  EXPECT_EQ(sink.flows_completed(), 3u);
}

TEST_F(AppsFixture, FlowGeneratorRunsAllFlows) {
  std::vector<Host*> hosts = topo.workers;
  hosts.push_back(topo.aggregator);
  std::vector<std::unique_ptr<SinkServer>> sinks;
  for (Host* h : hosts) {
    sinks.push_back(std::make_unique<SinkServer>(
        *h, PortNum{6000}, TcpFactory(), TcpSocket::Config{}));
  }
  FlowGenerator::Config fg;
  fg.flow_count = 20;
  fg.mean_interarrival = 1_ms;
  FlowGenerator gen(*sim, hosts, TcpFactory(), TcpSocket::Config{}, fg,
                    EmpiricalCdf({{1000.0, 0.0}, {20000.0, 1.0}}));
  bool all_done = false;
  gen.Start([&] { all_done = true; });
  sim->RunUntil(30 * kSecond);
  EXPECT_TRUE(all_done);
  EXPECT_EQ(gen.flows_started(), 20);
  EXPECT_EQ(gen.flows_completed(), 20);
  EXPECT_EQ(gen.fct_ms().count(), 20u);
  EXPECT_GT(gen.fct_ms().Mean(), 0.0);
  Bytes sunk = 0;
  for (const auto& s : sinks) sunk += s->total_received();
  EXPECT_EQ(sunk, gen.bytes_sent());
}

TEST(ProductionCdfTest, HeavyTailedShape) {
  const EmpiricalCdf cdf = ProductionFlowSizeCdf();
  Rng rng(5);
  Percentile sizes;
  for (int i = 0; i < 20000; ++i) sizes.Add(cdf.Sample(rng));
  // Most flows are small, the tail is megabytes.
  EXPECT_LT(sizes.Median(), 100e3);
  EXPECT_GT(sizes.Quantile(0.99), 1e6);
  EXPECT_LE(sizes.Max(), 10 * 1024 * 1024 + 1);
}

// ---------------------------------------------------------------------------
// Incast experiment (integration)

IncastConfig SmallIncast(Protocol protocol, int flows) {
  IncastConfig config;
  config.protocol = protocol;
  config.num_flows = flows;
  config.rounds = 5;
  config.total_bytes = 256 * 1024;
  config.time_limit = 60 * kSecond;
  return config;
}

TEST(IncastTest, CompletesForAllProtocols) {
  for (Protocol p : {Protocol::kTcp, Protocol::kDctcp, Protocol::kDctcpPlus,
                     Protocol::kDctcpPlusPartial}) {
    const IncastResult r = RunIncast(SmallIncast(p, 8));
    EXPECT_EQ(r.rounds_completed, 5u) << ToString(p);
    EXPECT_FALSE(r.hit_time_limit) << ToString(p);
    EXPECT_GT(r.goodput_mbps, 0.0) << ToString(p);
    EXPECT_EQ(r.fct_ms.count(), 5u) << ToString(p);
  }
}

TEST(IncastTest, DeterministicForSeed) {
  const IncastResult r1 = RunIncast(SmallIncast(Protocol::kDctcp, 10));
  const IncastResult r2 = RunIncast(SmallIncast(Protocol::kDctcp, 10));
  EXPECT_EQ(r1.goodput_mbps, r2.goodput_mbps);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.timeouts, r2.timeouts);
}

TEST(IncastTest, SeedChangesOutcome) {
  // DCTCP+ at a fan-in that engages the randomized regulator: different
  // seeds must produce different event schedules.
  IncastConfig a = SmallIncast(Protocol::kDctcpPlus, 40);
  a.rounds = 8;
  IncastConfig b = a;
  b.seed = 999;
  EXPECT_NE(RunIncast(a).events, RunIncast(b).events);
}

TEST(IncastTest, QueueSamplingProducesSeries) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 8);
  config.sample_queue = true;
  const IncastResult r = RunIncast(config);
  ASSERT_GT(r.queue_samples.size(), 10u);
  // Samples are 100 us apart and non-negative.
  EXPECT_EQ(r.queue_samples[1].at - r.queue_samples[0].at, 100_us);
  for (const auto& s : r.queue_samples) ASSERT_GE(s.value, 0.0);
}

TEST(IncastTest, CwndHistogramPopulated) {
  const IncastResult r = RunIncast(SmallIncast(Protocol::kDctcp, 10));
  EXPECT_GT(r.cwnd_hist.total(), 100u);
}

TEST(IncastTest, BackgroundFlowsCarryTraffic) {
  IncastConfig config = SmallIncast(Protocol::kDctcpPlus, 8);
  config.background_flows = 2;
  config.rounds = 10;
  const IncastResult r = RunIncast(config);
  ASSERT_EQ(r.bg_throughput_mbps.size(), 2u);
  EXPECT_GT(r.bg_throughput_mbps[0], 1.0);
  EXPECT_GT(r.bg_throughput_mbps[1], 1.0);
  EXPECT_EQ(r.rounds_completed, 10u);
}

TEST(IncastTest, FairnessNearOneWhenHealthy) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 10);
  config.rounds = 10;
  const IncastResult r = RunIncast(config);
  // Every flow serves the same per-round quota, so completed runs are
  // perfectly fair by construction.
  EXPECT_GT(r.flow_fairness, 0.99);
  EXPECT_LE(r.flow_fairness, 1.0 + 1e-12);
}

TEST(IncastTest, PerFlowBytesOverride) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 4);
  config.per_flow_bytes = 12345;
  const IncastResult r = RunIncast(config);
  EXPECT_EQ(r.per_flow_bytes, 12345);
}

// The paper's headline: at 60+ concurrent flows DCTCP collapses into
// RTO-bound rounds while DCTCP+ keeps short FCTs. This is the key
// qualitative result (Figs 1 and 7) asserted as a test.
TEST(IncastTest, DctcpPlusBeatsDctcpAtHighFanIn) {
  IncastConfig config;
  config.num_flows = 60;
  config.rounds = 25;
  config.time_limit = 120 * kSecond;

  config.protocol = Protocol::kDctcp;
  const IncastResult dctcp = RunIncast(config);
  config.protocol = Protocol::kDctcpPlus;
  const IncastResult plus = RunIncast(config);

  // DCTCP suffers timeouts nearly every round; its median round is pinned
  // near RTO_min (200 ms). DCTCP+ stays an order of magnitude faster.
  EXPECT_GT(dctcp.fct_ms.Median(), 100.0);
  EXPECT_LT(plus.fct_ms.Median(), 60.0);
  EXPECT_GT(plus.goodput_mbps, 4 * dctcp.goodput_mbps);
}

TEST(IncastTest, DctcpHealthyAtLowFanIn) {
  IncastConfig config = SmallIncast(Protocol::kDctcp, 10);
  config.rounds = 20;
  config.total_bytes = 1 * kMiB;
  const IncastResult r = RunIncast(config);
  EXPECT_GT(r.goodput_mbps, 700.0);
  EXPECT_EQ(r.timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Sweep harness

TEST(SweepTest, FlowCountsRange) {
  EXPECT_EQ(FlowCounts(10, 30, 10), (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(FlowCounts(5, 5, 1), (std::vector<int>{5}));
}

TEST(SweepTest, PointMergesRepetitions) {
  ThreadPool pool(2);
  IncastConfig config = SmallIncast(Protocol::kDctcp, 6);
  const IncastSweepPoint point = RunIncastPoint(config, 3, pool);
  EXPECT_EQ(point.goodput_mbps.count(), 3u);
  EXPECT_EQ(point.rounds, 15u);  // 3 reps x 5 rounds
  EXPECT_EQ(point.fct_ms.count(), 15u);
  EXPECT_EQ(point.num_flows, 6);
}

TEST(SweepTest, SweepCoversGrid) {
  ThreadPool pool(2);
  IncastConfig base = SmallIncast(Protocol::kDctcp, 0);
  base.rounds = 2;
  const auto points = RunIncastSweep(
      base, {Protocol::kDctcp, Protocol::kTcp}, {4, 8}, 2, pool);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].protocol, Protocol::kDctcp);
  EXPECT_EQ(points[0].num_flows, 4);
  EXPECT_EQ(points[3].protocol, Protocol::kTcp);
  EXPECT_EQ(points[3].num_flows, 8);
  for (const auto& p : points) {
    EXPECT_EQ(p.goodput_mbps.count(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Benchmark traffic (Sec. VI-D)

TEST(BenchmarkTrafficTest, SmallRunCompletes) {
  BenchmarkTrafficConfig config;
  config.protocol = Protocol::kDctcpPlus;
  config.num_queries = 30;
  config.num_background_flows = 30;
  config.query_mean_interarrival = 2_ms;
  config.background_mean_interarrival = 2_ms;
  config.time_limit = 120 * kSecond;
  const BenchmarkTrafficResult r = RunBenchmarkTraffic(config);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.queries_completed, 30u);
  EXPECT_EQ(r.background_flows_completed, 30u);
  EXPECT_EQ(r.query_fct_ms.count(), 30u);
  EXPECT_EQ(r.background_fct_ms.count(), 30u);
  EXPECT_GT(r.query_fct_ms.Mean(), 0.0);
}

TEST(BenchmarkTrafficTest, DeterministicForSeed) {
  BenchmarkTrafficConfig config;
  config.num_queries = 10;
  config.num_background_flows = 10;
  config.time_limit = 120 * kSecond;
  const auto r1 = RunBenchmarkTraffic(config);
  const auto r2 = RunBenchmarkTraffic(config);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.query_fct_ms.Mean(), r2.query_fct_ms.Mean());
}

TEST(BenchmarkTrafficTest, QueryOnlyAndBackgroundOnly) {
  BenchmarkTrafficConfig config;
  config.num_queries = 10;
  config.num_background_flows = 0;
  config.time_limit = 60 * kSecond;
  const auto queries_only = RunBenchmarkTraffic(config);
  EXPECT_EQ(queries_only.queries_completed, 10u);
  EXPECT_EQ(queries_only.background_flows_completed, 0u);

  config.num_queries = 0;
  config.num_background_flows = 10;
  const auto bg_only = RunBenchmarkTraffic(config);
  EXPECT_EQ(bg_only.queries_completed, 0u);
  EXPECT_EQ(bg_only.background_flows_completed, 10u);
}

}  // namespace
}  // namespace dctcpp
