// Differential tests for the batched-ACK datapath (deferred emission).
//
// Organic single-simulator runs never open a burst scope (arrivals are
// spaced by serialization delay), so these tests drive the batch machinery
// explicitly: they open Simulator::BeginAckBurst, inject crafted same-tick
// cumulative-ACK runs — including randomized loss / duplication / reorder
// patterns — straight into Host::Deliver, and replay the identical
// scenario in the per-ACK reference mode. Every per-ACK state sample
// (cwnd, ssthresh, DCTCP alpha, RTO, flight, recovery flags, stats) must
// match bit-for-bit, and the batched run must prove the fast path actually
// engaged (stats().acks_batch_deferred > 0).
//
// A final end-to-end case runs the sharded incast workload — where burst
// scopes open organically in the calendar drain — in both modes and
// demands identical results.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "dctcpp/dctcp/dctcp.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/newreno.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

/// Captures the wire sequence number of the first fresh data segment
/// (= ISS + 1), anchoring crafted cumulative ACKs in real sequence space.
class SeqBaseProbe : public TcpProbe {
 public:
  void OnSegmentSent(const TcpSocket& sk, const Packet& pkt,
                     bool retransmit) override {
    (void)sk;
    if (!retransmit && !have_) {
      base_ = pkt.tcp.seq;
      have_ = true;
    }
  }
  bool have() const { return have_; }
  std::uint32_t base() const { return base_; }

 private:
  std::uint32_t base_ = 0;
  bool have_ = false;
};

/// Everything the per-ACK chain can change, sampled after each delivery.
struct StateSample {
  Bytes acked = 0;
  Bytes flight = 0;
  int cwnd = 0;
  int ssthresh = 0;
  bool in_recovery = false;
  Tick srtt = 0;
  Tick rto = 0;
  double alpha = 0.0;  ///< DCTCP only; 0 for NewReno
  std::uint64_t segments_sent = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t originated = 0;  ///< whole-sim ledger: packets on the wire

  bool operator==(const StateSample& o) const {
    return acked == o.acked && flight == o.flight && cwnd == o.cwnd &&
           ssthresh == o.ssthresh && in_recovery == o.in_recovery &&
           srtt == o.srtt && rto == o.rto && alpha == o.alpha &&
           segments_sent == o.segments_sent &&
           fast_retransmits == o.fast_retransmits &&
           timeouts == o.timeouts && acks_received == o.acks_received;
  }
};

struct ScenarioResult {
  std::vector<StateSample> trace;   ///< one sample per injected ACK
  std::uint64_t deferred = 0;       ///< acks_batch_deferred on the client
  std::uint64_t originated_during_burst = 0;  ///< emissions while deferred
  Bytes server_received = 0;        ///< after draining the sim
  Bytes client_acked_final = 0;
  std::uint64_t violations = 0;
};

/// One injected ACK: the stream offset it cumulatively acknowledges,
/// relative to the cumulative edge at injection time (organic ACKs keep
/// arriving during warm-up, so absolute offsets would go stale). Patterns
/// replay the same offset list in both modes; non-advancing entries model
/// reordered or duplicated ACKs and must take the reference path inside
/// the batch.
using AckPattern = std::vector<Bytes>;

/// Builds a randomized burst pattern over `flight` in-flight bytes
/// starting at `acked0`: mostly forward cumulative steps of 1-3 segments,
/// with drops (skipped ACKs), duplicates, and adjacent reorders mixed in.
AckPattern MakePattern(std::uint64_t seed, Bytes acked0, Bytes flight,
                       Bytes mss) {
  std::mt19937_64 rng(seed);
  AckPattern offsets;
  Bytes o = acked0;
  const Bytes end = acked0 + flight;
  while (o < end) {
    o = std::min<Bytes>(end, o + mss * (1 + static_cast<Bytes>(rng() % 3)));
    offsets.push_back(o);
  }
  AckPattern pattern;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const std::uint64_t roll = rng() % 10;
    if (roll == 0) continue;  // ACK lost in the network
    pattern.push_back(offsets[i]);
    if (roll == 1) pattern.push_back(offsets[i]);  // duplicated ACK
    if (roll == 2 && pattern.size() >= 2) {        // reordered arrival
      std::swap(pattern[pattern.size() - 1], pattern[pattern.size() - 2]);
    }
  }
  return pattern;
}

/// Runs the full scenario — establish, fill the pipe, inject `pattern` as
/// one same-tick burst, then drain — in the requested ACK mode.
ScenarioResult RunScenario(bool batched, bool dctcp, const AckPattern& pattern,
                           Bytes send_bytes = 64 * kMss) {
  TcpSocket::SetBatchedAckMode(batched);
  ScenarioResult out;
  {
    Simulator sim(1);
    Network net(sim);
    Switch& sw = net.AddSwitch("sw");
    Host& a = net.AddHost("a");
    Host& b = net.AddHost("b");
    LinkConfig fast;
    fast.rate = DataRate::GigabitsPerSec(10);
    net.ConnectHost(a, sw, fast);
    LinkConfig to_b;
    to_b.buffer_bytes = 256 * kKiB;
    to_b.ecn_threshold = 64 * kKiB;
    net.ConnectHost(b, sw, to_b);
    net.InstallRoutes();

    auto make_cc = [dctcp]() -> std::unique_ptr<CongestionOps> {
      if (dctcp) return std::make_unique<DctcpCc>();
      return std::make_unique<NewRenoCc>();
    };
    Bytes server_received = 0;
    TcpSocket::Ptr server;
    TcpListener listener(b, PortNum{5000}, make_cc, {},
                         [&](TcpSocket::Ptr s) {
                           server = std::move(s);
                           server->set_on_data(
                               [&](Bytes n) { server_received += n; });
                         });
    TcpSocket::Ptr client = TcpSocket::Create(a, make_cc(), {});
    client->Connect(b.id(), 5000);
    sim.RunUntil(sim.Now() + 10 * kMillisecond);
    EXPECT_TRUE(client->Established());

    SeqBaseProbe probe;
    client->set_probe(&probe);
    client->Send(send_bytes);
    // Long enough for a window of segments to leave; far shorter than the
    // transfer, so a healthy share of the stream is still in flight.
    sim.RunUntil(sim.Now() + 150 * kMicrosecond);
    EXPECT_TRUE(probe.have());
    EXPECT_GT(client->FlightSize(), 8 * kMss);

    const Bytes acked0 = client->StreamAcked();
    const std::uint64_t originated_before =
        sim.invariants().ledger().originated;
    sim.BeginAckBurst();
    for (const Bytes offset : pattern) {
      Packet ack;
      ack.src = b.id();
      ack.dst = a.id();
      ack.tcp.src_port = client->remote_port();
      ack.tcp.dst_port = client->local_port();
      ack.tcp.ack_flag = true;
      ack.tcp.ack = probe.base() + static_cast<std::uint32_t>(acked0 + offset);
      // Balance the conservation ledger for the injected copy before it
      // retires via Deliver (the network never originated it).
      sim.invariants().CountDuplicated();
      a.Deliver(ack);
      StateSample s;
      s.acked = client->StreamAcked();
      s.flight = client->FlightSize();
      s.cwnd = client->cwnd();
      s.ssthresh = client->ssthresh();
      s.in_recovery = client->InRecovery();
      s.srtt = client->srtt();
      s.rto = client->rto_estimator().Rto();
      if (dctcp) s.alpha = static_cast<DctcpCc&>(client->cc()).alpha();
      s.segments_sent = client->stats().segments_sent;
      s.fast_retransmits = client->stats().fast_retransmits;
      s.timeouts = client->stats().timeouts;
      s.acks_received = client->stats().acks_received;
      s.originated = sim.invariants().ledger().originated;
      out.trace.push_back(s);
    }
    out.originated_during_burst =
        sim.invariants().ledger().originated - originated_before;
    sim.EndAckBurst();
    out.deferred = client->stats().acks_batch_deferred;

    // Drain: the stale real ACKs still in the pipe, the remainder of the
    // transfer, and any recovery they trigger must play out identically.
    sim.RunUntil(sim.Now() + 500 * kMillisecond);
    out.server_received = server_received;
    out.client_acked_final = client->StreamAcked();
    out.violations = sim.invariants().violations();
    client->set_probe(nullptr);
  }
  TcpSocket::SetBatchedAckMode(true);
  return out;
}

void ExpectScenariosIdentical(const ScenarioResult& batched,
                              const ScenarioResult& reference) {
  ASSERT_EQ(batched.trace.size(), reference.trace.size());
  for (std::size_t i = 0; i < batched.trace.size(); ++i) {
    const StateSample& x = batched.trace[i];
    const StateSample& y = reference.trace[i];
    EXPECT_TRUE(x == y) << "trace diverged at injected ACK " << i
                        << ": acked " << x.acked << "/" << y.acked
                        << " cwnd " << x.cwnd << "/" << y.cwnd
                        << " ssthresh " << x.ssthresh << "/" << y.ssthresh
                        << " alpha " << x.alpha << "/" << y.alpha
                        << " rto " << x.rto << "/" << y.rto
                        << " segs " << x.segments_sent << "/"
                        << y.segments_sent;
  }
  EXPECT_EQ(batched.server_received, reference.server_received);
  EXPECT_EQ(batched.client_acked_final, reference.client_acked_final);
  EXPECT_EQ(batched.violations, 0u);
  EXPECT_EQ(reference.violations, 0u);
}

TEST(AckBatchDifferential, CleanBurstMatchesPerAckOracle) {
  // Strictly advancing one-segment steps: the pure fast path.
  AckPattern pattern;
  for (int i = 1; i <= 8; ++i) pattern.push_back(i * kMss);
  const ScenarioResult batched = RunScenario(true, false, pattern);
  const ScenarioResult reference = RunScenario(false, false, pattern);
  ExpectScenariosIdentical(batched, reference);
  // Every injected ACK advances the window cleanly, so all of them must
  // have taken the deferred path — and none in the reference run.
  EXPECT_EQ(batched.deferred, pattern.size());
  EXPECT_EQ(reference.deferred, 0u);
}

TEST(AckBatchDifferential, DeferredSegmentsEmitAtFlushNotPerAck) {
  AckPattern pattern;
  for (int i = 1; i <= 8; ++i) pattern.push_back(i * kMss);
  const ScenarioResult batched = RunScenario(true, false, pattern);
  const ScenarioResult reference = RunScenario(false, false, pattern);
  // The per-ACK oracle puts refill segments on the wire as each ACK is
  // processed; the batched run holds them until the flush. Observed via
  // the conservation ledger's originated count inside the burst window.
  EXPECT_GT(reference.originated_during_burst, 0u);
  EXPECT_EQ(batched.originated_during_burst, 0u);
  // Identical totals once flushed (already asserted sample-by-sample on
  // the post-drain aggregates).
  EXPECT_EQ(batched.server_received, reference.server_received);
}

TEST(AckBatchDifferential, StaleAndDuplicateAcksTakeReferencePathInBatch) {
  // fresh, duplicate(stale), fresh: the stale arrival inside the open
  // scope must flush the pending batch and run the full per-ACK chain
  // (dupack counting), then batching resumes on the next fresh ACK.
  const AckPattern pattern = {kMss, kMss, 2 * kMss};
  const ScenarioResult batched = RunScenario(true, false, pattern);
  const ScenarioResult reference = RunScenario(false, false, pattern);
  ExpectScenariosIdentical(batched, reference);
  EXPECT_EQ(batched.deferred, 2u);  // only the two fresh ACKs defer
}

TEST(AckBatchDifferential, RandomizedPatternsNewReno) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AckPattern pattern =
        MakePattern(seed, 0, 24 * kMss, kMss);
    const ScenarioResult batched = RunScenario(true, false, pattern);
    const ScenarioResult reference = RunScenario(false, false, pattern);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectScenariosIdentical(batched, reference);
    EXPECT_GT(batched.deferred, 0u);
    EXPECT_EQ(reference.deferred, 0u);
  }
}

TEST(AckBatchDifferential, RandomizedPatternsDctcp) {
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    const AckPattern pattern =
        MakePattern(seed, 0, 24 * kMss, kMss);
    const ScenarioResult batched = RunScenario(true, true, pattern);
    const ScenarioResult reference = RunScenario(false, true, pattern);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectScenariosIdentical(batched, reference);
    EXPECT_GT(batched.deferred, 0u);
  }
}

TEST(AckBatchDifferential, NestedBurstScopesFlushOnlyAtOutermostEnd) {
  AckPattern pattern;
  for (int i = 1; i <= 4; ++i) pattern.push_back(i * kMss);
  // Same scenario, but wrap the injection in an extra nesting level: the
  // inner EndAckBurst must not flush (depth stays positive).
  TcpSocket::SetBatchedAckMode(true);
  Simulator sim(1);
  sim.BeginAckBurst();
  sim.BeginAckBurst();
  EXPECT_TRUE(sim.InAckBurst());
  sim.EndAckBurst();
  EXPECT_TRUE(sim.InAckBurst());
  sim.EndAckBurst();
  EXPECT_FALSE(sim.InAckBurst());
}

/// End-to-end: the sharded incast drain opens burst scopes organically.
/// Batched and per-ACK runs of the same sharded workload must agree on
/// every aggregate.
TEST(AckBatchSharded, IncastBatchedMatchesPerAckOracle) {
  ThreadPool pool(3);
  IncastConfig config;
  config.protocol = Protocol::kDctcpPlus;
  config.num_flows = 96;
  config.num_workers = 9;
  config.per_flow_bytes = 8 * 1024;
  config.rounds = 3;
  config.min_rto = 10 * kMillisecond;
  config.seed = 7;
  config.shards = 4;
  config.shard_pool = &pool;
  TcpSocket::SetBatchedAckMode(true);
  const IncastResult batched = RunIncast(config);
  TcpSocket::SetBatchedAckMode(false);
  const IncastResult reference = RunIncast(config);
  TcpSocket::SetBatchedAckMode(true);
  EXPECT_EQ(batched.goodput_mbps, reference.goodput_mbps);
  EXPECT_EQ(batched.rounds_completed, reference.rounds_completed);
  EXPECT_EQ(batched.timeouts, reference.timeouts);
  EXPECT_EQ(batched.floss_timeouts, reference.floss_timeouts);
  EXPECT_EQ(batched.lack_timeouts, reference.lack_timeouts);
  EXPECT_EQ(batched.fast_retransmits, reference.fast_retransmits);
  EXPECT_EQ(batched.events, reference.events);
  EXPECT_EQ(batched.packets_forwarded, reference.packets_forwarded);
  EXPECT_EQ(batched.bottleneck_drops, reference.bottleneck_drops);
  EXPECT_EQ(batched.bottleneck_marks, reference.bottleneck_marks);
  EXPECT_EQ(batched.flow_fairness, reference.flow_fairness);
  EXPECT_EQ(batched.invariant_violations, 0u);
  EXPECT_EQ(reference.invariant_violations, 0u);
}

}  // namespace
}  // namespace dctcpp
