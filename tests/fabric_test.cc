// Fabric topology subsystem: plan arithmetic, built structure, compact
// routing (intervals + ECMP + dragonfly group routes), static all-pairs
// reachability by route walking, ECMP determinism across engines and
// pools, partitioner strategies, and channel pruning (both the win and
// the always-on violation detection for a wrong mask).
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dctcpp/net/fabric.h"
#include "dctcpp/net/parallel.h"
#include "dctcpp/net/partition.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/apps.h"
#include "dctcpp/workload/connection_matrix.h"

namespace dctcpp {
namespace {

// --- fingerprint (mirrors bench/fabric_scale.cc) ---------------------------

std::uint64_t Fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t FnvDouble(std::uint64_t h, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return Fnv(h, bits);
}

/// Deterministic surface of a fabric run. Excludes windows_run /
/// sync_rounds / cross_shard_* (scheduling detail, partition-dependent
/// by design) but includes every simulation-visible outcome.
std::uint64_t Fingerprint(const FabricRunResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = Fnv(h, static_cast<std::uint64_t>(r.flows_completed));
  h = Fnv(h, static_cast<std::uint64_t>(r.bytes_delivered));
  h = Fnv(h, r.fct_ms.count());
  for (double s : r.fct_ms.samples()) h = FnvDouble(h, s);
  h = FnvDouble(h, r.goodput_mbps);
  h = FnvDouble(h, r.sim_seconds);
  h = Fnv(h, r.events);
  h = Fnv(h, r.packets_forwarded);
  h = Fnv(h, r.invariant_violations);
  h = Fnv(h, r.packets_originated);
  h = Fnv(h, r.packets_dropped);
  h = Fnv(h, r.checksum_discards);
  return h;
}

// --- plan arithmetic -------------------------------------------------------

TEST(FatTreePlanTest, CanonicalK4Counts) {
  FatTreeFabric f(FatTreeConfig{});  // k = 4, hosts_per_edge = 2
  EXPECT_EQ(f.num_hosts(), 16);
  EXPECT_EQ(f.num_switches(), 20);  // 8 edge + 8 agg + 4 core
  EXPECT_EQ(f.num_pods(), 4);
  EXPECT_EQ(f.hosts_per_pod(), 4);
  // Hosts pod-major, switches per pod then cores.
  EXPECT_EQ(f.HostPlanId(0, 0, 0), 0);
  EXPECT_EQ(f.HostPlanId(3, 1, 1), 15);
  EXPECT_EQ(f.EdgePlanId(0, 0), 16);
  EXPECT_EQ(f.AggPlanId(0, 0), 18);
  EXPECT_EQ(f.CorePlanId(0), 32);
  EXPECT_EQ(f.pod_of(0), 0);
  EXPECT_EQ(f.pod_of(15), 3);
  EXPECT_EQ(f.pod_of(f.EdgePlanId(2, 1)), 2);
  EXPECT_EQ(f.pod_of(f.CorePlanId(3)), -1);  // cores are pod-less
  EXPECT_EQ(f.EdgeOfHost(5), f.EdgePlanId(1, 0));
}

TEST(FatTreePlanTest, OversubscribedEdgeScalesHostCount) {
  FatTreeConfig cfg;
  cfg.k = 8;
  cfg.hosts_per_edge = 10;
  FatTreeFabric f(cfg);
  EXPECT_EQ(f.num_hosts(), 8 * 4 * 10);
  EXPECT_EQ(f.num_switches(), 64 + 16);
}

TEST(DragonflyPlanTest, MaximalConfigCounts) {
  DragonflyConfig cfg;
  cfg.routers_per_group = 2;
  cfg.hosts_per_router = 2;
  cfg.global_links_per_router = 1;
  DragonflyFabric f(cfg);  // g = a*h + 1 = 3
  EXPECT_EQ(f.groups(), 3);
  EXPECT_EQ(f.num_hosts(), 12);
  EXPECT_EQ(f.num_switches(), 6);
  EXPECT_EQ(f.pod_of(5), 1);
  EXPECT_EQ(f.pod_of(f.RouterPlanId(2, 1)), 2);
  // Canonical slotting: every (from, to) gateway slot is a valid router
  // and the global-link endpoints agree pairwise.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_GE(f.GatewayRouter(a, b), 0);
      EXPECT_LT(f.GatewayRouter(a, b), 2);
    }
  }
}

// --- built structure and static reachability -------------------------------

/// Follows RoutePacket hop by hop from src's first switch; returns the
/// number of switch hops, or -1 if the walk failed to reach dst.
int WalkRoute(Fabric& fabric, int first_switch_plan, const Packet& pkt,
              int max_hops) {
  PacketSink* at = &fabric.switch_at(first_switch_plan -
                                     fabric.num_hosts());
  for (int hops = 1; hops <= max_hops; ++hops) {
    auto* sw = dynamic_cast<Switch*>(at);
    if (sw == nullptr) return -1;  // landed on a host early
    // Valiant tagging happens in Deliver, not RoutePacket; emulate it.
    Packet p = pkt;
    const int out = sw->RoutePacket(p);
    if (out < 0) return -1;
    at = &sw->port(out).peer();
    if (at == &fabric.host(p.dst)) return hops;
  }
  return -1;
}

Packet MakeFlowPacket(NodeId src, NodeId dst, PortNum sport, PortNum dport) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.tcp.src_port = sport;
  pkt.tcp.dst_port = dport;
  return pkt;
}

TEST(FatTreeBuildTest, StructureAndAllPairsReachability) {
  FatTreeFabric fabric(FatTreeConfig{});
  Simulator sim(1);
  Network net(sim);
  fabric.Build(net, {});
  ASSERT_EQ(net.HostCount(), 16u);
  ASSERT_EQ(net.SwitchCount(), 20u);

  const int k = fabric.k();
  int edge_agg_ports = 0;
  int core_ports = 0;
  for (int s = 0; s < fabric.num_switches(); ++s) {
    Switch& sw = fabric.switch_at(s);
    const int plan = fabric.num_hosts() + s;
    if (plan >= fabric.CorePlanId(0)) {
      EXPECT_EQ(sw.PortCount(), k);  // one port per pod
      core_ports += sw.PortCount();
    } else {
      edge_agg_ports += sw.PortCount();
    }
  }
  // Bisection structure: (k/2)^2 cores x k ports = k^3/4 core-agg link
  // endpoints — the full-bisection core tier of the k-ary fat-tree.
  EXPECT_EQ(core_ports, k * k * k / 4);
  // Edge+agg: edges have hpe host + k/2 up; aggs k/2 down + k/2 up.
  EXPECT_EQ(edge_agg_ports, k * (k / 2) * (2 + k / 2) + k * (k / 2) * k);

  // Every ordered host pair is reachable in <= 5 switch hops
  // (edge-agg-core-agg-edge), for several flow port choices.
  for (int src = 0; src < fabric.num_hosts(); ++src) {
    for (int dst = 0; dst < fabric.num_hosts(); ++dst) {
      if (src == dst) continue;
      for (PortNum sport : {PortNum{10000}, PortNum{10007}}) {
        const Packet pkt = MakeFlowPacket(src, dst, sport, 7000);
        EXPECT_GT(WalkRoute(fabric, fabric.EdgeOfHost(src), pkt, 5), 0)
            << src << " -> " << dst;
      }
    }
  }
}

TEST(FatTreeBuildTest, EcmpIsDeterministicAndSpreads) {
  // Two independently built fabrics (fresh Network/Simulator) must make
  // identical per-flow choices: the hash depends only on stable ids.
  FatTreeConfig cfg;
  cfg.k = 8;
  FatTreeFabric fa(cfg);
  FatTreeFabric fb(cfg);
  Simulator sa(1), sb(2);  // different seeds: routing must not care
  Network na(sa), nb(sb);
  fa.Build(na, {});
  fb.Build(nb, {});

  std::set<int> ports_used;
  for (int flow = 0; flow < 64; ++flow) {
    const Packet pkt = MakeFlowPacket(
        0, fa.num_hosts() - 1, static_cast<PortNum>(10000 + flow), 7000);
    Switch& ea = fa.switch_at(fa.EdgeOfHost(0) - fa.num_hosts());
    Switch& eb = fb.switch_at(fb.EdgeOfHost(0) - fb.num_hosts());
    const int pa = ea.RoutePacket(pkt);
    EXPECT_EQ(pa, eb.RoutePacket(pkt));
    EXPECT_EQ(pa, ea.RoutePacket(pkt));  // repeated call: same member
    ports_used.insert(pa);
  }
  // 64 flows over k/2 = 4 uplinks: all members should be exercised.
  EXPECT_EQ(ports_used.size(), 4u);
}

TEST(DragonflyBuildTest, StructureAndAllPairsReachability) {
  DragonflyConfig cfg;
  cfg.routers_per_group = 2;
  cfg.hosts_per_router = 2;
  cfg.global_links_per_router = 1;
  DragonflyFabric fabric(cfg);  // g = 3
  Simulator sim(1);
  Network net(sim);
  fabric.Build(net, {});
  for (int r = 0; r < fabric.num_switches(); ++r) {
    // p hosts + (a-1) local + h global = 2 + 1 + 1.
    EXPECT_EQ(fabric.switch_at(r).PortCount(), 4);
  }
  // Minimal routing: local-global-local worst case = 4 router hops.
  for (int src = 0; src < fabric.num_hosts(); ++src) {
    for (int dst = 0; dst < fabric.num_hosts(); ++dst) {
      if (src == dst) continue;
      const Packet pkt = MakeFlowPacket(src, dst, 10001, 7000);
      EXPECT_GT(WalkRoute(fabric, fabric.RouterOfHost(src), pkt, 4), 0)
          << src << " -> " << dst;
    }
  }
}

TEST(DragonflyBuildTest, ValiantDetourReachesEveryPair) {
  DragonflyConfig cfg;
  cfg.routers_per_group = 4;
  cfg.hosts_per_router = 1;
  cfg.global_links_per_router = 2;
  cfg.valiant = true;
  DragonflyFabric fabric(cfg);  // g = 9, 36 hosts
  Simulator sim(1);
  Network net(sim);
  fabric.Build(net, {});
  // Walk with every possible intermediate-group tag: the detour phase
  // must still terminate at dst within local-global-local twice + slack.
  for (int src = 0; src < fabric.num_hosts(); src += 5) {
    for (int dst = 0; dst < fabric.num_hosts(); dst += 3) {
      if (src == dst) continue;
      for (std::int16_t tag = 0; tag < 9; ++tag) {
        Packet pkt = MakeFlowPacket(src, dst, 10002, 7000);
        pkt.valiant_group = tag;
        EXPECT_GT(WalkRoute(fabric, fabric.RouterOfHost(src), pkt, 8), 0)
            << src << " -> " << dst << " via " << tag;
      }
    }
  }
}

// --- partitioner -----------------------------------------------------------

TEST(PartitionerTest, PodStrategyKeepsPodsWholeAndBalanced) {
  FatTreeConfig cfg;
  cfg.k = 8;
  FatTreeFabric fabric(cfg);
  for (int shards : {2, 4, 8}) {
    const auto shard_of = ShardPartitioner::Assign(
        fabric, shards, PartitionStrategy::kPod, {}, 1);
    std::vector<int> pod_shard(static_cast<std::size_t>(fabric.num_pods()),
                               -1);
    std::vector<int> hosts_per_shard(static_cast<std::size_t>(shards), 0);
    for (int n = 0; n < fabric.num_nodes(); ++n) {
      ASSERT_GE(shard_of[static_cast<std::size_t>(n)], 0);
      ASSERT_LT(shard_of[static_cast<std::size_t>(n)], shards);
      const int pod = fabric.pod_of(n);
      if (pod < 0) continue;
      int& ps = pod_shard[static_cast<std::size_t>(pod)];
      if (ps < 0) ps = shard_of[static_cast<std::size_t>(n)];
      EXPECT_EQ(ps, shard_of[static_cast<std::size_t>(n)]);
      if (n < fabric.num_hosts()) {
        ++hosts_per_shard[static_cast<std::size_t>(
            shard_of[static_cast<std::size_t>(n)])];
      }
    }
    const int expect = fabric.num_hosts() / shards;
    for (int s = 0; s < shards; ++s) {
      EXPECT_EQ(hosts_per_shard[static_cast<std::size_t>(s)], expect);
    }
  }
}

TEST(PartitionerTest, RandomStrategySplitsPods) {
  FatTreeFabric fabric(FatTreeConfig{});
  const auto shard_of = ShardPartitioner::Assign(
      fabric, 4, PartitionStrategy::kRandom, {}, 42);
  // At least one pod's hosts land on more than one shard (that is the
  // point of the baseline), and the assignment is seed-deterministic.
  bool split = false;
  for (int p = 0; p < fabric.num_pods() && !split; ++p) {
    const int first = shard_of[static_cast<std::size_t>(
        fabric.HostPlanId(p, 0, 0))];
    for (int e = 0; e < fabric.k() / 2; ++e) {
      for (int s = 0; s < fabric.hosts_per_edge(); ++s) {
        if (shard_of[static_cast<std::size_t>(fabric.HostPlanId(p, e, s))] !=
            first) {
          split = true;
        }
      }
    }
  }
  EXPECT_TRUE(split);
  EXPECT_EQ(shard_of, ShardPartitioner::Assign(
                          fabric, 4, PartitionStrategy::kRandom, {}, 42));
}

TEST(PartitionerTest, MinCutGroupsCoupledPods) {
  // Demand couples pods (0, 2) and (1, 3): the contiguous kPod blocks
  // {0,1} | {2,3} cut everything, the greedy min-cut must cut nothing.
  FatTreeFabric fabric(FatTreeConfig{});  // k = 4: pods 0..3
  std::vector<FlowDemand> demand;
  const int hpp = fabric.hosts_per_pod();
  demand.push_back({0 * hpp, 2 * hpp, 100.0});
  demand.push_back({2 * hpp + 1, 0 * hpp + 1, 100.0});
  demand.push_back({1 * hpp, 3 * hpp, 100.0});
  demand.push_back({3 * hpp + 1, 1 * hpp + 1, 100.0});
  const auto pods = ShardPartitioner::MinCutPods(fabric, 2, demand);
  EXPECT_EQ(pods[0], pods[2]);
  EXPECT_EQ(pods[1], pods[3]);
  EXPECT_NE(pods[0], pods[1]);
}

TEST(PartitionerTest, MinCutWithoutDemandIsBalanced) {
  FatTreeConfig cfg;
  cfg.k = 8;
  FatTreeFabric fabric(cfg);
  const auto pods = ShardPartitioner::MinCutPods(fabric, 4, {});
  std::vector<int> load(4, 0);
  for (int p = 0; p < fabric.num_pods(); ++p) {
    ++load[static_cast<std::size_t>(pods[static_cast<std::size_t>(p)])];
  }
  for (int s = 0; s < 4; ++s) EXPECT_EQ(load[static_cast<std::size_t>(s)], 2);
}

// --- workload determinism across shards, pools, strategies, modes ----------

FabricRunConfig SmallFatTreeConfig(TrafficPattern pattern) {
  FabricRunConfig config;
  config.topo = FabricRunConfig::Topo::kFatTree;
  config.fat_tree.k = 4;
  config.pattern = pattern;
  config.bytes_per_flow = 12 * kKiB;
  config.row_size = 4;  // = hosts_per_pod at k = 4: rows align with pods
  config.fan_in = 2;
  config.seed = 7;
  return config;
}

TEST(FabricWorkloadTest, BitIdenticalAcrossShardsStrategiesAndPools) {
  const FabricRunConfig base = SmallFatTreeConfig(TrafficPattern::kPermutation);
  std::uint64_t expected = 0;
  bool have_expected = false;
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kRandom, PartitionStrategy::kPod,
        PartitionStrategy::kMinCut}) {
    for (const int shards : {1, 2, 4, 8}) {
      FabricRunConfig config = base;
      config.shards = shards;
      config.strategy = strategy;
      const FabricRunResult r = RunFabricWorkload(config);
      EXPECT_EQ(r.invariant_violations, 0u) << ToString(strategy) << shards;
      EXPECT_EQ(r.flows_completed, r.flows);
      if (!have_expected) {
        expected = Fingerprint(r);
        have_expected = true;
      }
      EXPECT_EQ(Fingerprint(r), expected)
          << ToString(strategy) << " S=" << shards;
    }
  }
  // Pool sizes 2 and 8, fixed-window oracle, and pruning off: same run.
  for (const int pool_size : {2, 8}) {
    ThreadPool pool(pool_size);
    FabricRunConfig config = base;
    config.shards = 4;
    config.shard_pool = &pool;
    const FabricRunResult r = RunFabricWorkload(config);
    EXPECT_EQ(Fingerprint(r), expected) << "pool=" << pool_size;
  }
  FabricRunConfig fixed = base;
  fixed.shards = 4;
  fixed.fixed_window_lookahead = true;
  EXPECT_EQ(Fingerprint(RunFabricWorkload(fixed)), expected);
  FabricRunConfig unpruned = base;
  unpruned.shards = 4;
  unpruned.prune_channels = false;
  EXPECT_EQ(Fingerprint(RunFabricWorkload(unpruned)), expected);
}

TEST(FabricWorkloadTest, DragonflyMinimalAndValiantDeterminism) {
  for (const bool valiant : {false, true}) {
    FabricRunConfig config;
    config.topo = FabricRunConfig::Topo::kDragonfly;
    config.dragonfly.routers_per_group = 2;
    config.dragonfly.hosts_per_router = 2;
    config.dragonfly.global_links_per_router = 1;  // g = 3, 12 hosts
    config.dragonfly.valiant = valiant;
    config.pattern = TrafficPattern::kAllToAll;
    config.bytes_per_flow = 4 * kKiB;
    std::uint64_t expected = 0;
    bool have_expected = false;
    for (const int shards : {1, 2, 4}) {
      FabricRunConfig c = config;
      c.shards = shards;
      const FabricRunResult r = RunFabricWorkload(c);
      EXPECT_EQ(r.invariant_violations, 0u);
      // All-to-all completing IS all-pairs reachability, live.
      EXPECT_EQ(r.flows_completed, 12 * 11);
      if (!have_expected) {
        expected = Fingerprint(r);
        have_expected = true;
      }
      EXPECT_EQ(Fingerprint(r), expected)
          << (valiant ? "valiant" : "minimal") << " S=" << shards;
    }
  }
}

// --- channel pruning -------------------------------------------------------

TEST(ChannelPruningTest, PodAlignedIncastRowsCrossNothing) {
  FabricRunConfig config = SmallFatTreeConfig(TrafficPattern::kIncastRows);
  config.shards = 4;
  config.strategy = PartitionStrategy::kPod;
  const FabricRunResult r = RunFabricWorkload(config);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_EQ(r.flows_completed, r.flows);
  EXPECT_TRUE(r.channels_pruned);
  // Rows align with pods and pods align with shards: every off-diagonal
  // shard pair is traffic-free and pruned, no handoff ever crosses.
  EXPECT_EQ(r.pruned_pairs, 4 * 4 - 4);
  EXPECT_EQ(r.cross_shard_handoffs, 0u);
}

TEST(ChannelPruningTest, WrongMaskIsDetectedNotSilent) {
  // Pod partition at S = 2 with a mask claiming NO pair carries traffic:
  // a cross-shard flow must trip the pruned-handoff violation counter.
  // The run's results are semantically damaged (late arrivals are clamped
  // to the destination's horizon instead of aborting), which is exactly
  // why the counters have to be loud.
  FatTreeFabric fabric(FatTreeConfig{});
  const auto shard_of = ShardPartitioner::Assign(
      fabric, 2, PartitionStrategy::kPod, {}, 1);
  ParallelSimulation psim(1, 2);
  Network net(psim);
  fabric.Build(net, shard_of);
  std::vector<std::uint8_t> allowed(4, 0);
  allowed[0] = allowed[3] = 1;  // diagonal only
  psim.RestrictChannels(std::move(allowed));

  TcpSocket::Config socket_config;
  auto cc_factory = [] {
    return MakeCongestionOps(Protocol::kDctcp, ProtocolOptions{});
  };
  // One flow from pod 0 (shard 0) to the last pod (shard 1).
  Host& dst = fabric.host(fabric.num_hosts() - 1);
  SinkServer sink(dst, 7000, cc_factory, socket_config);
  Host& src = fabric.host(0);
  BulkSender sender(src, cc_factory(), socket_config, dst.id(), 7000);
  src.sim().Schedule(0, [&] { sender.Start(8 * kKiB, true, nullptr); });
  psim.RunUntil(kSecond);
  EXPECT_GT(psim.pruned_channel_handoffs(), 0u);
  EXPECT_GT(psim.invariant_violations(), 0u);
  EXPECT_EQ(psim.first_violation(),
            "packet crossed a channel pruned by RestrictChannels");
}

}  // namespace
}  // namespace dctcpp
