// Sweep-harness determinism: the merged statistics of a sweep point must
// be bit-identical regardless of how many worker threads computed the
// repetitions. The harness guarantees this by merging repetition results
// in job order (not completion order) — see RunIncastPoint.
#include <gtest/gtest.h>

#include <vector>

#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/experiment.h"

namespace dctcpp {
namespace {

IncastConfig TinyIncast(Protocol protocol, int flows) {
  IncastConfig config;
  config.protocol = protocol;
  config.num_flows = flows;
  config.rounds = 3;
  config.total_bytes = 128 * 1024;
  config.time_limit = 60 * kSecond;
  return config;
}

/// Every aggregate in an IncastSweepPoint, compared bitwise (EXPECT_EQ on
/// double is exact). The sketch and histogram are compared through their
/// full observable surface.
void ExpectPointsIdentical(const IncastSweepPoint& a,
                           const IncastSweepPoint& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.num_flows, b.num_flows);

  EXPECT_EQ(a.goodput_mbps.count(), b.goodput_mbps.count());
  EXPECT_EQ(a.goodput_mbps.mean(), b.goodput_mbps.mean());
  EXPECT_EQ(a.goodput_mbps.variance(), b.goodput_mbps.variance());
  EXPECT_EQ(a.goodput_mbps.min(), b.goodput_mbps.min());
  EXPECT_EQ(a.goodput_mbps.max(), b.goodput_mbps.max());
  EXPECT_EQ(a.goodput_mbps.sum(), b.goodput_mbps.sum());

  EXPECT_EQ(a.fct_ms.count(), b.fct_ms.count());
  EXPECT_EQ(a.fct_ms.Mean(), b.fct_ms.Mean());
  EXPECT_EQ(a.fct_ms.Min(), b.fct_ms.Min());
  EXPECT_EQ(a.fct_ms.Max(), b.fct_ms.Max());
  for (double q : {0.25, 0.5, 0.95, 0.99}) {
    EXPECT_EQ(a.fct_ms.Quantile(q), b.fct_ms.Quantile(q)) << "q=" << q;
  }

  EXPECT_EQ(a.cwnd_hist.total(), b.cwnd_hist.total());
  EXPECT_EQ(a.cwnd_hist.underflow(), b.cwnd_hist.underflow());
  EXPECT_EQ(a.cwnd_hist.overflow(), b.cwnd_hist.overflow());
  for (std::int64_t v = a.cwnd_hist.lo(); v <= a.cwnd_hist.hi(); ++v) {
    EXPECT_EQ(a.cwnd_hist.CountAt(v), b.cwnd_hist.CountAt(v)) << "cwnd " << v;
  }

  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.floss_timeouts, b.floss_timeouts);
  EXPECT_EQ(a.lack_timeouts, b.lack_timeouts);
  EXPECT_EQ(a.tracked_rounds_at_min_ece, b.tracked_rounds_at_min_ece);
  EXPECT_EQ(a.tracked_rounds_with_timeout, b.tracked_rounds_with_timeout);
  EXPECT_EQ(a.tracked_floss, b.tracked_floss);
  EXPECT_EQ(a.tracked_lack, b.tracked_lack);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.packets_forwarded, b.packets_forwarded);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.packets_originated, b.packets_originated);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_duplicated, b.packets_duplicated);
  EXPECT_EQ(a.checksum_discards, b.checksum_discards);
  EXPECT_EQ(a.hit_time_limit, b.hit_time_limit);
}

TEST(ExperimentTest, SweepDeterminismAcrossPoolSizes) {
  const IncastConfig config = TinyIncast(Protocol::kDctcp, 8);
  constexpr int kReps = 5;  // more reps than threads in the middle case

  ThreadPool pool1(1);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  const IncastSweepPoint serial = RunIncastPoint(config, kReps, pool1);
  const IncastSweepPoint two = RunIncastPoint(config, kReps, pool2);
  const IncastSweepPoint eight = RunIncastPoint(config, kReps, pool8);

  ASSERT_EQ(serial.goodput_mbps.count(), static_cast<std::size_t>(kReps));
  ExpectPointsIdentical(serial, two);
  ExpectPointsIdentical(serial, eight);
}

TEST(ExperimentTest, FullSweepDeterministicAcrossPoolSizes) {
  const IncastConfig base = TinyIncast(Protocol::kDctcp, 0);
  const std::vector<Protocol> protocols = {Protocol::kDctcp,
                                           Protocol::kDctcpPlus};
  const std::vector<int> flows = {4, 8};

  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto serial = RunIncastSweep(base, protocols, flows, 2, pool1);
  const auto wide = RunIncastSweep(base, protocols, flows, 2, pool8);

  ASSERT_EQ(serial.size(), wide.size());
  ASSERT_EQ(serial.size(), 4u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectPointsIdentical(serial[i], wide[i]);
  }
}

TEST(ExperimentTest, ImpairedSweepDeterministicAcrossPoolSizes) {
  // The full fault pipeline active at once: per-link RNG streams must keep
  // an impaired sweep bit-identical (including exact event and packet
  // counts) for any thread-pool size.
  IncastConfig config = TinyIncast(Protocol::kDctcp, 8);
  config.min_rto = 10 * kMillisecond;
  config.link.random_loss = 0.002;
  config.link.impairment.ge_p_good_to_bad = 0.001;
  config.link.impairment.ge_p_bad_to_good = 0.3;
  config.link.impairment.reorder_prob = 0.01;
  config.link.impairment.duplicate_prob = 0.005;
  config.link.impairment.corrupt_prob = 0.002;
  constexpr int kReps = 5;

  ThreadPool pool1(1);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  const IncastSweepPoint serial = RunIncastPoint(config, kReps, pool1);
  const IncastSweepPoint two = RunIncastPoint(config, kReps, pool2);
  const IncastSweepPoint eight = RunIncastPoint(config, kReps, pool8);

  ASSERT_EQ(serial.goodput_mbps.count(), static_cast<std::size_t>(kReps));
  EXPECT_EQ(serial.invariant_violations, 0u);
  EXPECT_GT(serial.packets_dropped, 0u);       // impairment actually bit
  EXPECT_GT(serial.checksum_discards, 0u);
  ExpectPointsIdentical(serial, two);
  ExpectPointsIdentical(serial, eight);
}

TEST(ExperimentTest, RepeatedRunsBitIdentical) {
  // Same pool size twice: the whole pipeline (simulation + merge) is a
  // pure function of the config.
  const IncastConfig config = TinyIncast(Protocol::kDctcpPlus, 6);
  ThreadPool pool(4);
  const IncastSweepPoint a = RunIncastPoint(config, 3, pool);
  const IncastSweepPoint b = RunIncastPoint(config, 3, pool);
  ExpectPointsIdentical(a, b);
}

}  // namespace
}  // namespace dctcpp
