// Cross-product reliability property: for every protocol x transfer size
// x bottleneck depth, a transfer over the two-tier fabric delivers
// exactly its bytes, in order, with conservation between sender and
// receiver counters. This is the stack's end-to-end safety net.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {
namespace {

using namespace time_literals;

struct TransferCase {
  Protocol protocol;
  Bytes size;
  Bytes buffer;  ///< bottleneck buffer (depth controls loss pressure)
};

std::string CaseName(const ::testing::TestParamInfo<TransferCase>& info) {
  std::string name = ToString(info.param.protocol);
  for (char& c : name) {
    if (c == '+') c = 'P';
  }
  return name + "_s" + std::to_string(info.param.size) + "_b" +
         std::to_string(info.param.buffer / 1514);
}

class TransferProperty : public ::testing::TestWithParam<TransferCase> {};

TEST_P(TransferProperty, ExactInOrderDelivery) {
  const TransferCase param = GetParam();
  Simulator sim(11);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig fast;
  fast.rate = DataRate::GigabitsPerSec(10);
  net.ConnectHost(a, sw, fast);
  LinkConfig to_b;
  to_b.buffer_bytes = param.buffer;
  net.ConnectHost(b, sw, to_b, Network::NicConfig(LinkConfig{}));
  net.InstallRoutes();

  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;

  Bytes received = 0;
  Bytes deliveries = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      b, 5000, [&param] { return MakeCongestionOps(param.protocol); },
      socket_config, [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) {
          ASSERT_GT(n, 0);  // in-order deliveries are always positive
          received += n;
          ++deliveries;
        });
      });
  TcpSocket client(a, MakeCongestionOps(param.protocol), socket_config);
  client.set_on_connected([&] { client.Send(param.size); });
  client.Connect(b.id(), 5000);
  sim.RunUntil(120 * kSecond);

  // Exactly the requested bytes arrive — never fewer, never duplicated
  // into the app — and the sender's view agrees.
  EXPECT_EQ(received, param.size);
  EXPECT_EQ(client.StreamAcked(), param.size);
  EXPECT_EQ(client.FlightSize(), 0);
  EXPECT_EQ(server->StreamReceived(), param.size);
  EXPECT_GT(deliveries, 0);
  // cwnd never left the legal range.
  EXPECT_GE(client.cwnd(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TransferProperty,
    ::testing::Values(
        // Clean deep buffer: no loss path.
        TransferCase{Protocol::kTcp, 1, 128 * kKiB},
        TransferCase{Protocol::kTcp, 1 * kMiB, 128 * kKiB},
        TransferCase{Protocol::kDctcp, 1459, 128 * kKiB},
        TransferCase{Protocol::kDctcp, 1460, 128 * kKiB},
        TransferCase{Protocol::kDctcp, 1461, 128 * kKiB},
        TransferCase{Protocol::kDctcp, 4 * kMiB, 128 * kKiB},
        TransferCase{Protocol::kDctcpPlus, 1 * kMiB, 128 * kKiB},
        TransferCase{Protocol::kD2tcp, 1 * kMiB, 128 * kKiB},
        TransferCase{Protocol::kTcpPlus, 1 * kMiB, 128 * kKiB},
        TransferCase{Protocol::kDctcpPlusPartial, 512 * 1024, 128 * kKiB},
        // Shallow buffers: heavy congestive loss.
        TransferCase{Protocol::kTcp, 1 * kMiB, 4 * 1514},
        TransferCase{Protocol::kDctcp, 1 * kMiB, 4 * 1514},
        TransferCase{Protocol::kDctcpPlus, 512 * 1024, 4 * 1514},
        TransferCase{Protocol::kTcpPlus, 512 * 1024, 4 * 1514},
        TransferCase{Protocol::kD2tcpPlus, 512 * 1024, 4 * 1514},
        // Pathological 2-packet buffer.
        TransferCase{Protocol::kTcp, 256 * 1024, 2 * 1514},
        TransferCase{Protocol::kDctcp, 256 * 1024, 2 * 1514}),
    CaseName);

}  // namespace
}  // namespace dctcpp
