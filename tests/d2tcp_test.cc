// D2TCP and D2TCP+: the deadline gate's imminence math, factory wiring,
// and the deadline-incast workload end to end.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/core/d2tcp.h"
#include "dctcpp/core/protocol.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/workload/deadline_incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

TEST(D2tcpUnitTest, NamesAndFactory) {
  EXPECT_EQ(ParseProtocol("d2tcp"), Protocol::kD2tcp);
  EXPECT_EQ(ParseProtocol("d2tcp+"), Protocol::kD2tcpPlus);
  auto d2 = MakeCongestionOps(Protocol::kD2tcp);
  auto d2p = MakeCongestionOps(Protocol::kD2tcpPlus);
  EXPECT_STREQ(d2->Name(), "d2tcp");
  EXPECT_STREQ(d2p->Name(), "d2tcp+");
  EXPECT_TRUE(d2->EcnCapable());
  EXPECT_EQ(d2->MinCwnd(), 2);   // DCTCP's floor
  EXPECT_EQ(d2p->MinCwnd(), 1);  // the + variants' floor
}

/// Fixture giving a connected socket so imminence math has real state.
class DeadlineGateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net.reset();  // ports hold pinned scheduler events: drop before the sim
    sim = std::make_unique<Simulator>(1);
    net = std::make_unique<Network>(*sim);
    topo = TwoTierTopology::Build(*net, 2, LinkConfig{});
    listener = std::make_unique<TcpListener>(
        *topo.aggregator, PortNum{5000},
        [] { return std::make_unique<D2tcpCc>(); }, TcpSocket::Config{},
        [this](TcpSocket::Ptr s) { server = std::move(s); });
    client = TcpSocket::Create(
        *topo.workers[0], std::make_unique<D2tcpCc>(), TcpSocket::Config{});
    client->Connect(topo.aggregator->id(), 5000);
    sim->RunUntil(100_ms);
    ASSERT_TRUE(client->Established());
    // Seed an srtt and some queued data.
    client->Send(100 * 1460);
    sim->RunUntil(sim->Now() + 5_ms);
  }

  D2tcpCc& cc() { return static_cast<D2tcpCc&>(client->cc()); }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  TwoTierTopology topo;
  std::unique_ptr<TcpListener> listener;
  TcpSocket::Ptr client;
  TcpSocket::Ptr server;
};

TEST_F(DeadlineGateFixture, NoDeadlineMeansUnitImminence) {
  EXPECT_DOUBLE_EQ(cc().gate().Imminence(*client), 1.0);
  EXPECT_DOUBLE_EQ(cc().gate().Penalty(0.5, *client), 0.5);
}

TEST_F(DeadlineGateFixture, TightDeadlineRaisesImminence) {
  client->Send(1000 * 1460);  // plenty left to send
  cc().gate().SetDeadline(sim->Now() + 1_ms);  // nearly due
  EXPECT_GT(cc().gate().Imminence(*client), 1.0);
  // Near-deadline: penalty below alpha -> smaller backoff.
  EXPECT_LT(cc().gate().Penalty(0.5, *client), 0.5);
}

TEST_F(DeadlineGateFixture, LooseDeadlineLowersImminence) {
  client->Send(1000 * 1460);  // outstanding data for the estimate
  cc().gate().SetDeadline(sim->Now() + 60 * kSecond);
  EXPECT_LT(cc().gate().Imminence(*client), 1.0);
  // Far-deadline: penalty above alpha -> larger backoff.
  EXPECT_GT(cc().gate().Penalty(0.5, *client), 0.5);
}

TEST_F(DeadlineGateFixture, ImminenceClampedToConfiguredRange) {
  client->Send(100000 * 1460);
  cc().gate().SetDeadline(sim->Now() + 1);  // essentially already due
  EXPECT_DOUBLE_EQ(cc().gate().Imminence(*client), 2.0);
  cc().gate().SetDeadline(sim->Now() + 3600 * kSecond);
  EXPECT_DOUBLE_EQ(cc().gate().Imminence(*client), 0.5);
}

TEST_F(DeadlineGateFixture, PastDeadlineIsMaximalUrgency) {
  client->Send(1000 * 1460);
  cc().gate().SetDeadline(1);  // long past
  EXPECT_DOUBLE_EQ(cc().gate().Imminence(*client), 2.0);
}

TEST_F(DeadlineGateFixture, SetFlowDeadlineDispatchesByType) {
  EXPECT_TRUE(SetFlowDeadline(*client, sim->Now() + 1_ms));
  EXPECT_EQ(cc().gate().deadline(), sim->Now() + 1_ms);
  // A non-deadline-aware socket reports false and is unaffected.
  TcpSocket plain(*topo.workers[1], MakeCongestionOps(Protocol::kDctcp),
                  TcpSocket::Config{});
  EXPECT_FALSE(SetFlowDeadline(plain, sim->Now() + 1_ms));
}

TEST(DeadlineIncastTest, RunsAndCountsDeadlines) {
  DeadlineIncastConfig config;
  config.protocol = Protocol::kD2tcp;
  config.num_flows = 10;
  config.rounds = 5;
  config.per_flow_bytes = 10 * 1024;
  config.deadline = 50_ms;
  config.time_limit = 60 * kSecond;
  const DeadlineIncastResult r = RunDeadlineIncast(config);
  EXPECT_EQ(r.rounds_completed, 5u);
  EXPECT_EQ(r.responses, 50u);
  EXPECT_GT(r.deadlines_met, 0u);
  EXPECT_GE(r.MissFraction(), 0.0);
  EXPECT_LE(r.MissFraction(), 1.0);
  EXPECT_EQ(r.fct_ms.count(), 50u);
}

TEST(DeadlineIncastTest, AllProtocolsComplete) {
  for (Protocol p : {Protocol::kDctcp, Protocol::kD2tcp,
                     Protocol::kDctcpPlus, Protocol::kD2tcpPlus}) {
    DeadlineIncastConfig config;
    config.protocol = p;
    config.num_flows = 8;
    config.rounds = 3;
    config.per_flow_bytes = 8 * 1024;
    config.time_limit = 60 * kSecond;
    const DeadlineIncastResult r = RunDeadlineIncast(config);
    EXPECT_EQ(r.rounds_completed, 3u) << ToString(p);
  }
}

TEST(DeadlineIncastTest, EasyDeadlinesAllMet) {
  DeadlineIncastConfig config;
  config.protocol = Protocol::kD2tcp;
  config.num_flows = 6;
  config.rounds = 5;
  config.per_flow_bytes = 4 * 1024;
  config.deadline = 1 * kSecond;  // trivially loose
  config.time_limit = 60 * kSecond;
  const DeadlineIncastResult r = RunDeadlineIncast(config);
  EXPECT_DOUBLE_EQ(r.MissFraction(), 0.0);
}

}  // namespace
}  // namespace dctcpp
