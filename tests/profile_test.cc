// Zero-overhead contract of the cycle-accounting profiler (util/profile.h).
//
// The default build (DCTCPP_PROFILE off) must compile every profiling
// construct to nothing: the stub Scope carries no state, Snapshot() is a
// constant, and the scope macro is a void expression usable in any
// context. These are asserted at compile time where possible so the
// contract cannot silently rot. When the profiler IS compiled in
// (-DDCTCPP_PROFILE=ON, the CI profile-smoke job), the same suite instead
// checks that scopes actually account cycles and hits.
#include <gtest/gtest.h>

#include <type_traits>

#include "dctcpp/util/profile.h"

namespace dctcpp {
namespace {

#if !DCTCPP_PROFILE
// Compile-time witnesses of the zero-overhead contract.
static_assert(!prof::kEnabled, "default build must not enable the profiler");
static_assert(std::is_empty_v<prof::Scope>,
              "profiler-off Scope must carry no state");
#endif

TEST(Profile, ScopeMacroIsUsableInAnyContext) {
  // Statement context; the macro must not declare anything that collides
  // when used twice in one block (line-number suffixed in the ON build).
  DCTCPP_PROFILE_SCOPE(kDemux);
  DCTCPP_PROFILE_SCOPE(kSocketAck);
  SUCCEED();
}

TEST(Profile, SnapshotIsZeroWhenDisabled) {
  if (prof::kEnabled) GTEST_SKIP() << "profiler compiled in";
  const prof::Counters c = prof::Snapshot();
  EXPECT_EQ(c.TotalCycles(), 0u);
  for (int p = 0; p < prof::kNumPhases; ++p) {
    EXPECT_EQ(c.cycles[p], 0u);
    EXPECT_EQ(c.hits[p], 0u);
  }
}

TEST(Profile, CountersAccountExclusiveTimeWhenEnabled) {
  if (!prof::kEnabled) GTEST_SKIP() << "default build: profiler stubbed out";
  prof::Reset();
  {
    DCTCPP_PROFILE_SCOPE(kDemux);
    {
      // Nested child: its cycles must charge to kSocketAck, not kDemux.
      DCTCPP_PROFILE_SCOPE(kSocketAck);
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  const prof::Counters c = prof::Snapshot();
  EXPECT_EQ(c.hits[prof::kDemux], 1u);
  EXPECT_EQ(c.hits[prof::kSocketAck], 1u);
  EXPECT_GT(c.cycles[prof::kSocketAck], 0u);
  // Exclusive accounting: the breakdown sums to the measured total.
  std::uint64_t sum = 0;
  for (int p = 0; p < prof::kNumPhases; ++p) sum += c.cycles[p];
  EXPECT_EQ(sum, c.TotalCycles());
}

TEST(Profile, PhaseNamesCoverEveryPhase) {
  for (int p = 0; p < prof::kNumPhases; ++p) {
    ASSERT_NE(prof::kPhaseNames[p], nullptr);
    EXPECT_GT(std::char_traits<char>::length(prof::kPhaseNames[p]), 0u);
  }
}

}  // namespace
}  // namespace dctcpp
