// Zero-overhead contract of the cycle-accounting profiler (util/profile.h).
//
// The default build (DCTCPP_PROFILE off) must compile every profiling
// construct to nothing: the stub Scope carries no state, Snapshot() is a
// constant, and the scope macro is a void expression usable in any
// context. These are asserted at compile time where possible so the
// contract cannot silently rot. When the profiler IS compiled in
// (-DDCTCPP_PROFILE=ON, the CI profile-smoke job), the same suite instead
// checks that scopes actually account cycles and hits.
#include <gtest/gtest.h>

#include <type_traits>

#include "dctcpp/util/profile.h"

namespace dctcpp {
namespace {

#if !DCTCPP_PROFILE
// Compile-time witnesses of the zero-overhead contract.
static_assert(!prof::kEnabled, "default build must not enable the profiler");
static_assert(std::is_empty_v<prof::Scope>,
              "profiler-off Scope must carry no state");
#endif

TEST(Profile, ScopeMacroIsUsableInAnyContext) {
  // Statement context; the macro must not declare anything that collides
  // when used twice in one block (line-number suffixed in the ON build).
  DCTCPP_PROFILE_SCOPE(kDemux);
  DCTCPP_PROFILE_SCOPE(kSocketAck);
  SUCCEED();
}

TEST(Profile, SnapshotIsZeroWhenDisabled) {
  if (prof::kEnabled) GTEST_SKIP() << "profiler compiled in";
  const prof::Counters c = prof::Snapshot();
  EXPECT_EQ(c.TotalCycles(), 0u);
  for (int p = 0; p < prof::kNumPhases; ++p) {
    EXPECT_EQ(c.cycles[p], 0u);
    EXPECT_EQ(c.hits[p], 0u);
  }
}

TEST(Profile, CountersAccountExclusiveTimeWhenEnabled) {
  if (!prof::kEnabled) GTEST_SKIP() << "default build: profiler stubbed out";
  prof::Reset();
  {
    DCTCPP_PROFILE_SCOPE(kDemux);
    {
      // Nested child: its cycles must charge to kSocketAck, not kDemux.
      DCTCPP_PROFILE_SCOPE(kSocketAck);
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  const prof::Counters c = prof::Snapshot();
  EXPECT_EQ(c.hits[prof::kDemux], 1u);
  EXPECT_EQ(c.hits[prof::kSocketAck], 1u);
  EXPECT_GT(c.cycles[prof::kSocketAck], 0u);
  // Exclusive accounting: the breakdown sums to the measured total.
  std::uint64_t sum = 0;
  for (int p = 0; p < prof::kNumPhases; ++p) sum += c.cycles[p];
  EXPECT_EQ(sum, c.TotalCycles());
}

TEST(Profile, PhaseNamesCoverEveryPhase) {
  for (int p = 0; p < prof::kNumPhases; ++p) {
    ASSERT_NE(prof::kPhaseNames[p], nullptr);
    EXPECT_GT(std::char_traits<char>::length(prof::kPhaseNames[p]), 0u);
  }
}

// --- hardware-counter layer -------------------------------------------------
// perf_event_open is a privilege, not a given (perf_event_paranoid,
// seccomp, VMs without a PMU), so the contract under test is graceful
// degradation: the API must answer consistently and never fail the caller,
// whatever the container allows.

TEST(ProfileHw, StatusIsAlwaysAReason) {
  const char* status = prof::HwStatus();
  ASSERT_NE(status, nullptr);
  EXPECT_GT(std::char_traits<char>::length(status), 0u);
  if (!prof::kEnabled) {
    EXPECT_STREQ(status, "profiling disabled at build time");
  }
}

TEST(ProfileHw, SnapshotConsistentWithAvailability) {
  prof::HwReset();
  const prof::HwSnapshotData snap = prof::HwSnapshot();
  EXPECT_EQ(snap.available, prof::HwAvailable());
  if (!snap.available) {
    // Unavailable must mean all-zero, per_phase off — callers print
    // "unavailable" and move on.
    EXPECT_FALSE(snap.per_phase);
    EXPECT_EQ(snap.total.cycles, 0u);
    EXPECT_EQ(snap.total.instructions, 0u);
    EXPECT_EQ(snap.total.cache_misses, 0u);
    EXPECT_EQ(snap.total.branch_misses, 0u);
  } else {
    // The counters ran across the Reset->Snapshot window, so the baseline
    // subtraction must yield sane (not underflowed) values.
    EXPECT_LT(snap.total.cycles, 1ull << 40);
    EXPECT_LT(snap.total.instructions, 1ull << 40);
  }
}

TEST(ProfileHw, CountersAdvanceWhenAvailable) {
  if (!prof::kEnabled) GTEST_SKIP() << "default build: profiler stubbed out";
  if (!prof::HwAvailable())
    GTEST_SKIP() << "perf_event_open: " << prof::HwStatus();
  prof::HwReset();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + static_cast<unsigned>(i);
  const prof::HwSnapshotData snap = prof::HwSnapshot();
  ASSERT_TRUE(snap.available);
  EXPECT_GT(snap.total.instructions, 100000u);
  EXPECT_GT(snap.total.cycles, 0u);
  if (snap.per_phase) {
    // Exclusive per-phase attribution mirrors the cycle accounting: the
    // phase rows must sum to no more than the run totals (the window
    // between the last transition and HwSnapshot closes into a phase, so
    // equality is the expectation, but rdpmc and read(2) are sampled at
    // slightly different instants).
    std::uint64_t phase_instr = 0;
    for (int p = 0; p < prof::kNumPhases; ++p) {
      phase_instr += snap.phase[p].instructions;
    }
    EXPECT_LE(phase_instr, snap.total.instructions + 1000000u);
  }
}

}  // namespace
}  // namespace dctcpp
