// Unit tests for the discrete-event engine: scheduler ordering, lazy
// cancellation, run-loop semantics, and the cancellable Timer.
#include <gtest/gtest.h>

#include <vector>

#include "dctcpp/sim/scheduler.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/sim/timer.h"

namespace dctcpp {
namespace {

using namespace time_literals;

// ---------------------------------------------------------------------------
// Scheduler

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(30, [&] { order.push_back(3); });
  sched.ScheduleAt(10, [&] { order.push_back(1); });
  sched.ScheduleAt(20, [&] { order.push_back(2); });
  while (!sched.Empty()) sched.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, FifoAmongEqualTimestamps) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  while (!sched.Empty()) sched.RunNext();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  const EventId id = sched.ScheduleAt(10, [&] { ran = true; });
  sched.Cancel(id);
  EXPECT_TRUE(sched.Empty());
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelIsIdempotentAndSafeOnFiredEvents) {
  Scheduler sched;
  const EventId id = sched.ScheduleAt(1, [] {});
  sched.RunNext();
  sched.Cancel(id);  // already fired: no-op
  sched.Cancel(id);
  sched.Cancel(EventId{});  // invalid id: no-op
  EXPECT_TRUE(sched.Empty());
}

TEST(SchedulerTest, PendingCountTracksLiveEvents) {
  Scheduler sched;
  const EventId a = sched.ScheduleAt(1, [] {});
  sched.ScheduleAt(2, [] {});
  EXPECT_EQ(sched.PendingCount(), 2u);
  sched.Cancel(a);
  EXPECT_EQ(sched.PendingCount(), 1u);
  sched.RunNext();
  EXPECT_EQ(sched.PendingCount(), 0u);
}

TEST(SchedulerTest, NextTimeSkipsCancelled) {
  Scheduler sched;
  const EventId a = sched.ScheduleAt(1, [] {});
  sched.ScheduleAt(5, [] {});
  sched.Cancel(a);
  EXPECT_EQ(sched.NextTime(), 5);
}

TEST(SchedulerTest, EventsScheduledDuringExecutionRun) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.ScheduleAt(depth, recurse);
  };
  sched.ScheduleAt(0, recurse);
  while (!sched.Empty()) sched.RunNext();
  EXPECT_EQ(depth, 5);
}

TEST(SchedulerTest, ExecutedCounter) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) sched.ScheduleAt(i, [] {});
  while (!sched.Empty()) sched.RunNext();
  EXPECT_EQ(sched.executed(), 7u);
}

// ---------------------------------------------------------------------------
// Simulator

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Tick> at;
  sim.Schedule(10, [&] { at.push_back(sim.Now()); });
  sim.Schedule(25, [&] { at.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(at, (std::vector<Tick>{10, 25}));
  EXPECT_EQ(sim.Now(), 25);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late = false;
  sim.Schedule(10, [] {});
  sim.Schedule(100, [&] { late = true; });
  sim.RunUntil(50);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.Now(), 50);  // clock parked at the deadline
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(SimulatorTest, StopEndsRunEarly) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(1, [&] {
    ++ran;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  sim.Run();  // resumes with the remaining event
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, RelativeScheduleUsesCurrentTime) {
  Simulator sim;
  Tick inner_fired = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(5, [&] { inner_fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fired, 15);
}

TEST(SimulatorTest, SeededRngIsDeterministicAcrossInstances) {
  Simulator a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.rng().Next(), b.rng().Next());
  }
}

TEST(SimulatorTest, RunReturnsExecutedCount) {
  Simulator sim;
  for (int i = 1; i <= 5; ++i) sim.Schedule(i, [] {});
  EXPECT_EQ(sim.Run(), 5u);
}

// ---------------------------------------------------------------------------
// Timer

TEST(TimerTest, FiresOnceAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.Schedule(100);
  EXPECT_TRUE(t.IsPending());
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.IsPending());
  EXPECT_EQ(sim.Now(), 100);
}

TEST(TimerTest, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.Schedule(100);
  t.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, RescheduleReplacesPending) {
  Simulator sim;
  std::vector<Tick> fires;
  Timer t(sim, [&] { fires.push_back(sim.Now()); });
  t.Schedule(100);
  t.Schedule(50);  // re-arm earlier
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{50}));
}

TEST(TimerTest, CanReArmFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer* self = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) self->Schedule(10);
  });
  self = &t;
  t.Schedule(10);
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), 30);
}

TEST(TimerTest, ExpiresAtReflectsArming) {
  Simulator sim;
  Timer t(sim, [] {});
  sim.Schedule(7, [&] { t.Schedule(13); });
  sim.Run();
  EXPECT_EQ(t.expires_at(), 20);
}

TEST(TimerTest, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.Schedule(10);
  }
  sim.Run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace dctcpp
