// Unit tests for the discrete-event engine: scheduler ordering, lazy
// cancellation, run-loop semantics, and the cancellable Timer. The
// scheduler suite is typed and runs against both backends (the production
// timer wheel and the reference binary heap), which share one determinism
// contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "dctcpp/sim/pinned_event.h"
#include "dctcpp/sim/scheduler.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/sim/timer.h"
#include "dctcpp/util/rng.h"

namespace dctcpp {
namespace {

using namespace time_literals;

// ---------------------------------------------------------------------------
// Scheduler (both backends)

template <typename S>
class SchedulerTest : public ::testing::Test {};

using SchedulerBackends =
    ::testing::Types<TimerWheelScheduler, HeapScheduler>;
TYPED_TEST_SUITE(SchedulerTest, SchedulerBackends);

TYPED_TEST(SchedulerTest, RunsInTimeOrder) {
  TypeParam sched;
  std::vector<int> order;
  sched.ScheduleAt(30, [&] { order.push_back(3); });
  sched.ScheduleAt(10, [&] { order.push_back(1); });
  sched.ScheduleAt(20, [&] { order.push_back(2); });
  while (!sched.Empty()) sched.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TYPED_TEST(SchedulerTest, FifoAmongEqualTimestamps) {
  TypeParam sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  while (!sched.Empty()) sched.RunNext();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TYPED_TEST(SchedulerTest, SameTickFifoPropertyUnderRandomArrival) {
  // Property: however the same-tick events are interleaved with events at
  // other ticks, and whatever order the ticks themselves arrive in,
  // execution at any tick follows scheduling order. Exercises the wheel
  // across cascade boundaries (ticks span several levels).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    TypeParam sched;
    constexpr int kEvents = 512;
    std::vector<std::pair<Tick, int>> scheduled;  // (tick, arrival rank)
    for (int i = 0; i < kEvents; ++i) {
      // A handful of distinct ticks spread over ~200 ms forces collisions.
      const Tick at = 25_us * rng.UniformInt(0, 15) +
                      200_ms * rng.UniformInt(0, 1);
      scheduled.emplace_back(at, i);
    }
    std::vector<std::pair<Tick, int>> fired;
    for (const auto& [at, rank] : scheduled) {
      sched.ScheduleAt(at, [&fired, at = at, rank = rank] {
        fired.emplace_back(at, rank);
      });
    }
    while (!sched.Empty()) sched.RunNext();
    // Expected order: stable sort of arrival order by tick.
    std::stable_sort(
        scheduled.begin(), scheduled.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    EXPECT_EQ(fired, scheduled) << "seed " << seed;
  }
}

TYPED_TEST(SchedulerTest, CancelPreventsExecution) {
  TypeParam sched;
  bool ran = false;
  const EventId id = sched.ScheduleAt(10, [&] { ran = true; });
  sched.Cancel(id);
  EXPECT_TRUE(sched.Empty());
  EXPECT_FALSE(ran);
}

TYPED_TEST(SchedulerTest, CancelIsIdempotentAndSafeOnFiredEvents) {
  TypeParam sched;
  const EventId id = sched.ScheduleAt(1, [] {});
  sched.RunNext();
  sched.Cancel(id);  // already fired: no-op
  sched.Cancel(id);
  sched.Cancel(EventId{});  // invalid id: no-op
  EXPECT_TRUE(sched.Empty());
}

TYPED_TEST(SchedulerTest, StaleIdAfterFireCannotCancelLaterEvent) {
  // Regression test for the EventId reuse hazard: after `first` fires, its
  // pool slot may be recycled for `second`. The stale handle carries an
  // old generation and must not cancel the new occupant.
  TypeParam sched;
  const EventId first = sched.ScheduleAt(1, [] {});
  sched.RunNext();  // `first` fires; its storage may now be reused
  bool second_ran = false;
  const EventId second = sched.ScheduleAt(2, [&] { second_ran = true; });
  sched.Cancel(first);  // stale: must be a no-op
  EXPECT_EQ(sched.PendingCount(), 1u);
  sched.RunNext();
  EXPECT_TRUE(second_ran);
  (void)second;
}

TYPED_TEST(SchedulerTest, DoubleCancelCannotCancelLaterEvent) {
  // Regression test: cancelling twice must not free the slot twice nor
  // touch a later event that reuses it.
  TypeParam sched;
  const EventId victim = sched.ScheduleAt(10, [] {});
  sched.Cancel(victim);
  bool reused_ran = false;
  sched.ScheduleAt(20, [&] { reused_ran = true; });
  sched.Cancel(victim);  // double cancel: stale, must be a no-op
  EXPECT_EQ(sched.PendingCount(), 1u);
  sched.RunNext();
  EXPECT_TRUE(reused_ran);
}

TYPED_TEST(SchedulerTest, PendingCountTracksLiveEvents) {
  TypeParam sched;
  const EventId a = sched.ScheduleAt(1, [] {});
  sched.ScheduleAt(2, [] {});
  EXPECT_EQ(sched.PendingCount(), 2u);
  sched.Cancel(a);
  EXPECT_EQ(sched.PendingCount(), 1u);
  sched.RunNext();
  EXPECT_EQ(sched.PendingCount(), 0u);
}

TYPED_TEST(SchedulerTest, NextTimeSkipsCancelled) {
  TypeParam sched;
  const EventId a = sched.ScheduleAt(1, [] {});
  sched.ScheduleAt(5, [] {});
  sched.Cancel(a);
  EXPECT_EQ(sched.NextTime(), 5);
}

TYPED_TEST(SchedulerTest, EventsScheduledDuringExecutionRun) {
  TypeParam sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.ScheduleAt(depth, recurse);
  };
  sched.ScheduleAt(0, recurse);
  while (!sched.Empty()) sched.RunNext();
  EXPECT_EQ(depth, 5);
}

TYPED_TEST(SchedulerTest, ExecutedCounter) {
  TypeParam sched;
  for (int i = 0; i < 7; ++i) sched.ScheduleAt(i, [] {});
  while (!sched.Empty()) sched.RunNext();
  EXPECT_EQ(sched.executed(), 7u);
}

TYPED_TEST(SchedulerTest, SparseFarApartEventsPopExactly) {
  // Timestamps chosen to sit on different wheel levels and force long
  // idle jumps (multi-level cascades) between pops.
  TypeParam sched;
  const std::vector<Tick> times = {3,         40,        5_us,     90_us,
                                   3_ms,      250_ms,    2_s,      60_s,
                                   3600_s};
  std::vector<Tick> fired;
  for (const Tick at : times) {
    sched.ScheduleAt(at, [&fired, at] { fired.push_back(at); });
  }
  while (!sched.Empty()) {
    const Tick next = sched.NextTime();
    EXPECT_EQ(sched.RunNext(), next);
  }
  EXPECT_EQ(fired, times);
}

// ---------------------------------------------------------------------------
// Timer wheel specifics

TEST(TimerWheelTest, FarFutureEventsUseOverflowHeapAndStillFireInOrder) {
  TimerWheelScheduler sched;
  // ~26 simulated days in ns: beyond the 2^50-tick wheel span.
  const Tick far = Tick(1) << 51;
  std::vector<int> order;
  sched.ScheduleAt(far + 5, [&] { order.push_back(3); });
  const EventId cancelled = sched.ScheduleAt(far, [&] { order.push_back(9); });
  sched.ScheduleAt(far + 5, [&] { order.push_back(4); });
  sched.ScheduleAt(100, [&] { order.push_back(1); });
  EXPECT_EQ(sched.OverflowCount(), 3u);
  sched.Cancel(cancelled);  // cancellation of a heap-resident event
  EXPECT_EQ(sched.OverflowCount(), 2u);
  EXPECT_EQ(sched.NextTime(), 100);
  while (!sched.Empty()) sched.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
}

TEST(TimerWheelTest, InlineActionStoresSmallCapturesInline) {
  int counter = 0;
  InlineAction small([&counter] { ++counter; });
  EXPECT_TRUE(small.IsInline());
  small();
  small();  // repeat invocation (Timer relies on this)
  EXPECT_EQ(counter, 2);

  struct Big {
    char bytes[2 * InlineAction::kInlineSize] = {};
  };
  Big big_payload;
  InlineAction big([big_payload, &counter] {
    counter += static_cast<int>(sizeof(big_payload.bytes)) > 0 ? 1 : 0;
  });
  EXPECT_FALSE(big.IsInline());  // boxed, but still works
  big();
  EXPECT_EQ(counter, 3);

  InlineAction moved = std::move(small);
  EXPECT_TRUE(moved.IsInline());
  moved();
  EXPECT_EQ(counter, 4);
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT: moved-from is empty
}

// ---------------------------------------------------------------------------
// Simulator

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Tick> at;
  sim.Schedule(10, [&] { at.push_back(sim.Now()); });
  sim.Schedule(25, [&] { at.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(at, (std::vector<Tick>{10, 25}));
  EXPECT_EQ(sim.Now(), 25);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late = false;
  sim.Schedule(10, [] {});
  sim.Schedule(100, [&] { late = true; });
  sim.RunUntil(50);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.Now(), 50);  // clock parked at the deadline
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(SimulatorTest, StopEndsRunEarly) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(1, [&] {
    ++ran;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  sim.Run();  // resumes with the remaining event
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, RelativeScheduleUsesCurrentTime) {
  Simulator sim;
  Tick inner_fired = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(5, [&] { inner_fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fired, 15);
}

TEST(SimulatorTest, SeededRngIsDeterministicAcrossInstances) {
  Simulator a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.rng().Next(), b.rng().Next());
  }
}

TEST(SimulatorTest, RunReturnsExecutedCount) {
  Simulator sim;
  for (int i = 1; i <= 5; ++i) sim.Schedule(i, [] {});
  EXPECT_EQ(sim.Run(), 5u);
}

// ---------------------------------------------------------------------------
// Timer

TEST(TimerTest, FiresOnceAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.Schedule(100);
  EXPECT_TRUE(t.IsPending());
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.IsPending());
  EXPECT_EQ(sim.Now(), 100);
}

TEST(TimerTest, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.Schedule(100);
  t.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, RescheduleReplacesPending) {
  Simulator sim;
  std::vector<Tick> fires;
  Timer t(sim, [&] { fires.push_back(sim.Now()); });
  t.Schedule(100);
  t.Schedule(50);  // re-arm earlier
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{50}));
}

TEST(TimerTest, CanReArmFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer* self = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) self->Schedule(10);
  });
  self = &t;
  t.Schedule(10);
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), 30);
}

TEST(TimerTest, ExpiresAtReflectsArming) {
  Simulator sim;
  Timer t(sim, [] {});
  sim.Schedule(7, [&] { t.Schedule(13); });
  sim.Run();
  EXPECT_EQ(t.expires_at(), 20);
}

TEST(TimerTest, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.Schedule(10);
  }
  sim.Run();
  EXPECT_EQ(fired, 0);
}

// ---------------------------------------------------------------------------
// Pinned events (one wheel node re-armed for a lifetime)

TEST(PinnedEventTest, FiresAtArmedTime) {
  Simulator sim;
  std::vector<Tick> fires;
  struct Ctx {
    Simulator* sim;
    std::vector<Tick>* fires;
  } ctx{&sim, &fires};
  PinnedEvent ev(
      sim, [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        c->fires->push_back(c->sim->Now());
      },
      &ctx);
  EXPECT_FALSE(ev.armed());
  ev.ArmAt(25);
  EXPECT_TRUE(ev.armed());
  sim.Run();
  EXPECT_FALSE(ev.armed());
  EXPECT_EQ(fires, (std::vector<Tick>{25}));
}

TEST(PinnedEventTest, ReArmReplacesPendingArming) {
  Simulator sim;
  std::vector<Tick> fires;
  struct Ctx {
    Simulator* sim;
    std::vector<Tick>* fires;
  } ctx{&sim, &fires};
  PinnedEvent ev(
      sim, [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        c->fires->push_back(c->sim->Now());
      },
      &ctx);
  ev.ArmAt(50);
  ev.ArmAt(10);  // pull in
  sim.Run();
  ev.ArmAt(sim.Now() + 5);
  ev.ArmAt(sim.Now() + 90);  // push out
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{10, 100}));
}

TEST(PinnedEventTest, CancelDisarmsAndIsIdempotent) {
  Simulator sim;
  int fired = 0;
  struct Ctx {
    int* fired;
  } ctx{&fired};
  PinnedEvent ev(
      sim, [](void* p) { ++*static_cast<Ctx*>(p)->fired; }, &ctx);
  ev.ArmAt(10);
  ev.Cancel();
  ev.Cancel();  // no-op on a parked node
  EXPECT_FALSE(ev.armed());
  sim.Run();
  EXPECT_EQ(fired, 0);
  // The node is still usable after cancellation.
  ev.ArmAt(sim.Now() + 3);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(PinnedEventTest, CallbackMayReArmItsOwnNode) {
  Simulator sim;
  struct Ctx {
    Simulator* sim;
    PinnedEvent* ev;
    int count = 0;
  } ctx{&sim, nullptr};
  PinnedEvent ev(
      sim, [](void* p) {
        auto* c = static_cast<Ctx*>(p);
        if (++c->count < 5) c->ev->ArmAt(c->sim->Now() + 10);
      },
      &ctx);
  ctx.ev = &ev;
  ev.ArmAt(10);
  sim.Run();
  EXPECT_EQ(ctx.count, 5);
  EXPECT_EQ(sim.Now(), 50);
}

TEST(PinnedEventTest, FarFutureArmTransitsOverflowHeap) {
  Simulator sim;
  int fired = 0;
  struct Ctx {
    int* fired;
  } ctx{&fired};
  PinnedEvent ev(
      sim, [](void* p) { ++*static_cast<Ctx*>(p)->fired; }, &ctx);
  // Far beyond the wheel span (2^50 ticks): homes in the overflow heap.
  const Tick far = (Tick(1) << 51) + 7;
  ev.ArmAt(far);
  EXPECT_EQ(sim.scheduler().OverflowCount(), 1u);
  // Cancelling a heap-resident pinned node leaves a stale entry that must
  // not fire and must not block a fresh arming of the same node.
  ev.Cancel();
  EXPECT_FALSE(ev.armed());
  ev.ArmAt(far + 1);
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), far + 1);
}

TEST(PinnedEventTest, InterleavesWithRegularEventsInSeqOrder) {
  Simulator sim;
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
  } ctx{&order};
  PinnedEvent ev(
      sim, [](void* p) { static_cast<Ctx*>(p)->order->push_back(1); }, &ctx);
  sim.ScheduleAt(10, [&] { order.push_back(0); });
  ev.ArmAt(10);  // armed after: fires after among equal timestamps
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Timer lazy re-arm (deadline pushed out without touching the wheel)

TEST(TimerTest, DeadlinePushedOutFiresOnceAtLatestDeadline) {
  Simulator sim;
  std::vector<Tick> fires;
  Timer t(sim, [&] { fires.push_back(sim.Now()); });
  // The RFC 6298 pattern: re-arm on every "ACK", each pushing the expiry
  // out. The stale armings must be absorbed, firing exactly once at the
  // final deadline.
  t.Schedule(100);
  for (Tick at : {Tick{20}, Tick{40}, Tick{60}}) {
    sim.ScheduleAt(at, [&] { t.Schedule(100); });
  }
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{160}));
  EXPECT_FALSE(t.IsPending());
}

TEST(TimerTest, ExpiresAtTracksLogicalDeadlineWhileArmingIsLazy) {
  Simulator sim;
  Timer t(sim, [] {});
  t.Schedule(50);
  sim.ScheduleAt(10, [&] {
    t.Schedule(200);  // deadline out to 210; physical arming stays at 50
    EXPECT_EQ(t.expires_at(), 210);
    EXPECT_TRUE(t.IsPending());
  });
  // At t=50 the stale arming pops and silently re-homes to 210.
  sim.ScheduleAt(100, [&] { EXPECT_TRUE(t.IsPending()); });
  sim.Run();
  EXPECT_EQ(sim.Now(), 210);
  EXPECT_FALSE(t.IsPending());
}

TEST(TimerTest, CancelDuringStalePendingArmingNeverFires) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.Schedule(30);
  sim.ScheduleAt(10, [&] { t.Schedule(100); });  // lazy: arming stays at 30
  sim.ScheduleAt(50, [&] { t.Cancel(); });       // after the stale pop
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.IsPending());
}

TEST(TimerTest, PullInReplacesArmingEagerly) {
  Simulator sim;
  std::vector<Tick> fires;
  Timer t(sim, [&] { fires.push_back(sim.Now()); });
  t.Schedule(100);
  sim.ScheduleAt(10, [&] { t.Schedule(20); });  // earlier: must re-home now
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{30}));
}

TEST(TimerTest, ReArmAfterStaleRehomeStillLazy) {
  Simulator sim;
  std::vector<Tick> fires;
  Timer t(sim, [&] { fires.push_back(sim.Now()); });
  // Two generations of lazy push-out with a stale re-home in between.
  t.Schedule(10);
  sim.ScheduleAt(5, [&] { t.Schedule(50); });    // pops stale at 10, re-homes
  sim.ScheduleAt(30, [&] { t.Schedule(100); });  // pops stale at 55, re-homes
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{130}));
}

}  // namespace
}  // namespace dctcpp
