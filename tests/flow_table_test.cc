// Flat flow table: key packing, open-addressing behaviour under churn, a
// randomized differential against the std::map oracle backend, and
// host-level demux equivalence between the two backends (including the
// listener-fallback and unmatched paths the incast workload exercises).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_set>
#include <vector>

#include "dctcpp/net/host.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/flow_table.h"

namespace dctcpp {
namespace {

/// Restores the process-wide backend flag on scope exit so a failing test
/// cannot leak reference mode into later tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(ReferenceFlowTableEnabled()) {}
  ~BackendGuard() { SetReferenceFlowTableForTest(saved_); }

 private:
  bool saved_;
};

TEST(PackFlowKeyTest, EachFieldOccupiesDistinctBits) {
  const std::uint64_t base = PackFlowKey(5000, 7, 9000);
  EXPECT_NE(base, PackFlowKey(5001, 7, 9000));
  EXPECT_NE(base, PackFlowKey(5000, 8, 9000));
  EXPECT_NE(base, PackFlowKey(5000, 7, 9001));
  // A change in one field can never alias a change in another: the three
  // fields occupy disjoint bit ranges.
  EXPECT_NE(PackFlowKey(1, 0, 0), PackFlowKey(0, 1, 0));
  EXPECT_NE(PackFlowKey(0, 1, 0), PackFlowKey(0, 0, 1));
  EXPECT_NE(PackFlowKey(1, 0, 0), PackFlowKey(0, 0, 1));
}

TEST(PackFlowKeyTest, ExtremeValuesRoundTripUniquely) {
  std::unordered_set<std::uint64_t> keys;
  for (std::uint16_t lp : {std::uint16_t{0}, std::uint16_t{65535}}) {
    for (NodeId remote : {NodeId{0}, NodeId{1}, NodeId{0x7fffffff}}) {
      for (std::uint16_t rp : {std::uint16_t{0}, std::uint16_t{65535}}) {
        EXPECT_TRUE(keys.insert(PackFlowKey(lp, remote, rp)).second);
      }
    }
  }
  EXPECT_EQ(keys.size(), 12u);
}

TEST(FlatFlowTableTest, InsertFindEraseBasics) {
  FlatFlowTable<int> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Find(42), nullptr);
  table.Insert(42, 1);
  table.Insert(0, 2);  // key 0 must be a legal key, not a sentinel
  ASSERT_NE(table.Find(42), nullptr);
  EXPECT_EQ(*table.Find(42), 1);
  ASSERT_NE(table.Find(0), nullptr);
  EXPECT_EQ(*table.Find(0), 2);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.Contains(42));
  EXPECT_FALSE(table.Contains(43));
  EXPECT_TRUE(table.Erase(42));
  EXPECT_FALSE(table.Erase(42));
  EXPECT_EQ(table.Find(42), nullptr);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatFlowTableTest, SurvivesGrowthAcrossRehash) {
  FlatFlowTable<std::uint64_t> table;
  for (std::uint64_t i = 0; i < 5000; ++i) table.Insert(i * 977 + 3, i);
  EXPECT_EQ(table.size(), 5000u);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const std::uint64_t* v = table.Find(i * 977 + 3);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatFlowTableTest, TombstoneChurnDoesNotGrowUnboundedly) {
  FlatFlowTable<int> table;
  // Steady-state churn at constant live size: capacity must stabilize
  // because erase leaves tombstones that rehash reclaims.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) {
      table.Insert(std::uint64_t(round) << 16 | std::uint64_t(i), i);
    }
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(table.Erase(std::uint64_t(round) << 16 | std::uint64_t(i)));
    }
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_LE(table.capacity(), 1024u);
}

TEST(FlowTableDifferentialTest, TwentyThousandRandomOpsMatchMapOracle) {
  FlatFlowTable<std::uint32_t> flat;
  MapFlowTable<std::uint32_t> oracle;
  // A small key universe forces heavy collision/tombstone traffic, and a
  // mix of realistic flow keys exercises the high bits the hash must mix.
  std::mt19937_64 rng(20260805);
  std::vector<std::uint64_t> universe;
  for (int i = 0; i < 512; ++i) {
    universe.push_back(PackFlowKey(
        static_cast<std::uint16_t>(10000 + rng() % 50000),
        static_cast<NodeId>(rng() % 64),
        static_cast<std::uint16_t>(rng() % 65536)));
  }
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = universe[rng() % universe.size()];
    switch (rng() % 4) {
      case 0: {  // insert if absent (Insert requires a fresh key)
        const bool present = oracle.Contains(key);
        ASSERT_EQ(flat.Contains(key), present) << "op " << op;
        if (!present) {
          const std::uint32_t value = static_cast<std::uint32_t>(rng());
          flat.Insert(key, value);
          oracle.Insert(key, value);
        }
        break;
      }
      case 1:
        ASSERT_EQ(flat.Erase(key), oracle.Erase(key)) << "op " << op;
        break;
      default: {  // lookup-heavy, like the demux path
        const std::uint32_t* fv = flat.Find(key);
        const std::uint32_t* ov = oracle.Find(key);
        ASSERT_EQ(fv != nullptr, ov != nullptr) << "op " << op;
        if (fv != nullptr) {
          ASSERT_EQ(*fv, *ov) << "op " << op;
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), oracle.size()) << "op " << op;
  }
  // Final sweep: every key in the universe agrees.
  for (const std::uint64_t key : universe) {
    const std::uint32_t* fv = flat.Find(key);
    const std::uint32_t* ov = oracle.Find(key);
    ASSERT_EQ(fv != nullptr, ov != nullptr);
    if (fv != nullptr) {
      EXPECT_EQ(*fv, *ov);
    }
  }
}

TEST(FlowTableWrapperTest, BackendSelectedAtConstruction) {
  BackendGuard guard;
  SetReferenceFlowTableForTest(false);
  FlowTable<int> flat_table;
  EXPECT_FALSE(flat_table.is_reference());
  SetReferenceFlowTableForTest(true);
  FlowTable<int> map_table;
  EXPECT_TRUE(map_table.is_reference());
  // The flag is sampled at construction: the earlier table keeps its
  // backend.
  EXPECT_FALSE(flat_table.is_reference());
  for (int i = 0; i < 100; ++i) {
    flat_table.Insert(i, i);
    map_table.Insert(i, i);
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(flat_table.Find(i), nullptr);
    ASSERT_NE(map_table.Find(i), nullptr);
    EXPECT_EQ(*flat_table.Find(i), *map_table.Find(i));
  }
}

// ---------------------------------------------------------------------------
// Host demux through both backends

struct DemuxCounts {
  std::uint64_t conn = 0;
  std::uint64_t listener = 0;
  std::uint64_t unmatched = 0;

  bool operator==(const DemuxCounts& o) const {
    return conn == o.conn && listener == o.listener &&
           unmatched == o.unmatched;
  }
};

Packet To(NodeId dst, PortNum dst_port, NodeId src, PortNum src_port) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.tcp.src_port = src_port;
  pkt.tcp.dst_port = dst_port;
  return pkt;
}

/// Drives one Host through the full demux decision tree: established
/// match, listener fallback, connection-over-listener precedence, the
/// unmatched counter, and re-demux after unregistration.
DemuxCounts RunDemuxScenario() {
  DemuxCounts counts;
  Simulator sim(1);
  Host host(sim, /*id=*/1, "h");

  host.RegisterConnection(5000, /*remote=*/2, 7000,
                          [p = &counts.conn](const Packet&) { ++*p; });
  host.Listen(80, [p = &counts.listener](const Packet&) { ++*p; });
  host.RegisterConnection(80, /*remote=*/3, 9000,
                          [p = &counts.conn](const Packet&) { ++*p; });

  host.Deliver(To(1, 5000, 2, 7000));  // established match
  host.Deliver(To(1, 5000, 2, 7001));  // right port, wrong tuple, no listener
  host.Deliver(To(1, 80, 9, 1234));    // listener fallback (a SYN)
  host.Deliver(To(1, 80, 3, 9000));    // connection beats listener
  host.Deliver(To(1, 443, 9, 1234));   // nothing registered at all

  host.UnregisterConnection(80, 3, 9000);
  host.Deliver(To(1, 80, 3, 9000));  // now falls back to the listener

  host.UnregisterConnection(5000, 2, 7000);
  host.Deliver(To(1, 5000, 2, 7000));  // now unmatched

  host.StopListening(80);
  host.Deliver(To(1, 80, 9, 1234));  // listener gone: unmatched

  counts.unmatched = host.unmatched_packets();
  return counts;
}

TEST(HostDemuxDifferentialTest, FlatAndMapBackendsAgree) {
  BackendGuard guard;
  SetReferenceFlowTableForTest(false);
  const DemuxCounts flat = RunDemuxScenario();
  SetReferenceFlowTableForTest(true);
  const DemuxCounts reference = RunDemuxScenario();

  EXPECT_TRUE(flat == reference);
  // And both match the decision tree worked out by hand.
  EXPECT_EQ(flat.conn, 2u);
  EXPECT_EQ(flat.listener, 2u);
  EXPECT_EQ(flat.unmatched, 4u);
}

// ---------------------------------------------------------------------------
// Ephemeral port allocator

TEST(HostPortAllocatorTest, WrapsRangeAndSkipsLivePorts) {
  Simulator sim(1);
  Host host(sim, /*id=*/1, "h");

  // Pin two ports mid-range; the allocator must step over both on every
  // lap forever.
  host.Listen(12345, [](const Packet&) {});
  host.RegisterConnection(40000, /*remote=*/2, 80, [](const Packet&) {});

  const int range = 65535 - 10000;
  PortNum prev = 0;
  int wraps = 0;
  for (int i = 0; i < 2 * range + 100; ++i) {
    const PortNum p = host.AllocatePort();
    ASSERT_GE(p, 10000) << "allocation " << i;
    ASSERT_LT(p, 65535) << "allocation " << i;
    ASSERT_NE(p, 12345) << "allocation " << i;
    ASSERT_NE(p, 40000) << "allocation " << i;
    if (i > 0 && p < prev) ++wraps;
    prev = p;
  }
  // > 2 full laps of the 55,535-port range: wrapped at least twice and
  // never aborted, so a many-round incast can recycle ports indefinitely.
  EXPECT_GE(wraps, 2);
}

TEST(HostPortAllocatorTest, ReusesPortOnceFreed) {
  Simulator sim(1);
  Host host(sim, /*id=*/1, "h");
  const PortNum first = host.AllocatePort();
  host.RegisterConnection(first, 2, 80, [](const Packet&) {});
  // While registered, a full lap never returns it...
  for (int i = 0; i < 65535 - 10000; ++i) {
    ASSERT_NE(host.AllocatePort(), first);
  }
  // ...and once unregistered, the next lap hands it out again.
  host.UnregisterConnection(first, 2, 80);
  bool seen = false;
  for (int i = 0; i < 65535 - 10000 && !seen; ++i) {
    seen = host.AllocatePort() == first;
  }
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace dctcpp
