// TCP+ (Sec. VII extension: the DCTCP+ mechanism on plain NewReno):
// loss-driven engagement, pacing, and end-to-end improvement over TCP in
// the incast benchmark.
#include <gtest/gtest.h>

#include "dctcpp/core/protocol.h"
#include "dctcpp/core/tcp_plus.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {
namespace {

using namespace time_literals;

TEST(TcpPlusUnitTest, Defaults) {
  TcpPlusCc cc;
  EXPECT_STREQ(cc.Name(), "tcp+");
  EXPECT_FALSE(cc.EcnCapable());  // plain TCP: loss is the only signal
  EXPECT_FALSE(cc.DctcpStyleReceiver());
  EXPECT_EQ(cc.MinCwnd(), 1);
  EXPECT_EQ(cc.plus_state(), PlusState::kNormal);
}

TEST(TcpPlusUnitTest, FactoryRoundTrip) {
  EXPECT_EQ(ParseProtocol("tcp+"), Protocol::kTcpPlus);
  auto ops = MakeCongestionOps(Protocol::kTcpPlus);
  EXPECT_STREQ(ops->Name(), "tcp+");
  EXPECT_FALSE(ops->EcnCapable());
}

TEST(TcpPlusTest, HeavyLossTransferCompletes) {
  Simulator sim(1);
  Network net(sim);
  Switch& sw = net.AddSwitch("sw");
  Host& a = net.AddHost("a");
  Host& b = net.AddHost("b");
  LinkConfig fast;
  fast.rate = DataRate::GigabitsPerSec(10);
  net.ConnectHost(a, sw, fast);
  LinkConfig tiny;  // loss-only bottleneck
  tiny.buffer_bytes = 3 * 1514;
  tiny.ecn_threshold = 0;
  net.ConnectHost(b, sw, tiny, Network::NicConfig(LinkConfig{}));
  net.InstallRoutes();

  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;
  Bytes received = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      b, 5000, [] { return std::make_unique<TcpPlusCc>(); }, socket_config,
      [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) { received += n; });
      });
  TcpSocket client(a, std::make_unique<TcpPlusCc>(), socket_config);
  client.Connect(b.id(), 5000);
  sim.RunUntil(100_ms);
  ASSERT_TRUE(client.Established());
  client.Send(1 * kMiB);
  sim.RunUntil(sim.Now() + 60 * kSecond);
  EXPECT_EQ(received, 1 * kMiB);
}

TEST(TcpPlusTest, TimeoutEngagesRegulator) {
  // A severed path gives unambiguous full-window losses: the RTO must
  // drive DCTCP_NORMAL -> DCTCP_Time_Inc even without ECN.
  Simulator sim(1);
  Network net(sim);
  TwoTierTopology topo = TwoTierTopology::Build(net, 2, LinkConfig{});
  TcpSocket::Config socket_config;
  socket_config.rto.min_rto = 10_ms;
  TcpSocket::Ptr server;
  TcpListener listener(
      *topo.aggregator, 5000, [] { return std::make_unique<TcpPlusCc>(); },
      socket_config,
      [&](TcpSocket::Ptr s) { server = std::move(s); });
  TcpSocket client(*topo.workers[0], std::make_unique<TcpPlusCc>(),
                   socket_config);
  client.Connect(topo.aggregator->id(), 5000);
  sim.RunUntil(100_ms);
  ASSERT_TRUE(client.Established());
  server.reset();  // black-hole all further data
  client.Send(10 * 1460);
  sim.RunUntil(sim.Now() + 200_ms);
  auto& plus = static_cast<TcpPlusCc&>(client.cc());
  EXPECT_GT(plus.regulator().counters().entered_inc, 0u);
  EXPECT_GT(plus.slow_time(), 0);
}

TEST(TcpPlusTest, StaysNormalOnCleanPath) {
  Simulator sim(1);
  Network net(sim);
  TwoTierTopology topo = TwoTierTopology::Build(net, 2, LinkConfig{});
  Bytes received = 0;
  TcpSocket::Ptr server;
  TcpListener listener(
      *topo.aggregator, 5000, [] { return std::make_unique<TcpPlusCc>(); },
      TcpSocket::Config{}, [&](TcpSocket::Ptr s) {
        server = std::move(s);
        server->set_on_data([&](Bytes n) { received += n; });
      });
  TcpSocket client(*topo.workers[0], std::make_unique<TcpPlusCc>(),
                   TcpSocket::Config{});
  client.set_on_connected([&] { client.Send(1 * kMiB); });
  client.Connect(topo.aggregator->id(), 5000);
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(received, 1 * kMiB);
  auto& plus = static_cast<TcpPlusCc&>(client.cc());
  EXPECT_EQ(plus.regulator().counters().entered_inc, 0u);
}

TEST(TcpPlusTest, NoWorseThanTcpAtHighFanIn) {
  // The honest extension finding (see bench/ext_tcp_plus): without ECN
  // there is nothing to pin the unengaged flows' windows, so TCP+ cannot
  // dissolve the incast collapse the way DCTCP+ does. It must, however,
  // complete the benchmark and not regress below plain TCP.
  IncastConfig config;
  config.num_flows = 60;
  config.rounds = 25;
  config.time_limit = 300 * kSecond;

  config.protocol = Protocol::kTcp;
  const IncastResult tcp = RunIncast(config);
  config.protocol = Protocol::kTcpPlus;
  const IncastResult plus = RunIncast(config);

  EXPECT_EQ(plus.rounds_completed, 25u);
  EXPECT_GT(plus.goodput_mbps, 0.8 * tcp.goodput_mbps);
}

}  // namespace
}  // namespace dctcpp
