// Reassembly-queue tests: in-order delivery, gap tracking, overlap
// coalescing, and sequence-wrap transparency.
#include <gtest/gtest.h>

#include "dctcpp/tcp/receive_buffer.h"

namespace dctcpp {
namespace {

TEST(ReceiveBufferTest, InOrderAdvances) {
  ReceiveBuffer rx(SeqNum(1000));
  EXPECT_EQ(rx.OnSegment(SeqNum(1000), 100), 100);
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(1100));
  EXPECT_EQ(rx.OnSegment(SeqNum(1100), 50), 50);
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(1150));
  EXPECT_EQ(rx.DeliveredBytes(), 150);
  EXPECT_FALSE(rx.HasGaps());
}

TEST(ReceiveBufferTest, OutOfOrderHeldThenDelivered) {
  ReceiveBuffer rx(SeqNum(0));
  EXPECT_EQ(rx.OnSegment(SeqNum(100), 100), 0);  // hole in front
  EXPECT_TRUE(rx.HasGaps());
  EXPECT_EQ(rx.OutOfOrderBytes(), 100);
  EXPECT_EQ(rx.OnSegment(SeqNum(0), 100), 200);  // fills the hole
  EXPECT_FALSE(rx.HasGaps());
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(200));
}

TEST(ReceiveBufferTest, DuplicateIsIgnored) {
  ReceiveBuffer rx(SeqNum(0));
  rx.OnSegment(SeqNum(0), 100);
  EXPECT_EQ(rx.OnSegment(SeqNum(0), 100), 0);
  EXPECT_EQ(rx.OnSegment(SeqNum(50), 50), 0);  // fully below rcv_nxt
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(100));
  EXPECT_EQ(rx.DeliveredBytes(), 100);
}

TEST(ReceiveBufferTest, PartialOverlapDeliversOnlyNewBytes) {
  ReceiveBuffer rx(SeqNum(0));
  rx.OnSegment(SeqNum(0), 100);
  // [50, 150): first 50 bytes are stale.
  EXPECT_EQ(rx.OnSegment(SeqNum(50), 100), 50);
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(150));
}

TEST(ReceiveBufferTest, AdjacentOutOfOrderRangesCoalesce) {
  ReceiveBuffer rx(SeqNum(0));
  rx.OnSegment(SeqNum(100), 100);
  rx.OnSegment(SeqNum(200), 100);  // abuts the previous range
  EXPECT_EQ(rx.OutOfOrderRanges(), 1u);
  EXPECT_EQ(rx.OutOfOrderBytes(), 200);
  EXPECT_EQ(rx.OnSegment(SeqNum(0), 100), 300);
}

TEST(ReceiveBufferTest, DisjointRangesTrackedSeparately) {
  ReceiveBuffer rx(SeqNum(0));
  rx.OnSegment(SeqNum(100), 50);
  rx.OnSegment(SeqNum(300), 50);
  EXPECT_EQ(rx.OutOfOrderRanges(), 2u);
  // Filling the first hole releases only up to the second hole.
  EXPECT_EQ(rx.OnSegment(SeqNum(0), 100), 150);
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(150));
  EXPECT_TRUE(rx.HasGaps());
}

TEST(ReceiveBufferTest, SegmentBridgingTwoRanges) {
  ReceiveBuffer rx(SeqNum(0));
  rx.OnSegment(SeqNum(100), 50);   // [100,150)
  rx.OnSegment(SeqNum(200), 50);   // [200,250)
  rx.OnSegment(SeqNum(150), 50);   // bridges them
  EXPECT_EQ(rx.OutOfOrderRanges(), 1u);
  EXPECT_EQ(rx.OutOfOrderBytes(), 150);
}

TEST(ReceiveBufferTest, SegmentSwallowingExistingRange) {
  ReceiveBuffer rx(SeqNum(0));
  rx.OnSegment(SeqNum(120), 10);
  rx.OnSegment(SeqNum(100), 100);  // superset
  EXPECT_EQ(rx.OutOfOrderRanges(), 1u);
  EXPECT_EQ(rx.OutOfOrderBytes(), 100);
}

TEST(ReceiveBufferTest, ZeroLengthSegmentIsNoop) {
  ReceiveBuffer rx(SeqNum(5));
  EXPECT_EQ(rx.OnSegment(SeqNum(5), 0), 0);
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(5));
}

TEST(ReceiveBufferTest, WorksAcrossSequenceWrap) {
  ReceiveBuffer rx(SeqNum(0xFFFFFF00u));
  EXPECT_EQ(rx.OnSegment(SeqNum(0xFFFFFF00u), 0x100), 0x100);
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(0));  // wrapped
  EXPECT_EQ(rx.OnSegment(SeqNum(0), 100), 100);
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(100));
  EXPECT_EQ(rx.DeliveredBytes(), 0x100 + 100);
}

TEST(ReceiveBufferTest, OutOfOrderAcrossWrap) {
  ReceiveBuffer rx(SeqNum(0xFFFFFFF0u));
  rx.OnSegment(SeqNum(0x10), 16);  // beyond the wrap, hole in front
  EXPECT_TRUE(rx.HasGaps());
  EXPECT_EQ(rx.OnSegment(SeqNum(0xFFFFFFF0u), 32), 48);
  EXPECT_FALSE(rx.HasGaps());
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(0x20));
}

TEST(ReceiveBufferTest, LongStreamAccumulates) {
  ReceiveBuffer rx(SeqNum(7));
  Bytes total = 0;
  for (int i = 0; i < 10000; ++i) {
    total += rx.OnSegment(rx.rcv_nxt(), 1460);
  }
  EXPECT_EQ(total, 10000LL * 1460);
  EXPECT_EQ(rx.DeliveredBytes(), total);
}

/// Property sweep: random arrival permutations always reassemble exactly.
class ReassemblyProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReassemblyProperty, RandomPermutationReassembles) {
  const int seed = GetParam();
  std::vector<int> order;
  constexpr int kSegments = 64;
  for (int i = 0; i < kSegments; ++i) order.push_back(i);
  // Deterministic shuffle from the seed.
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  for (int i = kSegments - 1; i > 0; --i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    std::swap(order[i], order[state % (i + 1)]);
  }
  ReceiveBuffer rx(SeqNum(123));
  Bytes delivered = 0;
  for (int idx : order) {
    delivered += rx.OnSegment(SeqNum(123) + idx * 100, 100);
  }
  EXPECT_EQ(delivered, kSegments * 100);
  EXPECT_FALSE(rx.HasGaps());
  EXPECT_EQ(rx.rcv_nxt(), SeqNum(123) + kSegments * 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblyProperty,
                         ::testing::Range(0, 16));

/// Scoreboard differential: replay randomized segment arrivals (loss,
/// reordering, duplication, partial overlap) through the production flat
/// interval-vector buffer and the std::map reference, asserting identical
/// ACK (rcv_nxt, advanced bytes) and SACK output after every arrival.
class ScoreboardDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ScoreboardDifferential, FlatVectorMatchesMapReference) {
  std::uint64_t state =
      static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  };

  const SeqNum isn(0xfffffd00u);  // crosses the 32-bit wrap early on
  BasicReceiveBuffer<IntervalSet> flat(isn);
  BasicReceiveBuffer<MapIntervalSet> map(isn);

  std::uint32_t stream_pos = 0;  // bytes the "sender" has produced
  for (int arrival = 0; arrival < 4000; ++arrival) {
    // Mostly fresh in-flight data near the frontier, with stale
    // retransmission-like duplicates mixed in.
    const bool duplicate = (next() % 10) == 0;
    const std::uint32_t base = duplicate
                                   ? static_cast<std::uint32_t>(
                                         flat.DeliveredBytes() > 2000
                                             ? flat.DeliveredBytes() - 2000
                                             : 0)
                                   : stream_pos;
    const std::uint32_t offset =
        base + static_cast<std::uint32_t>(next() % 4000);
    const Bytes len = 1 + static_cast<Bytes>(next() % 1460);
    if (!duplicate) stream_pos = std::max(stream_pos, offset);

    const Bytes advanced_flat = flat.OnSegment(isn + offset, len);
    const Bytes advanced_map = map.OnSegment(isn + offset, len);
    ASSERT_EQ(advanced_flat, advanced_map);
    ASSERT_EQ(flat.rcv_nxt(), map.rcv_nxt());
    ASSERT_EQ(flat.DeliveredBytes(), map.DeliveredBytes());
    ASSERT_EQ(flat.OutOfOrderRanges(), map.OutOfOrderRanges());
    ASSERT_EQ(flat.OutOfOrderBytes(), map.OutOfOrderBytes());

    const auto sack_flat = flat.SackRanges(3);
    const auto sack_map = map.SackRanges(3);
    ASSERT_EQ(sack_flat.size(), sack_map.size());
    for (std::size_t i = 0; i < sack_flat.size(); ++i) {
      ASSERT_EQ(sack_flat[i].start, sack_map[i].start);
      ASSERT_EQ(sack_flat[i].end, sack_map[i].end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreboardDifferential,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace dctcpp
