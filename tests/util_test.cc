// Unit tests for dctcpp/util: time, units, RNG, flags, thread pool.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "dctcpp/util/flags.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/util/time.h"
#include "dctcpp/util/units.h"

namespace dctcpp {
namespace {

using namespace time_literals;

// ---------------------------------------------------------------------------
// Time

TEST(TimeTest, LiteralsProduceNanoseconds) {
  EXPECT_EQ(1_ns, 1);
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(1_ms, 1000 * 1000);
  EXPECT_EQ(1_s, 1000LL * 1000 * 1000);
  EXPECT_EQ(250_us, 250 * kMicrosecond);
}

TEST(TimeTest, ConversionsAreExactForWholeUnits) {
  EXPECT_DOUBLE_EQ(ToSeconds(2_s), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(3_ms), 3.0);
  EXPECT_DOUBLE_EQ(ToMicros(7_us), 7.0);
}

TEST(TimeTest, FormatPicksUnit) {
  EXPECT_EQ(FormatTick(5), "5ns");
  EXPECT_EQ(FormatTick(1500), "1.500us");
  EXPECT_EQ(FormatTick(2 * kMillisecond), "2.000ms");
  EXPECT_EQ(FormatTick(3 * kSecond), "3.000s");
}

TEST(TimeTest, FormatNegative) {
  EXPECT_EQ(FormatTick(-1500), "-1.500us");
}

// ---------------------------------------------------------------------------
// Units

TEST(UnitsTest, TransmissionTimeExact) {
  // 1250 bytes at 1 Gbps = 10000 ns exactly.
  const DataRate gbps = DataRate::GigabitsPerSec(1);
  EXPECT_EQ(gbps.TransmissionTime(1250), 10000);
}

TEST(UnitsTest, TransmissionTimeRoundsUp) {
  // 1 byte at 3 Gbps: 8/3 ns -> 3 ns.
  const DataRate r = DataRate::GigabitsPerSec(3);
  EXPECT_EQ(r.TransmissionTime(1), 3);
}

TEST(UnitsTest, TransmissionTimeZeroBytes) {
  EXPECT_EQ(DataRate::GigabitsPerSec(1).TransmissionTime(0), 0);
}

TEST(UnitsTest, BytesPerInvertsTransmissionTime) {
  const DataRate r = DataRate::MegabitsPerSec(100);
  const Bytes n = 123456;
  const Tick t = r.TransmissionTime(n);
  // Round-trip is within one byte of the original.
  EXPECT_NEAR(static_cast<double>(r.BytesPer(t)), static_cast<double>(n),
              1.0);
}

TEST(UnitsTest, RateConstructorsAgree) {
  EXPECT_EQ(DataRate::KilobitsPerSec(1000), DataRate::MegabitsPerSec(1));
  EXPECT_EQ(DataRate::MegabitsPerSec(1000), DataRate::GigabitsPerSec(1));
}

TEST(UnitsTest, GoodputMbps) {
  // 125 MB in 1 s = 1000 Mbps.
  EXPECT_DOUBLE_EQ(GoodputMbps(125 * 1000 * 1000, 1_s), 1000.0);
  EXPECT_DOUBLE_EQ(GoodputMbps(100, 0), 0.0);
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntStaysInRangeAndHitsEndpoints) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(3, 10);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values observed
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformTickBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const Tick t = rng.UniformTick(100);
    ASSERT_GE(t, 0);
    ASSERT_LE(t, 100);
  }
  EXPECT_EQ(rng.UniformTick(0), 0);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.Exponential(1.0), 0.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream is not a suffix/copy of the parent stream.
  Rng parent2(31);
  parent2.Fork();
  EXPECT_EQ(parent.Next(), parent2.Next());  // fork advanced both equally
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitMix64KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

// ---------------------------------------------------------------------------
// EmpiricalCdf

TEST(EmpiricalCdfTest, SamplesWithinSupport) {
  EmpiricalCdf cdf({{10.0, 0.0}, {100.0, 0.5}, {1000.0, 1.0}});
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const double x = cdf.Sample(rng);
    ASSERT_GE(x, 10.0);
    ASSERT_LE(x, 1000.0);
  }
}

TEST(EmpiricalCdfTest, MedianLandsAtMidpoint) {
  EmpiricalCdf cdf({{0.0, 0.0}, {100.0, 1.0}});  // uniform [0, 100]
  Rng rng(43);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += cdf.Sample(rng);
  EXPECT_NEAR(sum / kSamples, 50.0, 1.0);
}

TEST(EmpiricalCdfTest, AtomAtSinglePoint) {
  EmpiricalCdf cdf({{42.0, 1.0}});
  Rng rng(47);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(cdf.Sample(rng), 42.0);
  }
}

TEST(EmpiricalCdfTest, MeanOfUniform) {
  EmpiricalCdf cdf({{0.0, 0.0}, {10.0, 1.0}});
  EXPECT_DOUBLE_EQ(cdf.Mean(), 5.0);
}

TEST(EmpiricalCdfTest, MeanWithAtom) {
  // Half the mass is an atom at 2, half uniform on [2, 4]: mean = 1 + 1.5.
  EmpiricalCdf cdf({{2.0, 0.5}, {4.0, 1.0}});
  EXPECT_DOUBLE_EQ(cdf.Mean(), 0.5 * 2.0 + 0.5 * 3.0);
}

// ---------------------------------------------------------------------------
// Flags

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  Flags flags;
  flags.DefineInt("n", 7, "");
  flags.DefineBool("b", true, "");
  flags.DefineDouble("d", 2.5, "");
  flags.DefineString("s", "hello", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), 7);
  EXPECT_TRUE(flags.GetBool("b"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("d"), 2.5);
  EXPECT_EQ(flags.GetString("s"), "hello");
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  flags.DefineString("s", "", "");
  const char* argv[] = {"prog", "--n=42", "--s", "world"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), 42);
  EXPECT_EQ(flags.GetString("s"), "world");
}

TEST(FlagsTest, BareBoolSetsTrue) {
  Flags flags;
  flags.DefineBool("verbose", false, "");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, BoolExplicitValues) {
  Flags flags;
  flags.DefineBool("x", false, "");
  const char* argv[] = {"prog", "--x=true"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.GetBool("x"));
  const char* argv2[] = {"prog", "--x=false"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv2)));
  EXPECT_FALSE(flags.GetBool("x"));
}

TEST(FlagsTest, UnknownFlagFails) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.Failed());
}

TEST(FlagsTest, MalformedIntFails) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  const char* argv[] = {"prog", "--n=12abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.Failed());
}

TEST(FlagsTest, NegativeIntAndDouble) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  flags.DefineDouble("d", 0, "");
  const char* argv[] = {"prog", "--n=-5", "--d=-1.25"};
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d"), -1.25);
}

TEST(FlagsTest, HelpReturnsFalseWithoutFailure) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.Failed());
}

TEST(FlagsTest, PositionalArgumentFails) {
  Flags flags;
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.Failed());
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(pool, 50, [&hits](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForGrainCoversChunkBoundaries) {
  // n deliberately not a multiple of grain: the last chunk is short, and
  // every index — first/last of each chunk included — must run exactly
  // once whatever thread claims which chunk.
  ThreadPool pool(3);
  for (std::size_t grain : {1u, 3u, 7u, 16u, 100u}) {
    constexpr std::size_t kN = 53;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(
        pool, kN, [&hits](std::size_t i) { ++hits[i]; }, grain);
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "grain=" << grain << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForGrainPreservesIntraChunkOrder) {
  // Within one chunk the body runs sequentially in index order on a
  // single thread; record (thread, sequence) and check each grain-sized
  // chunk saw strictly increasing indices.
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  constexpr std::size_t kGrain = 8;
  std::array<std::atomic<std::uint32_t>, kN> order{};
  std::atomic<std::uint32_t> ticket{0};
  ParallelFor(
      pool, kN,
      [&](std::size_t i) {
        order[i].store(ticket.fetch_add(1), std::memory_order_relaxed);
      },
      kGrain);
  for (std::size_t chunk = 0; chunk < kN; chunk += kGrain) {
    for (std::size_t i = chunk + 1; i < chunk + kGrain && i < kN; ++i) {
      EXPECT_LT(order[i - 1].load(), order[i].load()) << "i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelFor(pool, 10,
                  [](std::size_t i) {
                    if (i == 5) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolTest, PostRunsAllTasksFireAndForget) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Post([&count] { ++count; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace dctcpp
