// Shuffle workload tests.
#include <gtest/gtest.h>

#include "dctcpp/workload/shuffle.h"

namespace dctcpp {
namespace {

TEST(ShuffleTest, SmallShuffleCompletes) {
  ShuffleConfig config;
  config.protocol = Protocol::kDctcp;
  config.mappers = 3;
  config.reducers = 3;
  config.bytes_per_pair = 64 * 1024;
  config.time_limit = 60 * kSecond;
  const ShuffleResult r = RunShuffle(config);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.flows, 9);
  EXPECT_EQ(r.flow_fct_ms.count(), 9u);
  EXPECT_GT(r.goodput_mbps, 0.0);
  EXPECT_GT(r.completion_fairness, 0.3);
  EXPECT_LE(r.completion_fairness, 1.0 + 1e-12);
}

TEST(ShuffleTest, FlowsPerPairMultipliesConcurrency) {
  ShuffleConfig config;
  config.mappers = 2;
  config.reducers = 2;
  config.flows_per_pair = 4;
  config.bytes_per_pair = 64 * 1024;
  config.time_limit = 60 * kSecond;
  const ShuffleResult r = RunShuffle(config);
  EXPECT_EQ(r.flows, 16);
  EXPECT_FALSE(r.hit_time_limit);
}

TEST(ShuffleTest, AllProtocolsComplete) {
  for (Protocol p : {Protocol::kTcp, Protocol::kDctcp,
                     Protocol::kDctcpPlus}) {
    ShuffleConfig config;
    config.protocol = p;
    config.mappers = 3;
    config.reducers = 2;
    config.bytes_per_pair = 32 * 1024;
    config.min_rto = 10 * kMillisecond;
    config.time_limit = 60 * kSecond;
    const ShuffleResult r = RunShuffle(config);
    EXPECT_FALSE(r.hit_time_limit) << ToString(p);
    EXPECT_EQ(r.flow_fct_ms.count(), 6u) << ToString(p);
  }
}

TEST(ShuffleTest, DeterministicForSeed) {
  ShuffleConfig config;
  config.mappers = 3;
  config.reducers = 3;
  config.bytes_per_pair = 32 * 1024;
  config.time_limit = 60 * kSecond;
  const ShuffleResult a = RunShuffle(config);
  const ShuffleResult b = RunShuffle(config);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.goodput_mbps, b.goodput_mbps);
}

}  // namespace
}  // namespace dctcpp
