// TCP socket integration tests on a two-host network: handshake, data
// transfer, delayed ACKs, loss recovery (fast retransmit and RTO), timeout
// taxonomy, ECN negotiation, and teardown.
#include <gtest/gtest.h>

#include <memory>

#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/newreno.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {
namespace {

using namespace time_literals;

/// Two hosts on one switch. The switch->b port can be made shallow to
/// force drops on the a->b direction.
class TcpFixture : public ::testing::Test {
 protected:
  /// Builds a -> sw -> b. The a side runs at 10 Gbps so that the switch's
  /// 1 Gbps port toward b is a genuine bottleneck whose queue (with the
  /// given buffer and marking threshold) actually builds.
  void Build(Bytes ab_buffer = 128 * kKiB, Bytes ecn_threshold = 32 * kKiB) {
    net.reset();  // ports hold pinned scheduler events: drop before the sim
    sim = std::make_unique<Simulator>(1);
    net = std::make_unique<Network>(*sim);
    sw = &net->AddSwitch("sw");
    a = &net->AddHost("a");
    b = &net->AddHost("b");
    LinkConfig fast;  // ingress side
    fast.rate = DataRate::GigabitsPerSec(10);
    net->ConnectHost(*a, *sw, fast);
    LinkConfig to_b;  // 1 Gbps bottleneck
    to_b.buffer_bytes = ab_buffer;
    to_b.ecn_threshold = ecn_threshold;
    net->ConnectHost(*b, *sw, to_b, Network::NicConfig(LinkConfig{}));
    net->InstallRoutes();
  }

  /// Starts a server on b and connects a client from a; returns when the
  /// handshake completes (runs the sim until then).
  void Establish(NewRenoCc::Config cc_config = {},
                 TcpSocket::Config socket_config = {}) {
    listener = std::make_unique<TcpListener>(
        *b, PortNum{5000},
        [cc_config] { return std::make_unique<NewRenoCc>(cc_config); },
        socket_config, [this](TcpSocket::Ptr s) {
          server = std::move(s);
          server->set_on_data([this](Bytes n) { server_received += n; });
        });
    client = TcpSocket::Create(
        *a, std::make_unique<NewRenoCc>(cc_config), socket_config);
    client->set_on_data([this](Bytes n) { client_received += n; });
    bool connected = false;
    client->set_on_connected([&connected] { connected = true; });
    client->Connect(b->id(), 5000);
    sim->RunUntil(sim->Now() + 100 * kMillisecond);
    ASSERT_TRUE(connected);
    ASSERT_TRUE(client->Established());
  }

  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  Switch* sw = nullptr;
  Host* a = nullptr;
  Host* b = nullptr;
  std::unique_ptr<TcpListener> listener;
  TcpSocket::Ptr client;
  TcpSocket::Ptr server;
  Bytes server_received = 0;
  Bytes client_received = 0;
};

TEST_F(TcpFixture, HandshakeEstablishesBothEnds) {
  Build();
  Establish();
  EXPECT_TRUE(server != nullptr);
  EXPECT_TRUE(server->Established());
  EXPECT_EQ(client->remote(), b->id());
  EXPECT_EQ(server->remote(), a->id());
  EXPECT_EQ(server->remote_port(), client->local_port());
}

TEST_F(TcpFixture, SmallTransferDeliversExactly) {
  Build();
  Establish();
  client->Send(1000);
  sim->RunUntil(sim->Now() + 100_ms);
  EXPECT_EQ(server_received, 1000);
  EXPECT_EQ(client->StreamAcked(), 1000);
  EXPECT_EQ(client->FlightSize(), 0);
}

TEST_F(TcpFixture, LargeTransferAtLineRate) {
  Build();
  Establish();
  const Bytes size = 4 * kMiB;
  const Tick start = sim->Now();
  client->Send(size);
  sim->RunUntil(start + 2 * kSecond);
  EXPECT_EQ(server_received, size);
  const double mbps = GoodputMbps(size, sim->Now() - start);
  // The whole 4 MiB was acked; goodput bounded by the 1 Gbps link.
  (void)mbps;
  EXPECT_EQ(client->StreamAcked(), size);
}

TEST_F(TcpFixture, MultipleSendsCoalesce) {
  Build();
  Establish();
  for (int i = 0; i < 10; ++i) client->Send(100);
  sim->RunUntil(sim->Now() + 100_ms);
  EXPECT_EQ(server_received, 1000);
}

TEST_F(TcpFixture, BidirectionalTransfer) {
  Build();
  Establish();
  client->Send(5000);
  sim->RunUntil(sim->Now() + 50_ms);
  server->Send(7000);
  sim->RunUntil(sim->Now() + 100_ms);
  EXPECT_EQ(server_received, 5000);
  EXPECT_EQ(client_received, 7000);
}

TEST_F(TcpFixture, SlowStartGrowsWindow) {
  Build();
  Establish();
  const int initial = client->cwnd();
  client->Send(200 * 1460);
  sim->RunUntil(sim->Now() + 20_ms);
  EXPECT_GT(client->cwnd(), initial);
}

TEST_F(TcpFixture, DelayedAckTimerAcksLoneSegment) {
  Build();
  TcpSocket::Config config;
  config.delayed_ack_segments = 2;
  config.delayed_ack_timeout = 300_us;
  Establish({}, config);
  const Tick start = sim->Now();
  client->Send(100);  // single segment: ACK must come from the timer
  sim->RunUntil(start + 50_ms);
  EXPECT_EQ(client->StreamAcked(), 100);
  // The ACK could not have arrived before the delack timeout.
  EXPECT_GT(client->srtt(), 300_us);
}

TEST_F(TcpFixture, RecoversFromHeavyLossViaRetransmission) {
  Build(/*ab_buffer=*/3 * 1514, /*ecn_threshold=*/0);  // 3-packet buffer
  TcpSocket::Config config;
  config.rto.min_rto = 10_ms;
  Establish({}, config);
  const Bytes size = 300 * 1460;
  client->Send(size);
  sim->RunUntil(sim->Now() + 5 * kSecond);
  EXPECT_EQ(server_received, size);
  EXPECT_GT(client->stats().segments_retransmitted, 0u);
}

TEST_F(TcpFixture, FastRetransmitTriggersBeforeRto) {
  Build(/*ab_buffer=*/8 * 1514, /*ecn_threshold=*/0);
  TcpSocket::Config config;
  config.rto.min_rto = 200_ms;
  Establish({}, config);
  RecordingProbe probe;
  client->set_probe(&probe);
  client->Send(400 * 1460);
  sim->RunUntil(sim->Now() + 10 * kSecond);
  EXPECT_EQ(server_received, 400 * 1460);
  EXPECT_GT(probe.fast_retransmits(), 0u);
}

TEST_F(TcpFixture, CloseHandshakeBothSides) {
  Build();
  Establish();
  bool client_saw_close = false, server_saw_close = false;
  client->set_on_remote_close([&] { client_saw_close = true; });
  server->set_on_remote_close([&] {
    server_saw_close = true;
    server->Close();
  });
  client->Send(500);
  client->Close();
  sim->RunUntil(sim->Now() + 200_ms);
  EXPECT_EQ(server_received, 500);
  EXPECT_TRUE(server_saw_close);
  EXPECT_TRUE(client_saw_close);
  EXPECT_EQ(client->state(), TcpSocket::State::kClosed);
  EXPECT_EQ(server->state(), TcpSocket::State::kClosed);
}

TEST_F(TcpFixture, FinAfterQueuedDataOnly) {
  Build();
  Establish();
  bool closed_seen = false;
  server->set_on_remote_close([&] { closed_seen = true; });
  client->Send(100 * 1460);
  client->Close();
  sim->RunUntil(sim->Now() + 1 * kSecond);
  EXPECT_TRUE(closed_seen);
  EXPECT_EQ(server_received, 100 * 1460);  // FIN never preempts data
}

TEST_F(TcpFixture, EcnNegotiatedWhenBothCapable) {
  Build();
  NewRenoCc::Config cc;
  cc.ecn = true;
  Establish(cc);
  EXPECT_TRUE(client->EcnNegotiated());
  EXPECT_TRUE(server->EcnNegotiated());
}

TEST_F(TcpFixture, EcnOffWhenClientIncapable) {
  Build();
  NewRenoCc::Config cc;
  cc.ecn = false;
  Establish(cc);
  EXPECT_FALSE(client->EcnNegotiated());
  EXPECT_FALSE(server->EcnNegotiated());
}

TEST_F(TcpFixture, ClassicEcnReducesOncePerWindow) {
  Build(/*ab_buffer=*/128 * kKiB, /*ecn_threshold=*/10 * 1514);
  NewRenoCc::Config cc;
  cc.ecn = true;
  Establish(cc);
  client->Send(2 * kMiB);
  sim->RunUntil(sim->Now() + 1 * kSecond);
  EXPECT_EQ(server_received, 2 * kMiB);
  // Marked ACKs arrived and no loss was needed.
  EXPECT_GT(client->stats().ece_acks_received, 0u);
  EXPECT_EQ(client->stats().segments_retransmitted, 0u);
}

TEST_F(TcpFixture, RttEstimateTracksPathRtt) {
  Build();
  Establish();
  client->Send(50 * 1460);
  sim->RunUntil(sim->Now() + 100_ms);
  // Two hops each way, 10 us propagation each + serialization: srtt in
  // the tens-to-hundreds of microseconds.
  EXPECT_GT(client->srtt(), 20_us);
  EXPECT_LT(client->srtt(), 5_ms);
}

TEST_F(TcpFixture, TimeoutClassifiedFullWindowLossWhenAllLost) {
  Build();
  TcpSocket::Config config;
  config.rto.min_rto = 20_ms;
  Establish({}, config);
  RecordingProbe probe;
  client->set_probe(&probe);
  // Sever the path: reroute traffic for b into a black hole by pointing
  // the switch's route for b at a dead port... instead, emulate total loss
  // by detaching the server handler is not possible; use a zero-buffer
  // rebuild. Simplest: drop everything by overloading a tiny buffer with a
  // competing burst is flaky, so instead sever by unregistering the server
  // socket: every data packet then vanishes at the host demux (no ACKs at
  // all), which is exactly a full-window loss from the sender's view.
  server.reset();
  client->Send(10 * 1460);
  sim->RunUntil(sim->Now() + 300_ms);
  EXPECT_GT(probe.floss_timeouts(), 0u);
  EXPECT_EQ(probe.lack_timeouts(), 0u);
}

TEST_F(TcpFixture, StatsCountSegmentsAndAcks) {
  Build();
  Establish();
  client->Send(10 * 1460);
  sim->RunUntil(sim->Now() + 100_ms);
  EXPECT_GE(client->stats().segments_sent, 10u);
  EXPECT_GT(client->stats().acks_received, 0u);
  EXPECT_GT(server->stats().acks_sent, 0u);
}

TEST_F(TcpFixture, SynRetransmissionSurvivesLoss) {
  // Shallow buffer cannot drop a lone SYN; instead delay the listener:
  // create it only after the first SYN would have died at the host demux.
  Build();
  TcpSocket::Config config;
  config.rto.min_rto = 10_ms;
  client = TcpSocket::Create(
      *a, std::make_unique<NewRenoCc>(NewRenoCc::Config{}), config);
  bool connected = false;
  client->set_on_connected([&] { connected = true; });
  client->Connect(b->id(), 5000);  // no listener yet: SYN is unmatched
  sim->Schedule(5_ms, [&] {
    listener = std::make_unique<TcpListener>(
        *b, PortNum{5000},
        [] { return std::make_unique<NewRenoCc>(NewRenoCc::Config{}); },
        config, [this](TcpSocket::Ptr s) {
          server = std::move(s);
        });
  });
  sim->RunUntil(sim->Now() + 500_ms);
  EXPECT_TRUE(connected);  // the retransmitted SYN found the listener
  EXPECT_TRUE(server != nullptr && server->Established());
}

TEST_F(TcpFixture, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    Network net(sim);
    Switch& sw = net.AddSwitch("sw");
    Host& a = net.AddHost("a");
    Host& b = net.AddHost("b");
    LinkConfig lossy;
    lossy.buffer_bytes = 4 * 1514;
    net.ConnectHost(a, sw, LinkConfig{});
    net.ConnectHost(b, sw, lossy, Network::NicConfig(LinkConfig{}));
    net.InstallRoutes();
    Bytes received = 0;
    std::vector<TcpSocket::Ptr> accepted;
    TcpListener listener(
        b, 5000,
        [] { return std::make_unique<NewRenoCc>(NewRenoCc::Config{}); },
        TcpSocket::Config{},
        [&](TcpSocket::Ptr s) {
          s->set_on_data([&received](Bytes n) { received += n; });
          accepted.push_back(std::move(s));
        });
    TcpSocket client(a, std::make_unique<NewRenoCc>(NewRenoCc::Config{}),
                     TcpSocket::Config{});
    client.set_on_connected([&] { client.Send(200 * 1460); });
    client.Connect(b.id(), 5000);
    sim.RunUntil(5 * kSecond);
    return std::make_pair(received, sim.events_executed());
  };
  const auto r1 = run(42);
  const auto r2 = run(42);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace dctcpp
