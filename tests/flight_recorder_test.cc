// Flight recorder: golden-trace decoding, ring wraparound, and the
// zero-overhead-OFF contract (recording is opt-in via a Simulator-held
// pointer — TcpSocket carries no recorder state — and attaching a
// recorder must not perturb simulation behavior).

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/flight_recorder.h"
#include "dctcpp/workload/churn.h"

namespace dctcpp {
namespace {

TEST(FlightRecorderTest, GoldenTraceDecodesMergedAndSorted) {
  FlightRecorder shard0(8);
  FlightRecorder shard1(8);
  shard0.Record(FrEvent::kEnqueue, 0, 100, FrPortPayload(3, 77));
  shard0.Record(FrEvent::kMark, 0, 110, FrPortPayload(3, 78));
  shard1.Record(FrEvent::kDrop, 1, 120, FrPortPayload(9, 1234));
  shard0.Record(FrEvent::kAck, 0, 130, FrSocketPayload(2, 10001, 4096));
  shard1.Record(FrEvent::kRto, 1, 140, FrSocketPayload(5, 12000, 3));
  shard0.Record(FrEvent::kViolation, 0, 150, 1);

  const std::string path = testing::TempDir() + "/fr_golden.bin";
  ASSERT_TRUE(FlightRecorder::DumpTo(path, {&shard0, &shard1}));

  std::ostringstream out;
  ASSERT_TRUE(FlightRecorder::DecodeFile(path, out));
  EXPECT_EQ(out.str(),
            "# flight recorder dump: 2 ring(s), 6 resident / 6 total "
            "records\n"
            "t=100 shard=0 ENQ port=3 uid=77\n"
            "t=110 shard=0 MARK port=3 uid=78\n"
            "t=120 shard=1 DROP port=9 uid=1234\n"
            "t=130 shard=0 ACK host=2 port=10001 value=4096\n"
            "t=140 shard=1 RTO host=5 port=12000 value=3\n"
            "t=150 shard=0 VIOLATION count=1\n");
}

TEST(FlightRecorderTest, RingWrapsKeepingNewestRecords) {
  FlightRecorder fr(8);  // power of two: capacity is exactly 8
  ASSERT_EQ(fr.capacity(), 8u);
  for (std::uint64_t i = 0; i < 11; ++i) {
    fr.Record(FrEvent::kEnqueue, 0, static_cast<Tick>(1000 + i),
              FrPortPayload(1, i));
  }
  EXPECT_EQ(fr.total_recorded(), 11u);
  const std::vector<FrRecord> snap = fr.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest resident is record #3 (0..2 were overwritten), newest is #10.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].tick(), static_cast<Tick>(1000 + 3 + i));
    EXPECT_EQ(snap[i].payload & ((1ULL << 40) - 1), 3 + i);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder fr(1000);
  EXPECT_EQ(fr.capacity(), 1024u);
}

TEST(FlightRecorderTest, RecordingIsOffByDefault) {
  Simulator sim(/*seed=*/1);
  EXPECT_EQ(sim.flight_recorder(), nullptr);
}

// The zero-overhead contract, behaviorally: attaching recorders must not
// change a single bit of simulation state — no RNG draws, no event
// reordering, no counter drift. A churn soak with recorders on every
// shard must fingerprint identical to the same soak with recording off.
TEST(FlightRecorderTest, AttachedRecorderDoesNotPerturbSimulation) {
  ChurnConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.shards = 2;
  cfg.seed = 11;
  cfg.target_live_flows = 120;
  cfg.mean_lifetime = 2 * kMillisecond;
  cfg.bytes_per_flow = 4 * kKiB;
  cfg.prewarm = 1 * kMillisecond;
  cfg.link.impairment.random_loss = 0.005;  // generate DROP/RTO traffic

  ChurnWorkload off(cfg);
  off.Start();
  off.RunTo(5 * kMillisecond);
  const std::uint64_t want = off.Fingerprint();

  ChurnWorkload on(cfg);
  std::vector<std::unique_ptr<FlightRecorder>> recorders;
  std::vector<const FlightRecorder*> rings;
  for (int i = 0; i < cfg.shards; ++i) {
    recorders.push_back(std::make_unique<FlightRecorder>(1 << 14));
    on.psim().shard(i).set_flight_recorder(recorders.back().get());
    rings.push_back(recorders.back().get());
  }
  on.Start();
  on.RunTo(5 * kMillisecond);
  EXPECT_EQ(on.Fingerprint(), want);

  // The run actually recorded datapath history, and it decodes.
  std::uint64_t total = 0;
  for (const FlightRecorder* r : rings) total += r->total_recorded();
  EXPECT_GT(total, 1000u);

  const std::string path = testing::TempDir() + "/fr_churn.bin";
  ASSERT_TRUE(FlightRecorder::DumpTo(path, rings));
  std::ostringstream out;
  ASSERT_TRUE(FlightRecorder::DecodeFile(path, out));
  EXPECT_NE(out.str().find(" ENQ "), std::string::npos);
  EXPECT_NE(out.str().find(" ACK "), std::string::npos);
  EXPECT_NE(out.str().find(" DROP "), std::string::npos);
}

}  // namespace
}  // namespace dctcpp
