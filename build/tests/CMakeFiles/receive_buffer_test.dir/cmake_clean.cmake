file(REMOVE_RECURSE
  "CMakeFiles/receive_buffer_test.dir/receive_buffer_test.cc.o"
  "CMakeFiles/receive_buffer_test.dir/receive_buffer_test.cc.o.d"
  "receive_buffer_test"
  "receive_buffer_test.pdb"
  "receive_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receive_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
