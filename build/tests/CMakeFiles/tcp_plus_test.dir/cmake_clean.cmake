file(REMOVE_RECURSE
  "CMakeFiles/tcp_plus_test.dir/tcp_plus_test.cc.o"
  "CMakeFiles/tcp_plus_test.dir/tcp_plus_test.cc.o.d"
  "tcp_plus_test"
  "tcp_plus_test.pdb"
  "tcp_plus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_plus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
