file(REMOVE_RECURSE
  "CMakeFiles/slow_time_test.dir/slow_time_test.cc.o"
  "CMakeFiles/slow_time_test.dir/slow_time_test.cc.o.d"
  "slow_time_test"
  "slow_time_test.pdb"
  "slow_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slow_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
