# Empty compiler generated dependencies file for slow_time_test.
# This may be replaced when dependencies are built.
