file(REMOVE_RECURSE
  "CMakeFiles/dctcp_plus_test.dir/dctcp_plus_test.cc.o"
  "CMakeFiles/dctcp_plus_test.dir/dctcp_plus_test.cc.o.d"
  "dctcp_plus_test"
  "dctcp_plus_test.pdb"
  "dctcp_plus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcp_plus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
