# Empty dependencies file for dctcp_plus_test.
# This may be replaced when dependencies are built.
