# Empty dependencies file for transfer_property_test.
# This may be replaced when dependencies are built.
