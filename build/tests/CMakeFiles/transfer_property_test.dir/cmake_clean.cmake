file(REMOVE_RECURSE
  "CMakeFiles/transfer_property_test.dir/transfer_property_test.cc.o"
  "CMakeFiles/transfer_property_test.dir/transfer_property_test.cc.o.d"
  "transfer_property_test"
  "transfer_property_test.pdb"
  "transfer_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
