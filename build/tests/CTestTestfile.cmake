# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/seq_test[1]_include.cmake")
include("/root/repo/build/tests/receive_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/rto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/dctcp_test[1]_include.cmake")
include("/root/repo/build/tests/slow_time_test[1]_include.cmake")
include("/root/repo/build/tests/dctcp_plus_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_plus_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sack_test[1]_include.cmake")
include("/root/repo/build/tests/d2tcp_test[1]_include.cmake")
include("/root/repo/build/tests/red_test[1]_include.cmake")
include("/root/repo/build/tests/shuffle_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_property_test[1]_include.cmake")
