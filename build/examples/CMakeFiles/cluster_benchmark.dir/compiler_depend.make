# Empty compiler generated dependencies file for cluster_benchmark.
# This may be replaced when dependencies are built.
