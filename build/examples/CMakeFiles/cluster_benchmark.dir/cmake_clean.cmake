file(REMOVE_RECURSE
  "CMakeFiles/cluster_benchmark.dir/cluster_benchmark.cpp.o"
  "CMakeFiles/cluster_benchmark.dir/cluster_benchmark.cpp.o.d"
  "cluster_benchmark"
  "cluster_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
