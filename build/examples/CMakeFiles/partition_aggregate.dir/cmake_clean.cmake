file(REMOVE_RECURSE
  "CMakeFiles/partition_aggregate.dir/partition_aggregate.cpp.o"
  "CMakeFiles/partition_aggregate.dir/partition_aggregate.cpp.o.d"
  "partition_aggregate"
  "partition_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
