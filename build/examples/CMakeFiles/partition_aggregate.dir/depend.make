# Empty dependencies file for partition_aggregate.
# This may be replaced when dependencies are built.
