file(REMOVE_RECURSE
  "CMakeFiles/queue_dynamics.dir/queue_dynamics.cpp.o"
  "CMakeFiles/queue_dynamics.dir/queue_dynamics.cpp.o.d"
  "queue_dynamics"
  "queue_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
