# Empty compiler generated dependencies file for queue_dynamics.
# This may be replaced when dependencies are built.
