file(REMOVE_RECURSE
  "libdctcpp_sim.a"
)
