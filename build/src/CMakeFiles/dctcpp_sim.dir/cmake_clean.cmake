file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_sim.dir/dctcpp/sim/scheduler.cc.o"
  "CMakeFiles/dctcpp_sim.dir/dctcpp/sim/scheduler.cc.o.d"
  "CMakeFiles/dctcpp_sim.dir/dctcpp/sim/simulator.cc.o"
  "CMakeFiles/dctcpp_sim.dir/dctcpp/sim/simulator.cc.o.d"
  "CMakeFiles/dctcpp_sim.dir/dctcpp/sim/timer.cc.o"
  "CMakeFiles/dctcpp_sim.dir/dctcpp/sim/timer.cc.o.d"
  "libdctcpp_sim.a"
  "libdctcpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
