
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dctcpp/sim/scheduler.cc" "src/CMakeFiles/dctcpp_sim.dir/dctcpp/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/dctcpp_sim.dir/dctcpp/sim/scheduler.cc.o.d"
  "/root/repo/src/dctcpp/sim/simulator.cc" "src/CMakeFiles/dctcpp_sim.dir/dctcpp/sim/simulator.cc.o" "gcc" "src/CMakeFiles/dctcpp_sim.dir/dctcpp/sim/simulator.cc.o.d"
  "/root/repo/src/dctcpp/sim/timer.cc" "src/CMakeFiles/dctcpp_sim.dir/dctcpp/sim/timer.cc.o" "gcc" "src/CMakeFiles/dctcpp_sim.dir/dctcpp/sim/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dctcpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
