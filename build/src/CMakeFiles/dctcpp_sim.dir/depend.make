# Empty dependencies file for dctcpp_sim.
# This may be replaced when dependencies are built.
