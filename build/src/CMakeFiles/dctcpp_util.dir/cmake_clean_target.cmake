file(REMOVE_RECURSE
  "libdctcpp_util.a"
)
