
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dctcpp/util/flags.cc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/flags.cc.o" "gcc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/flags.cc.o.d"
  "/root/repo/src/dctcpp/util/log.cc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/log.cc.o" "gcc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/log.cc.o.d"
  "/root/repo/src/dctcpp/util/rng.cc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/rng.cc.o" "gcc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/rng.cc.o.d"
  "/root/repo/src/dctcpp/util/thread_pool.cc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/dctcpp_util.dir/dctcpp/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
