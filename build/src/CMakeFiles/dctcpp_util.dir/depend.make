# Empty dependencies file for dctcpp_util.
# This may be replaced when dependencies are built.
