file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/flags.cc.o"
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/flags.cc.o.d"
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/log.cc.o"
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/log.cc.o.d"
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/rng.cc.o"
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/rng.cc.o.d"
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/thread_pool.cc.o"
  "CMakeFiles/dctcpp_util.dir/dctcpp/util/thread_pool.cc.o.d"
  "libdctcpp_util.a"
  "libdctcpp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
