file(REMOVE_RECURSE
  "libdctcpp_core.a"
)
