file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/d2tcp.cc.o"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/d2tcp.cc.o.d"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/dctcp_plus.cc.o"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/dctcp_plus.cc.o.d"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/protocol.cc.o"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/protocol.cc.o.d"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/slow_time.cc.o"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/slow_time.cc.o.d"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/tcp_plus.cc.o"
  "CMakeFiles/dctcpp_core.dir/dctcpp/core/tcp_plus.cc.o.d"
  "libdctcpp_core.a"
  "libdctcpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
