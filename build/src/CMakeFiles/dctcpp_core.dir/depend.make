# Empty dependencies file for dctcpp_core.
# This may be replaced when dependencies are built.
