# Empty dependencies file for dctcpp_tcp.
# This may be replaced when dependencies are built.
