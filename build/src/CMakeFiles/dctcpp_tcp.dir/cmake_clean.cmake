file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/newreno.cc.o"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/newreno.cc.o.d"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/probe.cc.o"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/probe.cc.o.d"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/receive_buffer.cc.o"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/receive_buffer.cc.o.d"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/rto.cc.o"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/rto.cc.o.d"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/socket.cc.o"
  "CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/socket.cc.o.d"
  "libdctcpp_tcp.a"
  "libdctcpp_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
