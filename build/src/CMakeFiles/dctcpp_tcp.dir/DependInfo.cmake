
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dctcpp/tcp/newreno.cc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/newreno.cc.o" "gcc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/newreno.cc.o.d"
  "/root/repo/src/dctcpp/tcp/probe.cc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/probe.cc.o" "gcc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/probe.cc.o.d"
  "/root/repo/src/dctcpp/tcp/receive_buffer.cc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/receive_buffer.cc.o" "gcc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/receive_buffer.cc.o.d"
  "/root/repo/src/dctcpp/tcp/rto.cc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/rto.cc.o" "gcc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/rto.cc.o.d"
  "/root/repo/src/dctcpp/tcp/socket.cc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/socket.cc.o" "gcc" "src/CMakeFiles/dctcpp_tcp.dir/dctcpp/tcp/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dctcpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
