file(REMOVE_RECURSE
  "libdctcpp_tcp.a"
)
