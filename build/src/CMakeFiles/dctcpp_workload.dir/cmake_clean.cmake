file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/apps.cc.o"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/apps.cc.o.d"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/background.cc.o"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/background.cc.o.d"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/benchmark_traffic.cc.o"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/benchmark_traffic.cc.o.d"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/deadline_incast.cc.o"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/deadline_incast.cc.o.d"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/experiment.cc.o"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/experiment.cc.o.d"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/incast.cc.o"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/incast.cc.o.d"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/shuffle.cc.o"
  "CMakeFiles/dctcpp_workload.dir/dctcpp/workload/shuffle.cc.o.d"
  "libdctcpp_workload.a"
  "libdctcpp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
