# Empty dependencies file for dctcpp_workload.
# This may be replaced when dependencies are built.
