file(REMOVE_RECURSE
  "libdctcpp_workload.a"
)
