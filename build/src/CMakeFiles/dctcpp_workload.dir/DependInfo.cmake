
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dctcpp/workload/apps.cc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/apps.cc.o" "gcc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/apps.cc.o.d"
  "/root/repo/src/dctcpp/workload/background.cc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/background.cc.o" "gcc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/background.cc.o.d"
  "/root/repo/src/dctcpp/workload/benchmark_traffic.cc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/benchmark_traffic.cc.o" "gcc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/benchmark_traffic.cc.o.d"
  "/root/repo/src/dctcpp/workload/deadline_incast.cc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/deadline_incast.cc.o" "gcc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/deadline_incast.cc.o.d"
  "/root/repo/src/dctcpp/workload/experiment.cc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/experiment.cc.o" "gcc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/experiment.cc.o.d"
  "/root/repo/src/dctcpp/workload/incast.cc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/incast.cc.o" "gcc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/incast.cc.o.d"
  "/root/repo/src/dctcpp/workload/shuffle.cc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/shuffle.cc.o" "gcc" "src/CMakeFiles/dctcpp_workload.dir/dctcpp/workload/shuffle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dctcpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_dctcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
