file(REMOVE_RECURSE
  "libdctcpp_dctcp.a"
)
