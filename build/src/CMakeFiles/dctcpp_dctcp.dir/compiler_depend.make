# Empty compiler generated dependencies file for dctcpp_dctcp.
# This may be replaced when dependencies are built.
