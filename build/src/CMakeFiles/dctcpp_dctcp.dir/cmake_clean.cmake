file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_dctcp.dir/dctcpp/dctcp/dctcp.cc.o"
  "CMakeFiles/dctcpp_dctcp.dir/dctcpp/dctcp/dctcp.cc.o.d"
  "libdctcpp_dctcp.a"
  "libdctcpp_dctcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_dctcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
