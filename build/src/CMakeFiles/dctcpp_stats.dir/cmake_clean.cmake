file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/cdf.cc.o"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/cdf.cc.o.d"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/csv.cc.o"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/csv.cc.o.d"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/histogram.cc.o"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/histogram.cc.o.d"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/summary.cc.o"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/summary.cc.o.d"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/table.cc.o"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/table.cc.o.d"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/time_series.cc.o"
  "CMakeFiles/dctcpp_stats.dir/dctcpp/stats/time_series.cc.o.d"
  "libdctcpp_stats.a"
  "libdctcpp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
