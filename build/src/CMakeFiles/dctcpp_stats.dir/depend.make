# Empty dependencies file for dctcpp_stats.
# This may be replaced when dependencies are built.
