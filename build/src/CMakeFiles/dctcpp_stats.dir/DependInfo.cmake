
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dctcpp/stats/cdf.cc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/cdf.cc.o" "gcc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/cdf.cc.o.d"
  "/root/repo/src/dctcpp/stats/csv.cc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/csv.cc.o" "gcc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/csv.cc.o.d"
  "/root/repo/src/dctcpp/stats/histogram.cc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/histogram.cc.o" "gcc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/histogram.cc.o.d"
  "/root/repo/src/dctcpp/stats/summary.cc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/summary.cc.o" "gcc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/summary.cc.o.d"
  "/root/repo/src/dctcpp/stats/table.cc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/table.cc.o" "gcc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/table.cc.o.d"
  "/root/repo/src/dctcpp/stats/time_series.cc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/time_series.cc.o" "gcc" "src/CMakeFiles/dctcpp_stats.dir/dctcpp/stats/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dctcpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
