file(REMOVE_RECURSE
  "libdctcpp_stats.a"
)
