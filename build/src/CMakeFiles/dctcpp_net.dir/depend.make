# Empty dependencies file for dctcpp_net.
# This may be replaced when dependencies are built.
