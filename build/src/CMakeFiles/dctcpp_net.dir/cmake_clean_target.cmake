file(REMOVE_RECURSE
  "libdctcpp_net.a"
)
