file(REMOVE_RECURSE
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/host.cc.o"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/host.cc.o.d"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/link.cc.o"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/link.cc.o.d"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/packet.cc.o"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/packet.cc.o.d"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/queue.cc.o"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/queue.cc.o.d"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/switch.cc.o"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/switch.cc.o.d"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/topology.cc.o"
  "CMakeFiles/dctcpp_net.dir/dctcpp/net/topology.cc.o.d"
  "libdctcpp_net.a"
  "libdctcpp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dctcpp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
