
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dctcpp/net/host.cc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/host.cc.o" "gcc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/host.cc.o.d"
  "/root/repo/src/dctcpp/net/link.cc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/link.cc.o" "gcc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/link.cc.o.d"
  "/root/repo/src/dctcpp/net/packet.cc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/packet.cc.o" "gcc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/packet.cc.o.d"
  "/root/repo/src/dctcpp/net/queue.cc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/queue.cc.o" "gcc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/queue.cc.o.d"
  "/root/repo/src/dctcpp/net/switch.cc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/switch.cc.o" "gcc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/switch.cc.o.d"
  "/root/repo/src/dctcpp/net/topology.cc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/topology.cc.o" "gcc" "src/CMakeFiles/dctcpp_net.dir/dctcpp/net/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dctcpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
