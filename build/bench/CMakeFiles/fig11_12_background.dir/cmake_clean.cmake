file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_background.dir/fig11_12_background.cc.o"
  "CMakeFiles/fig11_12_background.dir/fig11_12_background.cc.o.d"
  "fig11_12_background"
  "fig11_12_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
