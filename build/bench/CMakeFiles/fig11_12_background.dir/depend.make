# Empty dependencies file for fig11_12_background.
# This may be replaced when dependencies are built.
