file(REMOVE_RECURSE
  "CMakeFiles/fig02_cwnd_distribution.dir/fig02_cwnd_distribution.cc.o"
  "CMakeFiles/fig02_cwnd_distribution.dir/fig02_cwnd_distribution.cc.o.d"
  "fig02_cwnd_distribution"
  "fig02_cwnd_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_cwnd_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
