# Empty dependencies file for fig02_cwnd_distribution.
# This may be replaced when dependencies are built.
