
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig02_cwnd_distribution.cc" "bench/CMakeFiles/fig02_cwnd_distribution.dir/fig02_cwnd_distribution.cc.o" "gcc" "bench/CMakeFiles/fig02_cwnd_distribution.dir/fig02_cwnd_distribution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dctcpp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_dctcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dctcpp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
