file(REMOVE_RECURSE
  "CMakeFiles/fig07_full_plus.dir/fig07_full_plus.cc.o"
  "CMakeFiles/fig07_full_plus.dir/fig07_full_plus.cc.o.d"
  "fig07_full_plus"
  "fig07_full_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_full_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
