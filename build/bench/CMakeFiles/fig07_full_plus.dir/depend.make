# Empty dependencies file for fig07_full_plus.
# This may be replaced when dependencies are built.
