# Empty dependencies file for fig13_benchmark_traffic.
# This may be replaced when dependencies are built.
