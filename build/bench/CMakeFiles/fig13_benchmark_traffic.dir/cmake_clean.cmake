file(REMOVE_RECURSE
  "CMakeFiles/fig13_benchmark_traffic.dir/fig13_benchmark_traffic.cc.o"
  "CMakeFiles/fig13_benchmark_traffic.dir/fig13_benchmark_traffic.cc.o.d"
  "fig13_benchmark_traffic"
  "fig13_benchmark_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_benchmark_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
