file(REMOVE_RECURSE
  "CMakeFiles/ext_shuffle.dir/ext_shuffle.cc.o"
  "CMakeFiles/ext_shuffle.dir/ext_shuffle.cc.o.d"
  "ext_shuffle"
  "ext_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
