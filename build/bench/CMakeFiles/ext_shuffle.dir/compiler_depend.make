# Empty compiler generated dependencies file for ext_shuffle.
# This may be replaced when dependencies are built.
