# Empty dependencies file for ext_d2tcp_deadlines.
# This may be replaced when dependencies are built.
