file(REMOVE_RECURSE
  "CMakeFiles/ext_d2tcp_deadlines.dir/ext_d2tcp_deadlines.cc.o"
  "CMakeFiles/ext_d2tcp_deadlines.dir/ext_d2tcp_deadlines.cc.o.d"
  "ext_d2tcp_deadlines"
  "ext_d2tcp_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_d2tcp_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
