file(REMOVE_RECURSE
  "CMakeFiles/ext_tcp_plus.dir/ext_tcp_plus.cc.o"
  "CMakeFiles/ext_tcp_plus.dir/ext_tcp_plus.cc.o.d"
  "ext_tcp_plus"
  "ext_tcp_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tcp_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
