# Empty dependencies file for ext_tcp_plus.
# This may be replaced when dependencies are built.
