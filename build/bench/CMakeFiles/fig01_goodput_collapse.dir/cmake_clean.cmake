file(REMOVE_RECURSE
  "CMakeFiles/fig01_goodput_collapse.dir/fig01_goodput_collapse.cc.o"
  "CMakeFiles/fig01_goodput_collapse.dir/fig01_goodput_collapse.cc.o.d"
  "fig01_goodput_collapse"
  "fig01_goodput_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_goodput_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
