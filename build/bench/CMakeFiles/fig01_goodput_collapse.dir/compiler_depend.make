# Empty compiler generated dependencies file for fig01_goodput_collapse.
# This may be replaced when dependencies are built.
