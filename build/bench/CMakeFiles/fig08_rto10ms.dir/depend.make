# Empty dependencies file for fig08_rto10ms.
# This may be replaced when dependencies are built.
