file(REMOVE_RECURSE
  "CMakeFiles/fig08_rto10ms.dir/fig08_rto10ms.cc.o"
  "CMakeFiles/fig08_rto10ms.dir/fig08_rto10ms.cc.o.d"
  "fig08_rto10ms"
  "fig08_rto10ms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rto10ms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
