# Empty compiler generated dependencies file for sack_ablation.
# This may be replaced when dependencies are built.
