file(REMOVE_RECURSE
  "CMakeFiles/sack_ablation.dir/sack_ablation.cc.o"
  "CMakeFiles/sack_ablation.dir/sack_ablation.cc.o.d"
  "sack_ablation"
  "sack_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sack_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
