file(REMOVE_RECURSE
  "CMakeFiles/fig06_partial_plus.dir/fig06_partial_plus.cc.o"
  "CMakeFiles/fig06_partial_plus.dir/fig06_partial_plus.cc.o.d"
  "fig06_partial_plus"
  "fig06_partial_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_partial_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
