# Empty dependencies file for table1_timeout_taxonomy.
# This may be replaced when dependencies are built.
