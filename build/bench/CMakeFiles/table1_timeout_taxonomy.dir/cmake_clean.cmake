file(REMOVE_RECURSE
  "CMakeFiles/table1_timeout_taxonomy.dir/table1_timeout_taxonomy.cc.o"
  "CMakeFiles/table1_timeout_taxonomy.dir/table1_timeout_taxonomy.cc.o.d"
  "table1_timeout_taxonomy"
  "table1_timeout_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_timeout_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
