file(REMOVE_RECURSE
  "CMakeFiles/ext_admission_control.dir/ext_admission_control.cc.o"
  "CMakeFiles/ext_admission_control.dir/ext_admission_control.cc.o.d"
  "ext_admission_control"
  "ext_admission_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_admission_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
