# Empty compiler generated dependencies file for ext_admission_control.
# This may be replaced when dependencies are built.
