// Flight recorder: a bounded ring of fixed-size binary event records, so
// the moments before a long-soak invariant violation are reconstructable
// without rerunning hours of simulation.
//
// Every record is 16 bytes — a meta word packing (type, shard, 48-bit
// tick) and a type-specific payload word — appended with two stores and
// one masked increment: no allocation, no branching beyond the hook
// site's null check. Recording is OFF by default (Simulator holds a null
// FlightRecorder*), so the hot path cost when disabled is one pointer
// compare, and the recorder adds zero bytes to TcpSocket (the pointer
// lives on the Simulator) — the same zero-overhead-OFF contract as the
// PR 7 profiler.
//
// Sharded runs attach one recorder per shard Simulator (no locking; a
// shard only records from its own thread). DumpTo writes all attached
// rings into one versioned binary file; tools/fr_decode (or DecodeFile
// here) renders it human-readable, merge-sorted by (tick, shard, ring
// order). The recorder is observational only and is deliberately NOT part
// of checkpoints: a restored run regenerates its own recent-event window.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dctcpp/util/time.h"

namespace dctcpp {

enum class FrEvent : std::uint8_t {
  kEnqueue = 1,    ///< packet accepted by an egress queue
  kDrop = 2,       ///< packet dropped (queue overflow or impairment)
  kMark = 3,       ///< CE mark applied at an egress queue
  kAck = 4,        ///< cumulative ACK processed by a sender
  kRto = 5,        ///< retransmission timeout fired
  kViolation = 6,  ///< NetworkInvariants::Violate
};

const char* ToString(FrEvent e);

/// One 16-byte record. meta = type:8 | shard:8 | tick:48.
struct FrRecord {
  std::uint64_t meta = 0;
  std::uint64_t payload = 0;

  FrEvent type() const { return static_cast<FrEvent>(meta >> 56); }
  int shard() const { return static_cast<int>((meta >> 48) & 0xff); }
  Tick tick() const { return static_cast<Tick>(meta & ((Tick(1) << 48) - 1)); }
};
static_assert(sizeof(FrRecord) == 16, "flight records are 16 bytes");

// Payload packing helpers, shared by the hook sites and the decoder.
// Port events: port_gid:24 | uid:40. Socket events: host:16 | port:16 |
// value:32 (ack raw / backoff shift). Violations: total violation count.
inline std::uint64_t FrPortPayload(std::uint64_t port_gid, std::uint64_t uid) {
  return (port_gid << 40) | (uid & ((std::uint64_t(1) << 40) - 1));
}
inline std::uint64_t FrSocketPayload(std::uint32_t host, std::uint32_t port,
                                     std::uint32_t value) {
  return (static_cast<std::uint64_t>(host & 0xffff) << 48) |
         (static_cast<std::uint64_t>(port & 0xffff) << 32) | value;
}

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two records (default ~1M:
  /// 16 MB, a few hundred ms of datapath history at soak rates).
  explicit FlightRecorder(std::size_t capacity = std::size_t(1) << 20);

  void Record(FrEvent type, int shard, Tick tick, std::uint64_t payload) {
    FrRecord& r = ring_[head_ & mask_];
    r.meta = (static_cast<std::uint64_t>(type) << 56) |
             (static_cast<std::uint64_t>(shard & 0xff) << 48) |
             (static_cast<std::uint64_t>(tick) & ((std::uint64_t(1) << 48) - 1));
    r.payload = payload;
    ++head_;
  }

  /// Records ever written (monotonic; min(head, capacity) are resident).
  std::uint64_t total_recorded() const { return head_; }
  std::size_t capacity() const { return ring_.size(); }

  /// Resident records oldest-first (decoded order within one ring).
  std::vector<FrRecord> Snapshot() const;

  /// Writes the given recorders' resident records into one binary dump
  /// file (format: magic, version, ring count, per ring a record count +
  /// raw records). Returns false on I/O failure.
  static bool DumpTo(const std::string& path,
                     const std::vector<const FlightRecorder*>& rings);

  /// Decodes a DumpTo file into human-readable lines, merge-sorted by
  /// (tick, shard). Returns false on open/parse failure. Shared by
  /// tools/fr_decode and the tests' golden-trace comparison.
  static bool DecodeFile(const std::string& path, std::ostream& out);

  /// Renders one record as the decoder's canonical line.
  static void DecodeRecord(const FrRecord& r, std::ostream& out);

  static constexpr std::uint32_t kDumpMagic = 0x44465231;  // "DFR1"

 private:
  std::vector<FrRecord> ring_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;
};

}  // namespace dctcpp
