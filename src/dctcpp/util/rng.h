// Deterministic random number generation.
//
// Every simulation run owns exactly one `Rng` seeded from the run
// configuration, so runs are bit-reproducible. The generator is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64; it is fast,
// has 256 bits of state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "dctcpp/util/assert.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

/// SplitMix64 step; used for seeding and as a cheap hash.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcd) { Seed(seed); }

  /// Re-seeds the full 256-bit state from a 64-bit value via SplitMix64.
  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  /// Raw 64 random bits.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    DCTCPP_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(Next());  // full range
    // Lemire's unbiased multiply-shift rejection method.
    std::uint64_t x = Next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * span;
    auto l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t t = (0 - span) % span;
      while (l < t) {
        x = Next();
        m = static_cast<unsigned __int128>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform duration in [0, upper] inclusive (paper's `random(unit)`).
  Tick UniformTick(Tick upper) {
    DCTCPP_ASSERT(upper >= 0);
    return UniformInt(0, upper);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-flow streams).
  Rng Fork() { return Rng(Next()); }

  /// The raw 256-bit generator state, for checkpoint/restore. A restored
  /// generator continues the exact draw sequence of the saved one.
  void SaveState(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  void LoadState(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) s_[i] = in[i];
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// A piecewise-linear empirical CDF over values, sampled by inversion.
/// Used to model the production-cluster flow-size distributions that the
/// paper's benchmark traffic draws from.
class EmpiricalCdf {
 public:
  struct Point {
    double value;        ///< sample value (e.g. flow size in bytes)
    double cumulative;   ///< CDF at that value, in [0, 1], nondecreasing
  };

  /// `points` must be nonempty, sorted by cumulative, ending at 1.0.
  explicit EmpiricalCdf(std::vector<Point> points);

  /// Draws one value by inverse-transform sampling.
  double Sample(Rng& rng) const;

  /// Mean of the piecewise-linear distribution (for load calculations).
  double Mean() const;

 private:
  std::vector<Point> points_;
};

}  // namespace dctcpp
