// Disjoint-interval sets over linear (64-bit) byte offsets — the shared
// representation of the receiver's out-of-order reassembly scoreboard and
// the sender's SACK scoreboard.
//
// Two implementations with the same API:
//
//  - IntervalSet: a sorted flat vector of [start, end) ranges. Lookups are
//    a binary search over contiguous memory and mutation is a memmove;
//    with the handful of live ranges a TCP scoreboard holds this beats the
//    node-per-range std::map it replaced (one allocation + pointer chase
//    per out-of-order segment) by a wide margin.
//  - MapIntervalSet: the original std::map<start, end> formulation, kept as
//    the reference oracle for the differential tests.
//
// Both coalesce overlapping *and* abutting ranges, so a set never holds
// [a, b) and [b, c) separately. All operations keep the ranges disjoint,
// non-empty, and sorted by start.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "dctcpp/util/assert.h"

namespace dctcpp {

/// One [start, end) range; end is exclusive and start < end always holds
/// for ranges stored in a set.
struct Interval {
  std::int64_t start = 0;
  std::int64_t end = 0;

  bool operator==(const Interval&) const = default;
};

/// Sorted flat vector of disjoint intervals.
class IntervalSet {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }

  /// The lowest range. Precondition: !empty().
  const Interval& front() const {
    DCTCPP_DASSERT(!v_.empty());
    return v_.front();
  }

  /// Removes the lowest range. Precondition: !empty().
  void PopFront() {
    DCTCPP_DASSERT(!v_.empty());
    v_.erase(v_.begin());
  }

  /// Inserts [start, end), coalescing with any overlapping or abutting
  /// ranges. Empty input ranges are ignored.
  void Add(std::int64_t start, std::int64_t end) {
    if (end <= start) return;
    // First range with start >= `start`.
    auto it = std::lower_bound(
        v_.begin(), v_.end(), start,
        [](const Interval& iv, std::int64_t x) { return iv.start < x; });
    if (it != v_.begin() && std::prev(it)->end >= start) {
      --it;  // overlaps/abuts the previous range: extend it instead
      start = it->start;
    }
    std::int64_t merged_end = end;
    auto last = it;
    while (last != v_.end() && last->start <= merged_end) {
      merged_end = std::max(merged_end, last->end);
      ++last;
    }
    if (it == last) {
      v_.insert(it, Interval{start, merged_end});
    } else {
      it->start = start;
      it->end = merged_end;
      v_.erase(it + 1, last);
    }
  }

  /// Removes all coverage below `offset`: ranges ending at or before it are
  /// dropped and a range straddling it is truncated to start there.
  void TrimBelow(std::int64_t offset) {
    // Ends are strictly increasing (disjoint + sorted), so the drop prefix
    // is found with one binary search on end.
    auto keep = std::lower_bound(
        v_.begin(), v_.end(), offset,
        [](const Interval& iv, std::int64_t x) { return iv.end <= x; });
    v_.erase(v_.begin(), keep);
    if (!v_.empty() && v_.front().start < offset) v_.front().start = offset;
  }

  bool Contains(std::int64_t x) const { return CoveringEnd(x) >= 0; }

  /// End of the range covering `x`, or -1 when `x` is uncovered.
  std::int64_t CoveringEnd(std::int64_t x) const {
    // Last range with start <= x.
    auto it = std::upper_bound(
        v_.begin(), v_.end(), x,
        [](std::int64_t v, const Interval& iv) { return v < iv.start; });
    if (it == v_.begin()) return -1;
    --it;
    return it->end > x ? it->end : -1;
  }

  /// Smallest range start strictly greater than `x`, or -1 when none.
  std::int64_t NextStartAfter(std::int64_t x) const {
    auto it = std::upper_bound(
        v_.begin(), v_.end(), x,
        [](std::int64_t v, const Interval& iv) { return v < iv.start; });
    return it == v_.end() ? -1 : it->start;
  }

  std::int64_t TotalBytes() const {
    std::int64_t total = 0;
    for (const Interval& iv : v_) total += iv.end - iv.start;
    return total;
  }

  /// Calls `fn(interval)` lowest-first; stops early when fn returns false.
  template <typename F>
  void ForEach(F&& fn) const {
    for (const Interval& iv : v_) {
      if (!fn(iv)) return;
    }
  }

  const std::vector<Interval>& intervals() const { return v_; }

 private:
  std::vector<Interval> v_;
};

/// Reference implementation over std::map<start, end> — the scoreboard
/// representation this repo used before the flat vector. API-identical to
/// IntervalSet; the differential tests replay random workloads through
/// both and assert equal observable state.
class MapIntervalSet {
 public:
  bool empty() const { return m_.empty(); }
  std::size_t size() const { return m_.size(); }
  void clear() { m_.clear(); }

  Interval front() const {
    DCTCPP_DASSERT(!m_.empty());
    return Interval{m_.begin()->first, m_.begin()->second};
  }

  void PopFront() {
    DCTCPP_DASSERT(!m_.empty());
    m_.erase(m_.begin());
  }

  void Add(std::int64_t start, std::int64_t end) {
    if (end <= start) return;
    auto it = m_.upper_bound(start);
    if (it != m_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        it = prev;
      }
    }
    std::int64_t merged_end = end;
    while (it != m_.end() && it->first <= merged_end) {
      merged_end = std::max(merged_end, it->second);
      it = m_.erase(it);
    }
    m_[start] = merged_end;
  }

  void TrimBelow(std::int64_t offset) {
    while (!m_.empty() && m_.begin()->second <= offset) {
      m_.erase(m_.begin());
    }
    if (!m_.empty() && m_.begin()->first < offset) {
      auto node = m_.extract(m_.begin());
      const std::int64_t end = node.mapped();
      m_[offset] = end;
    }
  }

  bool Contains(std::int64_t x) const { return CoveringEnd(x) >= 0; }

  std::int64_t CoveringEnd(std::int64_t x) const {
    auto it = m_.upper_bound(x);
    if (it == m_.begin()) return -1;
    --it;
    return it->second > x ? it->second : -1;
  }

  std::int64_t NextStartAfter(std::int64_t x) const {
    auto it = m_.upper_bound(x);
    return it == m_.end() ? -1 : it->first;
  }

  std::int64_t TotalBytes() const {
    std::int64_t total = 0;
    for (const auto& [start, end] : m_) total += end - start;
    return total;
  }

  template <typename F>
  void ForEach(F&& fn) const {
    for (const auto& [start, end] : m_) {
      if (!fn(Interval{start, end})) return;
    }
  }

 private:
  std::map<std::int64_t, std::int64_t> m_;
};

}  // namespace dctcpp
