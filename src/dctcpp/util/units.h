// Byte-count and data-rate units.
//
// Rates are represented as bits per second in a 64-bit integer; the
// serialization delay of a packet is computed in integer nanoseconds with
// round-up so that back-to-back packets never overlap on a link.
#pragma once

#include <cstdint>

#include "dctcpp/util/assert.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

/// Byte counts are plain 64-bit integers.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;

/// A link/line rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr explicit DataRate(std::int64_t bits_per_sec)
      : bps_(bits_per_sec) {}

  static constexpr DataRate BitsPerSec(std::int64_t v) { return DataRate(v); }
  static constexpr DataRate KilobitsPerSec(std::int64_t v) {
    return DataRate(v * 1000);
  }
  static constexpr DataRate MegabitsPerSec(std::int64_t v) {
    return DataRate(v * 1000 * 1000);
  }
  static constexpr DataRate GigabitsPerSec(std::int64_t v) {
    return DataRate(v * 1000 * 1000 * 1000);
  }

  constexpr std::int64_t bps() const { return bps_; }
  constexpr double mbps() const { return static_cast<double>(bps_) / 1e6; }

  /// Time to serialize `n` bytes at this rate, rounded up to a whole tick.
  constexpr Tick TransmissionTime(Bytes n) const {
    DCTCPP_ASSERT(bps_ > 0);
    DCTCPP_ASSERT(n >= 0);
    // ns = bytes*8 * 1e9 / bps, computed without overflow for realistic
    // packet sizes (n*8*1e9 fits in __int128).
    const __int128 num = static_cast<__int128>(n) * 8 * kSecond;
    return static_cast<Tick>((num + bps_ - 1) / bps_);
  }

  /// Bytes fully serializable in `t` (used for pipeline-capacity math).
  constexpr Bytes BytesPer(Tick t) const {
    const __int128 num = static_cast<__int128>(bps_) * t;
    return static_cast<Bytes>(num / (8 * kSecond));
  }

  friend constexpr bool operator==(DataRate a, DataRate b) {
    return a.bps_ == b.bps_;
  }

 private:
  std::int64_t bps_ = 0;
};

/// Goodput in Mbps from a byte count over an interval, for reporting.
inline double GoodputMbps(Bytes bytes, Tick interval) {
  if (interval <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / ToSeconds(interval) / 1e6;
}

}  // namespace dctcpp
