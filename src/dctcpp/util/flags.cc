#include "dctcpp/util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "dctcpp/util/assert.h"

namespace dctcpp {

void Flags::DefineInt(const std::string& name, std::int64_t def,
                      const std::string& help) {
  Entry e;
  e.type = Type::kInt;
  e.help = help;
  e.i = def;
  entries_[name] = std::move(e);
}

void Flags::DefineDouble(const std::string& name, double def,
                         const std::string& help) {
  Entry e;
  e.type = Type::kDouble;
  e.help = help;
  e.d = def;
  entries_[name] = std::move(e);
}

void Flags::DefineBool(const std::string& name, bool def,
                       const std::string& help) {
  Entry e;
  e.type = Type::kBool;
  e.help = help;
  e.b = def;
  entries_[name] = std::move(e);
}

void Flags::DefineString(const std::string& name, const std::string& def,
                         const std::string& help) {
  Entry e;
  e.type = Type::kString;
  e.help = help;
  e.s = def;
  entries_[name] = std::move(e);
}

bool Flags::SetFromString(Entry& e, const std::string& value) {
  char* end = nullptr;
  switch (e.type) {
    case Type::kInt:
      e.i = std::strtoll(value.c_str(), &end, 10);
      return end && *end == '\0' && !value.empty();
    case Type::kDouble:
      e.d = std::strtod(value.c_str(), &end);
      return end && *end == '\0' && !value.empty();
    case Type::kBool:
      if (value == "true" || value == "1") {
        e.b = true;
        return true;
      }
      if (value == "false" || value == "0") {
        e.b = false;
        return true;
      }
      return false;
    case Type::kString:
      e.s = value;
      return true;
  }
  return false;
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   arg.c_str());
      PrintUsage(argv[0]);
      failed_ = true;
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      PrintUsage(argv[0]);
      failed_ = true;
      return false;
    }
    Entry& e = it->second;
    if (!have_value) {
      if (e.type == Type::kBool) {
        e.b = true;  // bare --flag means true
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        failed_ = true;
        return false;
      }
      value = argv[++i];
    }
    if (!SetFromString(e, value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", name.c_str(),
                   value.c_str());
      failed_ = true;
      return false;
    }
  }
  return true;
}

std::int64_t Flags::GetInt(const std::string& name) const {
  auto it = entries_.find(name);
  DCTCPP_ASSERT(it != entries_.end() && it->second.type == Type::kInt);
  return it->second.i;
}

double Flags::GetDouble(const std::string& name) const {
  auto it = entries_.find(name);
  DCTCPP_ASSERT(it != entries_.end() && it->second.type == Type::kDouble);
  return it->second.d;
}

bool Flags::GetBool(const std::string& name) const {
  auto it = entries_.find(name);
  DCTCPP_ASSERT(it != entries_.end() && it->second.type == Type::kBool);
  return it->second.b;
}

const std::string& Flags::GetString(const std::string& name) const {
  auto it = entries_.find(name);
  DCTCPP_ASSERT(it != entries_.end() && it->second.type == Type::kString);
  return it->second.s;
}

void Flags::PrintUsage(const char* prog) const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", prog);
  for (const auto& [name, e] : entries_) {
    const char* type = "";
    char defbuf[64] = "";
    switch (e.type) {
      case Type::kInt:
        type = "int";
        std::snprintf(defbuf, sizeof defbuf, "%lld",
                      static_cast<long long>(e.i));
        break;
      case Type::kDouble:
        type = "double";
        std::snprintf(defbuf, sizeof defbuf, "%g", e.d);
        break;
      case Type::kBool:
        type = "bool";
        std::snprintf(defbuf, sizeof defbuf, "%s", e.b ? "true" : "false");
        break;
      case Type::kString:
        type = "string";
        std::snprintf(defbuf, sizeof defbuf, "%s", e.s.c_str());
        break;
    }
    std::fprintf(stderr, "  --%-24s %-7s (default %s) %s\n", name.c_str(),
                 type, defbuf, e.help.c_str());
  }
}

}  // namespace dctcpp
