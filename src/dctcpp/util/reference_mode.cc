#include "dctcpp/util/reference_mode.h"

#include <atomic>

namespace dctcpp {
namespace {

std::atomic<bool> g_scalar_reference{false};

}  // namespace

void SetScalarReferenceForTest(bool enabled) {
  g_scalar_reference.store(enabled, std::memory_order_relaxed);
}

bool ScalarReferenceEnabled() {
  return g_scalar_reference.load(std::memory_order_relaxed);
}

}  // namespace dctcpp
