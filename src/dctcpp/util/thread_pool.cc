#include "dctcpp/util/thread_pool.h"

#include <algorithm>
#include <atomic>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dctcpp {

namespace {

#if defined(__linux__)
bool PinHandle(pthread_t handle, int core) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned target = static_cast<unsigned>(core) % hw;
  if (target >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(target, &set);
  return pthread_setaffinity_np(handle, sizeof set, &set) == 0;
}
#endif

}  // namespace

int ThreadPool::PinThreads(int first_core) {
#if defined(__linux__)
  int pinned = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (PinHandle(workers_[i].native_handle(),
                  first_core + static_cast<int>(i))) {
      ++pinned;
    }
  }
  return pinned;
#else
  (void)first_core;
  return 0;
#endif
}

bool ThreadPool::PinCurrentThread(int core) {
#if defined(__linux__)
  return PinHandle(pthread_self(), core);
#else
  (void)core;
  return false;
#endif
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Post(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body,
                 std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  // Shared completion latch + claim counter. Lives on this stack frame;
  // safe because this function does not return until every helper has
  // dropped its `outstanding` count.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t outstanding = 0;
    std::exception_ptr first_error;
  } shared;

  auto run_indices = [&shared, &body, n, grain] {
    for (;;) {
      const std::size_t start =
          shared.next.fetch_add(grain, std::memory_order_relaxed);
      if (start >= n) return;
      const std::size_t end = std::min(start + grain, n);
      for (std::size_t i = start; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(shared.mu);
          if (!shared.first_error) {
            shared.first_error = std::current_exception();
          }
        }
      }
    }
  };

  // The caller claims chunks too, so only enough helpers to take the
  // remaining chunks can ever find work; posting more would be pure queue
  // churn.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min(pool.size(), chunks - 1);
  shared.outstanding = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.Post([&shared, &run_indices] {
      run_indices();
      std::lock_guard lock(shared.mu);
      if (--shared.outstanding == 0) shared.done_cv.notify_one();
    });
  }

  run_indices();

  std::unique_lock lock(shared.mu);
  shared.done_cv.wait(lock, [&shared] { return shared.outstanding == 0; });
  if (shared.first_error) std::rethrow_exception(shared.first_error);
}

}  // namespace dctcpp
