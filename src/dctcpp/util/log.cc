#include "dctcpp/util/log.h"

#include <cstdio>

namespace dctcpp {
namespace internal {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

}  // namespace internal

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  internal::g_log_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      internal::g_log_level.load(std::memory_order_relaxed));
}

void LogV(LogLevel level, const char* fmt, std::va_list ap) {
  char buf[1024];
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), buf);
}

void Log(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  std::va_list ap;
  va_start(ap, fmt);
  LogV(level, fmt, ap);
  va_end(ap);
}

}  // namespace dctcpp
