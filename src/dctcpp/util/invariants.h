// Always-on network invariant checking.
//
// One `NetworkInvariants` instance per Simulator records violations of the
// structural invariants the datapath and the TCP stack maintain:
//
//  - packet conservation: every packet a host originates is eventually
//    delivered to a host, dropped at a named drop site (buffer overflow,
//    impairment, checksum discard), or still resident in a queue / on a
//    wire — never duplicated or lost silently (per-port conservation is
//    checked on every delivery in EgressPort; the global ledger lives
//    here);
//  - switch buffer-byte accounting: a queue's occupancy counter equals the
//    sum of the wire sizes of the packets it actually holds (audited by
//    DropTailEcnQueue on an amortized schedule);
//  - sequence-space conservation and receive-buffer/SACK scoreboard
//    consistency (checked by TcpSocket / ReceiveBuffer);
//  - no timer fires for a dead (closed) flow (checked by TcpSocket's
//    timer guards).
//
// Checks report here instead of aborting so a soak run can complete the
// whole sweep and report every violation at once; tests and the soak
// harness assert `violations() == 0`. The recorder is cheap when nothing
// is wrong: recording sites only call in on failure, and the per-packet
// ledger is a handful of counter increments.
#pragma once

#include <cstdint>
#include <string>

#include "dctcpp/util/time.h"

namespace dctcpp {

class FlightRecorder;

class NetworkInvariants {
 public:
  /// Global packet ledger, maintained by the datapath: a packet is
  /// originated once (Host::Send), possibly duplicated by impairment, and
  /// retired exactly once — delivered to its destination host, or dropped
  /// at a named site. originated + duplicated - delivered - dropped is the
  /// packet population still inside the network.
  struct Ledger {
    std::uint64_t originated = 0;
    std::uint64_t duplicated = 0;   ///< extra copies minted by impairment
    std::uint64_t delivered = 0;    ///< reached their destination host
    std::uint64_t dropped = 0;      ///< all drop sites combined
    std::uint64_t checksum_discards = 0;  ///< subset of dropped
  };

  NetworkInvariants() = default;
  NetworkInvariants(const NetworkInvariants&) = delete;
  NetworkInvariants& operator=(const NetworkInvariants&) = delete;

  /// Records one violation of the named check. The first violation's
  /// rendered message is kept verbatim (later ones only count) and a
  /// warning is logged.
  void Violate(const char* check, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  std::uint64_t violations() const { return violations_; }
  const std::string& first_violation() const { return first_violation_; }

  // --- packet ledger (datapath call sites) ------------------------------
  void CountOriginated() { ++ledger_.originated; }
  void CountDuplicated() { ++ledger_.duplicated; }
  void CountDropped() { ++ledger_.dropped; CheckLedger(); }
  void CountChecksumDiscard() {
    ++ledger_.checksum_discards;
    ++ledger_.dropped;
    CheckLedger();
  }
  void CountDelivered() { ++ledger_.delivered; CheckLedger(); }

  const Ledger& ledger() const { return ledger_; }

  /// Packets currently inside the network (queued, serializing, on the
  /// wire, or held by an impairment reorder buffer).
  std::int64_t PacketsInNetwork() const {
    return static_cast<std::int64_t>(ledger_.originated +
                                     ledger_.duplicated) -
           static_cast<std::int64_t>(ledger_.delivered + ledger_.dropped);
  }

  /// End-of-run check for workloads that ran to completion (event queue
  /// drained, no time limit hit): every packet must be retired. Runs that
  /// stop mid-flight (Simulator::Stop, deadline) legitimately leave
  /// packets resident and must not call this.
  void CheckDrained();

  /// Sharded runs give each shard its own recorder: a packet is born on
  /// the source host's shard but retired on the destination's, so the
  /// per-shard retired-vs-originated comparison is meaningless (a
  /// receive-heavy shard legitimately retires more than it originates).
  /// The parallel coordinator disables the per-retirement check here and
  /// re-runs it once over the merged ledger at the end of the run.
  void DisableLedgerCheck() { ledger_check_enabled_ = false; }

  /// Merged-ledger consistency for the parallel coordinator: the summed
  /// ledger must satisfy the same retired-never-outnumber-born rule the
  /// per-retirement check enforces in single-shard runs.
  static bool LedgerConsistent(const Ledger& l) {
    return l.originated == 0 ||
           l.delivered + l.dropped <= l.originated + l.duplicated;
  }

  /// Attaches a flight recorder (util/flight_recorder.h): every Violate
  /// call additionally stamps a kViolation record at `*now` so the dump
  /// shows exactly where in the event stream the failure landed. `now`
  /// must outlive this object (it is the owning Simulator's clock).
  /// Null detaches.
  void AttachFlightRecorder(FlightRecorder* fr, const Tick* now, int shard) {
    recorder_ = fr;
    recorder_now_ = now;
    recorder_shard_ = shard;
  }

  /// Checkpoint: the ledger and the violation record travel with the
  /// world (ledger_check_enabled_ is reconstructed by BindShard).
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U64(ledger_.originated);
    w.U64(ledger_.duplicated);
    w.U64(ledger_.delivered);
    w.U64(ledger_.dropped);
    w.U64(ledger_.checksum_discards);
    w.U64(violations_);
    w.Str(first_violation_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    ledger_.originated = r.U64();
    ledger_.duplicated = r.U64();
    ledger_.delivered = r.U64();
    ledger_.dropped = r.U64();
    ledger_.checksum_discards = r.U64();
    violations_ = r.U64();
    first_violation_ = r.Str();
  }

 private:
  /// Retirements can never outnumber the packets that exist. Called on
  /// every retirement; one compare on the hot path. Only meaningful once a
  /// host has originated traffic — unit tests that drive an EgressPort
  /// directly inject packets the ledger never saw born, and are exempt.
  void CheckLedger() {
    if (!ledger_check_enabled_) return;
    if (ledger_.originated == 0) return;
    if (ledger_.delivered + ledger_.dropped >
        ledger_.originated + ledger_.duplicated) {
      Violate("packet-ledger",
              "more packets retired than originated: delivered=%llu "
              "dropped=%llu originated=%llu duplicated=%llu",
              static_cast<unsigned long long>(ledger_.delivered),
              static_cast<unsigned long long>(ledger_.dropped),
              static_cast<unsigned long long>(ledger_.originated),
              static_cast<unsigned long long>(ledger_.duplicated));
    }
  }

  Ledger ledger_;
  bool ledger_check_enabled_ = true;
  std::uint64_t violations_ = 0;
  std::string first_violation_;
  // Flight-recorder attachment (observational; not checkpointed).
  FlightRecorder* recorder_ = nullptr;
  const Tick* recorder_now_ = nullptr;
  int recorder_shard_ = 0;
};

}  // namespace dctcpp
