// Assertion macros.
//
// DCTCPP_ASSERT is an always-on invariant check (simulation correctness
// depends on these; the cost is negligible next to event dispatch).
// DCTCPP_DASSERT compiles out in NDEBUG builds for hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dctcpp::detail {

[[noreturn]] inline void AssertFail(const char* expr, const char* file,
                                    int line) {
  std::fprintf(stderr, "dctcpp assertion failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace dctcpp::detail

#define DCTCPP_ASSERT(expr)                                   \
  ((expr) ? static_cast<void>(0)                              \
          : ::dctcpp::detail::AssertFail(#expr, __FILE__, __LINE__))

#ifdef NDEBUG
#define DCTCPP_DASSERT(expr) static_cast<void>(0)
#else
#define DCTCPP_DASSERT(expr) DCTCPP_ASSERT(expr)
#endif
