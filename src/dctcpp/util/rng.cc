#include "dctcpp/util/rng.h"

#include <algorithm>
#include <cmath>

namespace dctcpp {

double Rng::Exponential(double mean) {
  DCTCPP_ASSERT(mean > 0);
  // Avoid log(0): NextDouble() is in [0,1), so 1-u is in (0,1].
  const double u = NextDouble();
  return -mean * std::log(1.0 - u);
}

EmpiricalCdf::EmpiricalCdf(std::vector<Point> points)
    : points_(std::move(points)) {
  DCTCPP_ASSERT(!points_.empty());
  for (std::size_t i = 1; i < points_.size(); ++i) {
    DCTCPP_ASSERT(points_[i].cumulative >= points_[i - 1].cumulative);
    DCTCPP_ASSERT(points_[i].value >= points_[i - 1].value);
  }
  DCTCPP_ASSERT(points_.back().cumulative == 1.0);
}

double EmpiricalCdf::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // First point with cumulative >= u.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), u,
      [](const Point& p, double x) { return p.cumulative < x; });
  if (it == points_.begin()) return points_.front().value;
  if (it == points_.end()) return points_.back().value;
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.cumulative - lo.cumulative;
  if (span <= 0) return hi.value;
  const double f = (u - lo.cumulative) / span;
  return lo.value + f * (hi.value - lo.value);
}

double EmpiricalCdf::Mean() const {
  // Piecewise-linear CDF => each segment contributes a uniform chunk with
  // probability mass (c_i - c_{i-1}) and mean (v_{i-1}+v_i)/2. Mass at the
  // first point (its cumulative > 0) is an atom at that value.
  double mean = points_.front().value * points_.front().cumulative;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cumulative - points_[i - 1].cumulative;
    mean += mass * 0.5 * (points_[i].value + points_[i - 1].value);
  }
  return mean;
}

}  // namespace dctcpp
