// Fixed-size worker pool used by the experiment harness.
//
// Each (protocol, flow-count, repetition) point of a sweep is an independent
// simulation, so sweeps parallelize embarrassingly. ParallelFor dispatches
// by a shared atomic index: the caller and min(pool, n) workers each loop
// claiming the next undone index until the range is exhausted, so a sweep
// pays one enqueue per *worker* instead of one mutex round-trip plus a
// shared_ptr<packaged_task> allocation per *point* (the old Submit-per-task
// scheme). Submit remains for callers that want a per-task future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dctcpp {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Fire-and-forget enqueue: no future, no packaged_task, no shared_ptr.
  /// The caller owns completion tracking (see ParallelFor).
  void Post(std::function<void()> fn);

  /// Best-effort: pins worker i to core (first_core + i) mod
  /// hardware_concurrency, for benches that want helpers resident on
  /// their own cores (pair with PinCurrentThread(0) for the caller).
  /// Returns the number of workers actually pinned — 0 on platforms
  /// without thread affinity (everything but Linux) or when the kernel
  /// refuses (restricted cpusets). Callers must treat 0 as "measurement
  /// runs unpinned", not as an error.
  int PinThreads(int first_core = 1);

  /// Pins the calling thread to `core` (mod hardware_concurrency).
  /// Returns false where unsupported or refused.
  static bool PinCurrentThread(int core);

  /// Enqueues a task; the future resolves when it has run.
  template <typename F>
  std::future<void> Submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    Post([task] { (*task)(); });
    return fut;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for i in [0, n) across `pool`, blocking until all finish.
/// The calling thread participates, so progress is guaranteed even on a
/// saturated pool. Indices are claimed `grain` at a time from a shared
/// atomic counter: the default grain of 1 suits sweep-sized work items
/// whose runtimes vary wildly (fine-grained claiming beats static
/// chunking), while cheap uniform items — shard-sized slices, per-element
/// transforms — pass a larger grain so the fetch_add and the dispatch
/// indirection amortize over a whole chunk instead of taxing every index.
/// A claimed chunk [i, min(i+grain, n)) always runs in index order on one
/// thread. Exceptions from the body propagate (the first one encountered
/// rethrows after all indices have run).
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body,
                 std::size_t grain = 1);

}  // namespace dctcpp
