// Fixed-size worker pool used by the experiment harness.
//
// Each (protocol, flow-count, repetition) point of a sweep is an independent
// simulation, so sweeps parallelize embarrassingly: the harness submits one
// closure per point and waits on the returned futures or uses ParallelFor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dctcpp {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it has run.
  template <typename F>
  std::future<void> Submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for i in [0, n) across `pool`, blocking until all finish.
/// Exceptions from the body propagate (the first one encountered rethrows).
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace dctcpp
