#include "dctcpp/util/invariants.h"

#include <cstdarg>
#include <cstdio>

#include "dctcpp/util/flight_recorder.h"
#include "dctcpp/util/log.h"

namespace dctcpp {

void NetworkInvariants::Violate(const char* check, const char* fmt, ...) {
  ++violations_;
  if (recorder_ != nullptr) {
    recorder_->Record(FrEvent::kViolation, recorder_shard_,
                      recorder_now_ != nullptr ? *recorder_now_ : 0,
                      violations_);
  }
  char msg[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, ap);
  va_end(ap);
  if (first_violation_.empty()) {
    first_violation_ = std::string(check) + ": " + msg;
  }
  DCTCPP_WARN("invariant violated [%s]: %s", check, msg);
}

void NetworkInvariants::CheckDrained() {
  const std::int64_t resident = PacketsInNetwork();
  if (resident != 0) {
    Violate("packet-conservation",
            "%lld packets unaccounted for after the network drained "
            "(originated=%llu duplicated=%llu delivered=%llu dropped=%llu)",
            static_cast<long long>(resident),
            static_cast<unsigned long long>(ledger_.originated),
            static_cast<unsigned long long>(ledger_.duplicated),
            static_cast<unsigned long long>(ledger_.delivered),
            static_cast<unsigned long long>(ledger_.dropped));
  }
}

}  // namespace dctcpp
