// Cycle-accounting hot-path profiler (compiled in under -DDCTCPP_PROFILE=ON).
//
// The datapath regression harness needs to know where a packet's ~200ns
// goes: wheel pop machinery, demux probe, socket ACK chain, congestion
// policy, or egress enqueue. Sampling profilers can't see phase boundaries
// inside one inlined event-loop frame, so the phases are marked explicitly
// with DCTCPP_PROFILE_SCOPE(phase) and accounted in raw TSC cycles
// (steady_clock ns on non-x86).
//
// Accounting is *exclusive* (self time): entering a child scope first
// charges the elapsed cycles to the parent phase, so the per-phase numbers
// sum to the measured total and nesting never double-counts. A scope costs
// two timestamp reads; the whole mechanism is only built when the CMake
// option DCTCPP_PROFILE is ON. In the default build every macro expands to
// nothing and the API below compiles to constant-returning inline stubs —
// tests/profile_test.cc statically asserts the scope type stays empty so
// the zero-overhead contract can never silently rot.
#pragma once

#include <cstdint>
#include <type_traits>

namespace dctcpp::prof {

/// Hot-path phases of the wheel-pop -> demux -> socket -> enqueue chain.
/// kOther absorbs everything not under an explicit scope (workload
/// callbacks, harness glue), so the breakdown always sums to the total.
enum Phase : int {
  kOther = 0,
  kWheelPop,    ///< scheduler pop machinery: scan, advance, unlink, recycle
  kDemux,       ///< Host::Deliver flow-table probe + dispatch glue
  kSocketAck,   ///< TcpSocket ingress bookkeeping (ACK + payload chain)
  kCwndUpdate,  ///< CongestionOps::OnAck (window growth, alpha, pacing law)
  kEnqueue,     ///< egress admission + transmitter/delivery port machinery
  kNumPhases,
};

/// Phase names, indexed by Phase, for JSON emission.
inline constexpr const char* kPhaseNames[kNumPhases] = {
    "other", "wheel_pop", "demux", "socket_ack", "cwnd_update", "enqueue"};

struct Counters {
  std::uint64_t cycles[kNumPhases] = {};
  std::uint64_t hits[kNumPhases] = {};

  std::uint64_t TotalCycles() const {
    std::uint64_t total = 0;
    for (int p = 0; p < kNumPhases; ++p) total += cycles[p];
    return total;
  }
};

}  // namespace dctcpp::prof

#if DCTCPP_PROFILE

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace dctcpp::prof {

inline constexpr bool kEnabled = true;

inline std::uint64_t ReadCycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

struct State {
  Counters counters;
  int current = kOther;
  std::uint64_t last = 0;
};

inline State& GetState() {
  thread_local State state;
  return state;
}

/// Snapshot of this thread's counters since the last Reset().
inline Counters Snapshot() {
  State& s = GetState();
  // Close out the open interval so an in-progress phase is not lost.
  const std::uint64_t t = ReadCycles();
  s.counters.cycles[s.current] += t - s.last;
  s.last = t;
  return s.counters;
}

inline void Reset() {
  State& s = GetState();
  s.counters = Counters{};
  s.last = ReadCycles();
}

/// RAII phase scope with exclusive (self-time) accounting: the elapsed
/// cycles since the last transition are charged to the phase that was
/// running, then this scope's phase becomes current.
class Scope {
 public:
  explicit Scope(Phase phase) {
    State& s = GetState();
    const std::uint64_t t = ReadCycles();
    s.counters.cycles[s.current] += t - s.last;
    prev_ = s.current;
    s.current = phase;
    s.last = t;
    ++s.counters.hits[phase];
  }
  ~Scope() {
    State& s = GetState();
    const std::uint64_t t = ReadCycles();
    s.counters.cycles[s.current] += t - s.last;
    s.current = prev_;
    s.last = t;
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  int prev_;
};

}  // namespace dctcpp::prof

// Two-level paste so __LINE__ expands before concatenation (a direct
// ##__LINE__ would name every scope identically and collide within a
// block).
#define DCTCPP_PROF_CONCAT_INNER(a, b) a##b
#define DCTCPP_PROF_CONCAT(a, b) DCTCPP_PROF_CONCAT_INNER(a, b)
#define DCTCPP_PROFILE_SCOPE(phase)                              \
  ::dctcpp::prof::Scope DCTCPP_PROF_CONCAT(dctcpp_prof_scope_,   \
                                           __LINE__) {           \
    ::dctcpp::prof::phase                                        \
  }

#else  // !DCTCPP_PROFILE

namespace dctcpp::prof {

inline constexpr bool kEnabled = false;

/// Stub scope for the default build; never instantiated by the macro, but
/// its emptiness is the static witness that profiling adds no state.
class Scope {};
static_assert(std::is_empty_v<Scope>,
              "profiler-off Scope must carry no state");

inline Counters Snapshot() { return Counters{}; }
inline void Reset() {}

}  // namespace dctcpp::prof

#define DCTCPP_PROFILE_SCOPE(phase) static_cast<void>(0)

#endif  // DCTCPP_PROFILE
