// Cycle-accounting hot-path profiler (compiled in under -DDCTCPP_PROFILE=ON).
//
// The datapath regression harness needs to know where a packet's ~200ns
// goes: wheel pop machinery, demux probe, socket ACK chain, congestion
// policy, or egress enqueue. Sampling profilers can't see phase boundaries
// inside one inlined event-loop frame, so the phases are marked explicitly
// with DCTCPP_PROFILE_SCOPE(phase) and accounted in raw TSC cycles
// (steady_clock ns on non-x86).
//
// Accounting is *exclusive* (self time): entering a child scope first
// charges the elapsed cycles to the parent phase, so the per-phase numbers
// sum to the measured total and nesting never double-counts. A scope costs
// two timestamp reads; the whole mechanism is only built when the CMake
// option DCTCPP_PROFILE is ON. In the default build every macro expands to
// nothing and the API below compiles to constant-returning inline stubs —
// tests/profile_test.cc statically asserts the scope type stays empty so
// the zero-overhead contract can never silently rot.
#pragma once

#include <cstdint>
#include <type_traits>

namespace dctcpp::prof {

/// Hot-path phases of the wheel-pop -> demux -> socket -> enqueue chain.
/// kOther absorbs everything not under an explicit scope (workload
/// callbacks, harness glue), so the breakdown always sums to the total.
enum Phase : int {
  kOther = 0,
  kWheelPop,    ///< scheduler pop machinery: scan, advance, unlink, recycle
  kDemux,       ///< Host::Deliver flow-table probe + dispatch glue
  kSocketAck,   ///< TcpSocket ingress bookkeeping (ACK + payload chain)
  kCwndUpdate,  ///< CongestionOps::OnAck (window growth, alpha, pacing law)
  kEnqueue,     ///< egress admission + transmitter/delivery port machinery
  kNumPhases,
};

/// Phase names, indexed by Phase, for JSON emission.
inline constexpr const char* kPhaseNames[kNumPhases] = {
    "other", "wheel_pop", "demux", "socket_ack", "cwnd_update", "enqueue"};

struct Counters {
  std::uint64_t cycles[kNumPhases] = {};
  std::uint64_t hits[kNumPhases] = {};

  std::uint64_t TotalCycles() const {
    std::uint64_t total = 0;
    for (int p = 0; p < kNumPhases; ++p) total += cycles[p];
    return total;
  }
};

// ---------------------------------------------------------------------------
// Hardware counters (perf_event_open). Four events cover the questions the
// burst-pipeline work keeps asking: cycles and instructions give IPC,
// cache-misses shows what prefetching bought, branch-misses what the
// bitmap/batch paths bought. Per-phase attribution needs userspace counter
// reads (rdpmc through the perf mmap page); when the kernel grants the
// events but not rdpmc, run-level totals via read(2) still work. When
// perf_event_open itself is denied (seccomp, perf_event_paranoid) the
// whole layer degrades to HwAvailable() == false with the reason in
// HwStatus() — callers print "unavailable" and stay green, so CI works in
// unprivileged containers.

/// One event-set sample: raw counts since the matching HwReset().
struct HwCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// Everything HwSnapshot() reports. `per_phase` is true only in rdpmc
/// mode, where `phase[]` carries the exclusive (self-time) attribution
/// mirroring Counters::cycles; `total` is always read(2)-exact when
/// `available`.
struct HwSnapshotData {
  bool available = false;
  bool per_phase = false;
  HwCounts total;
  HwCounts phase[kNumPhases] = {};
};

}  // namespace dctcpp::prof

#if DCTCPP_PROFILE

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#endif

namespace dctcpp::prof {

inline constexpr bool kEnabled = true;

inline std::uint64_t ReadCycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

struct State {
  Counters counters;
  int current = kOther;
  std::uint64_t last = 0;
};

inline State& GetState() {
  thread_local State state;
  return state;
}

/// Snapshot of this thread's counters since the last Reset().
inline Counters Snapshot() {
  State& s = GetState();
  // Close out the open interval so an in-progress phase is not lost.
  const std::uint64_t t = ReadCycles();
  s.counters.cycles[s.current] += t - s.last;
  s.last = t;
  return s.counters;
}

inline void Reset() {
  State& s = GetState();
  s.counters = Counters{};
  s.last = ReadCycles();
}

// --- Hardware-counter backend ----------------------------------------------

#if defined(__linux__)

inline constexpr int kHwNumEvents = 4;

struct HwState {
  bool tried = false;       ///< perf_event_open attempted on this thread
  bool available = false;   ///< all four events opened
  bool rdpmc = false;       ///< userspace reads work: per-phase attribution on
  char status[160] = "uninitialized";
  int fd[kHwNumEvents] = {-1, -1, -1, -1};
  perf_event_mmap_page* meta[kHwNumEvents] = {};
  std::uint64_t base[kHwNumEvents] = {};  ///< read(2) values at HwReset
  std::uint64_t last[kHwNumEvents] = {};  ///< rdpmc values at last transition
  // phase_raw[p][e]: event e's count attributed to phase p (rdpmc mode).
  std::uint64_t phase_raw[kNumPhases][kHwNumEvents] = {};
};

inline HwState& GetHwState() {
  thread_local HwState state;
  return state;
}

/// Seq-locked userspace counter read through the perf mmap page. Returns
/// false (leaving *out alone) when the event is not rdpmc-readable right
/// now (index 0: descheduled or capability withdrawn).
inline bool HwRdpmcRead(const volatile perf_event_mmap_page* pc,
                        std::uint64_t* out) {
#if defined(__x86_64__)
  std::uint32_t seq;
  std::uint64_t count;
  do {
    seq = pc->lock;
    __asm__ __volatile__("" ::: "memory");
    const std::uint32_t idx = pc->index;
    if (pc->cap_user_rdpmc == 0 || idx == 0) return false;
    std::uint64_t pmc = _rdpmc(idx - 1);
    // Counters are pmc_width bits wide; sign-extend so the offset math
    // stays correct across the counter's wrap.
    const int shift = 64 - pc->pmc_width;
    pmc = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(pmc << shift) >> shift);
    count = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(pc->offset) + static_cast<std::int64_t>(pmc));
    __asm__ __volatile__("" ::: "memory");
  } while (pc->lock != seq);
  *out = count;
  return true;
#else
  (void)pc;
  (void)out;
  return false;
#endif
}

/// Opens the four hardware events for the calling thread. Any failure
/// (ENOENT under seccomp, EACCES under perf_event_paranoid >= 2, missing
/// PMU in VMs) leaves the layer unavailable with the reason in `status` —
/// never fatal.
inline void HwInit() {
  HwState& h = GetHwState();
  if (h.tried) return;
  h.tried = true;
  static constexpr std::uint64_t kConfigs[kHwNumEvents] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
  static constexpr const char* kNames[kHwNumEvents] = {
      "cycles", "instructions", "cache-misses", "branch-misses"};
  for (int e = 0; e < kHwNumEvents; ++e) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = kConfigs[e];
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const long fd = syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0);
    if (fd < 0) {
      std::snprintf(h.status, sizeof(h.status),
                    "perf_event_open(%s) failed: %s", kNames[e],
                    std::strerror(errno));
      for (int c = 0; c < e; ++c) {
        if (h.meta[c] != nullptr) {
          munmap(h.meta[c], static_cast<std::size_t>(getpagesize()));
          h.meta[c] = nullptr;
        }
        close(h.fd[c]);
        h.fd[c] = -1;
      }
      return;
    }
    h.fd[e] = static_cast<int>(fd);
    // One page per event: the header carries the rdpmc capability and the
    // seq-locked (index, offset) pair HwRdpmcRead needs.
    void* page = mmap(nullptr, static_cast<std::size_t>(getpagesize()),
                      PROT_READ, MAP_SHARED, h.fd[e], 0);
    h.meta[e] =
        page == MAP_FAILED ? nullptr
                           : static_cast<perf_event_mmap_page*>(page);
  }
  h.available = true;
  h.rdpmc = true;
  for (int e = 0; e < kHwNumEvents; ++e) {
    std::uint64_t v;
    if (h.meta[e] == nullptr || !HwRdpmcRead(h.meta[e], &v)) {
      h.rdpmc = false;
      break;
    }
  }
  std::snprintf(h.status, sizeof(h.status), "%s",
                h.rdpmc ? "ok (rdpmc per-phase)" : "ok (read-only totals)");
}

inline std::uint64_t HwReadFd(int fd) {
  std::uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

/// Charges each event's delta since the last transition to `phase`.
/// Called at the same points as the cycle accounting; rdpmc mode only.
inline void HwAccount(int phase) {
  HwState& h = GetHwState();
  for (int e = 0; e < kHwNumEvents; ++e) {
    std::uint64_t v;
    if (HwRdpmcRead(h.meta[e], &v)) {
      h.phase_raw[phase][e] += v - h.last[e];
      h.last[e] = v;
    }
  }
}

/// True when Scope transitions must also account hardware counters.
inline bool HwPerPhaseActive() {
  const HwState& h = GetHwState();
  return h.available && h.rdpmc;
}

inline bool HwAvailable() {
  HwInit();
  return GetHwState().available;
}

/// Human-readable reason string ("ok (...)" or the open failure).
inline const char* HwStatus() {
  HwInit();
  return GetHwState().status;
}

inline void HwReset() {
  HwInit();
  HwState& h = GetHwState();
  if (!h.available) return;
  for (int p = 0; p < kNumPhases; ++p) {
    for (int e = 0; e < kHwNumEvents; ++e) h.phase_raw[p][e] = 0;
  }
  for (int e = 0; e < kHwNumEvents; ++e) {
    h.base[e] = HwReadFd(h.fd[e]);
    if (h.rdpmc) {
      std::uint64_t v;
      if (HwRdpmcRead(h.meta[e], &v)) h.last[e] = v;
    }
  }
}

inline HwSnapshotData HwSnapshot() {
  HwInit();
  HwState& h = GetHwState();
  HwSnapshotData snap;
  if (!h.available) return snap;
  snap.available = true;
  if (h.rdpmc) {
    // Close the open interval on whatever phase is running, mirroring
    // Snapshot()'s cycle bookkeeping.
    HwAccount(GetState().current);
    snap.per_phase = true;
    for (int p = 0; p < kNumPhases; ++p) {
      snap.phase[p].cycles = h.phase_raw[p][0];
      snap.phase[p].instructions = h.phase_raw[p][1];
      snap.phase[p].cache_misses = h.phase_raw[p][2];
      snap.phase[p].branch_misses = h.phase_raw[p][3];
    }
  }
  snap.total.cycles = HwReadFd(h.fd[0]) - h.base[0];
  snap.total.instructions = HwReadFd(h.fd[1]) - h.base[1];
  snap.total.cache_misses = HwReadFd(h.fd[2]) - h.base[2];
  snap.total.branch_misses = HwReadFd(h.fd[3]) - h.base[3];
  return snap;
}

#else  // !__linux__

inline bool HwAvailable() { return false; }
inline const char* HwStatus() { return "unsupported platform (not linux)"; }
inline void HwReset() {}
inline HwSnapshotData HwSnapshot() { return HwSnapshotData{}; }
inline bool HwPerPhaseActive() { return false; }
inline void HwAccount(int) {}

#endif  // __linux__

/// RAII phase scope with exclusive (self-time) accounting: the elapsed
/// cycles since the last transition are charged to the phase that was
/// running, then this scope's phase becomes current. When the hardware
/// layer is live in rdpmc mode the same transition also attributes the
/// four hardware events (one predictable branch per transition otherwise).
class Scope {
 public:
  explicit Scope(Phase phase) {
    State& s = GetState();
    const std::uint64_t t = ReadCycles();
    s.counters.cycles[s.current] += t - s.last;
    if (HwPerPhaseActive()) HwAccount(s.current);
    prev_ = s.current;
    s.current = phase;
    s.last = t;
    ++s.counters.hits[phase];
  }
  ~Scope() {
    State& s = GetState();
    const std::uint64_t t = ReadCycles();
    s.counters.cycles[s.current] += t - s.last;
    if (HwPerPhaseActive()) HwAccount(s.current);
    s.current = prev_;
    s.last = t;
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  int prev_;
};

}  // namespace dctcpp::prof

// Two-level paste so __LINE__ expands before concatenation (a direct
// ##__LINE__ would name every scope identically and collide within a
// block).
#define DCTCPP_PROF_CONCAT_INNER(a, b) a##b
#define DCTCPP_PROF_CONCAT(a, b) DCTCPP_PROF_CONCAT_INNER(a, b)
#define DCTCPP_PROFILE_SCOPE(phase)                              \
  ::dctcpp::prof::Scope DCTCPP_PROF_CONCAT(dctcpp_prof_scope_,   \
                                           __LINE__) {           \
    ::dctcpp::prof::phase                                        \
  }

#else  // !DCTCPP_PROFILE

namespace dctcpp::prof {

inline constexpr bool kEnabled = false;

/// Stub scope for the default build; never instantiated by the macro, but
/// its emptiness is the static witness that profiling adds no state.
class Scope {};
static_assert(std::is_empty_v<Scope>,
              "profiler-off Scope must carry no state");

inline Counters Snapshot() { return Counters{}; }
inline void Reset() {}

inline bool HwAvailable() { return false; }
inline const char* HwStatus() { return "profiling disabled at build time"; }
inline void HwReset() {}
inline HwSnapshotData HwSnapshot() { return HwSnapshotData{}; }

}  // namespace dctcpp::prof

#define DCTCPP_PROFILE_SCOPE(phase) static_cast<void>(0)

#endif  // DCTCPP_PROFILE
