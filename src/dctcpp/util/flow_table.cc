#include "dctcpp/util/flow_table.h"

namespace dctcpp {
namespace {

bool g_reference_flow_table = false;

}  // namespace

void SetReferenceFlowTableForTest(bool enabled) {
  g_reference_flow_table = enabled;
}

bool ReferenceFlowTableEnabled() { return g_reference_flow_table; }

}  // namespace dctcpp
