// Tiny command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and bare `--bool-flag`.
// Unrecognized flags are an error so that experiment sweeps fail loudly
// rather than silently running the wrong configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dctcpp {

class Flags {
 public:
  /// Registers a flag with its default value and help text. Call all
  /// Define* before Parse.
  void DefineInt(const std::string& name, std::int64_t def,
                 const std::string& help);
  void DefineDouble(const std::string& name, double def,
                    const std::string& help);
  void DefineBool(const std::string& name, bool def, const std::string& help);
  void DefineString(const std::string& name, const std::string& def,
                    const std::string& help);

  /// Parses argv. On `--help`, prints usage and returns false (caller should
  /// exit 0). On a malformed or unknown flag, prints an error and usage and
  /// returns false (caller should exit nonzero; check Failed()).
  bool Parse(int argc, char** argv);

  bool Failed() const { return failed_; }

  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  void PrintUsage(const char* prog) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Entry {
    Type type;
    std::string help;
    std::int64_t i = 0;
    double d = 0;
    bool b = false;
    std::string s;
  };

  bool SetFromString(Entry& e, const std::string& value);

  std::map<std::string, Entry> entries_;
  bool failed_ = false;
};

}  // namespace dctcpp
