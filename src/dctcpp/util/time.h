// Simulated-time representation.
//
// All simulation timestamps and durations are integer nanoseconds carried in
// a 64-bit signed integer (`Tick`). Integer time keeps the discrete-event
// engine exactly deterministic and makes equality-of-timestamp semantics
// (FIFO tie-breaking in the scheduler) well defined. An int64 nanosecond
// clock covers ~292 years, far beyond any simulation horizon.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace dctcpp {

/// A point in simulated time, or a duration, in nanoseconds.
using Tick = std::int64_t;

inline constexpr Tick kNanosecond = 1;
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

/// A sentinel usable as "no deadline".
inline constexpr Tick kTickMax = INT64_MAX;

namespace time_literals {

constexpr Tick operator""_ns(unsigned long long v) {
  return static_cast<Tick>(v);
}
constexpr Tick operator""_us(unsigned long long v) {
  return static_cast<Tick>(v) * kMicrosecond;
}
constexpr Tick operator""_ms(unsigned long long v) {
  return static_cast<Tick>(v) * kMillisecond;
}
constexpr Tick operator""_s(unsigned long long v) {
  return static_cast<Tick>(v) * kSecond;
}

}  // namespace time_literals

/// Seconds as a double, for reporting only (never for event math).
constexpr double ToSeconds(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Milliseconds as a double, for reporting only.
constexpr double ToMillis(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Microseconds as a double, for reporting only.
constexpr double ToMicros(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Human-readable rendering with an auto-selected unit (e.g. "12.50ms").
inline std::string FormatTick(Tick t) {
  char buf[48];
  const char* sign = t < 0 ? "-" : "";
  const Tick a = t < 0 ? -t : t;
  if (a >= kSecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fs", sign, ToSeconds(a));
  } else if (a >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fms", sign, ToMillis(a));
  } else if (a >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%s%.3fus", sign, ToMicros(a));
  } else {
    std::snprintf(buf, sizeof buf, "%s%lldns", sign,
                  static_cast<long long>(a));
  }
  return buf;
}

}  // namespace dctcpp
