#include "dctcpp/util/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "dctcpp/util/assert.h"

namespace dctcpp {

const char* ToString(FrEvent e) {
  switch (e) {
    case FrEvent::kEnqueue:
      return "ENQ";
    case FrEvent::kDrop:
      return "DROP";
    case FrEvent::kMark:
      return "MARK";
    case FrEvent::kAck:
      return "ACK";
    case FrEvent::kRto:
      return "RTO";
    case FrEvent::kViolation:
      return "VIOLATION";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  ring_.resize(cap);
  mask_ = cap - 1;
}

std::vector<FrRecord> FlightRecorder::Snapshot() const {
  const std::uint64_t resident =
      std::min<std::uint64_t>(head_, ring_.size());
  std::vector<FrRecord> out;
  out.reserve(resident);
  // Oldest resident record first: when the ring has wrapped, that is the
  // slot the next write would overwrite.
  const std::uint64_t first = head_ - resident;
  for (std::uint64_t i = 0; i < resident; ++i) {
    out.push_back(ring_[(first + i) & mask_]);
  }
  return out;
}

bool FlightRecorder::DumpTo(const std::string& path,
                            const std::vector<const FlightRecorder*>& rings) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  auto put_u32 = [&f](std::uint32_t v) {
    f.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  auto put_u64 = [&f](std::uint64_t v) {
    f.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  put_u32(kDumpMagic);
  put_u32(static_cast<std::uint32_t>(rings.size()));
  for (const FlightRecorder* ring : rings) {
    const std::vector<FrRecord> records = ring->Snapshot();
    put_u64(ring->total_recorded());
    put_u64(records.size());
    if (!records.empty()) {
      f.write(reinterpret_cast<const char*>(records.data()),
              static_cast<std::streamsize>(records.size() * sizeof(FrRecord)));
    }
  }
  return static_cast<bool>(f);
}

void FlightRecorder::DecodeRecord(const FrRecord& r, std::ostream& out) {
  char line[160];
  const std::uint64_t p = r.payload;
  switch (r.type()) {
    case FrEvent::kEnqueue:
    case FrEvent::kDrop:
    case FrEvent::kMark:
      std::snprintf(line, sizeof line,
                    "t=%lld shard=%d %s port=%llu uid=%llu",
                    static_cast<long long>(r.tick()), r.shard(),
                    ToString(r.type()),
                    static_cast<unsigned long long>(p >> 40),
                    static_cast<unsigned long long>(p &
                                                    ((1ULL << 40) - 1)));
      break;
    case FrEvent::kAck:
    case FrEvent::kRto:
      std::snprintf(line, sizeof line,
                    "t=%lld shard=%d %s host=%u port=%u value=%u",
                    static_cast<long long>(r.tick()), r.shard(),
                    ToString(r.type()),
                    static_cast<unsigned>((p >> 48) & 0xffff),
                    static_cast<unsigned>((p >> 32) & 0xffff),
                    static_cast<unsigned>(p & 0xffffffffu));
      break;
    case FrEvent::kViolation:
      std::snprintf(line, sizeof line,
                    "t=%lld shard=%d VIOLATION count=%llu",
                    static_cast<long long>(r.tick()), r.shard(),
                    static_cast<unsigned long long>(p));
      break;
    default:
      std::snprintf(line, sizeof line, "t=%lld shard=%d UNKNOWN(%u)",
                    static_cast<long long>(r.tick()), r.shard(),
                    static_cast<unsigned>(r.meta >> 56));
      break;
  }
  out << line << '\n';
}

bool FlightRecorder::DecodeFile(const std::string& path, std::ostream& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  auto get_u32 = [&f]() {
    std::uint32_t v = 0;
    f.read(reinterpret_cast<char*>(&v), sizeof v);
    return v;
  };
  auto get_u64 = [&f]() {
    std::uint64_t v = 0;
    f.read(reinterpret_cast<char*>(&v), sizeof v);
    return v;
  };
  if (get_u32() != kDumpMagic) return false;
  const std::uint32_t ring_count = get_u32();
  std::vector<FrRecord> all;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < ring_count; ++i) {
    total += get_u64();
    const std::uint64_t n = get_u64();
    const std::size_t base = all.size();
    all.resize(base + n);
    f.read(reinterpret_cast<char*>(all.data() + base),
           static_cast<std::streamsize>(n * sizeof(FrRecord)));
    if (!f) return false;
  }
  // Per-ring order is already chronological; the merged view sorts by
  // (tick, shard, meta) — stable, so same-key records keep ring order.
  std::stable_sort(all.begin(), all.end(),
                   [](const FrRecord& a, const FrRecord& b) {
                     if (a.tick() != b.tick()) return a.tick() < b.tick();
                     return a.shard() < b.shard();
                   });
  out << "# flight recorder dump: " << ring_count << " ring(s), "
      << all.size() << " resident / " << total << " total records\n";
  for (const FrRecord& r : all) DecodeRecord(r, out);
  return true;
}

}  // namespace dctcpp
