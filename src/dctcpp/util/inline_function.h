// Allocation-free callables for the control-plane hot path.
//
// Two templates generalize `InlineAction` (sim/inline_action.h) beyond the
// nullary scheduler signature:
//
//  - InlineHandler<R(Args...)>: a trivially copyable delegate with a small
//    fixed buffer and NO heap fallback. This is the packet-demux handler
//    type: every stored callable is a pointer capture or two, the whole
//    delegate is memcpy-able (so open-addressing tables can relocate slots
//    freely), and the dispatcher can copy it to the stack before invoking —
//    which makes self-unregistration during dispatch safe without any
//    reference counting. Oversized or non-trivially-copyable callables are
//    a compile error, not a silent heap box.
//
//  - InlineFunction<R(Args...)>: move-only with a 48-byte inline buffer and
//    a transparent heap box for larger captures, exactly like InlineAction.
//    This replaces std::function for the per-delivery socket callbacks
//    (on_data / on_acked / on_connected / on_remote_close): the common
//    [this]- or [this, conn]-capturing lambdas store and invoke without
//    touching the allocator.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dctcpp {

template <typename Sig>
class InlineHandler;

template <typename R, typename... Args>
class InlineHandler<R(Args...)> {
 public:
  /// Capture budget. Demux handlers capture at most a couple of pointers;
  /// anything bigger belongs in the object the pointer refers to.
  static constexpr std::size_t kInlineSize = 24;

  InlineHandler() = default;
  InlineHandler(std::nullptr_t) {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineHandler> &&
                std::is_invocable_r_v<R, const std::decay_t<F>&, Args...>>>
  InlineHandler(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(std::is_trivially_copyable_v<Fn>,
                  "demux handlers must be trivially copyable (capture raw "
                  "pointers, not owning types)");
    static_assert(sizeof(Fn) <= kInlineSize,
                  "handler capture exceeds the inline budget");
    static_assert(alignof(Fn) <= alignof(void*),
                  "over-aligned handler capture");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](const void* buf, Args... args) -> R {
      return (*std::launder(reinterpret_cast<const Fn*>(buf)))(
          std::forward<Args>(args)...);
    };
  }

  /// Invokes the stored callable (must be non-empty). The handler object
  /// itself may be destroyed by the callee (self-unregistration): callers
  /// on that path copy the handler to a local first — a plain struct copy.
  R operator()(Args... args) const {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  alignas(void*) unsigned char buf_[kInlineSize] = {};
  R (*invoke_)(const void*, Args...) = nullptr;
};

template <typename Sig>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  /// Captures up to this many bytes live inline; larger ones are boxed.
  static constexpr std::size_t kInlineSize = 48;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::kOps;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { Reset(); }

  /// Invokes the stored callable (must be non-empty). Repeatable.
  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the stored callable, leaving the function empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (no heap box).
  bool IsInline() const { return ops_ != nullptr && ops_->is_inline; }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  // move-construct dst, kill src
    void (*destroy)(void*);
    bool is_inline;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* Get(void* b) { return std::launder(reinterpret_cast<Fn*>(b)); }
    static R Invoke(void* b, Args&&... args) {
      return (*Get(b))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*Get(src)));
      Get(src)->~Fn();
    }
    static void Destroy(void* b) { Get(b)->~Fn(); }
    static constexpr Ops kOps{Invoke, Relocate, Destroy, /*is_inline=*/true};
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn* Get(void* b) {
      return *std::launder(reinterpret_cast<Fn**>(b));
    }
    static R Invoke(void* b, Args&&... args) {
      return (*Get(b))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn*(Get(src));  // steal the box
    }
    static void Destroy(void* b) { delete Get(b); }
    static constexpr Ops kOps{Invoke, Relocate, Destroy, /*is_inline=*/false};
  };

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace dctcpp
