// Flat flow table for per-packet demux, with a std::map differential
// oracle, following the repo's oracle-backed-rewrite pattern
// (IntervalSet/MapIntervalSet, PacketRing/reference deque).
//
// A host demultiplexes every delivered packet by its connection 4-tuple.
// The local address is implicit (the table lives in the host), so the key
// packs the remaining three fields into one uint64:
//
//   [ local_port : 16 | remote NodeId : 32 | remote_port : 16 ]
//
// FlatFlowTable is open addressing with linear probing over a power-of-two
// slot array. Slot occupancy lives in a separate state-byte vector
// (kEmpty / kFull / kTombstone) because 0 is a legal packed key, so there
// is no in-band key sentinel. Hashing is a Fibonacci multiply taking the
// top bits, which mixes the port-heavy low bits into the probe index. The
// table rehashes at ~0.7 load counting tombstones, so probe chains stay
// short even under the register/unregister churn of repeated incast
// rounds. Values must be trivially copyable (handlers are InlineHandler
// delegates) so slots relocate with plain assignment.
//
// MapFlowTable is the std::map<uint64, V> reference with the identical
// API. FlowTable picks its backend at construction from a process-wide
// flag (SetReferenceFlowTableForTest), so benches and differential tests
// can run the same simulation on both representations and require
// bit-identical output.
#pragma once

#include <cstdint>
#include <map>
#include <type_traits>
#include <vector>

#include "dctcpp/util/assert.h"

namespace dctcpp {

/// Packs (local_port, remote node, remote_port) into the demux key.
/// NodeIds are dense non-negative int32s assigned by the topology builder.
inline std::uint64_t PackFlowKey(std::uint16_t local_port,
                                 std::int32_t remote,
                                 std::uint16_t remote_port) {
  return (static_cast<std::uint64_t>(local_port) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(remote))
          << 16) |
         static_cast<std::uint64_t>(remote_port);
}

template <typename V>
class FlatFlowTable {
  static_assert(std::is_trivially_copyable_v<V>,
                "flow table values must be trivially copyable");

 public:
  FlatFlowTable() = default;

  /// Inserts a new entry. The key must not already be present.
  void Insert(std::uint64_t key, const V& value) {
    if ((used_ + 1) * 10 >= slots_.size() * 7) Rehash();
    std::size_t idx = ProbeStart(key);
    std::size_t insert_at = static_cast<std::size_t>(-1);
    while (state_[idx] != kEmpty) {
      if (state_[idx] == kFull) {
        DCTCPP_ASSERT(slots_[idx].key != key);  // no duplicate keys
      } else if (insert_at == static_cast<std::size_t>(-1)) {
        insert_at = idx;  // reuse the first tombstone on the chain
      }
      idx = (idx + 1) & mask_;
    }
    if (insert_at == static_cast<std::size_t>(-1)) {
      insert_at = idx;
      ++used_;  // consumed a fresh empty slot
    }
    slots_[insert_at].key = key;
    slots_[insert_at].value = value;
    state_[insert_at] = kFull;
    ++size_;
  }

  /// Removes an entry; returns false when the key was absent.
  bool Erase(std::uint64_t key) {
    const std::size_t idx = FindSlot(key);
    if (idx == kNotFound) return false;
    state_[idx] = kTombstone;
    slots_[idx] = Slot{};  // scrub, V is trivially copyable
    --size_;
    return true;
  }

  /// Returns the value for `key`, or nullptr. The pointer is invalidated
  /// by any subsequent Insert/Erase — callers copy the value out.
  const V* Find(std::uint64_t key) const {
    const std::size_t idx = FindSlot(key);
    return idx == kNotFound ? nullptr : &slots_[idx].value;
  }

  bool Contains(std::uint64_t key) const { return FindSlot(key) != kNotFound; }

  /// Hints the probe chain's first state byte and slot into cache, so a
  /// Find issued a few hundred cycles later starts warm. The burst
  /// pipeline calls this for packet i+1's demux key while packet i is
  /// still in its socket; purely a performance hint, no observable effect.
  void Prefetch(std::uint64_t key) const {
    if (slots_.empty()) return;
    const std::size_t idx = ProbeStart(key);
    __builtin_prefetch(&state_[idx], 0, 3);
    __builtin_prefetch(&slots_[idx], 0, 3);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  enum State : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  std::size_t ProbeStart(std::uint64_t key) const {
    // Fibonacci hash: multiply by 2^64/phi and keep the top log2(cap) bits.
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> shift_);
  }

  std::size_t FindSlot(std::uint64_t key) const {
    if (slots_.empty()) return kNotFound;
    std::size_t idx = ProbeStart(key);
    while (state_[idx] != kEmpty) {
      if (state_[idx] == kFull && slots_[idx].key == key) return idx;
      idx = (idx + 1) & mask_;
    }
    return kNotFound;
  }

  void Rehash() {
    const std::size_t new_cap =
        slots_.empty() ? 16 : (size_ * 4 >= slots_.size() ? slots_.size() * 2
                                                          : slots_.size());
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    slots_.assign(new_cap, Slot{});
    state_.assign(new_cap, kEmpty);
    mask_ = new_cap - 1;
    shift_ = 64;
    for (std::size_t c = new_cap; c > 1; c >>= 1) --shift_;
    used_ = 0;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_state[i] == kFull) Insert(old_slots[i].key, old_slots[i].value);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> state_;
  std::size_t mask_ = 0;
  int shift_ = 64;          // 64 - log2(capacity)
  std::size_t size_ = 0;    // live entries
  std::size_t used_ = 0;    // live entries + tombstones
};

/// Reference implementation: std::map keyed by the packed tuple. Same API
/// and observable behavior as FlatFlowTable; used as the differential
/// oracle in tests and the datapath determinism gate.
template <typename V>
class MapFlowTable {
 public:
  void Insert(std::uint64_t key, const V& value) {
    const auto [it, inserted] = map_.emplace(key, value);
    DCTCPP_ASSERT(inserted);
    (void)it;
  }

  bool Erase(std::uint64_t key) { return map_.erase(key) > 0; }

  const V* Find(std::uint64_t key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  bool Contains(std::uint64_t key) const { return map_.count(key) > 0; }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

 private:
  std::map<std::uint64_t, V> map_;
};

/// Selects the reference std::map backend for FlowTables constructed while
/// the flag is set. Process-wide; flip it before building the simulation.
void SetReferenceFlowTableForTest(bool enabled);
bool ReferenceFlowTableEnabled();

/// Runtime-switchable flow table: production FlatFlowTable by default, the
/// MapFlowTable oracle when reference mode was on at construction.
template <typename V>
class FlowTable {
 public:
  FlowTable() : reference_(ReferenceFlowTableEnabled()) {}

  void Insert(std::uint64_t key, const V& value) {
    if (reference_) {
      map_.Insert(key, value);
    } else {
      flat_.Insert(key, value);
    }
  }

  bool Erase(std::uint64_t key) {
    return reference_ ? map_.Erase(key) : flat_.Erase(key);
  }

  const V* Find(std::uint64_t key) const {
    return reference_ ? map_.Find(key) : flat_.Find(key);
  }

  /// Cache hint for an upcoming Find; no-op on the map oracle.
  void Prefetch(std::uint64_t key) const {
    if (!reference_) flat_.Prefetch(key);
  }

  bool Contains(std::uint64_t key) const {
    return reference_ ? map_.Contains(key) : flat_.Contains(key);
  }

  std::size_t size() const { return reference_ ? map_.size() : flat_.size(); }
  bool empty() const { return size() == 0; }
  bool is_reference() const { return reference_; }

 private:
  bool reference_;
  FlatFlowTable<V> flat_;
  MapFlowTable<V> map_;
};

}  // namespace dctcpp
