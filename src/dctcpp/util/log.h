// Minimal leveled logger.
//
// The simulator is a library, so logging defaults to WARN and writes to
// stderr; binaries raise the level with --verbose. Printf-style because the
// hot path must not pay iostream costs when disabled.
#pragma once

#include <atomic>
#include <cstdarg>

namespace dctcpp {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError };

namespace internal {
/// Storage for the global minimum level; use Set/GetLogLevel/LogEnabled.
extern std::atomic<int> g_log_level;
}  // namespace internal

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True if a message at `level` would be emitted (guard expensive args).
/// Inline so per-packet trace guards cost one relaxed load and compare —
/// no function call on the untraced hot path.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_log_level.load(std::memory_order_relaxed);
}

/// Emits one formatted line ("[level] msg\n") to stderr.
void LogV(LogLevel level, const char* fmt, std::va_list ap);
void Log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace dctcpp

#define DCTCPP_LOG(level, ...)                      \
  do {                                              \
    if (::dctcpp::LogEnabled(level)) {              \
      ::dctcpp::Log(level, __VA_ARGS__);            \
    }                                               \
  } while (0)

#define DCTCPP_TRACE(...) DCTCPP_LOG(::dctcpp::LogLevel::kTrace, __VA_ARGS__)
#define DCTCPP_DEBUG(...) DCTCPP_LOG(::dctcpp::LogLevel::kDebug, __VA_ARGS__)
#define DCTCPP_INFO(...) DCTCPP_LOG(::dctcpp::LogLevel::kInfo, __VA_ARGS__)
#define DCTCPP_WARN(...) DCTCPP_LOG(::dctcpp::LogLevel::kWarn, __VA_ARGS__)
#define DCTCPP_ERROR(...) DCTCPP_LOG(::dctcpp::LogLevel::kError, __VA_ARGS__)
