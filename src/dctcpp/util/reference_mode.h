// Process-wide "scalar reference" switch for the burst datapath.
//
// The prefetched run-to-completion burst pipeline (same-tick wheel-slot
// batching, software prefetch of the next packet's flow-table slot and
// socket cacheline, and the one-copy staged egress ring) is a pure
// mechanism change: it must not alter a single simulation output. This
// flag swaps all of it for the original per-packet path — one event per
// pop, the copy-chain egress (queue slot -> on-wire slot -> propagation
// FIFO), and no prefetch hints — inside the same binary, so harnesses can
// run both and require bit-identical fingerprints. It follows the same
// pattern as SetReferenceFifoForTest / SetReferenceFlowTableForTest:
// captured at component construction, toggled only between simulation
// runs, never while one is in flight.
#pragma once

namespace dctcpp {

/// Selects the scalar (per-packet, prefetch-off, copy-chain) reference
/// datapath for every Simulator/EgressPort constructed afterwards.
void SetScalarReferenceForTest(bool enabled);
bool ScalarReferenceEnabled();

}  // namespace dctcpp
