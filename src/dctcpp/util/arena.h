// Per-simulation slab arena.
//
// A full incast simulation allocates thousands of small control-plane
// objects — sockets, per-connection app state, probes — whose lifetime is
// "until the simulation ends". Allocating each from the global heap
// scatters them across the address space and pays a malloc/free pair per
// object; the arena instead bump-allocates out of large slabs owned by the
// Simulator, so setup does a handful of big allocations, same-flow state
// lands adjacent in memory, and teardown frees O(slabs) blocks instead of
// O(objects).
//
// Lifetime rules:
//  - Arena memory is never recycled per-object. ArenaPtr runs the object's
//    destructor at the usual time (so sockets still unregister handlers
//    and cancel timers deterministically), but the bytes stay reserved
//    until the arena is destroyed. This is the right trade for simulation
//    state that lives for the run; do NOT arena-allocate objects that
//    churn per-packet.
//  - Objects must not outlive the arena. The Simulator owns its arena and
//    is destroyed after the network graph it serves, so anything owned by
//    the simulation graph is safe.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "dctcpp/util/assert.h"

namespace dctcpp {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 256 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align`. `align` must be a power of
  /// two no larger than alignof(std::max_align_t) — simulation objects
  /// are not over-aligned.
  void* Allocate(std::size_t size, std::size_t align) {
    DCTCPP_ASSERT(align != 0 && (align & (align - 1)) == 0);
    DCTCPP_ASSERT(align <= alignof(std::max_align_t));
    if (!slabs_.empty()) {
      const std::size_t offset = (offset_ + align - 1) & ~(align - 1);
      if (offset + size <= slabs_.back().capacity) {
        offset_ = offset + size;
        bytes_used_ += size;
        return slabs_.back().mem.get() + offset;
      }
    }
    // Oversize requests get an exactly-sized dedicated slab, kept
    // second-from-back so small allocations keep filling the bump slab.
    if (size > slab_bytes_) {
      Slab slab = MakeSlab(size);
      unsigned char* p = slab.mem.get();
      if (slabs_.empty()) {
        slabs_.push_back(std::move(slab));
        offset_ = slabs_.back().capacity;  // full
      } else {
        slabs_.insert(slabs_.end() - 1, std::move(slab));
      }
      bytes_used_ += size;
      return p;
    }
    slabs_.push_back(MakeSlab(slab_bytes_));
    offset_ = size;
    bytes_used_ += size;
    return slabs_.back().mem.get();
  }

  /// Constructs a T in the arena. Pair with ArenaPtr/MakeArena for
  /// destructor management, or leak deliberately for trivially
  /// destructible data.
  template <typename T, typename... A>
  T* New(A&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<A>(args)...);
  }

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t slab_count() const { return slabs_.size(); }

 private:
  struct Slab {
    std::unique_ptr<unsigned char[]> mem;
    std::size_t capacity = 0;
  };

  Slab MakeSlab(std::size_t cap) {
    Slab slab;
    // operator new guarantees max_align_t alignment for the slab base.
    slab.mem.reset(new unsigned char[cap]);
    slab.capacity = cap;
    bytes_reserved_ += cap;
    return slab;
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t offset_ = 0;  // bump offset within slabs_.back()
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// Deleter that runs the destructor but returns no memory — the arena
/// reclaims the bytes at teardown.
template <typename T>
struct ArenaDelete {
  void operator()(T* p) const noexcept { p->~T(); }
};

/// Owning pointer for arena-constructed objects: destructor at the usual
/// time, storage reclaimed when the arena dies.
template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDelete<T>>;

template <typename T, typename... A>
ArenaPtr<T> MakeArena(Arena& arena, A&&... args) {
  return ArenaPtr<T>(arena.New<T>(std::forward<A>(args)...));
}

}  // namespace dctcpp
