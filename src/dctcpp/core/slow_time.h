// The DCTCP+ sending-time-interval regulator (paper Fig. 4 + Algorithm 1).
//
// A three-state machine drives the pacing delay `slow_time`:
//
//   DCTCP_NORMAL    -- plain DCTCP; no pacing.
//   DCTCP_Time_Inc  -- cwnd is at its floor yet congestion signals (ECE or
//                      a retransmission timeout) keep arriving: slow_time
//                      grows additively by random(backoff_time_unit) per
//                      signal, slowing the sender below one window per RTT
//                      and -- through the randomization -- desynchronizing
//                      the concurrent flows.
//   DCTCP_Time_Des  -- congestion signals stopped: slow_time shrinks
//                      multiplicatively (divisor_factor) until it falls
//                      below threshold_T, at which point the flow returns
//                      to DCTCP_NORMAL.
//
// The regulator is a pure object (no simulator dependency beyond the Rng
// passed in) so its transition law is directly unit- and property-testable.
#pragma once

#include <cstdint>

#include "dctcpp/util/rng.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

enum class PlusState : std::uint8_t {
  kNormal,   ///< DCTCP_NORMAL
  kTimeInc,  ///< DCTCP_Time_Inc
  kTimeDes,  ///< DCTCP_Time_Des
};

const char* ToString(PlusState s);

class SlowTimeRegulator {
 public:
  struct Config {
    /// Basic backoff unit; the paper advises the baseline RTT (~100 us on
    /// the testbed).
    Tick backoff_time_unit = 100 * kMicrosecond;
    /// Multiplicative-decrease divisor (paper suggests 2; 4 recovers
    /// faster but risks premature return to NORMAL).
    int divisor_factor = 2;
    /// Below this slow_time, DCTCP_Time_Des hands back to DCTCP_NORMAL.
    /// The paper leaves the value open ("a time threshold to guarantee the
    /// relatively smooth regulation"); a small threshold keeps a flow in
    /// DCTCP_Time_Des for several clean windows, which is what carries the
    /// pacing state across the tail of one request round into the next
    /// fan-in burst.
    Tick threshold = 5 * kMicrosecond;
    /// Randomize increments as random(unit) -- the desynchronization that
    /// Fig. 6 vs Fig. 7 shows is essential past ~100 flows. When false,
    /// increments are the full unit (the paper's partial DCTCP+).
    bool randomize = true;
    /// Let the effective unit follow the flow's smoothed RTT (which
    /// includes queueing delay) when it exceeds `backoff_time_unit`. The
    /// paper fixes the unit at the baseline RTT; RTT scaling is this
    /// implementation's extension that speeds convergence under very deep
    /// fan-in (hundreds of flows). The partial (non-randomized) variant
    /// disables it to stay faithful to Fig. 6.
    bool rtt_scaled_unit = true;
    /// RTT scaling engages only once slow_time has already grown past
    /// this many base units — i.e. only for *sustained* congestion
    /// episodes. A short flow that brushes the floor during ambient
    /// congestion backs off by the cheap base unit and loses almost
    /// nothing; a flow trapped in a massive fan-in escalates quickly.
    int rtt_scale_after_units = 3;
    /// Safety cap on slow_time growth (not in the paper; AIMD converges
    /// long before this in practice).
    Tick max_slow_time = 50 * kMillisecond;
    /// Consecutive congestion-free evaluations required per multiplicative
    /// decrease. 1 is the literal Algorithm 1; a higher value weights the
    /// decay against transient all-clear signals (the clean tail of a
    /// request round) — part of the "finer regulation law" the paper's
    /// Sec. VII invites. The default of 2 is what lets the pacing state
    /// survive a request round's clean tail at several hundred flows.
    int clean_evals_per_decay = 2;
    /// Consecutive congested-at-the-floor evaluations required to engage
    /// (DCTCP_NORMAL -> DCTCP_Time_Inc). 1 is the literal Algorithm 1; 2
    /// keeps a stray mark at a transiently small window from engaging the
    /// pacing machinery when window regulation still has headroom.
    int congested_evals_per_entry = 1;
  };

  explicit SlowTimeRegulator(const Config& config);

  /// One evaluation of Algorithm 1, invoked per ACK and per retransmission
  /// timeout. `congested` is the isToDCTCP_Time_Inc condition (ECE set or
  /// a retransmission happened); `cwnd_at_min` gates entry from NORMAL.
  /// `rtt_hint` (optional, > 0) is the flow's smoothed RTT: the paper's
  /// advice is to use "the baseline RTT" as the backoff unit, and a live
  /// srtt — which includes queueing delay — makes the unit scale with the
  /// depth of the congestion the flow is experiencing. The effective unit
  /// is max(config unit, rtt_hint).
  void Evolve(bool congested, bool cwnd_at_min, Rng& rng,
              Tick rtt_hint = 0);

  PlusState state() const { return state_; }
  Tick slow_time() const { return slow_time_; }

  /// Pacing delay to impose before the next transmission: slow_time when
  /// the enhancement is engaged, 0 in NORMAL. With randomization on, each
  /// packet draws a delay uniform in [slow_time/2, 3*slow_time/2] (mean
  /// slow_time) — the per-packet scattering of Fig. 3(c) that keeps the
  /// concurrent flows' transmissions from re-clustering; the partial
  /// variant uses the deterministic interval.
  Tick PacingDelay(Rng& rng) const {
    if (state_ == PlusState::kNormal) return 0;
    if (!config_.randomize || slow_time_ == 0) return slow_time_;
    return slow_time_ / 2 + rng.UniformTick(slow_time_);
  }

  const Config& config() const { return config_; }

  /// Cumulative transition counters, for traces and tests.
  struct Counters {
    std::uint64_t entered_inc = 0;
    std::uint64_t inc_steps = 0;
    std::uint64_t entered_des = 0;
    std::uint64_t returned_normal = 0;
  };
  const Counters& counters() const { return counters_; }

  /// Checkpoint (templated: this header stays free of the checkpoint
  /// dependency; the Config is reconstructed with the owning ops).
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U8(static_cast<std::uint8_t>(state_));
    w.I64(slow_time_);
    w.I64(clean_streak_);
    w.I64(entry_streak_);
    w.U64(counters_.entered_inc);
    w.U64(counters_.inc_steps);
    w.U64(counters_.entered_des);
    w.U64(counters_.returned_normal);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    state_ = static_cast<PlusState>(r.U8());
    slow_time_ = r.I64();
    clean_streak_ = static_cast<int>(r.I64());
    entry_streak_ = static_cast<int>(r.I64());
    counters_.entered_inc = r.U64();
    counters_.inc_steps = r.U64();
    counters_.entered_des = r.U64();
    counters_.returned_normal = r.U64();
  }

 private:
  Tick Increment(Rng& rng, Tick rtt_hint) const;

  Config config_;
  PlusState state_ = PlusState::kNormal;
  Tick slow_time_ = 0;
  int clean_streak_ = 0;
  int entry_streak_ = 0;
  Counters counters_;
};

}  // namespace dctcpp
