#include "dctcpp/core/dctcp_plus.h"

#include "dctcpp/tcp/socket.h"

namespace dctcpp {

DctcpPlusCc::DctcpPlusCc() : DctcpPlusCc(Config{}) {}

DctcpPlusCc::DctcpPlusCc(const Config& config)
    : DctcpCc(config.dctcp), regulator_(config.regulator) {}

void DctcpPlusCc::OnAck(TcpSocket& sk, const AckContext& ctx) {
  // DCTCP machinery first (alpha accounting, Eq. 2 reduction), except that
  // window growth is suspended while the interval regulation is engaged:
  // below the window floor the sending rate is governed by slow_time, and
  // regrowing cwnd during the episode would rebuild the very fan-in burst
  // the mechanism exists to dissolve.
  DctcpCc::OnAck(sk, ctx);
  if (regulator_.state() != PlusState::kNormal &&
      sk.cwnd() > MinCwnd() && !sk.InRecovery()) {
    // While the interval regulation is engaged the rate is governed by
    // slow_time alone; window growth would rebuild the very fan-in burst
    // the mechanism exists to dissolve. Growth resumes on return to
    // DCTCP_NORMAL.
    sk.set_cwnd(MinCwnd());
  }

  // ndctcp_status_evolution(), invoked per ACK. Congestion signals (ECE)
  // act immediately; the all-clear decays the machine once per window of
  // acknowledged data.
  const bool at_min = sk.cwnd() <= MinCwnd();
  if (ctx.ece) {
    window_saw_congestion_ = true;
    regulator_.Evolve(/*congested=*/true, at_min, sk.rng(),
                      sk.srtt());
  }

  if (!window_armed_) {
    decay_window_end_ = sk.StreamAcked() + sk.FlightSize();
    window_armed_ = true;
    return;
  }
  if (sk.StreamAcked() >= decay_window_end_) {
    if (!window_saw_congestion_) {
      regulator_.Evolve(/*congested=*/false, at_min, sk.rng(),
                        sk.srtt());
    }
    window_saw_congestion_ = false;
    decay_window_end_ = sk.StreamAcked() + sk.FlightSize();
  }
}

void DctcpPlusCc::OnRetransmissionTimeout(TcpSocket& sk) {
  DctcpCc::OnRetransmissionTimeout(sk);
  // The Fig. 4 `retrans` condition: unconditional congestion evidence (the
  // loss window is at or below the floor).
  window_saw_congestion_ = true;
  regulator_.Evolve(/*congested=*/true, /*cwnd_at_min=*/true,
                    sk.rng(), sk.srtt());
}

void DctcpPlusCc::OnFastRetransmit(TcpSocket& sk) {
  DctcpCc::OnFastRetransmit(sk);
  window_saw_congestion_ = true;
  regulator_.Evolve(/*congested=*/true,
                    /*cwnd_at_min=*/sk.cwnd() <= MinCwnd() + 3,
                    sk.rng(), sk.srtt());
}

Tick DctcpPlusCc::PacingDelay(TcpSocket& sk, Rng& rng) {
  (void)sk;
  return regulator_.PacingDelay(rng);
}

}  // namespace dctcpp
