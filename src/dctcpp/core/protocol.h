// Protocol selection shared by workloads, benches, and examples.
#pragma once

#include <memory>
#include <string>

#include "dctcpp/core/d2tcp.h"
#include "dctcpp/core/dctcp_plus.h"
#include "dctcpp/core/tcp_plus.h"
#include "dctcpp/tcp/newreno.h"

namespace dctcpp {

/// The three transports the paper compares.
enum class Protocol {
  kTcp,        ///< TCP NewReno, no ECN (congestion signalled by drops)
  kDctcp,      ///< DCTCP
  kDctcpPlus,  ///< DCTCP+ (full: randomized interval regulation)
  kDctcpPlusPartial,  ///< DCTCP+ without desynchronization (Fig. 6)
  kTcpPlus,    ///< Sec. VII extension: the mechanism on plain TCP
  kD2tcp,      ///< deadline-aware DCTCP (Vamanan et al.)
  kD2tcpPlus,  ///< D2TCP + the enhancement mechanism (Sec. VII)
};

inline const char* ToString(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return "tcp";
    case Protocol::kDctcp: return "dctcp";
    case Protocol::kDctcpPlus: return "dctcp+";
    case Protocol::kDctcpPlusPartial: return "dctcp+nosync";
    case Protocol::kTcpPlus: return "tcp+";
    case Protocol::kD2tcp: return "d2tcp";
    case Protocol::kD2tcpPlus: return "d2tcp+";
  }
  return "?";
}

/// Parses the names printed by ToString; aborts on unknown input.
Protocol ParseProtocol(const std::string& name);

/// Tuning knobs that vary across the paper's experiments.
struct ProtocolOptions {
  /// cwnd floor; the paper uses 2 for TCP/DCTCP and 1 for DCTCP+ (and for
  /// the DCTCP variant of Fig. 7's footnote). <= 0 keeps each protocol's
  /// default.
  int min_cwnd = 0;
  /// DCTCP+ regulator knobs (ignored by the other protocols).
  SlowTimeRegulator::Config regulator;
};

/// Creates the per-socket congestion-control object for `protocol`.
std::unique_ptr<CongestionOps> MakeCongestionOps(
    Protocol protocol, const ProtocolOptions& options = {});

}  // namespace dctcpp
