#include "dctcpp/core/tcp_plus.h"

#include "dctcpp/tcp/socket.h"

namespace dctcpp {

TcpPlusCc::TcpPlusCc() : TcpPlusCc(Config{}) {}

TcpPlusCc::TcpPlusCc(const Config& config)
    : NewRenoCc(config.newreno), regulator_(config.regulator) {}

void TcpPlusCc::OnAck(TcpSocket& sk, const AckContext& ctx) {
  NewRenoCc::OnAck(sk, ctx);
  if (regulator_.state() != PlusState::kNormal &&
      sk.cwnd() > MinCwnd() && !sk.InRecovery()) {
    // As in DCTCP+: while the interval regulation is engaged, the rate is
    // governed by slow_time alone.
    sk.set_cwnd(MinCwnd());
  }

  // Without ECN, duplicate ACKs are the per-packet congestion signal
  // (each one testifies to a hole in the window) — they play the role
  // DCTCP+'s marked ACKs play, sustaining the regulator through a loss
  // episode instead of only ticking once per timeout.
  if (ctx.duplicate) {
    window_saw_loss_ = true;
    const bool at_min = sk.InRecovery()
                            ? sk.ssthresh() <= MinCwnd() + 1
                            : sk.cwnd() <= MinCwnd();
    regulator_.Evolve(/*congested=*/true, at_min, sk.rng(),
                      sk.srtt());
  }

  if (!window_armed_) {
    window_end_ = sk.StreamAcked() + sk.FlightSize();
    window_armed_ = true;
    return;
  }
  if (sk.StreamAcked() >= window_end_) {
    if (!window_saw_loss_) {
      regulator_.Evolve(/*congested=*/false,
                        /*cwnd_at_min=*/sk.cwnd() <= MinCwnd(),
                        sk.rng(), sk.srtt());
    }
    window_saw_loss_ = false;
    window_end_ = sk.StreamAcked() + sk.FlightSize();
  }
}

void TcpPlusCc::OnRetransmissionTimeout(TcpSocket& sk) {
  NewRenoCc::OnRetransmissionTimeout(sk);
  window_saw_loss_ = true;
  regulator_.Evolve(/*congested=*/true, /*cwnd_at_min=*/true,
                    sk.rng(), sk.srtt());
}

void TcpPlusCc::OnFastRetransmit(TcpSocket& sk) {
  NewRenoCc::OnFastRetransmit(sk);
  window_saw_loss_ = true;
  regulator_.Evolve(/*congested=*/true,
                    /*cwnd_at_min=*/sk.cwnd() <= MinCwnd() + 3,
                    sk.rng(), sk.srtt());
}

Tick TcpPlusCc::PacingDelay(TcpSocket& sk, Rng& rng) {
  (void)sk;
  return regulator_.PacingDelay(rng);
}

}  // namespace dctcpp
