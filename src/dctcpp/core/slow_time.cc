#include "dctcpp/core/slow_time.h"

#include <algorithm>

#include "dctcpp/util/assert.h"

namespace dctcpp {

const char* ToString(PlusState s) {
  switch (s) {
    case PlusState::kNormal: return "DCTCP_NORMAL";
    case PlusState::kTimeInc: return "DCTCP_Time_Inc";
    case PlusState::kTimeDes: return "DCTCP_Time_Des";
  }
  return "?";
}

SlowTimeRegulator::SlowTimeRegulator(const Config& config)
    : config_(config) {
  DCTCPP_ASSERT(config_.backoff_time_unit > 0);
  DCTCPP_ASSERT(config_.divisor_factor >= 2);
  DCTCPP_ASSERT(config_.threshold >= 0);
  DCTCPP_ASSERT(config_.max_slow_time >= config_.backoff_time_unit);
}

Tick SlowTimeRegulator::Increment(Rng& rng, Tick rtt_hint) const {
  // Algorithm 1's random(backoff_time_unit): a uniformly distributed slice
  // of the unit, which staggers the senders. The partial variant (Fig. 6)
  // adds the deterministic full unit, leaving the flows synchronized. The
  // unit itself follows the flow's RTT when that exceeds the configured
  // baseline (see Evolve).
  const bool escalated =
      config_.rtt_scaled_unit &&
      slow_time_ >=
          config_.rtt_scale_after_units * config_.backoff_time_unit;
  const Tick unit = escalated
                        ? std::max(config_.backoff_time_unit, rtt_hint)
                        : config_.backoff_time_unit;
  return config_.randomize ? rng.UniformTick(unit) : unit;
}

void SlowTimeRegulator::Evolve(bool congested, bool cwnd_at_min, Rng& rng,
                               Tick rtt_hint) {
  if (congested) {
    clean_streak_ = 0;
  } else if (state_ != PlusState::kNormal) {
    // Rate-limit the multiplicative decrease: only every
    // `clean_evals_per_decay`-th consecutive all-clear acts.
    if (++clean_streak_ < config_.clean_evals_per_decay) return;
    clean_streak_ = 0;
  }
  switch (state_) {
    case PlusState::kNormal:
      if (congested && cwnd_at_min) {
        if (++entry_streak_ < config_.congested_evals_per_entry) break;
        entry_streak_ = 0;
        state_ = PlusState::kTimeInc;
        slow_time_ = Increment(rng, rtt_hint);
        ++counters_.entered_inc;
      } else {
        entry_streak_ = 0;
      }
      break;

    case PlusState::kTimeInc:
      if (congested) {
        slow_time_ = std::min(slow_time_ + Increment(rng, rtt_hint),
                              config_.max_slow_time);
        ++counters_.inc_steps;
      } else {
        state_ = PlusState::kTimeDes;
        slow_time_ /= config_.divisor_factor;
        ++counters_.entered_des;
      }
      break;

    case PlusState::kTimeDes:
      if (congested) {
        state_ = PlusState::kTimeInc;
        slow_time_ = std::min(slow_time_ + Increment(rng, rtt_hint),
                              config_.max_slow_time);
        ++counters_.entered_inc;
      } else if (slow_time_ > config_.threshold) {
        slow_time_ /= config_.divisor_factor;
      } else {
        state_ = PlusState::kNormal;
        slow_time_ = 0;
        ++counters_.returned_normal;
      }
      break;
  }
}

}  // namespace dctcpp
