// DCTCP+ congestion control -- the paper's contribution.
//
// DCTCP+ is DCTCP plus two mechanisms for the massive-concurrent-flow
// (high fan-in) regime where window-based control bottoms out:
//
//  1. Sending-interval regulation: when cwnd sits at its floor and the
//     ECN feedback (or a retransmission timeout) still asks for less, the
//     sender delays each transmission by `slow_time`, regulated AIMD-style
//     by the SlowTimeRegulator.
//  2. Desynchronization: the additive increments are randomized, so the
//     concurrent flows' transmissions spread out instead of arriving as
//     one synchronized burst that overflows the small pipeline capacity.
//
// The paper's kernel patch hooks tcp_transmit_skb() through an hrtimer;
// here the equivalent is the PacingDelay() gate the socket consults before
// each segment. Following the paper (Sec. VI footnote 3), the cwnd floor
// defaults to 1 MSS for a smoother handoff between window and interval
// regulation.
#pragma once

#include "dctcpp/core/slow_time.h"
#include "dctcpp/dctcp/dctcp.h"

namespace dctcpp {

class DctcpPlusCc : public DctcpCc {
 public:
  struct Config {
    DctcpCc::Config dctcp{.g = 1.0 / 16.0,
                          .alpha0 = 1.0,
                          .initial_cwnd = 3,
                          .min_cwnd = 1};
    SlowTimeRegulator::Config regulator;
  };

  DctcpPlusCc();  // default Config
  explicit DctcpPlusCc(const Config& config);

  const char* Name() const override { return "dctcp+"; }

  void OnAck(TcpSocket& sk, const AckContext& ctx) override;
  void OnRetransmissionTimeout(TcpSocket& sk) override;
  void OnFastRetransmit(TcpSocket& sk) override;
  Tick PacingDelay(TcpSocket& sk, Rng& rng) override;

  /// Pacing can only be engaged (or engage itself during a clean ACK's
  /// OnAck) outside kNormal: kNormal -> kTimeInc requires a congestion
  /// signal, which a burst-eligible (no-ECE) ACK never carries.
  bool MayPace(const TcpSocket& sk) const override {
    (void)sk;
    return regulator_.state() != PlusState::kNormal;
  }

  const SlowTimeRegulator& regulator() const { return regulator_; }
  PlusState plus_state() const { return regulator_.state(); }
  Tick slow_time() const { return regulator_.slow_time(); }

  void SaveState(CheckpointWriter& w) const override {
    DctcpCc::SaveState(w);
    regulator_.SaveState(w);
    w.I64(decay_window_end_);
    w.Bool(window_saw_congestion_);
    w.Bool(window_armed_);
  }
  void LoadState(CheckpointReader& r) override {
    DctcpCc::LoadState(r);
    regulator_.LoadState(r);
    decay_window_end_ = r.I64();
    window_saw_congestion_ = r.Bool();
    window_armed_ = r.Bool();
  }

 private:
  SlowTimeRegulator regulator_;
  // One clean-window evaluation per window of data: congestion signals
  // (ECE, retrans) evolve the machine immediately, but the
  // "no-more-congestion" decay is assessed once per window, mirroring
  // DCTCP's per-window alpha cadence. Without this, the few unmarked ACKs
  // at the tail of a request round dismantle the pacing state that the
  // next round's fan-in burst still needs.
  std::int64_t decay_window_end_ = 0;
  bool window_saw_congestion_ = false;
  bool window_armed_ = false;
};

}  // namespace dctcpp
