// D2TCP — Deadline-Aware Data Center TCP (Vamanan et al., SIGCOMM 2012),
// one of the protocols the paper's Sec. VII names as an integration
// target for the DCTCP+ mechanism.
//
// D2TCP keeps DCTCP's alpha estimate but gates the window reduction by
// deadline imminence: with d = Tc / D (Tc = time the flow still needs at
// its current rate, D = time left to its deadline, clamped to
// [min_d, max_d]) the penalty is p = alpha^d and
//
//   W <- W * (1 - p / 2).
//
// Far-deadline flows (d < 1) see p > alpha and back off harder;
// near-deadline flows (d > 1) see p < alpha and keep more window. A flow
// with no deadline (or nothing left to send) uses d = 1, i.e. plain
// DCTCP.
//
// D2tcpPlusCc stacks the same deadline-aware penalty on DCTCP+, the
// combination the paper anticipates for massive concurrent flows with
// deadlines.
#pragma once

#include "dctcpp/core/dctcp_plus.h"
#include "dctcpp/dctcp/dctcp.h"

namespace dctcpp {

/// Deadline bookkeeping + the D2TCP penalty, shared by both variants.
class DeadlineGate {
 public:
  struct Config {
    double min_d = 0.5;
    double max_d = 2.0;
  };

  DeadlineGate();  // default Config
  explicit DeadlineGate(const Config& config) : config_(config) {}

  /// Absolute simulated-time deadline for the data currently queued;
  /// 0 clears it (plain DCTCP behaviour).
  void SetDeadline(Tick deadline) { deadline_ = deadline; }
  Tick deadline() const { return deadline_; }

  /// Deadline imminence d for the socket's current state (1.0 without a
  /// deadline). Exposed for tests and traces.
  double Imminence(const TcpSocket& sk) const;

  /// p = alpha^d.
  double Penalty(double alpha, const TcpSocket& sk) const;

 private:
  Config config_;
  Tick deadline_ = 0;
};

inline DeadlineGate::DeadlineGate() : DeadlineGate(Config{}) {}

class D2tcpCc : public DctcpCc {
 public:
  struct Config {
    DctcpCc::Config dctcp;
    DeadlineGate::Config gate;
  };

  D2tcpCc();  // default Config
  explicit D2tcpCc(const Config& config);

  const char* Name() const override { return "d2tcp"; }

  DeadlineGate& gate() { return gate_; }
  const DeadlineGate& gate() const { return gate_; }

  void SaveState(CheckpointWriter& w) const override {
    DctcpCc::SaveState(w);
    w.I64(gate_.deadline());
  }
  void LoadState(CheckpointReader& r) override {
    DctcpCc::LoadState(r);
    gate_.SetDeadline(r.I64());
  }

 protected:
  int ApplyWindowReduction(TcpSocket& sk) override;

 private:
  DeadlineGate gate_;
};

/// D2TCP with the paper's enhancement mechanism on top: deadline-aware
/// window penalties above the floor, interval regulation at the floor.
class D2tcpPlusCc : public DctcpPlusCc {
 public:
  struct Config {
    DctcpPlusCc::Config plus;
    DeadlineGate::Config gate;
  };

  D2tcpPlusCc();  // default Config
  explicit D2tcpPlusCc(const Config& config);

  const char* Name() const override { return "d2tcp+"; }

  DeadlineGate& gate() { return gate_; }
  const DeadlineGate& gate() const { return gate_; }

  void SaveState(CheckpointWriter& w) const override {
    DctcpPlusCc::SaveState(w);
    w.I64(gate_.deadline());
  }
  void LoadState(CheckpointReader& r) override {
    DctcpPlusCc::LoadState(r);
    gate_.SetDeadline(r.I64());
  }

 protected:
  int ApplyWindowReduction(TcpSocket& sk) override;

 private:
  DeadlineGate gate_;
};

/// Convenience: sets the deadline on a socket whose congestion ops are
/// deadline-aware; no-op otherwise. Returns whether a gate was found.
bool SetFlowDeadline(TcpSocket& socket, Tick deadline);

}  // namespace dctcpp
