#include "dctcpp/core/protocol.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

Protocol ParseProtocol(const std::string& name) {
  if (name == "tcp") return Protocol::kTcp;
  if (name == "dctcp") return Protocol::kDctcp;
  if (name == "dctcp+") return Protocol::kDctcpPlus;
  if (name == "dctcp+nosync") return Protocol::kDctcpPlusPartial;
  if (name == "tcp+") return Protocol::kTcpPlus;
  if (name == "d2tcp") return Protocol::kD2tcp;
  if (name == "d2tcp+") return Protocol::kD2tcpPlus;
  DCTCPP_ASSERT(false && "unknown protocol name");
  return Protocol::kTcp;
}

std::unique_ptr<CongestionOps> MakeCongestionOps(
    Protocol protocol, const ProtocolOptions& options) {
  switch (protocol) {
    case Protocol::kTcp: {
      NewRenoCc::Config config;
      if (options.min_cwnd > 0) config.min_cwnd = options.min_cwnd;
      return std::make_unique<NewRenoCc>(config);
    }
    case Protocol::kDctcp: {
      DctcpCc::Config config;
      if (options.min_cwnd > 0) config.min_cwnd = options.min_cwnd;
      return std::make_unique<DctcpCc>(config);
    }
    case Protocol::kTcpPlus: {
      TcpPlusCc::Config config;
      config.regulator = options.regulator;
      if (options.min_cwnd > 0) config.newreno.min_cwnd = options.min_cwnd;
      return std::make_unique<TcpPlusCc>(config);
    }
    case Protocol::kD2tcp: {
      D2tcpCc::Config config;
      if (options.min_cwnd > 0) config.dctcp.min_cwnd = options.min_cwnd;
      return std::make_unique<D2tcpCc>(config);
    }
    case Protocol::kD2tcpPlus: {
      D2tcpPlusCc::Config config;
      config.plus.regulator = options.regulator;
      if (options.min_cwnd > 0) {
        config.plus.dctcp.min_cwnd = options.min_cwnd;
      }
      return std::make_unique<D2tcpPlusCc>(config);
    }
    case Protocol::kDctcpPlus:
    case Protocol::kDctcpPlusPartial: {
      DctcpPlusCc::Config config;
      config.regulator = options.regulator;
      config.regulator.randomize = protocol == Protocol::kDctcpPlus;
      config.regulator.rtt_scaled_unit = protocol == Protocol::kDctcpPlus;
      if (options.min_cwnd > 0) config.dctcp.min_cwnd = options.min_cwnd;
      return std::make_unique<DctcpPlusCc>(config);
    }
  }
  DCTCPP_ASSERT(false);
  return nullptr;
}

}  // namespace dctcpp
