// TCP+ — the paper's Sec. VII extension: the DCTCP+ enhancement mechanism
// "coalesced with other transmission control protocols", here plain
// (non-ECN) TCP NewReno.
//
// Without ECN the only congestion evidence is loss, so the Fig. 4 state
// machine is driven purely by retransmission events: a retransmission
// timeout, or a fast retransmit that collapsed the window to the floor,
// plays the `retrans` role; a window of data acknowledged without any
// loss is the all-clear. Everything else — the AIMD slow_time law,
// randomized increments, pacing of every transmission, and the window
// freeze while engaged — is exactly the DCTCP+ machinery.
#pragma once

#include "dctcpp/core/slow_time.h"
#include "dctcpp/tcp/newreno.h"

namespace dctcpp {

class TcpPlusCc : public NewRenoCc {
 public:
  struct Config {
    NewRenoCc::Config newreno{.ecn = false,
                              .initial_cwnd = 3,
                              .min_cwnd = 1};
    SlowTimeRegulator::Config regulator;
  };

  TcpPlusCc();  // default Config
  explicit TcpPlusCc(const Config& config);

  const char* Name() const override { return "tcp+"; }

  void OnAck(TcpSocket& sk, const AckContext& ctx) override;
  void OnRetransmissionTimeout(TcpSocket& sk) override;
  void OnFastRetransmit(TcpSocket& sk) override;
  Tick PacingDelay(TcpSocket& sk, Rng& rng) override;

  /// Same argument as DctcpPlusCc::MayPace: kNormal cannot engage pacing
  /// without a congestion signal, so clean ACKs are safe to batch.
  bool MayPace(const TcpSocket& sk) const override {
    (void)sk;
    return regulator_.state() != PlusState::kNormal;
  }

  const SlowTimeRegulator& regulator() const { return regulator_; }
  PlusState plus_state() const { return regulator_.state(); }
  Tick slow_time() const { return regulator_.slow_time(); }

  void SaveState(CheckpointWriter& w) const override {
    NewRenoCc::SaveState(w);
    regulator_.SaveState(w);
    w.I64(window_end_);
    w.Bool(window_saw_loss_);
    w.Bool(window_armed_);
  }
  void LoadState(CheckpointReader& r) override {
    NewRenoCc::LoadState(r);
    regulator_.LoadState(r);
    window_end_ = r.I64();
    window_saw_loss_ = r.Bool();
    window_armed_ = r.Bool();
  }

 private:
  SlowTimeRegulator regulator_;
  // Per-window loss accounting: a window that completes without a
  // retransmission event is the machine's "no more congestion" signal.
  std::int64_t window_end_ = 0;
  bool window_saw_loss_ = false;
  bool window_armed_ = false;
};

}  // namespace dctcpp
