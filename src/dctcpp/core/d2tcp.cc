#include "dctcpp/core/d2tcp.h"

#include <algorithm>
#include <cmath>

#include "dctcpp/tcp/socket.h"

namespace dctcpp {

double DeadlineGate::Imminence(const TcpSocket& sk) const {
  if (deadline_ == 0) return 1.0;
  const Bytes remaining = sk.StreamQueued() - sk.StreamAcked();
  if (remaining <= 0) return 1.0;
  const Tick left = deadline_ - sk.sim().Now();
  if (left <= 0) return config_.max_d;  // already late: maximal urgency
  // Tc: time to drain the remaining bytes at the current rate of one
  // window per smoothed RTT.
  const Tick rtt = std::max<Tick>(sk.srtt(), 1);
  const double window_bytes =
      static_cast<double>(sk.cwnd()) * static_cast<double>(sk.mss());
  if (window_bytes <= 0) return config_.max_d;
  const double tc =
      static_cast<double>(remaining) / window_bytes * ToSeconds(rtt);
  const double d = tc / ToSeconds(left);
  return std::clamp(d, config_.min_d, config_.max_d);
}

double DeadlineGate::Penalty(double alpha, const TcpSocket& sk) const {
  if (alpha <= 0.0) return 0.0;
  return std::pow(alpha, Imminence(sk));
}

D2tcpCc::D2tcpCc() : D2tcpCc(Config{}) {}

D2tcpCc::D2tcpCc(const Config& config)
    : DctcpCc(config.dctcp), gate_(config.gate) {}

int D2tcpCc::ApplyWindowReduction(TcpSocket& sk) {
  const double p = gate_.Penalty(alpha(), sk);
  const int reduced = static_cast<int>(
      static_cast<double>(sk.cwnd()) * (1.0 - p / 2.0) + 0.5);
  const int target = std::max(reduced, MinCwnd());
  sk.set_ssthresh(target);
  sk.set_cwnd(target);
  sk.SetCwrPending();
  return target;
}

D2tcpPlusCc::D2tcpPlusCc() : D2tcpPlusCc(Config{}) {}

D2tcpPlusCc::D2tcpPlusCc(const Config& config)
    : DctcpPlusCc(config.plus), gate_(config.gate) {}

int D2tcpPlusCc::ApplyWindowReduction(TcpSocket& sk) {
  const double p = gate_.Penalty(alpha(), sk);
  const int reduced = static_cast<int>(
      static_cast<double>(sk.cwnd()) * (1.0 - p / 2.0) + 0.5);
  const int target = std::max(reduced, MinCwnd());
  sk.set_ssthresh(target);
  sk.set_cwnd(target);
  sk.SetCwrPending();
  return target;
}

bool SetFlowDeadline(TcpSocket& socket, Tick deadline) {
  if (auto* d2 = dynamic_cast<D2tcpCc*>(&socket.cc())) {
    d2->gate().SetDeadline(deadline);
    return true;
  }
  if (auto* d2p = dynamic_cast<D2tcpPlusCc*>(&socket.cc())) {
    d2p->gate().SetDeadline(deadline);
    return true;
  }
  return false;
}

}  // namespace dctcpp
