#include "dctcpp/tcp/receive_buffer.h"

namespace dctcpp {

// The production instantiation, plus the map-backed oracle the scoreboard
// differential test replays against.
template class BasicReceiveBuffer<IntervalSet>;
template class BasicReceiveBuffer<MapIntervalSet>;

}  // namespace dctcpp
