#include "dctcpp/tcp/receive_buffer.h"

#include <algorithm>

#include "dctcpp/util/assert.h"

namespace dctcpp {

Bytes ReceiveBuffer::OnSegment(SeqNum seq, Bytes len) {
  DCTCPP_ASSERT(len >= 0);
  if (len == 0) return 0;

  // Unwrap to linear offsets relative to the current in-order edge.
  const std::int64_t start =
      linear_rcv_nxt_ + seq.DistanceFrom(rcv_nxt_);
  const std::int64_t end = start + len;

  std::int64_t new_start = std::max(start, linear_rcv_nxt_);
  if (new_start >= end) return 0;  // entirely duplicate

  // Merge [new_start, end) into the out-of-order set.
  auto it = ooo_.upper_bound(new_start);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= new_start) {
      // Overlaps/abuts the previous range: extend it instead.
      new_start = prev->first;
      it = prev;
    }
  }
  std::int64_t merged_end = end;
  while (it != ooo_.end() && it->first <= merged_end) {
    merged_end = std::max(merged_end, it->second);
    it = ooo_.erase(it);
  }
  ooo_[new_start] = merged_end;

  // Advance the in-order edge over any now-contiguous prefix.
  Bytes advanced = 0;
  auto front = ooo_.begin();
  if (front != ooo_.end() && front->first <= linear_rcv_nxt_) {
    const std::int64_t new_edge = std::max(front->second, linear_rcv_nxt_);
    advanced = new_edge - linear_rcv_nxt_;
    linear_rcv_nxt_ = new_edge;
    rcv_nxt_ += advanced;
    ooo_.erase(front);
  }
  return advanced;
}

Bytes ReceiveBuffer::OutOfOrderBytes() const {
  Bytes total = 0;
  for (const auto& [start, end] : ooo_) total += end - start;
  return total;
}

std::vector<ReceiveBuffer::SeqRange> ReceiveBuffer::SackRanges(
    std::size_t max_blocks) const {
  std::vector<SeqRange> out;
  out.reserve(std::min(max_blocks, ooo_.size()));
  for (const auto& [start, end] : ooo_) {
    if (out.size() == max_blocks) break;
    out.push_back(SeqRange{rcv_nxt_ + (start - linear_rcv_nxt_),
                           rcv_nxt_ + (end - linear_rcv_nxt_)});
  }
  return out;
}

}  // namespace dctcpp
