// In-stack tracing, the simulation analogue of the `tcp_probe` kernel
// module the paper uses to watch cwnd and ECE at the senders.
//
// A TcpProbe attached to a socket observes ACK processing, transmissions,
// and timeouts. RecordingProbe accumulates exactly the statistics the
// paper's analysis needs: the cwnd frequency distribution (Fig 2), the
// count of "cwnd at minimum while ECE set" events, and the timeout
// taxonomy of Table I.
#pragma once

#include <cstdint>
#include <vector>

#include "dctcpp/stats/histogram.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

class TcpSocket;
struct Packet;

/// Why a retransmission timeout fired, following the taxonomy of
/// Zhang et al. (ICNP'13) that the paper uses:
///  - kFullWindowLoss (FLoss-TO): every packet of the outstanding window
///    was lost, so the sender got no feedback at all.
///  - kLackOfAcks (LAck-TO): some feedback arrived but fewer than three
///    duplicate ACKs, so fast retransmit could not trigger.
enum class TimeoutKind : std::uint8_t { kFullWindowLoss, kLackOfAcks };

class TcpProbe {
 public:
  virtual ~TcpProbe() = default;

  /// After each processed ACK. `cwnd` is the post-processing window (MSS),
  /// `ece` the flag on the ACK, `at_min_with_ece` the paper's "cwnd at the
  /// lower bound while still asked to slow down" condition.
  virtual void OnAckProcessed(const TcpSocket& sk, int cwnd, bool ece,
                              bool at_min_with_ece) {
    (void)sk; (void)cwnd; (void)ece; (void)at_min_with_ece;
  }

  /// A data segment left the socket. `retransmit` marks retransmissions.
  virtual void OnSegmentSent(const TcpSocket& sk, const Packet& pkt,
                             bool retransmit) {
    (void)sk; (void)pkt; (void)retransmit;
  }

  /// The retransmission timer fired.
  virtual void OnTimeout(const TcpSocket& sk, TimeoutKind kind) {
    (void)sk; (void)kind;
  }

  /// Fast retransmit triggered by triple duplicate ACKs.
  virtual void OnFastRetransmit(const TcpSocket& sk) { (void)sk; }
};

/// Concrete probe collecting the paper's per-flow statistics.
class RecordingProbe : public TcpProbe {
 public:
  /// cwnd histogram bins cover [1, cwnd_bins] MSS (Fig 2 plots 1..10).
  explicit RecordingProbe(int cwnd_bins = 16);

  void OnAckProcessed(const TcpSocket& sk, int cwnd, bool ece,
                      bool at_min_with_ece) override;
  void OnSegmentSent(const TcpSocket& sk, const Packet& pkt,
                     bool retransmit) override;
  void OnTimeout(const TcpSocket& sk, TimeoutKind kind) override;
  void OnFastRetransmit(const TcpSocket& sk) override;

  const Histogram& cwnd_histogram() const { return cwnd_histogram_; }
  std::uint64_t acks() const { return acks_; }
  std::uint64_t ece_acks() const { return ece_acks_; }
  std::uint64_t at_min_with_ece() const { return at_min_with_ece_; }
  std::uint64_t timeouts() const {
    return floss_timeouts_ + lack_timeouts_;
  }
  std::uint64_t floss_timeouts() const { return floss_timeouts_; }
  std::uint64_t lack_timeouts() const { return lack_timeouts_; }
  std::uint64_t fast_retransmits() const { return fast_retransmits_; }
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t retransmitted_segments() const {
    return retransmitted_segments_;
  }

  /// Clears event counters but keeps the histogram binning. Used by
  /// round-based workloads that aggregate per round.
  void ResetCounters();

  /// Additionally records the simulated tick of every at-min-with-ECE
  /// event and timeout, so a harness that cannot snapshot the probe
  /// mid-run (the sharded incast driver: the probe lives on a worker
  /// shard, the round driver on the aggregator's) can bin events into
  /// rounds after the run from the recorded round boundaries.
  void EnableTickLog() { tick_log_ = true; }
  bool tick_log_enabled() const { return tick_log_; }
  const std::vector<Tick>& at_min_ticks() const { return at_min_ticks_; }
  const std::vector<Tick>& floss_ticks() const { return floss_ticks_; }
  const std::vector<Tick>& lack_ticks() const { return lack_ticks_; }

 private:
  Histogram cwnd_histogram_;
  std::uint64_t acks_ = 0;
  std::uint64_t ece_acks_ = 0;
  std::uint64_t at_min_with_ece_ = 0;
  std::uint64_t floss_timeouts_ = 0;
  std::uint64_t lack_timeouts_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmitted_segments_ = 0;
  bool tick_log_ = false;
  std::vector<Tick> at_min_ticks_;
  std::vector<Tick> floss_ticks_;
  std::vector<Tick> lack_ticks_;
};

}  // namespace dctcpp
