#include "dctcpp/tcp/socket.h"

#include <algorithm>
#include <cstddef>

#include "dctcpp/util/assert.h"
#include "dctcpp/util/flight_recorder.h"
#include "dctcpp/util/log.h"
#include "dctcpp/util/profile.h"

namespace dctcpp {

namespace {
/// Process-wide default for TcpSocket::SetBatchedAckMode, captured by each
/// socket at construction (same pattern as SetReferenceFlowTableForTest).
bool g_batched_ack_mode = true;
}  // namespace

void TcpSocket::SetBatchedAckMode(bool batched) {
  g_batched_ack_mode = batched;
}

bool TcpSocket::BatchedAckMode() { return g_batched_ack_mode; }

// Hot/cold layout contract: the state the per-ACK chain touches on every
// ACK must sit in the object's first four cache lines. offsetof on a
// non-standard-layout class is conditionally supported; GCC and Clang both
// compute it correctly for this single-inheritance-free class.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
#endif
void TcpSocket::StaticAssertHotLayout() {
  static_assert(offsetof(TcpSocket, progress_since_arm_) +
                        sizeof(std::uint64_t) <=
                    4 * 64,
                "per-ACK core state must fit the first four cache lines");
  static_assert(offsetof(TcpSocket, stream_acked_) < 2 * 64,
                "stream offsets belong in the leading cache lines");
  static_assert(offsetof(TcpSocket, iss_) >
                    offsetof(TcpSocket, stats_),
                "cold section must follow the hot section");
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

TcpSocket::TcpSocket(Host& host, std::unique_ptr<CongestionOps> cc,
                     const Config& config)
    : host_(host),
      cc_(std::move(cc)),
      rto_(config.rto),
      config_(config),
      rng_(host.sim().StreamRng(host.NextSocketStreamId())),
      rto_timer_(host.sim(),
                 [this] {
                   if (TimerAlive("rto")) OnRetransmissionTimeout();
                 }),
      delack_timer_(host.sim(),
                    [this] {
                      if (TimerAlive("delack")) SendAckNow(ReceiverEce());
                    }),
      pace_timer_(host.sim(), [this] {
        if (TimerAlive("pace")) TrySend();
      }) {
  DCTCPP_ASSERT(cc_ != nullptr);
  DCTCPP_ASSERT(config_.mss > 0);
  // The delayed-ACK timer is armed on every odd data segment and cancelled
  // by every ACK actually sent — per-packet churn that lazy cancellation
  // turns into one wheel op per expiry window (see Timer::SetLazyCancel).
  delack_timer_.SetLazyCancel(true);
  batched_ack_ = g_batched_ack_mode;
  cwnd_ = config_.initial_cwnd > 0 ? config_.initial_cwnd
                                   : cc_->InitialCwnd();
}

TcpSocket::~TcpSocket() {
  if (registered_) {
    host_.UnregisterConnection(local_port_, remote_, remote_port_);
  }
}

// ---------------------------------------------------------------------------
// Connection establishment

void TcpSocket::Connect(NodeId remote, PortNum remote_port) {
  DCTCPP_ASSERT(state_ == State::kClosed);
  remote_ = remote;
  remote_port_ = remote_port;
  local_port_ = host_.AllocatePort();
  host_.RegisterConnection(local_port_, remote_, remote_port_,
                           [this](const Packet& p) { OnPacket(p); });
  registered_ = true;
  iss_ = SeqNum(static_cast<std::uint32_t>(rng_.Next()));
  state_ = State::kSynSent;
  SendControl(/*syn=*/true, /*fin=*/false, /*ack=*/false);
  ArmRtoTimer();
}

void TcpSocket::AcceptFrom(const Packet& syn) {
  DCTCPP_ASSERT(state_ == State::kClosed);
  DCTCPP_ASSERT(syn.tcp.syn && !syn.tcp.ack_flag);
  remote_ = syn.src;
  remote_port_ = syn.tcp.src_port;
  local_port_ = syn.tcp.dst_port;
  host_.RegisterConnection(local_port_, remote_, remote_port_,
                           [this](const Packet& p) { OnPacket(p); });
  registered_ = true;
  iss_ = SeqNum(static_cast<std::uint32_t>(rng_.Next()));
  rx_ = ReceiveBuffer(SeqNum(syn.tcp.seq) + 1);
  irs_valid_ = true;
  // RFC 3168 negotiation: SYN carries ECE+CWR; agree if we are capable too.
  ecn_ok_ = cc_->EcnCapable() && syn.tcp.ece && syn.tcp.cwr;
  // SACK-permitted piggybacks on a SYN sack block (model of RFC 2018's
  // SYN option): block[0] = {1,1} marks the capability.
  sack_ok_ = config_.sack && syn.tcp.sack[0].start == 1 &&
             syn.tcp.sack[0].end == 1;
  state_ = State::kSynRcvd;
  SendControl(/*syn=*/true, /*fin=*/false, /*ack=*/true);
  ArmRtoTimer();
}

void TcpSocket::EstablishCommon() {
  state_ = State::kEstablished;
  syn_acked_ = true;
  rto_.ResetBackoff();
  MaybeCancelRtoTimer();
  cc_->OnEstablished(*this);
  if (on_connected_) on_connected_();
}

// ---------------------------------------------------------------------------
// Application interface

void TcpSocket::Send(Bytes n) {
  DCTCPP_ASSERT(n > 0);
  DCTCPP_ASSERT(!fin_pending_);
  app_bytes_queued_ += n;
  if (Established() || state_ == State::kCloseWait) TrySend();
}

void TcpSocket::Close() {
  if (fin_pending_ || state_ == State::kClosed) return;
  fin_pending_ = true;
  TrySend();
}

void TcpSocket::set_cwnd(int cwnd_mss) {
  cwnd_ = std::max(cwnd_mss, 1);
}

void TcpSocket::set_ssthresh(int ssthresh_mss) {
  ssthresh_ = std::max(ssthresh_mss, 1);
}

// ---------------------------------------------------------------------------
// Ingress

void TcpSocket::OnPacket(const Packet& pkt) {
  DCTCPP_PROFILE_SCOPE(kSocketAck);
  switch (state_) {
    case State::kClosed:
      return;  // stray packet after close
    case State::kSynSent:
      if (pkt.tcp.syn && pkt.tcp.ack_flag &&
          SeqNum(pkt.tcp.ack) == iss_ + 1) {
        rx_ = ReceiveBuffer(SeqNum(pkt.tcp.seq) + 1);
        irs_valid_ = true;
        ecn_ok_ = cc_->EcnCapable() && pkt.tcp.ece;
        sack_ok_ = config_.sack && pkt.tcp.sack[0].start == 1 &&
                   pkt.tcp.sack[0].end == 1;
        EstablishCommon();
        SendAckNow(false);  // complete the handshake
        TrySend();
      }
      return;
    case State::kSynRcvd:
      if (pkt.tcp.syn && !pkt.tcp.ack_flag) {
        // Client retransmitted its SYN: our SYN-ACK was lost.
        SendControl(/*syn=*/true, /*fin=*/false, /*ack=*/true);
        return;
      }
      if (pkt.tcp.ack_flag && SeqNum(pkt.tcp.ack) == iss_ + 1) {
        EstablishCommon();
        // The handshake-completing segment may already carry data.
        if (pkt.payload > 0 || pkt.tcp.fin) ProcessPayload(pkt);
        TrySend();
      }
      return;
    default:
      break;
  }

  // Batched fast path: inside a calendar-drain burst, a clean
  // window-advancing ACK runs its full processing chain eagerly but defers
  // segment emission and the invariant sweep to the end of the run (see
  // AckBurstEligible / FlushAckBurst). Any ineligible packet first flushes
  // a pending batch so the network observes emissions in per-ACK order.
  const bool burst_eligible = AckBurstEligible(pkt);
  if (burst_pending_ && !burst_eligible) sim().FlushAckBursts();
  if (burst_eligible) {
    if (!burst_pending_) {
      burst_pending_ = true;
      sim().RequestAckBurstFlush(&TcpSocket::FlushAckBurstThunk, this);
    }
    ++stats_.acks_batch_deferred;
    defer_tx_ = true;
    ProcessAck(pkt);
    defer_tx_ = false;
    return;  // pure ACK: no payload processing; invariants run at flush
  }

  if (pkt.tcp.syn) {
    // Retransmitted SYN-ACK: our handshake ACK was lost; repeat it.
    SendAckNow(ReceiverEce());
    return;
  }

  if (pkt.tcp.ack_flag) ProcessAck(pkt);
  if (state_ == State::kClosed) return;  // ACK processing may finalize
  if (pkt.payload > 0 || pkt.tcp.fin) ProcessPayload(pkt);
  CheckInvariants();
}

bool TcpSocket::AckBurstEligible(const Packet& pkt) const {
  if (!batched_ack_ || !sim().InAckBurst()) return false;
  if (state_ != State::kEstablished) return false;
  // Pure cumulative ACK only: payload and FIN take the payload path, SYN
  // the handshake path, and an ECE echo may reduce the window or engage
  // the DCTCP+ regulator (whose pace-timer arming must stay in per-ACK
  // order relative to the port's transmit event).
  if (!pkt.tcp.ack_flag || pkt.payload != 0 || pkt.tcp.syn || pkt.tcp.fin) {
    return false;
  }
  if (pkt.tcp.ece || in_recovery_ || fin_pending_ || fin_sent_) return false;
  if (cc_->MayPace(*this)) return false;
  // Strict forward progress within the sent range: duplicate and stale
  // ACKs keep the reference path (fast-retransmit emission ordering).
  const std::int64_t linear_ack =
      stream_acked_ +
      SeqNum(pkt.tcp.ack).DistanceFrom(SeqOfStream(stream_acked_));
  return linear_ack > stream_acked_ && linear_ack <= stream_max_sent_;
}

void TcpSocket::EmitPacket(Packet& pkt) {
  if (defer_tx_) {
    burst_tx_.push_back(pkt);
    return;
  }
  host_.Send(pkt);
}

void TcpSocket::FlushBurstTx() {
  for (Packet& p : burst_tx_) host_.Send(p);
  burst_tx_.clear();
}

void TcpSocket::FlushAckBurst() {
  DCTCPP_DASSERT(burst_pending_);
  burst_pending_ = false;
  FlushBurstTx();
  CheckInvariants();
}

// ---------------------------------------------------------------------------
// Invariant checking

bool TcpSocket::TimerAlive(const char* which) {
  if (state_ != State::kClosed) return true;
  sim().invariants().Violate(
      "timer-dead-flow", "%s timer fired on closed socket %u -> %d:%u",
      which, static_cast<unsigned>(local_port_), static_cast<int>(remote_),
      static_cast<unsigned>(remote_port_));
  return false;
}

void TcpSocket::CheckInvariants() {
  NetworkInvariants& inv = sim().invariants();
  const bool seq_ok = 0 <= stream_acked_ && stream_acked_ <= stream_next_ &&
                      stream_next_ <= stream_max_sent_ &&
                      stream_max_sent_ <= app_bytes_queued_;
  if (!seq_ok) {
    inv.Violate("tcp-seq",
                "sender offsets inconsistent: acked=%lld next=%lld "
                "max_sent=%lld queued=%lld",
                static_cast<long long>(stream_acked_),
                static_cast<long long>(stream_next_),
                static_cast<long long>(stream_max_sent_),
                static_cast<long long>(app_bytes_queued_));
  }
  if (sack_ok_) {
    if (sack_high_ > stream_max_sent_) {
      inv.Violate("tcp-sack",
                  "scoreboard high mark %lld beyond snd_max %lld",
                  static_cast<long long>(sack_high_),
                  static_cast<long long>(stream_max_sent_));
    }
    if (!sacked_.empty() && sacked_.front().start < stream_acked_) {
      inv.Violate("tcp-sack",
                  "scoreboard range starting at %lld below cumulative "
                  "edge %lld",
                  static_cast<long long>(sacked_.front().start),
                  static_cast<long long>(stream_acked_));
    }
  }
  if (irs_valid_) rx_.CheckConsistent(inv);
}

void TcpSocket::ProcessAck(const Packet& pkt) {
  ++stats_.acks_received;
  if (FlightRecorder* fr = sim().flight_recorder()) {
    fr->Record(FrEvent::kAck, sim().shard_id(), sim().Now(),
               FrSocketPayload(static_cast<std::uint32_t>(host_.id()),
                               local_port_, pkt.tcp.ack));
  }
  const bool ece = pkt.tcp.ece;
  if (ece) ++stats_.ece_acks_received;
  if (sack_ok_) ProcessSackBlocks(pkt);

  // Unwrap the ACK into a linear stream offset. One extra unit may cover
  // our FIN. Validity is against the high-water mark: after an RTO rewound
  // stream_next_, ACKs of pre-timeout transmissions are still legitimate.
  const std::int64_t fin_units = fin_sent_ ? 1 : 0;
  const std::int64_t linear_ack =
      stream_acked_ + SeqNum(pkt.tcp.ack).DistanceFrom(SeqOfStream(stream_acked_));
  if (linear_ack > stream_max_sent_ + fin_units) return;  // acks unsent data

  Bytes newly = 0;
  bool duplicate = false;
  Tick rtt_sample = -1;

  if (linear_ack > stream_acked_) {
    newly = std::min(linear_ack, app_bytes_queued_) - stream_acked_;
    stream_acked_ += newly;
    // snd_nxt never trails snd_una (relevant after an RTO rewind).
    stream_next_ = std::max(stream_next_, stream_acked_);
    // Trim the SACK scoreboard below the new cumulative edge.
    sacked_.TrimBelow(stream_acked_);
    sack_rtx_next_ = std::max(sack_rtx_next_, stream_acked_);
    if (fin_sent_ && linear_ack == app_bytes_queued_ + 1) fin_acked_ = true;
    ++progress_since_arm_;
    if (rtt_pending_ && stream_acked_ >= rtt_offset_end_) {
      rtt_sample = sim().Now() - rtt_sent_at_;
      rto_.AddSample(rtt_sample);
      rtt_pending_ = false;
    }
    rto_.ResetBackoff();

    if (in_recovery_) {
      if (stream_acked_ >= recover_) {
        // NewReno full ACK: recovery complete.
        in_recovery_ = false;
        dupacks_ = 0;
        cwnd_ = std::max(ssthresh_, cc_->MinCwnd());
      } else {
        // Partial ACK: the next segment was lost too; retransmit it and
        // deflate the window by the amount acknowledged.
        const int acked_mss =
            static_cast<int>((newly + config_.mss - 1) / config_.mss);
        cwnd_ = std::max(cwnd_ - acked_mss + 1, cc_->MinCwnd());
        if (sack_ok_) {
          // SACK recovery: resend the lowest not-yet-resent hole instead
          // of blindly resending snd_una's segment.
          sack_rtx_next_ = std::max(sack_rtx_next_, stream_acked_);
          if (!RetransmitNextHole() && FlightSize() > 0) {
            SendDataSegment(stream_acked_,
                            std::min<Bytes>(config_.mss, FlightSize()),
                            /*retransmit=*/true);
          }
        } else if (FlightSize() > 0) {
          SendDataSegment(stream_acked_,
                          std::min<Bytes>(config_.mss, FlightSize()),
                          /*retransmit=*/true);
        }
      }
    } else {
      dupacks_ = 0;
    }

    if (FlightSize() == 0 && (!fin_sent_ || fin_acked_)) {
      MaybeCancelRtoTimer();
    } else {
      ArmRtoTimer();  // rearm on forward progress (RFC 6298 5.3)
    }
  } else if (linear_ack == stream_acked_ && FlightSize() > 0 &&
             pkt.payload == 0 && !pkt.tcp.syn && !pkt.tcp.fin) {
    duplicate = true;
    ++dupacks_;
    ++dupacks_since_arm_;
    if (!in_recovery_ && dupacks_ == 3) {
      EnterFastRetransmit();
    } else if (in_recovery_) {
      ++cwnd_;  // window inflation while the hole persists
      // With SACK, each further duplicate can repair one more known hole
      // (bounded RFC 6675-style recovery) instead of waiting for partial
      // ACKs to reveal them one RTT apart.
      if (sack_ok_) RetransmitNextHole();
    }
  }

  // Delegate policy (window growth, DCTCP alpha, ECE reaction, DCTCP+
  // state machine) when this ACK concerns our data transfer.
  if (newly > 0 || duplicate || FlightSize() > 0) {
    const AckContext ctx{newly, duplicate, ece && ecn_ok_, in_recovery_,
                         rtt_sample};
    {
      DCTCPP_PROFILE_SCOPE(kCwndUpdate);
      cc_->OnAck(*this, ctx);
    }
    if (probe_ != nullptr) {
      const bool at_min = (ece && ecn_ok_) && cwnd_ <= cc_->MinCwnd();
      probe_->OnAckProcessed(*this, cwnd_, ece && ecn_ok_, at_min);
    }
  }

  if (newly > 0 && on_acked_) on_acked_(newly);

  // Close-side progress.
  if (fin_acked_) {
    if (state_ == State::kLastAck) {
      FinalizeClose();
      return;
    }
    if (state_ == State::kFinWait && peer_fin_received_) {
      FinalizeClose();
      return;
    }
  }

  TrySend();
}

// ---------------------------------------------------------------------------
// SACK scoreboard

void TcpSocket::ProcessSackBlocks(const Packet& pkt) {
  for (const SackBlock& block : pkt.tcp.sack) {
    if (!block.Valid()) continue;
    // Unwrap to linear offsets; clamp to the sent range.
    const std::int64_t start =
        stream_acked_ +
        SeqNum(block.start).DistanceFrom(SeqOfStream(stream_acked_));
    const std::int64_t end =
        stream_acked_ +
        SeqNum(block.end).DistanceFrom(SeqOfStream(stream_acked_));
    if (end <= start) continue;
    SackMarkRange(std::max(start, stream_acked_),
                  std::min(end, stream_max_sent_));
  }
}

void TcpSocket::SackMarkRange(std::int64_t start, std::int64_t end) {
  if (end <= start) return;
  sack_high_ = std::max(sack_high_, end);
  sacked_.Add(start, end);
}

bool TcpSocket::IsSacked(std::int64_t offset) const {
  return sacked_.Contains(offset);
}

std::int64_t TcpSocket::NextHole(std::int64_t from) const {
  std::int64_t candidate = std::max(from, stream_acked_);
  while (candidate < sack_high_) {
    const std::int64_t covered_to = sacked_.CoveringEnd(candidate);
    if (covered_to < 0) return candidate;  // in a gap
    candidate = covered_to;  // inside a SACKed range: skip past it
  }
  return -1;
}

bool TcpSocket::RetransmitNextHole() {
  const std::int64_t hole = NextHole(sack_rtx_next_);
  if (hole < 0 || hole >= app_bytes_queued_) return false;
  // Length bounded by the MSS, the end of the hole, and the stream.
  Bytes len = std::min<Bytes>(config_.mss, app_bytes_queued_ - hole);
  const std::int64_t next_start = sacked_.NextStartAfter(hole);
  if (next_start >= 0) len = std::min<Bytes>(len, next_start - hole);
  SendDataSegment(hole, len, /*retransmit=*/true);
  sack_rtx_next_ = hole + len;
  return true;
}

bool TcpSocket::ReceiverEce() const {
  return cc_->DctcpStyleReceiver() ? rx_ce_state_
                                   : (rx_ece_latched_ && ecn_ok_);
}

void TcpSocket::ProcessPayload(const Packet& pkt) {
  DCTCPP_ASSERT(irs_valid_);

  if (pkt.payload > 0) {
    // Receiver-side ECN bookkeeping precedes ACK generation.
    const bool ce = pkt.ecn == Ecn::kCe;
    if (cc_->DctcpStyleReceiver()) {
      // DCTCP's delayed-ACK-aware echo: on every CE state change, first
      // acknowledge the packets seen so far with the *old* state, then
      // flip. Steady CE runs are echoed by the normal delayed ACKs.
      if (ce != rx_ce_state_) {
        SendAckNow(rx_ce_state_);
        rx_ce_state_ = ce;
      }
    } else if (ecn_ok_) {
      if (ce) rx_ece_latched_ = true;
      if (pkt.tcp.cwr) rx_ece_latched_ = false;
    }

    const Bytes advanced = rx_.OnSegment(SeqNum(pkt.tcp.seq), pkt.payload);
    if (advanced > 0 && on_data_) on_data_(advanced);

    if (advanced == 0 || rx_.HasGaps()) {
      // Duplicate or out-of-order: immediate (duplicate) ACK so the sender
      // can detect the hole.
      SendAckNow(ReceiverEce());
    } else {
      if (++unacked_segments_ >= config_.delayed_ack_segments) {
        SendAckNow(ReceiverEce());
      } else if (!delack_timer_.IsPending()) {
        delack_timer_.Schedule(config_.delayed_ack_timeout);
      }
    }
  }

  if (pkt.tcp.fin && !peer_fin_received_) {
    // Accept the FIN only once all of the peer's data is in.
    const SeqNum fin_seq = SeqNum(pkt.tcp.seq) + pkt.payload;
    if (fin_seq == rx_.rcv_nxt()) {
      peer_fin_received_ = true;
      if (state_ == State::kEstablished) state_ = State::kCloseWait;
      SendAckNow(ReceiverEce());
      if (on_remote_close_) on_remote_close_();
      if (state_ == State::kFinWait && fin_acked_) FinalizeClose();
    } else {
      SendAckNow(ReceiverEce());  // out-of-order FIN: dup ACK
    }
  }
}

void TcpSocket::SendAckNow(bool ece) {
  unacked_segments_ = 0;
  delack_timer_.Cancel();
  Packet pkt = MakePacket();
  pkt.tcp.seq = SeqOfStream(stream_next_).raw();
  pkt.tcp.ack_flag = true;
  pkt.tcp.ack = (rx_.rcv_nxt() + (peer_fin_received_ ? 1 : 0)).raw();
  pkt.tcp.ece = ece;
  pkt.payload = 0;
  pkt.ecn = Ecn::kNotEct;
  if (sack_ok_ && rx_.HasGaps()) {
    const auto ranges = rx_.SackRanges(3);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      pkt.tcp.sack[i] = SackBlock{ranges[i].start.raw(),
                                  ranges[i].end.raw()};
    }
  }
  ++stats_.acks_sent;
  EmitPacket(pkt);
}

// ---------------------------------------------------------------------------
// Egress

Packet TcpSocket::MakePacket() const {
  Packet pkt;
  pkt.src = host_.id();
  pkt.dst = remote_;
  pkt.tcp.src_port = local_port_;
  pkt.tcp.dst_port = remote_port_;
  return pkt;
}

void TcpSocket::SendControl(bool syn, bool fin, bool ack) {
  Packet pkt = MakePacket();
  pkt.tcp.syn = syn;
  pkt.tcp.fin = fin;
  pkt.tcp.ack_flag = ack;
  if (syn) {
    pkt.tcp.seq = iss_.raw();
    if (cc_->EcnCapable()) {
      // RFC 3168: SYN carries ECE+CWR, SYN-ACK echoes ECE only.
      pkt.tcp.ece = true;
      pkt.tcp.cwr = !ack;
    }
    if (config_.sack) {
      // SACK-permitted marker (see AcceptFrom).
      pkt.tcp.sack[0] = SackBlock{1, 1};
    }
  } else if (fin) {
    pkt.tcp.seq = SeqOfStream(app_bytes_queued_).raw();
  }
  if (ack) {
    pkt.tcp.ack = (rx_.rcv_nxt() + (peer_fin_received_ ? 1 : 0)).raw();
  }
  pkt.payload = 0;
  pkt.ecn = Ecn::kNotEct;
  EmitPacket(pkt);
}

void TcpSocket::TrySend() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait &&
      state_ != State::kFinWait && state_ != State::kLastAck) {
    return;
  }

  const Bytes wnd_bytes =
      static_cast<Bytes>(std::min(cwnd_, config_.rwnd_mss)) * config_.mss;

  while (stream_next_ < app_bytes_queued_) {
    if (sack_ok_ && stream_next_ < stream_max_sent_) {
      // Go-back retransmission region: never resend selectively
      // acknowledged data.
      const std::int64_t covered_to = sacked_.CoveringEnd(stream_next_);
      if (covered_to > stream_next_) {
        stream_next_ = covered_to;
        continue;
      }
    }
    Bytes len =
        std::min<Bytes>(config_.mss, app_bytes_queued_ - stream_next_);
    if (sack_ok_) {
      const std::int64_t next_start = sacked_.NextStartAfter(stream_next_);
      if (next_start >= 0) {
        len = std::min<Bytes>(len, next_start - stream_next_);
      }
    }
    if (len <= 0) break;  // defensive; cannot happen with a sane scoreboard
    if (FlightSize() + len > wnd_bytes) break;
    const Tick now = sim().Now();
    // DCTCP+ pacing gate, modelling the paper's hrtimer around
    // tcp_transmit_skb: while the regulator is engaged, every data
    // segment -- including the first after idle and post-timeout
    // retransmissions -- waits slow_time before entering the network.
    // `pace_armed_` marks a reserved slot not yet consumed by a send.
    const Tick delay = cc_->PacingDelay(*this, rng_);
    if (delay > 0) {
      if (!pace_armed_) {
        pace_until_ = now + delay;
        pace_armed_ = true;
      }
      if (now < pace_until_) {
        pace_timer_.Schedule(pace_until_ - now);
        return;
      }
      pace_armed_ = false;  // slot consumed by this segment
    } else {
      pace_armed_ = false;
    }
    // Offsets below the high-water mark are retransmissions of data first
    // sent before an RTO rewound stream_next_.
    SendDataSegment(stream_next_, len,
                    /*retransmit=*/stream_next_ < stream_max_sent_);
    stream_next_ += len;
  }

  // A FIN follows once every queued byte has been transmitted.
  if (fin_pending_ && !fin_sent_ && stream_next_ == app_bytes_queued_) {
    fin_sent_ = true;
    SendControl(/*syn=*/false, /*fin=*/true, /*ack=*/true);
    if (state_ == State::kEstablished) state_ = State::kFinWait;
    if (state_ == State::kCloseWait) state_ = State::kLastAck;
    ArmRtoTimer();
  }
}

bool TcpSocket::SendDataSegment(std::int64_t offset, Bytes len,
                                bool retransmit) {
  DCTCPP_ASSERT(len > 0);
  Packet pkt = MakePacket();
  pkt.tcp.seq = SeqOfStream(offset).raw();
  pkt.tcp.ack_flag = irs_valid_;
  if (irs_valid_) {
    pkt.tcp.ack = (rx_.rcv_nxt() + (peer_fin_received_ ? 1 : 0)).raw();
    pkt.tcp.ece = ReceiverEce();  // piggybacked echo
  }
  pkt.payload = static_cast<std::int32_t>(len);
  pkt.ecn = ecn_ok_ ? Ecn::kEct : Ecn::kNotEct;
  if (cwr_pending_) {
    pkt.tcp.cwr = true;
    cwr_pending_ = false;
  }

  stream_max_sent_ = std::max(stream_max_sent_, offset + len);
  if (retransmit) {
    ++stats_.segments_retransmitted;
    // Karn: a retransmitted range can no longer produce an RTT sample.
    if (rtt_pending_ && offset < rtt_offset_end_) InvalidateRttSample();
  } else if (!rtt_pending_) {
    rtt_pending_ = true;
    rtt_offset_end_ = offset + len;
    rtt_sent_at_ = sim().Now();
  }
  ++stats_.segments_sent;
  if (probe_ != nullptr) probe_->OnSegmentSent(*this, pkt, retransmit);

  EmitPacket(pkt);
  if (!rto_timer_.IsPending()) ArmRtoTimer();
  return true;
}

// ---------------------------------------------------------------------------
// Loss recovery

void TcpSocket::EnterFastRetransmit() {
  ++stats_.fast_retransmits;
  ssthresh_ = std::max(cc_->SsthreshAfterLoss(*this), cc_->MinCwnd());
  in_recovery_ = true;
  recover_ = stream_next_;
  cwnd_ = ssthresh_ + 3;
  cc_->OnFastRetransmit(*this);
  if (probe_ != nullptr) probe_->OnFastRetransmit(*this);
  if (sack_ok_) {
    sack_rtx_next_ = stream_acked_;  // new episode: repair from the edge
    if (RetransmitNextHole()) return;
  }
  if (FlightSize() > 0) {
    SendDataSegment(stream_acked_,
                    std::min<Bytes>(config_.mss, FlightSize()),
                    /*retransmit=*/true);
  }
}

void TcpSocket::OnRetransmissionTimeout() {
  // Handshake and FIN retransmissions carry no congestion-control
  // significance in the model beyond RTO backoff.
  if (state_ == State::kSynSent) {
    rto_.Backoff();
    SendControl(/*syn=*/true, /*fin=*/false, /*ack=*/false);
    ArmRtoTimer();
    return;
  }
  if (state_ == State::kSynRcvd) {
    rto_.Backoff();
    SendControl(/*syn=*/true, /*fin=*/false, /*ack=*/true);
    ArmRtoTimer();
    return;
  }

  const bool data_outstanding = FlightSize() > 0;
  if (!data_outstanding && fin_sent_ && !fin_acked_) {
    rto_.Backoff();
    SendControl(/*syn=*/false, /*fin=*/true, /*ack=*/true);
    ArmRtoTimer();
    return;
  }
  if (!data_outstanding) return;  // spurious (everything got acked)

  ++stats_.timeouts;
  if (FlightRecorder* fr = sim().flight_recorder()) {
    fr->Record(FrEvent::kRto, sim().shard_id(), sim().Now(),
               FrSocketPayload(static_cast<std::uint32_t>(host_.id()),
                               local_port_,
                               static_cast<std::uint32_t>(stats_.timeouts)));
  }
  // Taxonomy of the paper's Table I: with zero feedback since the timer
  // was armed the whole window was lost (FLoss-TO); with some feedback but
  // not the three duplicates needed for fast retransmit it is LAck-TO.
  const TimeoutKind kind =
      (dupacks_since_arm_ == 0 && progress_since_arm_ == 0)
          ? TimeoutKind::kFullWindowLoss
          : TimeoutKind::kLackOfAcks;
  if (probe_ != nullptr) probe_->OnTimeout(*this, kind);

  cc_->OnRetransmissionTimeout(*this);

  ssthresh_ = std::max(cwnd_ / 2, 2);
  cwnd_ = 1;  // RFC 5681 loss window
  in_recovery_ = false;
  dupacks_ = 0;
  stream_next_ = stream_acked_;  // go-back-N from the hole
  sack_rtx_next_ = stream_acked_;
  InvalidateRttSample();
  rto_.Backoff();
  ArmRtoTimer();

  // The retransmission goes through the normal (pacing-gated) send path:
  // DCTCP+ deliberately staggers post-timeout retransmissions, which would
  // otherwise leave the concurrent flows RTO-synchronized.
  TrySend();
}

void TcpSocket::ArmRtoTimer() {
  // Batched mode: a genuine (sequence-number-consuming) wheel arming must
  // not overtake deferred emissions — per-ACK processing would have armed
  // the port's transmit event first. Emitting the buffer here restores the
  // exact arming order; while data is in flight the RTO timer always has a
  // wheel arming (lazy re-arm), so this fires only after an eager cancel.
  if (!burst_tx_.empty() && !rto_timer_.HasWheelArming()) FlushBurstTx();
  rto_timer_.Schedule(rto_.Rto());
  dupacks_since_arm_ = 0;
  progress_since_arm_ = 0;
}

void TcpSocket::MaybeCancelRtoTimer() { rto_timer_.Cancel(); }

void TcpSocket::FinalizeClose() {
  // Close-progress packets (FIN, its ACK) are never burst-eligible, so the
  // processing that got here flushed any pending batch on entry.
  DCTCPP_DASSERT(!burst_pending_ && burst_tx_.empty());
  state_ = State::kClosed;
  rto_timer_.Cancel();
  delack_timer_.Cancel();
  pace_timer_.Cancel();
  if (registered_) {
    host_.UnregisterConnection(local_port_, remote_, remote_port_);
    registered_ = false;
  }
  if (on_closed_) on_closed_();
}

// ---------------------------------------------------------------------------
// Checkpoint

void TcpSocket::SaveState(CheckpointWriter& w) const {
  // Barrier precondition: no batched-ACK run may be open across a save.
  DCTCPP_ASSERT(!defer_tx_ && !burst_pending_ && burst_tx_.empty());

  w.U8(static_cast<std::uint8_t>(state_));
  w.Bool(registered_);
  w.Bool(syn_acked_);
  w.Bool(fin_pending_);
  w.Bool(fin_sent_);
  w.Bool(fin_acked_);
  w.Bool(in_recovery_);
  w.Bool(sack_ok_);
  w.Bool(ecn_ok_);
  w.Bool(cwr_pending_);
  w.Bool(rtt_pending_);
  w.Bool(irs_valid_);
  w.Bool(peer_fin_received_);
  w.Bool(rx_ce_state_);
  w.Bool(rx_ece_latched_);
  w.Bool(pace_armed_);
  w.Bool(batched_ack_);

  w.U32(static_cast<std::uint32_t>(remote_));
  w.U32(local_port_);
  w.U32(remote_port_);

  w.I64(stream_acked_);
  w.I64(stream_next_);
  w.I64(stream_max_sent_);
  w.I64(app_bytes_queued_);

  w.I64(cwnd_);
  w.I64(ssthresh_);
  w.I64(dupacks_);
  w.I64(recover_);

  w.I64(rtt_offset_end_);
  w.I64(rtt_sent_at_);
  rto_.SaveState(w);
  w.U64(dupacks_since_arm_);
  w.U64(progress_since_arm_);

  w.U64(stats_.segments_sent);
  w.U64(stats_.segments_retransmitted);
  w.U64(stats_.timeouts);
  w.U64(stats_.fast_retransmits);
  w.U64(stats_.acks_received);
  w.U64(stats_.ece_acks_received);
  w.U64(stats_.acks_sent);
  w.U64(stats_.acks_batch_deferred);

  w.U32(iss_.raw());
  std::uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (std::uint64_t s : rng_state) w.U64(s);
  cc_->SaveState(w);

  w.U64(sacked_.size());
  sacked_.ForEach([&w](const Interval& iv) {
    w.I64(iv.start);
    w.I64(iv.end);
    return true;
  });
  w.I64(sack_high_);
  w.I64(sack_rtx_next_);

  rto_timer_.SaveState(w);
  rx_.SaveState(w);
  w.I64(unacked_segments_);
  delack_timer_.SaveState(w);
  w.I64(pace_until_);
  pace_timer_.SaveState(w);
}

void TcpSocket::LoadState(CheckpointReader& r) {
  DCTCPP_ASSERT(state_ == State::kClosed && !registered_);
  DCTCPP_ASSERT(!defer_tx_ && !burst_pending_ && burst_tx_.empty());

  state_ = static_cast<State>(r.U8());
  registered_ = r.Bool();
  syn_acked_ = r.Bool();
  fin_pending_ = r.Bool();
  fin_sent_ = r.Bool();
  fin_acked_ = r.Bool();
  in_recovery_ = r.Bool();
  sack_ok_ = r.Bool();
  ecn_ok_ = r.Bool();
  cwr_pending_ = r.Bool();
  rtt_pending_ = r.Bool();
  irs_valid_ = r.Bool();
  peer_fin_received_ = r.Bool();
  rx_ce_state_ = r.Bool();
  rx_ece_latched_ = r.Bool();
  pace_armed_ = r.Bool();
  // Processing mode is a construction-time property of the restoring run;
  // it must match the saved run for bit-identical resumption.
  const bool saved_batched = r.Bool();
  DCTCPP_ASSERT(saved_batched == batched_ack_);

  remote_ = static_cast<NodeId>(r.U32());
  local_port_ = r.U32();
  remote_port_ = r.U32();

  stream_acked_ = r.I64();
  stream_next_ = r.I64();
  stream_max_sent_ = r.I64();
  app_bytes_queued_ = r.I64();

  cwnd_ = static_cast<int>(r.I64());
  ssthresh_ = static_cast<int>(r.I64());
  dupacks_ = static_cast<int>(r.I64());
  recover_ = r.I64();

  rtt_offset_end_ = r.I64();
  rtt_sent_at_ = r.I64();
  rto_.LoadState(r);
  dupacks_since_arm_ = r.U64();
  progress_since_arm_ = r.U64();

  stats_.segments_sent = r.U64();
  stats_.segments_retransmitted = r.U64();
  stats_.timeouts = r.U64();
  stats_.fast_retransmits = r.U64();
  stats_.acks_received = r.U64();
  stats_.ece_acks_received = r.U64();
  stats_.acks_sent = r.U64();
  stats_.acks_batch_deferred = r.U64();

  iss_ = SeqNum(r.U32());
  std::uint64_t rng_state[4];
  for (std::uint64_t& s : rng_state) s = r.U64();
  rng_.LoadState(rng_state);
  cc_->LoadState(r);

  sacked_.clear();
  const std::uint64_t n_sacked = r.U64();
  for (std::uint64_t i = 0; i < n_sacked; ++i) {
    const std::int64_t start = r.I64();
    sacked_.Add(start, r.I64());
  }
  sack_high_ = r.I64();
  sack_rtx_next_ = r.I64();

  rto_timer_.LoadState(r);
  rx_.LoadState(r);
  unacked_segments_ = static_cast<int>(r.I64());
  delack_timer_.LoadState(r);
  pace_until_ = r.I64();
  pace_timer_.LoadState(r);

  // Rebuild the host-side demux entry (and its port refcount) exactly as
  // Connect/AcceptFrom did in the saved run.
  if (registered_) {
    host_.RegisterConnection(local_port_, remote_, remote_port_,
                             [this](const Packet& p) { OnPacket(p); });
  }
}

// ---------------------------------------------------------------------------
// Listener

TcpListener::TcpListener(Host& host, PortNum port, CcFactory cc_factory,
                         TcpSocket::Config config, AcceptCallback on_accept)
    : host_(host),
      port_(port),
      cc_factory_(std::move(cc_factory)),
      config_(config),
      on_accept_(std::move(on_accept)) {
  DCTCPP_ASSERT(cc_factory_ != nullptr);
  DCTCPP_ASSERT(on_accept_ != nullptr);
  host_.Listen(port_, [this](const Packet& p) { OnPacket(p); });
}

TcpListener::~TcpListener() { host_.StopListening(port_); }

void TcpListener::OnPacket(const Packet& pkt) {
  if (!pkt.tcp.syn || pkt.tcp.ack_flag) return;  // only fresh SYNs
  TcpSocket::Ptr socket = MakeArena<TcpSocket>(host_.sim().arena(), host_,
                                               cc_factory_(), config_);
  socket->AcceptFrom(pkt);
  on_accept_(std::move(socket));
}

}  // namespace dctcpp
