// TCP endpoint: connection management, reliable delivery, loss recovery.
//
// The socket implements the mechanisms every protocol variant shares —
// handshake, cumulative ACKs with delayed-ACK policy, RTT estimation and
// the RFC 6298 retransmission timer, duplicate-ACK detection with NewReno
// fast retransmit/recovery, ECN negotiation and receiver-side ECE echo
// (classic latch or DCTCP state machine), and the FLoss-TO / LAck-TO
// timeout classification the paper's Table I reports. Policy — window
// growth/decrease and DCTCP+ pacing — is delegated to a CongestionOps.
//
// Payloads are modelled as byte counts; application data is a linear
// stream of which only coverage is tracked.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dctcpp/net/host.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/sim/timer.h"
#include "dctcpp/tcp/cc.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/tcp/receive_buffer.h"
#include "dctcpp/tcp/rto.h"
#include "dctcpp/tcp/seq.h"
#include "dctcpp/util/arena.h"
#include "dctcpp/util/inline_function.h"
#include "dctcpp/util/interval_set.h"

namespace dctcpp {

class TcpSocket {
 public:
  struct Config {
    RtoEstimator::Config rto;
    /// Initial congestion window in MSS; 0 defers to the CongestionOps.
    int initial_cwnd = 0;
    /// Receive window in MSS. Large by default: the paper's experiments
    /// are never receive-window limited (W in [min, rwnd]).
    int rwnd_mss = 65000;
    /// Delayed-ACK policy: ACK every Nth in-order segment, or when the
    /// timer expires. The timeout is far below Linux's 40 ms default:
    /// datacenter DCTCP deployments tune the delayed-ACK timer to the
    /// RTT scale, and with a 40 ms timer a 1-MSS-window flow (DCTCP+'s
    /// floor) would be clocked by the timer instead of the network.
    int delayed_ack_segments = 2;
    Tick delayed_ack_timeout = 200 * kMicrosecond;
    Bytes mss = kMss;
    /// RFC 2018 selective acknowledgments (negotiated on the handshake;
    /// effective only when both ends enable it). Off by default: the
    /// paper's testbed protocols are evaluated without SACK, but the
    /// `sack_ablation` bench shows what SACK does (and does not) fix.
    bool sack = false;
  };

  enum class State : std::uint8_t {
    kClosed,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait,    ///< our FIN sent, awaiting its ACK
    kCloseWait,  ///< peer FIN received, app not yet closed
    kLastAck,    ///< peer closed, our FIN sent, awaiting its ACK
  };

  // Per-delivery callbacks are allocation-free InlineFunction delegates:
  // the usual [this]/[this, conn] captures store inline, and invoking is
  // one indirect call with no std::function machinery.
  using DataCallback = InlineFunction<void(Bytes)>;
  using Callback = InlineFunction<void()>;

  /// Owning handle for sockets allocated from the simulation's arena
  /// (accepted sockets live there; see util/arena.h for lifetime rules).
  using Ptr = ArenaPtr<TcpSocket>;

  /// Creates a closed socket bound to `host`. `cc` must be non-null.
  TcpSocket(Host& host, std::unique_ptr<CongestionOps> cc,
            const Config& config);
  ~TcpSocket();

  /// Arena-allocates a socket from `host`'s simulation arena — the normal
  /// way to create client sockets (lifetime: the whole simulation).
  static Ptr Create(Host& host, std::unique_ptr<CongestionOps> cc,
                    const Config& config) {
    return MakeArena<TcpSocket>(host.sim().arena(), host, std::move(cc),
                                config);
  }

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // --- application interface -------------------------------------------

  /// Active open toward (remote, remote_port); allocates a local port.
  void Connect(NodeId remote, PortNum remote_port);

  /// Queues `n` more bytes of application data for transmission.
  void Send(Bytes n);

  /// Closes the sending direction: a FIN follows all queued data.
  void Close();

  void set_on_connected(Callback cb) { on_connected_ = std::move(cb); }
  /// In-order payload delivery, called with the newly delivered byte count.
  void set_on_data(DataCallback cb) { on_data_ = std::move(cb); }
  /// Peer sent FIN (all of its data has been delivered).
  void set_on_remote_close(Callback cb) { on_remote_close_ = std::move(cb); }
  /// Send-side progress: called with the newly acknowledged byte count.
  void set_on_acked(DataCallback cb) { on_acked_ = std::move(cb); }
  /// Socket reached kClosed (both directions done); fires at the end of
  /// FinalizeClose. Used by churn workloads to recycle pooled sockets.
  void set_on_closed(Callback cb) { on_closed_ = std::move(cb); }

  /// Attaches a trace probe (not owned); nullptr detaches.
  void set_probe(TcpProbe* probe) { probe_ = probe; }

  // --- batched ACK processing ------------------------------------------
  //
  // Inside a sharded calendar drain, consecutive same-tick deliveries to
  // one socket form a run. The batched mode processes each ACK's full
  // chain (rtt sample -> RTO re-arm -> cwnd/alpha update -> send-window
  // refill) eagerly — every byte of socket and congestion state evolves
  // exactly as in per-ACK mode — but defers the *emission* of response
  // segments and the per-packet invariant sweep to the end of the run.
  // Emission order, packet uids, queue occupancy at each enqueue, and
  // scheduler sequence numbers are all preserved (see socket.cc for the
  // argument), so the two modes are bit-identical; the per-ACK path
  // remains selectable as the differential oracle.

  /// Selects the processing mode for sockets constructed afterwards
  /// (process-wide, mirroring SetReferenceFlowTableForTest). Batched is
  /// the default; `false` restores the per-ACK reference path.
  static void SetBatchedAckMode(bool batched);
  static bool BatchedAckMode();

  // --- introspection (CongestionOps, probes, tests) ---------------------

  State state() const { return state_; }
  bool Established() const { return state_ == State::kEstablished; }
  int cwnd() const { return cwnd_; }
  int ssthresh() const { return ssthresh_; }
  bool InSlowStart() const { return cwnd_ < ssthresh_; }
  bool InRecovery() const { return in_recovery_; }
  int MinCwnd() const { return cc_->MinCwnd(); }
  Bytes mss() const { return config_.mss; }
  bool EcnNegotiated() const { return ecn_ok_; }
  bool SackNegotiated() const { return sack_ok_; }
  Tick srtt() const { return rto_.srtt(); }
  const RtoEstimator& rto_estimator() const { return rto_; }
  Simulator& sim() const { return host_.sim(); }
  Host& host() { return host_; }
  /// This socket's private random stream (ISS, pacing jitter, slow-time
  /// evolution), derived from (run seed, host id, per-host socket serial).
  /// Private streams keep draw order decoupled across flows — adding or
  /// removing one flow's randomness cannot shift another's — which is
  /// what lets sharded runs stay bit-identical at any shard count.
  Rng& rng() { return rng_; }
  NodeId remote() const { return remote_; }
  PortNum local_port() const { return local_port_; }
  PortNum remote_port() const { return remote_port_; }
  CongestionOps& cc() { return *cc_; }

  /// Unacknowledged bytes in flight.
  Bytes FlightSize() const { return stream_next_ - stream_acked_; }
  /// App bytes acknowledged end-to-end.
  Bytes StreamAcked() const { return stream_acked_; }
  /// App bytes queued (sent or not) since the socket opened.
  Bytes StreamQueued() const { return app_bytes_queued_; }
  /// App bytes received in order.
  Bytes StreamReceived() const { return rx_.DeliveredBytes(); }

  // CongestionOps mutators.
  void set_cwnd(int cwnd_mss);
  void set_ssthresh(int ssthresh_mss);

  /// Requests CWR to be carried on the next outgoing data segment (set by
  /// CongestionOps after an ECE-driven window reduction).
  void SetCwrPending() { cwr_pending_ = true; }

  // Lifetime stats.
  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_retransmitted = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t ece_acks_received = 0;
    std::uint64_t acks_sent = 0;
    /// ACKs whose emission was deferred by the batched fast path (0 in
    /// per-ACK mode; lets tests assert batching actually engaged).
    std::uint64_t acks_batch_deferred = 0;
  };
  const Stats& stats() const { return stats_; }

  // --- checkpoint --------------------------------------------------------
  // Serializes every simulation-visible field (handshake, stream offsets,
  // congestion state, SACK scoreboards, timers with their exact wheel
  // armings, the private RNG, and the polymorphic CongestionOps state).
  // Callbacks, the probe, and the arena placement are NOT serialized; the
  // restoring workload recreates the socket (same host, same cc type, same
  // config) and re-attaches its callbacks, then LoadState overwrites the
  // fresh state and — when the saved socket was registered — re-registers
  // the connection with the host so demux tables and port refcounts are
  // rebuilt. Only valid at a RunUntil barrier: no batched-ACK run may be
  // open (defer_tx_ / burst_pending_ false, burst_tx_ empty).
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  friend class TcpListener;
  friend class ChurnListener;

  // Passive open: adopt an incoming SYN (called by TcpListener).
  void AcceptFrom(const Packet& syn);

  // --- ingress ----------------------------------------------------------
  void OnPacket(const Packet& pkt);
  void HandleHandshake(const Packet& pkt);
  void ProcessAck(const Packet& pkt);
  void ProcessPayload(const Packet& pkt);
  void SendAckNow(bool ece);
  bool ReceiverEce() const;

  // --- egress -----------------------------------------------------------
  void TrySend();
  bool SendDataSegment(std::int64_t offset, Bytes len, bool retransmit);
  void SendControl(bool syn, bool fin, bool ack);
  Packet MakePacket() const;

  // --- batched ACK processing (see the public section) ------------------
  /// Whether `pkt` may be processed with emission deferred: a clean
  /// cumulative ACK making strict progress on an established, non-paced,
  /// non-recovering connection inside an open burst scope.
  bool AckBurstEligible(const Packet& pkt) const;
  /// All socket egress funnels through here; while `defer_tx_` is set the
  /// fully built packet is buffered instead of handed to the host.
  void EmitPacket(Packet& pkt);
  /// Emits the deferred packets (in order) without closing the batch.
  void FlushBurstTx();
  /// End-of-run flush: emit, then run the deferred invariant sweep.
  void FlushAckBurst();
  static void FlushAckBurstThunk(void* self) {
    static_cast<TcpSocket*>(self)->FlushAckBurst();
  }

  // --- SACK scoreboard (sender side, linear stream offsets) -------------
  void ProcessSackBlocks(const Packet& pkt);
  void SackMarkRange(std::int64_t start, std::int64_t end);
  bool IsSacked(std::int64_t offset) const;
  /// First unSACKed offset at or after `from` and below the scoreboard's
  /// high mark; -1 when none (no known hole).
  std::int64_t NextHole(std::int64_t from) const;
  /// Retransmits the lowest known hole (SACK recovery step); returns
  /// whether anything was sent.
  bool RetransmitNextHole();

  // --- loss recovery ----------------------------------------------------
  void EnterFastRetransmit();
  void OnRetransmissionTimeout();
  void ArmRtoTimer();
  void MaybeCancelRtoTimer();
  void InvalidateRttSample() { rtt_pending_ = false; }

  void EstablishCommon();
  void FinalizeClose();

  // --- invariant checking (util/invariants.h) ---------------------------
  /// Timer-callback guard: a timer must never fire for a dead (closed)
  /// flow — FinalizeClose cancels all three. Returns whether the callback
  /// may proceed; a firing on a closed socket is recorded as a violation.
  bool TimerAlive(const char* which);
  /// Sequence-space conservation (stream_acked_ <= stream_next_ <=
  /// stream_max_sent_ <= queued), SACK scoreboard bounds, and receive
  /// scoreboard structure. Called after every ingress packet.
  void CheckInvariants();

  SeqNum SeqOfStream(std::int64_t offset) const {
    return iss_ + 1 + offset;
  }

  /// Never called; its body static-asserts the hot-section layout below
  /// (offsetof needs the complete type, so the checks live in socket.cc).
  static void StaticAssertHotLayout();

  // --- hot section ------------------------------------------------------
  // Everything the per-ACK chain (ProcessAck -> cc OnAck -> TrySend
  // bookkeeping) dereferences on every ACK is packed here, in the object's
  // leading cache lines; StaticAssertHotLayout pins the boundary. The cold
  // tail below holds handshake, receive-side, SACK, callback, and timer
  // state touched at most once per data segment or per connection event.

  Host& host_;
  std::unique_ptr<CongestionOps> cc_;
  TcpProbe* probe_ = nullptr;

  State state_ = State::kClosed;
  bool registered_ = false;
  bool syn_acked_ = false;
  bool fin_pending_ = false;   ///< app closed; FIN after queued data
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  bool in_recovery_ = false;
  bool sack_ok_ = false;       ///< RFC 2018 negotiated (see scoreboard below)
  bool ecn_ok_ = false;
  bool cwr_pending_ = false;
  bool rtt_pending_ = false;
  bool irs_valid_ = false;
  bool peer_fin_received_ = false;
  bool rx_ce_state_ = false;    ///< DCTCP receiver CE state machine
  bool rx_ece_latched_ = false; ///< classic ECN receiver latch
  bool pace_armed_ = false;  ///< a reserved pacing slot awaits its send
  bool batched_ack_ = false;   ///< processing mode, captured at construction
  bool defer_tx_ = false;      ///< EmitPacket buffers instead of sending
  bool burst_pending_ = false; ///< a burst-flush callback is registered

  NodeId remote_ = kInvalidNode;
  PortNum local_port_ = 0;
  PortNum remote_port_ = 0;

  // Sequence bookkeeping. The stream_* members are linear (unwrapped)
  // offsets into the application byte stream; SeqOfStream maps them to
  // wire sequence numbers.
  std::int64_t stream_acked_ = 0;   ///< first unacked app byte
  std::int64_t stream_next_ = 0;    ///< next app byte to transmit
  std::int64_t stream_max_sent_ = 0;  ///< high-water mark (snd_max)
  std::int64_t app_bytes_queued_ = 0;

  // Congestion state (MSS units), policy applied by cc_.
  int cwnd_ = 2;
  int ssthresh_ = 0x7fffffff;
  int dupacks_ = 0;
  std::int64_t recover_ = 0;  ///< NewReno recovery point (stream offset)

  // RTT / RTO.
  std::int64_t rtt_offset_end_ = 0;
  Tick rtt_sent_at_ = 0;
  RtoEstimator rto_;
  // Feedback-since-timer-arm, for the FLoss/LAck classification.
  std::uint64_t dupacks_since_arm_ = 0;
  std::uint64_t progress_since_arm_ = 0;

  Config config_;  ///< mss / rwnd_mss are read by every TrySend
  Stats stats_;

  // --- cold section -----------------------------------------------------

  SeqNum iss_{};           ///< initial send sequence (the SYN)
  Rng rng_;

  Callback on_connected_;
  DataCallback on_data_;
  Callback on_remote_close_;
  DataCallback on_acked_;
  Callback on_closed_;

  // SACK sender scoreboard of selectively acknowledged ranges (disjoint,
  // in linear stream offsets; flat sorted interval vector — no per-range
  // allocation).
  IntervalSet sacked_;
  std::int64_t sack_high_ = 0;      ///< highest SACKed offset seen
  std::int64_t sack_rtx_next_ = 0;  ///< holes below this already resent

  Timer rto_timer_;

  // Receive side.
  ReceiveBuffer rx_;
  int unacked_segments_ = 0;
  Timer delack_timer_;

  // Pacing (DCTCP+).
  Tick pace_until_ = 0;
  Timer pace_timer_;

  /// Deferred emissions of the current batched-ACK run, in send order.
  std::vector<Packet> burst_tx_;
};

/// Passive endpoint: accepts connections on a port, creating one TcpSocket
/// per SYN with a fresh CongestionOps from the factory.
class TcpListener {
 public:
  using CcFactory = std::function<std::unique_ptr<CongestionOps>()>;
  /// Receives ownership of the accepted socket immediately on SYN arrival,
  /// before the handshake completes, so callbacks can be attached in time.
  /// Accepted sockets are allocated from the host's simulation arena.
  using AcceptCallback = std::function<void(TcpSocket::Ptr)>;

  TcpListener(Host& host, PortNum port, CcFactory cc_factory,
              TcpSocket::Config config, AcceptCallback on_accept);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  PortNum port() const { return port_; }

 private:
  void OnPacket(const Packet& pkt);

  Host& host_;
  PortNum port_;
  CcFactory cc_factory_;
  TcpSocket::Config config_;
  AcceptCallback on_accept_;
};

}  // namespace dctcpp
