// TCP NewReno congestion control, optionally with classic RFC 3168 ECN.
//
// This is the paper's "TCP" baseline (non-ECN by default: the switch then
// signals congestion only by dropping). Slow start doubles per RTT,
// congestion avoidance adds one MSS per window, loss halves.
#pragma once

#include "dctcpp/tcp/cc.h"

namespace dctcpp {

class NewRenoCc : public CongestionOps {
 public:
  struct Config {
    bool ecn = false;   ///< classic-ECN response (halve once per window)
    int initial_cwnd = 3;
    int min_cwnd = 2;
  };

  NewRenoCc();  // default Config
  explicit NewRenoCc(const Config& config) : config_(config) {}

  const char* Name() const override { return "newreno"; }
  bool EcnCapable() const override { return config_.ecn; }
  int InitialCwnd() const override { return config_.initial_cwnd; }
  int MinCwnd() const override { return config_.min_cwnd; }

  void OnAck(TcpSocket& sk, const AckContext& ctx) override;
  int SsthreshAfterLoss(const TcpSocket& sk) const override;

  void SaveState(CheckpointWriter& w) const override {
    w.I64(ca_bytes_acked_);
    w.I64(reduce_end_);
    w.Bool(reduce_armed_);
  }
  void LoadState(CheckpointReader& r) override {
    ca_bytes_acked_ = r.I64();
    reduce_end_ = r.I64();
    reduce_armed_ = r.Bool();
  }

 protected:
  /// Slow-start / congestion-avoidance growth shared with DctcpCc.
  void GrowWindow(TcpSocket& sk, Bytes newly_acked);

  /// True when an ECE-driven reduction is permitted (at most one per
  /// window of data, RFC 3168 style).
  bool CanReduceNow(const TcpSocket& sk) const;
  /// Marks the current window as reduced.
  void MarkReduced(TcpSocket& sk);

  Config config_;

 private:
  Bytes ca_bytes_acked_ = 0;     ///< congestion-avoidance byte accumulator
  std::int64_t reduce_end_ = 0;  ///< stream offset gating the next reduction
  bool reduce_armed_ = false;
};

inline NewRenoCc::NewRenoCc() : NewRenoCc(Config{}) {}

}  // namespace dctcpp
