#include "dctcpp/tcp/rto.h"

#include <algorithm>

#include "dctcpp/util/assert.h"

namespace dctcpp {

void RtoEstimator::AddSample(Tick rtt) {
  DCTCPP_ASSERT(rtt >= 0);
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
    return;
  }
  // RFC 6298: RTTVAR <- (1-beta)*RTTVAR + beta*|SRTT-R'|, beta = 1/4
  //           SRTT   <- (1-alpha)*SRTT + alpha*R',       alpha = 1/8
  const Tick err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + rtt) / 8;
}

Tick RtoEstimator::Rto() const {
  Tick base;
  if (!has_sample_) {
    base = config_.initial_rto;
  } else {
    base = srtt_ + std::max(config_.clock_granularity, 4 * rttvar_);
    base = std::max(base, config_.min_rto);
  }
  // Apply Karn backoff with saturation at max_rto.
  Tick rto = base;
  for (int i = 0; i < backoff_shift_ && rto < config_.max_rto; ++i) {
    rto *= 2;
  }
  return std::min(rto, config_.max_rto);
}

void RtoEstimator::Backoff() {
  if (backoff_shift_ < 16) ++backoff_shift_;
}

}  // namespace dctcpp
