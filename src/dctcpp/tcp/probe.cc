#include "dctcpp/tcp/probe.h"

#include "dctcpp/net/packet.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {

RecordingProbe::RecordingProbe(int cwnd_bins)
    : cwnd_histogram_(1, cwnd_bins) {}

void RecordingProbe::OnAckProcessed(const TcpSocket& sk, int cwnd, bool ece,
                                    bool at_min_with_ece) {
  ++acks_;
  if (ece) ++ece_acks_;
  if (at_min_with_ece) {
    ++at_min_with_ece_;
    if (tick_log_) at_min_ticks_.push_back(sk.sim().Now());
  }
  cwnd_histogram_.Add(cwnd);
}

void RecordingProbe::OnSegmentSent(const TcpSocket& sk, const Packet& pkt,
                                   bool retransmit) {
  (void)sk;
  (void)pkt;
  ++segments_sent_;
  if (retransmit) ++retransmitted_segments_;
}

void RecordingProbe::OnTimeout(const TcpSocket& sk, TimeoutKind kind) {
  if (kind == TimeoutKind::kFullWindowLoss) {
    ++floss_timeouts_;
    if (tick_log_) floss_ticks_.push_back(sk.sim().Now());
  } else {
    ++lack_timeouts_;
    if (tick_log_) lack_ticks_.push_back(sk.sim().Now());
  }
}

void RecordingProbe::OnFastRetransmit(const TcpSocket& sk) {
  (void)sk;
  ++fast_retransmits_;
}

void RecordingProbe::ResetCounters() {
  acks_ = 0;
  ece_acks_ = 0;
  at_min_with_ece_ = 0;
  floss_timeouts_ = 0;
  lack_timeouts_ = 0;
  fast_retransmits_ = 0;
  segments_sent_ = 0;
  retransmitted_segments_ = 0;
}

}  // namespace dctcpp
