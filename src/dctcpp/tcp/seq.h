// Wrap-safe 32-bit TCP sequence number arithmetic (RFC 793 modular
// comparison: a < b iff (a - b) as signed 32-bit is negative).
#pragma once

#include <cstdint>

namespace dctcpp {

/// A TCP sequence number. Comparisons are modular, valid when the compared
/// values are within 2^31 of each other (always true for in-flight data).
class SeqNum {
 public:
  constexpr SeqNum() = default;
  constexpr explicit SeqNum(std::uint32_t raw) : raw_(raw) {}

  constexpr std::uint32_t raw() const { return raw_; }

  constexpr SeqNum operator+(std::int64_t n) const {
    return SeqNum(static_cast<std::uint32_t>(raw_ + static_cast<std::uint32_t>(n)));
  }
  constexpr SeqNum operator-(std::int64_t n) const {
    return SeqNum(static_cast<std::uint32_t>(raw_ - static_cast<std::uint32_t>(n)));
  }
  SeqNum& operator+=(std::int64_t n) {
    raw_ += static_cast<std::uint32_t>(n);
    return *this;
  }

  /// Signed modular distance: *this - other, in [-2^31, 2^31).
  constexpr std::int32_t DistanceFrom(SeqNum other) const {
    return static_cast<std::int32_t>(raw_ - other.raw_);
  }

  friend constexpr bool operator==(SeqNum a, SeqNum b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(SeqNum a, SeqNum b) {
    return a.raw_ != b.raw_;
  }
  friend constexpr bool operator<(SeqNum a, SeqNum b) {
    return a.DistanceFrom(b) < 0;
  }
  friend constexpr bool operator>(SeqNum a, SeqNum b) { return b < a; }
  friend constexpr bool operator<=(SeqNum a, SeqNum b) { return !(b < a); }
  friend constexpr bool operator>=(SeqNum a, SeqNum b) { return !(a < b); }

 private:
  std::uint32_t raw_ = 0;
};

constexpr SeqNum SeqMax(SeqNum a, SeqNum b) { return a < b ? b : a; }
constexpr SeqNum SeqMin(SeqNum a, SeqNum b) { return a < b ? a : b; }

}  // namespace dctcpp
