// Pluggable congestion control, modelled on Linux `tcp_congestion_ops`.
//
// The socket owns loss detection, retransmission, and the cwnd/ssthresh
// variables; the CongestionOps object decides how the window grows, how it
// shrinks on loss and on ECN-echo, and — for DCTCP+ — how long to pace
// between segment transmissions. Implementations: NewReno (tcp/),
// Dctcp (dctcp/), DctcpPlus (core/).
#pragma once

#include <cstdint>
#include <memory>

#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/time.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

class TcpSocket;

/// Per-ACK context handed to CongestionOps::OnAck.
struct AckContext {
  Bytes newly_acked = 0;  ///< bytes newly cumulatively acknowledged
  bool duplicate = false; ///< a duplicate ACK (no progress, no window data)
  bool ece = false;       ///< ECN-echo flag was set on this ACK
  bool in_recovery = false;  ///< socket is in fast recovery
  Tick rtt_sample = -1;   ///< valid (>= 0) when this ACK timed a segment
};

class CongestionOps {
 public:
  virtual ~CongestionOps() = default;

  virtual const char* Name() const = 0;

  /// Whether data packets are sent ECN-capable (ECT). Non-ECN senders see
  /// only drops at the switch.
  virtual bool EcnCapable() const = 0;

  /// Receiver-side ECE echo policy: DCTCP's per-packet CE state machine
  /// (true) versus the classic RFC 3168 latch-until-CWR (false).
  virtual bool DctcpStyleReceiver() const { return false; }

  /// Initial congestion window, in MSS.
  virtual int InitialCwnd() const { return 3; }

  /// Smallest window the regulation law may select (the paper's lower
  /// bound discussion: 2 MSS normally, 1 MSS for DCTCP+).
  virtual int MinCwnd() const { return 2; }

  /// Called once the connection is established.
  virtual void OnEstablished(TcpSocket& sk) { (void)sk; }

  /// Called for every received ACK after the socket's own bookkeeping.
  /// This is where window growth, DCTCP's alpha accounting, ECE reactions,
  /// and DCTCP+'s state machine live.
  virtual void OnAck(TcpSocket& sk, const AckContext& ctx) = 0;

  /// Multiplicative-decrease target (MSS) on entry to fast recovery.
  virtual int SsthreshAfterLoss(const TcpSocket& sk) const = 0;

  /// Called when the retransmission timer fires (before the socket resets
  /// cwnd to the loss window). DCTCP+ treats this as a congestion signal.
  virtual void OnRetransmissionTimeout(TcpSocket& sk) { (void)sk; }

  /// Called when triple duplicate ACKs trigger fast retransmit (after the
  /// socket applied SsthreshAfterLoss). A `retrans` signal for DCTCP+.
  virtual void OnFastRetransmit(TcpSocket& sk) { (void)sk; }

  /// Extra delay to impose before transmitting the *next* data segment
  /// (DCTCP+ `slow_time`); 0 disables pacing.
  virtual Tick PacingDelay(TcpSocket& sk, Rng& rng) {
    (void)sk;
    (void)rng;
    return 0;
  }

  /// Whether PacingDelay may currently return nonzero (or draw from the
  /// RNG) for this socket. The batched-ACK fast path only defers packet
  /// emission while pacing is provably disengaged, because arming a pace
  /// timer consumes a scheduler sequence number whose order relative to
  /// the port's transmit event must match per-ACK processing exactly.
  /// Conservative overrides are fine; `true` merely disables batching.
  virtual bool MayPace(const TcpSocket& sk) const {
    (void)sk;
    return false;
  }

  /// Checkpoint: dynamic congestion state only (configuration is rebuilt
  /// by constructing the same ops). Overrides must chain to their base
  /// class first, mirroring construction order.
  virtual void SaveState(CheckpointWriter& w) const { (void)w; }
  virtual void LoadState(CheckpointReader& r) { (void)r; }
};

}  // namespace dctcpp
