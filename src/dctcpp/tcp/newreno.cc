#include "dctcpp/tcp/newreno.h"

#include <algorithm>

#include "dctcpp/tcp/socket.h"

namespace dctcpp {

void NewRenoCc::GrowWindow(TcpSocket& sk, Bytes newly_acked) {
  if (newly_acked <= 0 || sk.InRecovery()) return;
  if (sk.InSlowStart()) {
    // One MSS per acked full segment; delayed ACKs cover two segments, so
    // this is byte-counted (RFC 3465 with L=1 per ACKed MSS).
    const int inc =
        static_cast<int>(std::max<Bytes>(1, newly_acked / sk.mss()));
    sk.set_cwnd(std::min(sk.cwnd() + inc, sk.ssthresh()));
  } else {
    // Congestion avoidance: +1 MSS per cwnd worth of acknowledged bytes.
    ca_bytes_acked_ += newly_acked;
    const Bytes window_bytes = static_cast<Bytes>(sk.cwnd()) * sk.mss();
    if (ca_bytes_acked_ >= window_bytes) {
      ca_bytes_acked_ -= window_bytes;
      sk.set_cwnd(sk.cwnd() + 1);
    }
  }
}

bool NewRenoCc::CanReduceNow(const TcpSocket& sk) const {
  return !reduce_armed_ || sk.StreamAcked() >= reduce_end_;
}

void NewRenoCc::MarkReduced(TcpSocket& sk) {
  reduce_armed_ = true;
  reduce_end_ = sk.StreamAcked() + sk.FlightSize();  // current snd_nxt
}

void NewRenoCc::OnAck(TcpSocket& sk, const AckContext& ctx) {
  // Classic ECN: on ECE, halve once per window and tell the receiver via
  // CWR that we reacted.
  if (config_.ecn && ctx.ece && !sk.InRecovery() && CanReduceNow(sk)) {
    const int target = std::max(sk.cwnd() / 2, MinCwnd());
    sk.set_ssthresh(target);
    sk.set_cwnd(target);
    sk.SetCwrPending();
    MarkReduced(sk);
    return;  // no growth on the reducing ACK
  }
  GrowWindow(sk, ctx.newly_acked);
}

int NewRenoCc::SsthreshAfterLoss(const TcpSocket& sk) const {
  return std::max(sk.cwnd() / 2, MinCwnd());
}

}  // namespace dctcpp
