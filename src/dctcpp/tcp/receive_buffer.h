// Receiver-side reassembly: tracks which sequence ranges have arrived and
// how far the in-order prefix (rcv_nxt) extends. Payload content is not
// modelled, only coverage.
//
// Internally 32-bit sequence numbers are unwrapped to 64-bit linear stream
// offsets: an arriving segment is positioned by its modular distance from
// the current rcv_nxt (always < 2^31 for live data), so arbitrarily long
// streams work across wraps while the interval bookkeeping stays linear.
//
// The out-of-order scoreboard is pluggable: production uses the flat
// sorted-vector IntervalSet (no allocation per out-of-order segment); the
// differential test instantiates the same logic over MapIntervalSet — the
// original std::map representation — and asserts identical ACK/SACK
// output on randomized arrival patterns.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dctcpp/tcp/seq.h"
#include "dctcpp/util/interval_set.h"
#include "dctcpp/util/invariants.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

template <typename IntervalSetT>
class BasicReceiveBuffer {
 public:
  explicit BasicReceiveBuffer(SeqNum initial_rcv_nxt = SeqNum(0))
      : rcv_nxt_(initial_rcv_nxt) {}

  /// Records the arrival of [seq, seq+len). Returns the number of bytes by
  /// which the in-order prefix advanced (0 for duplicates and segments that
  /// leave a hole in front).
  Bytes OnSegment(SeqNum seq, Bytes len);

  /// Next expected byte — the cumulative ACK value.
  SeqNum rcv_nxt() const { return rcv_nxt_; }

  /// Total in-order bytes delivered since construction.
  Bytes DeliveredBytes() const { return linear_rcv_nxt_; }

  /// True if out-of-order data is buffered beyond rcv_nxt.
  bool HasGaps() const { return !ooo_.empty(); }

  std::size_t OutOfOrderRanges() const { return ooo_.size(); }
  Bytes OutOfOrderBytes() const { return ooo_.TotalBytes(); }

  /// Up to `max_blocks` held out-of-order ranges as absolute sequence
  /// ranges, lowest first — the receiver's SACK option content.
  struct SeqRange {
    SeqNum start;
    SeqNum end;  // exclusive
  };
  std::vector<SeqRange> SackRanges(std::size_t max_blocks) const;

  /// Structural audit for the invariant checker: every out-of-order range
  /// must be non-empty, sorted, mutually disjoint and non-adjacent, and lie
  /// strictly beyond the in-order edge (anything touching the edge should
  /// already have advanced rcv_nxt). O(live ranges); reports to `inv`.
  void CheckConsistent(NetworkInvariants& inv) const {
    std::int64_t prev_end = linear_rcv_nxt_;
    ooo_.ForEach([&](const Interval& iv) {
      if (iv.end <= iv.start) {
        inv.Violate("rx-scoreboard", "empty out-of-order range [%lld, %lld)",
                    static_cast<long long>(iv.start),
                    static_cast<long long>(iv.end));
        return false;
      }
      if (iv.start <= prev_end) {
        inv.Violate("rx-scoreboard",
                    "range [%lld, %lld) overlaps/abuts predecessor ending at "
                    "%lld (in-order edge %lld)",
                    static_cast<long long>(iv.start),
                    static_cast<long long>(iv.end),
                    static_cast<long long>(prev_end),
                    static_cast<long long>(linear_rcv_nxt_));
        return false;
      }
      prev_end = iv.end;
      return true;
    });
  }

  /// Checkpoint: the in-order edge plus the out-of-order scoreboard
  /// (ranges re-Added in sorted order reproduce the flat vector exactly).
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.U32(rcv_nxt_.raw());
    w.I64(linear_rcv_nxt_);
    w.U64(ooo_.size());
    ooo_.ForEach([&w](const Interval& iv) {
      w.I64(iv.start);
      w.I64(iv.end);
      return true;
    });
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    rcv_nxt_ = SeqNum(r.U32());
    linear_rcv_nxt_ = r.I64();
    const std::uint64_t n = r.U64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::int64_t start = r.I64();
      const std::int64_t end = r.I64();
      ooo_.Add(start, end);
    }
  }

 private:
  SeqNum rcv_nxt_;
  std::int64_t linear_rcv_nxt_ = 0;
  // Disjoint, non-adjacent out-of-order ranges in linear offsets:
  // [start, end), all beyond linear_rcv_nxt_.
  IntervalSetT ooo_;
};

template <typename IntervalSetT>
Bytes BasicReceiveBuffer<IntervalSetT>::OnSegment(SeqNum seq, Bytes len) {
  DCTCPP_ASSERT(len >= 0);
  if (len == 0) return 0;

  // Unwrap to linear offsets relative to the current in-order edge.
  const std::int64_t start = linear_rcv_nxt_ + seq.DistanceFrom(rcv_nxt_);
  const std::int64_t end = start + len;

  const std::int64_t new_start = std::max(start, linear_rcv_nxt_);
  if (new_start >= end) return 0;  // entirely duplicate

  ooo_.Add(new_start, end);

  // Advance the in-order edge over any now-contiguous prefix.
  Bytes advanced = 0;
  if (!ooo_.empty()) {
    const Interval front = ooo_.front();
    if (front.start <= linear_rcv_nxt_) {
      const std::int64_t new_edge = std::max(front.end, linear_rcv_nxt_);
      advanced = new_edge - linear_rcv_nxt_;
      linear_rcv_nxt_ = new_edge;
      rcv_nxt_ += advanced;
      ooo_.PopFront();
    }
  }
  return advanced;
}

template <typename IntervalSetT>
std::vector<typename BasicReceiveBuffer<IntervalSetT>::SeqRange>
BasicReceiveBuffer<IntervalSetT>::SackRanges(std::size_t max_blocks) const {
  std::vector<SeqRange> out;
  out.reserve(std::min(max_blocks, ooo_.size()));
  ooo_.ForEach([&](const Interval& iv) {
    if (out.size() == max_blocks) return false;
    out.push_back(SeqRange{rcv_nxt_ + (iv.start - linear_rcv_nxt_),
                           rcv_nxt_ + (iv.end - linear_rcv_nxt_)});
    return true;
  });
  return out;
}

/// Production reassembly buffer: flat interval vector scoreboard.
using ReceiveBuffer = BasicReceiveBuffer<IntervalSet>;

extern template class BasicReceiveBuffer<IntervalSet>;
extern template class BasicReceiveBuffer<MapIntervalSet>;

}  // namespace dctcpp
