// Receiver-side reassembly: tracks which sequence ranges have arrived and
// how far the in-order prefix (rcv_nxt) extends. Payload content is not
// modelled, only coverage.
//
// Internally 32-bit sequence numbers are unwrapped to 64-bit linear stream
// offsets: an arriving segment is positioned by its modular distance from
// the current rcv_nxt (always < 2^31 for live data), so arbitrarily long
// streams work across wraps while the interval bookkeeping stays linear.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dctcpp/tcp/seq.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

class ReceiveBuffer {
 public:
  explicit ReceiveBuffer(SeqNum initial_rcv_nxt = SeqNum(0))
      : rcv_nxt_(initial_rcv_nxt) {}

  /// Records the arrival of [seq, seq+len). Returns the number of bytes by
  /// which the in-order prefix advanced (0 for duplicates and segments that
  /// leave a hole in front).
  Bytes OnSegment(SeqNum seq, Bytes len);

  /// Next expected byte — the cumulative ACK value.
  SeqNum rcv_nxt() const { return rcv_nxt_; }

  /// Total in-order bytes delivered since construction.
  Bytes DeliveredBytes() const { return linear_rcv_nxt_; }

  /// True if out-of-order data is buffered beyond rcv_nxt.
  bool HasGaps() const { return !ooo_.empty(); }

  std::size_t OutOfOrderRanges() const { return ooo_.size(); }
  Bytes OutOfOrderBytes() const;

  /// Up to `max_blocks` held out-of-order ranges as absolute sequence
  /// ranges, lowest first — the receiver's SACK option content.
  struct SeqRange {
    SeqNum start;
    SeqNum end;  // exclusive
  };
  std::vector<SeqRange> SackRanges(std::size_t max_blocks) const;

 private:
  SeqNum rcv_nxt_;
  std::int64_t linear_rcv_nxt_ = 0;
  // Disjoint, non-adjacent out-of-order ranges in linear offsets:
  // start -> end (exclusive), all > linear_rcv_nxt_.
  std::map<std::int64_t, std::int64_t> ooo_;
};

}  // namespace dctcpp
