// RFC 6298 retransmission-timeout estimation with a configurable floor.
//
// The paper evaluates both the Linux default RTO_min of 200 ms and a 10 ms
// floor (Fig 8 / the benchmark traffic of Fig 13), so the floor is a
// first-class knob here.
#pragma once

#include "dctcpp/util/time.h"

namespace dctcpp {

class RtoEstimator {
 public:
  struct Config {
    Tick min_rto = 200 * kMillisecond;  ///< RTO floor (Linux default)
    Tick max_rto = 60 * kSecond;        ///< cap for exponential backoff
    Tick initial_rto = 200 * kMillisecond;  ///< before any RTT sample
    /// RFC 6298 smoothing constants alpha = 1/8, beta = 1/4 are fixed.
    Tick clock_granularity = 1 * kMicrosecond;  ///< G in the RFC formula
  };

  RtoEstimator();  // default Config
  explicit RtoEstimator(const Config& config) : config_(config) {}

  /// Feeds one RTT measurement (from an unretransmitted segment only —
  /// Karn's rule is the caller's responsibility).
  void AddSample(Tick rtt);

  /// Current timeout value including any backoff.
  Tick Rto() const;

  /// Doubles the timeout after a retransmission timeout (Karn backoff).
  void Backoff();

  /// Clears backoff once new data is acknowledged.
  void ResetBackoff() { backoff_shift_ = 0; }

  bool HasSample() const { return has_sample_; }
  Tick srtt() const { return srtt_; }
  Tick rttvar() const { return rttvar_; }
  int backoff_shift() const { return backoff_shift_; }

  /// Checkpoint (templated to keep this header free of the checkpoint
  /// dependency; config is reconstructed by the socket's builder).
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.Bool(has_sample_);
    w.I64(srtt_);
    w.I64(rttvar_);
    w.I64(backoff_shift_);
  }
  template <typename Reader>
  void LoadState(Reader& r) {
    has_sample_ = r.Bool();
    srtt_ = r.I64();
    rttvar_ = r.I64();
    backoff_shift_ = static_cast<int>(r.I64());
  }

 private:
  Config config_;
  bool has_sample_ = false;
  Tick srtt_ = 0;
  Tick rttvar_ = 0;
  int backoff_shift_ = 0;
};

inline RtoEstimator::RtoEstimator() : RtoEstimator(Config()) {}

}  // namespace dctcpp
