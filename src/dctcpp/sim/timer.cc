// Timer is header-only; this TU anchors the library target.
#include "dctcpp/sim/timer.h"
