// Small-buffer-optimized callable for scheduler events.
//
// `InlineAction` replaces `std::function<void()>` on the event hot path.
// The common captures in the simulator — `[this]` continuations in
// net/link.cc and net/queue.cc, the RTO/pacing/delayed-ACK timer lambdas in
// tcp/socket.cc — are a pointer or two, so they fit the 48-byte inline
// buffer and scheduling them performs no heap allocation. Larger callables
// transparently fall back to a heap box. The type is move-only (events are
// scheduled exactly once) but may be *invoked* repeatedly, which Timer
// relies on for its long-lived callback.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dctcpp {

class InlineAction {
 public:
  /// Captures up to this many bytes live inline; larger ones are boxed.
  static constexpr std::size_t kInlineSize = 48;

  InlineAction() = default;
  InlineAction(std::nullptr_t) {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::kOps;
    }
  }

  InlineAction(InlineAction&& other) noexcept { MoveFrom(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { Reset(); }

  /// Invokes the stored callable (must be non-empty). Repeatable.
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the stored callable, leaving the action empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (no heap box).
  bool IsInline() const { return ops_ != nullptr && ops_->is_inline; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool is_inline;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* Get(void* b) { return std::launder(reinterpret_cast<Fn*>(b)); }
    static void Invoke(void* b) { (*Get(b))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn(std::move(*Get(src)));
      Get(src)->~Fn();
    }
    static void Destroy(void* b) { Get(b)->~Fn(); }
    static constexpr Ops kOps{Invoke, Relocate, Destroy, /*is_inline=*/true};
  };

  template <typename Fn>
  struct BoxedOps {
    static Fn* Get(void* b) {
      return *std::launder(reinterpret_cast<Fn**>(b));
    }
    static void Invoke(void* b) { (*Get(b))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn*(Get(src));  // steal the box
    }
    static void Destroy(void* b) { delete Get(b); }
    static constexpr Ops kOps{Invoke, Relocate, Destroy, /*is_inline=*/false};
  };

  void MoveFrom(InlineAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace dctcpp
