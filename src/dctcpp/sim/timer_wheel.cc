#include "dctcpp/sim/timer_wheel.h"

#include <algorithm>
#include <utility>

#include "dctcpp/util/profile.h"

namespace dctcpp {

namespace {

/// Bitmask with `count` bits set starting at bit `start`, wrapping at 64.
/// Precondition: 1 <= count <= 64.
std::uint64_t CircularMask(int start, std::uint64_t count) {
  const std::uint64_t ones =
      count >= 64 ? ~0ull : (std::uint64_t(1) << count) - 1;
  return std::rotl(ones, start);
}

}  // namespace

TimerWheelScheduler::TimerWheelScheduler() : slots0_(kL0Slots) {}

std::uint32_t TimerWheelScheduler::AllocNode() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = NodeAt(idx).next;
    return idx;
  }
  if (alloc_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return alloc_count_++;
}

void TimerWheelScheduler::FreeNode(Node& n, std::uint32_t idx) {
  n.action.Reset();
  ++n.gen;  // invalidates every EventId handed out for this slot so far
  n.loc = kLocFree;
  n.level = -1;
  n.slot = -1;
  n.next = free_head_;
  free_head_ = idx;
}

void TimerWheelScheduler::SetL0Bit(int slot) {
  const int w = slot >> 6;
  occ0_[w] |= std::uint64_t(1) << (slot & 63);
  occ0_sum_[w >> 6] |= std::uint64_t(1) << (w & 63);
}

void TimerWheelScheduler::ClearL0Bit(int slot) {
  const int w = slot >> 6;
  if ((occ0_[w] &= ~(std::uint64_t(1) << (slot & 63))) == 0) {
    occ0_sum_[w >> 6] &= ~(std::uint64_t(1) << (w & 63));
  }
}

int TimerWheelScheduler::FindL0From(int pos) const {
  const int w = pos >> 6;
  const std::uint64_t first = occ0_[w] & (~std::uint64_t(0) << (pos & 63));
  if (first != 0) return (w << 6) | std::countr_zero(first);
  // Words strictly after `w` within the same summary word. The double
  // shift sidesteps the undefined shift-by-64 when (w & 63) == 63.
  const int sw = w >> 6;
  const std::uint64_t same = (occ0_sum_[sw] >> (w & 63)) >> 1;
  if (same != 0) {
    const int wi = w + 1 + std::countr_zero(same);
    return (wi << 6) | std::countr_zero(occ0_[wi]);
  }
  // Remaining summary words in circular order. The final iteration
  // revisits `sw` unmasked: any set bit there now indexes a word <= w
  // (later ones were ruled out above), which is exactly the wrap case.
  for (int j = 1; j <= kL0SumWords; ++j) {
    const int si = (sw + j) & (kL0SumWords - 1);
    const std::uint64_t s = occ0_sum_[si];
    if (s != 0) {
      const int wi = (si << 6) | std::countr_zero(s);
      return (wi << 6) | std::countr_zero(occ0_[wi]);
    }
  }
  return -1;
}

void TimerWheelScheduler::LinkSorted(int level, int slot, std::uint32_t idx,
                                     Node& n) {
  n.loc = kLocWheel;
  n.level = static_cast<std::int8_t>(level);
  n.slot = static_cast<std::int16_t>(slot);
  Slot& s = level == 0 ? slots0_[slot] : upper_[level - 1][slot];
  std::uint32_t& head = s.head;
  std::uint32_t& tail = s.tail;
  if (head == kNil) {
    head = tail = idx;
    n.prev = n.next = kNil;
    if (level == 0) {
      SetL0Bit(slot);
    } else {
      occupied_[level - 1] |= std::uint64_t(1) << slot;
    }
    return;
  }
  // Fresh schedules carry the highest seq so far and append in O(1); only
  // cascaded re-homes (older seqs) walk backwards to their sorted position.
  std::uint32_t after = tail;
  while (after != kNil && NodeAt(after).seq > n.seq) after = NodeAt(after).prev;
  if (after == kNil) {
    n.prev = kNil;
    n.next = head;
    NodeAt(head).prev = idx;
    head = idx;
  } else {
    Node& a = NodeAt(after);
    n.prev = after;
    n.next = a.next;
    if (a.next != kNil) {
      NodeAt(a.next).prev = idx;
    } else {
      tail = idx;
    }
    a.next = idx;
  }
}

void TimerWheelScheduler::Unlink(std::uint32_t idx, Node& n) {
  DCTCPP_DASSERT(n.loc == kLocWheel);
  const int level = n.level;
  const int slot = n.slot;
  Slot& s = level == 0 ? slots0_[slot] : upper_[level - 1][slot];
  std::uint32_t& head = s.head;
  std::uint32_t& tail = s.tail;
  if (n.prev != kNil) {
    NodeAt(n.prev).next = n.next;
  } else {
    head = n.next;
  }
  if (n.next != kNil) {
    NodeAt(n.next).prev = n.prev;
  } else {
    tail = n.prev;
  }
  if (head == kNil) {
    if (level == 0) {
      ClearL0Bit(slot);
    } else {
      occupied_[level - 1] &= ~(std::uint64_t(1) << slot);
    }
  }
  (void)idx;
}

void TimerWheelScheduler::Place(std::uint32_t idx, Node& n) {
  const Tick delta = n.at - now_;
  DCTCPP_DASSERT(delta >= 0);
  if (delta < kL0Slots) {
    // The common case: every per-packet datapath event (serialization,
    // propagation, inline wakeups) lands here and never cascades.
    LinkSorted(0, static_cast<int>(n.at & (kL0Slots - 1)), idx, n);
    return;
  }
  if (n.at < upper_min_at_) upper_min_at_ = n.at;
  if (delta >= kWheelSpan) {
    n.loc = kLocHeap;
    n.level = -1;
    n.slot = -1;
    heap_.push_back(HeapEntry{n.at, n.seq, idx, n.gen});
    std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
    return;
  }
  const int ub = std::bit_width(static_cast<std::uint64_t>(delta)) - 1;
  const int level = (ub - kL0Bits) / kLevelBits + 1;
  const int slot =
      static_cast<int>((n.at >> UpperShift(level)) & (kSlotsPerLevel - 1));
  LinkSorted(level, slot, idx, n);
}

EventId TimerWheelScheduler::ScheduleAt(Tick at, Action action) {
  DCTCPP_ASSERT(static_cast<bool>(action));
  DCTCPP_ASSERT(at >= now_);
  const std::uint32_t idx = AllocNode();
  Node& n = NodeAt(idx);
  n.at = at;
  n.seq = next_seq_++;
  n.action = std::move(action);
  Place(idx, n);
  ++live_count_;
  if (cached_valid_ && at < cached_at_) {
    // Strictly earlier than the cached minimum: it is the new minimum.
    // (A tie keeps the cached event — its seq is necessarily lower.)
    cached_at_ = at;
    cached_seq_ = n.seq;
    cached_idx_ = idx;
    cached_from_heap_ = (n.loc == kLocHeap);
  }
  return EventId{(static_cast<std::uint64_t>(n.gen) << 32) | (idx + 1)};
}

void TimerWheelScheduler::Cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint32_t idx =
      static_cast<std::uint32_t>(id.value & 0xffffffffu) - 1;
  if (idx >= alloc_count_) return;
  Node& n = NodeAt(idx);
  if (n.gen != static_cast<std::uint32_t>(id.value >> 32)) return;  // stale
  if (n.loc == kLocFree) return;
  if (n.loc == kLocWheel) {
    Unlink(idx, n);
  }
  // Heap-resident events leave a stale HeapEntry behind; the generation
  // bump in FreeNode makes it unrecognizable and it is dropped on pop.
  if (cached_valid_ && cached_idx_ == idx) cached_valid_ = false;
  FreeNode(n, idx);
  --live_count_;
}

std::uint32_t TimerWheelScheduler::CreatePinned(PinnedFn fn, void* ctx) {
  DCTCPP_ASSERT(fn != nullptr);
  const std::uint32_t idx = AllocNode();
  Node& n = NodeAt(idx);
  n.pin_fn = fn;
  n.pin_ctx = ctx;
  n.loc = kLocParked;
  return idx;
}

void TimerWheelScheduler::DestroyPinned(std::uint32_t idx) {
  Node& n = NodeAt(idx);
  DCTCPP_DASSERT(n.pin_fn != nullptr);
  CancelPinned(idx);
  n.pin_fn = nullptr;
  n.pin_ctx = nullptr;
  FreeNode(n, idx);
}

void TimerWheelScheduler::ArmPinnedAt(std::uint32_t idx, Tick at) {
  DCTCPP_ASSERT(at >= now_);
  Node& n = NodeAt(idx);
  DCTCPP_DASSERT(n.pin_fn != nullptr);
  if (n.loc != kLocParked) CancelPinned(idx);
  n.at = at;
  n.seq = next_seq_++;
  Place(idx, n);
  ++live_count_;
  if (cached_valid_ && at < cached_at_) {
    cached_at_ = at;
    cached_seq_ = n.seq;
    cached_idx_ = idx;
    cached_from_heap_ = (n.loc == kLocHeap);
  }
}

void TimerWheelScheduler::CancelPinned(std::uint32_t idx) {
  Node& n = NodeAt(idx);
  DCTCPP_DASSERT(n.pin_fn != nullptr);
  if (n.loc == kLocParked) return;
  if (n.loc == kLocWheel) {
    Unlink(idx, n);
  } else if (n.loc != kLocBatch) {  // batch entries revalidate on dispatch
    DCTCPP_DASSERT(n.loc == kLocHeap);
    ++n.gen;  // stale-ifies the HeapEntry left behind; dropped on pop
  }
  n.loc = kLocParked;
  if (cached_valid_ && cached_idx_ == idx) cached_valid_ = false;
  --live_count_;
}

void TimerWheelScheduler::AdvanceCascade(Tick t) {
  // Level 0 needs no work when time advances: t is never past a pending
  // event, so every one-tick slot in [now_, t) is already empty and its
  // occupancy bits were cleared as the events popped.
  //
  // Dumped upper slot lists are appended to the todo chain in forward
  // order so each stays ascending-seq; re-Place then hits LinkSorted's
  // O(1) tail-append fast path instead of walking the target slot (a
  // reversed chain would make a cascade of m same-slot events cost
  // O(m^2)).
  std::uint32_t todo_head = kNil;
  std::uint32_t todo_tail = kNil;
  for (int k = 1; k <= kUpperLevels; ++k) {
    const int shift = UpperShift(k);
    const std::uint64_t oldp = static_cast<std::uint64_t>(now_) >> shift;
    const std::uint64_t newp = static_cast<std::uint64_t>(t) >> shift;
    if (oldp == newp) break;  // no boundary crossed here nor above
    if (occupied_[k - 1] != 0) {
      // Slots (oldp, newp] were entered or passed: cascade their events.
      const std::uint64_t mask =
          CircularMask(static_cast<int>((oldp + 1) & (kSlotsPerLevel - 1)),
                       std::min<std::uint64_t>(newp - oldp, kSlotsPerLevel));
      std::uint64_t dump = occupied_[k - 1] & mask;
      occupied_[k - 1] &= ~mask;
      while (dump != 0) {
        const int slot = std::countr_zero(dump);
        dump &= dump - 1;
        Slot& s = upper_[k - 1][slot];
        const std::uint32_t first = s.head;
        const std::uint32_t last = s.tail;
        s.head = s.tail = kNil;
        if (first == kNil) continue;
        if (todo_tail == kNil) {
          todo_head = first;
        } else {
          NodeAt(todo_tail).next = first;
        }
        todo_tail = last;
      }
    }
  }
  now_ = t;
  while (todo_head != kNil) {
    const std::uint32_t idx = todo_head;
    Node& n = NodeAt(idx);
    todo_head = n.next;
    Place(idx, n);
  }
}

void TimerWheelScheduler::EnsureNext() {
  if (cached_valid_) return;
  DCTCPP_PROFILE_SCOPE(kWheelPop);
  cached_valid_ = true;
  cached_from_heap_ = false;
  cached_at_ = kTickMax;
  cached_seq_ = ~0ull;
  cached_idx_ = kNil;

  const int pos0 = static_cast<int>(now_ & (kL0Slots - 1));
  const int slot0 = FindL0From(pos0);
  if (slot0 >= 0) {
    // Level-0 slots hold exactly one timestamp each, so the first occupied
    // slot circularly from the wheel position is the exact minimum (its
    // list head has the lowest seq: lists are seq-sorted).
    const std::uint32_t h = slots0_[slot0].head;
    cached_at_ = now_ + ((slot0 - pos0) & (kL0Slots - 1));
    cached_seq_ = NodeAt(h).seq;
    cached_idx_ = h;
    // Steady-state fast path: every upper-level and heap event is bounded
    // below by upper_min_at_, so a strictly earlier level-0 minimum is the
    // global minimum and the six upper bitmap probes plus the heap
    // stale-drop are skipped. Ties must full-scan (lower seq possible).
    if (cached_at_ < upper_min_at_) return;
  }
  // Full scan; tightens upper_min_at_ back to the exact lower bound (the
  // min of each level's first-occupied-slot base and the live heap top).
  Tick upper_min = kTickMax;
  for (int k = 1; k <= kUpperLevels; ++k) {
    if (occupied_[k - 1] == 0) continue;
    const int shift = UpperShift(k);
    const Tick width = Tick(1) << shift;
    const Tick lap = width << kLevelBits;
    const int posk = static_cast<int>((now_ >> shift) & (kSlotsPerLevel - 1));
    // The current-position slot is always empty at k >= 1, so circular
    // order from posk+1 lists slots by increasing base time; the first
    // occupied one bounds every other slot at this level from below.
    const int start = (posk + 1) & (kSlotsPerLevel - 1);
    const int off = std::countr_zero(std::rotr(occupied_[k - 1], start));
    const int slot = (start + off) & (kSlotsPerLevel - 1);
    Tick base = (now_ & ~(lap - 1)) + Tick(slot) * width;
    if (base <= now_) base += lap;  // passed/current slot index: next lap
    if (base < upper_min) upper_min = base;
    if (base > cached_at_) continue;  // cannot beat or tie the minimum
    for (std::uint32_t i = upper_[k - 1][slot].head; i != kNil;
         i = NodeAt(i).next) {
      const Node& n = NodeAt(i);
      if (n.at < cached_at_ || (n.at == cached_at_ && n.seq < cached_seq_)) {
        cached_at_ = n.at;
        cached_seq_ = n.seq;
        cached_idx_ = i;
      }
    }
  }
  // Overflow heap: drop entries orphaned by Cancel, then compare the top.
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Node& n = NodeAt(top.idx);
    if (n.loc == kLocHeap && n.gen == top.gen) break;
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
  }
  if (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (top.at < upper_min) upper_min = top.at;
    if (top.at < cached_at_ ||
        (top.at == cached_at_ && top.seq < cached_seq_)) {
      cached_at_ = top.at;
      cached_seq_ = top.seq;
      cached_idx_ = top.idx;
      cached_from_heap_ = true;
    }
  }
  upper_min_at_ = upper_min;
}

Tick TimerWheelScheduler::NextTime() {
  EnsureNext();
  return cached_at_;
}

Tick TimerWheelScheduler::RunNext() {
  Tick t;
  PinnedFn pin_fn;
  void* pin_ctx;
  InlineAction action;
  {
    // Pop machinery only; dispatch happens outside the scope so callback
    // cycles land in their own phases (demux/socket/enqueue) or kOther.
    DCTCPP_PROFILE_SCOPE(kWheelPop);
    EnsureNext();
    DCTCPP_ASSERT(live_count_ > 0);
    t = cached_at_;
    const std::uint32_t idx = cached_idx_;
    const bool from_heap = cached_from_heap_;
    AdvanceTo(t);
    Node& n = NodeAt(idx);
    std::int16_t slot = -1;
    if (from_heap) {
      DCTCPP_DASSERT(!heap_.empty() && heap_.front().idx == idx);
      std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
      heap_.pop_back();
    } else {
      // AdvanceTo(t) cascaded every wheel event at tick t into the level-0
      // slot t & mask (the entered upper slot is part of the dump mask),
      // where the list is seq-sorted — so the cached minimum is the slot
      // head and pops without the general Unlink.
      DCTCPP_DASSERT(n.level == 0 && n.prev == kNil);
      slot = n.slot;
      Slot& s = slots0_[slot];
      s.head = n.next;
      if (n.next != kNil) {
        NodeAt(n.next).prev = kNil;
      } else {
        s.tail = kNil;
        ClearL0Bit(slot);
      }
    }
    // Pinned nodes just park (their callback is a bare fn+ctx pair, loaded
    // below before dispatch). One-shot nodes move the action out and recycle
    // *before* running it, so the callback may freely schedule (and even
    // land on this node's id with a fresh generation).
    pin_fn = n.pin_fn;
    pin_ctx = n.pin_ctx;
    if (pin_fn != nullptr) {
      n.loc = kLocParked;
    } else {
      action = std::move(n.action);
      FreeNode(n, idx);
    }
    --live_count_;
    ++executed_;
    cached_valid_ = false;
    // Same-tick fast path: a level-0 slot holds exactly one timestamp, so a
    // non-empty slot after the pop means its head (lowest remaining seq) is
    // the next event — unless the overflow heap could hold an older event at
    // this same tick, in which case fall back to the full scan. Callbacks
    // can only add same-tick events with higher seqs, so the cache stays
    // exact through whatever `action` schedules.
    if (!from_heap && slots0_[slot].head != kNil &&
        (heap_.empty() || heap_.front().at > t)) {
      cached_valid_ = true;
      cached_at_ = t;
      cached_seq_ = NodeAt(slots0_[slot].head).seq;
      cached_idx_ = slots0_[slot].head;
      cached_from_heap_ = false;
    }
  }
  if (pin_fn != nullptr) {
    pin_fn(pin_ctx);  // may re-arm (or destroy) its own node
  } else {
    action();
  }
  return t;
}

std::uint64_t TimerWheelScheduler::RunSlotBatch(const bool* stop) {
  const Tick t = cached_at_;
  {
    DCTCPP_PROFILE_SCOPE(kWheelPop);
    AdvanceTo(t);
    // Unlink the whole seq-sorted chain into the run-buffer with one slot
    // store and one bitmap clear; the nodes themselves are revalidated at
    // dispatch so mid-batch cancellations and pinned re-arms stay exact.
    const int slot = static_cast<int>(t & (kL0Slots - 1));
    Slot& s = slots0_[slot];
    batch_.clear();
    for (std::uint32_t i = s.head; i != kNil;) {
      Node& n = NodeAt(i);
      DCTCPP_DASSERT(n.at == t);
      n.loc = kLocBatch;
      batch_.push_back(BatchEntry{n.seq, i});
      i = n.next;
    }
    s.head = s.tail = kNil;
    ClearL0Bit(slot);
    cached_valid_ = false;
  }
  std::uint64_t ran = 0;
  for (std::size_t b = 0; b < batch_.size(); ++b) {
    if (*stop) {
      // Mirror RunLoop's per-event stop semantics: entries from b on have
      // not run, so they go back on the wheel (keeping their seqs — any
      // same-tick events the callbacks added carry higher seqs and sort
      // after them, exactly as with pop-per-event).
      for (std::size_t r = b; r < batch_.size(); ++r) {
        Node& n = NodeAt(batch_[r].idx);
        if (n.loc == kLocBatch && n.seq == batch_[r].seq) {
          Place(batch_[r].idx, n);
        }
      }
      break;
    }
    // Two-stage software pipeline over the burst: pull the node two ahead
    // into cache (the address computation is just a chunk-pointer load, no
    // dependent dereference), and the *context object* one ahead — by then
    // that node's line is resident, so reading pin_ctx doesn't stall. The
    // contexts are the EgressPorts/sockets about to run; their first line
    // is exactly what the continuation touches first.
    if (b + 2 < batch_.size()) {
      __builtin_prefetch(&NodeAt(batch_[b + 2].idx), 0, 3);
    }
    if (b + 1 < batch_.size()) {
      void* const next_ctx = NodeAt(batch_[b + 1].idx).pin_ctx;
      if (next_ctx != nullptr) __builtin_prefetch(next_ctx, 0, 3);
    }
    const BatchEntry e = batch_[b];
    Node& n = NodeAt(e.idx);
    if (n.loc != kLocBatch || n.seq != e.seq) continue;  // cancelled mid-batch
    const PinnedFn pin_fn = n.pin_fn;
    void* const pin_ctx = n.pin_ctx;
    InlineAction action;
    if (pin_fn != nullptr) {
      n.loc = kLocParked;
    } else {
      action = std::move(n.action);
      FreeNode(n, e.idx);
    }
    --live_count_;
    ++executed_;
    ++ran;
    if (pin_fn != nullptr) {
      pin_fn(pin_ctx);
    } else {
      action();
    }
  }
  return ran;
}

void TimerWheelScheduler::RestoreClock(Tick t) {
  DCTCPP_ASSERT(live_count_ == 0);
  DCTCPP_ASSERT(batch_.empty());
  now_ = t;
  cached_valid_ = false;
}

EventId TimerWheelScheduler::ScheduleAtWithSeq(Tick at, Action action,
                                               std::uint64_t seq) {
  DCTCPP_ASSERT(static_cast<bool>(action));
  DCTCPP_ASSERT(at >= now_);
  const std::uint32_t idx = AllocNode();
  Node& n = NodeAt(idx);
  n.at = at;
  n.seq = seq;
  n.action = std::move(action);
  Place(idx, n);
  ++live_count_;
  // Restored seqs are arbitrary relative to the cached minimum (a tie with
  // a lower seq would make the memo wrong), so drop the memo entirely.
  cached_valid_ = false;
  return EventId{(static_cast<std::uint64_t>(n.gen) << 32) | (idx + 1)};
}

void TimerWheelScheduler::ArmPinnedAtWithSeq(std::uint32_t idx, Tick at,
                                             std::uint64_t seq) {
  DCTCPP_ASSERT(at >= now_);
  Node& n = NodeAt(idx);
  DCTCPP_DASSERT(n.pin_fn != nullptr);
  if (n.loc != kLocParked) CancelPinned(idx);
  n.at = at;
  n.seq = seq;
  Place(idx, n);
  ++live_count_;
  cached_valid_ = false;
}

std::uint64_t TimerWheelScheduler::RunLoop(Tick deadline, const bool* stop,
                                           Tick* sim_now) {
  std::uint64_t count = 0;
  while (!*stop && live_count_ != 0) {
    EnsureNext();
    if (cached_at_ > deadline) break;
    *sim_now = cached_at_;
    if (!cached_from_heap_ && !scalar_ref_) {
      const Node& n = NodeAt(cached_idx_);
      if (n.level == 0 && n.next != kNil &&
          (heap_.empty() || heap_.front().at > cached_at_)) {
        // Multi-event same-tick slot with nothing older in the overflow
        // heap: drain it whole. (A heap event at this tick could interleave
        // by seq, so that rare case keeps the pop-per-event path.)
        count += RunSlotBatch(stop);
        continue;
      }
    }
    RunNext();  // same-TU: inlines, and its EnsureNext re-check is cached
    ++count;
  }
  return count;
}

std::size_t TimerWheelScheduler::OverflowCount() const {
  std::size_t live = 0;
  for (const HeapEntry& e : heap_) {
    const Node& n = NodeAt(e.idx);
    if (n.loc == kLocHeap && n.gen == e.gen) ++live;
  }
  return live;
}

}  // namespace dctcpp
