#include "dctcpp/sim/heap_scheduler.h"

#include <utility>

namespace dctcpp {

EventId HeapScheduler::ScheduleAt(Tick at, Action action) {
  DCTCPP_ASSERT(action != nullptr);
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(action)});
  live_.insert(id);
  return EventId{id};
}

void HeapScheduler::Cancel(EventId id) {
  if (!id.valid()) return;
  // Lazy cancellation: if the event is still pending, remove it from the
  // live set; the heap entry is skipped when it reaches the top. Cancelling
  // an event that already fired (or was already cancelled) is a no-op.
  live_.erase(id.value);
}

void HeapScheduler::DropCancelledHead() {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

Tick HeapScheduler::NextTime() {
  DropCancelledHead();
  return heap_.empty() ? kTickMax : heap_.top().at;
}

Tick HeapScheduler::RunNext() {
  DropCancelledHead();
  DCTCPP_ASSERT(!heap_.empty());
  Entry entry = heap_.top();
  heap_.pop();
  live_.erase(entry.id);
  ++executed_;
  entry.action();
  return entry.at;
}

}  // namespace dctcpp
