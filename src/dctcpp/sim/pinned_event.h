// RAII handle to a pinned scheduler event: one pre-allocated timer-wheel
// node bound to a single `fn(ctx)` callback for its whole life, re-armed
// in place as many times as needed.
//
// This is the scheduling primitive for callers that fire the same
// continuation once per packet or per timer window (EgressPort's
// transmit/deliver events, TcpSocket's timers via Timer). A plain
// Simulator::Schedule pays node allocation, callable relocation, and node
// recycling on every event; arming a pinned event is just re-homing the
// node in the wheel. The callback is a bare function pointer, so firing
// involves no callable object whose lifetime could end mid-invoke: the
// callback may re-arm — or even destroy — its own event.
#pragma once

#include <cstdint>

#include "dctcpp/sim/simulator.h"

namespace dctcpp {

class PinnedEvent {
 public:
  using Fn = void (*)(void*);

  /// Binds `fn(ctx)`; the usual pattern is a captureless lambda downcasting
  /// `ctx` to the owner: `PinnedEvent ev{sim, [](void* p) {
  /// static_cast<Owner*>(p)->OnFire(); }, this};`
  PinnedEvent(Simulator& sim, Fn fn, void* ctx)
      : sim_(sim), idx_(sim.scheduler().CreatePinned(fn, ctx)) {}

  ~PinnedEvent() { sim_.scheduler().DestroyPinned(idx_); }

  PinnedEvent(const PinnedEvent&) = delete;
  PinnedEvent& operator=(const PinnedEvent&) = delete;

  /// (Re-)arms at absolute time `at` (>= Now()); a pending arming is
  /// replaced, as if cancelled and freshly scheduled.
  void ArmAt(Tick at) { sim_.scheduler().ArmPinnedAt(idx_, at); }
  void ArmIn(Tick delay) { ArmAt(sim_.Now() + delay); }

  /// Disarms; no-op when idle.
  void Cancel() { sim_.scheduler().CancelPinned(idx_); }

  bool armed() const { return sim_.scheduler().PinnedArmed(idx_); }

  // Checkpoint/restore: the pending arming's exact (at, seq), and re-arming
  // with a saved seq so restored pop order matches the saved run.
  void Arming(Tick* at, std::uint64_t* seq) const {
    sim_.scheduler().PinnedArming(idx_, at, seq);
  }
  void ArmAtWithSeq(Tick at, std::uint64_t seq) {
    sim_.scheduler().ArmPinnedAtWithSeq(idx_, at, seq);
  }

 private:
  Simulator& sim_;
  std::uint32_t idx_;
};

}  // namespace dctcpp
