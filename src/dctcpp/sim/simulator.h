// Simulation façade: clock + scheduler + run loop + per-run RNG.
//
// One `Simulator` instance is one independent simulated world. Nothing in
// the library uses global mutable state, so many Simulators can run
// concurrently on different threads (the experiment harness relies on this).
#pragma once

#include <cstdint>
#include <functional>

#include "dctcpp/sim/scheduler.h"
#include "dctcpp/util/arena.h"
#include "dctcpp/util/invariants.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Tick Now() const { return now_; }

  /// The run's random stream. All model randomness must come from here.
  Rng& rng() { return rng_; }

  /// The seed this world was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Derives an independent RNG stream from the run seed and a stream id.
  /// Unlike `rng().Fork()`, the result depends only on (seed, id) — never
  /// on how many draws other components made — so consumers with their own
  /// stream (per-link impairment) stay bit-identical when unrelated
  /// randomness is added or removed elsewhere in the configuration.
  Rng StreamRng(std::uint64_t stream_id) const {
    std::uint64_t state = seed_ ^ (0xa0761d6478bd642fULL * (stream_id + 1));
    return Rng(SplitMix64(state));
  }

  /// Allocates the next impairment stream id. Links claim one at
  /// construction; topology building is deterministic, so link K of a
  /// given setup always receives the same stream.
  std::uint64_t NextImpairmentStream() { return next_impairment_stream_++; }

  /// The always-on invariant recorder (see util/invariants.h). Datapath
  /// and transport components report violations and maintain the packet
  /// ledger here; harnesses assert `invariants().violations() == 0`.
  NetworkInvariants& invariants() { return invariants_; }
  const NetworkInvariants& invariants() const { return invariants_; }

  Scheduler& scheduler() { return scheduler_; }

  /// Per-simulation slab arena for control-plane objects whose lifetime is
  /// the whole run (sockets, per-connection app state, probes). Declared
  /// before the scheduler so it is destroyed after everything that might
  /// reference arena objects during teardown. See util/arena.h for the
  /// lifetime rules.
  Arena& arena() { return arena_; }

  /// Schedules `action` to run `delay` from now (delay >= 0).
  EventId Schedule(Tick delay, Scheduler::Action action) {
    DCTCPP_ASSERT(delay >= 0);
    return scheduler_.ScheduleAt(now_ + delay, std::move(action));
  }

  /// Schedules at an absolute time (must not be in the past).
  EventId ScheduleAt(Tick at, Scheduler::Action action) {
    DCTCPP_ASSERT(at >= now_);
    return scheduler_.ScheduleAt(at, std::move(action));
  }

  void Cancel(EventId id) { scheduler_.Cancel(id); }

  /// Runs until the event queue drains, `Stop()` is called, or the clock
  /// passes `deadline`. Returns the number of events executed by this call.
  std::uint64_t RunUntil(Tick deadline);

  /// Runs until the event queue drains or `Stop()` is called.
  std::uint64_t Run() { return RunUntil(kTickMax); }

  /// Requests the run loop to return after the current event.
  void Stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  std::uint64_t events_executed() const { return scheduler_.executed(); }

  /// Datapath throughput counter: packets accepted by any egress port of
  /// this world (bumped by EgressPort::Send on successful enqueue). The
  /// numerator of the regression harness's packets/sec.
  void CountForwardedPacket() { ++packets_forwarded_; }
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }

 private:
  Tick now_ = 0;
  bool stopped_ = false;
  std::uint64_t seed_ = 1;
  std::uint64_t next_impairment_stream_ = 0;
  std::uint64_t packets_forwarded_ = 0;
  NetworkInvariants invariants_;
  Arena arena_;
  Scheduler scheduler_;
  Rng rng_;
};

}  // namespace dctcpp
