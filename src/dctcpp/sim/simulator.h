// Simulation façade: clock + scheduler + run loop + per-run RNG.
//
// One `Simulator` instance is one independent simulated world. Nothing in
// the library uses global mutable state, so many Simulators can run
// concurrently on different threads (the experiment harness relies on this).
//
// A Simulator can also be one *shard* of a larger world: the conservative
// parallel engine (net/parallel.h) builds S Simulators over the same seed,
// gives them shared construction-time id sequences (so stream and port ids
// are assigned identically regardless of S), and drives each shard's wheel
// through bounded time windows from its own run loop. The hooks that mode
// needs — BindShard, RunWindow, SetNow — are inert in ordinary
// single-Simulator runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "dctcpp/sim/scheduler.h"
#include "dctcpp/util/arena.h"
#include "dctcpp/util/invariants.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

class ParallelSimulation;
class Checkpointable;
class CheckpointHooks;
class CheckpointWriter;
class CheckpointReader;
class FlightRecorder;

/// Construction-time id counters shared by every shard of a parallel
/// simulation (and trivially private in the single-Simulator case). Kept
/// outside the RNG so id assignment depends only on construction order —
/// which the deterministic topology builders fix — never on shard count.
struct SharedSequences {
  std::uint64_t next_impairment_stream = 0;
  std::uint64_t next_port_id = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Tick Now() const { return now_; }

  /// The run's random stream. All model randomness must come from here.
  Rng& rng() { return rng_; }

  /// The seed this world was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Derives an independent RNG stream from the run seed and a stream id.
  /// Unlike `rng().Fork()`, the result depends only on (seed, id) — never
  /// on how many draws other components made — so consumers with their own
  /// stream (per-link impairment) stay bit-identical when unrelated
  /// randomness is added or removed elsewhere in the configuration.
  Rng StreamRng(std::uint64_t stream_id) const {
    std::uint64_t state = seed_ ^ (0xa0761d6478bd642fULL * (stream_id + 1));
    return Rng(SplitMix64(state));
  }

  /// Allocates the next impairment stream id. Links claim one at
  /// construction; topology building is deterministic, so link K of a
  /// given setup always receives the same stream.
  std::uint64_t NextImpairmentStream() {
    return sequences_->next_impairment_stream++;
  }

  /// Allocates the next global egress-port id (the shard-count-invariant
  /// half of the canonical calendar delivery key; see net/parallel.h).
  std::uint64_t NextPortId() { return sequences_->next_port_id++; }

  /// The always-on invariant recorder (see util/invariants.h). Datapath
  /// and transport components report violations and maintain the packet
  /// ledger here; harnesses assert `invariants().violations() == 0`.
  NetworkInvariants& invariants() { return invariants_; }
  const NetworkInvariants& invariants() const { return invariants_; }

  Scheduler& scheduler() { return scheduler_; }

  /// Per-simulation slab arena for control-plane objects whose lifetime is
  /// the whole run (sockets, per-connection app state, probes). Declared
  /// before the scheduler so it is destroyed after everything that might
  /// reference arena objects during teardown. See util/arena.h for the
  /// lifetime rules.
  Arena& arena() { return arena_; }

  /// Schedules `action` to run `delay` from now (delay >= 0).
  EventId Schedule(Tick delay, Scheduler::Action action) {
    DCTCPP_ASSERT(delay >= 0);
    return scheduler_.ScheduleAt(now_ + delay, std::move(action));
  }

  /// Schedules at an absolute time (must not be in the past).
  EventId ScheduleAt(Tick at, Scheduler::Action action) {
    DCTCPP_ASSERT(at >= now_);
    return scheduler_.ScheduleAt(at, std::move(action));
  }

  void Cancel(EventId id) { scheduler_.Cancel(id); }

  /// Runs until the event queue drains, `Stop()` is called, or the clock
  /// passes `deadline`. Returns the number of events executed by this call.
  std::uint64_t RunUntil(Tick deadline);

  /// Runs until the event queue drains or `Stop()` is called.
  std::uint64_t Run() { return RunUntil(kTickMax); }

  /// Requests the run loop to return after the current event. In a shard,
  /// the request is forwarded to the parallel coordinator, which honors it
  /// at the next window barrier — after *every* shard has finished the
  /// current window — so the set of windows executed, and therefore every
  /// counter, stays shard-count-invariant.
  void Stop() {
    if (shard_stop_ != nullptr) {
      shard_stop_->store(true, std::memory_order_release);
    } else {
      stopped_ = true;
    }
  }

  bool stopped() const { return stopped_; }

  std::uint64_t events_executed() const { return scheduler_.executed(); }

  /// Datapath throughput counter: packets accepted by any egress port of
  /// this world (bumped by EgressPort::Send on successful enqueue). The
  /// numerator of the regression harness's packets/sec.
  void CountForwardedPacket() { ++packets_forwarded_; }
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }

  // --- ACK-burst scope (driven by the sharded calendar drain) -----------
  //
  // While a burst scope is open, transport endpoints may defer the
  // *emission* of response packets they have already fully accounted for
  // (all socket/cc bookkeeping runs eagerly), registering a flush callback
  // here. The drain loop opens the scope around a same-tick calendar run
  // and flushes at every run break (sink change, flow change, scope
  // close), so deferred packets always reach the network before any
  // foreign event can observe their absence. Outside a scope nothing ever
  // defers, and `FlushAckBursts` is an empty-vector check.

  using BurstFlushFn = void (*)(void*);

  bool InAckBurst() const { return ack_burst_depth_ > 0; }
  void BeginAckBurst() { ++ack_burst_depth_; }
  void EndAckBurst() {
    DCTCPP_ASSERT(ack_burst_depth_ > 0);
    if (--ack_burst_depth_ == 0) FlushAckBursts();
  }

  /// Registers `fn(ctx)` to run at the next flush. Callers register at
  /// most once per pending batch (they track their own pending flag).
  void RequestAckBurstFlush(BurstFlushFn fn, void* ctx) {
    DCTCPP_DASSERT(InAckBurst());
    ack_burst_flush_.push_back({fn, ctx});
  }

  /// Runs every registered flush callback in registration order. Safe (and
  /// cheap) to call when nothing is pending.
  void FlushAckBursts() {
    if (ack_burst_flush_.empty()) return;
    // Callbacks emit packets; emission never re-registers (the emitting
    // socket's batch is the one being flushed), so plain iteration is safe.
    for (const PendingBurstFlush& p : ack_burst_flush_) p.fn(p.ctx);
    ack_burst_flush_.clear();
  }

  // --- shard hooks (driven by net/parallel.h) ---------------------------

  /// Marks this Simulator as shard `shard_id` of `parallel`: construction
  /// ids come from the shared sequences, Stop() is routed to `stop_flag`,
  /// and per-shard ledger checking is relaxed (see
  /// NetworkInvariants::DisableLedgerCheck).
  void BindShard(ParallelSimulation* parallel, int shard_id,
                 SharedSequences* sequences, std::atomic<bool>* stop_flag) {
    parallel_ = parallel;
    shard_id_ = shard_id;
    sequences_ = sequences;
    shard_stop_ = stop_flag;
    invariants_.DisableLedgerCheck();
  }

  /// The coordinator when this Simulator is a shard, else nullptr.
  ParallelSimulation* parallel() const { return parallel_; }
  int shard_id() const { return shard_id_; }

  /// Runs every pending wheel event with timestamp strictly before
  /// `end` (ignoring Stop — a shard always completes its window). Returns
  /// the number of events executed. The clock mirrors each event's
  /// timestamp exactly as in RunUntil but is NOT advanced to `end`
  /// afterwards: windows are half-open and the next window's events may
  /// land at any tick >= the last executed one.
  std::uint64_t RunWindow(Tick end) {
    if (end <= 0) return 0;
    bool no_stop = false;
    return scheduler_.RunLoop(end - 1, &no_stop, &now_);
  }

  /// Advances the clock without running events (calendar deliveries and
  /// final deadline alignment in sharded runs). Monotonic only.
  void SetNow(Tick t) {
    DCTCPP_ASSERT(t >= now_);
    now_ = t;
  }

  // --- checkpoint/restore (sim/checkpoint.h, implemented there) ---------

  /// Registers an infrastructure component (host, port, switch) whose
  /// state rides in this world's checkpoint section. Construction-time
  /// only; deterministic builders guarantee identical registration order
  /// in a rebuilt world.
  void RegisterCheckpointable(Checkpointable* c) {
    checkpoint_clients_.push_back(c);
  }

  /// Serializes this world at a barrier (see checkpoint.h). `hooks`
  /// contributes the workload section; null writes an empty one.
  void SaveCheckpoint(CheckpointWriter& w, const CheckpointHooks* hooks) const;

  /// Restores into this freshly built, never-run world. Aborts on any
  /// structural mismatch (tag drift, client count, live-event count).
  void RestoreCheckpoint(CheckpointReader& r, CheckpointHooks* hooks);

  // --- flight recorder (util/flight_recorder.h) -------------------------

  /// The attached flight recorder, or nullptr (the default: recording
  /// off, hook sites cost one null check). Not owned; not checkpointed.
  /// Attach after BindShard so violation records carry the shard id.
  FlightRecorder* flight_recorder() const { return flight_recorder_; }
  void set_flight_recorder(FlightRecorder* fr) {
    flight_recorder_ = fr;
    invariants_.AttachFlightRecorder(fr, &now_, shard_id_);
  }

 private:
  struct PendingBurstFlush {
    BurstFlushFn fn;
    void* ctx;
  };

  Tick now_ = 0;
  bool stopped_ = false;
  int ack_burst_depth_ = 0;
  std::vector<PendingBurstFlush> ack_burst_flush_;
  std::uint64_t seed_ = 1;
  std::uint64_t packets_forwarded_ = 0;
  SharedSequences own_sequences_;
  SharedSequences* sequences_ = &own_sequences_;
  ParallelSimulation* parallel_ = nullptr;
  int shard_id_ = 0;
  std::atomic<bool>* shard_stop_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
  std::vector<Checkpointable*> checkpoint_clients_;
  NetworkInvariants invariants_;
  Arena arena_;
  Scheduler scheduler_;
  Rng rng_;
};

}  // namespace dctcpp
