// Discrete-event scheduler façade.
//
// Two interchangeable backends implement the same interface and the same
// determinism contract (events pop in (time, insertion-sequence) order, so
// same-tick events fire in the order they were scheduled):
//
//  - `TimerWheelScheduler` (timer_wheel.h): hierarchical timer wheel with a
//    pooled, allocation-free event representation and O(1) generation-safe
//    cancellation. This is the production engine.
//  - `HeapScheduler` (heap_scheduler.h): the original binary-heap engine,
//    kept as the differential-testing oracle and benchmark baseline.
//
// tests/scheduler_diff_test.cc replays identical event traces through both
// and asserts identical execution order.
#pragma once

#include "dctcpp/sim/event_id.h"
#include "dctcpp/sim/heap_scheduler.h"
#include "dctcpp/sim/timer_wheel.h"

namespace dctcpp {

using Scheduler = TimerWheelScheduler;

}  // namespace dctcpp
