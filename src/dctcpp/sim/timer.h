// Cancellable one-shot timer bound to a Simulator.
//
// This is the simulation analogue of the kernel hrtimer the paper uses to
// delay `tcp_transmit_skb()`: Schedule/Restart arm it, Cancel disarms it,
// and the callback fires at most once per arming. The owner must outlive
// the timer's pending events or cancel in its destructor — Timer cancels
// itself on destruction, so embedding a Timer by value in the owner is the
// safe pattern.
//
// The scheduler side is a single pinned event (see pinned_event.h), so a
// timer costs one wheel-node allocation for its whole life, and arming
// never moves a callable. Re-arming is additionally lazy: pushing the
// deadline *out* while an event is pending keeps the old arming in place
// instead of paying an unlink+re-home pair; when the stale arming pops
// early, Fire() sees the true deadline still lies ahead and re-homes
// itself once. A sender that re-arms its RTO timer on every ACK (RFC 6298
// 5.3) therefore touches the wheel once per expiry window, not once per
// ACK — the callback still runs exactly at the most recent deadline,
// never early and never late.
#pragma once

#include <utility>

#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/sim/inline_action.h"
#include "dctcpp/sim/pinned_event.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {

class Timer {
 public:
  /// Move-only, small-buffer-optimized: the usual `[this]`-capturing
  /// callbacks are stored without any heap allocation.
  using Callback = InlineAction;

  Timer(Simulator& sim, Callback cb)
      : sim_(sim),
        callback_(std::move(cb)),
        ev_(sim, [](void* p) { static_cast<Timer*>(p)->Fire(); }, this) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Opts this timer into lazy cancellation: Cancel() only clears the
  /// logical arming and leaves the wheel node in place, where the next
  /// Schedule() usually reclaims it without touching the wheel; if none
  /// comes, the stale pop fires into nothing. The right trade for timers
  /// cancelled and re-armed once per packet (delayed ACK: arm on data,
  /// cancel on every ACK sent) — the wheel is touched once per expiry
  /// window instead of twice per packet. Keep eager cancel (default) for
  /// timers whose pending arming is long compared to the run (RTO), where
  /// a parked stale event would only delay queue drain.
  void SetLazyCancel(bool lazy) { lazy_cancel_ = lazy; }

  /// Arms the timer `delay` from now. Re-arming while pending reschedules
  /// (lazily when the deadline only moves out — see the header comment).
  void Schedule(Tick delay) {
    armed_ = true;
    expires_at_ = sim_.Now() + delay;
    if (event_pending_ && event_at_ <= expires_at_) return;  // Fire() defers
    event_pending_ = true;
    event_at_ = expires_at_;
    ev_.ArmAt(expires_at_);
  }

  /// Disarms; no-op if not pending. Lazy-cancel timers keep their wheel
  /// arming (see SetLazyCancel); the callback is suppressed either way.
  void Cancel() {
    armed_ = false;
    if (event_pending_ && !lazy_cancel_) {
      event_pending_ = false;
      ev_.Cancel();
    }
  }

  bool IsPending() const { return armed_; }

  /// Whether a wheel arming exists right now — i.e. whether the next
  /// Schedule() can possibly consume a scheduler sequence number. Lets the
  /// batched-ACK path prove its wheel interactions identical to per-ACK
  /// processing (see TcpSocket::ArmRtoTimer).
  bool HasWheelArming() const { return event_pending_; }

  /// Absolute expiry of the current arming (meaningful while pending).
  Tick expires_at() const { return expires_at_; }

  /// Checkpoint: all five lazy-arm fields plus the wheel arming's exact
  /// (at, seq) when one exists, so a restored timer reproduces stale pops
  /// and deferred re-homes identically.
  void SaveState(CheckpointWriter& w) const {
    w.Bool(armed_);
    w.Bool(lazy_cancel_);
    w.Bool(event_pending_);
    w.I64(expires_at_);
    w.I64(event_at_);
    if (event_pending_) {
      Tick at = 0;
      std::uint64_t seq = 0;
      ev_.Arming(&at, &seq);
      DCTCPP_ASSERT(at == event_at_);
      w.U64(seq);
    }
  }
  void LoadState(CheckpointReader& r) {
    armed_ = r.Bool();
    lazy_cancel_ = r.Bool();
    event_pending_ = r.Bool();
    expires_at_ = r.I64();
    event_at_ = r.I64();
    if (event_pending_) ev_.ArmAtWithSeq(event_at_, r.U64());
  }

 private:
  void Fire() {
    event_pending_ = false;
    if (!armed_) return;
    if (sim_.Now() < expires_at_) {
      // Stale pop from a lazy re-arm: home at the true deadline.
      event_pending_ = true;
      event_at_ = expires_at_;
      ev_.ArmAt(expires_at_);
      return;
    }
    armed_ = false;
    callback_();
  }

  Simulator& sim_;
  Callback callback_;
  bool armed_ = false;
  bool lazy_cancel_ = false;
  bool event_pending_ = false;
  Tick expires_at_ = 0;
  Tick event_at_ = 0;  ///< where the pending arming actually sits
  PinnedEvent ev_;     ///< last member: released before callback_ dies
};

}  // namespace dctcpp
