// Cancellable one-shot timer bound to a Simulator.
//
// This is the simulation analogue of the kernel hrtimer the paper uses to
// delay `tcp_transmit_skb()`: Schedule/Restart arm it, Cancel disarms it,
// and the callback fires at most once per arming. The owner must outlive
// the timer's pending events or cancel in its destructor — Timer cancels
// itself on destruction, so embedding a Timer by value in the owner is the
// safe pattern.
#pragma once

#include <utility>

#include "dctcpp/sim/inline_action.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {

class Timer {
 public:
  /// Move-only, small-buffer-optimized: the usual `[this]`-capturing
  /// callbacks are stored without any heap allocation.
  using Callback = InlineAction;

  Timer(Simulator& sim, Callback cb)
      : sim_(sim), callback_(std::move(cb)) {}

  ~Timer() { Cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms the timer `delay` from now. Re-arming while pending reschedules.
  void Schedule(Tick delay) {
    Cancel();
    expires_at_ = sim_.Now() + delay;
    id_ = sim_.Schedule(delay, [this] { Fire(); });
  }

  /// Disarms; no-op if not pending.
  void Cancel() {
    if (id_.valid()) {
      sim_.Cancel(id_);
      id_ = EventId{};
    }
  }

  bool IsPending() const { return id_.valid(); }

  /// Absolute expiry of the current arming (meaningful while pending).
  Tick expires_at() const { return expires_at_; }

 private:
  void Fire() {
    id_ = EventId{};
    callback_();
  }

  Simulator& sim_;
  Callback callback_;
  EventId id_{};
  Tick expires_at_ = 0;
};

}  // namespace dctcpp
