// Opaque handle identifying a scheduled event.
//
// A handle stays distinguishable from every other event for the lifetime of
// the scheduler that issued it, even after the event fires or is cancelled:
// backends that recycle event storage (the timer wheel's pool) fold a
// generation counter into the id, so a stale handle can never cancel a
// later event that happens to reuse the same slot.
#pragma once

#include <cstdint>

namespace dctcpp {

/// Opaque handle identifying a scheduled event; cancelling a handle whose
/// event already fired (or was already cancelled) is a harmless no-op.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

}  // namespace dctcpp
