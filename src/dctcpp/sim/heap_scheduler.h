// Reference discrete-event scheduler (binary heap).
//
// A binary min-heap keyed by (time, insertion sequence): events at the same
// timestamp run in the order they were scheduled, which makes simulations
// deterministic and gives links/queues well-defined FIFO semantics.
// Cancellation is O(1) lazy: a cancelled entry stays in the heap and is
// skipped on pop.
//
// This is the original engine, kept as the differential-testing oracle and
// benchmark baseline for TimerWheelScheduler (see timer_wheel.h, which is
// the production `Scheduler`). The two backends expose the same interface
// and obey the same determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "dctcpp/sim/event_id.h"
#include "dctcpp/util/assert.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

class HeapScheduler {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (must be >= Now of the owning
  /// simulator; the scheduler itself only requires monotonic pops).
  EventId ScheduleAt(Tick at, Action action);

  /// Cancels a pending event; harmless if it already fired or was cancelled.
  void Cancel(EventId id);

  bool Empty() const { return live_.empty(); }
  std::size_t PendingCount() const { return live_.size(); }

  /// Time of the earliest pending event; kTickMax if none.
  Tick NextTime();

  /// Pops and runs the earliest event. Returns its timestamp.
  /// Precondition: !Empty().
  Tick RunNext();

  /// Total events ever executed (for instrumentation).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void DropCancelledHead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> live_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace dctcpp
