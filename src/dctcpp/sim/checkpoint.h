// Checkpoint/restore of a running simulation into a versioned binary blob.
//
// A checkpoint is taken at a *barrier*: a point where no event is mid-run
// — in practice right after Simulator::RunUntil / ParallelSimulation::
// RunUntil returns. At a barrier the scheduler's same-tick run-buffer is
// empty, no ACK-burst scope is open, and every in-flight packet sits in a
// serializable container (a port queue, the wire, a reorder hold, or a
// shard calendar), so the world's entire future is a pure function of the
// serialized state.
//
// Restore is a two-phase protocol over a FRESHLY BUILT world (same
// topology, same construction order, not yet started):
//
//  1. The workload hook re-creates its dynamic objects (live sockets,
//     pending flow events) and loads their state; sockets re-register
//     with their hosts, rebuilding the demux tables and port refcounts
//     exactly. Wheel events are re-armed with their *saved* insertion
//     sequences (TimerWheelScheduler::*WithSeq), so pop order — purely
//     (time, seq) — matches the saved run even though node indices differ.
//  2. Registered infrastructure clients (hosts, ports, switches) load
//     their scalar state in construction order — which deterministic
//     builders make identical across the two worlds. Host scalars load
//     after the workload phase, overwriting the socket-serial counter the
//     re-creation bumped.
//
// What is NOT serialized (reconstructed by building the world instead):
// topology, routing tables, link/impairment configuration, RNG stream id
// assignments, arena layout, FlatFlowTable probe layout, the demux
// one-entry cache, callbacks, and the flight recorder (observational
// only). See DESIGN.md Sec. 13.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "dctcpp/util/assert.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

struct Packet;

/// Fixed-width little-endian append-only buffer. Section tags are written
/// by convention before each component's fields so a drifted reader fails
/// loudly at the drift point instead of misparsing everything after it.
class CheckpointWriter {
 public:
  static constexpr std::uint32_t kMagic = 0x44434b50;  // "DCKP"
  static constexpr std::uint32_t kVersion = 1;

  void U8(std::uint8_t v) { buf_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void I64(std::int64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  /// Section tag: a 4-byte marker the reader must match exactly.
  void Tag(std::uint32_t tag) { U32(tag); }

  const std::vector<std::uint8_t>& blob() const { return buf_; }
  std::vector<std::uint8_t> TakeBlob() { return std::move(buf_); }

 private:
  void Raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Reader over a checkpoint blob. Out-of-bounds reads and tag mismatches
/// abort: a checkpoint is trusted same-version data, not untrusted input.
class CheckpointReader {
 public:
  CheckpointReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit CheckpointReader(const std::vector<std::uint8_t>& blob)
      : CheckpointReader(blob.data(), blob.size()) {}

  std::uint8_t U8() {
    DCTCPP_ASSERT(p_ < end_);
    return *p_++;
  }
  bool Bool() { return U8() != 0; }
  std::uint32_t U32() {
    std::uint32_t v;
    Raw(&v, sizeof v);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v;
    Raw(&v, sizeof v);
    return v;
  }
  std::int64_t I64() {
    std::int64_t v;
    Raw(&v, sizeof v);
    return v;
  }
  double F64() {
    double v;
    Raw(&v, sizeof v);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    DCTCPP_ASSERT(p_ + n <= end_);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  void ExpectTag(std::uint32_t tag) {
    const std::uint32_t got = U32();
    DCTCPP_ASSERT(got == tag);
    (void)got;
  }
  bool AtEnd() const { return p_ == end_; }

 private:
  void Raw(void* out, std::size_t n) {
    DCTCPP_ASSERT(p_ + n <= end_);
    std::memcpy(out, p_, n);
    p_ += n;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Infrastructure component with checkpointable state. Hosts, egress ports
/// and switches register with their Simulator at construction; save and
/// load both walk the registry in registration order, which deterministic
/// topology builders make identical between the saved and restored worlds.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void SaveState(CheckpointWriter& w) const = 0;
  virtual void LoadState(CheckpointReader& r) = 0;
};

/// Workload-side serialization: the simulation engine knows nothing about
/// flows, so the workload driver supplies the section that re-creates its
/// dynamic objects (live sockets, pending arrivals/departures) on restore.
/// Called once per shard, inside that shard's blob section, before the
/// shard's infrastructure clients load.
class CheckpointHooks {
 public:
  virtual ~CheckpointHooks() = default;
  virtual void SaveWorkload(CheckpointWriter& w, int shard) const = 0;
  virtual void RestoreWorkload(CheckpointReader& r, int shard) = 0;
};

/// Field-by-field packet serialization (never memcpy: padding bytes are
/// indeterminate and would break blob comparison).
void SavePacket(CheckpointWriter& w, const Packet& pkt);
Packet LoadPacket(CheckpointReader& r);

}  // namespace dctcpp
