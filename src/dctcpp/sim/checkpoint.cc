#include "dctcpp/sim/checkpoint.h"

#include "dctcpp/net/packet.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {

namespace {
// Section tags ("SIM ", "WKLD", "INFR", "SCHD").
constexpr std::uint32_t kTagSim = 0x53494d20;
constexpr std::uint32_t kTagWorkload = 0x574b4c44;
constexpr std::uint32_t kTagInfra = 0x494e4652;
constexpr std::uint32_t kTagSched = 0x53434844;
}  // namespace

void SavePacket(CheckpointWriter& w, const Packet& pkt) {
  w.U32(static_cast<std::uint32_t>(pkt.src));
  w.U32(static_cast<std::uint32_t>(pkt.dst));
  w.U32(pkt.tcp.src_port);
  w.U32(pkt.tcp.dst_port);
  w.U32(pkt.tcp.seq);
  w.U32(pkt.tcp.ack);
  std::uint8_t flags = 0;
  flags |= pkt.tcp.syn ? 1u : 0;
  flags |= pkt.tcp.fin ? 2u : 0;
  flags |= pkt.tcp.ack_flag ? 4u : 0;
  flags |= pkt.tcp.ece ? 8u : 0;
  flags |= pkt.tcp.cwr ? 16u : 0;
  flags |= pkt.corrupted ? 32u : 0;
  w.U8(flags);
  for (const SackBlock& b : pkt.tcp.sack) {
    w.U32(b.start);
    w.U32(b.end);
  }
  w.U8(static_cast<std::uint8_t>(pkt.ecn));
  w.I64(pkt.payload);
  w.U64(pkt.uid);
  w.I64(pkt.valiant_group);
}

Packet LoadPacket(CheckpointReader& r) {
  Packet pkt;
  pkt.src = static_cast<NodeId>(r.U32());
  pkt.dst = static_cast<NodeId>(r.U32());
  pkt.tcp.src_port = static_cast<PortNum>(r.U32());
  pkt.tcp.dst_port = static_cast<PortNum>(r.U32());
  pkt.tcp.seq = r.U32();
  pkt.tcp.ack = r.U32();
  const std::uint8_t flags = r.U8();
  pkt.tcp.syn = (flags & 1u) != 0;
  pkt.tcp.fin = (flags & 2u) != 0;
  pkt.tcp.ack_flag = (flags & 4u) != 0;
  pkt.tcp.ece = (flags & 8u) != 0;
  pkt.tcp.cwr = (flags & 16u) != 0;
  pkt.corrupted = (flags & 32u) != 0;
  for (SackBlock& b : pkt.tcp.sack) {
    b.start = r.U32();
    b.end = r.U32();
  }
  pkt.ecn = static_cast<Ecn>(r.U8());
  pkt.payload = static_cast<std::int32_t>(r.I64());
  pkt.uid = r.U64();
  pkt.valiant_group = static_cast<std::int16_t>(r.I64());
  return pkt;
}

void Simulator::SaveCheckpoint(CheckpointWriter& w,
                               const CheckpointHooks* hooks) const {
  // Barrier preconditions: nothing is mid-event.
  DCTCPP_ASSERT(ack_burst_depth_ == 0);
  DCTCPP_ASSERT(ack_burst_flush_.empty());

  w.Tag(kTagSim);
  w.I64(now_);
  w.Bool(stopped_);
  w.U64(packets_forwarded_);
  std::uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (std::uint64_t s : rng_state) w.U64(s);
  invariants_.SaveState(w);
  // Construction-time sequences are audited, not restored: a correctly
  // rebuilt world reproduces them exactly, and a mismatch means the
  // restored topology differs from the saved one.
  w.U64(sequences_->next_impairment_stream);
  w.U64(sequences_->next_port_id);

  w.Tag(kTagWorkload);
  if (hooks != nullptr) hooks->SaveWorkload(w, shard_id_);

  w.Tag(kTagInfra);
  w.U64(checkpoint_clients_.size());
  for (const Checkpointable* c : checkpoint_clients_) c->SaveState(w);

  w.Tag(kTagSched);
  w.U64(scheduler_.next_seq());
  w.U64(scheduler_.executed());
  w.U64(scheduler_.PendingCount());
}

void Simulator::RestoreCheckpoint(CheckpointReader& r, CheckpointHooks* hooks) {
  r.ExpectTag(kTagSim);
  const Tick t = r.I64();
  // The wheel must be fresh (never run, nothing armed): RestoreClock
  // asserts it, and everything below re-arms against the restored clock.
  scheduler_.RestoreClock(t);
  now_ = t;
  stopped_ = r.Bool();
  packets_forwarded_ = r.U64();
  std::uint64_t rng_state[4];
  for (std::uint64_t& s : rng_state) s = r.U64();
  rng_.LoadState(rng_state);
  invariants_.LoadState(r);
  const std::uint64_t saved_streams = r.U64();
  const std::uint64_t saved_ports = r.U64();
  DCTCPP_ASSERT(saved_streams == sequences_->next_impairment_stream);
  DCTCPP_ASSERT(saved_ports == sequences_->next_port_id);
  (void)saved_streams;
  (void)saved_ports;

  // Phase 1: the workload re-creates its dynamic objects (sockets
  // re-register with hosts, wheel events re-arm with saved seqs).
  r.ExpectTag(kTagWorkload);
  if (hooks != nullptr) hooks->RestoreWorkload(r, shard_id_);

  // Phase 2: infrastructure scalars, in construction-registration order.
  // Host scalars land here, overwriting counters the workload phase
  // bumped while re-creating sockets.
  r.ExpectTag(kTagInfra);
  const std::uint64_t clients = r.U64();
  DCTCPP_ASSERT(clients == checkpoint_clients_.size());
  (void)clients;
  for (Checkpointable* c : checkpoint_clients_) c->LoadState(r);

  r.ExpectTag(kTagSched);
  scheduler_.SetNextSeq(r.U64());
  scheduler_.SetExecuted(r.U64());
  const std::uint64_t live = r.U64();
  // Every saved wheel arming must have been re-created — a mismatch means
  // a component forgot to re-arm (or armed something extra) on restore.
  DCTCPP_ASSERT(live == scheduler_.PendingCount());
  (void)live;
}

}  // namespace dctcpp
