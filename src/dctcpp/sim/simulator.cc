#include "dctcpp/sim/simulator.h"

namespace dctcpp {

std::uint64_t Simulator::RunUntil(Tick deadline) {
  stopped_ = false;
  // The loop itself lives in the scheduler's translation unit so the
  // per-event path is one inlined frame (see TimerWheelScheduler::RunLoop).
  const std::uint64_t executed =
      scheduler_.RunLoop(deadline, &stopped_, &now_);
  // If we stopped because of the deadline, advance the clock to it so that
  // repeated RunUntil calls observe monotonic time.
  if (!stopped_ && deadline != kTickMax && now_ < deadline &&
      (scheduler_.Empty() || scheduler_.NextTime() > deadline)) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace dctcpp
