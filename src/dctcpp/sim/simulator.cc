#include "dctcpp/sim/simulator.h"

namespace dctcpp {

std::uint64_t Simulator::RunUntil(Tick deadline) {
  std::uint64_t executed = 0;
  stopped_ = false;
  while (!stopped_ && !scheduler_.Empty()) {
    const Tick next = scheduler_.NextTime();
    if (next > deadline) break;
    DCTCPP_ASSERT(next >= now_);
    now_ = next;
    scheduler_.RunNext();
    ++executed;
  }
  // If we stopped because of the deadline, advance the clock to it so that
  // repeated RunUntil calls observe monotonic time.
  if (!stopped_ && deadline != kTickMax && now_ < deadline &&
      (scheduler_.Empty() || scheduler_.NextTime() > deadline)) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace dctcpp
