// Production discrete-event scheduler: hierarchical timer wheel.
//
// Level 0 has 2^14 one-tick slots (16.4 us at 1 ns/tick) indexed through a
// two-level occupancy bitmap; levels 1..6 have 64 slots each of width
// 2^14 * 64^(k-1), so the wheel spans 2^50 ticks (~13 simulated days).
// Level 0 is deliberately wide enough to cover a packet's serialization
// plus propagation time on the modelled links: the per-packet datapath
// events (FinishTransmission ~12 us out, DeliverHead ~10 us out) are homed
// directly into their final slot and never cascade — placement is one
// masked index plus two bitmap ORs. Events farther out than the span wait
// in a small min-heap overflow level and are popped from there directly.
// Events live in a free-listed pool of intrusively doubly-linked nodes, so
// scheduling performs no heap allocation in steady state and cancellation
// is an O(1) unlink — no `unordered_set`, no lazy tombstones on the hot
// path. `EventId`s carry a per-node generation counter, so a stale handle
// (fired or cancelled) can never cancel a later event that reuses the same
// pool slot.
//
// Determinism contract (identical to HeapScheduler, proven by the
// differential test in tests/scheduler_diff_test.cc): events pop in
// (time, insertion sequence) order — same-tick events fire in the order
// they were scheduled, globally, regardless of which wheel level they
// transited. Slot lists are kept sorted by sequence number to preserve
// this across cascades.
//
// Invariants (now_ == timestamp of the last popped event):
//  - level-0 events have `at` in [now_, now_+2^14); each occupied slot
//    holds exactly one timestamp, so the earliest event is found with a
//    circular find-first-set over the two-level bitmap;
//  - level-k (k>=1) events have `at` in (now_, now_ + width_k * 64); the
//    slot at the wheel's current position is always empty, so occupied
//    slots map to exactly one lap and slot base times are totally ordered
//    circularly from the position;
//  - when time advances across a level-k window boundary, the level-(k+1)
//    slots passed over are cascaded (re-homed) into lower levels, each
//    event cascading at most once per level over its lifetime.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "dctcpp/sim/event_id.h"
#include "dctcpp/sim/inline_action.h"
#include "dctcpp/util/assert.h"
#include "dctcpp/util/reference_mode.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

class TimerWheelScheduler {
 public:
  using Action = InlineAction;

  TimerWheelScheduler();

  /// Schedules `action` at absolute time `at`. Must satisfy `at >= ` the
  /// timestamp of the last popped event (the owning simulator's Now()
  /// guarantee implies this).
  EventId ScheduleAt(Tick at, Action action);

  /// Cancels a pending event; harmless if it already fired, was already
  /// cancelled, or the handle is stale (generation-checked).
  void Cancel(EventId id);

  // -------------------------------------------------------------------------
  // Pinned events: a node allocated once and re-armed many times, for
  // callers that fire the same callback over and over (a port's
  // transmit/deliver continuations, a socket's timers). Arming is just
  // re-homing the node — no pool traffic, no callable moves, no handle
  // generation churn. The callback is a bare function pointer + context,
  // so firing touches no object with a lifetime: the callback may re-arm
  // or even destroy its own pinned event.

  using PinnedFn = void (*)(void*);

  /// Allocates a parked pinned node bound to `fn(ctx)` for its lifetime.
  std::uint32_t CreatePinned(PinnedFn fn, void* ctx);
  /// Returns the node to the pool (cancelling any pending arming).
  void DestroyPinned(std::uint32_t idx);
  /// (Re-)arms at absolute time `at` (>= the clock); a pending arming is
  /// replaced, and the firing order is as if freshly scheduled now.
  void ArmPinnedAt(std::uint32_t idx, Tick at);
  /// Disarms; no-op when parked.
  void CancelPinned(std::uint32_t idx);
  bool PinnedArmed(std::uint32_t idx) const {
    return NodeAt(idx).loc != kLocParked;
  }

  bool Empty() const { return live_count_ == 0; }
  std::size_t PendingCount() const { return live_count_; }

  /// Exact time of the earliest pending event; kTickMax if none.
  Tick NextTime();

  /// Pops and runs the earliest event. Returns its timestamp.
  /// Precondition: !Empty().
  Tick RunNext();

  /// Runs events in order while the earliest is at or before `deadline`
  /// and `*stop` stays false, mirroring each event's timestamp into
  /// `*sim_now` before invoking it. Behaves exactly like the
  /// NextTime()/RunNext() loop it replaces, but lives in one translation
  /// unit so the whole pop path (scan, unlink, recycle, dispatch) inlines
  /// into a single frame, and same-tick level-0 slots holding several
  /// events are drained whole into a run-buffer (one slot unlink + bitmap
  /// clear per burst instead of one per event) — execution order is still
  /// exactly (time, seq), so the batch is observationally identical to
  /// pop-per-event. Returns the number of events executed.
  std::uint64_t RunLoop(Tick deadline, const bool* stop, Tick* sim_now);

  /// Total events ever executed (for instrumentation).
  std::uint64_t executed() const { return executed_; }

  // -------------------------------------------------------------------------
  // Checkpoint/restore hooks (sim/checkpoint.h). The blob records each
  // pending event's (at, seq); on restore, owners re-arm their events with
  // the saved seq so the pop order — which is purely (time, seq) — matches
  // the uninterrupted run exactly, regardless of node-index differences
  // between the two worlds. The restore protocol is: RestoreClock() on an
  // empty wheel, owners re-arm via the WithSeq variants in any order, then
  // SetNextSeq()/SetExecuted() reinstate the counters.

  /// Insertion sequence the next ScheduleAt/ArmPinnedAt would consume.
  std::uint64_t next_seq() const { return next_seq_; }
  /// Restores the sequence counter. Call after every WithSeq re-arm.
  void SetNextSeq(std::uint64_t seq) { next_seq_ = seq; }
  /// Restores the executed-events counter.
  void SetExecuted(std::uint64_t n) { executed_ = n; }

  /// Resets the wheel clock to `t`. Precondition: no live events (a fresh
  /// wheel, or one fully drained) — placement math is relative to now_, so
  /// moving the clock under pending events would corrupt slot homes.
  void RestoreClock(Tick t);

  /// ScheduleAt with an explicit insertion sequence; does not consume or
  /// disturb next_seq_. Restore path only.
  EventId ScheduleAtWithSeq(Tick at, Action action, std::uint64_t seq);
  /// ArmPinnedAt with an explicit insertion sequence. Restore path only.
  void ArmPinnedAtWithSeq(std::uint32_t idx, Tick at, std::uint64_t seq);

  /// (at, seq) of a pinned node's pending arming. Precondition: armed.
  void PinnedArming(std::uint32_t idx, Tick* at, std::uint64_t* seq) const {
    const Node& n = NodeAt(idx);
    DCTCPP_ASSERT(n.loc != kLocParked && n.loc != kLocFree);
    *at = n.at;
    *seq = n.seq;
  }

  /// Bytes held by the node pool (footprint accounting for the churn
  /// bench's bytes-per-flow gate).
  std::size_t PoolBytes() const { return chunks_.size() * kChunkSize * sizeof(Node); }

  /// Events currently parked in the far-future overflow heap (untracked
  /// stale entries excluded). Exposed for tests.
  std::size_t OverflowCount() const;

 private:
  static constexpr int kL0Bits = 14;
  static constexpr int kL0Slots = 1 << kL0Bits;  // 16384 one-tick slots
  static constexpr int kL0Words = kL0Slots / 64;
  static constexpr int kL0SumWords = kL0Words / 64;
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 64
  static constexpr int kUpperLevels = 6;                  // levels 1..6
  static constexpr Tick kWheelSpan =
      Tick(1) << (kL0Bits + kLevelBits * kUpperLevels);  // 2^50
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Bit position of upper level k's slot index within a timestamp.
  static constexpr int UpperShift(int k) {
    return kL0Bits + kLevelBits * (k - 1);
  }

  enum Location : std::int8_t {
    kLocFree = 0,
    kLocWheel = 1,
    kLocHeap = 2,
    kLocParked = 3,  // pinned node, currently disarmed
    kLocBatch = 4,   // unlinked into the same-tick run-buffer, not yet run
  };

  // Field order is deliberate: everything the wheel machinery touches
  // (placement, slot-list links, cascades, the scan) sits in the first 48
  // bytes — one cache line per node — with the action buffer, only read at
  // dispatch, last.
  struct Node {
    Tick at = 0;
    std::uint64_t seq = 0;
    PinnedFn pin_fn = nullptr;  // set <=> pinned node
    void* pin_ctx = nullptr;
    std::uint32_t gen = 0;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::int8_t loc = kLocFree;
    std::int8_t level = -1;
    std::int16_t slot = -1;
    InlineAction action;
  };

  /// Paired slot header: head and tail of a slot's intrusive list share a
  /// cache line (and usually a single 8-byte load/store), where the old
  /// parallel head[]/tail[] arrays put them a wheel apart. static_assert
  /// below pins the packed layout the hot path relies on.
  struct Slot {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };
  static_assert(sizeof(Slot) == 8, "slot header must stay one 8-byte pair");

  struct HeapEntry {
    Tick at;
    std::uint64_t seq;
    std::uint32_t idx;
    std::uint32_t gen;
  };

  /// One not-yet-run event in the same-tick run-buffer. `seq` (together
  /// with loc == kLocBatch) revalidates the node at dispatch: a mid-batch
  /// Cancel/CancelPinned/re-arm changes loc or seq and voids the entry.
  struct BatchEntry {
    std::uint64_t seq;
    std::uint32_t idx;
  };
  struct HeapLater {  // min-heap on (at, seq) via std::*_heap
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kChunkShift = 10;  // 1024 nodes per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Node& NodeAt(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  const Node& NodeAt(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::uint32_t AllocNode();
  void FreeNode(Node& n, std::uint32_t idx);

  /// Homes a node into the wheel (or overflow heap) based on `at - now_`.
  void Place(std::uint32_t idx, Node& n);
  /// Inserts into a slot list keeping it sorted by seq (append-fast).
  void LinkSorted(int level, int slot, std::uint32_t idx, Node& n);
  void Unlink(std::uint32_t idx, Node& n);

  void SetL0Bit(int slot);
  void ClearL0Bit(int slot);
  /// First occupied level-0 slot at circular distance >= 0 from `pos`
  /// (absolute slot index), or -1 if level 0 is empty.
  int FindL0From(int pos) const;

  /// Advances the wheel to `t` (<= every pending event's time), cascading
  /// higher-level slots whose windows were entered or passed. The no-cascade
  /// fast path is inline: datapath events advance time by a few
  /// microseconds, so a level-1 window boundary is rarely crossed (this
  /// also covers t == now_).
  void AdvanceTo(Tick t) {
    DCTCPP_DASSERT(t >= now_);
    if (((now_ ^ t) >> kL0Bits) == 0) {
      now_ = t;
      return;
    }
    AdvanceCascade(t);
  }
  void AdvanceCascade(Tick t);

  /// Drops stale heap tops, then computes the exact earliest pending event
  /// into the cached_* fields (kTickMax/kNil when empty).
  void EnsureNext();

  /// Drains the whole level-0 slot holding the cached minimum into the
  /// run-buffer and dispatches its events in seq order, revalidating each
  /// entry against mid-batch cancellation. Precondition: EnsureNext() done,
  /// cached minimum is a multi-node level-0 slot, and the overflow heap has
  /// nothing at this tick. Returns the number of events executed (stops
  /// early, re-homing unrun entries, when `*stop` flips).
  std::uint64_t RunSlotBatch(const bool* stop);

  Tick now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;

  // Level 0: flat one-tick slots with a two-level occupancy bitmap
  // (occ0_sum_ bit s set <=> occ0_[s] != 0).
  std::vector<Slot> slots0_;  // kL0Slots entries
  std::uint64_t occ0_[kL0Words] = {};
  std::uint64_t occ0_sum_[kL0SumWords] = {};

  // Upper levels, indexed [k-1] for level k in 1..kUpperLevels.
  Slot upper_[kUpperLevels][kSlotsPerLevel];
  std::uint64_t occupied_[kUpperLevels] = {};

  std::vector<HeapEntry> heap_;   // overflow level, lazy-cancelled
  std::vector<BatchEntry> batch_; // same-tick run-buffer (RunSlotBatch)

  // Per-packet reference mode (SetScalarReferenceForTest): RunLoop skips
  // the same-tick batch drain and pops one event at a time, so the
  // regression harness can prove the batched+prefetched pipeline is
  // observationally identical to the scalar pop order.
  const bool scalar_ref_ = ScalarReferenceEnabled();

  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t alloc_count_ = 0;
  std::uint32_t free_head_ = kNil;

  // Memoized earliest event, kept exact across ScheduleAt (monotonic seq
  // means a later-scheduled tie never displaces the cached minimum).
  bool cached_valid_ = false;
  bool cached_from_heap_ = false;
  Tick cached_at_ = kTickMax;
  std::uint64_t cached_seq_ = ~0ull;
  std::uint32_t cached_idx_ = kNil;

  // Conservative lower bound on the earliest event homed in the upper
  // levels or the overflow heap (kTickMax when provably empty). Place
  // lowers it on every upper/heap insert; full EnsureNext scans tighten it
  // back up. While the level-0 minimum is *strictly* below this bound, the
  // per-pop scan of six upper-level bitmaps and the heap stale-drop are
  // skipped entirely — in the datapath steady state (every event < 16.4 us
  // out) the bound stays far in the future and wheel-pop is pure L0
  // bitmap-ctz. Ties fall back to the full scan: an upper/heap event at
  // the same tick could carry a lower seq. Cascades and cancellations only
  // make the bound stale-low, which costs the fast path, never correctness.
  Tick upper_min_at_ = kTickMax;
};

}  // namespace dctcpp
