#include "dctcpp/dctcp/dctcp.h"

#include <algorithm>
#include <cmath>

#include "dctcpp/tcp/socket.h"
#include "dctcpp/util/assert.h"

namespace dctcpp {

DctcpCc::DctcpCc() : DctcpCc(Config{}) {}

DctcpCc::DctcpCc(const Config& config)
    : NewRenoCc(NewRenoCc::Config{/*ecn=*/true, config.initial_cwnd,
                                  config.min_cwnd}),
      dctcp_config_(config),
      alpha_(config.alpha0) {
  DCTCPP_ASSERT(config.g > 0.0 && config.g <= 1.0);
  DCTCPP_ASSERT(config.alpha0 >= 0.0 && config.alpha0 <= 1.0);
}

void DctcpCc::OnEstablished(TcpSocket& sk) {
  (void)sk;
  alpha_window_armed_ = false;
  acked_bytes_total_ = 0;
  acked_bytes_marked_ = 0;
}

void DctcpCc::UpdateAlphaAccounting(TcpSocket& sk, const AckContext& ctx) {
  if (ctx.newly_acked > 0) {
    acked_bytes_total_ += ctx.newly_acked;
    if (ctx.ece) acked_bytes_marked_ += ctx.newly_acked;
  }
  if (!alpha_window_armed_) {
    // Open the first observation window one window of data ahead.
    alpha_window_end_ = sk.StreamAcked() + sk.FlightSize();
    alpha_window_armed_ = true;
    return;
  }
  if (sk.StreamAcked() >= alpha_window_end_) {
    // A full window of data has been acknowledged: fold the observed
    // marked fraction into alpha (Eq. 1) and start the next window.
    const double f =
        acked_bytes_total_ > 0
            ? static_cast<double>(acked_bytes_marked_) /
                  static_cast<double>(acked_bytes_total_)
            : 0.0;
    alpha_ = (1.0 - dctcp_config_.g) * alpha_ + dctcp_config_.g * f;
    alpha_ = std::clamp(alpha_, 0.0, 1.0);
    acked_bytes_total_ = 0;
    acked_bytes_marked_ = 0;
    alpha_window_end_ = sk.StreamAcked() + sk.FlightSize();
  }
}

int DctcpCc::ApplyWindowReduction(TcpSocket& sk) {
  // Eq. 2: W <- (1 - alpha/2) W, rounded to the nearest whole MSS and
  // never below the protocol's floor. The integer rounding preserves the
  // granularity limit the paper analyses — a 2-MSS window with moderate
  // alpha cannot shrink at all — while still letting moderate windows
  // respond to light marking.
  const int reduced = static_cast<int>(
      static_cast<double>(sk.cwnd()) * (1.0 - alpha_ / 2.0) + 0.5);
  const int target = std::max(reduced, MinCwnd());
  sk.set_ssthresh(target);
  sk.set_cwnd(target);
  sk.SetCwrPending();
  return target;
}

void DctcpCc::OnAck(TcpSocket& sk, const AckContext& ctx) {
  UpdateAlphaAccounting(sk, ctx);
  if (ctx.ece && !sk.InRecovery() && CanReduceNow(sk)) {
    ApplyWindowReduction(sk);
    MarkReduced(sk);
    return;  // reducing ACK does not also grow
  }
  if (!ctx.ece) GrowWindow(sk, ctx.newly_acked);
}

int DctcpCc::SsthreshAfterLoss(const TcpSocket& sk) const {
  // Packet loss falls back to the Reno response (as in the Linux module,
  // loss halves regardless of alpha).
  return std::max(sk.cwnd() / 2, MinCwnd());
}

void DctcpCc::OnRetransmissionTimeout(TcpSocket& sk) {
  (void)sk;
  // Linux dctcp resets the marked-byte accounting on loss recovery; the
  // alpha estimate itself persists.
  acked_bytes_total_ = 0;
  acked_bytes_marked_ = 0;
  alpha_window_armed_ = false;
}

}  // namespace dctcpp
