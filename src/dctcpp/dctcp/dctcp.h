// DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).
//
// The sender estimates the fraction of bytes that experienced congestion
// from the ECE-marked ACK stream:
//
//   alpha <- (1 - g) * alpha + g * F        (paper's Eq. 1)
//   W     <- (1 - alpha / 2) * W            (paper's Eq. 2, once per window)
//
// where F is the marked fraction over the last window of data. Window
// growth outside congestion episodes is standard Reno slow start /
// congestion avoidance, as in the Linux module. The receiver uses DCTCP's
// delayed-ACK-aware CE echo state machine (implemented in TcpSocket,
// selected via DctcpStyleReceiver()).
#pragma once

#include "dctcpp/tcp/newreno.h"

namespace dctcpp {

class DctcpCc : public NewRenoCc {
 public:
  struct Config {
    double g = 1.0 / 16.0;     ///< EWMA gain of Eq. 1
    double alpha0 = 1.0;       ///< initial alpha (Linux starts fully backed off)
    int initial_cwnd = 3;
    int min_cwnd = 2;          ///< the lower bound the paper studies
  };

  DctcpCc();  // default Config
  explicit DctcpCc(const Config& config);

  const char* Name() const override { return "dctcp"; }
  bool EcnCapable() const override { return true; }
  bool DctcpStyleReceiver() const override { return true; }
  int InitialCwnd() const override { return dctcp_config_.initial_cwnd; }
  int MinCwnd() const override { return dctcp_config_.min_cwnd; }

  void OnEstablished(TcpSocket& sk) override;
  void OnAck(TcpSocket& sk, const AckContext& ctx) override;
  int SsthreshAfterLoss(const TcpSocket& sk) const override;
  void OnRetransmissionTimeout(TcpSocket& sk) override;

  double alpha() const { return alpha_; }

  void SaveState(CheckpointWriter& w) const override {
    NewRenoCc::SaveState(w);
    w.F64(alpha_);
    w.I64(acked_bytes_total_);
    w.I64(acked_bytes_marked_);
    w.I64(alpha_window_end_);
    w.Bool(alpha_window_armed_);
  }
  void LoadState(CheckpointReader& r) override {
    NewRenoCc::LoadState(r);
    alpha_ = r.F64();
    acked_bytes_total_ = r.I64();
    acked_bytes_marked_ = r.I64();
    alpha_window_end_ = r.I64();
    alpha_window_armed_ = r.Bool();
  }

 protected:
  /// Applies Eq. 2 to the socket (clamped at MinCwnd); returns new cwnd.
  /// Virtual so deadline-aware variants (D2TCP) can reshape the penalty.
  virtual int ApplyWindowReduction(TcpSocket& sk);

 private:
  void UpdateAlphaAccounting(TcpSocket& sk, const AckContext& ctx);

  Config dctcp_config_;
  double alpha_;
  Bytes acked_bytes_total_ = 0;
  Bytes acked_bytes_marked_ = 0;
  std::int64_t alpha_window_end_ = 0;  ///< stream offset ending the window
  bool alpha_window_armed_ = false;
};

}  // namespace dctcpp
