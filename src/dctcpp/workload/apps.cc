#include "dctcpp/workload/apps.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

// ---------------------------------------------------------------------------
// WorkerServer

WorkerServer::WorkerServer(Host& host, TcpListener::CcFactory cc_factory,
                           const TcpSocket::Config& socket_config,
                           Config config)
    : config_(std::move(config)),
      listener_(host, config_.port, std::move(cc_factory), socket_config,
                [this](TcpSocket::Ptr s) { OnAccept(std::move(s)); }) {
  DCTCPP_ASSERT(config_.request_size > 0);
  DCTCPP_ASSERT(config_.response_size != nullptr);
}

void WorkerServer::OnAccept(TcpSocket::Ptr socket) {
  ArenaPtr<Conn> conn = MakeArena<Conn>(socket->sim().arena());
  conn->socket = std::move(socket);
  Conn* c = conn.get();
  c->socket->set_on_data([this, c](Bytes n) {
    c->request_bytes_pending += n;
    while (c->request_bytes_pending >= config_.request_size) {
      c->request_bytes_pending -= config_.request_size;
      const Bytes response = config_.response_size();
      DCTCPP_ASSERT(response > 0);
      total_responded_ += response;
      if (config_.on_response_hook) {
        config_.on_response_hook(*c->socket, response);
      }
      c->socket->Send(response);
    }
  });
  if (config_.on_accept_hook) config_.on_accept_hook(*c->socket);
  conns_.push_back(std::move(conn));
}

// ---------------------------------------------------------------------------
// AggregatorClient

AggregatorClient::AggregatorClient(Host& host,
                                   std::unique_ptr<CongestionOps> cc,
                                   const TcpSocket::Config& socket_config,
                                   NodeId server, PortNum server_port,
                                   Bytes request_size)
    : request_size_(request_size),
      server_(server),
      server_port_(server_port),
      socket_(MakeArena<TcpSocket>(host.sim().arena(), host, std::move(cc),
                                   socket_config)) {
  DCTCPP_ASSERT(request_size_ > 0);
  socket_->set_on_data([this](Bytes n) { OnData(n); });
}

void AggregatorClient::Connect(TcpSocket::Callback on_connected) {
  socket_->set_on_connected(std::move(on_connected));
  socket_->Connect(server_, server_port_);
}

void AggregatorClient::Request(Bytes response_bytes,
                               TcpSocket::Callback on_response) {
  DCTCPP_ASSERT(response_bytes > 0);
  pending_.push_back(Pending{response_bytes, std::move(on_response)});
  socket_->Send(request_size_);
}

void AggregatorClient::OnData(Bytes n) {
  total_received_ += n;
  while (n > 0 && !pending_.empty()) {
    Pending& head = pending_.front();
    const Bytes used = std::min(n, head.remaining);
    head.remaining -= used;
    n -= used;
    if (head.remaining == 0) {
      auto cb = std::move(head.on_response);
      pending_.pop_front();
      if (cb) cb();
    }
  }
}

// ---------------------------------------------------------------------------
// SinkServer

SinkServer::SinkServer(Host& host, PortNum port,
                       TcpListener::CcFactory cc_factory,
                       const TcpSocket::Config& socket_config,
                       FlowCallback on_flow_complete)
    : on_flow_complete_(std::move(on_flow_complete)),
      listener_(host, port, std::move(cc_factory), socket_config,
                [this](TcpSocket::Ptr s) { OnAccept(std::move(s)); }) {}

void SinkServer::OnAccept(TcpSocket::Ptr socket) {
  ArenaPtr<Conn> conn = MakeArena<Conn>(socket->sim().arena());
  conn->socket = std::move(socket);
  Conn* c = conn.get();
  c->socket->set_on_data([this, c](Bytes n) {
    c->received += n;
    total_received_ += n;
  });
  c->socket->set_on_remote_close([this, c] {
    ++flows_completed_;
    c->socket->Close();  // finish the teardown from our side too
    if (on_flow_complete_) on_flow_complete_(c->received);
  });
  conns_.push_back(std::move(conn));
}

// ---------------------------------------------------------------------------
// BulkSender

BulkSender::BulkSender(Host& host, std::unique_ptr<CongestionOps> cc,
                       const TcpSocket::Config& socket_config, NodeId dst,
                       PortNum dst_port)
    : dst_(dst),
      dst_port_(dst_port),
      socket_(MakeArena<TcpSocket>(host.sim().arena(), host, std::move(cc),
                                   socket_config)) {}

void BulkSender::Start(Bytes size, bool close_when_done,
                       TcpSocket::Callback on_complete) {
  DCTCPP_ASSERT(size > 0);
  size_ = size;
  close_when_done_ = close_when_done;
  on_complete_ = std::move(on_complete);
  started_at_ = socket_->sim().Now();
  socket_->set_on_acked([this](Bytes) { CheckComplete(); });
  socket_->set_on_connected([this] {
    socket_->Send(size_);
    if (close_when_done_) socket_->Close();
  });
  socket_->Connect(dst_, dst_port_);
}

void BulkSender::CheckComplete() {
  if (completed_ || socket_->StreamAcked() < size_) return;
  completed_ = true;
  if (on_complete_) on_complete_();
}

}  // namespace dctcpp
