// The Sec. VI-D benchmark: query (partition/aggregate) traffic mixed with
// short-message/background flows following the production-cluster
// statistics, comparing DCTCP+ and DCTCP with RTO_min = 10 ms (Fig 13).
#pragma once

#include <cstdint>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/link.h"
#include "dctcpp/stats/summary.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/workload/background.h"

namespace dctcpp {

struct BenchmarkTrafficConfig {
  Protocol protocol = Protocol::kDctcp;
  int num_workers = 9;
  /// Query count (paper: 7000; scale down for quick runs).
  int num_queries = 1000;
  /// Background/short-message flow count (paper: 7000).
  int num_background_flows = 1000;
  /// Poisson arrivals.
  Tick query_mean_interarrival = 10 * kMillisecond;
  Tick background_mean_interarrival = 10 * kMillisecond;
  /// Concurrent connections each query fans out over (spread round-robin
  /// across the worker hosts, like the incast benchmark's multithreaded
  /// flows). The paper's premise is partition/aggregate over hundreds of
  /// concurrent flows; each connection returns `query_response_bytes`.
  int query_fan_in = 200;
  /// Bytes pulled per connection per query (paper: 2 KB responses).
  Bytes query_response_bytes = 2048;
  Bytes request_size = 64;
  LinkConfig link;
  Tick min_rto = 10 * kMillisecond;  ///< both protocols run 10 ms (Fig 13)
  std::uint64_t seed = 1;
  ProtocolOptions options;
  TcpSocket::Config socket;
  Tick time_limit = 600 * kSecond;
};

struct BenchmarkTrafficResult {
  Protocol protocol{};
  /// Per-query completion time (issue to last response byte), ms.
  Percentile query_fct_ms;
  /// Per-background-flow completion time, ms.
  Percentile background_fct_ms;

  std::uint64_t queries_completed = 0;
  std::uint64_t background_flows_completed = 0;
  std::uint64_t sender_timeouts = 0;  ///< across worker/query sockets

  std::uint64_t events = 0;
  double sim_seconds = 0.0;
  bool hit_time_limit = false;
};

BenchmarkTrafficResult RunBenchmarkTraffic(
    const BenchmarkTrafficConfig& config);

}  // namespace dctcpp
