#include "dctcpp/workload/background.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

EmpiricalCdf ProductionFlowSizeCdf() {
  // Piecewise-linear fit of the DCTCP paper's measured flow-size CDF: the
  // bulk of flows are a few KB (query/coordination traffic), a middle band
  // of 50 KB - 1 MB short messages, and a 1 MB - 10 MB background tail
  // that carries most of the bytes. Values in bytes.
  return EmpiricalCdf({
      {1 * 1024.0, 0.00},
      {2 * 1024.0, 0.30},
      {10 * 1024.0, 0.50},
      {50 * 1024.0, 0.70},
      {256 * 1024.0, 0.80},
      {1024 * 1024.0, 0.92},
      {5 * 1024 * 1024.0, 0.98},
      {10 * 1024 * 1024.0, 1.00},
  });
}

FlowGenerator::FlowGenerator(Simulator& sim, std::vector<Host*> hosts,
                             TcpListener::CcFactory cc_factory,
                             const TcpSocket::Config& socket_config,
                             Config config, EmpiricalCdf size_cdf)
    : sim_(sim),
      hosts_(std::move(hosts)),
      cc_factory_(std::move(cc_factory)),
      socket_config_(socket_config),
      config_(config),
      size_cdf_(std::move(size_cdf)) {
  DCTCPP_ASSERT(hosts_.size() >= 2);
  DCTCPP_ASSERT(config_.flow_count >= 0);
  DCTCPP_ASSERT(config_.mean_interarrival > 0);
  flows_.reserve(static_cast<std::size_t>(config_.flow_count));
}

void FlowGenerator::Start(std::function<void()> on_all_complete) {
  on_all_complete_ = std::move(on_all_complete);
  if (config_.flow_count == 0) {
    if (on_all_complete_) on_all_complete_();
    return;
  }
  ScheduleNext();
}

void FlowGenerator::ScheduleNext() {
  if (started_ >= config_.flow_count) return;
  const double wait_s =
      sim_.rng().Exponential(ToSeconds(config_.mean_interarrival));
  const Tick wait = static_cast<Tick>(wait_s * static_cast<double>(kSecond));
  sim_.Schedule(wait, [this] { LaunchFlow(); });
}

void FlowGenerator::LaunchFlow() {
  Rng& rng = sim_.rng();
  const auto n = static_cast<std::int64_t>(hosts_.size());
  const auto src = static_cast<std::size_t>(rng.UniformInt(0, n - 1));
  std::size_t dst = static_cast<std::size_t>(rng.UniformInt(0, n - 2));
  if (dst >= src) ++dst;  // uniform over pairs with dst != src

  const Bytes size =
      std::max<Bytes>(1, static_cast<Bytes>(size_cdf_.Sample(rng)));
  bytes_sent_ += size;
  ++started_;

  flows_.push_back(std::make_unique<BulkSender>(
      *hosts_[src], cc_factory_(), socket_config_, hosts_[dst]->id(),
      config_.sink_port));
  BulkSender* flow = flows_.back().get();
  flow->Start(size, config_.close_flows, [this, flow] {
    fct_ms_.Add(ToMillis(sim_.Now() - flow->started_at()));
    if (++completed_ == config_.flow_count && on_all_complete_) {
      on_all_complete_();
    }
  });

  ScheduleNext();
}

}  // namespace dctcpp
