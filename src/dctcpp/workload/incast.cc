#include "dctcpp/workload/incast.h"

#include <algorithm>
#include <memory>

#include "dctcpp/net/parallel.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/util/log.h"
#include "dctcpp/workload/apps.h"

namespace dctcpp {
namespace {

constexpr PortNum kWorkerPort = 5000;
constexpr PortNum kSinkPort = 6000;
constexpr Bytes kLongFlowBytes = 64LL * 1024 * kMiB;  // effectively endless

/// Snapshot of the tracked flow's probe, diffed per round for Table I.
struct ProbeSnapshot {
  std::uint64_t at_min = 0;
  std::uint64_t floss = 0;
  std::uint64_t lack = 0;

  static ProbeSnapshot Of(const RecordingProbe& p) {
    return ProbeSnapshot{p.at_min_with_ece(), p.floss_timeouts(),
                         p.lack_timeouts()};
  }
};

/// Events in (after, upto] of a sorted tick log.
std::uint64_t CountInRound(const std::vector<Tick>& ticks, Tick after,
                           Tick upto) {
  const auto lo = std::upper_bound(ticks.begin(), ticks.end(), after);
  const auto hi = std::upper_bound(ticks.begin(), ticks.end(), upto);
  return static_cast<std::uint64_t>(hi - lo);
}

/// The incast benchmark on the conservative-parallel engine. Mirrors the
/// single-Simulator path below, with the shard-safety differences called
/// out inline: per-worker probe vectors (each written only by its own
/// shard's runner), tracked-flow round statistics reconstructed from the
/// tracked probe's tick log after the run (the round driver lives on the
/// aggregator's shard and must not read worker-shard probes mid-run), and
/// merged coordinator counters in place of the single world's.
IncastResult RunIncastSharded(const IncastConfig& config) {
  DCTCPP_ASSERT(config.shards >= 1);
  DCTCPP_ASSERT(config.background_flows == 0 &&
                "sharded incast does not support background flows yet");
  DCTCPP_ASSERT(!config.sample_queue &&
                "sharded incast does not support queue sampling yet");

  ParallelSimulation psim(config.seed, config.shards);
  psim.set_lookahead_mode(config.fixed_window_lookahead
                              ? LookaheadMode::kFixedWindow
                              : LookaheadMode::kChannelClock);
  Network net(psim);
  TwoTierTopology topo =
      TwoTierTopology::Build(net, config.num_workers, config.link);
  Simulator& agg_sim = topo.aggregator->sim();

  TcpSocket::Config socket_config = config.socket;
  socket_config.rto.min_rto = config.min_rto;
  socket_config.rto.initial_rto =
      std::max(config.min_rto, 10 * kMillisecond);

  const Bytes per_flow =
      config.per_flow_bytes > 0
          ? config.per_flow_bytes
          : std::max<Bytes>(1, config.total_bytes / config.num_flows);

  auto cc_factory = [&config] {
    return MakeCongestionOps(config.protocol, config.options);
  };

  // One probe vector per worker: accepts run on the worker's shard, so
  // concurrent windows touch disjoint vectors. The tracked flow is worker
  // 0's first accept — the connect stagger (100 us per flow, far beyond a
  // SYN round-trip) guarantees it is the globally first accept, i.e. the
  // same flow the single-Simulator path tracks.
  std::vector<std::vector<ArenaPtr<RecordingProbe>>> probes(
      static_cast<std::size_t>(config.num_workers));
  std::vector<int> worker_index_by_node;
  for (int w = 0; w < config.num_workers; ++w) {
    const auto id = static_cast<std::size_t>(topo.workers[w]->id());
    if (worker_index_by_node.size() <= id) {
      worker_index_by_node.resize(id + 1, -1);
    }
    worker_index_by_node[id] = w;
  }
  auto accept_hook = [&probes, &worker_index_by_node](TcpSocket& sk) {
    const int w =
        worker_index_by_node[static_cast<std::size_t>(sk.host().id())];
    auto& vec = probes[static_cast<std::size_t>(w)];
    vec.push_back(MakeArena<RecordingProbe>(sk.sim().arena()));
    if (w == 0 && vec.size() == 1) vec.back()->EnableTickLog();
    sk.set_probe(vec.back().get());
  };

  std::vector<ArenaPtr<WorkerServer>> servers;
  for (int w = 0; w < config.num_workers; ++w) {
    WorkerServer::Config wc;
    wc.port = kWorkerPort;
    wc.request_size = config.request_size;
    wc.response_size = [per_flow] { return per_flow; };
    wc.on_accept_hook = accept_hook;
    servers.push_back(MakeArena<WorkerServer>(
        topo.workers[w]->sim().arena(), *topo.workers[w], cc_factory,
        socket_config, std::move(wc)));
  }

  std::vector<ArenaPtr<AggregatorClient>> clients;
  for (int i = 0; i < config.num_flows; ++i) {
    Host* worker = topo.workers[i % config.num_workers];
    clients.push_back(MakeArena<AggregatorClient>(
        agg_sim.arena(), *topo.aggregator, cc_factory(), socket_config,
        worker->id(), kWorkerPort, config.request_size));
  }

  IncastResult result;
  result.protocol = config.protocol;
  result.num_flows = config.num_flows;
  result.per_flow_bytes = per_flow;

  // Round driver — runs entirely in aggregator-shard events. Instead of
  // snapshotting the tracked probe per round (it lives on another shard),
  // record the (start, end] bounds of every round and bin the tracked
  // probe's tick log against them after the run.
  int connected = 0;
  int completed_in_round = 0;
  Tick round_start = 0;
  Tick first_round_start = -1;
  Tick finish_tick = -1;
  std::vector<std::pair<Tick, Tick>> round_bounds;

  std::function<void()> start_round = [&] {
    round_start = agg_sim.Now();
    if (first_round_start < 0) first_round_start = round_start;
    completed_in_round = 0;
    for (std::size_t ci = 0; ci < clients.size(); ++ci) {
      auto issue = [&, ci] {
        clients[ci]->Request(per_flow, [&] {
          if (++completed_in_round < config.num_flows) return;
          result.fct_ms.Add(ToMillis(agg_sim.Now() - round_start));
          ++result.rounds_completed;
          round_bounds.emplace_back(round_start, agg_sim.Now());
          if (result.rounds_completed >=
              static_cast<std::uint64_t>(config.rounds)) {
            finish_tick = agg_sim.Now();
            agg_sim.Stop();  // routed to the coordinator's stop flag
          } else {
            start_round();
          }
        });
      };
      if (config.request_stagger > 0) {
        agg_sim.Schedule(static_cast<Tick>(ci) * config.request_stagger,
                         issue);
      } else {
        issue();
      }
    }
  };

  for (int i = 0; i < config.num_flows; ++i) {
    agg_sim.Schedule(static_cast<Tick>(i) * 100 * kMicrosecond, [&, i] {
      clients[i]->Connect([&] {
        if (++connected == config.num_flows) start_round();
      });
    });
  }

  psim.RunUntil(config.time_limit, config.shard_pool);
  result.hit_time_limit =
      result.rounds_completed < static_cast<std::uint64_t>(config.rounds);
  if (result.hit_time_limit) {
    DCTCPP_WARN("incast %s N=%d hit time limit after %llu/%d rounds",
                ToString(config.protocol), config.num_flows,
                static_cast<unsigned long long>(result.rounds_completed),
                config.rounds);
  }

  // After Stop the aggregator legitimately finishes its window, so its
  // clock may pass the stopping event; the driver recorded the real end.
  const Tick end_tick =
      psim.stopped() && finish_tick >= 0 ? finish_tick : config.time_limit;
  const Tick elapsed =
      first_round_start >= 0 ? end_tick - first_round_start : 0;
  const Bytes response_bytes =
      per_flow * config.num_flows *
      static_cast<Bytes>(result.rounds_completed);
  result.goodput_mbps = GoodputMbps(response_bytes, elapsed);

  for (const auto& worker_probes : probes) {
    for (const auto& probe : worker_probes) {
      result.cwnd_hist.Merge(probe->cwnd_histogram());
      result.timeouts += probe->timeouts();
      result.floss_timeouts += probe->floss_timeouts();
      result.lack_timeouts += probe->lack_timeouts();
      result.fast_retransmits += probe->fast_retransmits();
    }
  }

  if (!probes[0].empty()) {
    const RecordingProbe& tracked = *probes[0][0];
    for (const auto& [start, end] : round_bounds) {
      const std::uint64_t at_min =
          CountInRound(tracked.at_min_ticks(), start, end);
      const std::uint64_t floss =
          CountInRound(tracked.floss_ticks(), start, end);
      const std::uint64_t lack =
          CountInRound(tracked.lack_ticks(), start, end);
      if (at_min > 0) ++result.tracked_rounds_at_min_ece;
      if (floss + lack > 0) ++result.tracked_rounds_with_timeout;
      result.tracked_floss += floss;
      result.tracked_lack += lack;
    }
  }

  std::vector<double> per_flow_bytes_received;
  per_flow_bytes_received.reserve(clients.size());
  for (const auto& client : clients) {
    per_flow_bytes_received.push_back(
        static_cast<double>(client->total_received()));
  }
  result.flow_fairness = JainFairnessIndex(per_flow_bytes_received);

  const auto& bstats = topo.bottleneck->queue().stats();
  result.bottleneck_drops = bstats.dropped;
  result.bottleneck_marks = bstats.marked;
  result.bottleneck_max_queue = bstats.max_occupancy;

  result.events = psim.events_executed();
  for (int s = 0; s < psim.shard_count(); ++s) {
    result.shard_events.push_back(psim.shard_events(s));
  }
  result.packets_forwarded = psim.packets_forwarded();
  result.windows_run = psim.windows_run();
  result.gang_windows = psim.gang_windows();
  result.sync_rounds = psim.sync_rounds();
  result.cross_shard_handoffs = psim.cross_shard_handoffs();
  result.sim_seconds = ToSeconds(end_tick);

  result.invariant_violations = psim.invariant_violations();
  const NetworkInvariants::Ledger ledger = psim.MergedLedger();
  result.packets_originated = ledger.originated;
  result.packets_dropped = ledger.dropped;
  result.packets_duplicated = ledger.duplicated;
  result.checksum_discards = ledger.checksum_discards;
  if (result.invariant_violations > 0) {
    DCTCPP_WARN("incast %s N=%d: %llu invariant violations (first: %s)",
                ToString(config.protocol), config.num_flows,
                static_cast<unsigned long long>(result.invariant_violations),
                psim.first_violation().c_str());
  }
  return result;
}

}  // namespace

IncastResult RunIncast(const IncastConfig& config) {
  DCTCPP_ASSERT(config.num_flows >= 1);
  DCTCPP_ASSERT(config.num_workers >= 1);
  DCTCPP_ASSERT(config.rounds >= 1);
  if (config.shards > 0) return RunIncastSharded(config);

  Simulator sim(config.seed);
  Network net(sim);
  TwoTierTopology topo =
      TwoTierTopology::Build(net, config.num_workers, config.link);

  TcpSocket::Config socket_config = config.socket;
  socket_config.rto.min_rto = config.min_rto;
  socket_config.rto.initial_rto =
      std::max(config.min_rto, 10 * kMillisecond);

  const Bytes per_flow =
      config.per_flow_bytes > 0
          ? config.per_flow_bytes
          : std::max<Bytes>(1, config.total_bytes / config.num_flows);

  auto cc_factory = [&config] {
    return MakeCongestionOps(config.protocol, config.options);
  };

  // All per-flow control-plane state — probes, servers, clients, long
  // flows — lives in the simulation's arena: allocated once at setup,
  // adjacent in memory, reclaimed wholesale when `sim` dies.
  Arena& arena = sim.arena();

  // Worker-side probes: one per accepted sender socket; the first accepted
  // connection is the "randomly selected" tracked flow of the paper.
  std::vector<ArenaPtr<RecordingProbe>> probes;
  auto accept_hook = [&probes, &arena](TcpSocket& sk) {
    probes.push_back(MakeArena<RecordingProbe>(arena));
    sk.set_probe(probes.back().get());
  };

  std::vector<ArenaPtr<WorkerServer>> servers;
  for (int w = 0; w < config.num_workers; ++w) {
    WorkerServer::Config wc;
    wc.port = kWorkerPort;
    wc.request_size = config.request_size;
    wc.response_size = [per_flow] { return per_flow; };
    wc.on_accept_hook = accept_hook;
    servers.push_back(MakeArena<WorkerServer>(
        arena, *topo.workers[w], cc_factory, socket_config, std::move(wc)));
  }

  // Aggregator clients, one per concurrent flow, spread round-robin over
  // the worker hosts (the paper's multithreaded benchmark).
  std::vector<ArenaPtr<AggregatorClient>> clients;
  for (int i = 0; i < config.num_flows; ++i) {
    Host* worker = topo.workers[i % config.num_workers];
    clients.push_back(MakeArena<AggregatorClient>(
        arena, *topo.aggregator, cc_factory(), socket_config, worker->id(),
        kWorkerPort, config.request_size));
  }

  // Optional background long flows through the same bottleneck (Fig 10).
  ArenaPtr<SinkServer> sink;
  std::vector<ArenaPtr<BulkSender>> long_flows;
  if (config.background_flows > 0) {
    sink = MakeArena<SinkServer>(arena, *topo.aggregator, kSinkPort,
                                 cc_factory, socket_config);
    for (int i = 0; i < config.background_flows; ++i) {
      Host* src = topo.workers[i % config.num_workers];
      long_flows.push_back(MakeArena<BulkSender>(
          arena, *src, cc_factory(), socket_config, topo.aggregator->id(),
          kSinkPort));
      long_flows.back()->Start(kLongFlowBytes, /*close_when_done=*/false,
                               nullptr);
    }
  }

  // Round driver state.
  IncastResult result;
  result.protocol = config.protocol;
  result.num_flows = config.num_flows;
  result.per_flow_bytes = per_flow;

  int connected = 0;
  int completed_in_round = 0;
  Tick round_start = 0;
  Tick first_round_start = -1;
  ProbeSnapshot tracked_before;

  std::function<void()> start_round = [&] {
    round_start = sim.Now();
    if (first_round_start < 0) first_round_start = round_start;
    completed_in_round = 0;
    if (!probes.empty()) tracked_before = ProbeSnapshot::Of(*probes[0]);
    for (std::size_t ci = 0; ci < clients.size(); ++ci) {
      auto issue = [&, ci] {
      clients[ci]->Request(per_flow, [&] {
        if (++completed_in_round < config.num_flows) return;
        // Round complete.
        result.fct_ms.Add(ToMillis(sim.Now() - round_start));
        ++result.rounds_completed;
        if (!probes.empty()) {
          const auto after = ProbeSnapshot::Of(*probes[0]);
          if (after.at_min > tracked_before.at_min) {
            ++result.tracked_rounds_at_min_ece;
          }
          const std::uint64_t floss = after.floss - tracked_before.floss;
          const std::uint64_t lack = after.lack - tracked_before.lack;
          if (floss + lack > 0) ++result.tracked_rounds_with_timeout;
          result.tracked_floss += floss;
          result.tracked_lack += lack;
        }
        if (result.rounds_completed >=
            static_cast<std::uint64_t>(config.rounds)) {
          sim.Stop();
        } else {
          start_round();
        }
      });
      };
      if (config.request_stagger > 0) {
        sim.Schedule(static_cast<Tick>(ci) * config.request_stagger,
                     issue);
      } else {
        issue();
      }
    }
  };

  // Establish connections staggered by 100 us each (the benchmark sets
  // them up serially before the first request round).
  for (int i = 0; i < config.num_flows; ++i) {
    sim.Schedule(static_cast<Tick>(i) * 100 * kMicrosecond, [&, i] {
      clients[i]->Connect([&] {
        if (++connected == config.num_flows) start_round();
      });
    });
  }

  // Optional bottleneck-queue sampling (Figs 9 and 14).
  std::unique_ptr<TimeSeriesSampler> sampler;
  if (config.sample_queue) {
    sampler = std::make_unique<TimeSeriesSampler>(
        sim, config.queue_sample_period, [&topo] {
          return static_cast<double>(
              topo.bottleneck->queue().OccupancyBytes());
        });
    sampler->Start();
  }

  sim.RunUntil(config.time_limit);
  result.hit_time_limit =
      result.rounds_completed < static_cast<std::uint64_t>(config.rounds);
  if (result.hit_time_limit) {
    DCTCPP_WARN("incast %s N=%d hit time limit after %llu/%d rounds",
                ToString(config.protocol), config.num_flows,
                static_cast<unsigned long long>(result.rounds_completed),
                config.rounds);
  }

  // Aggregate metrics.
  const Tick elapsed =
      first_round_start >= 0 ? sim.Now() - first_round_start : 0;
  const Bytes response_bytes =
      per_flow * config.num_flows *
      static_cast<Bytes>(result.rounds_completed);
  result.goodput_mbps = GoodputMbps(response_bytes, elapsed);

  for (const auto& probe : probes) {
    result.cwnd_hist.Merge(probe->cwnd_histogram());
    result.timeouts += probe->timeouts();
    result.floss_timeouts += probe->floss_timeouts();
    result.lack_timeouts += probe->lack_timeouts();
    result.fast_retransmits += probe->fast_retransmits();
  }

  if (sampler) result.queue_samples = sampler->samples();

  for (const auto& lf : long_flows) {
    const Tick dur = sim.Now() - lf->started_at();
    result.bg_throughput_mbps.push_back(
        GoodputMbps(lf->acked_bytes(), dur));
  }

  std::vector<double> per_flow_bytes_received;
  per_flow_bytes_received.reserve(clients.size());
  for (const auto& client : clients) {
    per_flow_bytes_received.push_back(
        static_cast<double>(client->total_received()));
  }
  result.flow_fairness = JainFairnessIndex(per_flow_bytes_received);

  const auto& bstats = topo.bottleneck->queue().stats();
  result.bottleneck_drops = bstats.dropped;
  result.bottleneck_marks = bstats.marked;
  result.bottleneck_max_queue = bstats.max_occupancy;

  result.events = sim.events_executed();
  result.packets_forwarded = sim.packets_forwarded();
  result.sim_seconds = ToSeconds(sim.Now());

  // No CheckDrained here: Stop() fires the instant the final response byte
  // lands, while ACKs for it are legitimately still in flight. The ledger
  // totals are exported for the harness; the population must simply be
  // non-negative (CheckLedger enforces that on every retirement).
  result.invariant_violations = sim.invariants().violations();
  const auto& ledger = sim.invariants().ledger();
  result.packets_originated = ledger.originated;
  result.packets_dropped = ledger.dropped;
  result.packets_duplicated = ledger.duplicated;
  result.checksum_discards = ledger.checksum_discards;
  if (result.invariant_violations > 0) {
    DCTCPP_WARN("incast %s N=%d: %llu invariant violations (first: %s)",
                ToString(config.protocol), config.num_flows,
                static_cast<unsigned long long>(result.invariant_violations),
                sim.invariants().first_violation().c_str());
  }
  return result;
}

}  // namespace dctcpp
