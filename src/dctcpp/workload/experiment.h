// Parameter-sweep harness: runs many independent incast simulations
// (protocol x flow-count x repetition) across a thread pool and merges the
// per-repetition results into the per-point statistics the paper plots.
#pragma once

#include <vector>

#include "dctcpp/stats/quantile_sketch.h"
#include "dctcpp/stats/summary.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/workload/incast.h"

namespace dctcpp {

/// Aggregated metrics for one (protocol, N) sweep point.
struct IncastSweepPoint {
  Protocol protocol{};
  int num_flows = 0;

  SummaryStats goodput_mbps;  ///< one sample per repetition
  /// FCT distribution over all rounds of all repetitions. A bounded
  /// streaming sketch, not a sample vector: a 1000-rep sweep folds
  /// millions of rounds into a fixed-size bucket array per point.
  QuantileSketch fct_ms;
  Histogram cwnd_hist{1, 16};

  std::uint64_t rounds = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t floss_timeouts = 0;
  std::uint64_t lack_timeouts = 0;

  std::uint64_t tracked_rounds_at_min_ece = 0;
  std::uint64_t tracked_rounds_with_timeout = 0;
  std::uint64_t tracked_floss = 0;
  std::uint64_t tracked_lack = 0;

  /// Exact event/packet totals across the repetitions — the integers the
  /// determinism gates compare bitwise across thread-pool sizes.
  std::uint64_t events = 0;
  std::uint64_t packets_forwarded = 0;

  /// Invariant-checker totals across the repetitions (see
  /// util/invariants.h); harnesses assert invariant_violations == 0.
  std::uint64_t invariant_violations = 0;
  std::uint64_t packets_originated = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t checksum_discards = 0;

  bool hit_time_limit = false;

  /// Folds one repetition's result into this point.
  void Merge(const IncastResult& r);
};

/// Runs `reps` repetitions of `base` (seeds base.seed, base.seed+1, ...)
/// on `pool` and merges them. `base.protocol` / `base.num_flows` select
/// the point.
IncastSweepPoint RunIncastPoint(const IncastConfig& base, int reps,
                                ThreadPool& pool);

/// Full sweep: every protocol crossed with every flow count.
std::vector<IncastSweepPoint> RunIncastSweep(
    const IncastConfig& base, const std::vector<Protocol>& protocols,
    const std::vector<int>& flow_counts, int reps, ThreadPool& pool);

/// Inclusive range helper with stride, e.g. FlowCounts(10, 200, 10).
std::vector<int> FlowCounts(int from, int to, int step);

}  // namespace dctcpp
