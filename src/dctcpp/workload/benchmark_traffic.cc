#include "dctcpp/workload/benchmark_traffic.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/util/log.h"
#include "dctcpp/workload/apps.h"

namespace dctcpp {
namespace {

constexpr PortNum kWorkerPort = 5000;
constexpr PortNum kSinkPort = 6000;

/// Drives Poisson query arrivals. Each query requests
/// `query_response_bytes` from every worker over the aggregator's
/// persistent connections; sub-responses on one connection complete FIFO,
/// so per-query accounting rides on AggregatorClient's request queue.
class QueryDriver {
 public:
  QueryDriver(Simulator& sim, std::vector<AggregatorClient*> clients,
              const BenchmarkTrafficConfig& config,
              BenchmarkTrafficResult& result,
              std::function<void()> on_all_done)
      : sim_(sim),
        clients_(std::move(clients)),
        config_(config),
        result_(result),
        on_all_done_(std::move(on_all_done)) {}

  void Start() {
    if (config_.num_queries == 0) {
      done_ = true;
      if (on_all_done_) on_all_done_();
      return;
    }
    ScheduleNext();
  }

 private:
  void ScheduleNext() {
    if (issued_ >= config_.num_queries) return;
    const double wait_s =
        sim_.rng().Exponential(ToSeconds(config_.query_mean_interarrival));
    sim_.Schedule(static_cast<Tick>(wait_s * static_cast<double>(kSecond)),
                  [this] { Issue(); });
  }

  void Issue() {
    const int id = issued_++;
    const Tick started = sim_.Now();
    auto remaining = std::make_shared<int>(static_cast<int>(clients_.size()));
    for (AggregatorClient* client : clients_) {
      client->Request(config_.query_response_bytes,
                      [this, id, started, remaining] {
                        (void)id;
                        if (--*remaining > 0) return;
                        result_.query_fct_ms.Add(
                            ToMillis(sim_.Now() - started));
                        ++result_.queries_completed;
                        if (result_.queries_completed ==
                                static_cast<std::uint64_t>(
                                    config_.num_queries) &&
                            on_all_done_) {
                          done_ = true;
                          on_all_done_();
                        }
                      });
    }
    ScheduleNext();
  }

  Simulator& sim_;
  std::vector<AggregatorClient*> clients_;
  const BenchmarkTrafficConfig& config_;
  BenchmarkTrafficResult& result_;
  std::function<void()> on_all_done_;
  int issued_ = 0;
  bool done_ = false;
};

}  // namespace

BenchmarkTrafficResult RunBenchmarkTraffic(
    const BenchmarkTrafficConfig& config) {
  Simulator sim(config.seed);
  Network net(sim);
  TwoTierTopology topo =
      TwoTierTopology::Build(net, config.num_workers, config.link);

  TcpSocket::Config socket_config = config.socket;
  socket_config.rto.min_rto = config.min_rto;
  socket_config.rto.initial_rto =
      std::max(config.min_rto, 10 * kMillisecond);

  auto cc_factory = [&config] {
    return MakeCongestionOps(config.protocol, config.options);
  };

  BenchmarkTrafficResult result;
  result.protocol = config.protocol;

  // Worker-side query servers, with probes on the sender sockets.
  std::vector<std::unique_ptr<RecordingProbe>> probes;
  auto accept_hook = [&probes](TcpSocket& sk) {
    probes.push_back(std::make_unique<RecordingProbe>());
    sk.set_probe(probes.back().get());
  };
  std::vector<std::unique_ptr<WorkerServer>> servers;
  for (Host* worker : topo.workers) {
    WorkerServer::Config wc;
    wc.port = kWorkerPort;
    wc.request_size = config.request_size;
    wc.response_size = [&config] { return config.query_response_bytes; };
    wc.on_accept_hook = accept_hook;
    servers.push_back(std::make_unique<WorkerServer>(
        *worker, cc_factory, socket_config, std::move(wc)));
  }

  // The aggregator's persistent query connections: `query_fan_in` of
  // them, spread round-robin over the worker hosts (the multithreaded
  // partition/aggregate pattern of the incast benchmark).
  std::vector<std::unique_ptr<AggregatorClient>> clients;
  std::vector<AggregatorClient*> client_ptrs;
  for (int i = 0; i < config.query_fan_in; ++i) {
    Host* worker = topo.workers[static_cast<std::size_t>(
        i % static_cast<int>(topo.workers.size()))];
    clients.push_back(std::make_unique<AggregatorClient>(
        *topo.aggregator, cc_factory(), socket_config, worker->id(),
        kWorkerPort, config.request_size));
    client_ptrs.push_back(clients.back().get());
  }

  // Sinks everywhere for the background flows (any host can be a target).
  std::vector<Host*> all_hosts = topo.workers;
  all_hosts.push_back(topo.aggregator);
  std::vector<std::unique_ptr<SinkServer>> sinks;
  for (Host* h : all_hosts) {
    sinks.push_back(std::make_unique<SinkServer>(*h, kSinkPort, cc_factory,
                                                 socket_config));
  }

  FlowGenerator::Config fg;
  fg.flow_count = config.num_background_flows;
  fg.mean_interarrival = config.background_mean_interarrival;
  fg.sink_port = kSinkPort;
  FlowGenerator background(sim, all_hosts, cc_factory, socket_config, fg,
                           ProductionFlowSizeCdf());

  bool queries_done = false;
  bool background_done = false;
  auto maybe_stop = [&] {
    if (queries_done && background_done) sim.Stop();
  };

  QueryDriver queries(sim, client_ptrs, config, result, [&] {
    queries_done = true;
    maybe_stop();
  });

  // Connect the aggregator's persistent query connections first, then let
  // both traffic classes loose.
  int connected = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    sim.Schedule(static_cast<Tick>(i) * 100 * kMicrosecond, [&, i] {
      clients[i]->Connect([&] {
        if (++connected < static_cast<int>(clients.size())) return;
        queries.Start();
        background.Start([&] {
          background_done = true;
          maybe_stop();
        });
      });
    });
  }

  sim.RunUntil(config.time_limit);
  result.hit_time_limit = !(queries_done && background_done);
  if (result.hit_time_limit) {
    DCTCPP_WARN(
        "benchmark %s hit time limit: %llu/%d queries, %d/%d bg flows",
        ToString(config.protocol),
        static_cast<unsigned long long>(result.queries_completed),
        config.num_queries, background.flows_completed(),
        config.num_background_flows);
  }

  result.background_fct_ms = background.fct_ms();
  result.background_flows_completed =
      static_cast<std::uint64_t>(background.flows_completed());
  for (const auto& probe : probes) {
    result.sender_timeouts += probe->timeouts();
  }
  result.events = sim.events_executed();
  result.sim_seconds = ToSeconds(sim.Now());
  return result;
}

}  // namespace dctcpp
