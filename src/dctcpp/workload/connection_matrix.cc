#include "dctcpp/workload/connection_matrix.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "dctcpp/net/parallel.h"
#include "dctcpp/util/assert.h"
#include "dctcpp/util/log.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/workload/apps.h"

namespace dctcpp {

namespace {

constexpr PortNum kFabricPort = 7000;

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seeded random derangement of 0..n-1: Fisher-Yates, then any fixed
/// point swaps with its cyclic neighbor (which cannot create another).
std::vector<int> Derangement(int n, std::uint64_t seed) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  Rng rng(seed);
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.Next() % static_cast<std::uint64_t>(i + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
  }
  for (int i = 0; i < n; ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) {
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>((i + 1) % n)]);
    }
  }
  return perm;
}

}  // namespace

const char* ToString(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kPermutation: return "permutation";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kAllToAll: return "all_to_all";
    case TrafficPattern::kIncastRows: return "incast_rows";
  }
  return "?";
}

ConnectionMatrix ConnectionMatrix::Permutation(int hosts, Bytes bytes,
                                               std::uint64_t seed) {
  DCTCPP_ASSERT(hosts >= 2);
  ConnectionMatrix m;
  const std::vector<int> perm = Derangement(hosts, seed);
  m.flows.reserve(static_cast<std::size_t>(hosts));
  for (int i = 0; i < hosts; ++i) {
    m.flows.push_back({i, perm[static_cast<std::size_t>(i)], bytes});
  }
  return m;
}

ConnectionMatrix ConnectionMatrix::Hotspot(int hosts, int hotspots,
                                           double hot_fraction, Bytes bytes,
                                           std::uint64_t seed) {
  DCTCPP_ASSERT(hosts >= 2);
  DCTCPP_ASSERT(hotspots >= 1 && hotspots < hosts);
  DCTCPP_ASSERT(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  ConnectionMatrix m = Permutation(hosts, bytes, seed);
  const auto threshold = static_cast<std::uint64_t>(
      hot_fraction * 1e6);
  for (int i = hotspots; i < hosts; ++i) {
    const std::uint64_t h = Mix64(seed ^ 0x686f74ull ^
                                  static_cast<std::uint64_t>(i));
    if (h % 1000000 >= threshold) continue;
    const auto target = static_cast<int>(
        Mix64(h) % static_cast<std::uint64_t>(hotspots));
    m.flows[static_cast<std::size_t>(i)].dst = target;
  }
  return m;
}

ConnectionMatrix ConnectionMatrix::AllToAll(int hosts, Bytes bytes) {
  DCTCPP_ASSERT(hosts >= 2);
  ConnectionMatrix m;
  m.flows.reserve(static_cast<std::size_t>(hosts) *
                  static_cast<std::size_t>(hosts - 1));
  for (int s = 0; s < hosts; ++s) {
    for (int d = 0; d < hosts; ++d) {
      if (s != d) m.flows.push_back({s, d, bytes});
    }
  }
  return m;
}

ConnectionMatrix ConnectionMatrix::IncastRows(int hosts, int row_size,
                                              int fan_in, Bytes bytes) {
  DCTCPP_ASSERT(row_size >= 2 && fan_in >= 1 && fan_in < row_size);
  ConnectionMatrix m;
  for (int base = 0; base + row_size <= hosts; base += row_size) {
    for (int s = 1; s <= fan_in; ++s) {
      m.flows.push_back({base + s, base, bytes});
    }
  }
  DCTCPP_ASSERT(!m.flows.empty());
  return m;
}

std::vector<FlowDemand> ConnectionMatrix::Demand() const {
  std::vector<FlowDemand> demand;
  demand.reserve(flows.size());
  for (const MatrixFlow& f : flows) {
    demand.push_back({f.src, f.dst, static_cast<double>(f.bytes)});
  }
  return demand;
}

FabricRunResult RunFabricWorkload(const FabricRunConfig& config) {
  DCTCPP_ASSERT(config.shards >= 1);
  DCTCPP_ASSERT(config.bytes_per_flow > 0);

  // Plan the fabric (pure arithmetic; no Simulator yet).
  std::unique_ptr<Fabric> fabric;
  if (config.topo == FabricRunConfig::Topo::kFatTree) {
    FatTreeConfig ft = config.fat_tree;
    ft.link = config.link;
    fabric = std::make_unique<FatTreeFabric>(ft);
  } else {
    DragonflyConfig df = config.dragonfly;
    df.local_link = config.link;
    // Global links keep their configured delay unless unset (equal to
    // the default LinkConfig), in which case they inherit the local one.
    if (df.global_link.propagation_delay ==
        LinkConfig().propagation_delay) {
      df.global_link = config.link;
    }
    fabric = std::make_unique<DragonflyFabric>(df);
  }
  const int hosts = fabric->num_hosts();

  ConnectionMatrix matrix;
  switch (config.pattern) {
    case TrafficPattern::kPermutation:
      matrix = ConnectionMatrix::Permutation(hosts, config.bytes_per_flow,
                                             config.seed);
      break;
    case TrafficPattern::kHotspot:
      matrix = ConnectionMatrix::Hotspot(hosts, config.hotspots,
                                         config.hot_fraction,
                                         config.bytes_per_flow, config.seed);
      break;
    case TrafficPattern::kAllToAll:
      matrix = ConnectionMatrix::AllToAll(hosts, config.bytes_per_flow);
      break;
    case TrafficPattern::kIncastRows:
      matrix = ConnectionMatrix::IncastRows(hosts, config.row_size,
                                            config.fan_in,
                                            config.bytes_per_flow);
      break;
  }
  const int flows = static_cast<int>(matrix.flows.size());

  const std::vector<int> shard_of = ShardPartitioner::Assign(
      *fabric, config.shards, config.strategy, matrix.Demand(), config.seed);

  ParallelSimulation psim(config.seed, config.shards);
  psim.set_lookahead_mode(config.fixed_window_lookahead
                              ? LookaheadMode::kFixedWindow
                              : LookaheadMode::kChannelClock);
  Network net(psim);
  fabric->Build(net, shard_of);

  FabricRunResult result;
  result.hosts = hosts;
  result.switches = fabric->num_switches();
  result.flows = flows;
  result.route_table_bytes = fabric->RouteTableBytes();
  result.route_bytes_per_node =
      static_cast<double>(result.route_table_bytes) / fabric->num_nodes();

  if (config.prune_channels && config.shards > 1 &&
      fabric->SupportsChannelPruning()) {
    const auto s = static_cast<std::size_t>(config.shards);
    std::vector<std::uint8_t> allowed(s * s, 0);
    for (const MatrixFlow& f : matrix.flows) {
      // Both directions: data/SYN forward, ACK/SYN-ACK/FIN-ACK reverse.
      fabric->MarkShardPairs(f.src, f.dst, shard_of, config.shards,
                             allowed);
      fabric->MarkShardPairs(f.dst, f.src, shard_of, config.shards,
                             allowed);
    }
    for (std::size_t i = 0; i < s; ++i) allowed[i * s + i] = 1;
    for (std::size_t i = 0; i < s * s; ++i) {
      if (allowed[i] == 0) ++result.pruned_pairs;
    }
    psim.RestrictChannels(std::move(allowed));
    result.channels_pruned = true;
  }

  TcpSocket::Config socket_config = config.socket;
  socket_config.rto.min_rto = config.min_rto;
  socket_config.rto.initial_rto =
      std::max(config.min_rto, 10 * kMillisecond);
  auto cc_factory = [&config] {
    return MakeCongestionOps(config.protocol, config.options);
  };

  // One sink per receiving host.
  std::vector<bool> receives(static_cast<std::size_t>(hosts), false);
  for (const MatrixFlow& f : matrix.flows) {
    receives[static_cast<std::size_t>(f.dst)] = true;
  }
  std::vector<std::unique_ptr<SinkServer>> sinks;
  for (int h = 0; h < hosts; ++h) {
    if (receives[static_cast<std::size_t>(h)]) {
      sinks.push_back(std::make_unique<SinkServer>(
          fabric->host(h), kFabricPort, cc_factory, socket_config));
    }
  }

  // Senders + per-flow completion slots. Slots are written by the flow's
  // own shard thread (disjoint indices: race-free); the countdown is the
  // only cross-shard word, and the Stop it triggers is quiesced into a
  // partition-invariant executed set by the coordinator.
  struct FlowSlot {
    Tick start = -1;
    Tick done = -1;
  };
  std::vector<FlowSlot> slots(static_cast<std::size_t>(flows));
  std::vector<ArenaPtr<BulkSender>> senders;
  senders.reserve(static_cast<std::size_t>(flows));
  std::atomic<int> remaining{flows};
  for (int i = 0; i < flows; ++i) {
    const MatrixFlow& f = matrix.flows[static_cast<std::size_t>(i)];
    Host& src = fabric->host(f.src);
    senders.push_back(MakeArena<BulkSender>(src.sim().arena(), src,
                                            cc_factory(), socket_config,
                                            f.dst, kFabricPort));
    const Tick start =
        config.stagger_slots > 0
            ? static_cast<Tick>(i % config.stagger_slots) *
                  config.start_stagger
            : 0;
    slots[static_cast<std::size_t>(i)].start = start;
    src.sim().Schedule(start, [&senders, &slots, &remaining, i, f] {
      BulkSender& sender = *senders[static_cast<std::size_t>(i)];
      sender.Start(f.bytes, /*close_when_done=*/true,
                   [&sender, &slots, &remaining, i] {
                     slots[static_cast<std::size_t>(i)].done =
                         sender.socket().sim().Now();
                     if (remaining.fetch_sub(1,
                                             std::memory_order_acq_rel) ==
                         1) {
                       sender.socket().sim().Stop();
                     }
                   });
    });
  }

  psim.RunUntil(config.time_limit, config.shard_pool);

  Tick makespan_end = 0;
  Tick first_start = kTickMax;
  for (int i = 0; i < flows; ++i) {
    const FlowSlot& slot = slots[static_cast<std::size_t>(i)];
    first_start = std::min(first_start, slot.start);
    if (slot.done >= 0) {
      ++result.flows_completed;
      result.fct_ms.Add(ToMillis(slot.done - slot.start));
      makespan_end = std::max(makespan_end, slot.done);
    }
  }
  result.hit_time_limit = result.flows_completed < flows;
  if (result.hit_time_limit) {
    DCTCPP_WARN("fabric %s %s: %d/%d flows at time limit",
                fabric->kind(), ToString(config.pattern),
                result.flows_completed, flows);
  }
  for (const auto& sink : sinks) {
    result.bytes_delivered += sink->total_received();
  }
  const Tick elapsed =
      makespan_end > first_start ? makespan_end - first_start : 0;
  result.goodput_mbps = GoodputMbps(result.bytes_delivered, elapsed);
  result.sim_seconds =
      ToSeconds(makespan_end > 0 ? makespan_end : config.time_limit);

  result.events = psim.events_executed();
  result.packets_forwarded = psim.packets_forwarded();
  for (int s = 0; s < psim.shard_count(); ++s) {
    result.shard_events.push_back(psim.shard_events(s));
  }
  result.windows_run = psim.windows_run();
  result.gang_windows = psim.gang_windows();
  result.sync_rounds = psim.sync_rounds();
  result.calendar_deliveries = psim.calendar_deliveries();
  result.cross_shard_handoffs = psim.cross_shard_handoffs();
  result.cross_shard_fraction =
      result.calendar_deliveries > 0
          ? static_cast<double>(result.cross_shard_handoffs) /
                static_cast<double>(result.calendar_deliveries)
          : 0.0;

  result.invariant_violations = psim.invariant_violations();
  const NetworkInvariants::Ledger ledger = psim.MergedLedger();
  result.packets_originated = ledger.originated;
  result.packets_dropped = ledger.dropped;
  result.checksum_discards = ledger.checksum_discards;
  if (result.invariant_violations > 0) {
    DCTCPP_WARN("fabric %s %s: %llu invariant violations (first: %s)",
                fabric->kind(), ToString(config.pattern),
                static_cast<unsigned long long>(result.invariant_violations),
                psim.first_violation().c_str());
  }
  return result;
}

}  // namespace dctcpp
