// The paper's incast benchmark (Secs. III, VI-B, VI-C):
// an aggregator requests `total_bytes / N` from each of N concurrent flows
// spread over the worker hosts of the 2-tier topology; when all responses
// arrive it immediately issues the next round. Optionally mixes in
// persistent background long flows through the same bottleneck (Fig 10)
// and samples the bottleneck queue every 100 us (Figs 9/14).
#pragma once

#include <cstdint>
#include <vector>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/stats/histogram.h"
#include "dctcpp/stats/summary.h"
#include "dctcpp/stats/time_series.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {

struct IncastConfig {
  Protocol protocol = Protocol::kDctcp;
  /// N, the number of concurrent flows (multiple flows share each worker
  /// host, as in the paper's multithreaded benchmark).
  int num_flows = 10;
  int num_workers = 9;
  /// Total bytes per round, split evenly over the flows...
  Bytes total_bytes = 1 * kMiB;
  /// ...unless this is set (> 0): fixed bytes per flow per round (Fig 14).
  Bytes per_flow_bytes = 0;
  int rounds = 50;
  Bytes request_size = 64;
  /// Admission-control analogue (Sec. VII): the aggregator staggers the
  /// requests of each round by this interval per flow instead of issuing
  /// them simultaneously, spreading the fan-in burst at its source.
  /// 0 = the paper's default (all requests at once).
  Tick request_stagger = 0;
  LinkConfig link;  ///< 1 Gbps, 10 us, 128 KB buffer, K = 32 KB by default
  Tick min_rto = 200 * kMillisecond;
  std::uint64_t seed = 1;
  ProtocolOptions options;
  /// Persistent long flows from workers to the aggregator (Fig 10 uses 2).
  int background_flows = 0;
  bool sample_queue = false;
  Tick queue_sample_period = 100 * kMicrosecond;
  Tick time_limit = 300 * kSecond;
  /// Socket knobs shared by every endpoint; the RTO floor is overwritten
  /// from `min_rto`.
  TcpSocket::Config socket;
  /// > 0 runs the conservative-parallel engine (net/parallel.h) with this
  /// many shards. Results are bit-identical for every shard count; the
  /// sharded path does not (yet) support background flows or queue
  /// sampling. 0 = the classic single-Simulator engine.
  int shards = 0;
  /// Worker threads for multi-shard windows (nullptr: run shards inline
  /// on the calling thread — still deterministic, just not parallel).
  ThreadPool* shard_pool = nullptr;
  /// Sharded runs only: use the PR-5 fixed-W lookahead (one global
  /// window of the topology-wide min link delay per barrier) instead of
  /// adaptive channel clocks. Results are bit-identical either way —
  /// tests and benches run both as a differential oracle; the fixed mode
  /// just pays far more barriers.
  bool fixed_window_lookahead = false;
};

struct IncastResult {
  Protocol protocol{};
  int num_flows = 0;

  /// Per-round flow completion times, milliseconds.
  Percentile fct_ms;
  /// Application goodput over the benchmark (response bytes / wall time
  /// from the first request to the last response).
  double goodput_mbps = 0.0;

  /// Per-ACK cwnd samples across all worker (sender) sockets (Fig 2).
  Histogram cwnd_hist{1, 16};

  std::uint64_t rounds_completed = 0;

  // All-flow totals.
  std::uint64_t timeouts = 0;
  std::uint64_t floss_timeouts = 0;
  std::uint64_t lack_timeouts = 0;
  std::uint64_t fast_retransmits = 0;

  // Per-round statistics of the tracked ("randomly selected") flow, as in
  // Table I: in how many rounds it saw cwnd pinned at the minimum while
  // ECE kept arriving, and in how many it suffered a timeout.
  std::uint64_t tracked_rounds_at_min_ece = 0;
  std::uint64_t tracked_rounds_with_timeout = 0;
  std::uint64_t tracked_floss = 0;
  std::uint64_t tracked_lack = 0;

  /// Bottleneck-queue samples (present when sample_queue).
  std::vector<TimeSeriesSampler::Sample> queue_samples;

  /// Average throughput of each background long flow, Mbps.
  std::vector<double> bg_throughput_mbps;

  // Bottleneck-port statistics.
  std::uint64_t bottleneck_drops = 0;
  std::uint64_t bottleneck_marks = 0;
  Bytes bottleneck_max_queue = 0;

  /// Jain fairness index over the per-flow byte totals delivered to the
  /// aggregator (1 = all concurrent flows progressed equally).
  double flow_fairness = 0.0;

  std::uint64_t events = 0;
  /// Sharded runs only: events executed per shard. max/total bounds the
  /// achievable parallel speedup; empty on the legacy engine.
  std::vector<std::uint64_t> shard_events;
  // Sharded runs only: coordinator window-loop statistics. These depend
  // on the shard count and lookahead mode by design (adaptive mode exists
  // to shrink windows_run), so they are deliberately NOT part of the
  // bit-identical surface that tests/benches fingerprint.
  std::uint64_t windows_run = 0;         ///< published windows / relay segments
  std::uint64_t gang_windows = 0;        ///< windows fanned over the pool
  std::uint64_t sync_rounds = 0;         ///< causality barriers (sub-rounds)
  std::uint64_t cross_shard_handoffs = 0;
  /// Packets accepted by any egress port over the run (datapath volume).
  std::uint64_t packets_forwarded = 0;
  double sim_seconds = 0.0;
  bool hit_time_limit = false;

  // Always-on invariant checking (util/invariants.h): violation count and
  // the global packet ledger at the end of the run. Soaks and tests assert
  // invariant_violations == 0.
  std::uint64_t invariant_violations = 0;
  std::uint64_t packets_originated = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t checksum_discards = 0;

  /// Bytes each round delivers (for reporting).
  Bytes per_flow_bytes = 0;
};

/// Runs one incast simulation to completion and returns its metrics.
IncastResult RunIncast(const IncastConfig& config);

}  // namespace dctcpp
