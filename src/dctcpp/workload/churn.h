// Churning open-loop workload: an M/G/inf flow population over a fat-tree
// fabric. Every host runs an independent Poisson arrival process (rate
// lambda/H from a per-host RNG stream, so the draw sequence is invariant
// to the shard count); each arrival opens a TCP connection to a uniformly
// random peer, queues `bytes_per_flow`, and closes after an Exp(L)
// lifetime fired by a per-slot departure timer. Steady state sustains
// ~`target_live_flows` (= lambda * L) concurrent connections, churning
// continuously -- the regime of the paper's massive-concurrent-flow
// experiments, sustained here for soak testing (up to 10^6 live flows).
//
// Design constraints the implementation is built around:
//
//  - Bounded memory. Sockets live in fixed per-host pools (placement-new
//    into preallocated slots; never heap-allocated per flow), so the
//    bytes-per-flow footprint is measurable and gated (`MeasureFootprint`).
//    A full pool drops the arrival (counted) rather than growing.
//
//  - Deterministic recycling. A closed socket cannot be destroyed from
//    inside its own completion callback, so slots retire to a list that
//    is drained at the host's *next churn event* (arrival or inbound SYN)
//    -- a point in simulated time, never wall time, so runs are
//    bit-reproducible across thread pools and checkpoint cycles.
//
//  - Checkpointable. ChurnWorkload implements CheckpointHooks: per shard
//    it serializes every host's arrival-event arming, RNG stream, slot
//    pools (socket state + departure timers), and free/retired-list
//    *order* (allocation order is program-visible). `SaveCheckpoint`
//    captures the whole world -- workload plus engine via
//    ParallelSimulation::SaveCheckpoint -- into one versioned blob, and
//    `Fingerprint` hashes that blob: two worlds fingerprint equal iff
//    their serialized states are bit-identical.
//
// Checkpoint/restore protocol (mirrors sim/checkpoint.h): save only at a
// `RunTo` return; restore onto a freshly constructed, *not started*
// ChurnWorkload built from the same config. Comparing a restored run
// against a reference requires the reference to stop at the same
// RunTo boundaries (window sequence is part of coordinator state).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/fabric.h"
#include "dctcpp/net/parallel.h"
#include "dctcpp/net/partition.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/sim/pinned_event.h"
#include "dctcpp/sim/timer.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

/// Well-known port every churn server listens on.
inline constexpr PortNum kChurnPort = 9000;

/// Stream-id base for per-host churn RNG streams (see Simulator::StreamRng;
/// disjoint from socket streams at 1<<40 and RED streams at 1<<41).
inline constexpr std::uint64_t kChurnStreamBase = 1ULL << 42;

struct ChurnConfig {
  // --- fabric ----------------------------------------------------------
  FatTreeConfig fat_tree{};  ///< `link` below overrides fat_tree.link
  LinkConfig link;           ///< carries the impairment profile, if any
  int shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kPod;
  bool fixed_window_lookahead = false;

  // --- transport -------------------------------------------------------
  Protocol protocol = Protocol::kDctcpPlus;
  ProtocolOptions options;
  TcpSocket::Config socket;
  Tick min_rto = 10 * kMillisecond;

  // --- churn process ---------------------------------------------------
  std::uint64_t seed = 1;
  /// Steady-state live-flow target (= arrival rate x mean lifetime).
  std::int64_t target_live_flows = 1000;
  /// Mean Exp() flow lifetime L; the fabric-wide arrival rate is derived
  /// as target_live_flows / L.
  Tick mean_lifetime = 50 * kMillisecond;
  Bytes bytes_per_flow = 8 * kKiB;
  /// Per-host socket-pool capacity (clients and servers each). 0 derives
  /// mean-per-host + 5 sigma + 16 headroom.
  int max_live_per_host = 0;
  /// Ramp: the initial target_live_flows arrivals are seeded at a
  /// compressed rate so the population reaches steady state in ~prewarm.
  Tick prewarm = 20 * kMillisecond;
};

/// Aggregated (barrier-time) counters; all derived from per-host state.
struct ChurnStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;   ///< client socket fully closed
  std::uint64_t arrivals_dropped = 0;  ///< client pool exhausted
  std::uint64_t accepts_dropped = 0;   ///< server pool exhausted (SYN ignored)
  std::int64_t live_flows = 0;         ///< currently open client sockets
  std::int64_t peak_live = 0;          ///< max live_flows over RunTo barriers
  Bytes bytes_received = 0;            ///< payload delivered to servers
  std::uint64_t violations = 0;        ///< NetworkInvariants + merge checks
  std::uint64_t events_executed = 0;
  std::uint64_t packets_forwarded = 0;
};

/// Pool + engine memory attributable to sustaining the flow population.
struct ChurnFootprint {
  std::size_t pool_bytes = 0;       ///< slot pools + free/retired lists
  std::size_t scheduler_bytes = 0;  ///< timer-wheel node pools
  std::size_t arena_bytes = 0;      ///< per-shard arena reservations
  std::int64_t peak_live = 0;
  double bytes_per_flow = 0.0;  ///< total / max(1, peak_live)
};

/// Grants the churn workload access to TcpSocket's passive-open entry
/// (AcceptFrom) without routing accepted sockets through the arena-owning
/// TcpListener: churn servers are placement-new'd into pooled slots.
class ChurnListener {
 public:
  static void Accept(TcpSocket& socket, const Packet& syn);
};

class ChurnWorkload final : public CheckpointHooks {
 public:
  explicit ChurnWorkload(const ChurnConfig& config);
  ~ChurnWorkload() override;

  ChurnWorkload(const ChurnWorkload&) = delete;
  ChurnWorkload& operator=(const ChurnWorkload&) = delete;

  /// Seeds the initial flow ramp and arms every host's arrival process.
  /// Call exactly once -- or not at all on a world about to be restored.
  void Start();

  /// Runs the fabric to `deadline` (a checkpoint barrier on return) and
  /// refreshes barrier-sampled stats (live peak).
  void RunTo(Tick deadline, ThreadPool* pool = nullptr);

  /// Whole-world snapshot: config audit + workload + engine. Only valid
  /// immediately after a RunTo return (or before Start).
  std::vector<std::uint8_t> SaveCheckpoint() const;

  /// Restores a SaveCheckpoint blob onto this freshly constructed,
  /// never-started world. The config must match the saving run's.
  void RestoreCheckpoint(const std::vector<std::uint8_t>& blob);

  /// FNV-1a over the SaveCheckpoint blob: bit-identical state <=> equal.
  std::uint64_t Fingerprint() const;

  ChurnStats Stats() const;
  ChurnFootprint MeasureFootprint();
  std::int64_t live_flows() const;

  int hosts() const { return fabric_->num_hosts(); }
  ParallelSimulation& psim() { return *psim_; }
  const ChurnConfig& config() const { return config_; }

  // CheckpointHooks (called per shard by Simulator::SaveCheckpoint).
  void SaveWorkload(CheckpointWriter& w, int shard) const override;
  void RestoreWorkload(CheckpointReader& r, int shard) override;

 private:
  struct HostChurn;

  struct ClientSlot {
    ClientSlot(ChurnWorkload* w, std::uint32_t host, std::uint32_t idx,
               Simulator& sim)
        : departure(sim, [w, host, idx] { w->OnDeparture(host, idx); }) {}
    ~ClientSlot() {
      if (constructed) socket()->~TcpSocket();
    }
    ClientSlot(const ClientSlot&) = delete;
    ClientSlot& operator=(const ClientSlot&) = delete;

    TcpSocket* socket() { return reinterpret_cast<TcpSocket*>(storage); }
    const TcpSocket* socket() const {
      return reinterpret_cast<const TcpSocket*>(storage);
    }

    alignas(TcpSocket) unsigned char storage[sizeof(TcpSocket)];
    Timer departure;  ///< fires the Exp(L) lifetime -> Close()
    bool constructed = false;
  };

  struct ServerSlot {
    ServerSlot() = default;
    ~ServerSlot() {
      if (constructed) socket()->~TcpSocket();
    }
    ServerSlot(const ServerSlot&) = delete;
    ServerSlot& operator=(const ServerSlot&) = delete;

    TcpSocket* socket() { return reinterpret_cast<TcpSocket*>(storage); }
    const TcpSocket* socket() const {
      return reinterpret_cast<const TcpSocket*>(storage);
    }

    alignas(TcpSocket) unsigned char storage[sizeof(TcpSocket)];
    bool constructed = false;
  };

  /// All churn state for one host; touched only by that host's shard.
  struct HostChurn {
    HostChurn(ChurnWorkload* w, std::uint32_t host_index, Host& h);

    ChurnWorkload* owner;
    std::uint32_t index;
    Host* host;
    Rng rng;              ///< per-host stream: dst, lifetime, inter-arrival
    PinnedEvent arrival;  ///< next Poisson arrival on this host

    // Slots live in deques: constructed once in the ctor (fixed capacity),
    // stable addresses, no per-flow allocation.
    std::deque<ClientSlot> client;
    std::deque<ServerSlot> server;
    // Free lists are LIFO stacks; retired lists hold closed sockets whose
    // destruction is deferred to the next churn event on this host. Both
    // orders are program-visible, so both are checkpointed verbatim.
    std::vector<std::uint32_t> client_free;
    std::vector<std::uint32_t> client_retired;
    std::vector<std::uint32_t> server_free;
    std::vector<std::uint32_t> server_retired;

    int seed_remaining = 0;  ///< ramp arrivals left at the compressed rate
    double seed_mean = 0.0;  ///< ramp inter-arrival mean (ticks)
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t accept_dropped = 0;
    Bytes bytes_received = 0;
    std::int64_t live_clients = 0;
    std::int64_t live_servers = 0;
  };

  // Churn machinery (all run on the owning host's shard).
  void OnArrival(std::uint32_t h);
  void OnDeparture(std::uint32_t h, std::uint32_t idx);
  void OnListenPacket(std::uint32_t h, const Packet& pkt);
  void RetireClient(std::uint32_t h, std::uint32_t idx);
  void RetireServer(std::uint32_t h, std::uint32_t idx);
  void DrainRetired(HostChurn& hc);
  void AttachServerCallbacks(TcpSocket& s, std::uint32_t h,
                             std::uint32_t idx);
  double SteadyMean() const;  ///< steady-state inter-arrival mean (ticks)
  std::unique_ptr<CongestionOps> MakeCc() const;

  ChurnConfig config_;
  TcpSocket::Config socket_config_;
  std::unique_ptr<FatTreeFabric> fabric_;
  std::unique_ptr<ParallelSimulation> psim_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<HostChurn>> hosts_;
  int pool_capacity_ = 0;
  bool started_ = false;
  std::int64_t peak_live_ = 0;  ///< sampled at RunTo barriers only
};

}  // namespace dctcpp
