#include "dctcpp/workload/deadline_incast.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "dctcpp/core/d2tcp.h"
#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/log.h"
#include "dctcpp/workload/apps.h"

namespace dctcpp {
namespace {

constexpr PortNum kWorkerPort = 5000;

}  // namespace

DeadlineIncastResult RunDeadlineIncast(const DeadlineIncastConfig& config) {
  DCTCPP_ASSERT(config.num_flows >= 1);
  DCTCPP_ASSERT(config.deadline > 0);

  Simulator sim(config.seed);
  Network net(sim);
  TwoTierTopology topo =
      TwoTierTopology::Build(net, config.num_workers, config.link);

  TcpSocket::Config socket_config = config.socket;
  socket_config.rto.min_rto = config.min_rto;
  socket_config.rto.initial_rto =
      std::max(config.min_rto, 10 * kMillisecond);

  auto cc_factory = [&config] {
    return MakeCongestionOps(config.protocol, config.options);
  };

  // Collect the worker-side (sender) sockets in accept order; the driver
  // tags each with its per-response deadline at request-issue time (a
  // no-op for protocols without a deadline gate).
  std::vector<TcpSocket*> sender_sockets;
  std::vector<std::unique_ptr<WorkerServer>> servers;
  for (int w = 0; w < config.num_workers; ++w) {
    WorkerServer::Config wc;
    wc.port = kWorkerPort;
    wc.request_size = config.request_size;
    wc.response_size = [&config] { return config.per_flow_bytes; };
    wc.on_accept_hook = [&sender_sockets](TcpSocket& sk) {
      sender_sockets.push_back(&sk);
    };
    servers.push_back(std::make_unique<WorkerServer>(
        *topo.workers[w], cc_factory, socket_config, std::move(wc)));
  }

  std::vector<std::unique_ptr<AggregatorClient>> clients;
  for (int i = 0; i < config.num_flows; ++i) {
    Host* worker = topo.workers[i % config.num_workers];
    clients.push_back(std::make_unique<AggregatorClient>(
        *topo.aggregator, cc_factory(), socket_config, worker->id(),
        kWorkerPort, config.request_size));
  }

  DeadlineIncastResult result;
  result.protocol = config.protocol;
  result.num_flows = config.num_flows;

  int connected = 0;
  int completed_in_round = 0;
  std::function<void()> start_round = [&] {
    completed_in_round = 0;
    const Tick issued_at = sim.Now();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      // Draw this response's deadline and tag the sender side with it
      // (when the protocol has a deadline gate).
      Tick deadline = config.deadline;
      if (config.deadline_spread > 0.0) {
        const double f = sim.rng().UniformDouble(
            1.0 - config.deadline_spread, 1.0 + config.deadline_spread);
        deadline = static_cast<Tick>(static_cast<double>(deadline) * f);
      }
      if (i < sender_sockets.size()) {
        SetFlowDeadline(*sender_sockets[i], issued_at + deadline);
      }
      clients[i]->Request(config.per_flow_bytes, [&, issued_at, deadline] {
        const Tick fct = sim.Now() - issued_at;
        result.fct_ms.Add(ToMillis(fct));
        ++result.responses;
        if (fct <= deadline) ++result.deadlines_met;
        if (++completed_in_round < config.num_flows) return;
        ++result.rounds_completed;
        if (result.rounds_completed >=
            static_cast<std::uint64_t>(config.rounds)) {
          sim.Stop();
        } else {
          start_round();
        }
      });
    }
  };

  for (int i = 0; i < config.num_flows; ++i) {
    sim.Schedule(static_cast<Tick>(i) * 100 * kMicrosecond, [&, i] {
      clients[i]->Connect([&] {
        if (++connected == config.num_flows) start_round();
      });
    });
  }

  sim.RunUntil(config.time_limit);
  result.hit_time_limit =
      result.rounds_completed < static_cast<std::uint64_t>(config.rounds);
  if (result.hit_time_limit) {
    DCTCPP_WARN("deadline incast %s N=%d hit time limit (%llu rounds)",
                ToString(config.protocol), config.num_flows,
                static_cast<unsigned long long>(result.rounds_completed));
  }
  result.sim_seconds = ToSeconds(sim.Now());
  return result;
}

}  // namespace dctcpp
