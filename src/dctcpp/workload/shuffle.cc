#include "dctcpp/workload/shuffle.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "dctcpp/net/topology.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/tcp/probe.h"
#include "dctcpp/util/log.h"
#include "dctcpp/workload/apps.h"

namespace dctcpp {
namespace {

constexpr PortNum kReducerPort = 6200;

}  // namespace

ShuffleResult RunShuffle(const ShuffleConfig& config) {
  DCTCPP_ASSERT(config.mappers >= 1 && config.reducers >= 1);
  DCTCPP_ASSERT(config.flows_per_pair >= 1);

  Simulator sim(config.seed);
  Network net(sim);
  // Hosts come from the standard tree; the aggregator slot is unused.
  TwoTierTopology topo = TwoTierTopology::Build(
      net, config.mappers + config.reducers, config.link);
  std::vector<Host*> mappers(topo.workers.begin(),
                             topo.workers.begin() + config.mappers);
  std::vector<Host*> reducers(topo.workers.begin() + config.mappers,
                              topo.workers.end());

  TcpSocket::Config socket_config = config.socket;
  socket_config.rto.min_rto = config.min_rto;
  socket_config.rto.initial_rto =
      std::max(config.min_rto, 10 * kMillisecond);

  auto cc_factory = [&config] {
    return MakeCongestionOps(config.protocol, config.options);
  };

  std::vector<std::unique_ptr<SinkServer>> sinks;
  for (Host* r : reducers) {
    sinks.push_back(std::make_unique<SinkServer>(*r, kReducerPort,
                                                 cc_factory,
                                                 socket_config));
  }

  ShuffleResult result;
  result.protocol = config.protocol;
  result.flows =
      config.mappers * config.reducers * config.flows_per_pair;
  const Bytes per_flow = std::max<Bytes>(
      1, config.bytes_per_pair / config.flows_per_pair);

  std::vector<std::unique_ptr<RecordingProbe>> probes;
  std::vector<std::unique_ptr<BulkSender>> flows;
  std::vector<Tick> flow_fct;
  int done = 0;
  Tick started_at = 0;

  // All transfers launch together (staggered by microseconds to model the
  // map tasks finishing near-simultaneously).
  sim.Schedule(0, [&] {
    started_at = sim.Now();
    int idx = 0;
    for (Host* m : mappers) {
      for (Host* r : reducers) {
        for (int f = 0; f < config.flows_per_pair; ++f, ++idx) {
          flows.push_back(std::make_unique<BulkSender>(
              *m, cc_factory(), socket_config, r->id(), kReducerPort));
          probes.push_back(std::make_unique<RecordingProbe>());
          flows.back()->socket().set_probe(probes.back().get());
          BulkSender* flow = flows.back().get();
          sim.Schedule(static_cast<Tick>(idx) * 10 * kMicrosecond,
                       [&, flow] {
                         flow->Start(per_flow, /*close_when_done=*/false,
                                     [&, flow] {
                                       flow_fct.push_back(
                                           sim.Now() - flow->started_at());
                                       if (++done == result.flows) {
                                         sim.Stop();
                                       }
                                     });
                       });
        }
      }
    }
  });

  sim.RunUntil(config.time_limit);
  result.hit_time_limit = done < result.flows;
  if (result.hit_time_limit) {
    DCTCPP_WARN("shuffle %s (%d flows) hit time limit with %d done",
                ToString(config.protocol), result.flows, done);
  }

  result.completion_time = sim.Now() - started_at;
  const Bytes total =
      per_flow * static_cast<Bytes>(flow_fct.size());
  result.goodput_mbps = GoodputMbps(total, result.completion_time);
  std::vector<double> fct_seconds;
  for (Tick fct : flow_fct) {
    result.flow_fct_ms.Add(ToMillis(fct));
    fct_seconds.push_back(ToSeconds(fct));
  }
  result.completion_fairness = JainFairnessIndex(fct_seconds);
  for (const auto& probe : probes) result.timeouts += probe->timeouts();
  return result;
}

}  // namespace dctcpp
