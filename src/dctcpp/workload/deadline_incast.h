// Deadline-tagged incast: every response must arrive within a per-request
// deadline, the workload D2TCP targets (and the setting where the paper's
// Sec. VII envisions combining its mechanism with deadline-aware
// protocols as D2TCP+).
#pragma once

#include <cstdint>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/link.h"
#include "dctcpp/stats/summary.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {

struct DeadlineIncastConfig {
  Protocol protocol = Protocol::kD2tcp;
  int num_flows = 40;
  int num_workers = 9;
  /// Short, deadline-bound responses (D2TCP's regime).
  Bytes per_flow_bytes = 20 * 1024;
  /// Per-response deadline measured from request issue.
  Tick deadline = 30 * kMillisecond;
  /// Heterogeneity: each response's deadline is drawn uniformly from
  /// [deadline*(1-spread), deadline*(1+spread)]. 0 = uniform deadlines.
  /// Deadline-aware protocols only differentiate themselves when
  /// urgencies differ across concurrent flows.
  double deadline_spread = 0.0;
  int rounds = 50;
  Bytes request_size = 64;
  LinkConfig link;
  Tick min_rto = 200 * kMillisecond;
  std::uint64_t seed = 1;
  ProtocolOptions options;
  TcpSocket::Config socket;
  Tick time_limit = 300 * kSecond;
};

struct DeadlineIncastResult {
  Protocol protocol{};
  int num_flows = 0;
  std::uint64_t responses = 0;
  std::uint64_t deadlines_met = 0;
  Percentile fct_ms;  ///< per-response completion times
  std::uint64_t rounds_completed = 0;
  bool hit_time_limit = false;
  double sim_seconds = 0.0;

  double MissFraction() const {
    return responses == 0
               ? 0.0
               : 1.0 - static_cast<double>(deadlines_met) /
                           static_cast<double>(responses);
  }
};

DeadlineIncastResult RunDeadlineIncast(const DeadlineIncastConfig& config);

}  // namespace dctcpp
