// MapReduce-style shuffle: every mapper ships a partition to every
// reducer, all at once — the divide-and-conquer traffic the paper's
// introduction cites (Yahoo! M45, Google/Bing partition-aggregate) as the
// source of massive concurrent flows. Each reducer is an incast sink with
// fan-in mappers x flows_per_pair.
#pragma once

#include <cstdint>

#include "dctcpp/core/protocol.h"
#include "dctcpp/net/link.h"
#include "dctcpp/stats/summary.h"
#include "dctcpp/tcp/socket.h"

namespace dctcpp {

struct ShuffleConfig {
  Protocol protocol = Protocol::kDctcp;
  int mappers = 5;
  int reducers = 4;  ///< mappers + reducers hosts are drawn from the tree
  /// Parallel connections per (mapper, reducer) pair — the benchmark's
  /// multithreading knob; per-reducer fan-in = mappers * flows_per_pair.
  int flows_per_pair = 1;
  Bytes bytes_per_pair = 256 * 1024;  ///< split across the pair's flows
  LinkConfig link;
  Tick min_rto = 200 * kMillisecond;
  std::uint64_t seed = 1;
  ProtocolOptions options;
  TcpSocket::Config socket;
  Tick time_limit = 300 * kSecond;
};

struct ShuffleResult {
  Protocol protocol{};
  int flows = 0;               ///< total concurrent flows
  Tick completion_time = 0;    ///< first byte offered to last byte acked
  double goodput_mbps = 0.0;   ///< aggregate shuffle goodput
  /// Jain index over per-flow completion times (1 = all flows finished
  /// together; low values mean stragglers).
  double completion_fairness = 0.0;
  Percentile flow_fct_ms;
  std::uint64_t timeouts = 0;
  bool hit_time_limit = false;
};

ShuffleResult RunShuffle(const ShuffleConfig& config);

}  // namespace dctcpp
