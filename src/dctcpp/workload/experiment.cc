#include "dctcpp/workload/experiment.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

void IncastSweepPoint::Merge(const IncastResult& r) {
  protocol = r.protocol;
  num_flows = r.num_flows;
  goodput_mbps.Add(r.goodput_mbps);
  for (double sample : r.fct_ms.samples()) fct_ms.Add(sample);
  cwnd_hist.Merge(r.cwnd_hist);
  rounds += r.rounds_completed;
  timeouts += r.timeouts;
  floss_timeouts += r.floss_timeouts;
  lack_timeouts += r.lack_timeouts;
  tracked_rounds_at_min_ece += r.tracked_rounds_at_min_ece;
  tracked_rounds_with_timeout += r.tracked_rounds_with_timeout;
  tracked_floss += r.tracked_floss;
  tracked_lack += r.tracked_lack;
  events += r.events;
  packets_forwarded += r.packets_forwarded;
  invariant_violations += r.invariant_violations;
  packets_originated += r.packets_originated;
  packets_dropped += r.packets_dropped;
  packets_duplicated += r.packets_duplicated;
  checksum_discards += r.checksum_discards;
  hit_time_limit = hit_time_limit || r.hit_time_limit;
}

IncastSweepPoint RunIncastPoint(const IncastConfig& base, int reps,
                                ThreadPool& pool) {
  DCTCPP_ASSERT(reps >= 1);
  std::vector<IncastResult> results(static_cast<std::size_t>(reps));
  ParallelFor(pool, static_cast<std::size_t>(reps),
              [&base, &results](std::size_t i) {
                IncastConfig config = base;
                config.seed = base.seed + i;
                results[i] = RunIncast(config);
              });
  IncastSweepPoint point;
  for (const auto& r : results) point.Merge(r);
  return point;
}

std::vector<IncastSweepPoint> RunIncastSweep(
    const IncastConfig& base, const std::vector<Protocol>& protocols,
    const std::vector<int>& flow_counts, int reps, ThreadPool& pool) {
  struct Job {
    Protocol protocol;
    int num_flows;
    int rep;
  };
  std::vector<Job> jobs;
  for (Protocol p : protocols) {
    for (int n : flow_counts) {
      for (int r = 0; r < reps; ++r) jobs.push_back(Job{p, n, r});
    }
  }

  // Run every job into its own slot, then merge sequentially in job
  // order. Merging under a mutex in completion order would make the
  // floating-point accumulation (SummaryStats, sketches) depend on thread
  // scheduling; this way the sweep's statistics are bit-identical for any
  // pool size — see SweepDeterminismAcrossPoolSizes in experiment_test.
  std::vector<IncastResult> results(jobs.size());
  ParallelFor(pool, jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    IncastConfig config = base;
    config.protocol = job.protocol;
    config.num_flows = job.num_flows;
    config.seed = base.seed + static_cast<std::uint64_t>(job.rep) +
                  0x9e3779b97f4a7c15ULL *
                      static_cast<std::uint64_t>(job.num_flows);
    results[j] = RunIncast(config);
  });

  std::vector<IncastSweepPoint> points(protocols.size() *
                                       flow_counts.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    // Point index: protocol-major, flow-count-minor.
    std::size_t pi = 0, ni = 0;
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      if (protocols[i] == job.protocol) pi = i;
    }
    for (std::size_t i = 0; i < flow_counts.size(); ++i) {
      if (flow_counts[i] == job.num_flows) ni = i;
    }
    points[pi * flow_counts.size() + ni].Merge(results[j]);
  }
  return points;
}

std::vector<int> FlowCounts(int from, int to, int step) {
  DCTCPP_ASSERT(from >= 1 && step >= 1 && to >= from);
  std::vector<int> out;
  for (int n = from; n <= to; n += step) out.push_back(n);
  return out;
}

}  // namespace dctcpp
