// Application building blocks used by the experiments and examples:
// request/response endpoints (the partition/aggregate pattern), byte sinks,
// and bulk senders (background long flows).
//
// All per-connection state (accepted sockets, Conn records, client
// sockets) is allocated from the simulation's arena: setup touches the
// allocator a handful of times, same-flow state sits adjacent in memory,
// and teardown is O(slabs). Completion callbacks are allocation-free
// InlineFunction delegates (large captures still box transparently).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dctcpp/tcp/socket.h"
#include "dctcpp/util/arena.h"

namespace dctcpp {

/// Worker-side server: on each established connection, every
/// `request_size` bytes received trigger a response of `response_size()`
/// bytes, mirroring the incast benchmark's workers that "respond
/// immediately with the requested data". Connections are persistent.
class WorkerServer {
 public:
  struct Config {
    PortNum port = 5000;
    Bytes request_size = 64;
    std::function<Bytes()> response_size;  ///< evaluated per request
    /// Called for each accepted connection (e.g. to attach a TcpProbe).
    std::function<void(TcpSocket&)> on_accept_hook;
    /// Called right before each response's bytes are queued (e.g. to set
    /// a per-response deadline on a deadline-aware sender).
    std::function<void(TcpSocket&, Bytes)> on_response_hook;
  };

  WorkerServer(Host& host, TcpListener::CcFactory cc_factory,
               const TcpSocket::Config& socket_config, Config config);

  std::size_t ConnectionCount() const { return conns_.size(); }
  Bytes total_responded() const { return total_responded_; }

  /// Visits every accepted connection's socket (diagnostics, tests).
  void ForEachConnection(const std::function<void(TcpSocket&)>& fn) {
    for (auto& c : conns_) fn(*c->socket);
  }

 private:
  struct Conn {
    TcpSocket::Ptr socket;
    Bytes request_bytes_pending = 0;
  };

  void OnAccept(TcpSocket::Ptr socket);

  Config config_;
  Bytes total_responded_ = 0;
  std::vector<ArenaPtr<Conn>> conns_;
  TcpListener listener_;
};

/// Aggregator-side client: one persistent connection to one worker.
/// Requests are queued; each sends `request_size` bytes and completes when
/// the expected response bytes have arrived in order.
class AggregatorClient {
 public:
  AggregatorClient(Host& host, std::unique_ptr<CongestionOps> cc,
                   const TcpSocket::Config& socket_config, NodeId server,
                   PortNum server_port, Bytes request_size);

  /// Opens the connection; `on_connected` fires when established.
  void Connect(TcpSocket::Callback on_connected);

  /// Issues one request expecting `response_bytes` back. Requests on one
  /// connection are served FIFO.
  void Request(Bytes response_bytes, TcpSocket::Callback on_response);

  TcpSocket& socket() { return *socket_; }
  bool Connected() const { return socket_->Established(); }
  Bytes total_received() const { return total_received_; }

 private:
  void OnData(Bytes n);

  struct Pending {
    Bytes remaining;
    TcpSocket::Callback on_response;
  };

  Bytes request_size_;
  NodeId server_;
  PortNum server_port_;
  Bytes total_received_ = 0;
  std::deque<Pending> pending_;
  TcpSocket::Ptr socket_;
};

/// Accepts connections and counts the bytes each delivers. When the peer
/// closes, reports the flow's byte total. Used as the receiving end of
/// background and benchmark flows.
class SinkServer {
 public:
  /// (bytes_received, socket) on peer close.
  using FlowCallback = std::function<void(Bytes)>;

  SinkServer(Host& host, PortNum port, TcpListener::CcFactory cc_factory,
             const TcpSocket::Config& socket_config,
             FlowCallback on_flow_complete = nullptr);

  Bytes total_received() const { return total_received_; }
  std::uint64_t flows_completed() const { return flows_completed_; }

 private:
  struct Conn {
    TcpSocket::Ptr socket;
    Bytes received = 0;
  };

  void OnAccept(TcpSocket::Ptr socket);

  Bytes total_received_ = 0;
  std::uint64_t flows_completed_ = 0;
  FlowCallback on_flow_complete_;
  std::vector<ArenaPtr<Conn>> conns_;
  TcpListener listener_;
};

/// One outbound flow: connects, sends `size` bytes, optionally closes.
/// Completion fires when every byte is acknowledged end-to-end.
class BulkSender {
 public:
  BulkSender(Host& host, std::unique_ptr<CongestionOps> cc,
             const TcpSocket::Config& socket_config, NodeId dst,
             PortNum dst_port);

  /// Starts the transfer. `on_complete` fires when all `size` bytes are
  /// acknowledged (and the FIN sent, when `close_when_done`).
  void Start(Bytes size, bool close_when_done,
             TcpSocket::Callback on_complete);

  TcpSocket& socket() { return *socket_; }
  Bytes acked_bytes() const { return socket_->StreamAcked(); }
  Tick started_at() const { return started_at_; }

 private:
  void CheckComplete();

  NodeId dst_;
  PortNum dst_port_;
  Bytes size_ = 0;
  bool close_when_done_ = false;
  bool completed_ = false;
  Tick started_at_ = 0;
  TcpSocket::Callback on_complete_;
  TcpSocket::Ptr socket_;
};

}  // namespace dctcpp
