#include "dctcpp/workload/churn.h"

#include <algorithm>
#include <cmath>

#include "dctcpp/util/assert.h"

namespace dctcpp {

namespace {

// Section tags (see sim/checkpoint.h for the convention).
constexpr std::uint32_t kTagChurnWorld = 0x4348524e;  // "CHRN" world header
constexpr std::uint32_t kTagChurnShard = 0x43485348;  // "CHSH" per-shard hook

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

Tick ExpTicks(Rng& rng, double mean) {
  return std::max<Tick>(
      1, static_cast<Tick>(rng.Exponential(mean) + 0.5));
}

void WriteIndexList(CheckpointWriter& w,
                    const std::vector<std::uint32_t>& v) {
  w.U64(v.size());
  for (std::uint32_t i : v) w.U32(i);
}

void ReadIndexList(CheckpointReader& r, std::vector<std::uint32_t>& v) {
  DCTCPP_ASSERT(v.empty());
  const std::uint64_t n = r.U64();
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.U32());
}

}  // namespace

void ChurnListener::Accept(TcpSocket& socket, const Packet& syn) {
  socket.AcceptFrom(syn);
}

ChurnWorkload::HostChurn::HostChurn(ChurnWorkload* w,
                                    std::uint32_t host_index, Host& h)
    : owner(w),
      index(host_index),
      host(&h),
      rng(h.sim().StreamRng(kChurnStreamBase | host_index)),
      arrival(
          h.sim(),
          [](void* p) {
            auto* hc = static_cast<HostChurn*>(p);
            hc->owner->OnArrival(hc->index);
          },
          this) {}

ChurnWorkload::ChurnWorkload(const ChurnConfig& config) : config_(config) {
  DCTCPP_ASSERT(config_.shards >= 1);
  DCTCPP_ASSERT(config_.target_live_flows > 0);
  DCTCPP_ASSERT(config_.mean_lifetime > 0);
  DCTCPP_ASSERT(config_.bytes_per_flow > 0);

  FatTreeConfig ft = config_.fat_tree;
  ft.link = config_.link;
  fabric_ = std::make_unique<FatTreeFabric>(ft);
  const int n = fabric_->num_hosts();
  DCTCPP_ASSERT(n >= 2);

  const std::vector<int> shard_of = ShardPartitioner::Assign(
      *fabric_, config_.shards, config_.strategy, {}, config_.seed);
  psim_ = std::make_unique<ParallelSimulation>(config_.seed, config_.shards);
  psim_->set_lookahead_mode(config_.fixed_window_lookahead
                                ? LookaheadMode::kFixedWindow
                                : LookaheadMode::kChannelClock);
  net_ = std::make_unique<Network>(*psim_);
  fabric_->Build(*net_, shard_of);

  socket_config_ = config_.socket;
  socket_config_.rto.min_rto = config_.min_rto;
  socket_config_.rto.initial_rto =
      std::max(config_.min_rto, 10 * kMillisecond);

  if (config_.max_live_per_host > 0) {
    pool_capacity_ = config_.max_live_per_host;
  } else {
    // Poisson occupancy: mean + 5 sigma + fixed headroom for the ramp.
    const double mean_per_host =
        static_cast<double>(config_.target_live_flows) / n;
    pool_capacity_ = static_cast<int>(
        mean_per_host + 5.0 * std::sqrt(std::max(1.0, mean_per_host)) + 16);
  }

  hosts_.reserve(static_cast<std::size_t>(n));
  for (int h = 0; h < n; ++h) {
    Host& host = fabric_->host(h);
    hosts_.push_back(std::make_unique<HostChurn>(
        this, static_cast<std::uint32_t>(h), host));
    HostChurn& hc = *hosts_.back();
    for (int i = 0; i < pool_capacity_; ++i) {
      hc.client.emplace_back(this, static_cast<std::uint32_t>(h),
                             static_cast<std::uint32_t>(i), host.sim());
      hc.server.emplace_back();
    }
    hc.client_free.reserve(static_cast<std::size_t>(pool_capacity_));
    hc.server_free.reserve(static_cast<std::size_t>(pool_capacity_));
    // Retired lists are bounded by pool capacity; reserving up front keeps
    // the steady-state footprint exactly flat (the no-growth gate).
    hc.client_retired.reserve(static_cast<std::size_t>(pool_capacity_));
    hc.server_retired.reserve(static_cast<std::size_t>(pool_capacity_));
    for (int i = pool_capacity_ - 1; i >= 0; --i) {
      hc.client_free.push_back(static_cast<std::uint32_t>(i));
      hc.server_free.push_back(static_cast<std::uint32_t>(i));
    }
    host.Listen(kChurnPort,
                [this, hh = static_cast<std::uint32_t>(h)](const Packet& p) {
                  OnListenPacket(hh, p);
                });
  }
}

ChurnWorkload::~ChurnWorkload() = default;

double ChurnWorkload::SteadyMean() const {
  return static_cast<double>(config_.mean_lifetime) * hosts() /
         static_cast<double>(config_.target_live_flows);
}

std::unique_ptr<CongestionOps> ChurnWorkload::MakeCc() const {
  return MakeCongestionOps(config_.protocol, config_.options);
}

void ChurnWorkload::Start() {
  DCTCPP_ASSERT(!started_);
  started_ = true;
  const int n = hosts();
  const std::int64_t target = config_.target_live_flows;
  for (int h = 0; h < n; ++h) {
    HostChurn& hc = *hosts_[static_cast<std::size_t>(h)];
    const int share = static_cast<int>(target / n + (h < target % n ? 1 : 0));
    hc.seed_remaining = share;
    hc.seed_mean = share > 0
                       ? static_cast<double>(config_.prewarm) / share
                       : SteadyMean();
    hc.arrival.ArmIn(
        ExpTicks(hc.rng, share > 0 ? hc.seed_mean : SteadyMean()));
  }
}

void ChurnWorkload::RunTo(Tick deadline, ThreadPool* pool) {
  DCTCPP_ASSERT(started_);
  psim_->RunUntil(deadline, pool);
  peak_live_ = std::max(peak_live_, live_flows());
}

void ChurnWorkload::OnArrival(std::uint32_t h) {
  HostChurn& hc = *hosts_[h];
  DrainRetired(hc);

  // Fixed draw order (dst, lifetime, inter-arrival) regardless of pool
  // occupancy, so the per-host stream advances identically whether or not
  // this arrival found a free slot.
  const int n = hosts();
  int dst = static_cast<int>(hc.rng.NextDouble() * (n - 1));
  if (dst >= static_cast<int>(h)) ++dst;
  const Tick lifetime =
      ExpTicks(hc.rng, static_cast<double>(config_.mean_lifetime));
  if (hc.seed_remaining > 0) --hc.seed_remaining;
  const Tick dt = ExpTicks(
      hc.rng, hc.seed_remaining > 0 ? hc.seed_mean : SteadyMean());

  if (hc.client_free.empty()) {
    ++hc.dropped;
  } else {
    const std::uint32_t idx = hc.client_free.back();
    hc.client_free.pop_back();
    ClientSlot& slot = hc.client[idx];
    TcpSocket* sock =
        new (slot.storage) TcpSocket(*hc.host, MakeCc(), socket_config_);
    slot.constructed = true;
    sock->set_on_closed([this, h, idx] { RetireClient(h, idx); });
    sock->Connect(fabric_->host(dst).id(), kChurnPort);
    sock->Send(config_.bytes_per_flow);
    slot.departure.Schedule(lifetime);
    ++hc.started;
    ++hc.live_clients;
  }
  hc.arrival.ArmIn(dt);
}

void ChurnWorkload::OnDeparture(std::uint32_t h, std::uint32_t idx) {
  ClientSlot& slot = hosts_[h]->client[idx];
  DCTCPP_ASSERT(slot.constructed);
  slot.socket()->Close();
}

void ChurnWorkload::RetireClient(std::uint32_t h, std::uint32_t idx) {
  HostChurn& hc = *hosts_[h];
  // The departure timer normally initiated this close (already fired);
  // Cancel is then a no-op. An eager cancel here keeps the slot safe for
  // reuse in every path.
  hc.client[idx].departure.Cancel();
  hc.client_retired.push_back(idx);
  ++hc.completed;
  --hc.live_clients;
}

void ChurnWorkload::RetireServer(std::uint32_t h, std::uint32_t idx) {
  HostChurn& hc = *hosts_[h];
  hc.server_retired.push_back(idx);
  --hc.live_servers;
}

void ChurnWorkload::OnListenPacket(std::uint32_t h, const Packet& pkt) {
  if (!pkt.tcp.syn || pkt.tcp.ack_flag) return;  // only fresh SYNs
  HostChurn& hc = *hosts_[h];
  DrainRetired(hc);
  if (hc.server_free.empty()) {
    // SYN ignored; the client's handshake RTO retries until a slot frees.
    ++hc.accept_dropped;
    return;
  }
  const std::uint32_t idx = hc.server_free.back();
  hc.server_free.pop_back();
  ServerSlot& slot = hc.server[idx];
  TcpSocket* sock =
      new (slot.storage) TcpSocket(*hc.host, MakeCc(), socket_config_);
  slot.constructed = true;
  AttachServerCallbacks(*sock, h, idx);
  ChurnListener::Accept(*sock, pkt);
  ++hc.live_servers;
}

void ChurnWorkload::AttachServerCallbacks(TcpSocket& s, std::uint32_t h,
                                          std::uint32_t idx) {
  s.set_on_data([this, h](Bytes n) { hosts_[h]->bytes_received += n; });
  s.set_on_remote_close(
      [this, h, idx] { hosts_[h]->server[idx].socket()->Close(); });
  s.set_on_closed([this, h, idx] { RetireServer(h, idx); });
}

void ChurnWorkload::DrainRetired(HostChurn& hc) {
  for (std::uint32_t idx : hc.client_retired) {
    ClientSlot& slot = hc.client[idx];
    slot.socket()->~TcpSocket();
    slot.constructed = false;
    hc.client_free.push_back(idx);
  }
  hc.client_retired.clear();
  for (std::uint32_t idx : hc.server_retired) {
    ServerSlot& slot = hc.server[idx];
    slot.socket()->~TcpSocket();
    slot.constructed = false;
    hc.server_free.push_back(idx);
  }
  hc.server_retired.clear();
}

std::int64_t ChurnWorkload::live_flows() const {
  std::int64_t live = 0;
  for (const auto& hc : hosts_) live += hc->live_clients;
  return live;
}

ChurnStats ChurnWorkload::Stats() const {
  ChurnStats s;
  for (const auto& hc : hosts_) {
    s.flows_started += hc->started;
    s.flows_completed += hc->completed;
    s.arrivals_dropped += hc->dropped;
    s.accepts_dropped += hc->accept_dropped;
    s.live_flows += hc->live_clients;
    s.bytes_received += hc->bytes_received;
  }
  s.peak_live = peak_live_;
  s.violations = psim_->invariant_violations();
  s.events_executed = psim_->events_executed();
  s.packets_forwarded = psim_->packets_forwarded();
  return s;
}

ChurnFootprint ChurnWorkload::MeasureFootprint() {
  ChurnFootprint f;
  for (const auto& hc : hosts_) {
    f.pool_bytes += hc->client.size() * sizeof(ClientSlot) +
                    hc->server.size() * sizeof(ServerSlot);
    f.pool_bytes += (hc->client_free.capacity() +
                     hc->client_retired.capacity() +
                     hc->server_free.capacity() +
                     hc->server_retired.capacity()) *
                    sizeof(std::uint32_t);
  }
  for (int i = 0; i < config_.shards; ++i) {
    Simulator& sim = psim_->shard(i);
    f.scheduler_bytes += sim.scheduler().PoolBytes();
    f.arena_bytes += sim.arena().bytes_reserved();
  }
  f.peak_live = peak_live_;
  f.bytes_per_flow =
      static_cast<double>(f.pool_bytes + f.scheduler_bytes + f.arena_bytes) /
      static_cast<double>(std::max<std::int64_t>(1, peak_live_));
  return f;
}

std::vector<std::uint8_t> ChurnWorkload::SaveCheckpoint() const {
  DCTCPP_ASSERT(started_);
  CheckpointWriter w;
  w.U32(CheckpointWriter::kMagic);
  w.U32(CheckpointWriter::kVersion);
  w.Tag(kTagChurnWorld);
  // Config audit: a blob only restores onto an identically shaped world.
  w.U64(config_.seed);
  w.U64(static_cast<std::uint64_t>(config_.shards));
  w.I64(config_.target_live_flows);
  w.I64(config_.mean_lifetime);
  w.I64(config_.bytes_per_flow);
  w.U64(static_cast<std::uint64_t>(hosts()));
  w.U64(static_cast<std::uint64_t>(pool_capacity_));
  w.I64(peak_live_);
  psim_->SaveCheckpoint(w, this);
  return w.TakeBlob();
}

void ChurnWorkload::RestoreCheckpoint(
    const std::vector<std::uint8_t>& blob) {
  DCTCPP_ASSERT(!started_);
  CheckpointReader r(blob);
  DCTCPP_ASSERT(r.U32() == CheckpointWriter::kMagic);
  DCTCPP_ASSERT(r.U32() == CheckpointWriter::kVersion);
  r.ExpectTag(kTagChurnWorld);
  DCTCPP_ASSERT(r.U64() == config_.seed);
  DCTCPP_ASSERT(r.U64() == static_cast<std::uint64_t>(config_.shards));
  DCTCPP_ASSERT(r.I64() == config_.target_live_flows);
  DCTCPP_ASSERT(r.I64() == config_.mean_lifetime);
  DCTCPP_ASSERT(r.I64() == config_.bytes_per_flow);
  DCTCPP_ASSERT(r.U64() == static_cast<std::uint64_t>(hosts()));
  DCTCPP_ASSERT(r.U64() == static_cast<std::uint64_t>(pool_capacity_));
  peak_live_ = r.I64();
  psim_->RestoreCheckpoint(r, this);
  DCTCPP_ASSERT(r.AtEnd());
  started_ = true;
}

std::uint64_t ChurnWorkload::Fingerprint() const {
  const std::vector<std::uint8_t> blob = SaveCheckpoint();
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : blob) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

void ChurnWorkload::SaveWorkload(CheckpointWriter& w, int shard) const {
  w.Tag(kTagChurnShard);
  std::uint64_t count = 0;
  for (const auto& hc : hosts_) {
    if (hc->host->sim().shard_id() == shard) ++count;
  }
  w.U64(count);
  for (const auto& hcp : hosts_) {
    const HostChurn& hc = *hcp;
    if (hc.host->sim().shard_id() != shard) continue;
    w.U64(hc.index);

    const bool armed = hc.arrival.armed();
    w.Bool(armed);
    if (armed) {
      Tick at = 0;
      std::uint64_t seq = 0;
      hc.arrival.Arming(&at, &seq);
      w.I64(at);
      w.U64(seq);
    }

    std::uint64_t rng_state[4];
    hc.rng.SaveState(rng_state);
    for (std::uint64_t s : rng_state) w.U64(s);

    w.U64(static_cast<std::uint64_t>(hc.seed_remaining));
    w.F64(hc.seed_mean);
    w.U64(hc.started);
    w.U64(hc.completed);
    w.U64(hc.dropped);
    w.U64(hc.accept_dropped);
    w.I64(hc.bytes_received);
    w.I64(hc.live_clients);
    w.I64(hc.live_servers);

    WriteIndexList(w, hc.client_free);
    WriteIndexList(w, hc.client_retired);
    WriteIndexList(w, hc.server_free);
    WriteIndexList(w, hc.server_retired);

    // Retired (closed) sockets are saved too: a lazily cancelled delayed-
    // ACK timer can leave a stale wheel arming whose eventual no-op pop is
    // part of the event sequence.
    w.U64(hc.client.size());
    for (const ClientSlot& slot : hc.client) {
      w.Bool(slot.constructed);
      if (slot.constructed) {
        slot.socket()->SaveState(w);
        slot.departure.SaveState(w);
      }
    }
    w.U64(hc.server.size());
    for (const ServerSlot& slot : hc.server) {
      w.Bool(slot.constructed);
      if (slot.constructed) slot.socket()->SaveState(w);
    }
  }
}

void ChurnWorkload::RestoreWorkload(CheckpointReader& r, int shard) {
  r.ExpectTag(kTagChurnShard);
  const std::uint64_t count = r.U64();
  std::uint64_t seen = 0;
  for (auto& hcp : hosts_) {
    HostChurn& hc = *hcp;
    if (hc.host->sim().shard_id() != shard) continue;
    ++seen;
    DCTCPP_ASSERT(r.U64() == hc.index);

    if (r.Bool()) {
      const Tick at = r.I64();
      const std::uint64_t seq = r.U64();
      hc.arrival.ArmAtWithSeq(at, seq);
    }

    std::uint64_t rng_state[4];
    for (std::uint64_t& s : rng_state) s = r.U64();
    hc.rng.LoadState(rng_state);

    hc.seed_remaining = static_cast<int>(r.U64());
    hc.seed_mean = r.F64();
    hc.started = r.U64();
    hc.completed = r.U64();
    hc.dropped = r.U64();
    hc.accept_dropped = r.U64();
    hc.bytes_received = r.I64();
    hc.live_clients = r.I64();
    hc.live_servers = r.I64();

    hc.client_free.clear();
    hc.server_free.clear();
    ReadIndexList(r, hc.client_free);
    ReadIndexList(r, hc.client_retired);
    ReadIndexList(r, hc.server_free);
    ReadIndexList(r, hc.server_retired);

    DCTCPP_ASSERT(r.U64() == hc.client.size());
    for (std::size_t i = 0; i < hc.client.size(); ++i) {
      if (!r.Bool()) continue;
      ClientSlot& slot = hc.client[i];
      DCTCPP_ASSERT(!slot.constructed);
      TcpSocket* sock =
          new (slot.storage) TcpSocket(*hc.host, MakeCc(), socket_config_);
      slot.constructed = true;
      const std::uint32_t h = hc.index;
      const std::uint32_t idx = static_cast<std::uint32_t>(i);
      sock->set_on_closed([this, h, idx] { RetireClient(h, idx); });
      sock->LoadState(r);
      slot.departure.LoadState(r);
    }
    DCTCPP_ASSERT(r.U64() == hc.server.size());
    for (std::size_t i = 0; i < hc.server.size(); ++i) {
      if (!r.Bool()) continue;
      ServerSlot& slot = hc.server[i];
      DCTCPP_ASSERT(!slot.constructed);
      TcpSocket* sock =
          new (slot.storage) TcpSocket(*hc.host, MakeCc(), socket_config_);
      slot.constructed = true;
      AttachServerCallbacks(*sock, hc.index,
                            static_cast<std::uint32_t>(i));
      sock->LoadState(r);
    }
  }
  DCTCPP_ASSERT(seen == count);
}

}  // namespace dctcpp
