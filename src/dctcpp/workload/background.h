// Poisson flow generation between random host pairs, with sizes drawn
// from an empirical distribution — the "short messages and background
// traffic ... produced according to the flow size versus the inter-arrival
// time distribution from the measurement result of the production cluster"
// of Sec. VI-D.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dctcpp/stats/summary.h"
#include "dctcpp/tcp/socket.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/workload/apps.h"

namespace dctcpp {

/// Approximation of the production-cluster flow-size distribution from the
/// DCTCP paper's measurements that Sec. VI-D samples: mostly small
/// (<= 10 KB) flows with a heavy tail carrying most of the bytes.
EmpiricalCdf ProductionFlowSizeCdf();

class FlowGenerator {
 public:
  struct Config {
    int flow_count = 100;
    /// Mean of the exponential inter-arrival time.
    Tick mean_interarrival = 10 * kMillisecond;
    PortNum sink_port = 6000;
    /// Close each flow's connection after its last byte (exercises
    /// connect/teardown per flow, as new application flows would).
    bool close_flows = true;
  };

  /// Flows run between distinct hosts drawn uniformly from `hosts`; every
  /// host must already run a SinkServer on `config.sink_port`.
  FlowGenerator(Simulator& sim, std::vector<Host*> hosts,
                TcpListener::CcFactory cc_factory,
                const TcpSocket::Config& socket_config, Config config,
                EmpiricalCdf size_cdf);

  /// Schedules the first arrival; `on_all_complete` (optional) fires when
  /// every generated flow has been fully acknowledged.
  void Start(std::function<void()> on_all_complete = nullptr);

  /// Flow completion times (connect initiation to last byte acked), ms.
  const Percentile& fct_ms() const { return fct_ms_; }
  int flows_started() const { return started_; }
  int flows_completed() const { return completed_; }
  Bytes bytes_sent() const { return bytes_sent_; }

 private:
  void ScheduleNext();
  void LaunchFlow();

  Simulator& sim_;
  std::vector<Host*> hosts_;
  TcpListener::CcFactory cc_factory_;
  TcpSocket::Config socket_config_;
  Config config_;
  EmpiricalCdf size_cdf_;

  std::vector<std::unique_ptr<BulkSender>> flows_;
  Percentile fct_ms_;
  int started_ = 0;
  int completed_ = 0;
  Bytes bytes_sent_ = 0;
  std::function<void()> on_all_complete_;
};

}  // namespace dctcpp
