// Bounded-memory streaming quantile sketch with logarithmic buckets.
//
// Sweep aggregation used to keep every FCT sample of every repetition in a
// grow-forever vector (Percentile); at 1000 repetitions x hundreds of
// rounds x hundreds of points that dominates the harness's memory. This
// sketch replaces it for sweeps: values are counted in buckets whose
// bounds grow geometrically by gamma = (1+a)/(1-a), which guarantees any
// reported quantile is within relative error `a` of an exact order
// statistic (the DDSketch bound). Memory is a fixed ~2400 x 8-byte bucket
// array regardless of sample count, and merging two sketches is an
// element-wise add — exactly what folding 1000-rep sweep points needs.
//
// Values below kMinTrackable (including zero and negatives — FCTs are
// positive, this is belt and braces) are clamped into the lowest bucket;
// exact min/max/sum/count are tracked on the side, so Min()/Max()/Mean()
// stay exact and only interior quantiles are approximate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dctcpp {

class QuantileSketch {
 public:
  /// `relative_error` a in (0, 0.5): reported quantiles are within a
  /// factor [1-a, 1+a] of the exact order statistic.
  explicit QuantileSketch(double relative_error = 0.01);

  void Add(double x);

  /// Folds `other` into this sketch. Both must use the same accuracy.
  void Merge(const QuantileSketch& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }

  /// Quantile in [0, 1]; 0.0 on an empty sketch. Exact at the endpoints
  /// (tracked min/max), within the configured relative error elsewhere.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  double relative_error() const { return relative_error_; }

  /// Fixed bucket-array size (memory bound), for tests.
  std::size_t BucketCount() const { return buckets_.size(); }

 private:
  // Trackable value range; outside values clamp to the edge buckets.
  static constexpr double kMinTrackable = 1e-9;
  static constexpr double kMaxTrackable = 1e12;

  int BucketIndex(double x) const;
  double BucketValue(int index) const;

  double relative_error_;
  double gamma_;
  double inv_log_gamma_;
  int index_lo_ = 0;  ///< bucket index of kMinTrackable
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dctcpp
