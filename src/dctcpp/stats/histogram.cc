#include "dctcpp/stats/histogram.h"

#include <cstdio>

#include "dctcpp/util/assert.h"

namespace dctcpp {
namespace {

/// Saturating add: counters pin at UINT64_MAX instead of wrapping when
/// many high-weight repetitions are folded together.
std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? ~std::uint64_t{0} : sum;
}

}  // namespace

Histogram::Histogram(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
  DCTCPP_ASSERT(lo <= hi);
  bins_.assign(static_cast<std::size_t>(hi - lo + 1), 0);
}

void Histogram::Add(std::int64_t value, std::uint64_t weight) {
  if (value < lo_) {
    underflow_ = SatAdd(underflow_, weight);
  } else if (value > hi_) {
    overflow_ = SatAdd(overflow_, weight);
  } else {
    auto& bin = bins_[static_cast<std::size_t>(value - lo_)];
    bin = SatAdd(bin, weight);
  }
  total_ = SatAdd(total_, weight);
}

std::uint64_t Histogram::CountAt(std::int64_t value) const {
  if (value < lo_ || value > hi_) return 0;
  return bins_[static_cast<std::size_t>(value - lo_)];
}

double Histogram::FractionAt(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(CountAt(value)) / static_cast<double>(total_);
}

double Histogram::CumulativeFraction(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = underflow_;
  for (std::int64_t v = lo_; v <= value && v <= hi_; ++v) {
    acc = SatAdd(acc, CountAt(v));
  }
  if (value > hi_) acc = SatAdd(acc, overflow_);
  return static_cast<double>(acc) / static_cast<double>(total_);
}

void Histogram::Merge(const Histogram& other) {
  DCTCPP_ASSERT(lo_ == other.lo_ && hi_ == other.hi_);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] = SatAdd(bins_[i], other.bins_[i]);
  }
  underflow_ = SatAdd(underflow_, other.underflow_);
  overflow_ = SatAdd(overflow_, other.overflow_);
  total_ = SatAdd(total_, other.total_);
}

std::string Histogram::ToString(const std::string& label) const {
  std::string out;
  if (!label.empty()) out += label + "\n";
  char line[160];
  for (std::int64_t v = lo_; v <= hi_; ++v) {
    const double frac = FractionAt(v);
    const int bar = static_cast<int>(frac * 50.0 + 0.5);
    std::snprintf(line, sizeof line, "  %4lld  %10llu  %6.2f%%  %.*s\n",
                  static_cast<long long>(v),
                  static_cast<unsigned long long>(CountAt(v)), frac * 100.0,
                  bar, "##################################################");
    out += line;
  }
  if (underflow_ != 0 || overflow_ != 0) {
    std::snprintf(line, sizeof line, "  under=%llu over=%llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace dctcpp
