// Minimal CSV writing, so benches and examples can export plot-ready
// series (queue timelines, CDFs, sweep curves) next to their ASCII
// tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dctcpp/stats/time_series.h"

namespace dctcpp {

class CsvWriter {
 public:
  /// Opens `path` for writing; check ok() before relying on output.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Writes one row; cells are emitted verbatim, comma-separated. Cells
  /// containing commas or quotes are quoted per RFC 4180.
  void Row(const std::vector<std::string>& cells);

  /// Convenience numeric row.
  void NumericRow(const std::vector<double>& values, int precision = 6);

 private:
  std::FILE* file_ = nullptr;
};

/// Dumps a TimeSeriesSampler's samples as (time_us, value) rows with a
/// header. Returns false if the file could not be written.
bool WriteTimeSeriesCsv(const std::string& path,
                        const std::vector<TimeSeriesSampler::Sample>& samples,
                        const std::string& value_name = "value");

}  // namespace dctcpp
