#include "dctcpp/stats/cdf.h"

#include <algorithm>

#include "dctcpp/util/assert.h"

namespace dctcpp {

void Cdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::At(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::Quantile(double q) const {
  DCTCPP_ASSERT(!samples_.empty());
  DCTCPP_ASSERT(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  if (q <= 0.0) return samples_.front();
  const auto n = static_cast<double>(samples_.size());
  auto idx = static_cast<std::size_t>(q * n);
  if (idx > 0) --idx;
  idx = std::min(idx, samples_.size() - 1);
  // Smallest sample whose empirical CDF reaches q.
  while (idx + 1 < samples_.size() &&
         static_cast<double>(idx + 1) / n < q) {
    ++idx;
  }
  return samples_[idx];
}

std::vector<std::pair<double, double>> Cdf::Series(double lo, double hi,
                                                   int points) const {
  DCTCPP_ASSERT(points >= 2);
  DCTCPP_ASSERT(hi >= lo);
  std::vector<std::pair<double, double>> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / (points - 1);
    out.emplace_back(x, At(x));
  }
  return out;
}

void Cdf::Merge(const Cdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

}  // namespace dctcpp
