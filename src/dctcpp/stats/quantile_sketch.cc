#include "dctcpp/stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "dctcpp/util/assert.h"

namespace dctcpp {

QuantileSketch::QuantileSketch(double relative_error)
    : relative_error_(relative_error) {
  DCTCPP_ASSERT(relative_error > 0.0 && relative_error < 0.5);
  gamma_ = (1.0 + relative_error) / (1.0 - relative_error);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  index_lo_ = static_cast<int>(
      std::floor(std::log(kMinTrackable) * inv_log_gamma_));
  const int index_hi = static_cast<int>(
      std::ceil(std::log(kMaxTrackable) * inv_log_gamma_));
  buckets_.assign(static_cast<std::size_t>(index_hi - index_lo_ + 1), 0);
}

int QuantileSketch::BucketIndex(double x) const {
  if (!(x > kMinTrackable)) return 0;  // clamps NaN, <=0, and tiny values
  const int idx =
      static_cast<int>(std::floor(std::log(x) * inv_log_gamma_)) - index_lo_;
  return std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
}

double QuantileSketch::BucketValue(int index) const {
  // Geometric midpoint of [gamma^i, gamma^(i+1)).
  return std::exp((index + index_lo_ + 0.5) / inv_log_gamma_);
}

void QuantileSketch::Add(double x) {
  ++buckets_[static_cast<std::size_t>(BucketIndex(x))];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  DCTCPP_ASSERT(buckets_.size() == other.buckets_.size());
  DCTCPP_ASSERT(relative_error_ == other.relative_error_);
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double QuantileSketch::Quantile(double q) const {
  DCTCPP_ASSERT(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  // Rank of the order statistic Percentile would interpolate around.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Clamp to the exact extremes so Quantile(0)/Quantile(1) are exact
      // and interior estimates never leave the observed range.
      return std::clamp(BucketValue(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;  // unreachable: seen == count_ > rank by the end
}

}  // namespace dctcpp
