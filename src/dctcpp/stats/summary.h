// Sample accumulators: streaming moments, exact percentiles, fairness.
#pragma once

#include <cstddef>
#include <vector>

namespace dctcpp {

/// Jain's fairness index over per-flow allocations:
/// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means perfectly equal shares.
/// Returns 0 for an empty input or an all-zero allocation.
double JainFairnessIndex(const std::vector<double>& allocations);

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class SummaryStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const SummaryStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact order statistics. Use for the FCT
/// distributions where the paper reports mean / 95th / 99th percentiles.
class Percentile {
 public:
  void Add(double x) { samples_.push_back(x); sorted_ = false; }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Quantile in [0, 1] by linear interpolation between order statistics
  /// (the "R-7" definition used by numpy). 0.0 on an empty sample set
  /// (sweep points where no round ever completed).
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double Mean() const;
  double Min() const { return Quantile(0.0); }
  double Max() const { return Quantile(1.0); }

  const std::vector<double>& samples() const { return samples_; }

  void Merge(const Percentile& other);

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace dctcpp
