#include "dctcpp/stats/table.h"

#include <algorithm>

#include "dctcpp/util/assert.h"

namespace dctcpp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DCTCPP_ASSERT(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  DCTCPP_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::Print(std::FILE* out) const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace dctcpp
