// Fixed-bin integer histogram.
//
// Used for the cwnd frequency distributions of Fig 2: one bin per integer
// cwnd value (in MSS), with an overflow bin for values past the top.
// All counters saturate at UINT64_MAX instead of wrapping, so folding
// arbitrarily many high-weight repetitions (1000-rep sweeps) is safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dctcpp {

class Histogram {
 public:
  /// Bins cover integer values lo..hi inclusive, plus under/overflow bins.
  Histogram(std::int64_t lo, std::int64_t hi);

  void Add(std::int64_t value, std::uint64_t weight = 1);

  std::uint64_t CountAt(std::int64_t value) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  std::int64_t lo() const { return lo_; }
  std::int64_t hi() const { return hi_; }

  /// Fraction of all samples equal to `value`, in [0, 1].
  double FractionAt(std::int64_t value) const;

  /// Fraction of all samples <= `value` (underflow included).
  double CumulativeFraction(std::int64_t value) const;

  void Merge(const Histogram& other);

  /// Multi-line ASCII rendering: "value count fraction bar".
  std::string ToString(const std::string& label = "") const;

 private:
  std::int64_t lo_;
  std::int64_t hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dctcpp
