#include "dctcpp/stats/csv.h"

namespace dctcpp {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string Quote(const std::string& cell) {
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::Row(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    if (NeedsQuoting(cell)) {
      const std::string quoted = Quote(cell);
      std::fwrite(quoted.data(), 1, quoted.size(), file_);
    } else {
      std::fwrite(cell.data(), 1, cell.size(), file_);
    }
    std::fputc(i + 1 < cells.size() ? ',' : '\n', file_);
  }
}

void CsvWriter::NumericRow(const std::vector<double>& values,
                           int precision) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(file_, "%.*g%c", precision, values[i],
                 i + 1 < values.size() ? ',' : '\n');
  }
}

bool WriteTimeSeriesCsv(
    const std::string& path,
    const std::vector<TimeSeriesSampler::Sample>& samples,
    const std::string& value_name) {
  CsvWriter csv(path);
  if (!csv.ok()) return false;
  csv.Row({"time_us", value_name});
  for (const auto& s : samples) {
    csv.NumericRow({ToMicros(s.at), s.value});
  }
  return true;
}

}  // namespace dctcpp
