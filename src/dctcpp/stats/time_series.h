// Periodic sampling of a model quantity (the paper samples the Switch-1
// queue length every 100 us for Figs 9 and 14).
#pragma once

#include <functional>
#include <vector>

#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

/// Samples `probe()` every `period` starting at `start`, storing
/// (timestamp, value) pairs until Stop() or simulation end.
class TimeSeriesSampler {
 public:
  struct Sample {
    Tick at;
    double value;
  };

  TimeSeriesSampler(Simulator& sim, Tick period,
                    std::function<double()> probe);
  ~TimeSeriesSampler();

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Begins sampling; the first sample is taken `period` from now.
  void Start();

  /// Stops sampling; collected samples remain available.
  void Stop();

  const std::vector<Sample>& samples() const { return samples_; }

  /// Values only (for feeding a Cdf).
  std::vector<double> Values() const;

 private:
  void Tickle();

  Simulator& sim_;
  Tick period_;
  std::function<double()> probe_;
  EventId pending_{};
  std::vector<Sample> samples_;
};

}  // namespace dctcpp
