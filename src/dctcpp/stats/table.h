// Aligned ASCII table printer shared by the bench binaries, so every
// reproduced figure/table prints in a uniform format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dctcpp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  /// Renders with column alignment and a separator under the header.
  std::string ToString() const;

  /// Renders to a FILE* (stdout by default).
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dctcpp
