#include "dctcpp/stats/time_series.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

TimeSeriesSampler::TimeSeriesSampler(Simulator& sim, Tick period,
                                     std::function<double()> probe)
    : sim_(sim), period_(period), probe_(std::move(probe)) {
  DCTCPP_ASSERT(period_ > 0);
  DCTCPP_ASSERT(probe_ != nullptr);
}

TimeSeriesSampler::~TimeSeriesSampler() { Stop(); }

void TimeSeriesSampler::Start() {
  if (pending_.valid()) return;
  pending_ = sim_.Schedule(period_, [this] { Tickle(); });
}

void TimeSeriesSampler::Stop() {
  if (pending_.valid()) {
    sim_.Cancel(pending_);
    pending_ = EventId{};
  }
}

void TimeSeriesSampler::Tickle() {
  samples_.push_back(Sample{sim_.Now(), probe_()});
  pending_ = sim_.Schedule(period_, [this] { Tickle(); });
}

std::vector<double> TimeSeriesSampler::Values() const {
  std::vector<double> v;
  v.reserve(samples_.size());
  for (const auto& s : samples_) v.push_back(s.value);
  return v;
}

}  // namespace dctcpp
