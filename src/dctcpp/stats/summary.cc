#include "dctcpp/stats/summary.h"

#include <algorithm>
#include <cmath>

#include "dctcpp/util/assert.h"

namespace dctcpp {

double JainFairnessIndex(const std::vector<double>& allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentile::Quantile(double q) const {
  DCTCPP_ASSERT(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= samples_.size()) return samples_.back();
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

double Percentile::Mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void Percentile::Merge(const Percentile& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

}  // namespace dctcpp
