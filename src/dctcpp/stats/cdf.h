// Empirical CDF over stored samples, with fixed-grid rendering.
//
// Used for Fig 9 (CDF of switch queue length). Distinct from
// util/EmpiricalCdf, which *generates* samples from a published CDF.
#pragma once

#include <string>
#include <vector>

namespace dctcpp {

class Cdf {
 public:
  void Add(double x) { samples_.push_back(x); sorted_ = false; }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// P(X <= x) over the collected samples.
  double At(double x) const;

  /// Inverse CDF: smallest sample s with P(X <= s) >= q.
  double Quantile(double q) const;

  /// Evaluates the CDF on `points` evenly spaced values in [lo, hi]
  /// and returns (x, F(x)) pairs — the series a plot would draw.
  std::vector<std::pair<double, double>> Series(double lo, double hi,
                                                int points) const;

  void Merge(const Cdf& other);

 private:
  void EnsureSorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace dctcpp
