// Drop-tail FIFO with DCTCP-style ECN marking.
//
// Models a static per-port shared-buffer switch queue (the paper's NetFPGA
// switch: 128 KB per port, marking threshold K = 32 KB). Marking is against
// the *instantaneous* queue occupancy at enqueue time, as specified by
// DCTCP: every arriving ECN-capable packet is marked CE while occupancy
// exceeds K. Packets from non-ECN transports are never marked, only
// dropped when the buffer is full.
#pragma once

#include <cstdint>
#include <optional>

#include "dctcpp/net/packet.h"
#include "dctcpp/net/packet_ring.h"
#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

/// RED (random early detection) marking parameters — the classic AQM the
/// DCTCP work compares its instantaneous-threshold marking against. The
/// average queue is an EWMA updated per arrival; ECT packets are marked
/// with probability ramping from 0 at `min_th` to `max_p` at `max_th`,
/// and always above `max_th`.
struct RedConfig {
  Bytes min_th = 16 * 1024;
  Bytes max_th = 64 * 1024;
  double max_p = 0.1;
  double weight = 0.002;  ///< EWMA gain for the average queue
};

class DropTailEcnQueue {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t marked = 0;
    Bytes max_occupancy = 0;  ///< high-water mark over the run
  };

  /// `capacity`: byte limit of the buffer; `ecn_threshold` (K): occupancy
  /// above which arriving ECT packets are marked CE. `ecn_threshold <= 0`
  /// disables marking (plain drop-tail).
  DropTailEcnQueue(Bytes capacity, Bytes ecn_threshold);

  /// Switches the queue to RED marking (replacing the instantaneous-K
  /// rule). `rng` supplies the probabilistic marking decisions and must
  /// outlive the queue.
  void EnableRed(const RedConfig& config, Rng* rng);
  bool RedEnabled() const { return red_rng_ != nullptr; }
  double AverageQueue() const { return red_avg_; }

  /// Attempts to enqueue; returns false (and counts a drop) when the packet
  /// does not fit. The stored copy's CE codepoint may be set.
  bool Enqueue(const Packet& pkt);

  /// Removes and returns the head packet, or nullopt when empty.
  /// Standalone-queue API: not usable while service staging is active.
  std::optional<Packet> Dequeue();

  /// Zero-copy drain used by the reference (copy-chain) transmitter: the
  /// head queued packet in place, then an explicit pop.
  /// Preconditions: !Empty().
  const Packet& Front() const { return queue_.At(QueuedBase()); }
  void PopFront();

  bool Empty() const { return PacketCount() == 0; }
  /// Packets awaiting service (the *queued* region only: a packet being
  /// serialized or propagating on the wire no longer occupies the buffer,
  /// exactly as before staging — see BeginService).
  std::size_t PacketCount() const {
    return queue_.Size() - n_propagating_ - (serving_ ? 1u : 0u);
  }
  Bytes OccupancyBytes() const { return occupancy_; }

  // -------------------------------------------------------------------------
  // Staged service: the one-copy egress pipeline. The backing FIFO holds,
  // in arrival order from the front, [propagating | serving | queued]
  // regions; a packet is copied exactly once (Enqueue's slot store) and
  // then *stays in place* while it serializes and propagates — the
  // transitions below only move region boundaries. Occupancy, drop-tail
  // admission, and ECN marking all read the queued region alone, so the
  // buffer model is bit-identical to the copy-chain path this replaces.
  // The EgressPort is the only caller; standalone queues (tests, RED
  // harnesses) never stage and see the legacy behavior unchanged.

  /// Front queued packet -> serving: leaves the buffer accounting
  /// (occupancy excludes it, as a serializing packet lives in the port's
  /// in-flight register). Returns the serving slot. Preconditions:
  /// !Empty(), no packet already serving.
  const Packet& BeginService();
  /// The packet currently serializing. Precondition: a BeginService is
  /// outstanding.
  const Packet& Serving() const {
    DCTCPP_DASSERT(serving_);
    return queue_.At(n_propagating_);
  }
  /// Serving -> propagating, in place (the unsharded wire).
  void FinishServiceToWire();
  /// Removes the serving packet (sharded mode: its bytes were copied into
  /// the peer shard's arrival calendar). Precondition: no propagating
  /// region (sharded ports never have one).
  void DropServing();

  std::size_t PropagatingCount() const { return n_propagating_; }
  /// Oldest in-flight packet — the next to be delivered. Precondition:
  /// PropagatingCount() > 0.
  const Packet& PropagatingFront() const {
    DCTCPP_DASSERT(n_propagating_ > 0);
    return queue_.Front();
  }
  /// The i-th in-flight packet (0 = PropagatingFront), for delivery
  /// prefetch. Precondition: i < PropagatingCount().
  const Packet& PropagatingAt(std::size_t i) const {
    DCTCPP_DASSERT(i < n_propagating_);
    return queue_.At(i);
  }
  /// Retires the delivered head of the propagating region.
  void PopPropagating();

  /// Recomputes occupancy by walking the resident *queued* packets — the
  /// ground truth the incrementally-maintained `OccupancyBytes()` must
  /// match. O(n); used by the egress port's amortized buffer audit.
  Bytes ComputeOccupancyBytes() const {
    Bytes total = 0;
    for (std::size_t i = QueuedBase(); i < queue_.Size(); ++i) {
      total += queue_.At(i).WireSize();
    }
    return total;
  }
  Bytes capacity() const { return capacity_; }
  Bytes ecn_threshold() const { return ecn_threshold_; }

  const Stats& stats() const { return stats_; }

  /// Checkpoint: resident packets (FIFO order), occupancy, stats, and the
  /// RED average. Configuration (capacity, K, RED parameters, RNG binding)
  /// is reconstructed by rebuilding the topology.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  bool RedShouldMark();

  /// FIFO index of the first queued packet (past the staged regions).
  std::size_t QueuedBase() const {
    return n_propagating_ + (serving_ ? 1u : 0u);
  }

  Bytes capacity_;
  Bytes ecn_threshold_;
  Bytes occupancy_ = 0;
  PacketFifo queue_;
  std::size_t n_propagating_ = 0;  ///< staged region sizes; see BeginService
  bool serving_ = false;
  Stats stats_;

  RedConfig red_config_;
  Rng* red_rng_ = nullptr;  ///< non-null iff RED is enabled
  double red_avg_ = 0.0;
};

}  // namespace dctcpp
