// Drop-tail FIFO with DCTCP-style ECN marking.
//
// Models a static per-port shared-buffer switch queue (the paper's NetFPGA
// switch: 128 KB per port, marking threshold K = 32 KB). Marking is against
// the *instantaneous* queue occupancy at enqueue time, as specified by
// DCTCP: every arriving ECN-capable packet is marked CE while occupancy
// exceeds K. Packets from non-ECN transports are never marked, only
// dropped when the buffer is full.
#pragma once

#include <cstdint>
#include <optional>

#include "dctcpp/net/packet.h"
#include "dctcpp/net/packet_ring.h"
#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

/// RED (random early detection) marking parameters — the classic AQM the
/// DCTCP work compares its instantaneous-threshold marking against. The
/// average queue is an EWMA updated per arrival; ECT packets are marked
/// with probability ramping from 0 at `min_th` to `max_p` at `max_th`,
/// and always above `max_th`.
struct RedConfig {
  Bytes min_th = 16 * 1024;
  Bytes max_th = 64 * 1024;
  double max_p = 0.1;
  double weight = 0.002;  ///< EWMA gain for the average queue
};

class DropTailEcnQueue {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t marked = 0;
    Bytes max_occupancy = 0;  ///< high-water mark over the run
  };

  /// `capacity`: byte limit of the buffer; `ecn_threshold` (K): occupancy
  /// above which arriving ECT packets are marked CE. `ecn_threshold <= 0`
  /// disables marking (plain drop-tail).
  DropTailEcnQueue(Bytes capacity, Bytes ecn_threshold);

  /// Switches the queue to RED marking (replacing the instantaneous-K
  /// rule). `rng` supplies the probabilistic marking decisions and must
  /// outlive the queue.
  void EnableRed(const RedConfig& config, Rng* rng);
  bool RedEnabled() const { return red_rng_ != nullptr; }
  double AverageQueue() const { return red_avg_; }

  /// Attempts to enqueue; returns false (and counts a drop) when the packet
  /// does not fit. The stored copy's CE codepoint may be set.
  bool Enqueue(const Packet& pkt);

  /// Removes and returns the head packet, or nullopt when empty.
  std::optional<Packet> Dequeue();

  /// Zero-copy drain used by the transmitter: the head packet in place,
  /// then an explicit pop. Preconditions: !Empty().
  const Packet& Front() const { return queue_.Front(); }
  void PopFront();

  bool Empty() const { return queue_.Empty(); }
  std::size_t PacketCount() const { return queue_.Size(); }
  Bytes OccupancyBytes() const { return occupancy_; }

  /// Recomputes occupancy by walking the resident packets — the ground
  /// truth the incrementally-maintained `OccupancyBytes()` must match.
  /// O(n); used by the egress port's amortized buffer-accounting audit.
  Bytes ComputeOccupancyBytes() const {
    Bytes total = 0;
    queue_.ForEach([&](const Packet& pkt) { total += pkt.WireSize(); });
    return total;
  }
  Bytes capacity() const { return capacity_; }
  Bytes ecn_threshold() const { return ecn_threshold_; }

  const Stats& stats() const { return stats_; }

  /// Checkpoint: resident packets (FIFO order), occupancy, stats, and the
  /// RED average. Configuration (capacity, K, RED parameters, RNG binding)
  /// is reconstructed by rebuilding the topology.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  bool RedShouldMark();

  Bytes capacity_;
  Bytes ecn_threshold_;
  Bytes occupancy_ = 0;
  PacketFifo queue_;
  Stats stats_;

  RedConfig red_config_;
  Rng* red_rng_ = nullptr;  ///< non-null iff RED is enabled
  double red_avg_ = 0.0;
};

}  // namespace dctcpp
