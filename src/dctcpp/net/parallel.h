// Conservative time-windowed parallel execution of one simulated world.
//
// A `ParallelSimulation` splits a topology into S shards, each a full
// `Simulator` (own wheel, arena, invariant recorder) holding a subset of
// the hosts and switches. The only interaction between nodes is packet
// propagation over links, and every link imposes a positive propagation
// delay, so the minimum delay over all links is a *lookahead* W: an event
// executed anywhere at time t cannot influence another node before t + W.
// The coordinator exploits this the classic conservative-PDES way — run
// every shard independently over the half-open window [gn, gn + W), where
// gn is the globally earliest pending event, then exchange cross-shard
// packets at a barrier and repeat.
//
// Determinism is the design center: a run with S shards is bit-identical
// to the same run with 1 shard. The ingredients, each individually
// shard-count-invariant:
//
//  - Window sequence. Every window is [gn, min(gn + W, deadline + 1))
//    with gn the global minimum next-event time. gn is a property of the
//    simulation state (inductively identical across S), W is the minimum
//    over ALL links (observed during construction, independent of the
//    partition), so all S execute the identical window sequence.
//  - Delivery order. In sharded mode every packet delivery — cross-shard
//    AND intra-shard — goes through the destination shard's arrival
//    calendar, keyed (arrival tick, port id << 32 | per-port wire
//    sequence). Port ids come from a shared construction-time sequence
//    (Simulator::NextPortId) fixed by topology-build order; wire sequence
//    is the per-port FIFO position. At any tick, calendar deliveries run
//    before wheel events in ascending key order — a total order that
//    mentions nothing about shards.
//  - Stop. Simulator::Stop() from inside a shard sets a shared flag that
//    the coordinator honors only between windows, so the stopping window
//    — raised by the same event in the same window everywhere — is the
//    last window for every S.
//  - Per-entity randomness. Sockets and RED-enabled ports draw from
//    private streams derived from (seed, stable entity id), never from a
//    shared run RNG whose draw order would depend on thread interleaving.
//
// Wheel interleaving within a shard needs no special care: a node's own
// events keep their relative insertion order whatever else shares the
// wheel (the scheduler's (time, insertion-seq) contract), nodes touch no
// common state except through the calendar, and cross-node counters are
// commutative sums.
//
// Note the promise is S-vs-S invariance, not equality with the legacy
// single-Simulator path: at equal-tick collisions the legacy engine orders
// deliveries by wheel insertion while the calendar orders by port id, so
// the two engines are separately deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dctcpp/net/link.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/invariants.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

/// Saturating tick addition (deadlines may be kTickMax).
inline Tick SatAddTick(Tick a, Tick b) {
  return a > kTickMax - b ? kTickMax : a + b;
}

/// One packet handed from an egress port to a (possibly remote) shard:
/// due at `at`, delivered to `sink` in ascending (at, key) order.
struct CalendarEntry {
  Tick at = 0;
  std::uint64_t key = 0;  ///< port gid << 32 | per-port wire sequence
  PacketSink* sink = nullptr;
  Packet pkt;
};

/// Min-heap of pending arrivals for one shard, ordered by (at, key). Keys
/// are unique (per-port sequences never repeat), so the order is total
/// and independent of insertion order — mailbox merges can append in any
/// order without affecting delivery order.
class ArrivalCalendar {
 public:
  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Earliest due tick, or kTickMax when empty.
  Tick NextTime() const { return heap_.empty() ? kTickMax : heap_[0].at; }

  void Push(const CalendarEntry& e) {
    heap_.push_back(e);
    SiftUp(heap_.size() - 1);
  }

  /// Removes and returns the earliest entry. Precondition: !Empty().
  CalendarEntry PopEarliest();

 private:
  static bool Before(const CalendarEntry& a, const CalendarEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  std::vector<CalendarEntry> heap_;
};

/// Spin-synchronized gang that fans a window's shard list over pool
/// helpers plus the calling thread. Built for windows a handful of
/// microseconds of work wide: publishing a window is one release store,
/// helpers spin (pause, then yield) between windows instead of taking a
/// mutex, and task claiming is an epoch-tagged CAS so a laggard from the
/// previous window can never steal or double-run a task. The caller
/// participates in every window, so completion never depends on the pool
/// actually scheduling the helpers.
class WindowGang {
 public:
  using Task = std::function<void(int)>;

  /// Posts `helpers` long-lived spinner tasks onto `pool`; each window's
  /// task indices are passed to `task`.
  WindowGang(ThreadPool& pool, int helpers, Task task);

  /// Releases the helpers (they exit their spin loops promptly; the pool
  /// joins them at its own destruction).
  ~WindowGang();

  WindowGang(const WindowGang&) = delete;
  WindowGang& operator=(const WindowGang&) = delete;

  /// Runs task indices [0, n) across the gang; returns when all n have
  /// completed. All writes made by the caller before Run are visible to
  /// every task; all writes made by tasks are visible to the caller after
  /// Run returns.
  void Run(int n);

 private:
  struct State {
    std::atomic<std::uint64_t> seq{0};    ///< published window number
    std::atomic<std::uint64_t> claim{0};  ///< seq << 32 | next task index
    std::atomic<std::uint32_t> done{0};   ///< tasks completed this window
    std::atomic<bool> exit{false};
    /// Task count, double-buffered by window parity. A helper parked on
    /// the finished window w's terminal claim (w, n) must keep reading
    /// *w's* count after the caller started window w+1 — a single slot
    /// would let it pass the bounds check with w+1's larger count and
    /// CAS-claim a slot of the dead window before the new epoch lands.
    std::atomic<int> count[2] = {0, 0};
  };

  static void ClaimLoop(State& s, std::uint64_t my_seq, const Task& task);

  // Heap-shared with the helper lambdas: a helper that outlives this
  // object (still spinning when the destructor's exit bump lands) touches
  // only the State, never the gang or its owner.
  std::shared_ptr<State> state_;
  Task task_;
  std::uint64_t next_seq_ = 0;
};

/// Coordinator owning the S shard Simulators of one world. Topology
/// construction goes through Network(ParallelSimulation&), which assigns
/// nodes to shards and reports every link's propagation delay here; the
/// workload then drives the run with RunUntil.
class ParallelSimulation {
 public:
  /// All shards share `seed` (stream ids, not draw interleaving, separate
  /// consumers) and the construction-time id sequences.
  ParallelSimulation(std::uint64_t seed, int shards);

  ParallelSimulation(const ParallelSimulation&) = delete;
  ParallelSimulation& operator=(const ParallelSimulation&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Simulator& shard(int i) { return shards_[static_cast<std::size_t>(i)]->sim; }

  /// Called by the topology builder for every link direction; the minimum
  /// becomes the synchronization window W. Zero-delay links would destroy
  /// the lookahead and are rejected in sharded mode.
  void ObserveLinkDelay(Tick propagation_delay) {
    DCTCPP_ASSERT(propagation_delay > 0);
    if (propagation_delay < lookahead_) lookahead_ = propagation_delay;
  }
  Tick lookahead() const { return lookahead_; }

  /// Deposits a packet due at `at` into shard `dst`'s arrival calendar
  /// (directly when src == dst — single-threaded owner — else via the
  /// source shard's outbox, merged by the coordinator at the barrier).
  /// Called by EgressPort::FinishTransmission on the shard's thread.
  void Handoff(int src, int dst, Tick at, std::uint64_t key,
               PacketSink* sink, const Packet& pkt);

  /// Runs every shard to `deadline` (inclusive, as Simulator::RunUntil)
  /// in lockstep lookahead windows. Windows with more than one active
  /// shard are fanned over `pool` (nullptr or empty pool: coordinator
  /// runs everything inline). Returns the number of windows executed.
  std::uint64_t RunUntil(Tick deadline, ThreadPool* pool = nullptr);

  /// True once a shard called Simulator::Stop() and the coordinator
  /// honored it at a window boundary.
  bool stopped() const { return stopped_; }

  // --- merged run statistics -------------------------------------------
  /// Wheel events plus calendar deliveries across all shards.
  std::uint64_t events_executed() const;
  std::uint64_t packets_forwarded() const;
  NetworkInvariants::Ledger MergedLedger() const;
  /// Per-shard violations summed, plus one if the merged ledger fails the
  /// consistency check that per-shard recorders must defer (a packet is
  /// born on one shard and retired on another).
  std::uint64_t invariant_violations() const;
  std::string first_violation() const;

  // Window-loop instrumentation (micro_shard_handoff / parallel_scale).
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t gang_windows() const { return gang_windows_; }
  std::uint64_t calendar_deliveries() const;
  std::uint64_t cross_shard_handoffs() const;
  /// Events (wheel + calendar) executed by shard `i`. The maximum share
  /// bounds the achievable parallel speedup: total / max.
  std::uint64_t shard_events(int i) {
    Shard& sh = *shards_[static_cast<std::size_t>(i)];
    return sh.sim.scheduler().executed() + sh.delivered;
  }

  SharedSequences& sequences() { return sequences_; }

 private:
  struct Shard {
    explicit Shard(std::uint64_t seed) : sim(seed) {}
    Simulator sim;
    ArrivalCalendar calendar;
    /// Cross-shard deposits made during the current window, one vector
    /// per destination shard; written only by this shard's runner,
    /// drained only by the coordinator between windows.
    std::vector<std::vector<CalendarEntry>> outbox;
    std::uint64_t delivered = 0;       ///< calendar deliveries executed
    std::uint64_t cross_deposits = 0;  ///< entries that left this shard
  };

  /// Earliest pending work (wheel or calendar) of one shard.
  Tick ShardNext(Shard& sh) {
    return std::min(sh.sim.scheduler().NextTime(), sh.calendar.NextTime());
  }

  /// Runs one shard's slice of the window [*, end): wheel events and
  /// calendar deliveries interleaved in canonical order, deliveries first
  /// at equal ticks.
  void RunShardWindow(int idx, Tick end);

  /// Drains every shard's outbox into the destination calendars.
  void MergeOutboxes();

  std::uint64_t seed_;
  Tick lookahead_ = kTickMax;
  SharedSequences sequences_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> active_;  ///< shard ids of the window being dispatched
  Tick window_end_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t gang_windows_ = 0;
};

}  // namespace dctcpp
