// Conservative time-windowed parallel execution of one simulated world.
//
// A `ParallelSimulation` splits a topology into S shards, each a full
// `Simulator` (own wheel, arena, invariant recorder) holding a subset of
// the hosts and switches. The only interaction between nodes is packet
// propagation over links, and every link imposes a positive propagation
// delay, so cross-shard influence is bounded below by link delays: an
// event executed on shard i at time t cannot affect shard j before
// t + (the cheapest delay of any i->j influence path). The coordinator
// exploits this the classic conservative-PDES way — run every shard
// independently over a window it cannot be influenced within, then
// exchange cross-shard packets at a barrier and repeat.
//
// Two lookahead modes share the loop:
//
//  - kChannelClock (default). Each directed shard pair carries a channel
//    whose weight is the minimum propagation delay of any link crossing
//    it; R = the min-plus transitive closure of that channel graph over
//    paths with >= 1 hop (so R[j][j] is the cheapest round trip through
//    other shards, not 0). At a barrier where shard i's earliest pending
//    work is next_i, shard j's incoming channel clock is
//        C_j = min(deadline + 1, min over all i of next_i + R[i][j])
//    and j may run every event with tick < C_j. Windows widen from "one
//    min-link-delay" to "until the next cross-shard arrival actually
//    possible", collapsing thousands of near-empty windows when traffic
//    is sparse (timeout lulls, connection stagger). C_j is provably
//    non-decreasing across windows (see DESIGN.md Sec. 10); the engine
//    checks that, plus merge causality, on every window.
//  - kFixedWindow. The PR-5 oracle: one global window [gn, gn + W) with
//    W = min link delay over the whole topology. Kept as a runtime
//    reference mode; tests and benches assert the two modes are
//    bit-identical.
//
// Execution is batched in kChannelClock mode: horizons cannot reduce the
// number of causality barriers during a concurrent phase (the hop cadence
// binds both modes), but they let the coordinator publish ONE WindowGang
// window spanning the whole phase. Helpers stay resident inside it and
// sub-rounds advance via a closer protocol (BatchState below): per shard
// run one claim-CAS + one done-increment, per sub-round one serial merge
// + one release store — no re-publish, no helper wake. Stretches with
// <= 1 active shard run inline as relay segments with zero atomics.
// windows_run counts publishes/segments; sync_rounds counts barriers.
//
// Determinism is the design center: a run is bit-identical across shard
// counts AND lookahead modes. The ingredients:
//
//  - Executed set. Windows only chunk each shard's canonical event
//    sequence; they never reorder it (wheel events pop in (time, seq)
//    order, calendar deliveries in (tick, key) order, deliveries before
//    wheel events at equal ticks). The run always ends at the same
//    canonical point — the queues drain or the deadline passes — so the
//    executed set is identical however execution was chunked.
//  - Delivery order. In sharded mode every packet delivery — cross-shard
//    AND intra-shard — goes through the destination shard's arrival
//    calendar, keyed (arrival tick, port id << 32 | per-port wire
//    sequence). Port ids come from a shared construction-time sequence
//    (Simulator::NextPortId) fixed by topology-build order; wire sequence
//    is the per-port FIFO position. At any tick, calendar deliveries run
//    before wheel events in ascending key order — a total order that
//    mentions nothing about shards or windows.
//  - Stop = quiesce. Simulator::Stop() from inside a shard marks the run
//    stopped, but the coordinator keeps windowing until the world drains
//    (or the deadline passes). Shards overshoot a mid-window stop by
//    partition-dependent amounts; running to quiescence makes the final
//    executed set "every reachable event" — partition-independent — at
//    the cost of a short deterministic tail (in-flight ACKs, one delayed
//    ACK per receiver). Workloads that stop must therefore quiesce once
//    no new work is issued; endless background flows would drain forever
//    and stay unsupported in sharded mode.
//  - Per-entity randomness. Sockets and RED-enabled ports draw from
//    private streams derived from (seed, stable entity id), never from a
//    shared run RNG whose draw order would depend on thread interleaving.
//
// Wheel interleaving within a shard needs no special care: a node's own
// events keep their relative insertion order whatever else shares the
// wheel (the scheduler's (time, insertion-seq) contract), nodes touch no
// common state except through the calendar, and cross-node counters are
// commutative sums.
//
// Note the promise is invariance across {shard count, mode, pool}, not
// equality with the legacy single-Simulator path: at equal-tick collisions
// the legacy engine orders deliveries by wheel insertion while the
// calendar orders by port id, so the two engines are separately
// deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dctcpp/net/link.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/invariants.h"
#include "dctcpp/util/thread_pool.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

/// Saturating tick addition (deadlines may be kTickMax).
inline Tick SatAddTick(Tick a, Tick b) {
  return a > kTickMax - b ? kTickMax : a + b;
}

/// One packet handed from an egress port to a (possibly remote) shard:
/// due at `at`, delivered to `sink` in ascending (at, key) order.
struct CalendarEntry {
  Tick at = 0;
  std::uint64_t key = 0;  ///< port gid << 32 | per-port wire sequence
  PacketSink* sink = nullptr;
  Packet pkt;
};

/// Min-heap of pending arrivals for one shard, ordered by (at, key). Keys
/// are unique (per-port sequences never repeat), so the order is total
/// and independent of insertion order — mailbox merges can append in any
/// order without affecting delivery order.
class ArrivalCalendar {
 public:
  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Earliest due tick, or kTickMax when empty.
  Tick NextTime() const { return heap_.empty() ? kTickMax : heap_[0].at; }

  void Push(const CalendarEntry& e) {
    DCTCPP_DASSERT(staged_ == 0);
    heap_.push_back(e);
    SiftUp(heap_.size() - 1);
  }

  /// Bulk-insert half 1: appends without restoring heap order. Must be
  /// followed by FinishBulk() before any NextTime/PopEarliest. The merge
  /// barrier uses this so a window's worth of cross-shard handoffs costs
  /// one heap repair instead of one sift per packet.
  void AppendRaw(const CalendarEntry& e) {
    heap_.push_back(e);
    ++staged_;
  }

  /// Bulk-insert half 2: restores the heap invariant — k sift-ups when
  /// the batch is small against the heap, one O(n) rebuild when it is a
  /// sizable fraction of it.
  void FinishBulk();

  /// Removes and returns the earliest entry. Precondition: !Empty().
  CalendarEntry PopEarliest();

  /// The earliest entry in place, without removing it (the drain loop's
  /// lookahead prefetch). Precondition: !Empty().
  const CalendarEntry& PeekEarliest() const {
    DCTCPP_DASSERT(!heap_.empty());
    return heap_[0];
  }

  /// Checkpoint: entries in raw heap-array order (a valid heap layout
  /// restored verbatim is a valid heap and reproduces pop tie-breaking
  /// bit-identically). Sink pointers never serialize — LoadState
  /// re-resolves each entry's sink from its key via `sink_for_key`
  /// (the coordinator's port-gid registry).
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r,
                 const std::function<PacketSink*(std::uint64_t)>& sink_for_key);

 private:
  static bool Before(const CalendarEntry& a, const CalendarEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  std::vector<CalendarEntry> heap_;
  std::size_t staged_ = 0;  ///< trailing entries awaiting FinishBulk
};

/// Cross-shard deposits made by one shard during the current window,
/// struct-of-arrays: the handoff hot path appends to dense parallel
/// columns (no per-entry allocation once warm; vectors keep capacity
/// across windows), and the coordinator's merge is a branch-light linear
/// scan over the columns it needs before it ever touches a Packet.
struct OutboxStaging {
  std::vector<Tick> at;
  std::vector<std::uint64_t> key;
  std::vector<std::int32_t> dst;
  std::vector<PacketSink*> sink;
  std::vector<Packet> pkt;

  std::size_t Size() const { return at.size(); }
  bool Empty() const { return at.empty(); }

  void Append(Tick t, std::uint64_t k, int d, PacketSink* s,
              const Packet& p) {
    at.push_back(t);
    key.push_back(k);
    dst.push_back(static_cast<std::int32_t>(d));
    sink.push_back(s);
    pkt.push_back(p);
  }

  void Clear() {
    at.clear();
    key.clear();
    dst.clear();
    sink.clear();
    pkt.clear();
  }
};

/// Spin-synchronized gang that fans a window's shard list over pool
/// helpers plus the calling thread. Built for windows a handful of
/// microseconds of work wide: publishing a window is one release store,
/// helpers wait between windows with an escalating backoff (pause, then
/// bounded yields, then short sleeps — so an oversubscribed gang degrades
/// to sleeping helpers instead of burning a core each) and task claiming
/// is an epoch-tagged CAS so a laggard from the previous window can never
/// steal or double-run a task. The caller participates in every window,
/// so completion never depends on the pool actually scheduling the
/// helpers.
class WindowGang {
 public:
  using Task = std::function<void(int)>;

  /// Posts `helpers` long-lived spinner tasks onto `pool`; each window's
  /// task indices are passed to `task`.
  WindowGang(ThreadPool& pool, int helpers, Task task);

  /// Releases the helpers (they exit their spin loops promptly; the pool
  /// joins them at its own destruction).
  ~WindowGang();

  WindowGang(const WindowGang&) = delete;
  WindowGang& operator=(const WindowGang&) = delete;

  /// Runs task indices [0, n) across the gang; returns when all n have
  /// completed. All writes made by the caller before Run are visible to
  /// every task; all writes made by tasks are visible to the caller after
  /// Run returns.
  void Run(int n);

 private:
  struct State {
    std::atomic<std::uint64_t> seq{0};    ///< published window number
    std::atomic<std::uint64_t> claim{0};  ///< seq << 32 | next task index
    std::atomic<std::uint32_t> done{0};   ///< tasks completed this window
    std::atomic<bool> exit{false};
    /// Task count, double-buffered by window parity. A helper parked on
    /// the finished window w's terminal claim (w, n) must keep reading
    /// *w's* count after the caller started window w+1 — a single slot
    /// would let it pass the bounds check with w+1's larger count and
    /// CAS-claim a slot of the dead window before the new epoch lands.
    std::atomic<int> count[2] = {0, 0};
  };

  static void ClaimLoop(State& s, std::uint64_t my_seq, const Task& task);

  // Heap-shared with the helper lambdas: a helper that outlives this
  // object (still spinning when the destructor's exit bump lands) touches
  // only the State, never the gang or its owner.
  std::shared_ptr<State> state_;
  Task task_;
  std::uint64_t next_seq_ = 0;
};

/// Lookahead strategy of the coordinator's window loop; see file header.
enum class LookaheadMode {
  kChannelClock,  ///< per-shard adaptive horizons (production)
  kFixedWindow,   ///< global [gn, gn + min-link-delay) windows (oracle)
};

/// Coordinator owning the S shard Simulators of one world. Topology
/// construction goes through Network(ParallelSimulation&), which assigns
/// nodes to shards and reports every link's propagation delay here; the
/// workload then drives the run with RunUntil.
class ParallelSimulation {
 public:
  /// All shards share `seed` (stream ids, not draw interleaving, separate
  /// consumers) and the construction-time id sequences.
  ParallelSimulation(std::uint64_t seed, int shards);

  ParallelSimulation(const ParallelSimulation&) = delete;
  ParallelSimulation& operator=(const ParallelSimulation&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Simulator& shard(int i) { return shards_[static_cast<std::size_t>(i)]->sim; }

  void set_lookahead_mode(LookaheadMode mode) { mode_ = mode; }
  LookaheadMode lookahead_mode() const { return mode_; }

  /// Called by the topology builder for every link direction; the minimum
  /// becomes the fixed-window mode's synchronization window W. Zero-delay
  /// links would destroy the lookahead and are rejected in sharded mode.
  void ObserveLinkDelay(Tick propagation_delay) {
    DCTCPP_ASSERT(propagation_delay > 0);
    if (propagation_delay < lookahead_) lookahead_ = propagation_delay;
  }
  Tick lookahead() const { return lookahead_; }

  /// Called by EgressPort construction for every link whose endpoints sit
  /// on different shards: the (src, dst) channel's minimum delay feeds the
  /// channel-clock influence closure. Intra-shard links are irrelevant
  /// here — their deliveries stay inside one shard's in-order window run,
  /// and as intermediate hops they only lengthen a cross-shard path.
  void ObserveChannel(int src, int dst, Tick propagation_delay);

  /// Channel pruning: restricts the channel-clock closure to the shard
  /// pairs in `allowed` (row-major S x S, nonzero = traffic possible).
  /// A fabric that knows its connection matrix can prove most directed
  /// pairs carry no packet ever — every ECMP member of every flow's path,
  /// both directions, stays inside the allowed set — and pruning them
  /// gives the remaining pairs (often: everyone) infinite lookahead from
  /// those directions, so e.g. pod-local incast rows under a pod-boundary
  /// partition run barrier-free to the deadline. The claim is verified,
  /// not trusted: a cross-shard handoff on a pruned pair increments a
  /// per-shard violation counter folded into invariant_violations() (and
  /// the merge-horizon check would also fire), so a wrong mask is loud,
  /// never a silent mis-simulation. Fixed-window mode ignores the mask —
  /// the PR-5 oracle stays fully conservative, and bit-identity between
  /// modes still holds because lookahead never affects the executed set.
  /// Call after topology construction, before RunUntil.
  void RestrictChannels(std::vector<std::uint8_t> allowed);

  /// Cross-shard handoffs that crossed a pruned channel (expected 0).
  std::uint64_t pruned_channel_handoffs() const;

  /// Deposits a packet due at `at` into shard `dst`'s arrival calendar
  /// (directly when src == dst — single-threaded owner — else via the
  /// source shard's SoA staging buffer, merged by the coordinator at the
  /// barrier). Called by EgressPort::FinishTransmission on the shard's
  /// thread.
  void Handoff(int src, int dst, Tick at, std::uint64_t key,
               PacketSink* sink, const Packet& pkt);

  /// Runs every shard to `deadline` (inclusive, as Simulator::RunUntil)
  /// in lockstep lookahead windows. Windows with more than one active
  /// shard are fanned over `pool` (nullptr or empty pool: coordinator
  /// runs everything inline). Returns the number of windows executed.
  std::uint64_t RunUntil(Tick deadline, ThreadPool* pool = nullptr);

  /// True once a shard called Simulator::Stop() during the run. The
  /// coordinator still drains the world to quiescence first — see the
  /// "Stop = quiesce" note in the file header.
  bool stopped() const { return stopped_; }

  // --- merged run statistics -------------------------------------------
  /// Wheel events plus calendar deliveries across all shards.
  std::uint64_t events_executed() const;
  std::uint64_t packets_forwarded() const;
  NetworkInvariants::Ledger MergedLedger() const;
  /// Per-shard violations summed, plus one if the merged ledger fails the
  /// consistency check that per-shard recorders must defer (a packet is
  /// born on one shard and retired on another), plus any coordinator
  /// violations: a merge that lands behind a shard's run horizon, or a
  /// channel clock that regressed.
  std::uint64_t invariant_violations() const;
  std::string first_violation() const;

  // Window-loop instrumentation (micro_shard_handoff / parallel_scale).
  /// Windows dispatched by the coordinator. In adaptive mode a window is
  /// one published execution segment — a gang publish spanning a whole
  /// concurrent phase (many sub-rounds), or one inline sequential relay
  /// segment — so this counts how often the engine had to start a fresh
  /// dispatch, not how many causality barriers it crossed (sync_rounds()
  /// keeps that). In fixed-window mode every barrier is its own publish,
  /// PR-5 style, which is exactly the overhead the adaptive engine
  /// amortizes away. Deterministic: depends on simulation data only,
  /// never on the pool or thread timing.
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t gang_windows() const { return gang_windows_; }
  /// Causality barriers crossed: one per sub-round of a batched window,
  /// per relay hop, and per fixed-mode window. This is the PR-5
  /// windows_run equivalent — the honest "how many times did shards have
  /// to exchange and re-extend horizons" count, bounded below by the
  /// simulation's sequential influence-chain length.
  std::uint64_t sync_rounds() const { return sync_rounds_; }
  std::uint64_t calendar_deliveries() const;
  std::uint64_t cross_shard_handoffs() const;
  /// Coordinator-level causality checks (always on, expected 0): merges
  /// behind a shard's horizon / channel-clock regressions.
  std::uint64_t merge_causality_violations() const {
    return merge_causality_violations_;
  }
  std::uint64_t lookahead_regressions() const {
    return lookahead_regressions_;
  }
  /// Events (wheel + calendar) executed by shard `i`. The maximum share
  /// bounds the achievable parallel speedup: total / max.
  std::uint64_t shard_events(int i) {
    Shard& sh = *shards_[static_cast<std::size_t>(i)];
    return sh.sim.scheduler().executed() + sh.delivered;
  }

  SharedSequences& sequences() { return sequences_; }

  // --- checkpoint/restore (sim/checkpoint.h) ----------------------------

  /// Called by every EgressPort at construction: names `sink` as the
  /// receiver of calendar entries keyed `gid << 32 | wire_seq`, living on
  /// shard `dst_shard`. Deterministic topology builders register gids
  /// densely in construction order, so a rebuilt world re-registers the
  /// identical mapping — which is what lets RestoreCheckpoint re-resolve
  /// saved calendar entries' sink pointers.
  void RegisterPortSink(std::uint64_t gid, PacketSink* sink, int dst_shard);

  /// The sink registered for `gid` (aborts when unknown).
  PacketSink* SinkForGid(std::uint64_t gid) const;

  /// Serializes the whole sharded world. Only valid at a RunUntil return
  /// (barrier): every staging buffer is empty and all in-flight packets
  /// sit in serializable containers (port queues/wires, calendars).
  void SaveCheckpoint(CheckpointWriter& w, const CheckpointHooks* hooks) const;

  /// Restores into a freshly built, never-run world with the same seed,
  /// shard count, and topology. Aborts on structural mismatch.
  void RestoreCheckpoint(CheckpointReader& r, CheckpointHooks* hooks);

 private:
  struct Shard {
    explicit Shard(std::uint64_t seed) : sim(seed) {}
    Simulator sim;
    ArrivalCalendar calendar;
    /// Cross-shard deposits made during the current window; written only
    /// by this shard's runner, drained only by the coordinator between
    /// windows.
    OutboxStaging staging;
    std::uint64_t delivered = 0;       ///< calendar deliveries executed
    std::uint64_t cross_deposits = 0;  ///< entries that left this shard
    /// Highest window end this shard was ever released to run under; a
    /// merged arrival below it would be a causality violation.
    Tick ran_to = 0;
    /// Last incoming channel clock (adaptive mode) for the monotonicity
    /// check.
    Tick clock = 0;
    /// Minimum propagation delay of any link with both endpoints on this
    /// shard: how far the wheel may run blind before an event could have
    /// deposited a new arrival into this shard's own calendar.
    Tick self_delay = kTickMax;
    /// Handoffs this shard deposited onto a pruned channel (written only
    /// by the shard's runner; a violation of the RestrictChannels mask).
    std::uint64_t pruned_handoffs = 0;
  };

  /// Sub-round synchronization of one batched (wide) window. The same
  /// epoch-tagged protocol as WindowGang, one level down: `round` is the
  /// published sub-round, `claim` packs (round's low 32 bits << 32 | next
  /// active-shard index), `count` is double-buffered by round parity. The
  /// participant that completes a sub-round's last shard run becomes the
  /// closer: it merges staging, recomputes horizons, and either publishes
  /// the next sub-round or raises window_over. No participant ever
  /// blocks on another — a lone caller can drain every sub-round itself
  /// — so helpers are an acceleration, never a liveness requirement.
  struct BatchState {
    std::atomic<std::uint64_t> round{0};
    std::atomic<std::uint64_t> claim{0};
    std::atomic<std::uint32_t> done{0};
    std::atomic<int> count[2] = {0, 0};
    std::atomic<bool> window_over{false};
  };

  /// Consecutive <= 1-active sub-rounds before a batched window closes
  /// and hands the run back to the inline relay path (hysteresis so a
  /// one-sub-round activity dip doesn't churn publish/close cycles).
  static constexpr int kQuietRoundsToClose = 8;

  /// Earliest pending work (wheel or calendar) of one shard.
  Tick ShardNext(Shard& sh) {
    return std::min(sh.sim.scheduler().NextTime(), sh.calendar.NextTime());
  }

  /// Recomputes next_[i] for every shard; returns the global minimum.
  Tick RefreshNext();

  /// From next_, fills window_ends_ and active_ for one sub-round under
  /// the adaptive channel-clock rule, maintaining the per-shard clock
  /// monotonicity check and ran_to horizons. Idempotent for a given
  /// next_ (recomputing without running in between changes nothing).
  void ComputeHorizons(Tick dp1);

  /// Runs one shard's slice of the window [*, end): wheel events and
  /// calendar deliveries interleaved in canonical order, deliveries first
  /// at equal ticks.
  void RunShardWindow(int idx, Tick end);

  /// Participant body of a batched window: claim active-shard slots of
  /// the current sub-round, run them, close the sub-round if last, wait
  /// for the next sub-round otherwise, until window_over. Executed by
  /// the caller and (as the adaptive gang task) by pool helpers.
  void RunBatchWindow(Tick dp1);

  /// Serial step run by the sub-round's closer (single-threaded by
  /// construction; successive closers are ordered by the round
  /// publish/acquire chain, so non-atomic coordinator state is safe).
  void CloseSubRound(std::uint64_t r, Tick dp1);

  /// Drains every shard's staging buffer into the destination calendars
  /// (bulk heap repair per calendar), checking each entry against the
  /// destination's run horizon.
  void MergeStaging();

  /// Rebuilds influence_ = min-plus closure of the cross-shard channel
  /// graph over paths with >= 1 hop. O(S^3), run once per RunUntil.
  void ComputeInfluenceClosure();

  std::uint64_t seed_;
  Tick lookahead_ = kTickMax;
  /// Scalar reference mode disables the drain loop's lookahead prefetch
  /// (see util/reference_mode.h); captured at construction like every
  /// other reference-mode flag.
  const bool scalar_ref_ = ScalarReferenceEnabled();
  LookaheadMode mode_ = LookaheadMode::kChannelClock;
  SharedSequences sequences_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Row-major S x S minimum delay of any single link crossing (i, j),
  /// kTickMax where no link does; diagonal unused.
  std::vector<Tick> channel_min_;
  /// Row-major S x S channel mask from RestrictChannels (empty = allow
  /// all). Only the closure seed consults it; channel_min_ keeps the
  /// physical link delays so the mask can be re-applied or audited.
  std::vector<std::uint8_t> channel_allowed_;
  /// Row-major S x S closure: cheapest >= 1-hop influence path i -> j
  /// (diagonal = cheapest round trip through other shards).
  std::vector<Tick> influence_;
  std::vector<int> active_;  ///< shard ids of the sub-round being run
  std::vector<Tick> window_ends_;  ///< per-shard end of the current window
  std::vector<Tick> next_;  ///< per-shard earliest pending, per sub-round
  BatchState batch_;
  Tick batch_dp1_ = 0;    ///< deadline + 1 of the window being batched
  int quiet_rounds_ = 0;  ///< consecutive <= 1-active sub-rounds (closer)
  std::uint64_t windows_ = 0;
  std::uint64_t gang_windows_ = 0;
  std::uint64_t sync_rounds_ = 0;
  std::uint64_t merge_causality_violations_ = 0;
  std::uint64_t lookahead_regressions_ = 0;
  /// Port-gid -> delivery sink, registered at topology construction
  /// (indexed by gid; gids are dense). dst shard rides along for audits.
  std::vector<PacketSink*> port_sinks_;
  std::vector<std::int32_t> port_sink_shard_;
};

}  // namespace dctcpp
