// Deterministic per-link network impairment.
//
// An ImpairmentStage sits at the entrance of an EgressPort and subjects
// every submitted packet to a configurable fault pipeline: scheduled link
// down/up flaps, deterministic forced drops (test hooks), Gilbert–Elliott
// burst loss, independent random loss (the old `LinkConfig::random_loss`,
// migrated here), payload corruption (the packet is delivered but flagged,
// and the receiving host's checksum discards it), duplication, and
// reordering (the packet is held for a jittered delay and re-enters the
// queue behind later arrivals).
//
// Determinism contract: each stage owns a private RNG stream derived from
// (simulator seed, link stream id) — see Simulator::StreamRng. Stream ids
// are claimed in construction order, which the deterministic topology
// builders fix, so a given link's fault pattern is a pure function of the
// run seed and the link's position in the topology: bit-identical across
// thread-pool sizes, across repeated runs, and unchanged when impairment
// is toggled on *other* links.
#pragma once

#include <cstdint>
#include <vector>

#include "dctcpp/net/packet.h"
#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/sim/pinned_event.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/rng.h"
#include "dctcpp/util/time.h"

namespace dctcpp {

class EgressPort;

/// One scheduled outage: the link drops everything submitted in
/// [down_at, up_at). Flaps must be sorted and non-overlapping.
struct LinkFlap {
  Tick down_at = 0;
  Tick up_at = 0;
};

/// Per-link fault model. All probabilities are per submitted packet; every
/// random decision draws from the link's private stream.
struct ImpairmentConfig {
  // --- Gilbert–Elliott burst loss --------------------------------------
  // Two-state Markov chain advanced once per submitted packet: Good
  // drops with `ge_loss_good`, Bad with `ge_loss_bad`. Mean burst length
  // is 1/ge_p_bad_to_good packets; stationary Bad fraction is
  // p_gb / (p_gb + p_bg). Enabled when ge_p_good_to_bad > 0.
  double ge_p_good_to_bad = 0.0;
  double ge_p_bad_to_good = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;

  /// Independent per-packet loss (i.i.d.; the classic `random_loss` knob).
  double random_loss = 0.0;

  /// Per-packet probability of delivering one extra copy, enqueued
  /// immediately behind the original.
  double duplicate_prob = 0.0;

  /// Per-packet probability of flipping payload/header bits. The packet
  /// still traverses the network (switches forward it — the model is an
  /// end-to-end TCP checksum, not a per-hop FCS) and is discarded by the
  /// destination host's checksum verification.
  double corrupt_prob = 0.0;

  // --- reordering -------------------------------------------------------
  /// Per-packet probability of being held for a uniform extra delay in
  /// [reorder_delay_min, reorder_delay_max] before entering the queue,
  /// letting later submissions overtake it.
  double reorder_prob = 0.0;
  Tick reorder_delay_min = 50 * kMicrosecond;
  Tick reorder_delay_max = 500 * kMicrosecond;

  /// Scheduled outages (sorted, non-overlapping).
  std::vector<LinkFlap> flaps;

  // --- deterministic test hooks ----------------------------------------
  /// Drop the nth data packet (payload > 0) / nth pure ACK (no payload,
  /// ACK flag, not SYN/FIN) submitted to this link; 1-based ordinals.
  /// These consume no randomness, so they do not perturb the stream.
  std::vector<std::uint64_t> drop_data_nth;
  std::vector<std::uint64_t> drop_ack_nth;

  /// True when any knob is active (a stage needs to be instantiated).
  bool Any() const {
    return ge_p_good_to_bad > 0.0 || random_loss > 0.0 ||
           duplicate_prob > 0.0 || corrupt_prob > 0.0 ||
           reorder_prob > 0.0 || !flaps.empty() || !drop_data_nth.empty() ||
           !drop_ack_nth.empty();
  }
};

/// Hold buffer for reordered packets: each entry is released no earlier
/// than its release tick; entries sharing a release tick leave in
/// submission order. Standalone so the property test can drive it with
/// randomized schedules (see tests/impairment_test.cc).
class ReorderBuffer {
 public:
  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Earliest release tick. Precondition: !Empty().
  Tick NextRelease() const;

  /// Holds a copy of `pkt` until `release_at`.
  void Hold(const Packet& pkt, Tick release_at);

  /// Pops every entry due at or before `now` — in (release tick,
  /// submission order) — invoking `fn(packet)` for each.
  template <typename F>
  void ReleaseDue(Tick now, F&& fn) {
    while (!heap_.empty() && heap_.front().release_at <= now) {
      Held held = std::move(heap_.front());
      PopTop();
      fn(held.pkt);
    }
  }

  /// Checkpoint: the heap vector is saved in its current array order and
  /// restored verbatim — a valid heap's layout is a valid heap, and the
  /// identical layout reproduces identical pop tie-breaking.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  struct Held {
    Tick release_at;
    std::uint64_t order;  ///< submission counter: FIFO within one tick
    Packet pkt;
  };

  static bool Later(const Held& a, const Held& b) {
    if (a.release_at != b.release_at) return a.release_at > b.release_at;
    return a.order > b.order;  // min-heap on (release_at, order)
  }

  void PopTop();

  std::vector<Held> heap_;  // binary min-heap via std::push_heap/pop_heap
  std::uint64_t next_order_ = 0;
};

/// The per-link fault pipeline. Owned by an EgressPort; consulted once per
/// submitted packet, before the queue.
class ImpairmentStage {
 public:
  struct Stats {
    std::uint64_t submitted = 0;      ///< packets entering the stage
    std::uint64_t random_losses = 0;  ///< i.i.d. loss drops
    std::uint64_t burst_losses = 0;   ///< Gilbert–Elliott drops
    std::uint64_t link_down_losses = 0;
    std::uint64_t forced_losses = 0;  ///< drop_data_nth / drop_ack_nth
    std::uint64_t duplicates = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t reordered = 0;  ///< packets held by the reorder buffer
    std::uint64_t released = 0;   ///< held packets re-injected so far

    std::uint64_t TotalDropped() const {
      return random_losses + burst_losses + link_down_losses + forced_losses;
    }
  };

  /// `port` must outlive the stage (the stage is a member of the port).
  /// Claims the next impairment stream id from `sim`.
  ImpairmentStage(Simulator& sim, const ImpairmentConfig& config,
                  EgressPort& port);

  ImpairmentStage(const ImpairmentStage&) = delete;
  ImpairmentStage& operator=(const ImpairmentStage&) = delete;

  /// Runs one packet through the pipeline. Returns true when the (possibly
  /// corrupted) packet should enter the queue now; false when the stage
  /// consumed it (dropped, or held for later re-injection). `*duplicate`
  /// is set when one extra copy must be enqueued behind the original.
  bool Process(Packet& pkt, bool* duplicate);

  bool link_up() const { return link_up_; }
  const Stats& stats() const { return stats_; }
  std::size_t held_packets() const { return held_.Size(); }

  /// Checkpoint: RNG stream state, Gilbert–Elliott/link/flap cursors,
  /// ordinal counters, stats, the reorder hold, and the release event's
  /// exact wheel arming. Configuration is rebuilt with the topology.
  void SaveState(CheckpointWriter& w) const;
  void LoadState(CheckpointReader& r);

 private:
  /// Advances the flap cursor to `now` and refreshes `link_up_`. The flap
  /// schedule is a pure function of time, so link state needs no events of
  /// its own — it is recomputed whenever a packet passes through.
  void UpdateLinkState(Tick now);
  void OnRelease();
  void ArmRelease();
  void CountDrop(std::uint64_t* counter, const char* site, const Packet& pkt);

  Simulator& sim_;
  ImpairmentConfig config_;
  EgressPort& port_;
  Rng rng_;              ///< private per-link stream
  bool ge_bad_ = false;  ///< Gilbert–Elliott state
  bool link_up_ = true;
  std::size_t next_flap_ = 0;
  std::uint64_t data_seen_ = 0;
  std::uint64_t acks_seen_ = 0;
  ReorderBuffer held_;
  Stats stats_;
  PinnedEvent release_ev_;
};

}  // namespace dctcpp
