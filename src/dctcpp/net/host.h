// End host: a NIC (single uplink) plus a transport demultiplexer.
//
// Transport endpoints (TCP sockets) register themselves by connection
// 4-tuple; listeners register by local port and receive packets for which
// no established connection matches (i.e. incoming SYNs). The Host knows
// nothing about TCP itself, keeping net below tcp in the layering.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "dctcpp/net/link.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {

class Host : public PacketSink {
 public:
  using PacketHandler = std::function<void(const Packet&)>;

  Host(Simulator& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Installs the NIC; called once by the topology builder.
  void AttachUplink(const LinkConfig& config, PacketSink& peer);
  bool HasUplink() const { return uplink_ != nullptr; }
  EgressPort& uplink() { return *uplink_; }

  /// Transmits a packet (source fields must already identify this host).
  void Send(Packet pkt);

  /// Registers an established-connection handler keyed by
  /// (local port, remote host, remote port). At most one per key.
  void RegisterConnection(PortNum local_port, NodeId remote, PortNum rport,
                          PacketHandler handler);
  void UnregisterConnection(PortNum local_port, NodeId remote, PortNum rport);

  /// Registers a listener receiving packets to `local_port` that match no
  /// established connection (e.g. SYNs).
  void Listen(PortNum local_port, PacketHandler handler);
  void StopListening(PortNum local_port);

  /// Allocates an ephemeral source port (unique per host).
  PortNum AllocatePort();

  void Deliver(const Packet& pkt) override;

  /// Packets that matched neither a connection nor a listener.
  std::uint64_t unmatched_packets() const { return unmatched_; }

 private:
  struct ConnKey {
    PortNum local;
    NodeId remote;
    PortNum rport;
    auto operator<=>(const ConnKey&) const = default;
  };

  Simulator& sim_;
  NodeId id_;
  std::string name_;
  std::unique_ptr<EgressPort> uplink_;
  std::map<ConnKey, PacketHandler> connections_;
  std::map<PortNum, PacketHandler> listeners_;
  PortNum next_ephemeral_ = 10000;
  std::uint64_t unmatched_ = 0;
  std::uint64_t next_packet_uid_ = 1;
};

}  // namespace dctcpp
