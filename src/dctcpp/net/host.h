// End host: a NIC (single uplink) plus a transport demultiplexer.
//
// Transport endpoints (TCP sockets) register themselves by connection
// 4-tuple; listeners register by local port and receive packets for which
// no established connection matches (i.e. incoming SYNs). The Host knows
// nothing about TCP itself, keeping net below tcp in the layering.
//
// Demux is the per-packet control-plane hot path: handlers are
// trivially-copyable InlineHandler delegates stored in a flat
// open-addressing FlowTable keyed by the packed 4-tuple (a std::map
// oracle backend remains selectable via SetReferenceFlowTableForTest for
// differential testing — see util/flow_table.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dctcpp/net/link.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/flow_table.h"
#include "dctcpp/util/inline_function.h"

namespace dctcpp {

class Host : public PacketSink, public Checkpointable {
 public:
  using PacketHandler = InlineHandler<void(const Packet&)>;

  Host(Simulator& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {
    sim_.RegisterCheckpointable(this);
  }

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Installs the NIC; called once by the topology builder. `peer_sim`
  /// (the simulator owning `peer`) only matters in sharded mode, where
  /// the NIC port must know its peer's shard.
  void AttachUplink(const LinkConfig& config, PacketSink& peer,
                    Simulator* peer_sim = nullptr);
  bool HasUplink() const { return uplink_ != nullptr; }
  EgressPort& uplink() { return *uplink_; }

  /// Transmits a packet (source fields must already identify this host).
  /// Stamps the conservation uid into the caller's packet in place, so the
  /// NIC enqueue is the only copy on the emission path.
  void Send(Packet& pkt);
  void Send(Packet&& pkt) { Send(pkt); }

  /// Registers an established-connection handler keyed by
  /// (local port, remote host, remote port). At most one per key.
  void RegisterConnection(PortNum local_port, NodeId remote, PortNum rport,
                          PacketHandler handler);
  void UnregisterConnection(PortNum local_port, NodeId remote, PortNum rport);

  /// Registers a listener receiving packets to `local_port` that match no
  /// established connection (e.g. SYNs).
  void Listen(PortNum local_port, PacketHandler handler);
  void StopListening(PortNum local_port);

  /// Allocates an ephemeral source port (unique among this host's live
  /// registrations). Wraps within [10000, 65535) and skips ports still in
  /// use, so long multi-round runs never exhaust the range as long as old
  /// connections unregister.
  PortNum AllocatePort();

  void Deliver(const Packet& pkt) override;

  /// Pulls the demux probe chain for `pkt`'s flow into cache ahead of its
  /// Deliver (see PacketSink::PrefetchDeliver). The one-entry demux cache
  /// makes this redundant within a per-flow run; it pays off exactly at
  /// run boundaries, where the flow-table probe would otherwise miss.
  void PrefetchDeliver(const Packet& pkt) const override {
    connections_.Prefetch(
        PackFlowKey(pkt.tcp.dst_port, pkt.src, pkt.tcp.src_port));
  }

  /// Packets that matched neither a connection nor a listener.
  std::uint64_t unmatched_packets() const { return unmatched_; }

  /// Segments discarded because impairment corrupted them in transit (the
  /// modelled TCP checksum failed on arrival).
  std::uint64_t checksum_drops() const { return checksum_drops_; }

  /// Stable per-host socket stream id: sockets draw their randomness
  /// (ISS, pacing jitter, slow-time evolution) from a private stream
  /// derived from (run seed, this id) so draw order never couples
  /// unrelated flows — the property sharded execution depends on, and a
  /// reproducibility win in its own right. Host ids and per-host creation
  /// order are fixed by the deterministic builders, so the id is
  /// shard-count-invariant.
  std::uint64_t NextSocketStreamId() {
    DCTCPP_ASSERT(next_socket_serial_ < (1ULL << 24));
    return (1ULL << 40) | (static_cast<std::uint64_t>(id_) << 24) |
           next_socket_serial_++;
  }

  /// Checkpoint: scalar counters only. The demux tables, the one-entry
  /// cache, and the port refcounts are rebuilt by sockets/listeners
  /// re-registering during the workload restore phase; this loads *after*
  /// that phase, overwriting the socket-serial counter the re-creation
  /// bumped. The NIC uplink is its own registered Checkpointable.
  void SaveState(CheckpointWriter& w) const override {
    w.U64(next_ephemeral_);
    w.U64(unmatched_);
    w.U64(checksum_drops_);
    w.U64(next_packet_uid_);
    w.U64(next_socket_serial_);
  }
  void LoadState(CheckpointReader& r) override {
    next_ephemeral_ = static_cast<PortNum>(r.U64());
    unmatched_ = r.U64();
    checksum_drops_ = r.U64();
    next_packet_uid_ = r.U64();
    next_socket_serial_ = r.U64();
  }

  /// Forces the next AllocatePort probe position (regression tests for
  /// same-tick port reuse; see tests/workload_test.cc).
  void SetNextEphemeralForTest(PortNum next) { next_ephemeral_ = next; }

 private:
  static constexpr PortNum kEphemeralBase = 10000;

  void MarkPortUsed(PortNum port);
  void MarkPortFree(PortNum port);
  bool PortInUse(PortNum port) const {
    return port < port_refs_.size() && port_refs_[port] != 0;
  }

  Simulator& sim_;
  NodeId id_;
  std::string name_;
  std::unique_ptr<EgressPort> uplink_;
  FlowTable<PacketHandler> connections_;  // keyed by PackFlowKey(...)
  // One-entry demux cache: arrivals come in per-flow runs (a window of
  // segments from one sender drains back-to-back), so the last key repeats
  // and a run costs one flow-table probe instead of one per packet. Holds
  // a *copy* of the handler (InlineHandler is trivially copyable), so table
  // rehashes can't dangle it; Register/Unregister invalidate it.
  std::uint64_t demux_cache_key_ = 0;
  PacketHandler demux_cache_handler_;
  bool demux_cache_valid_ = false;
  FlowTable<PacketHandler> listeners_;    // keyed by local port
  // Per-port registration counts (connections + listeners), sized lazily.
  // Multiple connections share one local port on servers, hence counts.
  std::vector<std::uint32_t> port_refs_;
  PortNum next_ephemeral_ = kEphemeralBase;
  std::uint64_t unmatched_ = 0;
  std::uint64_t checksum_drops_ = 0;
  std::uint64_t next_packet_uid_ = 1;
  std::uint64_t next_socket_serial_ = 0;
};

}  // namespace dctcpp
