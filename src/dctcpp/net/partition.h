// Shard assignment for fabric topologies: maps every plan node of a
// Fabric to one of S shards before the Network is instantiated.
//
// Partition quality is the dominant parallel-engine cost lever: every
// packet whose next hop lives on another shard pays the staging-append /
// calendar-merge path (net/parallel.cc), and the channel-clock closure
// can only widen windows between shard pairs that exchange little. Three
// strategies, from control to production:
//
//  - kRandom. Uniform hash placement — the baseline every partitioning
//    paper compares against; maximal cut, by design.
//  - kPod. Contiguous pods (fat-tree pods / dragonfly groups) per shard.
//    Exploits the topology's locality structure only: edge and agg tiers
//    stay with their hosts, so only core-tier and inter-pod traffic
//    crosses shards.
//  - kMinCut. Greedy min-cut over the *connection matrix* at pod
//    granularity: pods that exchange traffic are co-located, subject to
//    a balance cap. Starts from the traffic-weight ordering and grows
//    each shard by the pod with the highest attraction (total demand
//    weight to pods already in the shard). Beats kPod whenever the
//    workload has structure finer than "uniform" — e.g. incast rows or
//    hotspots spanning pod groups — and matches it on patternless
//    matrices. Deterministic: ties break on pod id.
//
// Pod-less nodes (fat-tree cores) are striped round-robin in every
// strategy — they carry transit traffic for all pods, so no shard is a
// better home than another, but the stripe must be deterministic for
// bit-identical runs.
#pragma once

#include <cstdint>
#include <vector>

#include "dctcpp/net/fabric.h"

namespace dctcpp {

enum class PartitionStrategy { kRandom, kPod, kMinCut };

const char* ToString(PartitionStrategy s);

/// One directed host-to-host demand (bytes or any relative weight) of the
/// connection matrix, as consumed by the min-cut strategy.
struct FlowDemand {
  NodeId src = 0;
  NodeId dst = 0;
  double weight = 1.0;
};

class ShardPartitioner {
 public:
  /// Maps every plan id of `fabric` to a shard in [0, shards).
  /// `demand` is consulted by kMinCut only (empty demand degrades it to
  /// kPod's contiguous blocks). `seed` is consulted by kRandom only.
  static std::vector<int> Assign(const Fabric& fabric, int shards,
                                 PartitionStrategy strategy,
                                 const std::vector<FlowDemand>& demand,
                                 std::uint64_t seed);

  /// Pod -> shard assignment of the greedy min-cut (exposed for tests).
  static std::vector<int> MinCutPods(const Fabric& fabric, int shards,
                                     const std::vector<FlowDemand>& demand);
};

}  // namespace dctcpp
