#include "dctcpp/net/host.h"

#include "dctcpp/util/assert.h"
#include "dctcpp/util/log.h"
#include "dctcpp/util/profile.h"

namespace dctcpp {

void Host::AttachUplink(const LinkConfig& config, PacketSink& peer,
                        Simulator* peer_sim) {
  DCTCPP_ASSERT(uplink_ == nullptr);
  uplink_ = std::make_unique<EgressPort>(sim_, config, peer, peer_sim);
}

void Host::Send(Packet& pkt) {
  DCTCPP_ASSERT(uplink_ != nullptr);
  DCTCPP_ASSERT(pkt.src == id_);
  pkt.uid = (static_cast<std::uint64_t>(id_) + 1) << 40 | next_packet_uid_++;
  // Birth record in the conservation ledger, before the NIC gets a chance
  // to drop it: every originated packet must retire exactly once.
  sim_.invariants().CountOriginated();
  uplink_->Send(pkt);
}

void Host::MarkPortUsed(PortNum port) {
  if (port_refs_.size() <= port) port_refs_.resize(port + std::size_t{1}, 0);
  ++port_refs_[port];
}

void Host::MarkPortFree(PortNum port) {
  DCTCPP_ASSERT(port < port_refs_.size() && port_refs_[port] != 0);
  --port_refs_[port];
}

void Host::RegisterConnection(PortNum local_port, NodeId remote,
                              PortNum rport, PacketHandler handler) {
  DCTCPP_ASSERT(static_cast<bool>(handler));
  demux_cache_valid_ = false;
  connections_.Insert(PackFlowKey(local_port, remote, rport), handler);
  MarkPortUsed(local_port);
}

void Host::UnregisterConnection(PortNum local_port, NodeId remote,
                                PortNum rport) {
  demux_cache_valid_ = false;
  if (connections_.Erase(PackFlowKey(local_port, remote, rport))) {
    MarkPortFree(local_port);
  }
}

void Host::Listen(PortNum local_port, PacketHandler handler) {
  DCTCPP_ASSERT(static_cast<bool>(handler));
  listeners_.Insert(local_port, handler);
  MarkPortUsed(local_port);
}

void Host::StopListening(PortNum local_port) {
  if (listeners_.Erase(local_port)) MarkPortFree(local_port);
}

PortNum Host::AllocatePort() {
  // Wrap within the ephemeral range, skipping ports that still have a
  // live registration. A full cycle without a free port means >55k
  // concurrent registrations on one host — a genuine configuration bug.
  for (int attempts = 0; attempts < 65535 - kEphemeralBase; ++attempts) {
    const PortNum candidate = next_ephemeral_;
    next_ephemeral_ = candidate + 1 == 65535
                          ? kEphemeralBase
                          : static_cast<PortNum>(candidate + 1);
    if (!PortInUse(candidate)) return candidate;
  }
  Log(LogLevel::kError,
      "host %s: ephemeral port range [%u, 65535) exhausted — all %d ports "
      "have live registrations; connections are leaking or the workload "
      "needs more client hosts",
      name_.c_str(), static_cast<unsigned>(kEphemeralBase),
      65535 - kEphemeralBase);
  DCTCPP_ASSERT(false && "ephemeral port range exhausted");
  return 0;
}

void Host::Deliver(const Packet& pkt) {
  DCTCPP_PROFILE_SCOPE(kDemux);
  DCTCPP_ASSERT(pkt.dst == id_);
  if (pkt.corrupted) {
    // The TCP checksum fails verification: the segment is discarded here,
    // before demux, exactly as a real stack drops a bad-checksum segment
    // without any protocol reaction.
    ++checksum_drops_;
    sim_.invariants().CountChecksumDiscard();
    if (LogEnabled(LogLevel::kTrace)) {
      char buf[Packet::kDescribeBufSize];
      Log(LogLevel::kTrace, "host %s: checksum discard %s", name_.c_str(),
          pkt.DescribeTo(buf, sizeof buf));
    }
    return;
  }
  sim_.invariants().CountDelivered();
  const std::uint64_t key =
      PackFlowKey(pkt.tcp.dst_port, pkt.src, pkt.tcp.src_port);
  if (demux_cache_valid_ && demux_cache_key_ == key) {
    // Same flow as the previous delivery: skip the table probe. The cached
    // copy stays safe to invoke even if the handler unregisters itself.
    const PacketHandler handler = demux_cache_handler_;
    handler(pkt);
    return;
  }
  // A demux miss means the per-flow run (if any) just broke: packets a
  // socket deferred during the run must reach the network before another
  // flow — or a listener — can observe their absence. No-op when nothing
  // is pending (the common case, and always outside a calendar drain).
  sim_.FlushAckBursts();
  // Copy the handler before invoking: the callee may (un)register
  // handlers (FinalizeClose, accept). InlineHandler is a small trivially
  // copyable struct, so the copy is a couple of register moves.
  if (const PacketHandler* h = connections_.Find(key)) {
    const PacketHandler handler = *h;
    demux_cache_valid_ = true;
    demux_cache_key_ = key;
    demux_cache_handler_ = handler;
    handler(pkt);
    return;
  }
  if (const PacketHandler* h = listeners_.Find(pkt.tcp.dst_port)) {
    const PacketHandler handler = *h;
    handler(pkt);
    return;
  }
  ++unmatched_;
  if (LogEnabled(LogLevel::kTrace)) {
    char buf[Packet::kDescribeBufSize];
    Log(LogLevel::kTrace, "host %s: unmatched %s", name_.c_str(),
        pkt.DescribeTo(buf, sizeof buf));
  }
}

}  // namespace dctcpp
