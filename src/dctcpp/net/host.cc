#include "dctcpp/net/host.h"

#include "dctcpp/util/assert.h"
#include "dctcpp/util/log.h"

namespace dctcpp {

void Host::AttachUplink(const LinkConfig& config, PacketSink& peer) {
  DCTCPP_ASSERT(uplink_ == nullptr);
  uplink_ = std::make_unique<EgressPort>(sim_, config, peer);
}

void Host::Send(Packet pkt) {
  DCTCPP_ASSERT(uplink_ != nullptr);
  DCTCPP_ASSERT(pkt.src == id_);
  pkt.uid = (static_cast<std::uint64_t>(id_) + 1) << 40 | next_packet_uid_++;
  uplink_->Send(pkt);
}

void Host::RegisterConnection(PortNum local_port, NodeId remote,
                              PortNum rport, PacketHandler handler) {
  DCTCPP_ASSERT(handler != nullptr);
  const ConnKey key{local_port, remote, rport};
  DCTCPP_ASSERT(!connections_.contains(key));
  connections_[key] = std::move(handler);
}

void Host::UnregisterConnection(PortNum local_port, NodeId remote,
                                PortNum rport) {
  connections_.erase(ConnKey{local_port, remote, rport});
}

void Host::Listen(PortNum local_port, PacketHandler handler) {
  DCTCPP_ASSERT(handler != nullptr);
  DCTCPP_ASSERT(!listeners_.contains(local_port));
  listeners_[local_port] = std::move(handler);
}

void Host::StopListening(PortNum local_port) {
  listeners_.erase(local_port);
}

PortNum Host::AllocatePort() {
  DCTCPP_ASSERT(next_ephemeral_ < 65535);
  return next_ephemeral_++;
}

void Host::Deliver(const Packet& pkt) {
  DCTCPP_ASSERT(pkt.dst == id_);
  // Copy the handler before invoking: the callee may (un)register handlers.
  const ConnKey key{pkt.tcp.dst_port, pkt.src, pkt.tcp.src_port};
  if (auto it = connections_.find(key); it != connections_.end()) {
    auto handler = it->second;
    handler(pkt);
    return;
  }
  if (auto it = listeners_.find(pkt.tcp.dst_port); it != listeners_.end()) {
    auto handler = it->second;
    handler(pkt);
    return;
  }
  ++unmatched_;
  DCTCPP_TRACE("host %s: unmatched %s", name_.c_str(),
               pkt.Describe().c_str());
}

}  // namespace dctcpp
