// Flat ring buffer of Packets — the datapath FIFO.
//
// Every switch-port queue and every in-flight propagation pipeline holds
// packets in strict FIFO order, so the container only ever needs
// push-back / front / pop-front. PacketRing provides exactly that over one
// contiguous power-of-two array: no per-block bookkeeping (std::deque), no
// allocation in steady state, and PushBack returns a reference to the
// stored slot so callers can finish building the packet (ECN marking) in
// place instead of copying twice.
//
// PacketFifo wraps PacketRing with a process-wide "reference mode" that
// swaps the storage for the std::deque this repo used before the ring.
// The datapath regression harness and the determinism ctest run the same
// simulation in both modes: identical results prove the ring is a pure
// mechanism change, and the timing delta is the honest before/after.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "dctcpp/net/packet.h"
#include "dctcpp/util/assert.h"

namespace dctcpp {

class PacketRing {
 public:
  /// `initial_capacity` is rounded up to a power of two; the ring grows by
  /// doubling when full.
  explicit PacketRing(std::size_t initial_capacity = 16) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  bool Empty() const { return count_ == 0; }
  std::size_t Size() const { return count_; }
  std::size_t Capacity() const { return mask_ + 1; }

  /// Appends a copy of `pkt` and returns the stored slot (valid until the
  /// next PushBack, which may grow the ring).
  Packet& PushBack(const Packet& pkt) {
    if (count_ > mask_) Grow();
    Packet& slot = slots_[(head_ + count_) & mask_];
    slot = pkt;
    ++count_;
    return slot;
  }

  const Packet& Front() const {
    DCTCPP_DASSERT(count_ > 0);
    return slots_[head_];
  }

  void PopFront() {
    DCTCPP_DASSERT(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// The i-th resident packet in FIFO order (0 = Front). The staged
  /// egress pipeline addresses its serving/propagating regions this way;
  /// the reference stays valid until the next PushBack (which may grow
  /// the ring) or PopFront.
  Packet& At(std::size_t i) {
    DCTCPP_DASSERT(i < count_);
    return slots_[(head_ + i) & mask_];
  }
  const Packet& At(std::size_t i) const {
    DCTCPP_DASSERT(i < count_);
    return slots_[(head_ + i) & mask_];
  }

  /// Visits every resident packet in FIFO order (audit walks only — the
  /// datapath itself never iterates).
  template <typename F>
  void ForEach(F&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      fn(slots_[(head_ + i) & mask_]);
    }
  }

 private:
  void Grow() {
    std::vector<Packet> bigger(slots_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = slots_[(head_ + i) & mask_];
    }
    slots_.swap(bigger);
    mask_ = slots_.size() - 1;
    head_ = 0;
  }

  // The capacity mask is cached rather than derived from slots_.size() on
  // every operation: with 64-byte Packets the slot index is then one
  // add+and+shift, where reloading the vector size put a load and a
  // non-constant multiply on the fifo_ring micro's critical path.
  std::vector<Packet> slots_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Selects the storage backend of every PacketFifo constructed afterwards.
/// Reference mode (std::deque) exists solely so benchmarks and determinism
/// tests can replay the pre-ring datapath inside the same binary; toggle it
/// only between simulation runs, never while one is in flight.
void SetReferenceFifoForTest(bool enabled);
bool ReferenceFifoEnabled();

/// FIFO of packets backed by PacketRing (production) or std::deque
/// (reference mode, decided at construction).
class PacketFifo {
 public:
  PacketFifo();

  bool Empty() const { return reference_ ? deque_.empty() : ring_.Empty(); }
  std::size_t Size() const {
    return reference_ ? deque_.size() : ring_.Size();
  }

  Packet& PushBack(const Packet& pkt) {
    if (reference_) {
      deque_.push_back(pkt);
      return deque_.back();
    }
    return ring_.PushBack(pkt);
  }

  const Packet& Front() const {
    return reference_ ? deque_.front() : ring_.Front();
  }

  void PopFront() {
    if (reference_) {
      deque_.pop_front();
    } else {
      ring_.PopFront();
    }
  }

  /// The i-th resident packet in FIFO order (0 = Front); see PacketRing::At.
  Packet& At(std::size_t i) {
    return reference_ ? deque_[i] : ring_.At(i);
  }
  const Packet& At(std::size_t i) const {
    return reference_ ? deque_[i] : ring_.At(i);
  }

  /// Visits every resident packet in FIFO order (audit walks only).
  template <typename F>
  void ForEach(F&& fn) const {
    if (reference_) {
      for (const Packet& pkt : deque_) fn(pkt);
    } else {
      ring_.ForEach(fn);
    }
  }

 private:
  bool reference_;
  PacketRing ring_;
  std::deque<Packet> deque_;
};

}  // namespace dctcpp
