// Multi-stage datacenter fabrics: k-ary fat-tree and dragonfly, behind a
// common Fabric interface the partitioner and workload driver share.
//
// A Fabric is built in two phases. Construction only computes the *plan*:
// node counts, pod/group structure, and the plan ids the instantiated
// Network will assign — hosts first (0 .. num_hosts-1, pod-major, so every
// routing tier sees contiguous destination ranges), then switches in a
// fixed tier order. Because the plan is pure arithmetic, a ShardPartitioner
// can assign every node to a shard before a single Simulator object
// exists; Build() then instantiates into a Network under that assignment
// and installs compact routing tables directly — no BFS (Network::
// InstallRoutes is O(nodes x links), hopeless at 50k hosts) and no dense
// per-switch route vectors (see switch.h: intervals + ECMP + group routes,
// a few tens of bytes per switch instead of 4 bytes per switch per host).
//
// Routing recap (details in switch.h and DESIGN.md Sec. 12):
//  - Fat-tree: down-routing is one interval per switch (hosts are
//    contiguous per edge / per pod / globally); up-routing is ECMP over
//    the uplink group by deterministic per-flow hash.
//  - Dragonfly: own hosts + intra-group by interval, inter-group by a
//    per-group port array (minimal routing); optional Valiant load
//    balancing tags each flow with a hash-chosen intermediate group at
//    its source router.
//
// The fabric also knows which shard pairs a given flow can touch
// (MarkShardPairs): the union over every ECMP member of every hop, both
// directions, is a conservative over-approximation the driver feeds to
// ParallelSimulation::RestrictChannels so shard pairs the connection
// matrix never couples get infinite lookahead.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dctcpp/net/topology.h"

namespace dctcpp {

class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual const char* kind() const = 0;

  int num_hosts() const { return num_hosts_; }
  int num_switches() const { return num_switches_; }
  /// Plan ids are 0 .. num_nodes()-1: hosts first, then switches.
  int num_nodes() const { return num_hosts_ + num_switches_; }

  /// Natural partition units: fat-tree pods / dragonfly groups.
  int num_pods() const { return num_pods_; }
  /// Pod of a plan node; -1 for pod-less nodes (fat-tree core switches).
  int pod_of(int plan_id) const {
    return pod_of_[static_cast<std::size_t>(plan_id)];
  }

  /// Instantiates the plan into `net`. `shard_of` maps plan id -> shard
  /// (from ShardPartitioner); empty places everything on shard 0. Call
  /// once; the Network owns the nodes, this object keeps pointers.
  virtual void Build(Network& net, const std::vector<int>& shard_of) = 0;

  bool built() const { return !hosts_.empty(); }
  Host& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }
  Switch& switch_at(int i) { return *switches_[static_cast<std::size_t>(i)]; }

  /// Sum of Switch::RouteMemoryBytes over the fabric (after Build); the
  /// bench gates this divided by num_nodes().
  std::size_t RouteTableBytes() const {
    std::size_t total = 0;
    for (const Switch* sw : switches_) total += sw->RouteMemoryBytes();
    return total;
  }

  /// Marks every directed shard pair a packet src -> dst (host plan ids)
  /// could cross into `used` (row-major shards x shards), treating each
  /// ECMP group as "any member". Callers mark both flow directions (data
  /// one way, SYN/ACKs the other).
  virtual void MarkShardPairs(NodeId src, NodeId dst,
                              const std::vector<int>& shard_of, int shards,
                              std::vector<std::uint8_t>& used) const = 0;

  /// False when per-packet routing exceeds what MarkShardPairs models
  /// (dragonfly Valiant detours): callers must then skip channel pruning.
  virtual bool SupportsChannelPruning() const { return true; }

 protected:
  /// used[shard(a)][shard(b)] = 1 for the directed hop a -> b (plan ids).
  static void MarkHop(int a, int b, const std::vector<int>& shard_of,
                      int shards, std::vector<std::uint8_t>& used) {
    const int sa = shard_of[static_cast<std::size_t>(a)];
    const int sb = shard_of[static_cast<std::size_t>(b)];
    if (sa == sb) return;
    used[static_cast<std::size_t>(sa) * static_cast<std::size_t>(shards) +
         static_cast<std::size_t>(sb)] = 1;
  }

  int num_hosts_ = 0;
  int num_switches_ = 0;
  int num_pods_ = 0;
  std::vector<int> pod_of_;  ///< indexed by plan id
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
};

/// k-ary fat-tree (Al-Fares et al.): k pods of k/2 edge + k/2 aggregation
/// switches, (k/2)^2 cores. `hosts_per_edge` defaults to the canonical
/// k/2 but may exceed it (oversubscribed edge tier) — the only way to
/// reach 50k hosts within the paper-scale k <= 32 port budget.
struct FatTreeConfig {
  int k = 4;               ///< even, 4..32
  int hosts_per_edge = 0;  ///< 0 = k/2 (canonical 3-tier fat-tree)
  LinkConfig link;         ///< every fabric link (host, edge-agg, agg-core)
};

class FatTreeFabric : public Fabric {
 public:
  explicit FatTreeFabric(const FatTreeConfig& config);

  const char* kind() const override { return "fat_tree"; }
  void Build(Network& net, const std::vector<int>& shard_of) override;
  void MarkShardPairs(NodeId src, NodeId dst,
                      const std::vector<int>& shard_of, int shards,
                      std::vector<std::uint8_t>& used) const override;

  int k() const { return k_; }
  int hosts_per_edge() const { return hosts_per_edge_; }
  int hosts_per_pod() const { return half_k_ * hosts_per_edge_; }

  // Plan-id arithmetic (public: tests verify the structure against it).
  int HostPlanId(int pod, int edge, int slot) const {
    return pod * hosts_per_pod() + edge * hosts_per_edge_ + slot;
  }
  int EdgePlanId(int pod, int e) const { return num_hosts_ + pod * k_ + e; }
  int AggPlanId(int pod, int j) const {
    return num_hosts_ + pod * k_ + half_k_ + j;
  }
  int CorePlanId(int c) const { return num_hosts_ + k_ * k_ + c; }
  int EdgeOfHost(int h) const {
    return EdgePlanId(h / hosts_per_pod(),
                      h % hosts_per_pod() / hosts_per_edge_);
  }

 private:
  int k_;
  int half_k_;
  int hosts_per_edge_;
  LinkConfig link_;
};

/// Dragonfly (Kim et al.): g groups of a routers, each with p hosts and h
/// global links; routers within a group form a full mesh, groups form a
/// full mesh over the global links (requires g <= a*h + 1; the canonical
/// maximal configuration g = a*h + 1 is the default). Minimal routing is
/// at most local-global-local; `valiant` adds per-flow random intermediate
/// groups (the classic load-balancer for adversarial patterns).
struct DragonflyConfig {
  int routers_per_group = 4;      ///< a
  int hosts_per_router = 2;       ///< p
  int global_links_per_router = 2;  ///< h
  int groups = 0;                 ///< g; 0 = a*h + 1 (maximal)
  bool valiant = false;
  LinkConfig local_link;   ///< host and intra-group links
  LinkConfig global_link;  ///< inter-group links (typically longer delay)
};

class DragonflyFabric : public Fabric {
 public:
  explicit DragonflyFabric(const DragonflyConfig& config);

  const char* kind() const override { return "dragonfly"; }
  void Build(Network& net, const std::vector<int>& shard_of) override;
  void MarkShardPairs(NodeId src, NodeId dst,
                      const std::vector<int>& shard_of, int shards,
                      std::vector<std::uint8_t>& used) const override;
  bool SupportsChannelPruning() const override { return !valiant_; }

  int groups() const { return g_; }
  int routers_per_group() const { return a_; }
  int hosts_per_router() const { return p_; }

  int HostPlanId(int group, int router, int slot) const {
    return (group * a_ + router) * p_ + slot;
  }
  int RouterPlanId(int group, int router) const {
    return num_hosts_ + group * a_ + router;
  }
  int RouterOfHost(int h) const { return num_hosts_ + h / p_; }

  /// The router of group `from` owning the global link toward `to`
  /// (canonical slot assignment; from != to).
  int GatewayRouter(int from, int to) const {
    return ((to - from - 1 + g_) % g_) / h_;
  }

 private:
  int a_;
  int p_;
  int h_;
  int g_;
  bool valiant_;
  LinkConfig local_link_;
  LinkConfig global_link_;
};

}  // namespace dctcpp
