#include "dctcpp/net/packet.h"

#include <cstdio>

namespace dctcpp {

const char* Packet::DescribeTo(char* buf, std::size_t size) const {
  std::snprintf(
      buf, size,
      "pkt#%llu %d:%u->%d:%u seq=%u ack=%u len=%lld%s%s%s%s%s%s",
      static_cast<unsigned long long>(uid), src, tcp.src_port, dst,
      tcp.dst_port, tcp.seq, tcp.ack, static_cast<long long>(payload),
      tcp.syn ? " SYN" : "", tcp.fin ? " FIN" : "",
      tcp.ack_flag ? " ACK" : "", tcp.ece ? " ECE" : "",
      tcp.cwr ? " CWR" : "", ecn == Ecn::kCe ? " CE" : "");
  return buf;
}

std::string Packet::Describe() const {
  char buf[kDescribeBufSize];
  return DescribeTo(buf, sizeof buf);
}

}  // namespace dctcpp
