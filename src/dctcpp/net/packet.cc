#include "dctcpp/net/packet.h"

#include <cstdio>

namespace dctcpp {

std::string Packet::Describe() const {
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "pkt#%llu %d:%u->%d:%u seq=%u ack=%u len=%lld%s%s%s%s%s%s",
      static_cast<unsigned long long>(uid), src, tcp.src_port, dst,
      tcp.dst_port, tcp.seq, tcp.ack, static_cast<long long>(payload),
      tcp.syn ? " SYN" : "", tcp.fin ? " FIN" : "",
      tcp.ack_flag ? " ACK" : "", tcp.ece ? " ECE" : "",
      tcp.cwr ? " CWR" : "", ecn == Ecn::kCe ? " CE" : "");
  return buf;
}

}  // namespace dctcpp
