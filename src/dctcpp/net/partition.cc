#include "dctcpp/net/partition.h"

#include <algorithm>

#include "dctcpp/util/assert.h"

namespace dctcpp {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Expands a pod -> shard map to all plan ids, striping pod-less nodes.
std::vector<int> ExpandPods(const Fabric& fabric, int shards,
                            const std::vector<int>& pod_shard) {
  std::vector<int> shard_of(static_cast<std::size_t>(fabric.num_nodes()));
  int stripe = 0;
  for (int n = 0; n < fabric.num_nodes(); ++n) {
    const int pod = fabric.pod_of(n);
    if (pod >= 0) {
      shard_of[static_cast<std::size_t>(n)] =
          pod_shard[static_cast<std::size_t>(pod)];
    } else {
      shard_of[static_cast<std::size_t>(n)] = stripe;
      stripe = (stripe + 1) % shards;
    }
  }
  return shard_of;
}

}  // namespace

const char* ToString(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRandom: return "random";
    case PartitionStrategy::kPod: return "pod";
    case PartitionStrategy::kMinCut: return "min_cut";
  }
  return "?";
}

std::vector<int> ShardPartitioner::MinCutPods(
    const Fabric& fabric, int shards,
    const std::vector<FlowDemand>& demand) {
  const int pods = fabric.num_pods();
  const auto np = static_cast<std::size_t>(pods);
  // Symmetric pod-pair demand: each flow couples src's and dst's pods in
  // both directions (data one way, ACKs the other).
  std::vector<double> w(np * np, 0.0);
  std::vector<double> total(np, 0.0);
  for (const FlowDemand& d : demand) {
    const auto ps = static_cast<std::size_t>(fabric.pod_of(d.src));
    const auto pd = static_cast<std::size_t>(fabric.pod_of(d.dst));
    if (ps == pd) continue;  // intra-pod demand never cuts
    w[ps * np + pd] += d.weight;
    w[pd * np + ps] += d.weight;
    total[ps] += d.weight;
    total[pd] += d.weight;
  }

  // Greedy growth under a hard balance cap. Each unassigned pod's
  // attraction to a shard is its demand into that shard's pods; the
  // globally best (pod, shard) move wins each step. An empty shard bids
  // with the pod's total external demand (heaviest talkers seed shards),
  // which also handles the all-zero matrix: everything ties at 0 and the
  // id tie-break reproduces kPod's contiguous blocks.
  const int cap = (pods + shards - 1) / shards;
  std::vector<int> pod_shard(np, -1);
  std::vector<int> load(static_cast<std::size_t>(shards), 0);
  for (int step = 0; step < pods; ++step) {
    int best_pod = -1;
    int best_shard = -1;
    double best_score = -1.0;
    for (int p = 0; p < pods; ++p) {
      if (pod_shard[static_cast<std::size_t>(p)] >= 0) continue;
      for (int s = 0; s < shards; ++s) {
        if (load[static_cast<std::size_t>(s)] >= cap) continue;
        double score = 0.0;
        if (load[static_cast<std::size_t>(s)] == 0) {
          score = total[static_cast<std::size_t>(p)];
        } else {
          for (int q = 0; q < pods; ++q) {
            if (pod_shard[static_cast<std::size_t>(q)] == s) {
              score += w[static_cast<std::size_t>(p) * np +
                         static_cast<std::size_t>(q)];
            }
          }
        }
        // Prefer emptier shards on ties so seeds spread out instead of
        // piling behind shard 0; then lowest ids for determinism.
        const bool better =
            score > best_score ||
            (score == best_score && best_shard >= 0 &&
             load[static_cast<std::size_t>(s)] <
                 load[static_cast<std::size_t>(best_shard)]);
        if (better) {
          best_score = score;
          best_pod = p;
          best_shard = s;
        }
      }
    }
    DCTCPP_ASSERT(best_pod >= 0 && best_shard >= 0);
    pod_shard[static_cast<std::size_t>(best_pod)] = best_shard;
    ++load[static_cast<std::size_t>(best_shard)];
  }
  return pod_shard;
}

std::vector<int> ShardPartitioner::Assign(
    const Fabric& fabric, int shards, PartitionStrategy strategy,
    const std::vector<FlowDemand>& demand, std::uint64_t seed) {
  DCTCPP_ASSERT(shards >= 1);
  if (shards == 1) {
    return std::vector<int>(static_cast<std::size_t>(fabric.num_nodes()), 0);
  }
  switch (strategy) {
    case PartitionStrategy::kRandom: {
      std::vector<int> shard_of(
          static_cast<std::size_t>(fabric.num_nodes()));
      for (int n = 0; n < fabric.num_nodes(); ++n) {
        shard_of[static_cast<std::size_t>(n)] = static_cast<int>(
            Mix64(seed ^ static_cast<std::uint64_t>(n)) %
            static_cast<std::uint64_t>(shards));
      }
      return shard_of;
    }
    case PartitionStrategy::kPod: {
      // Contiguous pod blocks: pod p -> floor(p * S / P) keeps blocks
      // within one of each other in size for any P, S.
      std::vector<int> pod_shard(
          static_cast<std::size_t>(fabric.num_pods()));
      for (int p = 0; p < fabric.num_pods(); ++p) {
        pod_shard[static_cast<std::size_t>(p)] =
            static_cast<int>(static_cast<std::int64_t>(p) * shards /
                             fabric.num_pods());
      }
      return ExpandPods(fabric, shards, pod_shard);
    }
    case PartitionStrategy::kMinCut:
      return ExpandPods(fabric, shards, MinCutPods(fabric, shards, demand));
  }
  DCTCPP_ASSERT(false);
  return {};
}

}  // namespace dctcpp
