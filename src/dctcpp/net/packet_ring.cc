#include "dctcpp/net/packet_ring.h"

#include <atomic>

namespace dctcpp {
namespace {

std::atomic<bool> g_reference_fifo{false};

}  // namespace

void SetReferenceFifoForTest(bool enabled) {
  g_reference_fifo.store(enabled, std::memory_order_relaxed);
}

bool ReferenceFifoEnabled() {
  return g_reference_fifo.load(std::memory_order_relaxed);
}

PacketFifo::PacketFifo() : reference_(ReferenceFifoEnabled()) {}

}  // namespace dctcpp
