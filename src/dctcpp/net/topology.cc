#include "dctcpp/net/topology.h"

#include <queue>

#include "dctcpp/net/parallel.h"
#include "dctcpp/util/assert.h"

namespace dctcpp {

Network::Network(ParallelSimulation& parallel)
    : parallel_(&parallel), default_sim_(&parallel.shard(0)) {}

int Network::shard_count() const {
  return parallel_ != nullptr ? parallel_->shard_count() : 1;
}

Simulator& Network::SimForShard(int shard) {
  if (parallel_ == nullptr) {
    DCTCPP_ASSERT(shard <= 0);
    return *default_sim_;
  }
  if (shard < 0) {
    shard = next_auto_shard_;
    next_auto_shard_ = (next_auto_shard_ + 1) % parallel_->shard_count();
  }
  DCTCPP_ASSERT(shard < parallel_->shard_count());
  return parallel_->shard(shard);
}

Host& Network::AddHost(const std::string& name, int shard) {
  hosts_.push_back(
      std::make_unique<Host>(SimForShard(shard), next_id_++, name));
  return *hosts_.back();
}

Switch& Network::AddSwitch(const std::string& name, int shard) {
  switches_.push_back(
      std::make_unique<Switch>(SimForShard(shard), next_id_++, name));
  return *switches_.back();
}

Switch* Network::SwitchById(NodeId id) {
  for (auto& s : switches_) {
    if (s->id() == id) return s.get();
  }
  return nullptr;
}

void Network::ConnectHost(Host& host, Switch& sw,
                          const LinkConfig& switch_side,
                          const LinkConfig& host_side) {
  host.AttachUplink(host_side, sw, &sw.sim());
  const int sw_port = sw.AddPort(switch_side, host, &host.sim());
  edges_.push_back(Edge{host.id(), sw.id(), -1, sw_port});
  if (parallel_ != nullptr) {
    parallel_->ObserveLinkDelay(switch_side.propagation_delay);
    parallel_->ObserveLinkDelay(host_side.propagation_delay);
  }
}

std::pair<int, int> Network::ConnectSwitches(Switch& a, Switch& b,
                                             const LinkConfig& config) {
  const int a_port = a.AddPort(config, b, &b.sim());
  const int b_port = b.AddPort(config, a, &a.sim());
  edges_.push_back(Edge{a.id(), b.id(), a_port, b_port});
  if (parallel_ != nullptr) {
    parallel_->ObserveLinkDelay(config.propagation_delay);
  }
  return {a_port, b_port};
}

void Network::InstallRoutes() {
  // Adjacency keyed by NodeId (ids are dense, assigned 0..n-1): each
  // neighbor with the local egress port index (valid when the local node
  // is a switch).
  struct Adj {
    NodeId peer;
    int my_port;
  };
  const std::size_t n = hosts_.size() + switches_.size();
  std::vector<std::vector<Adj>> adj(n);
  for (const Edge& e : edges_) {
    adj[static_cast<std::size_t>(e.a)].push_back(Adj{e.b, e.a_port});
    adj[static_cast<std::size_t>(e.b)].push_back(Adj{e.a, e.b_port});
  }

  // For every host h: BFS outward from h. When the search reaches switch s
  // through neighbor p (closer to h), s routes traffic for h out of its
  // port facing p.
  for (const auto& host : hosts_) {
    const NodeId host_id = host->id();
    std::vector<bool> visited(n, false);
    std::queue<NodeId> frontier;
    visited[static_cast<std::size_t>(host_id)] = true;
    frontier.push(host_id);
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop();
      for (const Adj& a : adj[static_cast<std::size_t>(cur)]) {
        if (visited[static_cast<std::size_t>(a.peer)]) continue;
        visited[static_cast<std::size_t>(a.peer)] = true;
        Switch* sw = SwitchById(a.peer);
        if (sw == nullptr) continue;  // a host: never forwards
        // `sw` was discovered via `cur`; its port back toward `cur` is the
        // next hop for traffic destined to host_id.
        int back_port = -1;
        for (const Adj& rev : adj[static_cast<std::size_t>(a.peer)]) {
          if (rev.peer == cur) {
            back_port = rev.my_port;
            break;
          }
        }
        DCTCPP_ASSERT(back_port >= 0);
        sw->SetRoute(host_id, back_port);
        frontier.push(a.peer);
      }
    }
  }
}

EgressPort& Network::PortTowardsHost(Switch& sw, const Host& host) {
  const int port = sw.RouteTo(host.id());
  DCTCPP_ASSERT(port >= 0);
  return sw.port(port);
}

TwoTierTopology TwoTierTopology::Build(Network& net, int workers,
                                       const LinkConfig& config,
                                       int hosts_per_leaf) {
  DCTCPP_ASSERT(workers >= 1);
  DCTCPP_ASSERT(hosts_per_leaf >= 1);
  TwoTierTopology topo;

  // Shard placement (only consulted when `net` is sharded). The incast
  // fan-in makes the aggregator by far the busiest node, so it gets a
  // shard to itself; every other node goes greedy-least-loaded over the
  // remaining shards using coarse event-share weights (the leaf feeding
  // the aggregator and the root forward almost all traffic, the rest are
  // light). The plan depends only on (S, node counts), never on runtime
  // state, so placement is as deterministic as the topology itself.
  const int num_shards = net.shard_count();
  const int agg_shard = num_shards > 1 ? num_shards - 1 : 0;
  std::vector<long> shard_load(
      static_cast<std::size_t>(num_shards > 1 ? num_shards - 1 : 1), 0);
  auto place = [&shard_load](int weight) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < shard_load.size(); ++i) {
      if (shard_load[i] < shard_load[best]) best = i;
    }
    shard_load[best] += weight;
    return static_cast<int>(best);
  };

  topo.root = &net.AddSwitch("root", place(3));

  const int total_hosts = workers + 1;
  const int num_leaves =
      (total_hosts + hosts_per_leaf - 1) / hosts_per_leaf;
  for (int i = 0; i < num_leaves; ++i) {
    Switch& leaf =
        net.AddSwitch("switch" + std::to_string(i + 1), place(i == 0 ? 3 : 1));
    net.ConnectSwitches(*topo.root, leaf, config);
    topo.leaves.push_back(&leaf);
  }
  topo.switch1 = topo.leaves.front();

  // Aggregator takes the first slot on Switch 1; workers fill the leaves
  // round-robin so the fan-in converges through the root, as on the
  // testbed.
  topo.aggregator = &net.AddHost("aggregator", agg_shard);
  net.ConnectHost(*topo.aggregator, *topo.switch1, config);
  for (int i = 0; i < workers; ++i) {
    Host& w = net.AddHost("worker" + std::to_string(i), place(1));
    Switch& leaf = *topo.leaves[static_cast<std::size_t>((i + 1) %
                                                         num_leaves)];
    net.ConnectHost(w, leaf, config);
    topo.workers.push_back(&w);
  }

  net.InstallRoutes();
  topo.bottleneck = &net.PortTowardsHost(*topo.switch1, *topo.aggregator);
  return topo;
}

}  // namespace dctcpp
