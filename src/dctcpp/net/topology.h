// Network builder: nodes, bidirectional links, shortest-path routing, and
// the canonical 2-tier tree the paper's testbed uses (Figs 5 and 10).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dctcpp/net/host.h"
#include "dctcpp/net/switch.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {

/// Owns the hosts, switches, and link configuration of one simulated
/// network. Connect() wires both directions of a physical link; hosts get
/// their NIC attached by their single Connect() call. InstallRoutes() runs
/// BFS from every host to fill the switch forwarding tables.
class Network {
 public:
  explicit Network(Simulator& sim) : default_sim_(&sim) {}

  /// Sharded construction: every node lands on one of the coordinator's
  /// shard Simulators (explicitly via the `shard` argument of
  /// AddHost/AddSwitch, else round-robin in creation order), links report
  /// their delay as lookahead, and ports learn their peers' shards.
  explicit Network(ParallelSimulation& parallel);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// `shard` >= 0 pins the node (sharded networks only); -1 auto-assigns
  /// (round-robin over shards; always shard 0 in single-Simulator mode).
  Host& AddHost(const std::string& name, int shard = -1);
  Switch& AddSwitch(const std::string& name, int shard = -1);

  /// Shards available for placement (1 in single-Simulator mode).
  int shard_count() const;
  ParallelSimulation* parallel() { return parallel_; }

  /// Wires a host to a switch. `switch_side` configures the switch's
  /// egress port toward the host (the shallow marking buffer);
  /// `host_side` configures the host NIC (by default a deep, unmarked
  /// qdisc-like queue — NICs do not run the switch's ECN marker).
  void ConnectHost(Host& host, Switch& sw, const LinkConfig& switch_side,
                   const LinkConfig& host_side);
  void ConnectHost(Host& host, Switch& sw, const LinkConfig& config) {
    ConnectHost(host, sw, config, NicConfig(config));
  }
  /// Returns the (a-side, b-side) port indices of the new link — fabric
  /// builders record them to derive compact routing tables without a BFS.
  std::pair<int, int> ConnectSwitches(Switch& a, Switch& b,
                                      const LinkConfig& config);

  /// Derives the default NIC config from a switch-port config: same rate
  /// and delay, a deep ~1000-packet buffer, marking disabled.
  static LinkConfig NicConfig(LinkConfig config) {
    config.buffer_bytes = 1000 * (kMss + kHeaderBytes);
    config.ecn_threshold = 0;
    return config;
  }

  /// Fills all switch forwarding tables via BFS (call after wiring).
  void InstallRoutes();

  std::size_t HostCount() const { return hosts_.size(); }
  std::size_t SwitchCount() const { return switches_.size(); }
  Host& host(std::size_t i) { return *hosts_.at(i); }
  Switch& switch_at(std::size_t i) { return *switches_.at(i); }
  /// The single-Simulator world, or shard 0 of a sharded one.
  Simulator& sim() { return *default_sim_; }

  /// The switch port whose egress queue feeds `host` (e.g. Switch 1's port
  /// toward the aggregator, sampled for Figs 9/14). Asserts it exists.
  EgressPort& PortTowardsHost(Switch& sw, const Host& host);

 private:
  struct Edge {
    // Adjacency for routing, keyed by stable NodeIds (nodes may be added
    // in any order relative to wiring). Port indices are on the switch
    // side; -1 for host endpoints.
    NodeId a;
    NodeId b;
    int a_port;
    int b_port;
  };

  Switch* SwitchById(NodeId id);

  /// Resolves a placement request to a shard Simulator (-1 = round-robin).
  Simulator& SimForShard(int shard);

  ParallelSimulation* parallel_ = nullptr;
  Simulator* default_sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<Edge> edges_;
  NodeId next_id_ = 0;
  int next_auto_shard_ = 0;
};

/// The paper's testbed (Fig 5/10): a canonical 2-tier tree built from
/// 4-port GbE switches — a root over leaf switches, each leaf carrying up
/// to `hosts_per_leaf` hosts (4 ports = 3 hosts + 1 uplink). The
/// aggregator sits on leaf Switch 1; workers fill the remaining slots
/// round-robin. Fan-in traffic from remote leaves converges first at the
/// root's port toward Switch 1 and then at Switch 1's port toward the
/// aggregator (the sampled bottleneck).
struct TwoTierTopology {
  /// Builds into `net`; pointers remain owned by the Network.
  /// `hosts_per_leaf` models the switch port budget (default 3: the
  /// paper's four-port switches keep one port for the uplink).
  static TwoTierTopology Build(Network& net, int workers,
                               const LinkConfig& config,
                               int hosts_per_leaf = 3);

  Host* aggregator = nullptr;
  std::vector<Host*> workers;
  Switch* switch1 = nullptr;          ///< leaf switch of the aggregator
  std::vector<Switch*> leaves;        ///< all leaf switches (incl. switch1)
  Switch* root = nullptr;

  /// The congested egress queue: Switch 1's port toward the aggregator.
  EgressPort* bottleneck = nullptr;
};

}  // namespace dctcpp
