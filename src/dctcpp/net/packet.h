// Packet and header model.
//
// Packets are small value types copied through the network; the payload is
// simulated by byte counts only. The TCP header carries 32-bit sequence
// numbers with real modular semantics (wrap-safe comparison lives in
// dctcpp/tcp/seq.h).
#pragma once

#include <cstdint>
#include <string>

#include "dctcpp/util/time.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

/// Identifies a host or switch in a Network.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// TCP port number.
using PortNum = std::uint16_t;

/// Maximum segment size (bytes of TCP payload per full segment) and the
/// modelled per-packet wire overhead (Ethernet + IP + TCP headers).
inline constexpr Bytes kMss = 1460;
inline constexpr Bytes kHeaderBytes = 54;

/// ECN codepoint carried in the (modelled) IP header.
enum class Ecn : std::uint8_t {
  kNotEct,  ///< endpoint not ECN-capable: switch drops instead of marking
  kEct,     ///< ECN-capable transport
  kCe,      ///< congestion experienced (set by the switch)
};

/// One SACK block: received range [start, end) in sequence space.
struct SackBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  bool Valid() const { return start != end; }
};

/// TCP header flags and fields used by the model. The five flag booleans
/// are single-bit fields sharing one byte: call sites read and assign them
/// exactly as before, but the header packs into 40 bytes, which is what
/// lets a whole Packet fit one cache line (static_assert below).
struct TcpHeader {
  PortNum src_port = 0;
  PortNum dst_port = 0;
  std::uint32_t seq = 0;  ///< first payload byte (or SYN/FIN occupying one)
  std::uint32_t ack = 0;  ///< next expected byte (valid when `ack_flag`)
  /// RFC 2018 selective acknowledgment option: up to 3 out-of-order
  /// ranges the receiver holds (all-zero blocks are absent). Only filled
  /// when both ends negotiated SACK.
  SackBlock sack[3];
  bool syn : 1 = false;
  bool fin : 1 = false;
  bool ack_flag : 1 = false;
  bool ece : 1 = false;  ///< ECN-echo (receiver -> sender)
  bool cwr : 1 = false;  ///< congestion window reduced (sender -> receiver)
};
static_assert(sizeof(TcpHeader) == 40, "TcpHeader must stay packed");

/// One simulated packet. Field order and widths are chosen so the whole
/// struct fits a single 64-byte cache line: every copy on the egress path
/// is one cacheline move, and a burst pipeline entry prefetches with one
/// line fill. `payload` is a 32-bit count (a segment carries at most kMss
/// bytes; byte *totals* use the 64-bit Bytes type, to which it widens
/// implicitly).
struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TcpHeader tcp;
  std::int32_t payload = 0;  ///< TCP payload bytes (<= kMss per segment)
  Ecn ecn = Ecn::kNotEct;
  /// Set by the impairment layer when payload/header bits were flipped in
  /// transit. Switches still forward the packet (the model is an
  /// end-to-end TCP checksum, not a per-hop FCS); the destination host's
  /// checksum verification discards it instead of delivering it upward.
  bool corrupted = false;
  /// Dragonfly Valiant routing tag: the intermediate group this packet
  /// was assigned at its source router, -1 when untagged (minimal routing
  /// or non-dragonfly fabrics). Stamped once from a per-flow hash, so it
  /// is deterministic across shard counts and pools; routers forward
  /// toward the tagged group until the packet reaches it (or its
  /// destination group), then fall back to minimal routing.
  std::int16_t valiant_group = -1;
  std::uint64_t uid = 0;  ///< unique per-simulation id, for tracing

  /// Bytes this packet occupies on the wire and in switch buffers.
  Bytes WireSize() const { return static_cast<Bytes>(payload) + kHeaderBytes; }

  bool IsData() const { return payload > 0; }

  /// Buffer size that always fits a DescribeTo rendering.
  static constexpr std::size_t kDescribeBufSize = 160;

  /// Renders a short human-readable form into `buf` and returns it.
  /// Allocation-free: trace callers keep the buffer on the stack and only
  /// call this under a LogEnabled guard.
  const char* DescribeTo(char* buf, std::size_t size) const;

  /// Short human-readable rendering for trace logs. Convenience wrapper
  /// over DescribeTo that builds a std::string — not for hot paths.
  std::string Describe() const;
};
static_assert(sizeof(Packet) <= 64,
              "Packet must fit one cache line: the burst pipeline and the "
              "one-copy egress path budget exactly one line per packet");

}  // namespace dctcpp
