#include "dctcpp/net/queue.h"

#include <algorithm>

#include "dctcpp/util/assert.h"

namespace dctcpp {

DropTailEcnQueue::DropTailEcnQueue(Bytes capacity, Bytes ecn_threshold)
    : capacity_(capacity), ecn_threshold_(ecn_threshold) {
  DCTCPP_ASSERT(capacity_ > 0);
}

void DropTailEcnQueue::EnableRed(const RedConfig& config, Rng* rng) {
  DCTCPP_ASSERT(rng != nullptr);
  DCTCPP_ASSERT(config.min_th >= 0 && config.max_th > config.min_th);
  DCTCPP_ASSERT(config.max_p > 0.0 && config.max_p <= 1.0);
  DCTCPP_ASSERT(config.weight > 0.0 && config.weight <= 1.0);
  red_config_ = config;
  red_rng_ = rng;
}

bool DropTailEcnQueue::RedShouldMark() {
  // EWMA of the instantaneous queue, updated per arrival.
  red_avg_ = (1.0 - red_config_.weight) * red_avg_ +
             red_config_.weight * static_cast<double>(occupancy_);
  if (red_avg_ < static_cast<double>(red_config_.min_th)) return false;
  if (red_avg_ >= static_cast<double>(red_config_.max_th)) return true;
  const double frac =
      (red_avg_ - static_cast<double>(red_config_.min_th)) /
      static_cast<double>(red_config_.max_th - red_config_.min_th);
  return red_rng_->Chance(red_config_.max_p * frac);
}

bool DropTailEcnQueue::Enqueue(const Packet& pkt) {
  const Bytes size = pkt.WireSize();
  if (occupancy_ + size > capacity_) {
    ++stats_.dropped;
    return false;
  }
  bool mark = false;
  if (red_rng_ != nullptr) {
    // RED: probabilistic marking against the *average* queue. The EWMA
    // update inside must run for every arrival, ECT or not.
    mark = RedShouldMark() && pkt.ecn != Ecn::kNotEct;
  } else if (ecn_threshold_ > 0 && pkt.ecn != Ecn::kNotEct &&
             occupancy_ + size > ecn_threshold_) {
    // DCTCP marking rule: mark the arriving packet while the
    // instantaneous queue (including this packet) exceeds K.
    mark = true;
  }
  // Single copy into the FIFO slot; marking mutates the slot in place.
  Packet& slot = queue_.PushBack(pkt);
  if (mark) {
    slot.ecn = Ecn::kCe;
    ++stats_.marked;
  }
  occupancy_ += size;
  stats_.max_occupancy = std::max(stats_.max_occupancy, occupancy_);
  ++stats_.enqueued;
  return true;
}

std::optional<Packet> DropTailEcnQueue::Dequeue() {
  DCTCPP_DASSERT(n_propagating_ == 0 && !serving_);
  if (queue_.Empty()) return std::nullopt;
  Packet pkt = queue_.Front();
  PopFront();
  return pkt;
}

void DropTailEcnQueue::PopFront() {
  // Reference (copy-chain) egress and standalone queues only: the staged
  // pipeline never pops a queued packet, it re-labels it as serving.
  DCTCPP_DASSERT(n_propagating_ == 0 && !serving_);
  occupancy_ -= queue_.Front().WireSize();
  DCTCPP_ASSERT(occupancy_ >= 0);
  queue_.PopFront();
}

const Packet& DropTailEcnQueue::BeginService() {
  DCTCPP_DASSERT(!serving_);
  DCTCPP_DASSERT(PacketCount() > 0);
  const Packet& pkt = queue_.At(n_propagating_);
  occupancy_ -= pkt.WireSize();
  DCTCPP_ASSERT(occupancy_ >= 0);
  serving_ = true;
  return pkt;
}

void DropTailEcnQueue::FinishServiceToWire() {
  DCTCPP_DASSERT(serving_);
  serving_ = false;
  ++n_propagating_;
}

void DropTailEcnQueue::DropServing() {
  DCTCPP_DASSERT(serving_ && n_propagating_ == 0);
  serving_ = false;
  queue_.PopFront();
}

void DropTailEcnQueue::PopPropagating() {
  DCTCPP_DASSERT(n_propagating_ > 0);
  --n_propagating_;
  queue_.PopFront();
}

void DropTailEcnQueue::SaveState(CheckpointWriter& w) const {
  // Region sizes first, then every resident packet in FIFO order — the
  // staged regions reconstruct from the sizes alone (their packets are
  // the FIFO prefix). Legacy/standalone queues write 0/false here, so the
  // blob layout is the same shape in both egress modes.
  w.U64(n_propagating_);
  w.Bool(serving_);
  w.U64(queue_.Size());
  queue_.ForEach([&w](const Packet& pkt) { SavePacket(w, pkt); });
  w.I64(occupancy_);
  w.U64(stats_.enqueued);
  w.U64(stats_.dropped);
  w.U64(stats_.marked);
  w.I64(stats_.max_occupancy);
  w.F64(red_avg_);
}

void DropTailEcnQueue::LoadState(CheckpointReader& r) {
  DCTCPP_ASSERT(queue_.Empty());
  DCTCPP_ASSERT(n_propagating_ == 0 && !serving_);
  n_propagating_ = r.U64();
  serving_ = r.Bool();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n; ++i) queue_.PushBack(LoadPacket(r));
  occupancy_ = r.I64();
  stats_.enqueued = r.U64();
  stats_.dropped = r.U64();
  stats_.marked = r.U64();
  stats_.max_occupancy = r.I64();
  red_avg_ = r.F64();
}

}  // namespace dctcpp
