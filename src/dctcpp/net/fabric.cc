#include "dctcpp/net/fabric.h"

#include <string>

#include "dctcpp/util/assert.h"

namespace dctcpp {

namespace {

// Resolves a plan id's shard: -1 (single-Simulator / shard 0) when the
// partitioner supplied nothing. Network::SimForShard treats <= 0 as shard
// 0 in single-Simulator mode, so 0 is safe in both modes.
struct ShardLookup {
  const std::vector<int>* shard_of;
  int operator()(int plan_id) const {
    if (shard_of->empty()) return 0;
    return (*shard_of)[static_cast<std::size_t>(plan_id)];
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Fat-tree

FatTreeFabric::FatTreeFabric(const FatTreeConfig& config)
    : k_(config.k),
      half_k_(config.k / 2),
      hosts_per_edge_(config.hosts_per_edge > 0 ? config.hosts_per_edge
                                                : config.k / 2),
      link_(config.link) {
  DCTCPP_ASSERT(k_ >= 4 && k_ <= 32 && k_ % 2 == 0);
  DCTCPP_ASSERT(hosts_per_edge_ >= 1);
  num_pods_ = k_;
  num_hosts_ = k_ * half_k_ * hosts_per_edge_;
  num_switches_ = k_ * k_ + half_k_ * half_k_;  // pods' edge+agg, cores
  pod_of_.assign(static_cast<std::size_t>(num_nodes()), -1);
  for (int h = 0; h < num_hosts_; ++h) {
    pod_of_[static_cast<std::size_t>(h)] = h / hosts_per_pod();
  }
  for (int p = 0; p < k_; ++p) {
    for (int s = 0; s < k_; ++s) {
      pod_of_[static_cast<std::size_t>(num_hosts_ + p * k_ + s)] = p;
    }
  }
  // Cores stay -1 (pod-less).
}

void FatTreeFabric::Build(Network& net, const std::vector<int>& shard_of) {
  DCTCPP_ASSERT(!built());
  DCTCPP_ASSERT(shard_of.empty() ||
                shard_of.size() == static_cast<std::size_t>(num_nodes()));
  const ShardLookup shard{&shard_of};
  hosts_.reserve(static_cast<std::size_t>(num_hosts_));
  switches_.reserve(static_cast<std::size_t>(num_switches_));

  // Hosts first: plan ids ARE the NodeIds only because creation order
  // matches the plan (Network assigns ids sequentially).
  for (int h = 0; h < num_hosts_; ++h) {
    hosts_.push_back(&net.AddHost("h" + std::to_string(h), shard(h)));
  }
  for (int p = 0; p < k_; ++p) {
    for (int e = 0; e < half_k_; ++e) {
      switches_.push_back(&net.AddSwitch(
          "e" + std::to_string(p) + "." + std::to_string(e),
          shard(EdgePlanId(p, e))));
    }
    for (int j = 0; j < half_k_; ++j) {
      switches_.push_back(&net.AddSwitch(
          "a" + std::to_string(p) + "." + std::to_string(j),
          shard(AggPlanId(p, j))));
    }
  }
  for (int c = 0; c < half_k_ * half_k_; ++c) {
    switches_.push_back(
        &net.AddSwitch("c" + std::to_string(c), shard(CorePlanId(c))));
  }
  auto sw = [&](int plan_id) -> Switch& {
    return *switches_[static_cast<std::size_t>(plan_id - num_hosts_)];
  };

  // Wiring. Port-index contracts the routing below depends on:
  //  - edge: ports [0, hpe) face its hosts in id order, [hpe, hpe+k/2)
  //    its pod's aggs in j order;
  //  - agg: ports [0, k/2) face its pod's edges in e order, [k/2, k) its
  //    k/2 cores in ascending core order;
  //  - core c: port p faces pod p's agg (the agg with index c / (k/2)),
  //    because the pod loop is outermost.
  for (int p = 0; p < k_; ++p) {
    for (int e = 0; e < half_k_; ++e) {
      for (int s = 0; s < hosts_per_edge_; ++s) {
        net.ConnectHost(*hosts_[static_cast<std::size_t>(
                            HostPlanId(p, e, s))],
                        sw(EdgePlanId(p, e)), link_);
      }
    }
    for (int e = 0; e < half_k_; ++e) {
      for (int j = 0; j < half_k_; ++j) {
        net.ConnectSwitches(sw(EdgePlanId(p, e)), sw(AggPlanId(p, j)),
                            link_);
      }
    }
  }
  for (int p = 0; p < k_; ++p) {
    for (int j = 0; j < half_k_; ++j) {
      for (int m = 0; m < half_k_; ++m) {
        net.ConnectSwitches(sw(AggPlanId(p, j)),
                            sw(CorePlanId(j * half_k_ + m)), link_);
      }
    }
  }

  // Compact routes: one interval per switch for "down", ECMP for "up".
  const int hpp = hosts_per_pod();
  for (int p = 0; p < k_; ++p) {
    for (int e = 0; e < half_k_; ++e) {
      Switch& edge = sw(EdgePlanId(p, e));
      const NodeId lo = HostPlanId(p, e, 0);
      edge.AddRouteInterval(lo, lo + hosts_per_edge_, 0, 1);
      std::vector<std::int16_t> up;
      for (int j = 0; j < half_k_; ++j) {
        up.push_back(static_cast<std::int16_t>(hosts_per_edge_ + j));
      }
      edge.SetEcmpUplinks(std::move(up));
    }
    for (int j = 0; j < half_k_; ++j) {
      Switch& agg = sw(AggPlanId(p, j));
      agg.AddRouteInterval(p * hpp, (p + 1) * hpp, 0, hosts_per_edge_);
      std::vector<std::int16_t> up;
      for (int m = 0; m < half_k_; ++m) {
        up.push_back(static_cast<std::int16_t>(half_k_ + m));
      }
      agg.SetEcmpUplinks(std::move(up));
    }
  }
  for (int c = 0; c < half_k_ * half_k_; ++c) {
    sw(CorePlanId(c)).AddRouteInterval(0, num_hosts_, 0, hpp);
  }
}

void FatTreeFabric::MarkShardPairs(NodeId src, NodeId dst,
                                   const std::vector<int>& shard_of,
                                   int shards,
                                   std::vector<std::uint8_t>& used) const {
  const int se = EdgeOfHost(src);
  const int de = EdgeOfHost(dst);
  MarkHop(src, se, shard_of, shards, used);
  if (se == de) {
    MarkHop(se, dst, shard_of, shards, used);
    return;
  }
  const int sp = pod_of(src);
  const int dp = pod_of(dst);
  if (sp == dp) {
    // Up to any of the pod's aggs (ECMP), down to the peer edge.
    for (int j = 0; j < half_k_; ++j) {
      MarkHop(se, AggPlanId(sp, j), shard_of, shards, used);
      MarkHop(AggPlanId(sp, j), de, shard_of, shards, used);
    }
  } else {
    // Up through any agg, then any of that agg's cores; core c comes
    // back down via the destination pod's agg with the same index
    // c / (k/2) — the fat-tree wiring invariant.
    for (int j = 0; j < half_k_; ++j) {
      MarkHop(se, AggPlanId(sp, j), shard_of, shards, used);
      MarkHop(AggPlanId(dp, j), de, shard_of, shards, used);
      for (int m = 0; m < half_k_; ++m) {
        const int c = CorePlanId(j * half_k_ + m);
        MarkHop(AggPlanId(sp, j), c, shard_of, shards, used);
        MarkHop(c, AggPlanId(dp, j), shard_of, shards, used);
      }
    }
  }
  MarkHop(de, dst, shard_of, shards, used);
}

// ---------------------------------------------------------------------------
// Dragonfly

DragonflyFabric::DragonflyFabric(const DragonflyConfig& config)
    : a_(config.routers_per_group),
      p_(config.hosts_per_router),
      h_(config.global_links_per_router),
      g_(config.groups > 0
             ? config.groups
             : config.routers_per_group * config.global_links_per_router +
                   1),
      valiant_(config.valiant),
      local_link_(config.local_link),
      global_link_(config.global_link) {
  DCTCPP_ASSERT(a_ >= 1 && p_ >= 1 && h_ >= 1);
  DCTCPP_ASSERT(g_ >= 2 && g_ <= a_ * h_ + 1);
  num_pods_ = g_;
  num_hosts_ = g_ * a_ * p_;
  num_switches_ = g_ * a_;
  pod_of_.assign(static_cast<std::size_t>(num_nodes()), -1);
  for (int h = 0; h < num_hosts_; ++h) {
    pod_of_[static_cast<std::size_t>(h)] = h / (a_ * p_);
  }
  for (int r = 0; r < num_switches_; ++r) {
    pod_of_[static_cast<std::size_t>(num_hosts_ + r)] = r / a_;
  }
}

void DragonflyFabric::Build(Network& net, const std::vector<int>& shard_of) {
  DCTCPP_ASSERT(!built());
  DCTCPP_ASSERT(shard_of.empty() ||
                shard_of.size() == static_cast<std::size_t>(num_nodes()));
  const ShardLookup shard{&shard_of};
  hosts_.reserve(static_cast<std::size_t>(num_hosts_));
  switches_.reserve(static_cast<std::size_t>(num_switches_));

  for (int h = 0; h < num_hosts_; ++h) {
    hosts_.push_back(&net.AddHost("h" + std::to_string(h), shard(h)));
  }
  for (int G = 0; G < g_; ++G) {
    for (int r = 0; r < a_; ++r) {
      switches_.push_back(&net.AddSwitch(
          "r" + std::to_string(G) + "." + std::to_string(r),
          shard(RouterPlanId(G, r))));
    }
  }
  auto sw = [&](int plan_id) -> Switch& {
    return *switches_[static_cast<std::size_t>(plan_id - num_hosts_)];
  };

  // Host links: router ports [0, p) face its hosts in id order.
  for (int G = 0; G < g_; ++G) {
    for (int r = 0; r < a_; ++r) {
      for (int s = 0; s < p_; ++s) {
        net.ConnectHost(*hosts_[static_cast<std::size_t>(
                            HostPlanId(G, r, s))],
                        sw(RouterPlanId(G, r)), local_link_);
      }
    }
  }
  // Intra-group full mesh. Pair iteration order (r1 < r2 ascending) gives
  // every router local ports toward peers in ascending peer order:
  // port p + (t < r ? t : t - 1) faces router t.
  for (int G = 0; G < g_; ++G) {
    for (int r1 = 0; r1 < a_; ++r1) {
      for (int r2 = r1 + 1; r2 < a_; ++r2) {
        net.ConnectSwitches(sw(RouterPlanId(G, r1)), sw(RouterPlanId(G, r2)),
                            local_link_);
      }
    }
  }
  // Global links, canonical slotting: group G reaches group t over slot
  // (t - G - 1) mod g, owned by router slot / h. Port indices recorded
  // from ConnectSwitches (they come after host + local ports).
  std::vector<std::int16_t> global_port(
      static_cast<std::size_t>(g_) * static_cast<std::size_t>(g_), -1);
  auto gp = [&](int from, int to) -> std::int16_t& {
    return global_port[static_cast<std::size_t>(from) *
                           static_cast<std::size_t>(g_) +
                       static_cast<std::size_t>(to)];
  };
  for (int G = 0; G < g_; ++G) {
    for (int t = G + 1; t < g_; ++t) {
      const auto ports = net.ConnectSwitches(
          sw(RouterPlanId(G, GatewayRouter(G, t))),
          sw(RouterPlanId(t, GatewayRouter(t, G))), global_link_);
      gp(G, t) = static_cast<std::int16_t>(ports.first);
      gp(t, G) = static_cast<std::int16_t>(ports.second);
    }
  }

  // Routes per router: own hosts, then the rest of the group by two
  // stride-p intervals around the own-host gap, then per-group next hops.
  const int local_base = p_;
  const int group_hosts = a_ * p_;
  for (int G = 0; G < g_; ++G) {
    const NodeId gbase = G * group_hosts;
    for (int r = 0; r < a_; ++r) {
      Switch& router = sw(RouterPlanId(G, r));
      const NodeId own = HostPlanId(G, r, 0);
      router.AddRouteInterval(own, own + p_, 0, 1);
      if (r > 0) {
        router.AddRouteInterval(gbase, gbase + r * p_, local_base, p_);
      }
      if (r < a_ - 1) {
        router.AddRouteInterval(own + p_, gbase + group_hosts,
                                local_base + r, p_);
      }
      std::vector<std::int16_t> port_by_group(static_cast<std::size_t>(g_),
                                              -1);
      for (int t = 0; t < g_; ++t) {
        if (t == G) continue;
        const int owner = GatewayRouter(G, t);
        port_by_group[static_cast<std::size_t>(t)] =
            owner == r ? gp(G, t)
                       : static_cast<std::int16_t>(
                             local_base + (owner < r ? owner : owner - 1));
      }
      router.SetGroupRoutes(std::move(port_by_group), G, 0, group_hosts);
      if (valiant_) {
        router.EnableValiantTagging(static_cast<std::int16_t>(g_), own,
                                    own + p_);
      }
    }
  }
}

void DragonflyFabric::MarkShardPairs(NodeId src, NodeId dst,
                                     const std::vector<int>& shard_of,
                                     int shards,
                                     std::vector<std::uint8_t>& used) const {
  // Minimal routing only: Valiant fabrics report SupportsChannelPruning()
  // false and callers must not prune (the detour can cross any group).
  const int rs = RouterOfHost(src);
  const int rd = RouterOfHost(dst);
  MarkHop(src, rs, shard_of, shards, used);
  int at = rs;
  const int Gs = pod_of(src);
  const int Gd = pod_of(dst);
  if (Gs != Gd) {
    const int gw_s = RouterPlanId(Gs, GatewayRouter(Gs, Gd));
    const int gw_d = RouterPlanId(Gd, GatewayRouter(Gd, Gs));
    if (at != gw_s) {
      MarkHop(at, gw_s, shard_of, shards, used);
      at = gw_s;
    }
    MarkHop(at, gw_d, shard_of, shards, used);
    at = gw_d;
  }
  if (at != rd) {
    MarkHop(at, rd, shard_of, shards, used);
    at = rd;
  }
  MarkHop(at, dst, shard_of, shards, used);
}

}  // namespace dctcpp
