// Egress port: queue + serializing transmitter + propagation delay.
//
// An EgressPort is one direction of a physical link. Send() enqueues into
// the port's DropTailEcnQueue; a transmitter drains the queue at the line
// rate (one packet serializing at a time) and delivers each packet to the
// peer node after the propagation delay. This reproduces the store-and-
// forward pipeline whose capacity (C*D + B) the paper's incast bursts
// overflow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include <memory>

#include "dctcpp/net/impairment.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/net/packet_ring.h"
#include "dctcpp/net/queue.h"
#include "dctcpp/sim/pinned_event.h"
#include "dctcpp/sim/simulator.h"
#include "dctcpp/util/assert.h"
#include "dctcpp/util/reference_mode.h"
#include "dctcpp/util/units.h"

namespace dctcpp {

/// Anything that can accept a delivered packet (hosts and switches).
/// The reference stays valid only for the duration of the call; sinks that
/// keep the packet (forwarding into a queue) copy it into their own slot.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void Deliver(const Packet& pkt) = 0;
  /// Cache hint that `pkt` will be Deliver()ed shortly (the burst pipeline
  /// calls this for arrival i+1 while arrival i is being processed). Must
  /// have no observable effect; hosts prefetch their demux slot for the
  /// packet's flow key, the default does nothing.
  virtual void PrefetchDeliver(const Packet& pkt) const { (void)pkt; }
};

/// Configuration of one link direction.
struct LinkConfig {
  DataRate rate = DataRate::GigabitsPerSec(1);
  Tick propagation_delay = 10 * kMicrosecond;
  Bytes buffer_bytes = 128 * kKiB;
  Bytes ecn_threshold = 32 * kKiB;  ///< K; <= 0 disables marking
  /// Independent per-packet drop probability, applied before enqueue.
  /// 0 disables. Legacy alias for `impairment.random_loss` — the draw now
  /// comes from the link's private RNG stream, so enabling loss on one
  /// link no longer perturbs randomness anywhere else. When both knobs
  /// are set, the losses compose as independent sources.
  double random_loss = 0.0;
  /// Replace the instantaneous-K marking with classic RED (the AQM the
  /// DCTCP line of work compares against); see RedConfig.
  bool red = false;
  RedConfig red_config;
  /// Full per-link fault model (burst loss, reordering, duplication,
  /// corruption, flaps, forced drops); see net/impairment.h.
  ImpairmentConfig impairment;
};

class ParallelSimulation;

class EgressPort : public Checkpointable {
 public:
  /// `peer_sim` is the Simulator owning the peer node; only consulted in
  /// sharded mode (sim.parallel() != nullptr), where it selects the
  /// destination shard of this port's deliveries. Defaults to the port's
  /// own world.
  EgressPort(Simulator& sim, const LinkConfig& config, PacketSink& peer,
             Simulator* peer_sim = nullptr);
  ~EgressPort() override;

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  /// Enqueues the packet for transmission; drops silently (with stats) when
  /// the buffer is full.
  void Send(const Packet& pkt);

  const DropTailEcnQueue& queue() const { return queue_; }
  const LinkConfig& config() const { return config_; }

  /// The node this port feeds (structural walks in tests/benches).
  PacketSink& peer() const { return peer_; }

  /// Bytes queued plus the packet currently on the wire; the quantity a
  /// hardware queue-length register would report. Unsharded ports settle
  /// serializations lazily (see SettleTo), so an external sampler may see
  /// serializations that virtually completed within the trailing
  /// propagation delay still counted here; admission/marking decisions
  /// always run on settled state, and the value is exact whenever the
  /// simulator is drained.
  Bytes BacklogBytes() const {
    return queue_.OccupancyBytes() + in_flight_bytes_;
  }

  /// True while a packet is serializing (same lazy-settlement caveat as
  /// BacklogBytes).
  bool Transmitting() const { return transmitting_; }

  /// Packets dropped by the random-loss injector (not buffer overflow).
  std::uint64_t random_losses() const {
    return impairment_ ? impairment_->stats().random_losses : 0;
  }

  /// The fault pipeline, or nullptr when this link is unimpaired.
  const ImpairmentStage* impairment() const { return impairment_.get(); }

  /// Packets this port handed to its peer (in sharded mode: deposited
  /// into the peer shard's arrival calendar — the peer-side delivery is
  /// counted by the destination shard).
  std::uint64_t delivered() const {
    return psim_ != nullptr ? handed_off_ : delivered_;
  }

  /// Checkpoint (registered with the owning Simulator at construction):
  /// queue contents, the serializing packet (with its lazy finish instant
  /// in unsharded mode, the finish event's exact arming in sharded mode),
  /// the propagation pipeline, the impairment stage, counters, and the
  /// delivery event's exact arming.
  void SaveState(CheckpointWriter& w) const override;
  void LoadState(CheckpointReader& r) override;

 private:
  friend class ImpairmentStage;

  /// Flat power-of-two ring of absolute delivery times, FIFO. Covers the
  /// propagation stage plus (unsharded) the serving packet, whose due time
  /// is computed at serialization begin. No steady-state allocation.
  class TickFifo {
   public:
    TickFifo() : buf_(64) {}
    bool Empty() const { return size_ == 0; }
    Tick Front() const {
      DCTCPP_DASSERT(size_ > 0);
      return buf_[head_];
    }
    void PushBack(Tick t) {
      if (size_ == buf_.size()) Grow();
      buf_[(head_ + size_) & (buf_.size() - 1)] = t;
      ++size_;
    }
    void PopFront() {
      DCTCPP_DASSERT(size_ > 0);
      head_ = (head_ + 1) & (buf_.size() - 1);
      --size_;
    }

    void SaveState(CheckpointWriter& w) const {
      w.U64(size_);
      for (std::size_t i = 0; i < size_; ++i) {
        w.I64(buf_[(head_ + i) & (buf_.size() - 1)]);
      }
    }
    void LoadState(CheckpointReader& r) {
      DCTCPP_ASSERT(size_ == 0);
      const std::uint64_t n = r.U64();
      for (std::uint64_t i = 0; i < n; ++i) PushBack(r.I64());
    }

   private:
    void Grow() {
      std::vector<Tick> bigger(buf_.size() * 2);
      for (std::size_t i = 0; i < size_; ++i) {
        bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
      }
      buf_ = std::move(bigger);
      head_ = 0;
    }

    std::vector<Tick> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  /// Shared tail of Send/InjectReleased: queue admission (counting
  /// overflow drops in the ledger), the amortized byte audit, and the
  /// transmitter kick.
  void EnqueueForTransmit(const Packet& pkt);

  /// Re-entry point for packets the impairment stage held for reordering:
  /// straight into the queue, skipping re-impairment.
  void InjectReleased(const Packet& pkt) { EnqueueForTransmit(pkt); }

  void StartTransmission();
  void FinishTransmission();
  void DeliverHead();

  /// Lazy transmitter (unsharded only): replays every serialization that
  /// virtually completed at or before `t` — serving packet moves to the
  /// propagation stage, the next queued packet begins serializing at the
  /// exact tick the wire freed. Called at the port's observation points
  /// (enqueue admission, each delivery); the no-op case (wire idle or
  /// still serializing) stays inline.
  void SettleTo(Tick t) {
    if (transmitting_ && t_fin_ <= t) SettleSlow(t);
  }
  void SettleSlow(Tick t);

  /// Begins serializing the head queued packet as of instant `start`
  /// (which may lie in the past when invoked from SettleTo), computes its
  /// finish/delivery times, and arms the delivery event if idle. The
  /// eventful FinishTransmission never runs in unsharded mode — the finish
  /// instant lives in `t_fin_` until an observation settles it.
  void BeginServiceAt(Tick start);

  /// O(1) conservation check: every packet the queue ever accepted is
  /// delivered, still queued, serializing, or propagating. Run every
  /// `kConservationPeriod`-th delivery (handoff in sharded mode) and at
  /// teardown — the counters it compares are valid at any instant, so
  /// sampling loses no coverage, only latency-to-detection.
  void CheckConservation();

  /// O(n) audit that the queue's occupancy counter matches the wire sizes
  /// of the packets it actually holds; run every `kByteAuditPeriod`-th
  /// enqueue and at teardown.
  void AuditQueueBytes();

  static constexpr std::uint64_t kByteAuditPeriod = 1024;      // power of two
  static constexpr std::uint64_t kConservationPeriod = 64;     // power of two

  Simulator& sim_;
  LinkConfig config_;
  PacketSink& peer_;
  DropTailEcnQueue queue_;
  std::unique_ptr<ImpairmentStage> impairment_;
  // Sharded-mode state (see net/parallel.h). When psim_ is set the
  // propagation stage is replaced by a calendar handoff: FinishTransmission
  // deposits (due, port gid << 32 | wire seq) into the peer shard and the
  // pinned delivery event never arms. RED then draws from the port's
  // private stream instead of the (shard-local, draw-order-fragile) run
  // RNG.
  ParallelSimulation* psim_ = nullptr;
  int src_shard_ = 0;
  int dst_shard_ = 0;
  std::uint64_t port_gid_ = 0;
  std::uint64_t wire_seq_ = 0;
  std::uint64_t handed_off_ = 0;
  Rng red_rng_{0};
  bool transmitting_ = false;
  Bytes in_flight_bytes_ = 0;
  std::uint64_t delivered_ = 0;
  // Serialization times for the two wire sizes that cover essentially every
  // packet (full data segment, bare ACK), precomputed once so the hot path
  // skips the 128-bit division in DataRate::TransmissionTime.
  Tick tx_time_data_ = 0;
  Bytes tx_size_data_ = 0;
  Tick tx_time_ack_ = 0;
  Bytes tx_size_ack_ = 0;
  std::uint64_t conservation_clock_ = 0;
  // One-copy egress (the production path, `staged_` true): the serializing
  // packet and the packets in flight on the wire stay *inside the queue's
  // ring* — BeginService/FinishServiceToWire/PopPropagating move region
  // boundaries over slots written once at Enqueue. The scalar reference
  // mode (SetScalarReferenceForTest) instead replays the original copy
  // chain through `on_wire_` and `propagating_` below, so the regression
  // harness can prove the staged pipeline is observationally identical.
  // Either way propagation delay is constant per port, so deliveries leave
  // the wire in FIFO order: one pinned delivery event tracks the head's
  // due time (`due_`), re-arming itself as packets drain.
  //
  // Unsharded runs never arm `finish_ev_`: serialization completions are
  // settled lazily by SettleTo at the port's observation points instead of
  // costing a wheel event per packet. `t_fin_` holds the serving packet's
  // finish instant; `due_` is pushed at serialization *begin* (its entries
  // cover propagating + serving packets), which is safe because the armed
  // delivery at `due_.Front()` has not fired yet, so every newly computed
  // due time is provably >= Now(). The delivery event is therefore the
  // port's only armed wheel node however many packets it carries. Sharded
  // mode keeps the eventful finish: the calendar handoff must execute
  // inside the conservative-parallel window that contains it.
  const bool staged_ = !ScalarReferenceEnabled();
  Packet on_wire_;
  PacketFifo propagating_;
  TickFifo due_;
  Tick t_fin_ = 0;
  PinnedEvent finish_ev_;
  PinnedEvent deliver_ev_;
  bool deliver_armed_ = false;
};

}  // namespace dctcpp
