#include "dctcpp/net/impairment.h"

#include <algorithm>

#include "dctcpp/net/link.h"
#include "dctcpp/util/flight_recorder.h"
#include "dctcpp/util/log.h"

namespace dctcpp {

Tick ReorderBuffer::NextRelease() const {
  DCTCPP_ASSERT(!heap_.empty());
  return heap_.front().release_at;
}

void ReorderBuffer::Hold(const Packet& pkt, Tick release_at) {
  heap_.push_back(Held{release_at, next_order_++, pkt});
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

void ReorderBuffer::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  heap_.pop_back();
}

namespace {

bool MatchesOrdinal(const std::vector<std::uint64_t>& ordinals,
                    std::uint64_t n) {
  for (std::uint64_t o : ordinals) {
    if (o == n) return true;
  }
  return false;
}

}  // namespace

ImpairmentStage::ImpairmentStage(Simulator& sim,
                                 const ImpairmentConfig& config,
                                 EgressPort& port)
    : sim_(sim),
      config_(config),
      port_(port),
      rng_(sim.StreamRng(sim.NextImpairmentStream())),
      release_ev_(
          sim, [](void* p) { static_cast<ImpairmentStage*>(p)->OnRelease(); },
          this) {
  for (std::size_t i = 0; i + 1 < config_.flaps.size(); ++i) {
    DCTCPP_ASSERT(config_.flaps[i].up_at <= config_.flaps[i + 1].down_at &&
                  "flap schedule must be sorted and non-overlapping");
  }
  for (const LinkFlap& f : config_.flaps) {
    DCTCPP_ASSERT(f.down_at < f.up_at);
  }
}

void ImpairmentStage::UpdateLinkState(Tick now) {
  while (next_flap_ < config_.flaps.size() &&
         now >= config_.flaps[next_flap_].up_at) {
    ++next_flap_;
  }
  link_up_ = !(next_flap_ < config_.flaps.size() &&
               now >= config_.flaps[next_flap_].down_at);
}

void ImpairmentStage::CountDrop(std::uint64_t* counter, const char* site,
                                const Packet& pkt) {
  ++*counter;
  sim_.invariants().CountDropped();
  if (FlightRecorder* fr = sim_.flight_recorder()) {
    fr->Record(FrEvent::kDrop, sim_.shard_id(), sim_.Now(),
               FrPortPayload(port_.port_gid_, pkt.uid));
  }
  if (LogEnabled(LogLevel::kTrace)) {
    char buf[Packet::kDescribeBufSize];
    Log(LogLevel::kTrace, "impairment %s drop at %s: %s", site,
        FormatTick(sim_.Now()).c_str(), pkt.DescribeTo(buf, sizeof buf));
  }
}

bool ImpairmentStage::Process(Packet& pkt, bool* duplicate) {
  *duplicate = false;
  ++stats_.submitted;
  const Tick now = sim_.Now();
  UpdateLinkState(now);
  if (!link_up_) {
    CountDrop(&stats_.link_down_losses, "link-down", pkt);
    return false;
  }

  // Forced ordinal drops consume no randomness (pure test hook).
  if (pkt.IsData()) {
    ++data_seen_;
    if (MatchesOrdinal(config_.drop_data_nth, data_seen_)) {
      CountDrop(&stats_.forced_losses, "forced-data", pkt);
      return false;
    }
  } else if (pkt.tcp.ack_flag && !pkt.tcp.syn && !pkt.tcp.fin) {
    ++acks_seen_;
    if (MatchesOrdinal(config_.drop_ack_nth, acks_seen_)) {
      CountDrop(&stats_.forced_losses, "forced-ack", pkt);
      return false;
    }
  }

  if (config_.ge_p_good_to_bad > 0.0) {
    // Advance the Gilbert–Elliott chain one step, then sample loss from
    // the new state.
    if (ge_bad_) {
      if (rng_.Chance(config_.ge_p_bad_to_good)) ge_bad_ = false;
    } else {
      if (rng_.Chance(config_.ge_p_good_to_bad)) ge_bad_ = true;
    }
    const double loss = ge_bad_ ? config_.ge_loss_bad : config_.ge_loss_good;
    if (loss > 0.0 && rng_.Chance(loss)) {
      CountDrop(&stats_.burst_losses, "burst", pkt);
      return false;
    }
  }

  if (config_.random_loss > 0.0 && rng_.Chance(config_.random_loss)) {
    CountDrop(&stats_.random_losses, "random", pkt);
    return false;
  }

  if (config_.corrupt_prob > 0.0 && rng_.Chance(config_.corrupt_prob)) {
    // Delivered, but flagged: switches forward it (end-to-end checksum
    // model) and the destination host's checksum verification discards it.
    pkt.corrupted = true;
    ++stats_.corruptions;
  }

  if (config_.reorder_prob > 0.0 && rng_.Chance(config_.reorder_prob)) {
    const Tick span = config_.reorder_delay_max - config_.reorder_delay_min;
    DCTCPP_ASSERT(span >= 0);
    const Tick delay = config_.reorder_delay_min + rng_.UniformTick(span);
    held_.Hold(pkt, now + delay);
    ++stats_.reordered;
    ArmRelease();
    return false;
  }

  if (config_.duplicate_prob > 0.0 && rng_.Chance(config_.duplicate_prob)) {
    *duplicate = true;
    ++stats_.duplicates;
    sim_.invariants().CountDuplicated();
  }
  return true;
}

void ImpairmentStage::ArmRelease() {
  // Always re-home the release event at the heap minimum: a fresh hold can
  // be due before everything already buffered.
  if (!held_.Empty()) release_ev_.ArmAt(held_.NextRelease());
}

void ImpairmentStage::OnRelease() {
  const Tick now = sim_.Now();
  UpdateLinkState(now);
  held_.ReleaseDue(now, [&](const Packet& pkt) {
    ++stats_.released;
    if (!link_up_) {
      // The link went down while the packet sat in the hold buffer.
      CountDrop(&stats_.link_down_losses, "link-down", pkt);
      return;
    }
    // Re-enters behind packets submitted during the hold — that is the
    // reordering. Held packets are not re-impaired.
    port_.InjectReleased(pkt);
  });
  ArmRelease();
}

void ReorderBuffer::SaveState(CheckpointWriter& w) const {
  w.U64(heap_.size());
  for (const Held& h : heap_) {
    w.I64(h.release_at);
    w.U64(h.order);
    SavePacket(w, h.pkt);
  }
  w.U64(next_order_);
}

void ReorderBuffer::LoadState(CheckpointReader& r) {
  DCTCPP_ASSERT(heap_.empty());
  const std::uint64_t n = r.U64();
  heap_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Held h;
    h.release_at = r.I64();
    h.order = r.U64();
    h.pkt = LoadPacket(r);
    heap_.push_back(std::move(h));
  }
  next_order_ = r.U64();
}

void ImpairmentStage::SaveState(CheckpointWriter& w) const {
  std::uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (std::uint64_t s : rng_state) w.U64(s);
  w.Bool(ge_bad_);
  w.Bool(link_up_);
  w.U64(next_flap_);
  w.U64(data_seen_);
  w.U64(acks_seen_);
  held_.SaveState(w);
  w.U64(stats_.submitted);
  w.U64(stats_.random_losses);
  w.U64(stats_.burst_losses);
  w.U64(stats_.link_down_losses);
  w.U64(stats_.forced_losses);
  w.U64(stats_.duplicates);
  w.U64(stats_.corruptions);
  w.U64(stats_.reordered);
  w.U64(stats_.released);
  const bool armed = release_ev_.armed();
  w.Bool(armed);
  if (armed) {
    Tick at = 0;
    std::uint64_t seq = 0;
    release_ev_.Arming(&at, &seq);
    w.I64(at);
    w.U64(seq);
  }
}

void ImpairmentStage::LoadState(CheckpointReader& r) {
  std::uint64_t rng_state[4];
  for (std::uint64_t& s : rng_state) s = r.U64();
  rng_.LoadState(rng_state);
  ge_bad_ = r.Bool();
  link_up_ = r.Bool();
  next_flap_ = r.U64();
  data_seen_ = r.U64();
  acks_seen_ = r.U64();
  held_.LoadState(r);
  stats_.submitted = r.U64();
  stats_.random_losses = r.U64();
  stats_.burst_losses = r.U64();
  stats_.link_down_losses = r.U64();
  stats_.forced_losses = r.U64();
  stats_.duplicates = r.U64();
  stats_.corruptions = r.U64();
  stats_.reordered = r.U64();
  stats_.released = r.U64();
  if (r.Bool()) {
    const Tick at = r.I64();
    const std::uint64_t seq = r.U64();
    release_ev_.ArmAtWithSeq(at, seq);
  }
}

}  // namespace dctcpp
