#include "dctcpp/net/switch.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

namespace {

// 64-bit finalizer (splitmix64's): full avalanche, so consecutive flow
// tuples land on uncorrelated ECMP members.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Distinct salt domain for Valiant group assignment so the intermediate
// group is independent of the ECMP member choices along the path.
constexpr std::uint64_t kValiantSalt = 0x76616c69616e7421ull;

}  // namespace

int Switch::AddPort(const LinkConfig& config, PacketSink& peer,
                    Simulator* peer_sim) {
  ports_.push_back(
      std::make_unique<EgressPort>(sim_, config, peer, peer_sim));
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::SetRoute(NodeId dst, int port) {
  DCTCPP_ASSERT(port >= 0 && port < PortCount());
  DCTCPP_ASSERT(dst >= 0);
  const auto idx = static_cast<std::size_t>(dst);
  if (routes_.size() <= idx) routes_.resize(idx + 1, -1);
  routes_[idx] = port;
}

void Switch::AddRouteInterval(NodeId lo, NodeId hi, int port_base,
                              int stride) {
  DCTCPP_ASSERT(lo >= 0 && hi > lo);
  DCTCPP_ASSERT(stride > 0);
  DCTCPP_ASSERT(port_base >= 0);
  // The last covered destination must map to an existing port.
  DCTCPP_ASSERT(port_base + (hi - 1 - lo) / stride < PortCount());
  RouteInterval r;
  r.lo = lo;
  r.hi = hi;
  r.port_base = port_base;
  r.stride = stride;
  intervals_.push_back(r);
}

void Switch::SetEcmpUplinks(std::vector<std::int16_t> ports) {
  DCTCPP_ASSERT(!ports.empty());
  for (const std::int16_t p : ports) {
    DCTCPP_ASSERT(p >= 0 && p < PortCount());
  }
  ecmp_ports_ = std::move(ports);
  // Salt from the stable NodeId: deterministic across runs and shard
  // counts, different per switch so tiers hash independently.
  ecmp_salt_ = Mix64(static_cast<std::uint64_t>(id_) * 0xff51afd7ed558ccdull);
}

void Switch::SetGroupRoutes(std::vector<std::int16_t> port_by_group,
                            std::int32_t my_group, NodeId host_base,
                            std::int32_t hosts_per_group) {
  DCTCPP_ASSERT(!port_by_group.empty());
  DCTCPP_ASSERT(my_group >= 0 &&
                my_group < static_cast<std::int32_t>(port_by_group.size()));
  DCTCPP_ASSERT(hosts_per_group > 0);
  for (std::size_t g = 0; g < port_by_group.size(); ++g) {
    if (static_cast<std::int32_t>(g) == my_group) continue;
    DCTCPP_ASSERT(port_by_group[g] >= 0 && port_by_group[g] < PortCount());
  }
  group_routes_ = std::move(port_by_group);
  my_group_ = my_group;
  group_host_base_ = host_base;
  hosts_per_group_ = hosts_per_group;
}

void Switch::EnableValiantTagging(std::int16_t groups, NodeId src_lo,
                                  NodeId src_hi) {
  DCTCPP_ASSERT(groups > 0);
  DCTCPP_ASSERT(src_hi > src_lo);
  valiant_groups_ = groups;
  valiant_src_lo_ = src_lo;
  valiant_src_hi_ = src_hi;
}

int Switch::CompactRouteTo(NodeId dst) const {
  for (const RouteInterval& r : intervals_) {
    if (dst >= r.lo && dst < r.hi) {
      return r.port_base + static_cast<int>((dst - r.lo) / r.stride);
    }
  }
  if (!group_routes_.empty()) {
    const std::int32_t g = GroupOf(dst);
    if (g >= 0 && g != my_group_) return group_routes_[g];
  }
  return -1;
}

std::uint64_t Switch::FlowHash(const Packet& pkt, std::uint64_t salt) {
  std::uint64_t h = salt;
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pkt.src))
        << 32) |
       static_cast<std::uint32_t>(pkt.dst);
  h = Mix64(h);
  h ^= (static_cast<std::uint64_t>(pkt.tcp.src_port) << 16) |
       pkt.tcp.dst_port;
  return Mix64(h);
}

int Switch::RoutePacket(const Packet& pkt) const {
  // Valiant detour phase: a tagged packet not yet at its intermediate
  // group, and whose destination is also elsewhere, heads for the tag.
  if (pkt.valiant_group >= 0 && !group_routes_.empty() &&
      pkt.valiant_group != my_group_ && GroupOf(pkt.dst) != my_group_) {
    return group_routes_[static_cast<std::size_t>(pkt.valiant_group)];
  }
  const int direct = RouteTo(pkt.dst);
  if (direct >= 0) return direct;
  if (!ecmp_ports_.empty()) {
    const std::uint64_t h = FlowHash(pkt, ecmp_salt_);
    return ecmp_ports_[static_cast<std::size_t>(h % ecmp_ports_.size())];
  }
  return -1;
}

std::size_t Switch::RouteMemoryBytes() const {
  return routes_.capacity() * sizeof(std::int32_t) +
         intervals_.capacity() * sizeof(RouteInterval) +
         ecmp_ports_.capacity() * sizeof(std::int16_t) +
         group_routes_.capacity() * sizeof(std::int16_t);
}

void Switch::Deliver(const Packet& pkt) {
  // Corrupted packets are forwarded, not dropped: the fault model is an
  // end-to-end TCP checksum (verified by the destination host), not a
  // per-hop Ethernet FCS. The switch just counts them passing through.
  if (pkt.corrupted) ++corrupted_forwarded_;
  if (valiant_groups_ > 0 && pkt.valiant_group < 0 &&
      pkt.src >= valiant_src_lo_ && pkt.src < valiant_src_hi_) {
    // First hop of a Valiant-routed flow: stamp the intermediate group.
    // The hash is a pure function of the flow tuple, so every retransmit
    // takes the same path and the stamp is shard/pool-invariant.
    Packet tagged = pkt;
    tagged.valiant_group = static_cast<std::int16_t>(
        FlowHash(pkt, kValiantSalt) %
        static_cast<std::uint64_t>(valiant_groups_));
    const int out = RoutePacket(tagged);
    DCTCPP_ASSERT(out >= 0);  // unroutable: topology bug
    ports_[static_cast<std::size_t>(out)]->Send(tagged);
    return;
  }
  const int out = RoutePacket(pkt);
  DCTCPP_ASSERT(out >= 0);  // unroutable: topology bug
  ports_[static_cast<std::size_t>(out)]->Send(pkt);
}

}  // namespace dctcpp
