#include "dctcpp/net/switch.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

int Switch::AddPort(const LinkConfig& config, PacketSink& peer) {
  ports_.push_back(std::make_unique<EgressPort>(sim_, config, peer));
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::SetRoute(NodeId dst, int port) {
  DCTCPP_ASSERT(port >= 0 && port < PortCount());
  routes_[dst] = port;
}

int Switch::RouteTo(NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? -1 : it->second;
}

void Switch::Deliver(const Packet& pkt) {
  const int out = RouteTo(pkt.dst);
  DCTCPP_ASSERT(out >= 0);  // unroutable: topology bug
  ports_[static_cast<std::size_t>(out)]->Send(pkt);
}

}  // namespace dctcpp
