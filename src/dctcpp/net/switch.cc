#include "dctcpp/net/switch.h"

#include "dctcpp/util/assert.h"

namespace dctcpp {

int Switch::AddPort(const LinkConfig& config, PacketSink& peer,
                    Simulator* peer_sim) {
  ports_.push_back(
      std::make_unique<EgressPort>(sim_, config, peer, peer_sim));
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::SetRoute(NodeId dst, int port) {
  DCTCPP_ASSERT(port >= 0 && port < PortCount());
  DCTCPP_ASSERT(dst >= 0);
  const auto idx = static_cast<std::size_t>(dst);
  if (routes_.size() <= idx) routes_.resize(idx + 1, -1);
  routes_[idx] = port;
}

void Switch::Deliver(const Packet& pkt) {
  const int out = RouteTo(pkt.dst);
  DCTCPP_ASSERT(out >= 0);  // unroutable: topology bug
  // Corrupted packets are forwarded, not dropped: the fault model is an
  // end-to-end TCP checksum (verified by the destination host), not a
  // per-hop Ethernet FCS. The switch just counts them passing through.
  if (pkt.corrupted) ++corrupted_forwarded_;
  ports_[static_cast<std::size_t>(out)]->Send(pkt);
}

}  // namespace dctcpp
