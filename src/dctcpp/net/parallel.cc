#include "dctcpp/net/parallel.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "dctcpp/util/assert.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace dctcpp {

namespace {

/// Busy-wait hint: cheap pause for the first spins, yield once the wait
/// clearly spans more than a window's worth of work so an oversubscribed
/// machine still makes progress.
inline void SpinWait(int iteration) {
  if (iteration < 1024) {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    std::this_thread::yield();
#endif
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

// --- ArrivalCalendar ------------------------------------------------------

CalendarEntry ArrivalCalendar::PopEarliest() {
  DCTCPP_DASSERT(!heap_.empty());
  CalendarEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return top;
}

void ArrivalCalendar::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void ArrivalCalendar::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && Before(heap_[l], heap_[best])) best = l;
    if (r < n && Before(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

// --- WindowGang -----------------------------------------------------------

WindowGang::WindowGang(ThreadPool& pool, int helpers, Task task)
    : state_(std::make_shared<State>()), task_(std::move(task)) {
  for (int h = 0; h < helpers; ++h) {
    // Helpers capture only the shared state and a copy of the task: once
    // `exit` is raised they return without touching either again, so the
    // gang (and whatever the task references) may die while a helper is
    // still draining out of its spin loop.
    pool.Post([state = state_, task = task_] {
      std::uint64_t seen = 0;
      for (int spin = 0;; ++spin) {
        const std::uint64_t v = state->seq.load(std::memory_order_acquire);
        if (v == seen) {
          SpinWait(spin);
          continue;
        }
        if (state->exit.load(std::memory_order_acquire)) return;
        seen = v;
        spin = 0;
        ClaimLoop(*state, v, task);
      }
    });
  }
}

WindowGang::~WindowGang() {
  state_->exit.store(true, std::memory_order_release);
  state_->seq.fetch_add(1, std::memory_order_release);
}

void WindowGang::ClaimLoop(State& s, std::uint64_t my_seq, const Task& task) {
  for (;;) {
    std::uint64_t c = s.claim.load(std::memory_order_relaxed);
    if ((c >> 32) != my_seq) return;  // stale window: nothing left for us
    const auto t = static_cast<std::uint32_t>(c & 0xffffffffu);
    // Bounds-check against *this window's* count slot: a helper parked on
    // the terminal claim (my_seq, n) while the caller starts the next
    // window must keep seeing n here, not the next window's count, or it
    // could claim a dead slot below before the new epoch is published.
    if (static_cast<int>(t) >=
        s.count[my_seq & 1].load(std::memory_order_relaxed)) {
      return;
    }
    // CAS (not fetch_add) so a laggard from the previous window can never
    // consume a slot of this one: its epoch check above fails before it
    // ever modifies the counter.
    if (!s.claim.compare_exchange_weak(c, c + 1, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
      continue;
    }
    task(static_cast<int>(t));
    s.done.fetch_add(1, std::memory_order_release);
  }
}

void WindowGang::Run(int n) {
  DCTCPP_DASSERT(n >= 0);
  if (n == 0) return;
  State& s = *state_;
  const std::uint64_t seq = ++next_seq_;
  s.count[seq & 1].store(n, std::memory_order_relaxed);
  s.done.store(0, std::memory_order_relaxed);
  s.claim.store(seq << 32, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
  ClaimLoop(s, seq, task_);
  // Gather: every claimed task reports exactly once; acquire pairs with
  // the workers' release so their shard writes are visible afterwards.
  for (int spin = 0;
       s.done.load(std::memory_order_acquire) != static_cast<std::uint32_t>(n);
       ++spin) {
    SpinWait(spin);
  }
}

// --- ParallelSimulation ---------------------------------------------------

ParallelSimulation::ParallelSimulation(std::uint64_t seed, int shards)
    : seed_(seed) {
  DCTCPP_ASSERT(shards >= 1);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto sh = std::make_unique<Shard>(seed);
    sh->outbox.resize(static_cast<std::size_t>(shards));
    sh->sim.BindShard(this, i, &sequences_, &stop_);
    shards_.push_back(std::move(sh));
  }
}

void ParallelSimulation::Handoff(int src, int dst, Tick at, std::uint64_t key,
                                 PacketSink* sink, const Packet& pkt) {
  DCTCPP_DASSERT(src >= 0 && src < shard_count());
  DCTCPP_DASSERT(dst >= 0 && dst < shard_count());
  CalendarEntry e;
  e.at = at;
  e.key = key;
  e.sink = sink;
  e.pkt = pkt;
  Shard& source = *shards_[static_cast<std::size_t>(src)];
  if (src == dst) {
    // The calling thread owns this shard for the duration of the window.
    source.calendar.Push(e);
  } else {
    source.outbox[static_cast<std::size_t>(dst)].push_back(e);
    ++source.cross_deposits;
  }
}

void ParallelSimulation::RunShardWindow(int idx, Tick end) {
  Shard& sh = *shards_[static_cast<std::size_t>(idx)];
  Simulator& sim = sh.sim;
  for (;;) {
    const Tick tc = sh.calendar.NextTime();
    const Tick tw = sim.scheduler().NextTime();
    if (std::min(tc, tw) >= end) return;
    if (tc <= tw) {
      // All arrivals due at tick tc deliver before any wheel event at tc,
      // in (at, key) order — the canonical tie-break shared by every
      // shard count. Deliveries may schedule wheel work at tc (handled
      // next iteration, after the batch) and may hand off new arrivals,
      // but those land >= tc + W (one full lookahead away), never here.
      sim.SetNow(tc);
      do {
        const CalendarEntry e = sh.calendar.PopEarliest();
        e.sink->Deliver(e.pkt);
        ++sh.delivered;
      } while (!sh.calendar.Empty() && sh.calendar.NextTime() == tc);
    } else {
      // Wheel events strictly before the next arrival (and window end).
      sim.RunWindow(std::min(tc, end));
    }
  }
}

void ParallelSimulation::MergeOutboxes() {
  for (auto& src : shards_) {
    for (std::size_t dst = 0; dst < src->outbox.size(); ++dst) {
      auto& box = src->outbox[dst];
      if (box.empty()) continue;
      ArrivalCalendar& cal = shards_[dst]->calendar;
      for (const CalendarEntry& e : box) cal.Push(e);
      box.clear();
    }
  }
}

std::uint64_t ParallelSimulation::RunUntil(Tick deadline, ThreadPool* pool) {
  DCTCPP_ASSERT(deadline >= 0);
  const Tick dp1 = SatAddTick(deadline, 1);
  const int s = shard_count();
  const int helpers =
      pool != nullptr
          ? static_cast<int>(std::min<std::size_t>(
                pool->size(), static_cast<std::size_t>(s - 1)))
          : 0;
  std::unique_ptr<WindowGang> gang;
  if (helpers > 0) {
    gang = std::make_unique<WindowGang>(*pool, helpers, [this](int t) {
      RunShardWindow(active_[static_cast<std::size_t>(t)], window_end_);
    });
  }

  std::uint64_t windows = 0;
  std::vector<Tick> next(static_cast<std::size_t>(s), kTickMax);
  for (;;) {
    // Stop lands here and only here: the flag was raised by an event
    // inside the window just completed — the same event, in the same
    // window, for every shard count — so every S executes the identical
    // set of windows.
    if (stop_.load(std::memory_order_acquire)) {
      stopped_ = true;
      break;
    }
    Tick gn = kTickMax;
    for (int i = 0; i < s; ++i) {
      next[static_cast<std::size_t>(i)] =
          ShardNext(*shards_[static_cast<std::size_t>(i)]);
      gn = std::min(gn, next[static_cast<std::size_t>(i)]);
    }
    if (gn >= dp1) break;  // drained, or nothing left before the deadline
    const Tick we = std::min(SatAddTick(gn, lookahead_), dp1);
    active_.clear();
    for (int i = 0; i < s; ++i) {
      if (next[static_cast<std::size_t>(i)] < we) active_.push_back(i);
    }
    window_end_ = we;
    ++windows;
    if (gang != nullptr && active_.size() > 1) {
      ++gang_windows_;
      gang->Run(static_cast<int>(active_.size()));
    } else {
      // One busy shard (the common sparse phase) — or no pool at all —
      // runs inline with zero synchronization traffic.
      for (const int idx : active_) RunShardWindow(idx, we);
    }
    MergeOutboxes();
  }
  windows_ += windows;

  if (!stopped_ && deadline != kTickMax) {
    // Mirror Simulator::RunUntil: a drained/deadline-bounded run leaves
    // every clock at the deadline.
    for (auto& sh : shards_) {
      if (sh->sim.Now() < deadline) sh->sim.SetNow(deadline);
    }
  }
  return windows;
}

std::uint64_t ParallelSimulation::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->sim.events_executed() + sh->delivered;
  }
  return total;
}

std::uint64_t ParallelSimulation::packets_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sim.packets_forwarded();
  return total;
}

std::uint64_t ParallelSimulation::calendar_deliveries() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->delivered;
  return total;
}

std::uint64_t ParallelSimulation::cross_shard_handoffs() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->cross_deposits;
  return total;
}

NetworkInvariants::Ledger ParallelSimulation::MergedLedger() const {
  NetworkInvariants::Ledger merged;
  for (const auto& sh : shards_) {
    const auto& l = sh->sim.invariants().ledger();
    merged.originated += l.originated;
    merged.duplicated += l.duplicated;
    merged.delivered += l.delivered;
    merged.dropped += l.dropped;
    merged.checksum_discards += l.checksum_discards;
  }
  return merged;
}

std::uint64_t ParallelSimulation::invariant_violations() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sim.invariants().violations();
  if (!NetworkInvariants::LedgerConsistent(MergedLedger())) ++total;
  return total;
}

std::string ParallelSimulation::first_violation() const {
  for (const auto& sh : shards_) {
    if (!sh->sim.invariants().first_violation().empty()) {
      return sh->sim.invariants().first_violation();
    }
  }
  if (!NetworkInvariants::LedgerConsistent(MergedLedger())) {
    return "merged packet ledger inconsistent";
  }
  return std::string();
}

}  // namespace dctcpp
