#include "dctcpp/net/parallel.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/util/assert.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace dctcpp {

namespace {

/// Escalating wait for gang spins: cheap pauses while the window is
/// likely mid-flight, a bounded stretch of yields once the wait spans a
/// scheduling quantum, then short sleeps doubling 16 us -> 256 us so an
/// oversubscribed gang (more helpers than cores) parks its idle helpers
/// instead of burning a core each. Helpers in the sleep stage cost up to
/// one sleep period of dispatch latency — acceptable exactly when waits
/// are this long (sparse single-shard phases, or no spare core anyway).
inline void SpinWait(int iteration) {
  if (iteration < 256) {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    std::this_thread::yield();
#endif
  } else if (iteration < 4096) {
    std::this_thread::yield();
  } else {
    const int stage = std::min(4, (iteration - 4096) >> 10);
    std::this_thread::sleep_for(std::chrono::microseconds(16 << stage));
  }
}

}  // namespace

// --- ArrivalCalendar ------------------------------------------------------

CalendarEntry ArrivalCalendar::PopEarliest() {
  DCTCPP_DASSERT(!heap_.empty());
  DCTCPP_DASSERT(staged_ == 0);
  CalendarEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return top;
}

void ArrivalCalendar::FinishBulk() {
  if (staged_ == 0) return;
  const std::size_t n = heap_.size();
  if (staged_ >= n / 4) {
    // Batch is a sizable fraction of the heap: one O(n) rebuild beats
    // staged_ * log(n) sifts.
    for (std::size_t i = n / 2; i-- > 0;) SiftDown(i);
  } else {
    // Sift the appended suffix in append order — each sift sees a valid
    // heap above it, exactly as a sequence of Push calls would.
    for (std::size_t i = n - staged_; i < n; ++i) SiftUp(i);
  }
  staged_ = 0;
}

void ArrivalCalendar::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void ArrivalCalendar::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && Before(heap_[l], heap_[best])) best = l;
    if (r < n && Before(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

// --- WindowGang -----------------------------------------------------------

WindowGang::WindowGang(ThreadPool& pool, int helpers, Task task)
    : state_(std::make_shared<State>()), task_(std::move(task)) {
  for (int h = 0; h < helpers; ++h) {
    // Helpers capture only the shared state and a copy of the task: once
    // `exit` is raised they return without touching either again, so the
    // gang (and whatever the task references) may die while a helper is
    // still draining out of its spin loop.
    pool.Post([state = state_, task = task_] {
      std::uint64_t seen = 0;
      for (int spin = 0;; ++spin) {
        const std::uint64_t v = state->seq.load(std::memory_order_acquire);
        if (v == seen) {
          SpinWait(spin);
          continue;
        }
        if (state->exit.load(std::memory_order_acquire)) return;
        seen = v;
        spin = 0;
        ClaimLoop(*state, v, task);
      }
    });
  }
}

WindowGang::~WindowGang() {
  state_->exit.store(true, std::memory_order_release);
  state_->seq.fetch_add(1, std::memory_order_release);
}

void WindowGang::ClaimLoop(State& s, std::uint64_t my_seq, const Task& task) {
  for (;;) {
    std::uint64_t c = s.claim.load(std::memory_order_relaxed);
    if ((c >> 32) != my_seq) return;  // stale window: nothing left for us
    const auto t = static_cast<std::uint32_t>(c & 0xffffffffu);
    // Bounds-check against *this window's* count slot: a helper parked on
    // the terminal claim (my_seq, n) while the caller starts the next
    // window must keep seeing n here, not the next window's count, or it
    // could claim a dead slot below before the new epoch is published.
    if (static_cast<int>(t) >=
        s.count[my_seq & 1].load(std::memory_order_relaxed)) {
      return;
    }
    // CAS (not fetch_add) so a laggard from the previous window can never
    // consume a slot of this one: its epoch check above fails before it
    // ever modifies the counter.
    if (!s.claim.compare_exchange_weak(c, c + 1, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
      continue;
    }
    task(static_cast<int>(t));
    s.done.fetch_add(1, std::memory_order_release);
  }
}

void WindowGang::Run(int n) {
  DCTCPP_DASSERT(n >= 0);
  if (n == 0) return;
  State& s = *state_;
  const std::uint64_t seq = ++next_seq_;
  s.count[seq & 1].store(n, std::memory_order_relaxed);
  s.done.store(0, std::memory_order_relaxed);
  s.claim.store(seq << 32, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_release);
  ClaimLoop(s, seq, task_);
  // Gather: every claimed task reports exactly once; acquire pairs with
  // the workers' release so their shard writes are visible afterwards.
  for (int spin = 0;
       s.done.load(std::memory_order_acquire) != static_cast<std::uint32_t>(n);
       ++spin) {
    SpinWait(spin);
  }
}

// --- ParallelSimulation ---------------------------------------------------

ParallelSimulation::ParallelSimulation(std::uint64_t seed, int shards)
    : seed_(seed) {
  DCTCPP_ASSERT(shards >= 1);
  const auto s = static_cast<std::size_t>(shards);
  shards_.reserve(s);
  for (int i = 0; i < shards; ++i) {
    auto sh = std::make_unique<Shard>(seed);
    sh->sim.BindShard(this, i, &sequences_, &stop_);
    shards_.push_back(std::move(sh));
  }
  channel_min_.assign(s * s, kTickMax);
  influence_.assign(s * s, kTickMax);
  window_ends_.assign(s, 0);
}

void ParallelSimulation::ObserveChannel(int src, int dst,
                                        Tick propagation_delay) {
  DCTCPP_ASSERT(propagation_delay > 0);
  DCTCPP_DASSERT(src >= 0 && src < shard_count());
  DCTCPP_DASSERT(dst >= 0 && dst < shard_count());
  if (src == dst) {
    // Intra-shard channel: bounds how deep the shard's own wheel may run
    // before re-reading its calendar (see RunShardWindow), but plays no
    // part in the cross-shard closure.
    Shard& sh = *shards_[static_cast<std::size_t>(src)];
    sh.self_delay = std::min(sh.self_delay, propagation_delay);
    return;
  }
  Tick& slot = channel_min_[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(shard_count()) +
                            static_cast<std::size_t>(dst)];
  slot = std::min(slot, propagation_delay);
}

void ParallelSimulation::ComputeInfluenceClosure() {
  // Min-plus closure of the channel graph over paths with >= 1 hop: seed
  // with the direct channels (diagonal stays kTickMax, NOT 0 — influence
  // needs at least one link) and relax Floyd-Warshall style. All weights
  // are positive, so shortest walks are simple-ish and the closure obeys
  // the triangle inequality R[k][i] + R[i][j] >= R[k][j] — the property
  // behind both window safety and clock monotonicity (DESIGN.md Sec. 10).
  // Intra-shard links are irrelevant as intermediate hops: a path through
  // a node of shard i enters and leaves i over cross-shard channels, and
  // inserting intra-shard hops only adds positive delay.
  const auto s = static_cast<std::size_t>(shard_count());
  influence_ = channel_min_;
  if (!channel_allowed_.empty()) {
    // Pruned channels carry no traffic (RestrictChannels' verified
    // promise), so they contribute no influence: masking them before the
    // closure is what turns a good partition into infinite lookahead for
    // the shard pairs the connection matrix never couples.
    for (std::size_t i = 0; i < s * s; ++i) {
      if (channel_allowed_[i] == 0) influence_[i] = kTickMax;
    }
  }
  for (std::size_t k = 0; k < s; ++k) {
    for (std::size_t i = 0; i < s; ++i) {
      const Tick ik = influence_[i * s + k];
      if (ik == kTickMax) continue;
      for (std::size_t j = 0; j < s; ++j) {
        const Tick kj = influence_[k * s + j];
        if (kj == kTickMax) continue;
        Tick& ij = influence_[i * s + j];
        ij = std::min(ij, SatAddTick(ik, kj));
      }
    }
  }
}

void ParallelSimulation::Handoff(int src, int dst, Tick at, std::uint64_t key,
                                 PacketSink* sink, const Packet& pkt) {
  DCTCPP_DASSERT(src >= 0 && src < shard_count());
  DCTCPP_DASSERT(dst >= 0 && dst < shard_count());
  Shard& source = *shards_[static_cast<std::size_t>(src)];
  if (src == dst) {
    // The calling thread owns this shard for the duration of the window.
    CalendarEntry e;
    e.at = at;
    e.key = key;
    e.sink = sink;
    e.pkt = pkt;
    source.calendar.Push(e);
  } else {
    if (!channel_allowed_.empty() &&
        channel_allowed_[static_cast<std::size_t>(src) *
                             static_cast<std::size_t>(shard_count()) +
                         static_cast<std::size_t>(dst)] == 0) {
      // A packet on a pruned channel means the RestrictChannels mask was
      // wrong — count it (folded into invariant_violations) but still
      // deliver the packet; the merge-horizon check reports any actual
      // causality damage.
      ++source.pruned_handoffs;
    }
    source.staging.Append(at, key, dst, sink, pkt);
    ++source.cross_deposits;
  }
}

void ParallelSimulation::RestrictChannels(std::vector<std::uint8_t> allowed) {
  const auto s = static_cast<std::size_t>(shard_count());
  DCTCPP_ASSERT(allowed.size() == s * s);
  channel_allowed_ = std::move(allowed);
}

std::uint64_t ParallelSimulation::pruned_channel_handoffs() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->pruned_handoffs;
  return total;
}

void ParallelSimulation::RunShardWindow(int idx, Tick end) {
  Shard& sh = *shards_[static_cast<std::size_t>(idx)];
  Simulator& sim = sh.sim;
  for (;;) {
    const Tick tc = sh.calendar.NextTime();
    const Tick tw = sim.scheduler().NextTime();
    if (std::min(tc, tw) >= end) return;
    if (tc <= tw) {
      // All arrivals due at tick tc deliver before any wheel event at tc,
      // in (at, key) order — the canonical tie-break shared by every
      // shard count. Deliveries may schedule wheel work at tc (handled
      // next iteration, after the batch); handoffs they trigger go
      // through the wheel first, never straight back into the calendar.
      sim.SetNow(tc);
      // The same-tick drain is the batched-ACK burst scope: consecutive
      // deliveries into one sink are a run a socket may defer emissions
      // across. A sink change breaks every run (the next sink's processing
      // could enqueue behind the deferred packets), so flush there; the
      // Host breaks runs on flow changes within one sink, and EndAckBurst
      // flushes whatever the tick's last run left pending.
      sim.BeginAckBurst();
      PacketSink* run_sink = nullptr;
      do {
        const CalendarEntry e = sh.calendar.PopEarliest();
        // Burst pipeline: while arrival i runs its socket chain, warm
        // arrival i+1's demux probe chain (the sink reads the flow key out
        // of the peeked entry, which doubles as the packet prefetch).
        // Skipped in scalar reference mode so the oracle replays the
        // prefetch-free per-packet path.
        if (!scalar_ref_ && !sh.calendar.Empty() &&
            sh.calendar.NextTime() == tc) {
          const CalendarEntry& nx = sh.calendar.PeekEarliest();
          nx.sink->PrefetchDeliver(nx.pkt);
        }
        if (e.sink != run_sink) {
          sim.FlushAckBursts();
          run_sink = e.sink;
        }
        e.sink->Deliver(e.pkt);
        ++sh.delivered;
      } while (!sh.calendar.Empty() && sh.calendar.NextTime() == tc);
      sim.EndAckBurst();
    } else {
      // Wheel events up to the intra-shard lookahead horizon: an event at
      // u >= tw may deposit an arrival into this shard's own calendar due
      // u + self_delay at the earliest, so every wheel tick before
      // tw + self_delay is safe to run blind — but no further, because
      // adaptive windows are wider than intra-shard link delays (the
      // fixed-W engine never noticed: its windows were narrower than any
      // link delay, so in-window deposits always landed beyond `end`).
      sim.RunWindow(std::min({tc, end, SatAddTick(tw, sh.self_delay)}));
    }
  }
}

void ParallelSimulation::MergeStaging() {
  for (auto& src : shards_) {
    OutboxStaging& st = src->staging;
    const std::size_t n = st.Size();
    for (std::size_t i = 0; i < n; ++i) {
      Shard& dst = *shards_[static_cast<std::size_t>(st.dst[i])];
      // Always-on causality check: a deposit due before the horizon its
      // destination already ran to would have been delivered in the past.
      // Window safety (DESIGN.md Sec. 10) proves this cannot happen for a
      // correct influence map; a wrong RestrictChannels mask can make it
      // happen. Either way the run is flagged, and the arrival is clamped
      // to the destination's horizon so it degrades (late delivery) rather
      // than aborting on the scheduler's time-monotonicity assert.
      Tick at = st.at[i];
      if (at < dst.ran_to) {
        ++merge_causality_violations_;
        at = dst.ran_to;
      }
      CalendarEntry e;
      e.at = at;
      e.key = st.key[i];
      e.sink = st.sink[i];
      e.pkt = st.pkt[i];
      dst.calendar.AppendRaw(e);
    }
    st.Clear();
  }
  for (auto& sh : shards_) sh->calendar.FinishBulk();
}

Tick ParallelSimulation::RefreshNext() {
  const int s = shard_count();
  Tick gn = kTickMax;
  for (int i = 0; i < s; ++i) {
    next_[static_cast<std::size_t>(i)] =
        ShardNext(*shards_[static_cast<std::size_t>(i)]);
    gn = std::min(gn, next_[static_cast<std::size_t>(i)]);
  }
  return gn;
}

void ParallelSimulation::ComputeHorizons(Tick dp1) {
  // Per-shard channel clocks: shard j may run until the earliest
  // cross-shard influence still possible, C_j = min over i of
  // next_i + R[i][j] (including i == j: a round trip through another
  // shard can bounce j's own packet back). C_j > gn always holds — R is
  // positive — so the gn-shard is always active and every sub-round makes
  // progress even when all channels are busy.
  const int s = shard_count();
  const auto su = static_cast<std::size_t>(s);
  active_.clear();
  for (int j = 0; j < s; ++j) {
    Shard& sh = *shards_[static_cast<std::size_t>(j)];
    Tick cj = dp1;
    for (int i = 0; i < s; ++i) {
      const Tick r = influence_[static_cast<std::size_t>(i) * su +
                                static_cast<std::size_t>(j)];
      if (r == kTickMax) continue;
      cj = std::min(cj, SatAddTick(next_[static_cast<std::size_t>(i)], r));
    }
    // Always-on monotonicity check: channel clocks never regress (next_i
    // only grows between sub-rounds and R obeys the triangle inequality —
    // DESIGN.md Sec. 10). A regression is counted and clamped away so a
    // bug can never shrink a horizon a shard already ran under.
    if (cj < sh.clock) {
      ++lookahead_regressions_;
      cj = sh.clock;
    }
    sh.clock = cj;
    window_ends_[static_cast<std::size_t>(j)] = cj;
    sh.ran_to = std::max(sh.ran_to, cj);
    if (next_[static_cast<std::size_t>(j)] < cj) active_.push_back(j);
  }
}

void ParallelSimulation::CloseSubRound(std::uint64_t r, Tick dp1) {
  // Serial step: only the participant whose done-increment completed the
  // sub-round gets here, and successive closers are ordered by the round
  // publish/acquire chain, so the coordinator's non-atomic state is safe.
  MergeStaging();
  const Tick gn = RefreshNext();
  bool more = gn < dp1;
  if (more) {
    ComputeHorizons(dp1);
    quiet_rounds_ =
        active_.size() <= 1 ? quiet_rounds_ + 1 : 0;
    // A concurrent phase that collapsed to a sequential relay for a
    // while hands control back to the inline path, parking the helpers.
    if (quiet_rounds_ >= kQuietRoundsToClose) more = false;
  }
  BatchState& b = batch_;
  if (!more) {
    b.window_over.store(true, std::memory_order_relaxed);
    b.round.fetch_add(1, std::memory_order_release);
    return;
  }
  ++sync_rounds_;
  const std::uint64_t nr = r + 1;
  b.count[nr & 1].store(static_cast<int>(active_.size()),
                        std::memory_order_relaxed);
  b.done.store(0, std::memory_order_relaxed);
  b.claim.store((nr & 0xffffffffu) << 32, std::memory_order_relaxed);
  b.round.store(nr, std::memory_order_release);
}

void ParallelSimulation::RunBatchWindow(Tick dp1) {
  BatchState& b = batch_;
  int spin = 0;
  for (;;) {
    const std::uint64_t r = b.round.load(std::memory_order_acquire);
    if (b.window_over.load(std::memory_order_acquire)) return;
    const auto r32 = static_cast<std::uint32_t>(r & 0xffffffffu);
    std::uint64_t c = b.claim.load(std::memory_order_relaxed);
    while ((c >> 32) == r32) {
      const auto t = static_cast<std::uint32_t>(c & 0xffffffffu);
      // Same epoch/parity reasoning as WindowGang::ClaimLoop: the count
      // slot is only trusted while the claim word still carries this
      // sub-round's epoch, and a stale CAS can never succeed because the
      // claim word never returns to an old epoch.
      if (static_cast<int>(t) >=
          b.count[r & 1].load(std::memory_order_relaxed)) {
        break;
      }
      if (!b.claim.compare_exchange_weak(c, c + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        continue;
      }
      const int idx = active_[t];
      RunShardWindow(idx, window_ends_[static_cast<std::size_t>(idx)]);
      const int n = b.count[r & 1].load(std::memory_order_relaxed);
      // acq_rel: the closer's increment acquires every earlier runner's
      // release, so CloseSubRound sees all shard writes of the sub-round.
      if (static_cast<int>(
              b.done.fetch_add(1, std::memory_order_acq_rel)) +
              1 ==
          n) {
        CloseSubRound(r, dp1);
      }
      spin = 0;
      c = b.claim.load(std::memory_order_relaxed);
    }
    if (b.round.load(std::memory_order_acquire) != r) {
      spin = 0;
      continue;
    }
    SpinWait(spin++);
  }
}

std::uint64_t ParallelSimulation::RunUntil(Tick deadline, ThreadPool* pool) {
  DCTCPP_ASSERT(deadline >= 0);
  const Tick dp1 = SatAddTick(deadline, 1);
  const int s = shard_count();
  const int helpers =
      pool != nullptr
          ? static_cast<int>(std::min<std::size_t>(
                pool->size(), static_cast<std::size_t>(s - 1)))
          : 0;
  next_.assign(static_cast<std::size_t>(s), kTickMax);
  const std::uint64_t windows_before = windows_;

  // Note the stop flag never breaks these loops: a shard's Stop() only
  // marks the run stopped, and windows keep going until the world drains
  // (gn reaching dp1). Shards overshoot a mid-window stop by
  // partition-dependent amounts, so cutting execution off at the stopping
  // window would make the executed event set — and every counter derived
  // from it — depend on the shard count and lookahead mode. Running to
  // quiescence makes it "every reachable event", identical for all
  // partitions and both modes.
  if (mode_ == LookaheadMode::kFixedWindow) {
    // PR-5 oracle: one global window of the topology-wide min delay per
    // barrier, one gang publish per window. Kept verbatim as the runtime
    // reference both for results (bit-identical) and for overhead (this
    // is the publish-per-barrier cost the batched path amortizes).
    std::unique_ptr<WindowGang> gang;
    if (helpers > 0) {
      gang = std::make_unique<WindowGang>(*pool, helpers, [this](int t) {
        const int idx = active_[static_cast<std::size_t>(t)];
        RunShardWindow(idx, window_ends_[static_cast<std::size_t>(idx)]);
      });
    }
    for (;;) {
      const Tick gn = RefreshNext();
      if (gn >= dp1) break;
      const Tick we = std::min(SatAddTick(gn, lookahead_), dp1);
      active_.clear();
      for (int i = 0; i < s; ++i) {
        Shard& sh = *shards_[static_cast<std::size_t>(i)];
        window_ends_[static_cast<std::size_t>(i)] = we;
        sh.ran_to = std::max(sh.ran_to, we);
        if (next_[static_cast<std::size_t>(i)] < we) active_.push_back(i);
      }
      ++windows_;
      ++sync_rounds_;
      if (gang != nullptr && active_.size() > 1) {
        ++gang_windows_;
        gang->Run(static_cast<int>(active_.size()));
      } else {
        for (const int idx : active_) {
          RunShardWindow(idx, window_ends_[static_cast<std::size_t>(idx)]);
        }
      }
      MergeStaging();
    }
  } else {
    ComputeInfluenceClosure();
    std::unique_ptr<WindowGang> gang;
    if (helpers > 0) {
      gang = std::make_unique<WindowGang>(
          *pool, helpers, [this](int) { RunBatchWindow(batch_dp1_); });
    }
    // Participant slots per batched window: the caller plus every helper,
    // but never more than could run distinct shards at once.
    const int participants = std::min(helpers + 1, s);
    for (;;) {
      Tick gn = RefreshNext();
      if (gn >= dp1) break;
      ComputeHorizons(dp1);
      ++windows_;
      if (active_.size() <= 1) {
        // Sequential relay segment: one influence chain hopping between
        // shards (straggler recovery, connect handshakes). Run it as one
        // window with zero synchronization traffic — each hop is a
        // shard run plus a single-threaded merge, no publish, no gang.
        do {
          ++sync_rounds_;
          const int idx = active_[0];
          RunShardWindow(idx, window_ends_[static_cast<std::size_t>(idx)]);
          MergeStaging();
          gn = RefreshNext();
          if (gn >= dp1) break;
          ComputeHorizons(dp1);
        } while (active_.size() <= 1);
        continue;
      }
      // Concurrent phase: publish ONE wide window and run sub-rounds
      // inside it until the phase dies down (kQuietRoundsToClose) or the
      // world drains. Helpers stay resident across sub-rounds; the
      // per-sub-round cost is one claim/done cycle plus the closer's
      // serial merge, with no re-publish and no helper re-wake.
      ++sync_rounds_;
      quiet_rounds_ = 0;
      batch_dp1_ = dp1;
      BatchState& b = batch_;
      const std::uint64_t r = b.round.load(std::memory_order_relaxed);
      b.count[r & 1].store(static_cast<int>(active_.size()),
                           std::memory_order_relaxed);
      b.done.store(0, std::memory_order_relaxed);
      b.claim.store((r & 0xffffffffu) << 32, std::memory_order_relaxed);
      b.window_over.store(false, std::memory_order_relaxed);
      if (gang != nullptr) {
        // The gang publish is the release fence that makes the batch
        // state above visible to helpers.
        ++gang_windows_;
        gang->Run(participants);
      } else {
        RunBatchWindow(dp1);
      }
    }
  }
  stopped_ = stop_.load(std::memory_order_acquire);

  if (!stopped_ && deadline != kTickMax) {
    // Mirror Simulator::RunUntil: a drained/deadline-bounded run leaves
    // every clock at the deadline.
    for (auto& sh : shards_) {
      if (sh->sim.Now() < deadline) sh->sim.SetNow(deadline);
    }
  }
  return windows_ - windows_before;
}

std::uint64_t ParallelSimulation::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->sim.events_executed() + sh->delivered;
  }
  return total;
}

std::uint64_t ParallelSimulation::packets_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sim.packets_forwarded();
  return total;
}

std::uint64_t ParallelSimulation::calendar_deliveries() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->delivered;
  return total;
}

std::uint64_t ParallelSimulation::cross_shard_handoffs() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->cross_deposits;
  return total;
}

NetworkInvariants::Ledger ParallelSimulation::MergedLedger() const {
  NetworkInvariants::Ledger merged;
  for (const auto& sh : shards_) {
    const auto& l = sh->sim.invariants().ledger();
    merged.originated += l.originated;
    merged.duplicated += l.duplicated;
    merged.delivered += l.delivered;
    merged.dropped += l.dropped;
    merged.checksum_discards += l.checksum_discards;
  }
  return merged;
}

std::uint64_t ParallelSimulation::invariant_violations() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sim.invariants().violations();
  if (!NetworkInvariants::LedgerConsistent(MergedLedger())) ++total;
  total += merge_causality_violations_;
  total += lookahead_regressions_;
  total += pruned_channel_handoffs();
  return total;
}

// --- checkpoint -----------------------------------------------------------

namespace {
constexpr std::uint32_t kTagParallel = 0x5053494d;  // "PSIM"
constexpr std::uint32_t kTagShard = 0x53485244;     // "SHRD"
}  // namespace

void ArrivalCalendar::SaveState(CheckpointWriter& w) const {
  DCTCPP_ASSERT(staged_ == 0);
  w.U64(heap_.size());
  for (const CalendarEntry& e : heap_) {
    w.I64(e.at);
    w.U64(e.key);
    SavePacket(w, e.pkt);
  }
}

void ArrivalCalendar::LoadState(
    CheckpointReader& r,
    const std::function<PacketSink*(std::uint64_t)>& sink_for_key) {
  DCTCPP_ASSERT(heap_.empty() && staged_ == 0);
  const std::uint64_t n = r.U64();
  heap_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    CalendarEntry e;
    e.at = r.I64();
    e.key = r.U64();
    e.pkt = LoadPacket(r);
    e.sink = sink_for_key(e.key);
    heap_.push_back(e);
  }
}

void ParallelSimulation::RegisterPortSink(std::uint64_t gid, PacketSink* sink,
                                          int dst_shard) {
  if (port_sinks_.size() <= gid) {
    port_sinks_.resize(gid + 1, nullptr);
    port_sink_shard_.resize(gid + 1, -1);
  }
  DCTCPP_ASSERT(port_sinks_[gid] == nullptr);
  port_sinks_[gid] = sink;
  port_sink_shard_[gid] = static_cast<std::int32_t>(dst_shard);
}

PacketSink* ParallelSimulation::SinkForGid(std::uint64_t gid) const {
  DCTCPP_ASSERT(gid < port_sinks_.size() && port_sinks_[gid] != nullptr);
  return port_sinks_[gid];
}

void ParallelSimulation::SaveCheckpoint(CheckpointWriter& w,
                                        const CheckpointHooks* hooks) const {
  w.Tag(kTagParallel);
  w.U64(seed_);
  w.U64(shards_.size());
  w.I64(lookahead_);  // audit: rebuilt by topology construction
  w.Bool(stopped_);
  w.U64(windows_);
  w.U64(gang_windows_);
  w.U64(sync_rounds_);
  w.U64(merge_causality_violations_);
  w.U64(lookahead_regressions_);
  for (const auto& sh : shards_) {
    w.Tag(kTagShard);
    // Barrier precondition: staging buffers are drained at every window
    // merge; a non-empty one here means we are not at a RunUntil return.
    DCTCPP_ASSERT(sh->staging.Empty());
    sh->sim.SaveCheckpoint(w, hooks);
    w.U64(sh->delivered);
    w.U64(sh->cross_deposits);
    w.I64(sh->ran_to);
    w.I64(sh->clock);
    w.I64(sh->self_delay);  // audit: rebuilt by topology construction
    w.U64(sh->pruned_handoffs);
    sh->calendar.SaveState(w);
  }
}

void ParallelSimulation::RestoreCheckpoint(CheckpointReader& r,
                                           CheckpointHooks* hooks) {
  r.ExpectTag(kTagParallel);
  const std::uint64_t saved_seed = r.U64();
  DCTCPP_ASSERT(saved_seed == seed_);
  const std::uint64_t saved_shards = r.U64();
  DCTCPP_ASSERT(saved_shards == shards_.size());
  const Tick saved_lookahead = r.I64();
  DCTCPP_ASSERT(saved_lookahead == lookahead_);
  stopped_ = r.Bool();
  if (stopped_) stop_.store(true, std::memory_order_release);
  windows_ = r.U64();
  gang_windows_ = r.U64();
  sync_rounds_ = r.U64();
  merge_causality_violations_ = r.U64();
  lookahead_regressions_ = r.U64();
  for (auto& sh : shards_) {
    r.ExpectTag(kTagShard);
    DCTCPP_ASSERT(sh->staging.Empty() && sh->calendar.Empty());
    sh->sim.RestoreCheckpoint(r, hooks);
    sh->delivered = r.U64();
    sh->cross_deposits = r.U64();
    sh->ran_to = r.I64();
    sh->clock = r.I64();
    const Tick saved_self_delay = r.I64();
    DCTCPP_ASSERT(saved_self_delay == sh->self_delay);
    sh->pruned_handoffs = r.U64();
    sh->calendar.LoadState(
        r, [this](std::uint64_t key) { return SinkForGid(key >> 32); });
  }
}

std::string ParallelSimulation::first_violation() const {
  for (const auto& sh : shards_) {
    if (!sh->sim.invariants().first_violation().empty()) {
      return sh->sim.invariants().first_violation();
    }
  }
  if (!NetworkInvariants::LedgerConsistent(MergedLedger())) {
    return "merged packet ledger inconsistent";
  }
  // A pruned-channel crossing is the root cause of any merge-horizon
  // breach it triggers (the mask fed lookahead the destination should
  // never have had), so report it first.
  if (pruned_channel_handoffs() > 0) {
    return "packet crossed a channel pruned by RestrictChannels";
  }
  if (merge_causality_violations_ > 0) {
    return "cross-shard merge behind destination run horizon";
  }
  if (lookahead_regressions_ > 0) {
    return "channel clock regressed between windows";
  }
  return std::string();
}

}  // namespace dctcpp
