// Output-queued store-and-forward switch with static per-port buffers.
//
// Routing is by destination host id through a table filled in by
// Network::InstallRoutes(). Each output port owns its DropTailEcnQueue;
// there is no shared-memory pooling, matching the paper's "static shared
// buffer" commodity switches (a fixed 128 KB per port).
//
// NodeIds are dense int32s assigned sequentially by the topology builder,
// so the route table is a direct-index vector: the per-packet forwarding
// decision is one bounds check and one load, no hashing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dctcpp/net/link.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {

class Switch : public PacketSink {
 public:
  Switch(Simulator& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Adds an output port facing `peer`; returns its index. `peer_sim`
  /// (the simulator owning `peer`) only matters in sharded mode, where
  /// the port must know its peer's shard.
  int AddPort(const LinkConfig& config, PacketSink& peer,
              Simulator* peer_sim = nullptr);

  /// Routes every packet destined to host `dst` out of port `port`.
  void SetRoute(NodeId dst, int port);

  /// Forwards the packet out its routed port. Unroutable packets are a
  /// configuration bug and abort.
  void Deliver(const Packet& pkt) override;

  int PortCount() const { return static_cast<int>(ports_.size()); }
  EgressPort& port(int i) { return *ports_.at(static_cast<std::size_t>(i)); }
  const EgressPort& port(int i) const {
    return *ports_.at(static_cast<std::size_t>(i));
  }

  /// The port a packet to `dst` would take, or -1 when unrouted.
  int RouteTo(NodeId dst) const {
    const auto idx = static_cast<std::uint32_t>(dst);
    return idx < routes_.size() ? routes_[idx] : -1;
  }

  /// Corrupted packets forwarded (the end-to-end checksum model means the
  /// switch passes them through for the destination host to discard).
  std::uint64_t corrupted_forwarded() const { return corrupted_forwarded_; }

 private:
  Simulator& sim_;
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<EgressPort>> ports_;
  std::vector<std::int32_t> routes_;  // dense, indexed by NodeId; -1 unset
  std::uint64_t corrupted_forwarded_ = 0;
};

}  // namespace dctcpp
