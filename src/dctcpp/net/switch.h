// Output-queued store-and-forward switch with static per-port buffers.
//
// Routing is by destination host id through a table filled in by
// Network::InstallRoutes(). Each output port owns its DropTailEcnQueue;
// there is no shared-memory pooling, matching the paper's "static shared
// buffer" commodity switches (a fixed 128 KB per port).
//
// NodeIds are dense int32s assigned sequentially by the topology builder,
// so the route table is a direct-index vector: the per-packet forwarding
// decision is one bounds check and one load, no hashing.
//
// Fabric-scale topologies (net/fabric.h) cannot afford a dense vector per
// switch — 50k hosts x 1.3k switches would be ~260 MB of mostly-repeating
// entries — so the table has three compact companions, consulted when the
// dense entry is absent:
//
//  - Route intervals: [lo, hi) -> port_base + (dst - lo) / stride. Fabrics
//    number hosts contiguously (pod-major), so "down" routing at every
//    tier is one interval: an edge switch maps its own hosts at stride 1,
//    an aggregation switch maps its pod at stride hosts_per_edge, a core
//    switch maps ALL hosts at stride hosts_per_pod. A switch needs 1-3
//    intervals (~16 bytes each) instead of a 50k-entry vector.
//  - ECMP uplink group: destinations no interval covers (the "up"
//    direction) hash onto one of the uplink ports by a deterministic
//    per-flow 5-tuple hash salted with the switch id. Pure function of
//    packet fields -> bit-identical across shard counts, pools, and runs.
//  - Group routes (dragonfly): a per-group next-hop port array plus the
//    group geometry, used for inter-group minimal routing and the Valiant
//    detour phase.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dctcpp/net/link.h"
#include "dctcpp/net/packet.h"
#include "dctcpp/sim/checkpoint.h"
#include "dctcpp/sim/simulator.h"

namespace dctcpp {

class Switch : public PacketSink, public Checkpointable {
 public:
  Switch(Simulator& sim, NodeId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {
    sim_.RegisterCheckpointable(this);
  }

  /// Checkpoint: the only mutable switch state is one counter — the
  /// ports, routes, and ECMP groups are construction-derived (each
  /// EgressPort registers and serializes itself).
  void SaveState(CheckpointWriter& w) const override {
    w.U64(corrupted_forwarded_);
  }
  void LoadState(CheckpointReader& r) override {
    corrupted_forwarded_ = r.U64();
  }

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Adds an output port facing `peer`; returns its index. `peer_sim`
  /// (the simulator owning `peer`) only matters in sharded mode, where
  /// the port must know its peer's shard.
  int AddPort(const LinkConfig& config, PacketSink& peer,
              Simulator* peer_sim = nullptr);

  /// Routes every packet destined to host `dst` out of port `port`.
  void SetRoute(NodeId dst, int port);

  /// Compact route: every dst in [lo, hi) leaves via
  /// port_base + (dst - lo) / stride. Intervals are consulted in insertion
  /// order after the dense table; the builder keeps them disjoint.
  void AddRouteInterval(NodeId lo, NodeId hi, int port_base, int stride);

  /// Destinations resolved by neither the dense table nor an interval
  /// (nor a group route) hash onto one of `ports` per flow. The hash is
  /// salted with this switch's id so consecutive tiers decorrelate.
  void SetEcmpUplinks(std::vector<std::int16_t> ports);

  /// Dragonfly inter-group routing: `port_by_group[g]` is the egress port
  /// toward group g (own group's slot unused, -1). Hosts are numbered
  /// group-major from `host_base` with `hosts_per_group` per group.
  void SetGroupRoutes(std::vector<std::int16_t> port_by_group,
                      std::int32_t my_group, NodeId host_base,
                      std::int32_t hosts_per_group);

  /// Makes this switch stamp Packet::valiant_group on untagged packets
  /// sourced by its directly attached hosts [src_lo, src_hi): each flow
  /// hashes to one of `groups` intermediate groups.
  void EnableValiantTagging(std::int16_t groups, NodeId src_lo,
                            NodeId src_hi);

  /// Full per-packet routing decision: Valiant detour phase, then dense /
  /// interval / group lookup via RouteTo, then the ECMP hash. -1 when the
  /// packet is unroutable.
  int RoutePacket(const Packet& pkt) const;

  /// Bytes held by this switch's routing state (dense + compact); the
  /// fabric bench gates the per-node sum at 50k hosts.
  std::size_t RouteMemoryBytes() const;

  /// Deterministic per-flow hash over (src, dst, ports), salt-mixed.
  /// Shared by ECMP port selection and Valiant group assignment.
  static std::uint64_t FlowHash(const Packet& pkt, std::uint64_t salt);

  /// Forwards the packet out its routed port. Unroutable packets are a
  /// configuration bug and abort.
  void Deliver(const Packet& pkt) override;

  int PortCount() const { return static_cast<int>(ports_.size()); }
  EgressPort& port(int i) { return *ports_.at(static_cast<std::size_t>(i)); }
  const EgressPort& port(int i) const {
    return *ports_.at(static_cast<std::size_t>(i));
  }

  /// The single-path port a packet to `dst` would take (dense table, then
  /// intervals, then the dst group's route), or -1 when only the ECMP
  /// hash — which needs packet fields — could decide.
  int RouteTo(NodeId dst) const {
    const auto idx = static_cast<std::uint32_t>(dst);
    if (idx < routes_.size() && routes_[idx] >= 0) return routes_[idx];
    return CompactRouteTo(dst);
  }

  /// Corrupted packets forwarded (the end-to-end checksum model means the
  /// switch passes them through for the destination host to discard).
  std::uint64_t corrupted_forwarded() const { return corrupted_forwarded_; }

 private:
  struct RouteInterval {
    NodeId lo = 0;
    NodeId hi = 0;  ///< exclusive
    std::int32_t port_base = 0;
    std::int32_t stride = 1;
  };

  int CompactRouteTo(NodeId dst) const;

  /// Group of host `dst` under the configured geometry, -1 outside it.
  std::int32_t GroupOf(NodeId dst) const {
    if (hosts_per_group_ <= 0) return -1;
    const NodeId rel = dst - group_host_base_;
    if (rel < 0) return -1;
    const auto g = static_cast<std::int32_t>(rel / hosts_per_group_);
    return g < static_cast<std::int32_t>(group_routes_.size()) ? g : -1;
  }

  Simulator& sim_;
  NodeId id_;
  std::string name_;
  std::vector<std::unique_ptr<EgressPort>> ports_;
  std::vector<std::int32_t> routes_;  // dense, indexed by NodeId; -1 unset
  std::vector<RouteInterval> intervals_;
  std::vector<std::int16_t> ecmp_ports_;
  std::uint64_t ecmp_salt_ = 0;
  // Dragonfly group geometry + per-group next hops (empty otherwise).
  std::vector<std::int16_t> group_routes_;
  std::int32_t my_group_ = -1;
  NodeId group_host_base_ = 0;
  std::int32_t hosts_per_group_ = 0;
  // Valiant tagging at the source router.
  std::int16_t valiant_groups_ = 0;
  NodeId valiant_src_lo_ = 0;
  NodeId valiant_src_hi_ = 0;
  std::uint64_t corrupted_forwarded_ = 0;
};

}  // namespace dctcpp
