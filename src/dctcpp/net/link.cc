#include "dctcpp/net/link.h"

#include "dctcpp/util/assert.h"
#include "dctcpp/util/log.h"

namespace dctcpp {

EgressPort::EgressPort(Simulator& sim, const LinkConfig& config,
                       PacketSink& peer)
    : sim_(sim),
      config_(config),
      peer_(peer),
      queue_(config.buffer_bytes, config.ecn_threshold),
      finish_ev_(
          sim, [](void* p) { static_cast<EgressPort*>(p)->FinishTransmission(); },
          this),
      deliver_ev_(
          sim, [](void* p) { static_cast<EgressPort*>(p)->DeliverHead(); },
          this) {
  if (config.red) queue_.EnableRed(config.red_config, &sim.rng());
}

void EgressPort::Send(const Packet& pkt) {
  if (config_.random_loss > 0.0 &&
      sim_.rng().Chance(config_.random_loss)) {
    ++random_losses_;
    if (LogEnabled(LogLevel::kTrace)) {
      char buf[Packet::kDescribeBufSize];
      Log(LogLevel::kTrace, "random loss at %s: %s",
          FormatTick(sim_.Now()).c_str(), pkt.DescribeTo(buf, sizeof buf));
    }
    return;
  }
  if (!queue_.Enqueue(pkt)) {
    if (LogEnabled(LogLevel::kTrace)) {
      char buf[Packet::kDescribeBufSize];
      Log(LogLevel::kTrace, "drop at %s: %s",
          FormatTick(sim_.Now()).c_str(), pkt.DescribeTo(buf, sizeof buf));
    }
    return;
  }
  sim_.CountForwardedPacket();
  if (!transmitting_) StartTransmission();
}

void EgressPort::StartTransmission() {
  if (queue_.Empty()) return;
  transmitting_ = true;
  on_wire_ = queue_.Front();
  queue_.PopFront();
  in_flight_bytes_ = on_wire_.WireSize();
  const Tick tx = config_.rate.TransmissionTime(in_flight_bytes_);
  finish_ev_.ArmIn(tx);
}

void EgressPort::FinishTransmission() {
  transmitting_ = false;
  in_flight_bytes_ = 0;
  // Propagation: the packet arrives at the peer `delay` after the last bit
  // leaves the wire. The delivery event only tracks the head; finish times
  // are strictly increasing, so `due_` stays FIFO-ordered.
  const Tick due = sim_.Now() + config_.propagation_delay;
  propagating_.PushBack(on_wire_);
  due_.PushBack(due);
  if (!deliver_armed_) {
    deliver_armed_ = true;
    deliver_ev_.ArmAt(due);
  }
  StartTransmission();
}

void EgressPort::DeliverHead() {
  // Delivering in place is safe: the callee can re-enter Send, but only on
  // *other* ports (a packet never routes back out the port it arrived on),
  // so `propagating_` cannot grow or reallocate under this reference.
  peer_.Deliver(propagating_.Front());
  propagating_.PopFront();
  due_.PopFront();
  if (!due_.Empty()) {
    deliver_ev_.ArmAt(due_.Front());
  } else {
    deliver_armed_ = false;
  }
}

}  // namespace dctcpp
