#include "dctcpp/net/link.h"

#include "dctcpp/net/parallel.h"
#include "dctcpp/util/assert.h"
#include "dctcpp/util/flight_recorder.h"
#include "dctcpp/util/log.h"
#include "dctcpp/util/profile.h"

namespace dctcpp {

namespace {

/// Folds the legacy `LinkConfig::random_loss` knob into the impairment
/// config. Both knobs set means two independent loss sources.
ImpairmentConfig EffectiveImpairment(const LinkConfig& config) {
  ImpairmentConfig eff = config.impairment;
  if (config.random_loss > 0.0) {
    eff.random_loss =
        1.0 - (1.0 - eff.random_loss) * (1.0 - config.random_loss);
  }
  return eff;
}

/// Stream-id base for per-port RED randomness in sharded mode, disjoint
/// from the impairment stream ids (dense from 0) and the per-socket base
/// (1 << 40 | ...).
constexpr std::uint64_t kRedStreamBase = 1ULL << 41;

}  // namespace

EgressPort::EgressPort(Simulator& sim, const LinkConfig& config,
                       PacketSink& peer, Simulator* peer_sim)
    : sim_(sim),
      config_(config),
      peer_(peer),
      queue_(config.buffer_bytes, config.ecn_threshold),
      finish_ev_(
          sim, [](void* p) { static_cast<EgressPort*>(p)->FinishTransmission(); },
          this),
      deliver_ev_(
          sim, [](void* p) { static_cast<EgressPort*>(p)->DeliverHead(); },
          this) {
  sim.RegisterCheckpointable(this);
  if (sim.parallel() != nullptr) {
    psim_ = sim.parallel();
    src_shard_ = sim.shard_id();
    dst_shard_ = peer_sim != nullptr ? peer_sim->shard_id() : src_shard_;
    // Every port claims a gid (whether or not it crosses shards) so the
    // calendar key space depends only on topology-construction order.
    port_gid_ = sim.NextPortId();
    // Calendar entries name this port by gid (key >> 32); the registry
    // lets checkpoint restore re-resolve each entry's sink pointer.
    psim_->RegisterPortSink(port_gid_, &peer_, dst_shard_);
    // A zero-delay link would make the conservative lookahead zero.
    DCTCPP_ASSERT(config.propagation_delay > 0);
    // Feed the channel-clock lookahead: this link bounds how fast an
    // event on src_shard_ can influence dst_shard_ (or, intra-shard, how
    // far the shard's wheel may run before re-reading its own calendar).
    psim_->ObserveChannel(src_shard_, dst_shard_, config.propagation_delay);
  }
  if (config.red) {
    if (psim_ != nullptr) {
      red_rng_ = sim.StreamRng(kRedStreamBase + port_gid_);
      queue_.EnableRed(config.red_config, &red_rng_);
    } else {
      queue_.EnableRed(config.red_config, &sim.rng());
    }
  }
  const ImpairmentConfig eff = EffectiveImpairment(config);
  if (eff.Any()) {
    impairment_ = std::make_unique<ImpairmentStage>(sim, eff, *this);
  }
  tx_size_data_ = kMss + kHeaderBytes;
  tx_time_data_ = config_.rate.TransmissionTime(tx_size_data_);
  tx_size_ack_ = kHeaderBytes;
  tx_time_ack_ = config_.rate.TransmissionTime(tx_size_ack_);
}

EgressPort::~EgressPort() {
  AuditQueueBytes();
  CheckConservation();
}

void EgressPort::Send(const Packet& pkt) {
  if (impairment_ != nullptr) {
    Packet copy = pkt;
    bool duplicate = false;
    if (!impairment_->Process(copy, &duplicate)) return;
    EnqueueForTransmit(copy);
    if (duplicate) EnqueueForTransmit(copy);
    return;
  }
  EnqueueForTransmit(pkt);
}

void EgressPort::EnqueueForTransmit(const Packet& pkt) {
  DCTCPP_PROFILE_SCOPE(kEnqueue);
  // Catch up on serializations that virtually completed before now, so the
  // admission and marking decisions below see exactly the occupancy an
  // eventful transmitter would have shown.
  if (psim_ == nullptr) SettleTo(sim_.Now());
  FlightRecorder* const fr = sim_.flight_recorder();
  const std::uint64_t marked_before =
      fr != nullptr ? queue_.stats().marked : 0;
  if (!queue_.Enqueue(pkt)) {
    sim_.invariants().CountDropped();
    if (fr != nullptr) {
      fr->Record(FrEvent::kDrop, sim_.shard_id(), sim_.Now(),
                 FrPortPayload(port_gid_, pkt.uid));
    }
    if (LogEnabled(LogLevel::kTrace)) {
      char buf[Packet::kDescribeBufSize];
      Log(LogLevel::kTrace, "drop at %s: %s",
          FormatTick(sim_.Now()).c_str(), pkt.DescribeTo(buf, sizeof buf));
    }
    return;
  }
  if (fr != nullptr) {
    fr->Record(queue_.stats().marked != marked_before ? FrEvent::kMark
                                                      : FrEvent::kEnqueue,
               sim_.shard_id(), sim_.Now(), FrPortPayload(port_gid_, pkt.uid));
  }
  sim_.CountForwardedPacket();
  if ((queue_.stats().enqueued & (kByteAuditPeriod - 1)) == 0) {
    AuditQueueBytes();
  }
  if (!transmitting_) {
    if (psim_ != nullptr) {
      StartTransmission();
    } else if (!queue_.Empty()) {
      BeginServiceAt(sim_.Now());
    }
  }
}

void EgressPort::StartTransmission() {
  if (queue_.Empty()) return;
  transmitting_ = true;
  if (staged_) {
    // One-copy path: the head queued packet becomes the serving packet in
    // place; its ring slot — written once at Enqueue — IS the wire.
    in_flight_bytes_ = queue_.BeginService().WireSize();
  } else {
    on_wire_ = queue_.Front();
    queue_.PopFront();
    in_flight_bytes_ = on_wire_.WireSize();
  }
  const Tick tx = in_flight_bytes_ == tx_size_data_ ? tx_time_data_
                  : in_flight_bytes_ == tx_size_ack_
                      ? tx_time_ack_
                      : config_.rate.TransmissionTime(in_flight_bytes_);
  finish_ev_.ArmIn(tx);
}

void EgressPort::BeginServiceAt(Tick start) {
  transmitting_ = true;
  if (staged_) {
    // One-copy path: the head queued packet becomes the serving packet in
    // place; its ring slot — written once at Enqueue — IS the wire.
    in_flight_bytes_ = queue_.BeginService().WireSize();
  } else {
    on_wire_ = queue_.Front();
    queue_.PopFront();
    in_flight_bytes_ = on_wire_.WireSize();
  }
  const Tick tx = in_flight_bytes_ == tx_size_data_ ? tx_time_data_
                  : in_flight_bytes_ == tx_size_ack_
                      ? tx_time_ack_
                      : config_.rate.TransmissionTime(in_flight_bytes_);
  t_fin_ = start + tx;
  // Propagation: the packet arrives at the peer `delay` after the last bit
  // leaves the wire. Finish times are strictly increasing, so `due_` stays
  // FIFO-ordered; and since the armed delivery at `due_.Front()` has not
  // fired yet, `due` here is never in the past.
  const Tick due = t_fin_ + config_.propagation_delay;
  due_.PushBack(due);
  if (!deliver_armed_) {
    deliver_armed_ = true;
    deliver_ev_.ArmAt(due);
  }
}

void EgressPort::SettleSlow(Tick t) {
  while (transmitting_ && t_fin_ <= t) {
    if (staged_) {
      queue_.FinishServiceToWire();  // serving -> propagating, zero copy
    } else {
      propagating_.PushBack(on_wire_);
    }
    transmitting_ = false;
    in_flight_bytes_ = 0;
    if (!queue_.Empty()) BeginServiceAt(t_fin_);
  }
}

void EgressPort::FinishTransmission() {
  DCTCPP_PROFILE_SCOPE(kEnqueue);
  // Sharded mode only — unsharded ports never arm `finish_ev_` (their
  // completions settle lazily through SettleTo).
  DCTCPP_DASSERT(psim_ != nullptr);
  transmitting_ = false;
  in_flight_bytes_ = 0;
  // Sharded mode: the wire is the destination shard's arrival calendar.
  // (port gid, wire seq) makes the delivery key unique and canonical —
  // the same packet sorts to the same place whatever the shard count.
  const Tick due = sim_.Now() + config_.propagation_delay;
  const std::uint64_t key = (port_gid_ << 32) | (wire_seq_++ & 0xffffffffu);
  ++handed_off_;
  // The cross-shard copy into the peer's calendar is unavoidable (the
  // peer owns its arrival storage); in staged mode it is the packet's
  // only post-enqueue copy, and the serving slot then retires.
  if (staged_) {
    psim_->Handoff(src_shard_, dst_shard_, due, key, &peer_,
                   queue_.Serving());
    queue_.DropServing();
  } else {
    psim_->Handoff(src_shard_, dst_shard_, due, key, &peer_, on_wire_);
  }
  if ((++conservation_clock_ & (kConservationPeriod - 1)) == 0) {
    CheckConservation();
  }
  StartTransmission();
}

void EgressPort::DeliverHead() {
  DCTCPP_PROFILE_SCOPE(kEnqueue);
  // The head's serialization finished at `due - delay`, at or before now:
  // settle so the packet sits in the propagation stage and the next
  // serialization is already underway.
  SettleTo(sim_.Now());
  // Delivering in place is safe: the callee can re-enter Send, but only on
  // *other* ports (a packet never routes back out the port it arrived on),
  // so neither the staged ring nor `propagating_` can grow or reallocate
  // under this reference.
  if (staged_) {
    peer_.Deliver(queue_.PropagatingFront());
    queue_.PopPropagating();
  } else {
    peer_.Deliver(propagating_.Front());
    propagating_.PopFront();
  }
  due_.PopFront();
  ++delivered_;
  if ((++conservation_clock_ & (kConservationPeriod - 1)) == 0) {
    CheckConservation();
  }
  if (!due_.Empty()) {
    deliver_ev_.ArmAt(due_.Front());
    if (staged_ && queue_.PropagatingCount() > 0) {
      // Two-stage software pipeline: the packet this event will deliver
      // next is known now — pull its cacheline (the whole Packet, by the
      // one-line static_assert) and the peer's demux probe chain for its
      // flow while the current event's effects settle.
      const Packet& nx = queue_.PropagatingFront();
      __builtin_prefetch(&nx, 0, 3);
      peer_.PrefetchDeliver(nx);
    }
  } else {
    deliver_armed_ = false;
  }
}

void EgressPort::CheckConservation() {
  // Every packet the queue ever accepted must be exactly one of:
  // delivered, waiting in the queue, serializing, or on the wire. In
  // sharded mode "on the wire" is the peer's calendar, whose contents
  // this side must not read; the handoff counter takes the role of
  // delivered + propagating on the source side.
  if (psim_ != nullptr) {
    const std::uint64_t resident =
        queue_.PacketCount() + (transmitting_ ? 1u : 0u);
    if (queue_.stats().enqueued != handed_off_ + resident) {
      sim_.invariants().Violate(
          "port-conservation",
          "accepted=%llu != handed_off=%llu + queued=%zu + serializing=%u",
          static_cast<unsigned long long>(queue_.stats().enqueued),
          static_cast<unsigned long long>(handed_off_), queue_.PacketCount(),
          transmitting_ ? 1u : 0u);
    }
    return;
  }
  const std::size_t propagating =
      staged_ ? queue_.PropagatingCount() : propagating_.Size();
  const std::uint64_t resident =
      queue_.PacketCount() + (transmitting_ ? 1u : 0u) + propagating;
  if (queue_.stats().enqueued != delivered_ + resident) {
    sim_.invariants().Violate(
        "port-conservation",
        "accepted=%llu != delivered=%llu + queued=%zu + serializing=%u + "
        "propagating=%zu",
        static_cast<unsigned long long>(queue_.stats().enqueued),
        static_cast<unsigned long long>(delivered_), queue_.PacketCount(),
        transmitting_ ? 1u : 0u, propagating);
  }
}

void EgressPort::SaveState(CheckpointWriter& w) const {
  queue_.SaveState(w);
  if (impairment_ != nullptr) impairment_->SaveState(w);
  std::uint64_t red_state[4];
  red_rng_.SaveState(red_state);
  for (std::uint64_t s : red_state) w.U64(s);
  w.Bool(transmitting_);
  if (transmitting_) {
    // Staged mode: the serving packet is inside the queue blob already
    // (region sizes lead it); only the copy-chain mode owns a separate
    // on-wire slot. Same-binary blobs always restore in the same mode.
    if (!staged_) SavePacket(w, on_wire_);
    w.I64(in_flight_bytes_);
    if (psim_ != nullptr) {
      // Sharded: the eventful finish is pending — save its exact arming.
      Tick at = 0;
      std::uint64_t seq = 0;
      finish_ev_.Arming(&at, &seq);
      w.I64(at);
      w.U64(seq);
    } else {
      // Unsharded: no finish event exists; the lazy finish instant is the
      // whole serialization state. Unsettled virtual completions are
      // checkpoint-faithful as-is — restoring the same (t_fin_, due_,
      // delivery arming) replays the same settlements.
      w.I64(t_fin_);
    }
  }
  w.U64(wire_seq_);
  w.U64(handed_off_);
  w.U64(delivered_);
  w.U64(conservation_clock_);
  if (!staged_) {
    w.U64(propagating_.Size());
    propagating_.ForEach([&w](const Packet& pkt) { SavePacket(w, pkt); });
  }
  due_.SaveState(w);
  w.Bool(deliver_armed_);
  if (deliver_armed_) {
    Tick at = 0;
    std::uint64_t seq = 0;
    deliver_ev_.Arming(&at, &seq);
    w.I64(at);
    w.U64(seq);
  }
}

void EgressPort::LoadState(CheckpointReader& r) {
  queue_.LoadState(r);
  if (impairment_ != nullptr) impairment_->LoadState(r);
  std::uint64_t red_state[4];
  for (std::uint64_t& s : red_state) s = r.U64();
  red_rng_.LoadState(red_state);
  transmitting_ = r.Bool();
  if (transmitting_) {
    if (!staged_) on_wire_ = LoadPacket(r);
    in_flight_bytes_ = r.I64();
    if (psim_ != nullptr) {
      const Tick at = r.I64();
      const std::uint64_t seq = r.U64();
      finish_ev_.ArmAtWithSeq(at, seq);
    } else {
      t_fin_ = r.I64();
    }
  }
  wire_seq_ = r.U64();
  handed_off_ = r.U64();
  delivered_ = r.U64();
  conservation_clock_ = r.U64();
  if (!staged_) {
    const std::uint64_t propagating = r.U64();
    for (std::uint64_t i = 0; i < propagating; ++i) {
      propagating_.PushBack(LoadPacket(r));
    }
  }
  due_.LoadState(r);
  deliver_armed_ = r.Bool();
  if (deliver_armed_) {
    const Tick at = r.I64();
    const std::uint64_t seq = r.U64();
    deliver_ev_.ArmAtWithSeq(at, seq);
  }
}

void EgressPort::AuditQueueBytes() {
  const Bytes actual = queue_.ComputeOccupancyBytes();
  if (actual != queue_.OccupancyBytes()) {
    sim_.invariants().Violate(
        "queue-bytes",
        "occupancy counter %lld != %lld bytes actually resident "
        "(%zu packets)",
        static_cast<long long>(queue_.OccupancyBytes()),
        static_cast<long long>(actual), queue_.PacketCount());
  }
}

}  // namespace dctcpp
