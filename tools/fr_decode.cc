// fr_decode: renders a flight-recorder dump (FlightRecorder::DumpTo, the
// churn_violation.frbin a failed soak leaves behind) as human-readable
// lines on stdout, merge-sorted by (tick, shard).
//
// Usage: fr_decode <dump.frbin>
#include <cstdio>
#include <iostream>

#include "dctcpp/util/flight_recorder.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fr_decode <dump.frbin>\n");
    return 2;
  }
  if (!dctcpp::FlightRecorder::DecodeFile(argv[1], std::cout)) {
    std::fprintf(stderr, "fr_decode: cannot decode %s\n", argv[1]);
    return 1;
  }
  return 0;
}
